module ocelot

go 1.22
