package planner

import (
	"strings"
	"testing"

	"ocelot/internal/datagen"
	"ocelot/internal/dtree"
	"ocelot/internal/features"
	"ocelot/internal/quality"
	"ocelot/internal/sz"
	"ocelot/internal/szx"
	"ocelot/internal/wan"
)

// constTree trains a single-leaf regressor that predicts v everywhere —
// the building block of fully deterministic planner models.
func constTree(t *testing.T, v float64) *dtree.Tree {
	t.Helper()
	x := [][]float64{make([]float64, features.NumFeatures), make([]float64, features.NumFeatures)}
	tr, err := dtree.Train(x, []float64{v, v}, dtree.Params{MaxDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// codecModel builds a controlled two-codec model: sz3 predicts a high
// ratio at a high cost, szx a low ratio at a tiny cost; both clear the
// PSNR floor. log2(ratio) is what the ratio tree regresses.
func codecModel(t *testing.T) *quality.Model {
	t.Helper()
	m := &quality.Model{
		Ratio: constTree(t, 4),   // 2^4 = 16x
		Time:  constTree(t, 2.0), // sec per megapoint
		PSNR:  constTree(t, 80),
	}
	m.Codecs = map[string]*quality.Model{
		szx.Name: {
			Ratio: constTree(t, 2),    // 2^2 = 4x
			Time:  constTree(t, 0.05), // 40x faster
			PSNR:  constTree(t, 80),
		},
	}
	return m
}

// codecFields generates a small deterministic workload.
func codecFields(t *testing.T, n int) []*datagen.Field {
	t.Helper()
	names := datagen.Fields("CESM")[:n]
	out := make([]*datagen.Field, 0, n)
	for _, name := range names {
		f, err := datagen.Generate("CESM", name, 48, 7)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, f)
	}
	return out
}

// TestPlannerPicksCodecByLink is the codec-selection property under one
// quality floor: a fast link makes compression time dominate (szx wins),
// a slow link makes moved bytes dominate (sz3 wins). The model is fully
// synthetic, so the decision is deterministic on any machine.
func TestPlannerPicksCodecByLink(t *testing.T) {
	fields := codecFields(t, 4)
	model := codecModel(t)
	cands, err := CodecCandidates([]string{sz.CodecName, szx.Name})
	if err != nil {
		t.Fatal(err)
	}
	build := func(bwMBps float64) *Plan {
		t.Helper()
		plan, err := Build(fields, model, Options{
			Candidates: cands,
			MinPSNR:    70,
			Link:       &wan.Link{Name: "test", BandwidthMBps: bwMBps, Concurrency: 4},
			Workers:    4,
		})
		if err != nil {
			t.Fatal(err)
		}
		return plan
	}
	// Fast link: 10 GB/s. Per raw MB, sz3 costs ~0.25s/MB/4workers of
	// compression vs szx's ~0.006s — transfer deltas are microseconds.
	fast := build(10000)
	// Slow link: 1 MB/s. szx moves 0.25 raw-MB/MB vs sz3's 0.0625 —
	// the 0.19s/MB transfer delta dwarfs the 0.06s compression delta.
	slow := build(1)
	for i, fp := range fast.Fields {
		if fp.Codec != szx.Name {
			t.Errorf("fast link field %d picked %s, want %s", i, fp.Codec, szx.Name)
		}
	}
	for i, fp := range slow.Fields {
		if fp.Codec != sz.CodecName {
			t.Errorf("slow link field %d picked %s, want %s", i, fp.Codec, sz.CodecName)
		}
	}
	if !strings.Contains(fast.String(), szx.Name) {
		t.Error("plan table should print the codec column")
	}
}

// TestPlannerFloorFiltersCodecWithoutPSNRTree: under a PSNR floor, a
// codec whose sub-model lacks a PSNR tree is not scoreable; the planner
// must fall back to codecs it can vouch for rather than guessing.
func TestPlannerFloorFiltersCodecWithoutPSNRTree(t *testing.T) {
	fields := codecFields(t, 2)
	model := codecModel(t)
	model.Codecs[szx.Name].PSNR = nil // szx can no longer prove quality
	cands, err := CodecCandidates([]string{sz.CodecName, szx.Name})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Build(fields, model, Options{
		Candidates: cands,
		MinPSNR:    70,
		Link:       &wan.Link{Name: "test", BandwidthMBps: 10000, Concurrency: 4},
		Workers:    4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, fp := range plan.Fields {
		if fp.Codec != sz.CodecName {
			t.Errorf("field %d picked %s despite szx lacking a PSNR tree", i, fp.Codec)
		}
	}
}

// TestPlannerUnknownCodecInGrid: a model that has never seen the codec a
// candidate names degrades to fallback when nothing is scoreable.
func TestPlannerUnknownCodecInGrid(t *testing.T) {
	fields := codecFields(t, 2)
	model := &quality.Model{Ratio: constTree(t, 3), Time: constTree(t, 1)}
	cands := []Candidate{{RelEB: 1e-3, Codec: szx.Name}}
	plan, err := Build(fields, model, Options{Candidates: cands, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, fp := range plan.Fields {
		if !fp.Fallback {
			t.Errorf("field %d not marked fallback with an untrained codec grid", i)
		}
		if fp.Codec != szx.Name {
			t.Errorf("field %d fallback codec %s, want the grid's %s", i, fp.Codec, szx.Name)
		}
	}
}

// TestCodecCandidatesGrid checks the cross grid's shape and ordering.
func TestCodecCandidatesGrid(t *testing.T) {
	cands, err := CodecCandidates([]string{szx.Name, sz.CodecName, szx.Name})
	if err != nil {
		t.Fatal(err)
	}
	if cands[0].Codec != "" && cands[0].Codec != sz.CodecName {
		t.Errorf("grid should lead with the default codec, got %q", cands[0].Codec)
	}
	nSZ3, nSZX := 0, 0
	for _, c := range cands {
		switch c.Codec {
		case "", sz.CodecName:
			nSZ3++
		case szx.Name:
			nSZX++
		}
	}
	// sz3: 7 bounds x 2 predictors; szx (no predictor stage): 7 bounds,
	// deduped despite being named twice.
	if nSZ3 != 14 || nSZX != 7 {
		t.Errorf("grid %d sz3 + %d szx candidates, want 14 + 7", nSZ3, nSZX)
	}
	if _, err := CodecCandidates([]string{"no-such"}); err == nil {
		t.Error("want error for unknown codec name")
	}
	if _, err := CodecCandidates(nil); err == nil {
		t.Error("want error for empty codec list")
	}
}

// TestTrainFromSweepMultiCodec trains a real (tiny) sweep across both
// codecs and checks the model carries a tree set per codec and the
// planner can estimate through both.
func TestTrainFromSweepMultiCodec(t *testing.T) {
	train := codecFields(t, 2)
	cands := []Candidate{
		{RelEB: 1e-3}, {RelEB: 1e-2},
		{RelEB: 1e-3, Codec: szx.Name}, {RelEB: 1e-2, Codec: szx.Name},
	}
	model, err := TrainFromSweep(train, cands, dtree.Params{MaxDepth: 6})
	if err != nil {
		t.Fatal(err)
	}
	if model.DefaultCodec != sz.CodecName {
		t.Errorf("default codec %q", model.DefaultCodec)
	}
	if _, err := model.ForCodec(szx.Name); err != nil {
		t.Fatalf("missing szx trees: %v", err)
	}
	f := train[0]
	for _, name := range []string{sz.CodecName, szx.Name} {
		est, err := model.EstimateFieldCodec(f.Data, f.Dims, 1e-3, 0, name)
		if err != nil {
			t.Fatal(err)
		}
		if est.Ratio <= 0 || est.PSNR <= 0 {
			t.Errorf("%s estimate %+v", name, est)
		}
	}
	if _, err := model.ForCodec("no-such"); err == nil ||
		!strings.Contains(err.Error(), "valid:") {
		t.Errorf("ForCodec error should list valid codecs, got %v", err)
	}
}
