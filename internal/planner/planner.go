// Package planner closes the paper's sample → predict → decide loop
// (Section VI + VII): before a campaign commits to a configuration, the
// planner runs the quality predictor's cheap sampling pass over every
// field, predicts compression ratio / speed / PSNR across a candidate grid
// of (error bound × predictor) configurations, combines the predictions
// with the WAN link model, and emits a Plan — a per-field sz configuration
// plus a grouping decision — that minimizes predicted end-to-end seconds
// subject to a quality floor. Configuration becomes a decision the system
// takes, not an input the user guesses.
package planner

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"ocelot/internal/codec"
	"ocelot/internal/datagen"
	"ocelot/internal/dtree"
	"ocelot/internal/grouping"
	"ocelot/internal/quality"
	"ocelot/internal/sz"
	"ocelot/internal/wan"
)

// Candidate is one configuration the planner may assign to a field.
type Candidate struct {
	// RelEB is the value-range-relative error bound.
	RelEB float64
	// Predictor selects the SZ pipeline; 0 means interp. Ignored by codecs
	// without a predictor stage.
	Predictor sz.Predictor
	// Codec names the registered codec; empty means sz3. The grid is
	// therefore rel-EB × predictor × codec, and the planner becomes a
	// genuine codec-picker: a speed-optimized codec wins on links fast
	// enough that compression time dominates, the high-ratio codec on
	// links where every byte moved is expensive.
	Codec string
}

// defaultRelEBs is the relative-error-bound sweep shared by every
// candidate grid builder, so sz3 and non-sz3 candidates always cover the
// same bounds.
var defaultRelEBs = []float64{1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2}

// DefaultCandidates spans four decades of relative error bound in
// half-decade steps for both the interpolation (high-ratio) and Lorenzo
// (high-speed) pipelines — the grid the paper's Section VI predictor is
// evaluated over. Half-decade resolution matters: PSNR moves ~10 dB per
// half-decade of bound, so a coarser grid would park every field on the
// same side of any quality floor.
func DefaultCandidates() []Candidate {
	out := make([]Candidate, 0, 2*len(defaultRelEBs))
	for _, p := range []sz.Predictor{sz.PredictorInterp, sz.PredictorLorenzo} {
		for _, eb := range defaultRelEBs {
			out = append(out, Candidate{RelEB: eb, Predictor: p})
		}
	}
	return out
}

// CodecCandidates builds the cross grid over the given registered codecs:
// for sz3 the usual predictor × bound sweep (DefaultCandidates), for
// codecs without predictor support one candidate per bound. sz3 (when
// present) is emitted first so the no-model fallback degrades to the most
// conservative high-fidelity pipeline. Unknown codec names error with the
// registry's valid list.
func CodecCandidates(codecNames []string) ([]Candidate, error) {
	seen := map[string]bool{}
	norm := make([]string, 0, len(codecNames))
	for _, name := range codecNames {
		c, err := codec.Lookup(name)
		if err != nil {
			return nil, fmt.Errorf("planner: %w", err)
		}
		if !seen[c.Name()] {
			seen[c.Name()] = true
			norm = append(norm, c.Name())
		}
	}
	if len(norm) == 0 {
		return nil, errors.New("planner: no codecs for candidate grid")
	}
	sort.SliceStable(norm, func(i, j int) bool {
		if (norm[i] == codec.DefaultName) != (norm[j] == codec.DefaultName) {
			return norm[i] == codec.DefaultName
		}
		return norm[i] < norm[j]
	})
	var out []Candidate
	for _, name := range norm {
		if name == codec.DefaultName {
			out = append(out, DefaultCandidates()...)
			continue
		}
		c, _ := codec.Lookup(name)
		preds := []sz.Predictor{0}
		if c.Caps().Predictors {
			preds = []sz.Predictor{sz.PredictorInterp, sz.PredictorLorenzo}
		}
		for _, p := range preds {
			for _, eb := range defaultRelEBs {
				out = append(out, Candidate{RelEB: eb, Predictor: p, Codec: name})
			}
		}
	}
	return out, nil
}

// Options tunes the planning pass.
type Options struct {
	// Candidates is the configuration grid; nil selects DefaultCandidates.
	Candidates []Candidate
	// MinPSNR is the quality floor in dB: a candidate whose predicted PSNR
	// falls below it is infeasible for that field. 0 disables the floor.
	MinPSNR float64
	// MaxRelEB caps the relative error bound any field may be assigned
	// (the alternative quality floor); 0 disables the cap.
	MaxRelEB float64
	// Link models the WAN the campaign will cross; nil plans on
	// compression cost alone (no transfer term, no grouping search).
	Link *wan.Link
	// Workers is the compression parallelism assumed when converting
	// per-field compression seconds into campaign wall time; ≤ 0 means 4.
	Workers int
	// GroupCounts are the by-world-size group counts evaluated for the
	// grouping decision; nil tries {1, Workers, 2·Workers, nFields}.
	GroupCounts []int
	// Seed drives the link estimate's deterministic jitter.
	Seed int64
	// ChunkBytes is the raw-byte chunk size the campaign will use for
	// chunk-parallel compression (PipelineOptions.ChunkMB × 1e6); 0 plans
	// for monolithic per-field compression. With chunking, a wide field's
	// predicted seconds divide across up to min(Workers, its chunk count)
	// workers instead of serializing on one — see ParallelCompressSec.
	ChunkBytes int64
	// ChunkOverheadFrac is the fractional cost added to a field's predicted
	// compression seconds when it is split (per-chunk framing and lost
	// cross-chunk prediction context); ≤ 0 selects
	// DefaultChunkOverheadFrac. Only applied to fields that actually split.
	ChunkOverheadFrac float64
	// ChunkDispatchSec is the fan-out endpoint's fixed per-chunk invocation
	// cost in seconds (the fabric's warm-start dispatch). Campaigns default
	// it from their endpoint configuration so the plan prices the fabric
	// the chunks will actually cross.
	ChunkDispatchSec float64
	// Done marks fields already completed by a previous incarnation (one
	// entry per field; nil means none). Done fields are excluded from the
	// wall model, the grouping decision, and every campaign-level
	// prediction — a resumed campaign's plan prices only the remaining
	// work. Their FieldPlan entries carry Done: true and no candidate
	// decision: on resume the engine pins their settings from the journal,
	// never from a fresh plan.
	Done []bool
}

// DefaultChunkOverheadFrac is the planner's default fractional chunking
// overhead, calibrated against the fan-out engine's measured cost of
// framing + fabric dispatch on multi-chunk fields.
const DefaultChunkOverheadFrac = 0.03

// FieldPlan is the planner's decision for one field.
type FieldPlan struct {
	Field     string       `json:"field"`
	RelEB     float64      `json:"relEb"`
	Predictor sz.Predictor `json:"predictor"`
	// Codec is the registry name of the chosen compressor ("sz3", "szx").
	Codec    string `json:"codec"`
	RawBytes int64  `json:"rawBytes"`

	// Predictions for the chosen configuration (zero when Fallback).
	PredRatio float64 `json:"predRatio"`
	PredPSNR  float64 `json:"predPsnr"`
	PredSec   float64 `json:"predSec"`   // single-worker compression seconds
	PredBytes int64   `json:"predBytes"` // predicted compressed size

	// Fallback marks a decision made without (or against) the model: an
	// untrained predictor, or no candidate meeting the quality floor.
	Fallback bool `json:"fallback,omitempty"`
	// Done marks a field completed by a previous incarnation
	// (Options.Done): no decision was made and no cost was priced.
	Done bool `json:"done,omitempty"`
}

// Plan is a complete campaign decision: per-field configurations plus the
// grouping strategy, with the predicted end-to-end accounting the decision
// was based on.
type Plan struct {
	Fields        []FieldPlan       `json:"fields"`
	GroupStrategy grouping.Strategy `json:"groupStrategy"`
	GroupParam    int64             `json:"groupParam"`
	MinPSNR       float64           `json:"minPsnr,omitempty"`
	// Workers is the compression parallelism the predictions assume.
	Workers int `json:"workers,omitempty"`
	// ChunkBytes echoes the chunk-parallel granularity the plan assumed
	// (0 = monolithic fields), and Chunks the resulting total chunk count,
	// so planned artifacts are comparable across configurations.
	ChunkBytes int64 `json:"chunkBytes,omitempty"`
	Chunks     int   `json:"chunks,omitempty"`

	RawBytes        int64   `json:"rawBytes"`
	PredBytes       int64   `json:"predBytes"`
	PredRatio       float64 `json:"predRatio"`
	PredCompressSec float64 `json:"predCompressSec"` // Workers-parallel wall
	PredTransferSec float64 `json:"predTransferSec"` // grouped archives over Link
	// PredWallSec approximates the pipelined engine's end-to-end wall with
	// the plan's group count G: the longer stage runs in full and the
	// shorter hides inside it except for its first/last group,
	// max(C, T) + min(C, T)/G — fully serial at G=1, fully overlapped as
	// G grows. The grouping decision minimizes exactly this quantity.
	PredWallSec float64 `json:"predWallSec"`
}

// Config materializes the sz.Config for field i: a range-relative bound at
// the planned RelEB with the planned predictor. Only meaningful for
// fields planned onto the sz3 codec; other codecs take the bound alone
// (see FieldPlan.Codec).
func (p *Plan) Config(i int) sz.Config {
	fp := p.Fields[i]
	cfg := sz.DefaultConfig(fp.RelEB)
	cfg.BoundMode = sz.BoundRelative
	cfg.Predictor = fp.Predictor
	return cfg
}

// String renders the plan as the per-field decision table the CLI prints.
func (p *Plan) String() string {
	var sb strings.Builder
	sb.WriteString(fmt.Sprintf("%-22s %10s %6s %12s %10s %10s %10s\n",
		"field", "rel-eb", "codec", "predictor", "ratio", "PSNR(dB)", "comp(s)"))
	for _, fp := range p.Fields {
		note := ""
		if fp.Fallback {
			note = "  (fallback)"
		}
		if fp.Done {
			note = "  (done)"
		}
		pred := "-"
		if fp.Codec == "" || fp.Codec == codec.DefaultName {
			pred = fp.Predictor.String()
		}
		sb.WriteString(fmt.Sprintf("%-22s %10.0e %6s %12s %10.1f %10.1f %10.3f%s\n",
			fp.Field, fp.RelEB, normCodec(fp.Codec), pred, fp.PredRatio, fp.PredPSNR, fp.PredSec, note))
	}
	sb.WriteString(fmt.Sprintf("grouping: %s param=%d\n", p.GroupStrategy, p.GroupParam))
	if p.ChunkBytes > 0 {
		sb.WriteString(fmt.Sprintf("chunking: %.1f MB chunks (%d total) across %d workers\n",
			float64(p.ChunkBytes)/1e6, p.Chunks, p.Workers))
	}
	sb.WriteString(fmt.Sprintf("predicted: %.1f MB -> %.1f MB (ratio %.1f), compress %.2fs, transfer %.2fs, wall %.2fs\n",
		float64(p.RawBytes)/1e6, float64(p.PredBytes)/1e6, p.PredRatio,
		p.PredCompressSec, p.PredTransferSec, p.PredWallSec))
	return sb.String()
}

func (o Options) withDefaults() Options {
	if o.Candidates == nil {
		o.Candidates = DefaultCandidates()
	}
	if o.Workers <= 0 {
		o.Workers = 4
	}
	return o
}

// feasibleCandidates filters the grid by the MaxRelEB cap, sorted by
// ascending bound so "most conservative" is always index 0.
func feasibleCandidates(opts Options) ([]Candidate, error) {
	cands := make([]Candidate, 0, len(opts.Candidates))
	for _, c := range opts.Candidates {
		if c.RelEB <= 0 {
			return nil, fmt.Errorf("planner: non-positive candidate bound %g", c.RelEB)
		}
		if opts.MaxRelEB > 0 && c.RelEB > opts.MaxRelEB {
			continue
		}
		cands = append(cands, c)
	}
	if len(cands) == 0 {
		return nil, errors.New("planner: no candidates under the MaxRelEB cap")
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].RelEB < cands[j].RelEB })
	return cands, nil
}

// Build runs the sample→predict→decide pass and returns the campaign plan.
//
// With a trained model, every field is scored across the candidate grid by
// the model's ratio/speed/PSNR predictions and assigned the feasible
// candidate minimizing its predicted contribution to end-to-end time
// (compression share plus bandwidth share). With a nil model — or when the
// quality floor requires a PSNR tree the model lacks — the planner
// degenerates gracefully: the field gets the most conservative candidate
// (smallest relative bound) and is marked Fallback, so an untrained
// deployment is never less safe than the fixed-bound default.
func Build(fields []*datagen.Field, model *quality.Model, opts Options) (*Plan, error) {
	if len(fields) == 0 {
		return nil, errors.New("planner: no fields")
	}
	opts = opts.withDefaults()
	if opts.Done != nil && len(opts.Done) != len(fields) {
		return nil, fmt.Errorf("planner: %d done marks for %d fields", len(opts.Done), len(fields))
	}
	cands, err := feasibleCandidates(opts)
	if err != nil {
		return nil, err
	}
	// A candidate is only scoreable when the model carries trees for its
	// codec — and, under a PSNR floor, a PSNR tree for that codec. Filter
	// up front so a grid mentioning an untrained codec degrades exactly
	// like an untrained model instead of erroring mid-plan.
	// Resolve candidate codec names before consulting the model: an empty
	// Candidate.Codec means sz3 (normCodec), NOT "whatever codec the model
	// happens to default to" — a model trained only for szx must never
	// silently score sz3 candidates with szx trees.
	scoreable := cands
	if model != nil {
		scoreable = make([]Candidate, 0, len(cands))
		for _, c := range cands {
			sub, err := model.ForCodec(normCodec(c.Codec))
			if err != nil || sub.Ratio == nil || sub.Time == nil {
				continue
			}
			if opts.MinPSNR > 0 && sub.PSNR == nil {
				continue
			}
			scoreable = append(scoreable, c)
		}
	}
	canScore := model != nil && len(scoreable) > 0
	canFloor := opts.MinPSNR <= 0 || canScore

	plan := &Plan{
		Fields:        make([]FieldPlan, len(fields)),
		GroupStrategy: grouping.ByWorldSize,
		MinPSNR:       opts.MinPSNR,
	}
	predSizes := make([]int64, len(fields))
	for i, f := range fields {
		raw := int64(f.RawBytes())
		fp := FieldPlan{Field: f.ID(), RawBytes: raw}

		if opts.Done != nil && opts.Done[i] {
			// Already completed by a previous incarnation: record the field
			// so the plan's shape matches the campaign, but price nothing —
			// the resume's wall model covers only the remaining work.
			fp.Done = true
			plan.Fields[i] = fp
			continue
		}
		plan.RawBytes += raw

		if !canScore || !canFloor {
			// No usable model: most conservative candidate, no predictions.
			fp.RelEB, fp.Predictor = cands[0].RelEB, normPred(cands[0].Predictor)
			fp.Codec = normCodec(cands[0].Codec)
			fp.Fallback = true
			fp.PredBytes = raw
			plan.Fields[i] = fp
			predSizes[i] = raw
			continue
		}

		best := -1
		bestScore := math.Inf(1)
		var bestEst, floorEst *quality.Estimate
		floorIdx, floorPSNR := -1, math.Inf(-1)
		// Sparse trees can predict a *lower* ratio, *slower* compression,
		// or *higher* PSNR at a looser bound — all physically impossible
		// for this compressor family. Repair predictions to be monotone in
		// the bound (cands is sorted ascending) per (codec, predictor)
		// pipeline, so training noise can never trick the planner into
		// assigning a tighter bound while predicting it cheaper, or let a
		// loose bound game the PSNR floor by out-predicting a tighter one.
		type pipeKey struct {
			codec string
			pred  sz.Predictor
		}
		monoRatio := map[pipeKey]float64{}
		monoSec := map[pipeKey]float64{}
		monoPSNR := map[pipeKey]float64{}
		for ci, c := range scoreable {
			est, err := model.EstimateFieldCodec(f.Data, f.Dims, c.RelEB, c.Predictor, normCodec(c.Codec))
			if err != nil {
				return nil, fmt.Errorf("planner: estimate %s @%g: %w", f.ID(), c.RelEB, err)
			}
			k := pipeKey{codec: normCodec(c.Codec), pred: normPred(c.Predictor)}
			if prev, ok := monoRatio[k]; ok && est.Ratio < prev {
				est.Ratio = prev
			}
			monoRatio[k] = est.Ratio
			if prev, ok := monoSec[k]; ok && est.Seconds > prev {
				est.Seconds = prev
			}
			monoSec[k] = est.Seconds
			if prev, ok := monoPSNR[k]; ok && est.PSNR > prev {
				est.PSNR = prev
			}
			monoPSNR[k] = est.PSNR
			if est.PSNR > floorPSNR {
				floorIdx, floorPSNR, floorEst = ci, est.PSNR, est
			}
			if opts.MinPSNR > 0 && est.PSNR < opts.MinPSNR {
				continue
			}
			score := scoreCandidate(est, raw, opts)
			// Ties (tree plateaus make them common) resolve to the looser
			// bound: same predicted cost, more quality headroom given away
			// for nothing otherwise.
			better := score < bestScore*(1-1e-9)
			tied := !better && score <= bestScore*(1+1e-9)
			if better || (tied && best >= 0 && c.RelEB > scoreable[best].RelEB) {
				best, bestScore, bestEst = ci, math.Min(bestScore, score), est
			}
		}
		if best < 0 {
			// No candidate meets the floor even by prediction: take the
			// candidate predicted closest to it and flag the compromise.
			best, bestEst = floorIdx, floorEst
			fp.Fallback = true
		}
		fp.RelEB, fp.Predictor = scoreable[best].RelEB, normPred(scoreable[best].Predictor)
		fp.Codec = normCodec(scoreable[best].Codec)
		fp.PredRatio = bestEst.Ratio
		fp.PredPSNR = bestEst.PSNR
		fp.PredSec = bestEst.Seconds
		fp.PredBytes = predBytes(raw, bestEst.Ratio)
		plan.Fields[i] = fp
		predSizes[i] = fp.PredBytes
	}

	// Campaign-level accounting + the grouping decision. Compression wall
	// time is parallelism-aware: per-field seconds spread over the workers,
	// with a field's divisibility limited by its chunk count — a monolithic
	// wide field floors the wall at its own duration, chunking lifts that
	// floor (the tentpole win on wide endpoints).
	secs := make([]float64, 0, len(plan.Fields))
	chunks := make([]int, 0, len(plan.Fields))
	remSizes := make([]int64, 0, len(plan.Fields))
	for i, fp := range plan.Fields {
		if fp.Done {
			continue
		}
		plan.PredBytes += fp.PredBytes
		secs = append(secs, fp.PredSec)
		nChunks := len(sz.PlanChunksBytes(fields[i].Dims, opts.ChunkBytes, fields[i].ElementSize))
		chunks = append(chunks, nChunks)
		remSizes = append(remSizes, predSizes[i])
		if opts.ChunkBytes > 0 {
			// Monolithic plans keep Chunks at 0: the artifact field means
			// "fan-out chunks", not "one pseudo-chunk per field".
			plan.Chunks += nChunks
		}
	}
	plan.Workers = opts.Workers
	plan.ChunkBytes = opts.ChunkBytes
	if len(remSizes) == 0 {
		// Everything already done: a degenerate resume plan with nothing to
		// price and nothing to group.
		plan.GroupParam = 1
		return plan, nil
	}
	dispatch := 0.0
	if opts.ChunkBytes > 0 {
		dispatch = opts.ChunkDispatchSec
	}
	plan.PredCompressSec = ParallelCompressSec(secs, chunks, opts.Workers, opts.ChunkOverheadFrac, dispatch)
	if plan.PredBytes > 0 {
		plan.PredRatio = float64(plan.RawBytes) / float64(plan.PredBytes)
	}
	if err := decideGrouping(plan, remSizes, opts); err != nil {
		return nil, err
	}
	return plan, nil
}

// ParallelCompressSec predicts the wall seconds to compress fields whose
// single-worker times are secs[i] on `workers` parallel workers, when field
// i is divisible into chunks[i] independent tasks and every task pays a
// fixed dispatchSec invocation cost on the fan-out fabric. It is the
// standard list-scheduling lower bound, max(total work / workers, longest
// indivisible task), with a fractional overhead charged to every field that
// actually splits (chunks[i] > 1):
//
//	task_i = secs[i]·(1+overhead)/chunks[i] + dispatchSec
//	wall   = max(Σ chunks[i]·task_i / workers, max_i task_i)
//
// With chunks[i] = 1 everywhere and dispatchSec = 0 this reduces to the
// monolithic model: a single wide field floors the wall at its own duration
// no matter how many workers the endpoint has. Chunking divides that floor
// by the chunk count — which is exactly why the planner's grouping and
// adaptive decisions shift when wide endpoints can be exploited.
// overheadFrac ≤ 0 selects DefaultChunkOverheadFrac.
func ParallelCompressSec(secs []float64, chunks []int, workers int, overheadFrac, dispatchSec float64) float64 {
	if workers < 1 {
		workers = 1
	}
	if overheadFrac <= 0 {
		overheadFrac = DefaultChunkOverheadFrac
	}
	if dispatchSec < 0 {
		dispatchSec = 0
	}
	var total, maxTask float64
	for i, s := range secs {
		c := 1
		if i < len(chunks) && chunks[i] > 1 {
			c = chunks[i]
			s *= 1 + overheadFrac
		}
		task := s/float64(c) + dispatchSec
		total += s + float64(c)*dispatchSec
		if task > maxTask {
			maxTask = task
		}
	}
	return math.Max(total/float64(workers), maxTask)
}

// scoreCandidate is the per-field share of predicted end-to-end seconds:
// its compression time divided across the workers, plus its bytes at the
// link's aggregate bandwidth. Per-file WAN overhead is deliberately left
// out here — grouping amortizes it, and decideGrouping accounts for it on
// the realized archives.
func scoreCandidate(est *quality.Estimate, rawBytes int64, opts Options) float64 {
	score := est.Seconds / float64(opts.Workers)
	if opts.Link != nil {
		score += float64(predBytes(rawBytes, est.Ratio)) / 1e6 / opts.Link.BandwidthMBps
	}
	return score
}

// normPred resolves the candidate convention that a zero predictor means
// interp, so plans always record the pipeline that actually runs.
func normPred(p sz.Predictor) sz.Predictor {
	if p == 0 {
		return sz.PredictorInterp
	}
	return p
}

// normCodec resolves the candidate convention that an empty codec means
// the default, so plans always record the codec that actually runs.
func normCodec(name string) string {
	if name == "" {
		return codec.DefaultName
	}
	return name
}

// predBytes converts a predicted ratio into a predicted compressed size.
func predBytes(raw int64, ratio float64) int64 {
	if ratio <= 1 {
		return raw
	}
	b := int64(float64(raw) / ratio)
	if b < 1 {
		b = 1
	}
	return b
}

// decideGrouping chooses the group count minimizing the predicted
// pipelined wall, making the grouping knob part of the plan. For each
// candidate count it estimates the transfer makespan T(G) over the
// predicted archive sizes with the link model, then scores the pipelined
// wall max(C, T) + min(C, T)/G: one archive (G=1) serializes compression
// and transfer, while more archives let the shorter stage hide inside the
// longer — at the cost of per-archive WAN overhead, which T(G) already
// charges. Ties resolve to the larger count (more overlap headroom).
// Without a link the compute-parallel default (one group per worker) is
// used and the plan predicts no transfer time.
func decideGrouping(plan *Plan, predSizes []int64, opts Options) error {
	n := len(predSizes)
	if opts.Link == nil {
		plan.GroupParam = int64(min(opts.Workers, n))
		plan.PredWallSec = plan.PredCompressSec
		return nil
	}
	counts := opts.GroupCounts
	if len(counts) == 0 {
		counts = []int{1, opts.Workers, 2 * opts.Workers, n}
	}
	tried := map[int]bool{}
	bestWall := math.Inf(1)
	for _, g := range counts {
		if g < 1 {
			g = 1
		}
		if g > n {
			g = n
		}
		if tried[g] {
			continue
		}
		tried[g] = true
		idxPlan, err := grouping.Plan(predSizes, grouping.ByWorldSize, int64(g))
		if err != nil {
			return fmt.Errorf("planner: grouping %d: %w", g, err)
		}
		est, err := opts.Link.Estimate(grouping.GroupSizes(predSizes, idxPlan), opts.Seed)
		if err != nil {
			return err
		}
		c, tr := plan.PredCompressSec, est.Seconds
		wall := math.Max(c, tr) + math.Min(c, tr)/float64(g)
		better := wall < bestWall*(1-1e-9)
		tied := !better && wall <= bestWall*(1+1e-9)
		if better || (tied && int64(g) > plan.GroupParam) {
			bestWall = math.Min(bestWall, wall)
			plan.GroupParam = int64(g)
			plan.PredTransferSec = tr
			plan.PredWallSec = wall
		}
	}
	return nil
}

// FixedBaseline returns the largest candidate relative error bound whose
// predicted PSNR meets the quality floor for every field — the best a
// single global-bound campaign can do under the same constraint, and the
// honest baseline an adaptive plan is compared against. With no usable
// model or floor it returns the most conservative candidate bound.
func FixedBaseline(fields []*datagen.Field, model *quality.Model, opts Options) (float64, error) {
	if len(fields) == 0 {
		return 0, errors.New("planner: no fields")
	}
	opts = opts.withDefaults()
	cands, err := feasibleCandidates(opts)
	if err != nil {
		return 0, err
	}
	// Distinct bounds, descending.
	bounds := make([]float64, 0, len(cands))
	for _, c := range cands {
		if len(bounds) == 0 || bounds[len(bounds)-1] != c.RelEB {
			bounds = append(bounds, c.RelEB)
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(bounds)))
	if opts.MinPSNR <= 0 || model == nil || model.PSNR == nil {
		return bounds[len(bounds)-1], nil
	}
	for _, eb := range bounds {
		ok := true
		for _, f := range fields {
			est, err := model.EstimateField(f.Data, f.Dims, eb, 0)
			if err != nil {
				return 0, err
			}
			if est.PSNR < opts.MinPSNR {
				ok = false
				break
			}
		}
		if ok {
			return eb, nil
		}
	}
	return bounds[len(bounds)-1], nil
}

// TrainFromSweep collects ground truth for every distinct codec,
// predictor, and error bound in the candidate grid over the training
// fields (with PSNR, since the floor needs it) and fits the quality model
// — the "train one from a quick sweep" path when no pre-trained predictor
// is available. Each codec in the grid gets its own tree set (the default
// codec's at the model's top level), because the feature→outcome mapping
// is codec-specific. Training fields are typically shrunken stand-ins;
// the features generalize across scales. The ratio and PSNR trees are
// deterministic in the inputs; the time tree regresses *measured*
// compression seconds, so two sweeps can legitimately differ there and
// near-tied speed choices (e.g. lorenzo vs interp at the same bound, or
// szx vs sz3 near a link's crossover) may flip between runs.
func TrainFromSweep(train []*datagen.Field, candidates []Candidate, params dtree.Params) (*quality.Model, error) {
	if candidates == nil {
		candidates = DefaultCandidates()
	}
	if params.MaxDepth == 0 {
		params.MaxDepth = 14
	}
	byCodec := map[string]map[sz.Predictor][]float64{}
	for _, c := range candidates {
		name := normCodec(c.Codec)
		if byCodec[name] == nil {
			byCodec[name] = map[sz.Predictor][]float64{}
		}
		p := normPred(c.Predictor)
		byCodec[name][p] = append(byCodec[name][p], c.RelEB)
	}
	// Deterministic codec/predictor order: sample order feeds the tree
	// trainer, whose tie-breaks depend on it, and plans must reproduce run
	// to run. The default codec trains first and owns the top-level trees.
	codecNames := make([]string, 0, len(byCodec))
	for name := range byCodec {
		codecNames = append(codecNames, name)
	}
	sort.SliceStable(codecNames, func(i, j int) bool {
		if (codecNames[i] == codec.DefaultName) != (codecNames[j] == codec.DefaultName) {
			return codecNames[i] == codec.DefaultName
		}
		return codecNames[i] < codecNames[j]
	})
	var model *quality.Model
	for _, name := range codecNames {
		byPred := byCodec[name]
		preds := make([]sz.Predictor, 0, len(byPred))
		for p := range byPred {
			preds = append(preds, p)
		}
		sort.Slice(preds, func(i, j int) bool { return preds[i] < preds[j] })
		var samples []quality.Sample
		for _, p := range preds {
			ebs := byPred[p]
			sort.Float64s(ebs)
			dedup := ebs[:0]
			for _, eb := range ebs {
				if len(dedup) == 0 || dedup[len(dedup)-1] != eb {
					dedup = append(dedup, eb)
				}
			}
			s, err := quality.Collect(train, quality.CollectOptions{
				ErrorBounds: dedup,
				Predictor:   p,
				Codec:       name,
				WithPSNR:    true,
			})
			if err != nil {
				return nil, err
			}
			samples = append(samples, s...)
		}
		sub, err := quality.Train(samples, params)
		if err != nil {
			return nil, fmt.Errorf("planner: train %s: %w", name, err)
		}
		if model == nil {
			model = sub
			model.DefaultCodec = name
			continue
		}
		if model.Codecs == nil {
			model.Codecs = map[string]*quality.Model{}
		}
		model.Codecs[name] = sub
	}
	return model, nil
}
