package planner

import (
	"testing"
)

// TestBuildDoneMask verifies a resume plan prices only the remaining work:
// done fields carry no decision, contribute nothing to the wall model, and
// the grouping decision runs over the remaining fields alone.
func TestBuildDoneMask(t *testing.T) {
	fields := plannerFields(t, 40, 7)
	model := trainedModel(t, testCandidates())
	opts := Options{Candidates: testCandidates(), Link: testLink(), Workers: 2, Seed: 1}

	full, err := Build(fields, model, opts)
	if err != nil {
		t.Fatal(err)
	}

	opts.Done = []bool{true, false, true, false}
	resumed, err := Build(fields, model, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed.Fields) != len(fields) {
		t.Fatalf("plan shape changed: %d fields", len(resumed.Fields))
	}
	for i, fp := range resumed.Fields {
		if opts.Done[i] {
			if !fp.Done || fp.RelEB != 0 || fp.PredSec != 0 {
				t.Fatalf("done field %d still priced: %+v", i, fp)
			}
		} else if fp.Done || fp.RelEB <= 0 {
			t.Fatalf("remaining field %d mis-planned: %+v", i, fp)
		}
	}
	if resumed.RawBytes >= full.RawBytes {
		t.Fatalf("resume raw bytes %d not below full %d", resumed.RawBytes, full.RawBytes)
	}
	if resumed.PredCompressSec >= full.PredCompressSec {
		t.Fatalf("resume compress wall %.3fs not below full %.3fs",
			resumed.PredCompressSec, full.PredCompressSec)
	}
	// The wall model is max(C, T) + min(C, T)/G, and a resume's smaller
	// field count caps the group-count search below the full plan's — the
	// overlap term min(C, T)/G can come out a hair LARGER for the resume
	// even though both stage terms shrink. With the transfer term floored
	// by per-archive WAN overhead at this scale the walls effectively tie;
	// allow the overlap-term wobble (the time tree regresses measured
	// seconds, so the exact tie-break is machine-dependent), but a resume
	// must never predict a materially longer wall.
	if resumed.PredWallSec > full.PredWallSec*1.05+1e-9 {
		t.Fatalf("resume wall %.3fs materially above full %.3fs", resumed.PredWallSec, full.PredWallSec)
	}
	if resumed.GroupParam < 1 || resumed.GroupParam > 2 {
		t.Fatalf("grouping must cover only the 2 remaining fields: param=%d", resumed.GroupParam)
	}

	// Degenerate resume: everything done.
	opts.Done = []bool{true, true, true, true}
	empty, err := Build(fields, model, opts)
	if err != nil {
		t.Fatal(err)
	}
	if empty.PredWallSec != 0 || empty.PredCompressSec != 0 || empty.GroupParam != 1 {
		t.Fatalf("all-done plan should price nothing: %+v", empty)
	}

	// Shape mismatch is rejected.
	opts.Done = []bool{true}
	if _, err := Build(fields, model, opts); err == nil {
		t.Fatal("mismatched Done mask accepted")
	}
}
