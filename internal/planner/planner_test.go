package planner

import (
	"testing"

	"ocelot/internal/datagen"
	"ocelot/internal/dtree"
	"ocelot/internal/quality"
	"ocelot/internal/sz"
	"ocelot/internal/wan"
)

// plannerFields builds a small mixed workload: smooth climate fields next
// to noisier hurricane fields.
func plannerFields(t testing.TB, shrink int, seed int64) []*datagen.Field {
	t.Helper()
	specs := []struct{ app, field string }{
		{"CESM", "TMQ"},
		{"CESM", "FLDSC"},
		{"ISABEL", "Pf48"},
		{"ISABEL", "QVAPORf48"},
	}
	fields := make([]*datagen.Field, 0, len(specs))
	for _, sp := range specs {
		f, err := datagen.Generate(sp.app, sp.field, shrink, seed)
		if err != nil {
			t.Fatal(err)
		}
		fields = append(fields, f)
	}
	return fields
}

// testCandidates keeps the sweep small so training stays fast in tests.
func testCandidates() []Candidate {
	return []Candidate{
		{RelEB: 1e-4, Predictor: sz.PredictorInterp},
		{RelEB: 1e-3, Predictor: sz.PredictorInterp},
		{RelEB: 1e-2, Predictor: sz.PredictorInterp},
	}
}

func trainedModel(t testing.TB, cands []Candidate) *quality.Model {
	t.Helper()
	m, err := TrainFromSweep(plannerFields(t, 64, 9), cands, dtree.Params{MaxDepth: 10})
	if err != nil {
		t.Fatal(err)
	}
	if m.PSNR == nil {
		t.Fatal("sweep training produced no PSNR tree")
	}
	return m
}

func testLink() *wan.Link {
	return &wan.Link{Name: "t", BandwidthMBps: 1000, PerFileOverheadSec: 0.02, Concurrency: 4}
}

func TestPlanRespectsQualityFloor(t *testing.T) {
	cands := testCandidates()
	model := trainedModel(t, cands)
	fields := plannerFields(t, 48, 3)
	const floor = 70.0
	plan, err := Build(fields, model, Options{
		Candidates: cands,
		MinPSNR:    floor,
		Link:       testLink(),
		Workers:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Fields) != len(fields) {
		t.Fatalf("%d field plans for %d fields", len(plan.Fields), len(fields))
	}
	for _, fp := range plan.Fields {
		if fp.Fallback {
			continue // no candidate met the floor; flagged, not hidden
		}
		if fp.PredPSNR < floor {
			t.Errorf("%s: predicted PSNR %.1f below floor %.1f", fp.Field, fp.PredPSNR, floor)
		}
		found := false
		for _, c := range cands {
			if c.RelEB == fp.RelEB {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: assigned bound %g not in the candidate grid", fp.Field, fp.RelEB)
		}
	}
	if plan.GroupParam < 1 || plan.GroupParam > int64(len(fields)) {
		t.Errorf("group param %d outside [1, %d]", plan.GroupParam, len(fields))
	}
	if plan.PredTransferSec <= 0 || plan.PredWallSec <= 0 {
		t.Errorf("plan missing transfer/wall predictions: %+v", plan)
	}
}

// A tighter floor must never loosen any field's bound.
func TestPlanFloorMonotonicity(t *testing.T) {
	cands := testCandidates()
	model := trainedModel(t, cands)
	fields := plannerFields(t, 48, 3)
	loose, err := Build(fields, model, Options{Candidates: cands, MinPSNR: 50, Link: testLink()})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := Build(fields, model, Options{Candidates: cands, MinPSNR: 90, Link: testLink()})
	if err != nil {
		t.Fatal(err)
	}
	for i := range fields {
		if tight.Fields[i].RelEB > loose.Fields[i].RelEB {
			t.Errorf("%s: floor 90 assigned %g, looser than floor 50's %g",
				fields[i].ID(), tight.Fields[i].RelEB, loose.Fields[i].RelEB)
		}
	}
}

// With no trained model the planner must degenerate gracefully: every
// field gets the most conservative candidate, flagged as fallback.
func TestPlanUntrainedModelFallsBack(t *testing.T) {
	cands := testCandidates()
	fields := plannerFields(t, 64, 3)
	plan, err := Build(fields, nil, Options{Candidates: cands, MinPSNR: 70, Link: testLink()})
	if err != nil {
		t.Fatal(err)
	}
	for _, fp := range plan.Fields {
		if !fp.Fallback {
			t.Errorf("%s: not marked fallback without a model", fp.Field)
		}
		if fp.RelEB != 1e-4 {
			t.Errorf("%s: fallback bound %g, want most conservative 1e-4", fp.Field, fp.RelEB)
		}
	}
	// A PSNR floor with a PSNR-less model is equally unservable.
	noPSNR, err := TrainFromSweep(plannerFields(t, 64, 9), cands, dtree.Params{MaxDepth: 6})
	if err != nil {
		t.Fatal(err)
	}
	noPSNR.PSNR = nil
	plan2, err := Build(fields, noPSNR, Options{Candidates: cands, MinPSNR: 70})
	if err != nil {
		t.Fatal(err)
	}
	for _, fp := range plan2.Fields {
		if !fp.Fallback || fp.RelEB != 1e-4 {
			t.Errorf("%s: PSNR-less model under a floor must fall back conservatively (got eb=%g fallback=%v)",
				fp.Field, fp.RelEB, fp.Fallback)
		}
	}
}

func TestPlanMaxRelEBCap(t *testing.T) {
	fields := plannerFields(t, 64, 3)
	plan, err := Build(fields, nil, Options{Candidates: testCandidates(), MaxRelEB: 5e-3})
	if err != nil {
		t.Fatal(err)
	}
	for _, fp := range plan.Fields {
		if fp.RelEB > 5e-3 {
			t.Errorf("%s: bound %g exceeds the cap", fp.Field, fp.RelEB)
		}
	}
	if _, err := Build(fields, nil, Options{Candidates: testCandidates(), MaxRelEB: 1e-6}); err == nil {
		t.Error("cap below every candidate must error, not silently plan")
	}
}

func TestFixedBaseline(t *testing.T) {
	cands := testCandidates()
	fields := plannerFields(t, 48, 3)
	// Without a usable model: most conservative bound.
	eb, err := FixedBaseline(fields, nil, Options{Candidates: cands, MinPSNR: 70})
	if err != nil {
		t.Fatal(err)
	}
	if eb != 1e-4 {
		t.Errorf("model-less baseline %g, want 1e-4", eb)
	}
	// Without a floor the baseline stays at the most conservative bound.
	model := trainedModel(t, cands)
	eb, err = FixedBaseline(fields, model, Options{Candidates: cands})
	if err != nil {
		t.Fatal(err)
	}
	if eb != 1e-4 {
		t.Errorf("floor-less baseline %g, want most conservative 1e-4", eb)
	}
	// With a floor: the chosen global bound must be predicted feasible for
	// every field, or be the tightest candidate available.
	eb, err = FixedBaseline(fields, model, Options{Candidates: cands, MinPSNR: 70})
	if err != nil {
		t.Fatal(err)
	}
	if eb != 1e-4 {
		for _, f := range fields {
			est, err := model.EstimateField(f.Data, f.Dims, eb, 0)
			if err != nil {
				t.Fatal(err)
			}
			if est.PSNR < 70 {
				t.Errorf("%s: baseline bound %g predicted below the floor (%.1f dB)", f.ID(), eb, est.PSNR)
			}
		}
	}
}

func TestParallelCompressSec(t *testing.T) {
	secs := []float64{8, 1, 1, 1, 1}
	ones := []int{1, 1, 1, 1, 1}

	// Monolithic on a wide endpoint: the 8 s field floors the wall.
	mono := ParallelCompressSec(secs, ones, 8, 0.03, 0)
	if mono != 8 {
		t.Fatalf("monolithic wall = %g, want 8 (widest field floors it)", mono)
	}
	// Chunking the wide field lifts the floor: wall falls toward total/W.
	chunked := ParallelCompressSec(secs, []int{8, 1, 1, 1, 1}, 8, 0.03, 0)
	if chunked >= mono/2 {
		t.Fatalf("chunked wall %g did not beat monolithic %g on a wide endpoint", chunked, mono)
	}
	// One worker: chunking only adds its overhead, never helps.
	w1m := ParallelCompressSec(secs, ones, 1, 0.03, 0)
	w1c := ParallelCompressSec(secs, []int{8, 1, 1, 1, 1}, 1, 0.03, 0)
	if w1c < w1m {
		t.Fatalf("1-worker chunked %g cheaper than monolithic %g", w1c, w1m)
	}
	if w1c <= w1m {
		t.Fatalf("1-worker chunked %g missing the overhead term (monolithic %g)", w1c, w1m)
	}
	// Never below the perfectly divisible bound.
	if lb := (8*1.03 + 4) / 8; chunked < lb-1e-12 {
		t.Fatalf("wall %g below total-work bound %g", chunked, lb)
	}
	// Degenerate inputs.
	if got := ParallelCompressSec(nil, nil, 4, 0, 0); got != 0 {
		t.Fatalf("empty workload wall = %g", got)
	}
	if got := ParallelCompressSec([]float64{2}, nil, 0, 0, 0); got != 2 {
		t.Fatalf("zero-worker clamp: wall = %g, want 2", got)
	}
}

// TestBuildChunkAware: with a wide field dominating the workload, a
// chunk-aware plan on a wide endpoint must predict a strictly smaller
// compression wall than the monolithic plan, and record its chunk
// configuration for artifact comparability.
func TestBuildChunkAware(t *testing.T) {
	cands := testCandidates()
	model := trainedModel(t, cands)
	fields := plannerFields(t, 48, 3)

	base := Options{Candidates: cands, Link: testLink(), Workers: 8}
	mono, err := Build(fields, model, base)
	if err != nil {
		t.Fatal(err)
	}
	withChunks := base
	// A quarter of the largest field per chunk: every field splits.
	withChunks.ChunkBytes = int64(fields[0].RawBytes()) / 4
	chunked, err := Build(fields, model, withChunks)
	if err != nil {
		t.Fatal(err)
	}
	if chunked.Chunks <= len(fields) {
		t.Fatalf("plan did not split fields: %d chunks", chunked.Chunks)
	}
	if chunked.ChunkBytes != withChunks.ChunkBytes || chunked.Workers != 8 {
		t.Fatalf("plan lost its chunk config: %+v", chunked)
	}
	if mono.Chunks != 0 {
		t.Fatalf("monolithic plan reports %d fan-out chunks, want 0", mono.Chunks)
	}
	if chunked.PredCompressSec > mono.PredCompressSec*(1+1e-9) {
		t.Fatalf("chunk-aware compress wall %g worse than monolithic %g on a wide endpoint",
			chunked.PredCompressSec, mono.PredCompressSec)
	}
	// The wall prediction must respect the indivisible-task floor.
	var maxSec float64
	for _, fp := range mono.Fields {
		if fp.PredSec > maxSec {
			maxSec = fp.PredSec
		}
	}
	if mono.PredCompressSec < maxSec-1e-12 {
		t.Fatalf("monolithic wall %g below widest field %g", mono.PredCompressSec, maxSec)
	}
}

// TestParallelCompressSecDispatch: the fixed per-chunk dispatch cost scales
// with the chunk count and divides across workers like any other work.
func TestParallelCompressSecDispatch(t *testing.T) {
	secs := []float64{1, 1}
	chunks := []int{4, 4}
	base := ParallelCompressSec(secs, chunks, 4, 0.03, 0)
	withDispatch := ParallelCompressSec(secs, chunks, 4, 0.03, 0.1)
	// 8 chunks × 0.1 s dispatch = 0.8 s of extra work over 4 workers.
	want := base + 0.8/4
	if diff := withDispatch - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("dispatch-aware wall %g, want %g", withDispatch, want)
	}
}
