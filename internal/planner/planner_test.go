package planner

import (
	"testing"

	"ocelot/internal/datagen"
	"ocelot/internal/dtree"
	"ocelot/internal/quality"
	"ocelot/internal/sz"
	"ocelot/internal/wan"
)

// plannerFields builds a small mixed workload: smooth climate fields next
// to noisier hurricane fields.
func plannerFields(t testing.TB, shrink int, seed int64) []*datagen.Field {
	t.Helper()
	specs := []struct{ app, field string }{
		{"CESM", "TMQ"},
		{"CESM", "FLDSC"},
		{"ISABEL", "Pf48"},
		{"ISABEL", "QVAPORf48"},
	}
	fields := make([]*datagen.Field, 0, len(specs))
	for _, sp := range specs {
		f, err := datagen.Generate(sp.app, sp.field, shrink, seed)
		if err != nil {
			t.Fatal(err)
		}
		fields = append(fields, f)
	}
	return fields
}

// testCandidates keeps the sweep small so training stays fast in tests.
func testCandidates() []Candidate {
	return []Candidate{
		{RelEB: 1e-4, Predictor: sz.PredictorInterp},
		{RelEB: 1e-3, Predictor: sz.PredictorInterp},
		{RelEB: 1e-2, Predictor: sz.PredictorInterp},
	}
}

func trainedModel(t testing.TB, cands []Candidate) *quality.Model {
	t.Helper()
	m, err := TrainFromSweep(plannerFields(t, 64, 9), cands, dtree.Params{MaxDepth: 10})
	if err != nil {
		t.Fatal(err)
	}
	if m.PSNR == nil {
		t.Fatal("sweep training produced no PSNR tree")
	}
	return m
}

func testLink() *wan.Link {
	return &wan.Link{Name: "t", BandwidthMBps: 1000, PerFileOverheadSec: 0.02, Concurrency: 4}
}

func TestPlanRespectsQualityFloor(t *testing.T) {
	cands := testCandidates()
	model := trainedModel(t, cands)
	fields := plannerFields(t, 48, 3)
	const floor = 70.0
	plan, err := Build(fields, model, Options{
		Candidates: cands,
		MinPSNR:    floor,
		Link:       testLink(),
		Workers:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Fields) != len(fields) {
		t.Fatalf("%d field plans for %d fields", len(plan.Fields), len(fields))
	}
	for _, fp := range plan.Fields {
		if fp.Fallback {
			continue // no candidate met the floor; flagged, not hidden
		}
		if fp.PredPSNR < floor {
			t.Errorf("%s: predicted PSNR %.1f below floor %.1f", fp.Field, fp.PredPSNR, floor)
		}
		found := false
		for _, c := range cands {
			if c.RelEB == fp.RelEB {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: assigned bound %g not in the candidate grid", fp.Field, fp.RelEB)
		}
	}
	if plan.GroupParam < 1 || plan.GroupParam > int64(len(fields)) {
		t.Errorf("group param %d outside [1, %d]", plan.GroupParam, len(fields))
	}
	if plan.PredTransferSec <= 0 || plan.PredWallSec <= 0 {
		t.Errorf("plan missing transfer/wall predictions: %+v", plan)
	}
}

// A tighter floor must never loosen any field's bound.
func TestPlanFloorMonotonicity(t *testing.T) {
	cands := testCandidates()
	model := trainedModel(t, cands)
	fields := plannerFields(t, 48, 3)
	loose, err := Build(fields, model, Options{Candidates: cands, MinPSNR: 50, Link: testLink()})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := Build(fields, model, Options{Candidates: cands, MinPSNR: 90, Link: testLink()})
	if err != nil {
		t.Fatal(err)
	}
	for i := range fields {
		if tight.Fields[i].RelEB > loose.Fields[i].RelEB {
			t.Errorf("%s: floor 90 assigned %g, looser than floor 50's %g",
				fields[i].ID(), tight.Fields[i].RelEB, loose.Fields[i].RelEB)
		}
	}
}

// With no trained model the planner must degenerate gracefully: every
// field gets the most conservative candidate, flagged as fallback.
func TestPlanUntrainedModelFallsBack(t *testing.T) {
	cands := testCandidates()
	fields := plannerFields(t, 64, 3)
	plan, err := Build(fields, nil, Options{Candidates: cands, MinPSNR: 70, Link: testLink()})
	if err != nil {
		t.Fatal(err)
	}
	for _, fp := range plan.Fields {
		if !fp.Fallback {
			t.Errorf("%s: not marked fallback without a model", fp.Field)
		}
		if fp.RelEB != 1e-4 {
			t.Errorf("%s: fallback bound %g, want most conservative 1e-4", fp.Field, fp.RelEB)
		}
	}
	// A PSNR floor with a PSNR-less model is equally unservable.
	noPSNR, err := TrainFromSweep(plannerFields(t, 64, 9), cands, dtree.Params{MaxDepth: 6})
	if err != nil {
		t.Fatal(err)
	}
	noPSNR.PSNR = nil
	plan2, err := Build(fields, noPSNR, Options{Candidates: cands, MinPSNR: 70})
	if err != nil {
		t.Fatal(err)
	}
	for _, fp := range plan2.Fields {
		if !fp.Fallback || fp.RelEB != 1e-4 {
			t.Errorf("%s: PSNR-less model under a floor must fall back conservatively (got eb=%g fallback=%v)",
				fp.Field, fp.RelEB, fp.Fallback)
		}
	}
}

func TestPlanMaxRelEBCap(t *testing.T) {
	fields := plannerFields(t, 64, 3)
	plan, err := Build(fields, nil, Options{Candidates: testCandidates(), MaxRelEB: 5e-3})
	if err != nil {
		t.Fatal(err)
	}
	for _, fp := range plan.Fields {
		if fp.RelEB > 5e-3 {
			t.Errorf("%s: bound %g exceeds the cap", fp.Field, fp.RelEB)
		}
	}
	if _, err := Build(fields, nil, Options{Candidates: testCandidates(), MaxRelEB: 1e-6}); err == nil {
		t.Error("cap below every candidate must error, not silently plan")
	}
}

func TestFixedBaseline(t *testing.T) {
	cands := testCandidates()
	fields := plannerFields(t, 48, 3)
	// Without a usable model: most conservative bound.
	eb, err := FixedBaseline(fields, nil, Options{Candidates: cands, MinPSNR: 70})
	if err != nil {
		t.Fatal(err)
	}
	if eb != 1e-4 {
		t.Errorf("model-less baseline %g, want 1e-4", eb)
	}
	// Without a floor the baseline stays at the most conservative bound.
	model := trainedModel(t, cands)
	eb, err = FixedBaseline(fields, model, Options{Candidates: cands})
	if err != nil {
		t.Fatal(err)
	}
	if eb != 1e-4 {
		t.Errorf("floor-less baseline %g, want most conservative 1e-4", eb)
	}
	// With a floor: the chosen global bound must be predicted feasible for
	// every field, or be the tightest candidate available.
	eb, err = FixedBaseline(fields, model, Options{Candidates: cands, MinPSNR: 70})
	if err != nil {
		t.Fatal(err)
	}
	if eb != 1e-4 {
		for _, f := range fields {
			est, err := model.EstimateField(f.Data, f.Dims, eb, 0)
			if err != nil {
				t.Fatal(err)
			}
			if est.PSNR < 70 {
				t.Errorf("%s: baseline bound %g predicted below the floor (%.1f dB)", f.ID(), eb, est.PSNR)
			}
		}
	}
}
