package dataio

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"ocelot/internal/datagen"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	f, err := datagen.Generate("CESM", "TMQ", 40, 1)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "tmq.dat")
	if err := Save(f, path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.App != f.App || back.Name != f.Name {
		t.Fatalf("identity lost: %s/%s", back.App, back.Name)
	}
	if len(back.Dims) != len(f.Dims) {
		t.Fatal("dims lost")
	}
	for i := range f.Data {
		// float32 storage: values already float32-rounded by datagen.
		if back.Data[i] != f.Data[i] {
			t.Fatalf("value %d drift: %v vs %v", i, back.Data[i], f.Data[i])
		}
	}
}

func TestSaveLoadFloat64(t *testing.T) {
	dir := t.TempDir()
	f := &datagen.Field{
		App: "X", Name: "pi", Dims: []int{3},
		Data: []float64{math.Pi, math.E, math.Sqrt2}, ElementSize: 8,
	}
	path := filepath.Join(dir, "pi.dat")
	if err := Save(f, path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f.Data {
		if back.Data[i] != f.Data[i] {
			t.Fatalf("float64 drift at %d", i)
		}
	}
}

func TestLoadErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := Load(filepath.Join(dir, "missing.dat")); err == nil {
		t.Error("missing file must error")
	}
	// Bad meta JSON.
	path := filepath.Join(dir, "bad.dat")
	if err := os.WriteFile(path, []byte{1, 2, 3, 4}, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path+".meta.json", []byte("nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Error("bad meta must error")
	}
	// Size mismatch.
	if err := os.WriteFile(path+".meta.json", []byte(`{"app":"a","name":"b","dims":[100],"elementSize":4}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Error("size mismatch must error")
	}
}

func TestSaveEmpty(t *testing.T) {
	if err := Save(&datagen.Field{}, "/tmp/x"); err == nil {
		t.Error("empty field must error")
	}
}

func TestStreams(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sub", "x.sz")
	if err := SaveStream([]byte{9, 8, 7}, path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadStream(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 || back[0] != 9 {
		t.Fatalf("stream = %v", back)
	}
}

func TestLoadRawValidation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "raw.bin")
	if err := os.WriteFile(path, make([]byte, 16), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadRaw(path, 4, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadRaw(path, 5, 4); err == nil {
		t.Error("wrong count must error")
	}
}
