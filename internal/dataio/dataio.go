// Package dataio loads and stores dataset fields on disk. The on-disk
// format mirrors what scientific facilities actually move: a raw
// little-endian float32/float64 binary file (like the paper's .dat/.bin
// field dumps) plus a JSON sidecar describing shape and provenance, serving
// the role of NetCDF/HDF5 headers without a C dependency.
package dataio

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"ocelot/internal/datagen"
)

// Meta is the JSON sidecar stored next to each raw binary.
type Meta struct {
	App         string `json:"app"`
	Name        string `json:"name"`
	Dims        []int  `json:"dims"`
	ElementSize int    `json:"elementSize"` // 4 or 8
}

// metaPath returns the sidecar path for a data file.
func metaPath(path string) string { return path + ".meta.json" }

// ErrBadMeta indicates a missing or inconsistent sidecar.
var ErrBadMeta = errors.New("dataio: bad metadata")

// Save writes a field as raw little-endian values plus its sidecar.
func Save(f *datagen.Field, path string) error {
	if f == nil || len(f.Data) == 0 {
		return errors.New("dataio: empty field")
	}
	elem := f.ElementSize
	if elem != 4 && elem != 8 {
		elem = 4
	}
	buf := make([]byte, len(f.Data)*elem)
	for i, v := range f.Data {
		if elem == 4 {
			binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(float32(v)))
		} else {
			binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
		}
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("dataio: mkdir: %w", err)
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return fmt.Errorf("dataio: write data: %w", err)
	}
	meta := Meta{App: f.App, Name: f.Name, Dims: f.Dims, ElementSize: elem}
	blob, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(metaPath(path), blob, 0o644); err != nil {
		return fmt.Errorf("dataio: write meta: %w", err)
	}
	return nil
}

// Load reads a field saved with Save.
func Load(path string) (*datagen.Field, error) {
	blob, err := os.ReadFile(metaPath(path))
	if err != nil {
		return nil, fmt.Errorf("dataio: read meta: %w", err)
	}
	var meta Meta
	if err := json.Unmarshal(blob, &meta); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMeta, err)
	}
	if meta.ElementSize != 4 && meta.ElementSize != 8 {
		return nil, fmt.Errorf("%w: element size %d", ErrBadMeta, meta.ElementSize)
	}
	n := 1
	for _, d := range meta.Dims {
		if d <= 0 {
			return nil, fmt.Errorf("%w: dim %d", ErrBadMeta, d)
		}
		n *= d
	}
	data, err := LoadRaw(path, n, meta.ElementSize)
	if err != nil {
		return nil, err
	}
	return &datagen.Field{
		App: meta.App, Name: meta.Name, Dims: meta.Dims,
		Data: data, ElementSize: meta.ElementSize,
	}, nil
}

// LoadRaw reads n raw little-endian values of the given element size
// (4 = float32, 8 = float64) without a sidecar.
func LoadRaw(path string, n, elementSize int) ([]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("dataio: read data: %w", err)
	}
	if len(raw) != n*elementSize {
		return nil, fmt.Errorf("dataio: %s: %d bytes, want %d", path, len(raw), n*elementSize)
	}
	data := make([]float64, n)
	for i := range data {
		if elementSize == 4 {
			data[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(raw[i*4:])))
		} else {
			data[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
		}
	}
	return data, nil
}

// SaveStream writes an opaque compressed stream.
func SaveStream(stream []byte, path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("dataio: mkdir: %w", err)
	}
	return os.WriteFile(path, stream, 0o644)
}

// LoadStream reads an opaque compressed stream.
func LoadStream(path string) ([]byte, error) {
	return os.ReadFile(path)
}
