package wan

import (
	"bytes"
	"errors"
	"testing"
)

func TestFaultsValidate(t *testing.T) {
	bad := []Faults{
		{Outages: []FaultWindow{{StartSec: 5, EndSec: 5}}},
		{Outages: []FaultWindow{{StartSec: -1, EndSec: 5}}},
		{Dips: []BandwidthDip{{FaultWindow: FaultWindow{StartSec: 0, EndSec: 1}, Factor: 0}}},
		{Dips: []BandwidthDip{{FaultWindow: FaultWindow{StartSec: 0, EndSec: 1}, Factor: 1.5}}},
		{SendErrProb: 1},
		{SendErrProb: -0.1},
	}
	for i, f := range bad {
		if err := f.Validate(); err == nil {
			t.Errorf("case %d: invalid schedule accepted: %+v", i, f)
		}
	}
	ok := Faults{
		Outages:     []FaultWindow{{StartSec: 1, EndSec: 2}},
		Dips:        []BandwidthDip{{FaultWindow: FaultWindow{StartSec: 0, EndSec: 3}, Factor: 0.5}},
		SendErrProb: 0.25,
	}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	var nilFaults *Faults
	if err := nilFaults.Validate(); err != nil {
		t.Fatalf("nil schedule: %v", err)
	}
	// A link carrying an invalid schedule fails link validation too.
	l := Link{BandwidthMBps: 100, Concurrency: 4, Faults: &Faults{SendErrProb: 2}}
	if err := l.Validate(); err == nil {
		t.Fatal("link with invalid faults validated")
	}
}

func TestInjectorOutageAndDips(t *testing.T) {
	in, err := NewInjector(&Faults{
		Outages: []FaultWindow{{StartSec: 10, EndSec: 20}},
		Dips: []BandwidthDip{
			{FaultWindow: FaultWindow{StartSec: 0, EndSec: 50}, Factor: 0.5},
			{FaultWindow: FaultWindow{StartSec: 40, EndSec: 60}, Factor: 0.4},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := in.SendError(5); err != nil {
		t.Fatalf("outside outage: %v", err)
	}
	err = in.SendError(15)
	var fe *FaultError
	if !errors.As(err, &fe) || fe.Reason != "outage" || !fe.Transient() {
		t.Fatalf("inside outage: %v", err)
	}
	if err := in.SendError(20); err != nil {
		t.Fatalf("window is half-open, t=20 should pass: %v", err)
	}
	if got := in.RateFactor(5); got != 0.5 {
		t.Fatalf("single dip factor: %g", got)
	}
	if got := in.RateFactor(45); got != 0.5*0.4 {
		t.Fatalf("overlapping dips should multiply: %g", got)
	}
	if got := in.RateFactor(70); got != 1 {
		t.Fatalf("outside dips: %g", got)
	}
}

func TestInjectorFlapDeterministic(t *testing.T) {
	draw := func() []bool {
		in, err := NewInjector(&Faults{SendErrProb: 0.3, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 200)
		for i := range out {
			out[i] = in.SendError(0) != nil
		}
		return out
	}
	a, b := draw(), draw()
	flaps := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs across same-seed injectors", i)
		}
		if a[i] {
			flaps++
		}
	}
	// 200 draws at p=0.3: the count must be in a generous band, and > 0 so
	// the retry path actually fires.
	if flaps < 30 || flaps > 90 {
		t.Fatalf("flap count %d implausible for p=0.3", flaps)
	}
}

func TestInjectorNilSafe(t *testing.T) {
	var in *Injector
	if in.SendError(0) != nil || in.RateFactor(0) != 1 {
		t.Fatal("nil injector must be a no-op")
	}
	if _, err := NewInjector(nil); !errors.Is(err, ErrNoFaults) {
		t.Fatal("nil schedule should return ErrNoFaults")
	}
}

func TestCorruptPayloadDeterministicAndModes(t *testing.T) {
	payload := bytes.Repeat([]byte("ocelot archive "), 64)
	draw := func(mode CorruptMode) []bool {
		in, err := NewInjector(&Faults{CorruptProb: 0.5, CorruptMode: mode, Seed: 13})
		if err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 200)
		for i := range out {
			got := in.CorruptPayload(payload)
			out[i] = !bytes.Equal(got, payload)
			if out[i] && &got[0] == &payload[0] {
				t.Fatal("corrupted delivery must be a fresh copy")
			}
		}
		return out
	}
	for _, mode := range []CorruptMode{CorruptBitFlip, CorruptTruncate, CorruptGarble, CorruptMix} {
		a, b := draw(mode), draw(mode)
		hits := 0
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("mode %d: draw %d differs across same-seed injectors", mode, i)
			}
			if a[i] {
				hits++
			}
		}
		if hits < 60 || hits > 140 {
			t.Fatalf("mode %d: corruption count %d implausible for p=0.5", mode, hits)
		}
	}
}

func TestCorruptPayloadNeverMutatesInput(t *testing.T) {
	in, err := NewInjector(&Faults{CorruptProb: 0.9, CorruptMode: CorruptMix, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xA5}, 512)
	want := append([]byte(nil), payload...)
	for i := 0; i < 100; i++ {
		in.CorruptPayload(payload)
		if !bytes.Equal(payload, want) {
			t.Fatalf("iteration %d: CorruptPayload mutated its input", i)
		}
	}
}

func TestCorruptPayloadNilAndZeroProb(t *testing.T) {
	var nilIn *Injector
	payload := []byte("abc")
	if got := nilIn.CorruptPayload(payload); &got[0] != &payload[0] {
		t.Fatal("nil injector must deliver the input slice unchanged")
	}
	in, err := NewInjector(&Faults{SendErrProb: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := in.CorruptPayload(payload); &got[0] != &payload[0] {
		t.Fatal("zero CorruptProb must deliver the input slice unchanged")
	}
}

func TestFaultsValidateCorruption(t *testing.T) {
	if err := (&Faults{CorruptProb: 1.0}).Validate(); err == nil {
		t.Fatal("CorruptProb 1.0 should be rejected")
	}
	if err := (&Faults{CorruptProb: -0.1}).Validate(); err == nil {
		t.Fatal("negative CorruptProb should be rejected")
	}
	if err := (&Faults{CorruptMode: CorruptMix + 1}).Validate(); err == nil {
		t.Fatal("unknown CorruptMode should be rejected")
	}
	if err := (&Faults{CorruptProb: 0.5, CorruptMode: CorruptGarble}).Validate(); err != nil {
		t.Fatalf("valid corruption schedule rejected: %v", err)
	}
}
