package wan

import (
	"math"
	"testing"

	"ocelot/internal/sim"
)

func coriBebop() *Link {
	return StandardLinks()["Bebop->Cori"]
}

func TestValidate(t *testing.T) {
	bad := []Link{
		{BandwidthMBps: 0, Concurrency: 1},
		{BandwidthMBps: 100, Concurrency: 0},
		{BandwidthMBps: 100, Concurrency: 1, PerFileOverheadSec: -1},
	}
	for i, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
	if err := coriBebop().Validate(); err != nil {
		t.Fatal(err)
	}
}

// Regression: JitterFrac ≥ 1 could draw a zero or negative per-file
// bandwidth in Estimate/Transfer and produce infinite or negative costs;
// such links must fail validation up front.
func TestValidateRejectsDegenerateJitter(t *testing.T) {
	for _, jf := range []float64{-0.1, 1.0, 1.5, math.Inf(1)} {
		l := &Link{BandwidthMBps: 1000, Concurrency: 4, JitterFrac: jf}
		if err := l.Validate(); err == nil {
			t.Errorf("JitterFrac=%g: want validation error", jf)
		}
		if _, err := l.Estimate([]int64{1 << 20}, 1); err == nil {
			t.Errorf("JitterFrac=%g: Estimate accepted a degenerate link", jf)
		}
	}
	for _, jf := range []float64{0, 0.5, 0.99} {
		l := &Link{BandwidthMBps: 1000, Concurrency: 4, JitterFrac: jf}
		if err := l.Validate(); err != nil {
			t.Errorf("JitterFrac=%g: unexpected error %v", jf, err)
		}
		res, err := l.Estimate([]int64{1 << 20, 1 << 22}, 7)
		if err != nil {
			t.Fatalf("JitterFrac=%g: %v", jf, err)
		}
		if res.Seconds <= 0 {
			t.Errorf("JitterFrac=%g: non-positive transfer seconds %g", jf, res.Seconds)
		}
	}
}

func TestEstimateEmpty(t *testing.T) {
	res, err := coriBebop().Estimate(nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Seconds != 0 || res.Files != 0 {
		t.Fatalf("empty result %+v", res)
	}
}

func TestEstimateNegativeSize(t *testing.T) {
	if _, err := coriBebop().Estimate([]int64{-5}, 1); err == nil {
		t.Fatal("want error for negative size")
	}
}

// TestTableIIShape reproduces the paper's Table II: same 300GB payload,
// file counts 300000/30000/3000/300 — effective speed must rise steeply as
// files get bigger, then flatten near the link bandwidth.
func TestTableIIShape(t *testing.T) {
	l := coriBebop()
	const totalGB = 300
	cases := []struct {
		fileMB int64
		files  int
	}{
		{1, 300000},
		{10, 30000},
		{100, 3000},
		{1000, 300},
	}
	speeds := make([]float64, len(cases))
	for i, c := range cases {
		sizes := make([]int64, c.files)
		for j := range sizes {
			sizes[j] = c.fileMB * 1e6
		}
		res, err := l.Estimate(sizes, 42)
		if err != nil {
			t.Fatal(err)
		}
		speeds[i] = res.EffectiveMBps
		t.Logf("%5dMB x %6d files: %7.1f MB/s in %7.1fs", c.fileMB, c.files, res.EffectiveMBps, res.Seconds)
	}
	// Monotone improvement from 1MB to 100MB files.
	if !(speeds[0] < speeds[1] && speeds[1] < speeds[2]) {
		t.Fatalf("speeds not increasing: %v", speeds)
	}
	// Small files should be several times slower than large ones (paper: 247
	// vs ~1100 MB/s).
	if speeds[2]/speeds[0] < 2.5 {
		t.Fatalf("small-file penalty too weak: %v", speeds)
	}
	// Large-file speed approaches the link bandwidth.
	if speeds[3] < 0.85*l.BandwidthMBps {
		t.Fatalf("large files should near bandwidth: %.0f of %.0f", speeds[3], l.BandwidthMBps)
	}
}

func TestMakespanMonotoneInBytes(t *testing.T) {
	l := coriBebop()
	small, err := l.Estimate([]int64{1e9}, 1)
	if err != nil {
		t.Fatal(err)
	}
	large, err := l.Estimate([]int64{2e9}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if large.Seconds <= small.Seconds {
		t.Fatalf("2GB (%v) should take longer than 1GB (%v)", large.Seconds, small.Seconds)
	}
}

func TestConcurrencyHelps(t *testing.T) {
	many := &Link{Name: "x", BandwidthMBps: 1000, PerFileOverheadSec: 0.1, Concurrency: 16}
	one := &Link{Name: "x", BandwidthMBps: 1000, PerFileOverheadSec: 0.1, Concurrency: 1}
	sizes := make([]int64, 1000)
	for i := range sizes {
		sizes[i] = 1e6
	}
	rMany, err := many.Estimate(sizes, 1)
	if err != nil {
		t.Fatal(err)
	}
	rOne, err := one.Estimate(sizes, 1)
	if err != nil {
		t.Fatal(err)
	}
	// With per-file overhead dominating, concurrency amortizes it.
	if rMany.Seconds >= rOne.Seconds {
		t.Fatalf("concurrency should reduce makespan: %v vs %v", rMany.Seconds, rOne.Seconds)
	}
}

func TestEventDrivenMatchesEstimate(t *testing.T) {
	l := coriBebop()
	sizes := []int64{5e8, 3e8, 1e9, 2e8, 7e8, 1e8, 9e8, 4e8, 6e8, 2e9}
	est, err := l.Estimate(sizes, 9)
	if err != nil {
		t.Fatal(err)
	}
	clock := sim.NewClock()
	var got *TransferResult
	landed := 0
	err = l.Transfer(clock, sizes, 9,
		func(idx int, at float64) { landed++ },
		func(r *TransferResult) { got = r })
	if err != nil {
		t.Fatal(err)
	}
	if err := clock.Run(); err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("done callback never fired")
	}
	if landed != len(sizes) {
		t.Fatalf("onFile fired %d times, want %d", landed, len(sizes))
	}
	if got.Bytes != est.Bytes || got.Files != est.Files {
		t.Fatalf("conservation violated: %+v vs %+v", got, est)
	}
	// Event-driven uses arrival order (not LPT), so allow modest deviation.
	if math.Abs(got.Seconds-est.Seconds) > 0.5*est.Seconds+1 {
		t.Fatalf("event-driven %.2fs far from estimate %.2fs", got.Seconds, est.Seconds)
	}
}

func TestTransferEmptyBatch(t *testing.T) {
	clock := sim.NewClock()
	var got *TransferResult
	if err := coriBebop().Transfer(clock, nil, 1, nil, func(r *TransferResult) { got = r }); err != nil {
		t.Fatal(err)
	}
	if err := clock.Run(); err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Files != 0 {
		t.Fatalf("got %+v", got)
	}
}

func TestStandardLinksComplete(t *testing.T) {
	links := StandardLinks()
	for _, name := range []string{"Anvil->Cori", "Anvil->Bebop", "Bebop->Cori", "Cori->Bebop"} {
		l, ok := links[name]
		if !ok {
			t.Fatalf("missing link %s", name)
		}
		if err := l.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	// Anvil->Cori is the fast path in the paper (3.6+ GB/s).
	if links["Anvil->Cori"].BandwidthMBps < 2*links["Anvil->Bebop"].BandwidthMBps {
		t.Error("Anvil->Cori should be much faster than Anvil->Bebop")
	}
}

func TestJitterDeterministic(t *testing.T) {
	l := &Link{Name: "j", BandwidthMBps: 1000, PerFileOverheadSec: 0.01, Concurrency: 4, JitterFrac: 0.2}
	sizes := []int64{1e8, 2e8, 3e8}
	a, err := l.Estimate(sizes, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := l.Estimate(sizes, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.Seconds != b.Seconds {
		t.Fatal("same seed must give same result")
	}
	c, err := l.Estimate(sizes, 8)
	if err != nil {
		t.Fatal(err)
	}
	if c.Seconds == a.Seconds {
		t.Fatal("different seed should change jitter")
	}
}

func BenchmarkEstimate(b *testing.B) {
	l := coriBebop()
	sizes := make([]int64, 7182)
	for i := range sizes {
		sizes[i] = 224e6
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Estimate(sizes, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
