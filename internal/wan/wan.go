// Package wan models wide-area Globus/GridFTP-style transfers between
// endpoints. The model captures the paper's Table II behaviour: every file
// pays a fixed handling cost (control-channel round trips, filesystem
// metadata) in addition to its bandwidth time, and files flow through a
// bounded number of concurrent channels. Many small files therefore crater
// the effective throughput, while a few large files saturate the link.
package wan

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"ocelot/internal/sim"
)

// Link describes one WAN path between two endpoints.
type Link struct {
	// Name for reports, e.g. "Anvil->Cori".
	Name string
	// BandwidthMBps is the aggregate achievable bandwidth in MB/s.
	BandwidthMBps float64
	// PerFileOverheadSec is the fixed handling cost charged per file on its
	// assigned channel (GridFTP pipelining reduces but does not eliminate
	// this; the calibrated value reflects the paper's measurements).
	PerFileOverheadSec float64
	// Concurrency is the number of parallel file channels (Globus default 4,
	// DTN deployments often 8-32).
	Concurrency int
	// JitterFrac adds deterministic pseudo-random per-file bandwidth jitter
	// (0 disables). Jitter is seeded per transfer for reproducibility.
	JitterFrac float64
	// Faults, when non-nil, injects scheduled outages, bandwidth dips, and
	// per-send flap errors into transports that pace over this link (see
	// Faults). The estimate and event-loop paths ignore it: faults model
	// the live retry path, not the planning model.
	Faults *Faults
}

// Validate checks link parameters.
func (l *Link) Validate() error {
	if l.BandwidthMBps <= 0 {
		return errors.New("wan: bandwidth must be positive")
	}
	if l.Concurrency <= 0 {
		return errors.New("wan: concurrency must be positive")
	}
	if l.PerFileOverheadSec < 0 {
		return errors.New("wan: negative per-file overhead")
	}
	// Jitter multiplies per-file bandwidth by 1 + JitterFrac·U(−1, 1); a
	// fraction at or above 1 could draw a zero or negative bandwidth and
	// produce infinite or negative transfer costs.
	if l.JitterFrac < 0 || l.JitterFrac >= 1 {
		return fmt.Errorf("wan: jitter fraction %g outside [0, 1)", l.JitterFrac)
	}
	if err := l.Faults.Validate(); err != nil {
		return err
	}
	return nil
}

// TransferResult summarizes one simulated batch transfer.
type TransferResult struct {
	Files         int
	Bytes         int64
	Seconds       float64
	EffectiveMBps float64
}

// Estimate computes the completion time for transferring files (sizes in
// bytes) without running an event loop: files are assigned to channels
// greedily (longest processing time first), each channel's time is the sum
// of its files' overhead + bandwidth time, and the link bandwidth is shared
// among busy channels. The returned makespan matches the event-driven
// simulation for the common case and is what the experiment drivers use.
func (l *Link) Estimate(sizes []int64, seed int64) (*TransferResult, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	if len(sizes) == 0 {
		return &TransferResult{}, nil
	}
	rng := rand.New(rand.NewSource(seed))
	var total int64
	for _, s := range sizes {
		if s < 0 {
			return nil, fmt.Errorf("wan: negative file size %d", s)
		}
		total += s
	}
	// Per-file cost at full channel share; bandwidth shared across channels.
	ch := l.Concurrency
	if ch > len(sizes) {
		ch = len(sizes)
	}
	perChannelMBps := l.BandwidthMBps / float64(ch)
	costs := make([]float64, len(sizes))
	for i, s := range sizes {
		bw := perChannelMBps
		if l.JitterFrac > 0 {
			bw *= 1 + l.JitterFrac*(rng.Float64()*2-1)
		}
		costs[i] = l.PerFileOverheadSec + float64(s)/1e6/bw
	}
	makespan := lptMakespan(costs, ch)
	res := &TransferResult{
		Files:   len(sizes),
		Bytes:   total,
		Seconds: makespan,
	}
	if makespan > 0 {
		res.EffectiveMBps = float64(total) / 1e6 / makespan
	}
	return res, nil
}

// lptMakespan computes the makespan of the longest-processing-time-first
// greedy assignment of costs to workers.
func lptMakespan(costs []float64, workers int) float64 {
	if workers <= 0 {
		workers = 1
	}
	sorted := make([]float64, len(costs))
	copy(sorted, costs)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	load := make([]float64, workers)
	for _, c := range sorted {
		// Assign to least-loaded worker.
		min := 0
		for w := 1; w < workers; w++ {
			if load[w] < load[min] {
				min = w
			}
		}
		load[min] += c
	}
	var mk float64
	for _, v := range load {
		if v > mk {
			mk = v
		}
	}
	return mk
}

// Transfer runs the event-driven version on a sim clock and invokes done
// with the result when the batch completes. onFile (optional) fires as each
// file lands, enabling the sentinel's bookkeeping.
func (l *Link) Transfer(clock *sim.Clock, sizes []int64, seed int64,
	onFile func(idx int, at float64), done func(*TransferResult)) error {
	if err := l.Validate(); err != nil {
		return err
	}
	if len(sizes) == 0 {
		clock.After(0, func() { done(&TransferResult{}) })
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	ch := l.Concurrency
	if ch > len(sizes) {
		ch = len(sizes)
	}
	perChannelMBps := l.BandwidthMBps / float64(ch)
	var total int64
	costs := make([]float64, len(sizes))
	for i, s := range sizes {
		if s < 0 {
			return fmt.Errorf("wan: negative file size %d", s)
		}
		total += s
		bw := perChannelMBps
		if l.JitterFrac > 0 {
			bw *= 1 + l.JitterFrac*(rng.Float64()*2-1)
		}
		costs[i] = l.PerFileOverheadSec + float64(s)/1e6/bw
	}
	start := clock.Now()
	next := 0
	remaining := len(sizes)
	var feed func(channel int)
	feed = func(channel int) {
		if next >= len(sizes) {
			return
		}
		idx := next
		next++
		clock.After(costs[idx], func() {
			if onFile != nil {
				onFile(idx, clock.Now())
			}
			remaining--
			if remaining == 0 {
				elapsed := clock.Now() - start
				res := &TransferResult{Files: len(sizes), Bytes: total, Seconds: elapsed}
				if elapsed > 0 {
					res.EffectiveMBps = float64(total) / 1e6 / elapsed
				}
				done(res)
				return
			}
			feed(channel)
		})
	}
	for c := 0; c < ch; c++ {
		feed(c)
	}
	return nil
}

// StandardLinks returns the calibrated links between the paper's three
// testbeds. Bandwidths are set so direct-transfer speeds match Table VIII's
// T(NP) column; the per-file overhead is calibrated to Table II.
func StandardLinks() map[string]*Link {
	return map[string]*Link{
		"Anvil->Cori": {
			Name: "Anvil->Cori", BandwidthMBps: 3760,
			PerFileOverheadSec: 0.02, Concurrency: 8,
		},
		"Anvil->Bebop": {
			Name: "Anvil->Bebop", BandwidthMBps: 960,
			PerFileOverheadSec: 0.02, Concurrency: 8,
		},
		"Bebop->Cori": {
			Name: "Bebop->Cori", BandwidthMBps: 1120,
			PerFileOverheadSec: 0.02, Concurrency: 8,
		},
		"Cori->Bebop": {
			Name: "Cori->Bebop", BandwidthMBps: 1120,
			PerFileOverheadSec: 0.02, Concurrency: 8,
		},
	}
}
