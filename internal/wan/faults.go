package wan

// Fault injection for the simulated WAN: scheduled outages, bandwidth
// dips, and a per-send error probability, all deterministic under a seeded
// RNG. The retry/failover path in the campaign engine is exercised against
// these faults in tests and in the FaultResume artifact — a link flap must
// surface as a *transient* error (retryable), never as a silent stall.

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"ocelot/internal/obs"
)

// FaultWindow is a half-open interval [StartSec, EndSec) on the link's
// simulated clock (seconds since the transport's first send).
type FaultWindow struct {
	// StartSec is when the fault begins.
	StartSec float64
	// EndSec is when the fault ends; must be > StartSec.
	EndSec float64
}

// contains reports whether the window covers simulated time t.
func (w FaultWindow) contains(t float64) bool {
	return t >= w.StartSec && t < w.EndSec
}

// BandwidthDip degrades the link to Factor × bandwidth inside a window —
// the "congested backbone" scenario, as opposed to an outage's hard down.
type BandwidthDip struct {
	FaultWindow
	// Factor scales the link bandwidth inside the window; (0, 1].
	Factor float64
}

// Faults describes the fault schedule injected into a link. The zero value
// (and a nil pointer) injects nothing.
type Faults struct {
	// Outages are windows during which every send attempt fails with a
	// transient *FaultError (the link is hard down).
	Outages []FaultWindow
	// Dips are windows during which the link's bandwidth is scaled by the
	// dip's Factor. Overlapping dips multiply.
	Dips []BandwidthDip
	// SendErrProb is the probability, per send attempt, of a transient
	// flap error drawn from the seeded RNG; [0, 1).
	SendErrProb float64
	// CorruptProb is the probability, per *delivered* send, that the
	// payload arrives corrupted; [0, 1). Corruption is injected after
	// pacing completes, so it consumes full link capacity and never
	// perturbs the throughput ≤ bandwidth invariant. Whether corruption is
	// detected or silent is decided downstream: campaigns with the
	// integrity frame enabled catch it at verify; campaigns without see
	// the garbage bytes (the silent-corruption testbed).
	CorruptProb float64
	// CorruptMode picks how a corrupted payload is damaged; the zero value
	// is CorruptBitFlip.
	CorruptMode CorruptMode
	// Seed makes the per-send error draws deterministic.
	Seed int64
}

// CorruptMode selects the damage model for injected payload corruption.
type CorruptMode int

const (
	// CorruptBitFlip flips one to eight random bits — the classic
	// undetected-by-TCP in-flight corruption.
	CorruptBitFlip CorruptMode = iota
	// CorruptTruncate cuts the payload short at a random offset — a
	// partial write or interrupted transfer.
	CorruptTruncate
	// CorruptGarble rewrites the whole payload with random bytes — a
	// wrong-object or torn-buffer delivery.
	CorruptGarble
	// CorruptMix draws one of the three modes above per corrupted send.
	CorruptMix
)

// Validate checks the fault schedule.
func (f *Faults) Validate() error {
	if f == nil {
		return nil
	}
	for i, w := range f.Outages {
		if w.EndSec <= w.StartSec || w.StartSec < 0 {
			return fmt.Errorf("wan: outage %d window [%g, %g) invalid", i, w.StartSec, w.EndSec)
		}
	}
	for i, d := range f.Dips {
		if d.EndSec <= d.StartSec || d.StartSec < 0 {
			return fmt.Errorf("wan: dip %d window [%g, %g) invalid", i, d.StartSec, d.EndSec)
		}
		if d.Factor <= 0 || d.Factor > 1 {
			return fmt.Errorf("wan: dip %d factor %g outside (0, 1]", i, d.Factor)
		}
	}
	if f.SendErrProb < 0 || f.SendErrProb >= 1 {
		return fmt.Errorf("wan: send error probability %g outside [0, 1)", f.SendErrProb)
	}
	if f.CorruptProb < 0 || f.CorruptProb >= 1 {
		return fmt.Errorf("wan: corruption probability %g outside [0, 1)", f.CorruptProb)
	}
	if f.CorruptMode < CorruptBitFlip || f.CorruptMode > CorruptMix {
		return fmt.Errorf("wan: unknown corruption mode %d", f.CorruptMode)
	}
	return nil
}

// FaultError is the transient error an injected fault raises. It
// implements the Transient marker the retry layer classifies on, so a flap
// is retried while a real transport bug is not.
type FaultError struct {
	// Reason describes the fault ("outage", "flap").
	Reason string
	// AtSec is the simulated link time of the failed attempt.
	AtSec float64
}

// Error implements error.
func (e *FaultError) Error() string {
	return fmt.Sprintf("wan: injected %s at t=%.3fs", e.Reason, e.AtSec)
}

// Transient marks injected faults retryable (sentinel.IsTransient).
func (e *FaultError) Transient() bool { return true }

// ErrNoFaults is returned by NewInjector when given a nil schedule; most
// callers should simply skip building an injector instead.
var ErrNoFaults = errors.New("wan: no fault schedule")

// Injector evaluates a fault schedule against the link's simulated clock.
// It is safe for concurrent use: the seeded RNG behind SendErrProb is
// mutex-protected, so concurrent transfer streams draw a deterministic
// global sequence (the *set* of failed sends depends on arrival order, but
// the failure rate and the schedule windows do not).
type Injector struct {
	faults Faults
	mu     sync.Mutex
	rng    *rand.Rand

	// Metric handles installed by SetMetrics (nil-safe no-ops otherwise).
	windowsHit  *obs.Counter
	flapDrops   *obs.Counter
	corruptions *obs.Counter
}

// SetMetrics installs a metrics registry: SendError counts every outage
// window hit (wan_fault_windows_hit_total) and flap drop
// (wan_flap_drops_total), and CorruptPayload counts every injected
// corruption (wan_corruptions_injected_total). Call before the injector is
// shared; a nil injector or registry is a no-op.
func (in *Injector) SetMetrics(reg *obs.Registry) {
	if in == nil {
		return
	}
	in.windowsHit = reg.Counter("wan_fault_windows_hit_total")
	in.flapDrops = reg.Counter("wan_flap_drops_total")
	in.corruptions = reg.Counter("wan_corruptions_injected_total")
}

// NewInjector builds an injector for a validated fault schedule.
func NewInjector(f *Faults) (*Injector, error) {
	if f == nil {
		return nil, ErrNoFaults
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return &Injector{faults: *f, rng: rand.New(rand.NewSource(f.Seed))}, nil
}

// SendError reports the fault, if any, that kills a send attempted at
// simulated time t: an outage window covering t, or a flap drawn from the
// seeded RNG with probability SendErrProb. A nil injector never faults.
func (in *Injector) SendError(t float64) error {
	if in == nil {
		return nil
	}
	for _, w := range in.faults.Outages {
		if w.contains(t) {
			in.windowsHit.Inc()
			return &FaultError{Reason: "outage", AtSec: t}
		}
	}
	if p := in.faults.SendErrProb; p > 0 {
		in.mu.Lock()
		hit := in.rng.Float64() < p
		in.mu.Unlock()
		if hit {
			in.flapDrops.Inc()
			return &FaultError{Reason: "flap", AtSec: t}
		}
	}
	return nil
}

// RateFactor returns the bandwidth multiplier active at simulated time t:
// 1 outside every dip, the product of overlapping dip factors inside.
func (in *Injector) RateFactor(t float64) float64 {
	if in == nil {
		return 1
	}
	factor := 1.0
	for _, d := range in.faults.Dips {
		if d.contains(t) {
			factor *= d.Factor
		}
	}
	return factor
}

// CorruptPayload damages a delivered payload with probability CorruptProb
// using the schedule's CorruptMode, returning the (possibly new) delivered
// slice. The input is never mutated: a corrupted delivery is a fresh copy,
// so the sender's buffer — which the campaign may retransmit — stays
// intact. A nil injector, zero probability, or empty payload delivers the
// input unchanged. Draws come from the same seeded RNG as flap errors, so
// the corruption pattern is deterministic per schedule.
func (in *Injector) CorruptPayload(data []byte) []byte {
	if in == nil || in.faults.CorruptProb <= 0 || len(data) == 0 {
		return data
	}
	in.mu.Lock()
	if in.rng.Float64() >= in.faults.CorruptProb {
		in.mu.Unlock()
		return data
	}
	mode := in.faults.CorruptMode
	if mode == CorruptMix {
		mode = CorruptMode(in.rng.Intn(3))
	}
	out := append([]byte(nil), data...)
	switch mode {
	case CorruptTruncate:
		out = out[:in.rng.Intn(len(out))]
	case CorruptGarble:
		in.rng.Read(out)
	default: // CorruptBitFlip
		for k, flips := 0, 1+in.rng.Intn(8); k < flips; k++ {
			out[in.rng.Intn(len(out))] ^= 1 << uint(in.rng.Intn(8))
		}
	}
	in.mu.Unlock()
	in.corruptions.Inc()
	return out
}

// NextChange returns the earliest dip boundary strictly after t, or
// math.Inf(1) when the rate never changes again. A pacing loop caps its
// sleep quantum at this horizon so bandwidth dips take effect exactly on
// schedule instead of whenever membership happens to churn.
func (in *Injector) NextChange(t float64) float64 {
	next := math.Inf(1)
	if in == nil {
		return next
	}
	for _, d := range in.faults.Dips {
		for _, b := range [2]float64{d.StartSec, d.EndSec} {
			if b > t && b < next {
				next = b
			}
		}
	}
	return next
}
