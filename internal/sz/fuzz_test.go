package sz

import (
	"testing"

	"ocelot/internal/codec"

	// Register the szx codec so registry dispatch on fuzzed magics covers
	// every stream family the campaign engine can encounter.
	_ "ocelot/internal/szx"
)

// fuzzSeeds builds valid streams of every registered family — plain sz3,
// each predictor, a chunked container, and an szx stream via the registry
// — so mutation starts from deep inside the accept space. The checked-in
// corpus under testdata/fuzz holds byte-frozen copies plus crafted
// corruptions; these programmatic seeds track the implementation as it
// evolves.
func fuzzSeeds(f *testing.F) [][]byte {
	f.Helper()
	data := make([]float64, 600)
	for i := range data {
		data[i] = float64(i%37) * 0.25
	}
	var seeds [][]byte
	for _, p := range []Predictor{PredictorLorenzo, PredictorInterp, PredictorRegression} {
		cfg := DefaultConfig(1e-3)
		cfg.Predictor = p
		stream, _, err := Compress(data, []int{20, 30}, cfg)
		if err != nil {
			f.Fatal(err)
		}
		seeds = append(seeds, stream)
	}
	// Table-boundary seed: four in five residuals cluster near the zero
	// bin, the rest scatter across ~thousands of distinct bins with
	// frequency one, so the canonical code lengths straddle the decoder's
	// 12-bit primary table and mutation starts from a stream whose decode
	// crosses into the overflow (second-level) path.
	longTail := make([]float64, 8000)
	acc := 0.0
	for i := range longTail {
		r := float64((uint32(i+1)*2654435761)%2000) - 1000 // deterministic noise in ±1000
		if i%5 == 0 {
			acc += r * 20 // wide bin, mostly unique
		} else {
			acc += r * 0.01 // near-zero bin
		}
		longTail[i] = acc * 1e-3
	}
	cfgTail := DefaultConfig(1e-3)
	cfgTail.Predictor = PredictorLorenzo
	tailStream, _, err := Compress(longTail, []int{8000}, cfgTail)
	if err != nil {
		f.Fatal(err)
	}
	seeds = append(seeds, tailStream)
	// NOTE: the chunked container must stay at len(seeds)-2 — see
	// FuzzSplitChunked.
	chunked, _, err := CompressChunked(data, []int{20, 30}, DefaultConfig(1e-3), 150)
	if err != nil {
		f.Fatal(err)
	}
	seeds = append(seeds, chunked)
	szxc, err := codec.Lookup("szx")
	if err != nil {
		f.Fatal(err)
	}
	szxStream, err := szxc.Compress(data, []int{600}, codec.Params{AbsErrorBound: 1e-3})
	if err != nil {
		f.Fatal(err)
	}
	seeds = append(seeds, szxStream)
	return seeds
}

// FuzzDecompress feeds arbitrary bytes to the registry's decode dispatch
// — the path every grouped-archive member and chunked-container payload
// crosses. Any input may error (including unknown codec magic), but none
// may panic, and a successful decode must be shape-consistent.
func FuzzDecompress(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		f.Add(s)
	}
	f.Add([]byte{})
	f.Add([]byte{0xDE, 0xAD, 0xBE, 0xEF, 1, 2, 3}) // unknown magic
	f.Fuzz(func(t *testing.T, stream []byte) {
		recon, dims, err := codec.Decompress(stream)
		if err != nil {
			return
		}
		n := 1
		for _, d := range dims {
			if d <= 0 {
				t.Fatalf("non-positive dim %d in %v", d, dims)
			}
			n *= d
		}
		if n != len(recon) {
			t.Fatalf("dims %v product %d != %d reconstructed points", dims, n, len(recon))
		}
	})
}

// FuzzSplitChunked attacks the OCSC container framing: splitting must
// never panic, and when it succeeds, every chunk must either decode
// consistently or error cleanly through the registry.
func FuzzSplitChunked(f *testing.F) {
	seeds := fuzzSeeds(f)
	f.Add(seeds[len(seeds)-2]) // the chunked container
	f.Add([]byte{0x43, 0x53, 0x43, 0x4F, 1, 0, 0, 0, 0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, stream []byte) {
		chunks, err := SplitChunked(stream)
		if err != nil {
			return
		}
		if len(chunks) == 0 {
			t.Fatal("SplitChunked returned no chunks without error")
		}
		if _, err := ChunkedDims(stream); err != nil {
			// Chunk payloads may still be garbage; ChunkedDims erroring is
			// fine, panicking is not.
			return
		}
		for _, c := range chunks {
			if _, _, err := codec.Decompress(c); err != nil {
				return
			}
		}
	})
}

// FuzzHeaderParse hammers the low-level sz3 parsers (fixed header and
// inner payload) directly, below the magic dispatch.
func FuzzHeaderParse(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		f.Add(s)
	}
	f.Add([]byte{0x5A, 0x53, 0x43, 0x4F, 1, 1, 2, 1})
	f.Fuzz(func(t *testing.T, stream []byte) {
		if h, body, err := parseHeader(stream); err == nil {
			if h == nil || len(h.dims) == 0 {
				t.Fatal("parseHeader succeeded with no dims")
			}
			if len(body) > len(stream) {
				t.Fatal("body longer than stream")
			}
		}
		if p, err := parseInnerPayload(stream); err == nil && p == nil {
			t.Fatal("parseInnerPayload succeeded with nil payload")
		}
	})
}
