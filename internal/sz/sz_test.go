package sz

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ocelot/internal/lossless"
)

// genSmooth produces a smooth multi-octave field: the compressible case.
func genSmooth(seed int64, dims []int) []float64 {
	n := 1
	for _, d := range dims {
		n *= d
	}
	rng := rand.New(rand.NewSource(seed))
	// Random plane + sinusoids.
	nd := len(dims)
	freqs := make([][3]float64, nd)
	for d := range freqs {
		freqs[d] = [3]float64{rng.Float64()*4 + 0.5, rng.Float64()*9 + 1, rng.Float64() * 2 * math.Pi}
	}
	data := make([]float64, n)
	coords := make([]int, nd)
	for i := 0; i < n; i++ {
		flatToCoords(i, dims, coords)
		v := 0.0
		for d := 0; d < nd; d++ {
			x := float64(coords[d]) / float64(dims[d])
			v += math.Sin(freqs[d][0]*2*math.Pi*x+freqs[d][2]) + 0.3*math.Cos(freqs[d][1]*2*math.Pi*x)
		}
		data[i] = v * 10
	}
	return data
}

func genNoisy(seed int64, n int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	data := make([]float64, n)
	for i := range data {
		data[i] = rng.NormFloat64() * 100
	}
	return data
}

func allPredictors() []Predictor {
	return []Predictor{PredictorLorenzo, PredictorInterp, PredictorRegression}
}

func TestRoundTripErrorBound(t *testing.T) {
	shapes := [][]int{
		{1000},
		{40, 50},
		{16, 20, 24},
		{5, 8, 9, 6},
	}
	ebs := []float64{1e-1, 1e-3, 1e-5}
	for _, dims := range shapes {
		data := genSmooth(7, dims)
		for _, p := range allPredictors() {
			for _, eb := range ebs {
				cfg := DefaultConfig(eb)
				cfg.Predictor = p
				stream, st, err := Compress(data, dims, cfg)
				if err != nil {
					t.Fatalf("%v dims=%v eb=%g: compress: %v", p, dims, eb, err)
				}
				if st.NumPoints != len(data) {
					t.Fatalf("stats points %d != %d", st.NumPoints, len(data))
				}
				out, gotDims, err := Decompress(stream)
				if err != nil {
					t.Fatalf("%v dims=%v eb=%g: decompress: %v", p, dims, eb, err)
				}
				if len(gotDims) != len(dims) {
					t.Fatalf("dims mismatch: %v vs %v", gotDims, dims)
				}
				for i := range dims {
					if gotDims[i] != dims[i] {
						t.Fatalf("dims mismatch: %v vs %v", gotDims, dims)
					}
				}
				if got := MaxAbsError(data, out); got > eb+1e-12 {
					t.Fatalf("%v dims=%v eb=%g: max error %g exceeds bound", p, dims, eb, got)
				}
			}
		}
	}
}

func TestCompressionRatioOnSmoothData(t *testing.T) {
	dims := []int{64, 64, 64}
	data := genSmooth(3, dims)
	cfg := DefaultConfig(1e-2)
	stream, _, err := Compress(data, dims, cfg)
	if err != nil {
		t.Fatal(err)
	}
	raw := len(data) * 8
	ratio := float64(raw) / float64(len(stream))
	if ratio < 10 {
		t.Errorf("smooth data should compress well: ratio %.1f", ratio)
	}
}

func TestInterpBeatsLorenzoOnSmoothData(t *testing.T) {
	dims := []int{48, 48, 48}
	data := genSmooth(11, dims)
	sizes := map[Predictor]int{}
	for _, p := range []Predictor{PredictorLorenzo, PredictorInterp} {
		cfg := DefaultConfig(1e-3)
		cfg.Predictor = p
		stream, _, err := Compress(data, dims, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sizes[p] = len(stream)
	}
	// The paper reports SZ-interp achieving the highest ratio on smooth data.
	// Separable sinusoid fields favor Lorenzo, so only require that interp
	// stays in the same ballpark rather than strictly winning.
	if float64(sizes[PredictorInterp]) > 2.2*float64(sizes[PredictorLorenzo]) {
		t.Errorf("interp %d bytes much worse than lorenzo %d bytes",
			sizes[PredictorInterp], sizes[PredictorLorenzo])
	}
}

func TestNoisyDataStillBounded(t *testing.T) {
	data := genNoisy(5, 4096)
	dims := []int{4096}
	for _, p := range allPredictors() {
		cfg := DefaultConfig(0.5)
		cfg.Predictor = p
		stream, _, err := Compress(data, dims, cfg)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		out, _, err := Decompress(stream)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if got := MaxAbsError(data, out); got > 0.5+1e-12 {
			t.Fatalf("%v: error %g > bound", p, got)
		}
	}
}

func TestRelativeBound(t *testing.T) {
	dims := []int{32, 32}
	data := genSmooth(13, dims)
	lo, hi := data[0], data[0]
	for _, v := range data {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	rel := 1e-3
	cfg := DefaultConfig(rel)
	cfg.BoundMode = BoundRelative
	stream, _, err := Compress(data, dims, cfg)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	absEB := rel * (hi - lo)
	if got := MaxAbsError(data, out); got > absEB+1e-12 {
		t.Fatalf("relative bound violated: %g > %g", got, absEB)
	}
}

func TestConstantField(t *testing.T) {
	dims := []int{10, 10, 10}
	data := make([]float64, 1000)
	for i := range data {
		data[i] = 42.5
	}
	for _, p := range allPredictors() {
		cfg := DefaultConfig(1e-6)
		cfg.Predictor = p
		stream, st, err := Compress(data, dims, cfg)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if st.P0Quant < 0.9 {
			t.Errorf("%v: constant field p0 = %.3f, want near 1", p, st.P0Quant)
		}
		out, _, err := Decompress(stream)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if got := MaxAbsError(data, out); got > 1e-6 {
			t.Fatalf("%v: %g", p, got)
		}
	}
}

func TestSpecialValuesEscape(t *testing.T) {
	dims := []int{64}
	data := make([]float64, 64)
	for i := range data {
		data[i] = float64(i)
	}
	data[10] = math.Inf(1)
	data[20] = math.Inf(-1)
	// NaN cannot round-trip through equality; use Inf only here.
	cfg := DefaultConfig(1e-3)
	cfg.Predictor = PredictorLorenzo
	stream, _, err := Compress(data, dims, cfg)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(out[10], 1) || !math.IsInf(out[20], -1) {
		t.Fatal("infinities must be preserved as literals")
	}
}

func TestAllBackends(t *testing.T) {
	dims := []int{24, 24, 24}
	data := genSmooth(17, dims)
	for _, b := range []lossless.Backend{lossless.None, lossless.Deflate, lossless.LZSS} {
		cfg := DefaultConfig(1e-4)
		cfg.Backend = b
		stream, _, err := Compress(data, dims, cfg)
		if err != nil {
			t.Fatalf("%v: %v", b, err)
		}
		out, _, err := Decompress(stream)
		if err != nil {
			t.Fatalf("%v: %v", b, err)
		}
		if got := MaxAbsError(data, out); got > 1e-4+1e-12 {
			t.Fatalf("%v: %g", b, got)
		}
	}
}

func TestInterpModes(t *testing.T) {
	dims := []int{100, 100}
	data := genSmooth(19, dims)
	for _, m := range []InterpMode{InterpLinear, InterpCubic} {
		cfg := DefaultConfig(1e-4)
		cfg.Interp = m
		stream, _, err := Compress(data, dims, cfg)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		out, _, err := Decompress(stream)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if got := MaxAbsError(data, out); got > 1e-4+1e-12 {
			t.Fatalf("%v: %g", m, got)
		}
	}
}

func TestOddShapes(t *testing.T) {
	shapes := [][]int{{1}, {2}, {3}, {7}, {1, 1}, {1, 17}, {17, 1}, {3, 5, 7}, {1, 1, 1}, {2, 2, 2}}
	for _, dims := range shapes {
		data := genSmooth(23, dims)
		for _, p := range allPredictors() {
			cfg := DefaultConfig(1e-3)
			cfg.Predictor = p
			stream, _, err := Compress(data, dims, cfg)
			if err != nil {
				t.Fatalf("%v dims=%v: %v", p, dims, err)
			}
			out, _, err := Decompress(stream)
			if err != nil {
				t.Fatalf("%v dims=%v: %v", p, dims, err)
			}
			if got := MaxAbsError(data, out); got > 1e-3+1e-12 {
				t.Fatalf("%v dims=%v: %g", p, dims, got)
			}
		}
	}
}

func TestInvalidInputs(t *testing.T) {
	data := []float64{1, 2, 3}
	if _, _, err := Compress(data, []int{4}, DefaultConfig(1e-3)); err == nil {
		t.Fatal("dims mismatch must error")
	}
	if _, _, err := Compress(data, []int{3}, DefaultConfig(0)); err == nil {
		t.Fatal("zero error bound must error")
	}
	if _, _, err := Compress(data, []int{3}, DefaultConfig(-1)); err == nil {
		t.Fatal("negative error bound must error")
	}
	if _, _, err := Compress(nil, nil, DefaultConfig(1e-3)); err == nil {
		t.Fatal("empty input must error")
	}
	if _, _, err := Compress(data, []int{1, 1, 1, 1, 3}, DefaultConfig(1e-3)); err == nil {
		t.Fatal("5-D must error")
	}
}

func TestDecompressCorrupt(t *testing.T) {
	dims := []int{16, 16}
	data := genSmooth(29, dims)
	stream, _, err := Compress(data, dims, DefaultConfig(1e-3))
	if err != nil {
		t.Fatal(err)
	}
	cases := [][]byte{
		nil,
		{1, 2, 3},
		stream[:10],
		stream[:len(stream)/2],
	}
	for i, cse := range cases {
		if _, _, err := Decompress(cse); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
	// Flip magic.
	bad := append([]byte{}, stream...)
	bad[0] ^= 0xFF
	if _, _, err := Decompress(bad); err == nil {
		t.Error("bad magic: want error")
	}
}

func TestStatsConsistency(t *testing.T) {
	dims := []int{32, 32, 32}
	data := genSmooth(31, dims)
	_, st, err := Compress(data, dims, DefaultConfig(1e-2))
	if err != nil {
		t.Fatal(err)
	}
	if st.P0Quant < 0 || st.P0Quant > 1 {
		t.Errorf("p0 out of range: %v", st.P0Quant)
	}
	if st.HuffP0 < 0 || st.HuffP0 > 1 {
		t.Errorf("P0 out of range: %v", st.HuffP0)
	}
	if st.QuantEntropy < 0 || st.QuantEntropy > 17 {
		t.Errorf("entropy out of range: %v", st.QuantEntropy)
	}
	if st.CompressedBytes <= 0 {
		t.Error("compressed size must be positive")
	}
}

func TestLargerBoundHigherP0(t *testing.T) {
	dims := []int{48, 48}
	data := genSmooth(37, dims)
	var prev float64 = -1
	for _, eb := range []float64{1e-5, 1e-3, 1e-1} {
		_, st, err := Compress(data, dims, DefaultConfig(eb))
		if err != nil {
			t.Fatal(err)
		}
		if st.P0Quant < prev {
			t.Errorf("p0 should grow with eb: eb=%g p0=%.4f prev=%.4f", eb, st.P0Quant, prev)
		}
		prev = st.P0Quant
	}
}

func TestSampledCodes(t *testing.T) {
	dims := []int{64, 64}
	data := genSmooth(41, dims)
	codes, err := SampledCodes(data, dims, DefaultConfig(1e-3), 100)
	if err != nil {
		t.Fatal(err)
	}
	wantN := (len(data) + 99) / 100
	if len(codes) != wantN {
		t.Fatalf("sampled %d codes, want %d", len(codes), wantN)
	}
	// All codes must fall inside the alphabet.
	for _, c := range codes {
		if c < 0 || c >= 2*32768 {
			t.Fatalf("code %d out of alphabet", c)
		}
	}
}

func TestAvgLorenzoError(t *testing.T) {
	dims := []int{32, 32}
	smooth := genSmooth(43, dims)
	noisy := genNoisy(43, 1024)
	se, err := AvgLorenzoError(smooth, dims, 1)
	if err != nil {
		t.Fatal(err)
	}
	ne, err := AvgLorenzoError(noisy, dims, 1)
	if err != nil {
		t.Fatal(err)
	}
	if se >= ne {
		t.Errorf("smooth lorenzo error %g should be below noisy %g", se, ne)
	}
}

func TestParsePredictor(t *testing.T) {
	for _, tt := range []struct {
		in   string
		want Predictor
	}{
		{"lorenzo", PredictorLorenzo},
		{"interp", PredictorInterp},
		{"sz-interp", PredictorInterp},
		{"regression", PredictorRegression},
	} {
		got, err := ParsePredictor(tt.in)
		if err != nil || got != tt.want {
			t.Errorf("ParsePredictor(%q) = %v, %v", tt.in, got, err)
		}
	}
	if _, err := ParsePredictor("nope"); err == nil {
		t.Error("want error for unknown predictor")
	}
}

// Property test: error bound holds for random fields across predictors.
func TestErrorBoundQuick(t *testing.T) {
	f := func(seed int64, rough bool, predSel uint8) bool {
		dims := []int{17, 23}
		var data []float64
		if rough {
			data = genNoisy(seed, 17*23)
		} else {
			data = genSmooth(seed, dims)
		}
		preds := allPredictors()
		p := preds[int(predSel)%len(preds)]
		eb := 1e-3
		cfg := DefaultConfig(eb)
		cfg.Predictor = p
		stream, _, err := Compress(data, dims, cfg)
		if err != nil {
			return false
		}
		out, _, err := Decompress(stream)
		if err != nil {
			return false
		}
		return MaxAbsError(data, out) <= eb+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCompressInterp3D(b *testing.B) {
	dims := []int{64, 64, 64}
	data := genSmooth(2, dims)
	cfg := DefaultConfig(1e-3)
	b.SetBytes(int64(len(data) * 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Compress(data, dims, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompressLorenzo3D(b *testing.B) {
	dims := []int{64, 64, 64}
	data := genSmooth(2, dims)
	cfg := DefaultConfig(1e-3)
	cfg.Predictor = PredictorLorenzo
	b.SetBytes(int64(len(data) * 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Compress(data, dims, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompress3D(b *testing.B) {
	dims := []int{64, 64, 64}
	data := genSmooth(2, dims)
	stream, _, err := Compress(data, dims, DefaultConfig(1e-3))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data) * 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Decompress(stream); err != nil {
			b.Fatal(err)
		}
	}
}
