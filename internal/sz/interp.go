package sz

// interpTraverse implements the SZ3-interp multilevel traversal. Values on a
// coarse lattice are refined level by level: at each level with spacing
// `stride`, the midpoints (odd multiples of stride/2) along each axis are
// predicted by 1-D interpolation from already-reconstructed lattice
// neighbors at distance stride/2.
//
// The traversal visits every point exactly once: a point whose minimum
// 2-adic valuation across coordinates is v is processed at level h = 2^v on
// the last axis whose coordinate has valuation v. The same deterministic
// order runs during compression and decompression.
func interpTraverse(c *traversal, dims []int, mode InterpMode) {
	nd := len(dims)
	strides := rowMajorStrides(dims)
	maxDim := 0
	for _, d := range dims {
		if d > maxDim {
			maxDim = d
		}
	}
	// Seed: the origin predicted as 0.
	c.process(0, 0)
	if maxDim == 1 {
		// Degenerate: handle remaining points (other dims may exceed 1 only
		// if maxDim > 1, so nothing remains).
		return
	}
	top := 1
	for top < maxDim {
		top <<= 1
	}
	for stride := top; stride >= 2; stride >>= 1 {
		h := stride / 2
		for d := 0; d < nd; d++ {
			interpAxis(c, dims, strides, d, stride, h, mode)
		}
	}
}

// interpAxis predicts all points p with p[d] ≡ h (mod stride), p[a<d] ≡ 0
// (mod h), p[a>d] ≡ 0 (mod stride).
func interpAxis(c *traversal, dims, strides []int, d, stride, h int, mode InterpMode) {
	nd := len(dims)
	// Step sizes per axis for the odometer.
	steps := make([]int, nd)
	for a := 0; a < nd; a++ {
		switch {
		case a < d:
			steps[a] = h
		case a == d:
			steps[a] = stride
		default:
			steps[a] = stride
		}
	}
	coords := make([]int, nd)
	coords[d] = h
	if coords[d] >= dims[d] {
		return
	}
	axisStride := strides[d]
	// The flat index is maintained incrementally: stepping along axis d
	// (the overwhelmingly common advance) adds a constant, and only a
	// carry into another axis — once per line — recomputes from coords.
	// The visit order is identical to the original full recomputation, so
	// the emitted codes (and stream bytes) are unchanged.
	idx := 0
	for a := 0; a < nd; a++ {
		idx += coords[a] * strides[a]
	}
	dStep := steps[d] * axisStride
	for {
		pred := interpPredict(c.recon, coords[d], dims[d], axisStride, idx, h, mode)
		c.process(idx, pred)
		// Odometer advance: axis d fastest (cache-friendlier along lines),
		// then later axes, then earlier axes.
		if coords[d]+steps[d] < dims[d] {
			coords[d] += steps[d]
			idx += dStep
			continue
		}
		if !advanceInterpCarry(coords, dims, steps, d) {
			return
		}
		idx = 0
		for a := 0; a < nd; a++ {
			idx += coords[a] * strides[a]
		}
	}
}

// advanceInterpCarry handles the interp odometer's carry case: axis d has
// run off its extent, so reset it to h and advance the next axis
// (nd-1..0, skipping d). Returns false when the enumeration is complete.
func advanceInterpCarry(coords, dims, steps []int, d int) bool {
	nd := len(dims)
	coords[d] = steps[d] / 2 // reset to h
	for a := nd - 1; a >= 0; a-- {
		if a == d {
			continue
		}
		coords[a] += steps[a]
		if coords[a] < dims[a] {
			return true
		}
		coords[a] = 0
	}
	return false
}

// interpPredict computes the 1-D interpolation prediction for position x
// along an axis with the given element stride. idx is the flat index of the
// point; neighbors at ±h, ±3h along the axis are addressed relative to it.
func interpPredict(recon []float64, x, dimLen, axisStride, idx, h int, mode InterpMode) float64 {
	left := recon[idx-h*axisStride]
	hasRight := x+h < dimLen
	if !hasRight {
		// Boundary: fall back to the nearest known value.
		return left
	}
	right := recon[idx+h*axisStride]
	if mode == InterpCubic {
		hasL3 := x-3*h >= 0
		hasR3 := x+3*h < dimLen
		if hasL3 && hasR3 {
			l3 := recon[idx-3*h*axisStride]
			r3 := recon[idx+3*h*axisStride]
			// 4-point cubic midpoint formula (-1/16, 9/16, 9/16, -1/16).
			return (-l3 + 9*left + 9*right - r3) / 16
		}
	}
	return (left + right) / 2
}
