package sz

// regressionTraverse implements the SZ2-style per-block linear-regression
// predictor: the grid is split into blocks of side BlockSide; a hyperplane
// f(x) = β0 + Σ βa·xa is least-squares fitted to each block's original
// values, the coefficients are stored (rounded to float32 so both codec
// directions predict identically), and the residuals are quantized.
func regressionTraverse(c *traversal, dims []int, blockSide int) error {
	nd := len(dims)
	strides := rowMajorStrides(dims)
	nBlocks := make([]int, nd)
	for a, d := range dims {
		nBlocks[a] = (d + blockSide - 1) / blockSide
	}
	blockCoord := make([]int, nd)
	totalBlocks := 1
	for _, nb := range nBlocks {
		totalBlocks *= nb
	}
	lo := make([]int, nd)
	hi := make([]int, nd)
	for b := 0; b < totalBlocks; b++ {
		for a := 0; a < nd; a++ {
			lo[a] = blockCoord[a] * blockSide
			hi[a] = lo[a] + blockSide
			if hi[a] > dims[a] {
				hi[a] = dims[a]
			}
		}
		if err := processBlock(c, strides, lo, hi); err != nil {
			return err
		}
		for a := nd - 1; a >= 0; a-- {
			blockCoord[a]++
			if blockCoord[a] < nBlocks[a] {
				break
			}
			blockCoord[a] = 0
		}
	}
	return nil
}

func processBlock(c *traversal, strides, lo, hi []int) error {
	nd := len(lo)
	var coefs []float64
	if c.data != nil {
		raw := fitBlock(c.data, strides, lo, hi)
		coefs = c.pushCoeffs(raw)
	} else {
		var err error
		coefs, err = c.nextCoeffs(nd + 1)
		if err != nil {
			return err
		}
	}
	// Visit block points row-major.
	coords := make([]int, nd)
	copy(coords, lo)
	for {
		idx := 0
		pred := coefs[0]
		for a := 0; a < nd; a++ {
			idx += coords[a] * strides[a]
			pred += coefs[a+1] * float64(coords[a]-lo[a])
		}
		c.process(idx, pred)
		adv := false
		for a := nd - 1; a >= 0; a-- {
			coords[a]++
			if coords[a] < hi[a] {
				adv = true
				break
			}
			coords[a] = lo[a]
		}
		if !adv {
			return nil
		}
	}
}

// fitBlock computes the least-squares hyperplane coefficients
// [β0, β1..βnd] for the block's original values using local coordinates.
func fitBlock(data []float64, strides, lo, hi []int) []float64 {
	nd := len(lo)
	dim := nd + 1
	// Normal equations: A·β = b with A = Σ φφᵀ, b = Σ φ·y, φ = (1, x0..).
	a := make([][]float64, dim)
	for i := range a {
		a[i] = make([]float64, dim)
	}
	bvec := make([]float64, dim)
	phi := make([]float64, dim)
	phi[0] = 1

	coords := make([]int, nd)
	copy(coords, lo)
	count := 0
	var sum float64
	for {
		idx := 0
		for axis := 0; axis < nd; axis++ {
			idx += coords[axis] * strides[axis]
			phi[axis+1] = float64(coords[axis] - lo[axis])
		}
		y := data[idx]
		sum += y
		count++
		for i := 0; i < dim; i++ {
			for j := i; j < dim; j++ {
				a[i][j] += phi[i] * phi[j]
			}
			bvec[i] += phi[i] * y
		}
		adv := false
		for axis := nd - 1; axis >= 0; axis-- {
			coords[axis]++
			if coords[axis] < hi[axis] {
				adv = true
				break
			}
			coords[axis] = lo[axis]
		}
		if !adv {
			break
		}
	}
	// Mirror the symmetric matrix.
	for i := 0; i < dim; i++ {
		for j := 0; j < i; j++ {
			a[i][j] = a[j][i]
		}
	}
	coefs, ok := solveLinear(a, bvec)
	if !ok {
		// Degenerate block (e.g., single row/column): mean-only model.
		coefs = make([]float64, dim)
		if count > 0 {
			coefs[0] = sum / float64(count)
		}
	}
	return coefs
}

// solveLinear solves a small dense system via Gaussian elimination with
// partial pivoting. Returns ok=false for (near-)singular systems.
func solveLinear(a [][]float64, b []float64) ([]float64, bool) {
	n := len(b)
	// Work on copies.
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n+1)
		copy(m[i], a[i])
		m[i][n] = b[i]
	}
	for col := 0; col < n; col++ {
		// Pivot.
		piv := col
		for r := col + 1; r < n; r++ {
			if abs(m[r][col]) > abs(m[piv][col]) {
				piv = r
			}
		}
		if abs(m[piv][col]) < 1e-12 {
			return nil, false
		}
		m[col], m[piv] = m[piv], m[col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] / m[col][col]
			for k := col; k <= n; k++ {
				m[r][k] -= f * m[col][k]
			}
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := m[i][n]
		for k := i + 1; k < n; k++ {
			s -= m[i][k] * x[k]
		}
		x[i] = s / m[i][i]
	}
	return x, true
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
