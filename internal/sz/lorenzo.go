package sz

// lorenzoTraverse visits every point in row-major order and predicts each
// value with the n-dimensional Lorenzo predictor: the inclusion–exclusion
// sum over the 2^d − 1 already-reconstructed neighbors in the negative
// orthant. Out-of-range neighbors contribute zero, which makes the first
// point's prediction 0.
func lorenzoTraverse(c *traversal, dims []int) {
	switch len(dims) {
	case 1:
		lorenzo1D(c, dims[0])
	case 2:
		lorenzo2D(c, dims[0], dims[1])
	case 3:
		lorenzo3D(c, dims[0], dims[1], dims[2])
	default:
		lorenzoND(c, dims)
	}
}

func lorenzo1D(c *traversal, n int) {
	for i := 0; i < n; i++ {
		var pred float64
		if i > 0 {
			pred = c.recon[i-1]
		}
		c.process(i, pred)
	}
}

func lorenzo2D(c *traversal, ny, nx int) {
	r := c.recon
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			idx := j*nx + i
			var a, b, ab float64
			if i > 0 {
				a = r[idx-1]
			}
			if j > 0 {
				b = r[idx-nx]
			}
			if i > 0 && j > 0 {
				ab = r[idx-nx-1]
			}
			c.process(idx, a+b-ab)
		}
	}
}

func lorenzo3D(c *traversal, nz, ny, nx int) {
	r := c.recon
	sy := nx
	sz := nx * ny
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				idx := k*sz + j*sy + i
				var x, y, z, xy, xz, yz, xyz float64
				hasX, hasY, hasZ := i > 0, j > 0, k > 0
				if hasX {
					x = r[idx-1]
				}
				if hasY {
					y = r[idx-sy]
				}
				if hasZ {
					z = r[idx-sz]
				}
				if hasX && hasY {
					xy = r[idx-sy-1]
				}
				if hasX && hasZ {
					xz = r[idx-sz-1]
				}
				if hasY && hasZ {
					yz = r[idx-sz-sy]
				}
				if hasX && hasY && hasZ {
					xyz = r[idx-sz-sy-1]
				}
				c.process(idx, x+y+z-xy-xz-yz+xyz)
			}
		}
	}
}

// lorenzoND is the generic inclusion–exclusion fallback for 4-D data.
func lorenzoND(c *traversal, dims []int) {
	nd := len(dims)
	strides := rowMajorStrides(dims)
	coords := make([]int, nd)
	total := 1
	for _, d := range dims {
		total *= d
	}
	for idx := 0; idx < total; idx++ {
		var pred float64
		// Enumerate all nonempty neighbor masks.
		for mask := 1; mask < 1<<nd; mask++ {
			off := 0
			valid := true
			for d := 0; d < nd; d++ {
				if mask&(1<<d) != 0 {
					if coords[d] == 0 {
						valid = false
						break
					}
					off += strides[d]
				}
			}
			if !valid {
				continue
			}
			if popcount(mask)%2 == 1 {
				pred += c.recon[idx-off]
			} else {
				pred -= c.recon[idx-off]
			}
		}
		c.process(idx, pred)
		// Advance the odometer (row-major: last dim fastest).
		for d := nd - 1; d >= 0; d-- {
			coords[d]++
			if coords[d] < dims[d] {
				break
			}
			coords[d] = 0
		}
	}
}

// rowMajorStrides returns element strides for row-major layout
// (dims[0] slowest, dims[len-1] fastest).
func rowMajorStrides(dims []int) []int {
	nd := len(dims)
	strides := make([]int, nd)
	s := 1
	for d := nd - 1; d >= 0; d-- {
		strides[d] = s
		s *= dims[d]
	}
	return strides
}

func popcount(x int) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
