package sz

import (
	"fmt"

	"ocelot/internal/quant"
)

// SampledCodes runs the cheap feature-extraction pass of the quality
// predictor (paper Section VI / Fig 13): every sampleStride-th point is
// quantized against a Lorenzo prediction computed from the *original* data
// values (not reconstructed values), exactly as the paper describes for its
// p0/P0 estimation. No encoding is performed.
//
// The returned codes use the same alphabet as a real compression run with
// cfg, so downstream feature extraction (p0, P0, quantization entropy,
// run-length estimator) matches the full-compression statistics closely.
func SampledCodes(data []float64, dims []int, cfg Config, sampleStride int) ([]int, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if err := validateDims(len(data), dims); err != nil {
		return nil, err
	}
	if sampleStride < 1 {
		sampleStride = 1
	}
	q := quant.New(cfg.AbsoluteBound(data), cfg.Radius)
	codes := make([]int, 0, len(data)/sampleStride+1)
	strides := rowMajorStrides(dims)
	nd := len(dims)
	coords := make([]int, nd)
	for idx := 0; idx < len(data); idx += sampleStride {
		flatToCoords(idx, dims, coords)
		pred := lorenzoOriginal(data, strides, coords, nd, idx)
		code, _, ok := q.Quantize(data[idx], pred)
		if !ok {
			code = quant.EscapeCode
		}
		codes = append(codes, code)
	}
	if len(codes) == 0 {
		return nil, fmt.Errorf("sz: sampling produced no points")
	}
	return codes, nil
}

// lorenzoOriginal evaluates the Lorenzo predictor on original data values.
func lorenzoOriginal(data []float64, strides []int, coords []int, nd, idx int) float64 {
	var pred float64
	for mask := 1; mask < 1<<nd; mask++ {
		off := 0
		valid := true
		for d := 0; d < nd; d++ {
			if mask&(1<<d) != 0 {
				if coords[d] == 0 {
					valid = false
					break
				}
				off += strides[d]
			}
		}
		if !valid {
			continue
		}
		if popcount(mask)%2 == 1 {
			pred += data[idx-off]
		} else {
			pred -= data[idx-off]
		}
	}
	return pred
}

// flatToCoords converts a row-major flat index into per-axis coordinates.
func flatToCoords(idx int, dims []int, coords []int) {
	for d := len(dims) - 1; d >= 0; d-- {
		coords[d] = idx % dims[d]
		idx /= dims[d]
	}
}

// AvgLorenzoError computes the mean absolute Lorenzo prediction error over
// every sampleStride-th point, using original data values. It is the
// "average lorenzo error" data-based feature from the paper's Fig 3.
func AvgLorenzoError(data []float64, dims []int, sampleStride int) (float64, error) {
	if err := validateDims(len(data), dims); err != nil {
		return 0, err
	}
	if sampleStride < 1 {
		sampleStride = 1
	}
	strides := rowMajorStrides(dims)
	nd := len(dims)
	coords := make([]int, nd)
	var sum float64
	var n int
	for idx := 0; idx < len(data); idx += sampleStride {
		flatToCoords(idx, dims, coords)
		pred := lorenzoOriginal(data, strides, coords, nd, idx)
		d := data[idx] - pred
		if d < 0 {
			d = -d
		}
		sum += d
		n++
	}
	if n == 0 {
		return 0, fmt.Errorf("sz: no sampled points")
	}
	return sum / float64(n), nil
}
