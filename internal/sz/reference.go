package sz

import (
	"fmt"
	"math"

	"ocelot/internal/huffman"
	"ocelot/internal/lossless"
	"ocelot/internal/quant"
)

// This file pins the pre-overhaul entropy stage of the sz3 pipeline as an
// executable baseline: quantization codes materialized as []int (eight
// bytes per symbol), a separate frequency-count pass, the regrow-prone
// ReferenceEncode, the bit-by-bit ReferenceDecode, and fresh allocations
// for every buffer. The predictor traversal itself is shared with the
// production path — the overhaul did not touch the prediction math — so
// the pair isolates exactly the entropy-stage and allocation differences.
//
// Two jobs, mirroring huffman's reference.go:
//
//   - Byte-compatibility oracle: TestCompressMatchesReference asserts the
//     overhauled path emits bit-identical streams and reconstructions.
//   - Benchmark baseline: the HotPath experiment and BENCH_hotpath.json
//     report the production path's MB/s beside these functions' on the
//     same machine, so the ≥2x decompress / ≥1.3x compress targets are a
//     same-host relative measure rather than a stale absolute number.

// CompressReference is the pre-overhaul Compress. It produces streams
// byte-identical to Compress — only slower, with the old allocation
// profile. Retained as the hot-path benchmark baseline; new code should
// call Compress.
func CompressReference(data []float64, dims []int, cfg Config) ([]byte, *Stats, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, nil, err
	}
	if err := validateDims(len(data), dims); err != nil {
		return nil, nil, err
	}
	if len(data) == 0 {
		return nil, nil, fmt.Errorf("sz: empty input")
	}
	absEB := cfg.AbsoluteBound(data)
	q := quant.New(absEB, cfg.Radius)
	c := &traversal{
		q:     q,
		data:  data,
		recon: make([]float64, len(data)),
		syms:  &huffman.SymbolStream{Packed: make([]uint16, 0, len(data))},
		// freqs nil: the reference counts frequencies in its own pass
		// below, exactly as the pre-overhaul encodeCodes did.
	}
	if err := runPredictor(c, dims, cfg); err != nil {
		return nil, nil, err
	}
	codes := c.syms.Ints() // the old []int materialization

	huffBytes, huffStats, err := encodeCodesReference(codes, q.AlphabetSize())
	if err != nil {
		return nil, nil, err
	}
	inner := &innerPayload{literals: c.literals, coeffs: c.coeffs, huffman: huffBytes}
	body, err := lossless.ReferenceCompress(inner.marshal(), cfg.Backend)
	if err != nil {
		return nil, nil, err
	}
	h := &header{
		predictor: cfg.Predictor,
		interp:    cfg.Interp,
		boundMode: cfg.BoundMode,
		radius:    q.Radius(),
		absEB:     absEB,
		dims:      dims,
	}
	stream := append(h.marshal(), body...)

	st := &Stats{
		NumPoints:       len(data),
		CompressedBytes: len(stream),
		NumEscapes:      len(c.literals),
		P0Quant:         huffStats.p0,
		HuffP0:          huffStats.bitShare0,
		QuantEntropy:    huffStats.entropy,
		HuffmanBits:     huffStats.totalBits,
	}
	return stream, st, nil
}

// DecompressReference is the pre-overhaul Decompress: the bit-by-bit
// bucket decoder into []int codes, fresh buffers throughout. (Chunked
// containers are not routed — it exists to benchmark the single-stream
// path.)
func DecompressReference(stream []byte) ([]float64, []int, error) {
	h, body, err := parseHeader(stream)
	if err != nil {
		return nil, nil, err
	}
	innerBytes, err := lossless.ReferenceDecompress(body)
	if err != nil {
		return nil, nil, fmt.Errorf("sz: body: %w", err)
	}
	inner, err := parseInnerPayload(innerBytes)
	if err != nil {
		return nil, nil, err
	}
	codes, err := huffman.ReferenceDecode(inner.huffman)
	if err != nil {
		return nil, nil, fmt.Errorf("sz: codes: %w", err)
	}
	n := 1
	for _, d := range h.dims {
		n *= d
	}
	if len(codes) != n {
		return nil, nil, fmt.Errorf("sz: code count %d != points %d: %w", len(codes), n, ErrCorrupt)
	}
	escapes := 0
	for _, code := range codes {
		if code == quant.EscapeCode {
			escapes++
		}
	}
	if escapes != len(inner.literals) {
		return nil, nil, fmt.Errorf("sz: %d escape codes for %d literals: %w", escapes, len(inner.literals), ErrCorrupt)
	}
	var syms huffman.SymbolStream
	syms.Packed = make([]uint16, 0, len(codes))
	syms.AppendInts(codes)
	c := &traversal{
		q:        quant.New(h.absEB, h.radius),
		recon:    make([]float64, n),
		syms:     &syms,
		literals: inner.literals,
		coeffs:   inner.coeffs,
	}
	cfg := Config{
		ErrorBound: h.absEB,
		BoundMode:  BoundAbsolute,
		Predictor:  h.predictor,
		Interp:     h.interp,
		Radius:     h.radius,
		BlockSide:  6,
	}
	if err := runPredictor(c, h.dims, cfg); err != nil {
		return nil, nil, err
	}
	if c.litIdx != len(c.literals) {
		return nil, nil, fmt.Errorf("sz: %d literals unconsumed: %w", len(c.literals)-c.litIdx, ErrCorrupt)
	}
	dims := make([]int, len(h.dims))
	copy(dims, h.dims)
	return c.recon, dims, nil
}

// encodeCodesReference is the pre-overhaul encodeCodes: a dedicated
// frequency pass over the []int codes, the regrow-prone encoder, and a
// locally duplicated entropy loop (the duplication the production path
// removed in favour of metrics.SymbolEntropyFromCounts).
func encodeCodesReference(codes []int, alphabet int) ([]byte, huffRunStats, error) {
	var st huffRunStats
	freqs := make([]uint64, alphabet)
	for _, s := range codes {
		freqs[s]++
	}
	zero := alphabet / 2 // quantizer zero bin
	if len(codes) > 0 {
		st.p0 = float64(freqs[zero]) / float64(len(codes))
		st.entropy = refSymbolEntropy(freqs, len(codes))
	}
	if len(codes) == 0 {
		freqs[0] = 1
	}
	table, err := huffman.ReferenceBuildTable(freqs)
	if err != nil {
		return nil, st, err
	}
	totalBits := 0
	for sym, f := range freqs {
		if f > 0 {
			c := table.CodeFor(sym)
			totalBits += int(f) * int(c.Len)
		}
	}
	if len(codes) == 0 {
		totalBits = 0
	}
	st.totalBits = totalBits
	if totalBits > 0 {
		st.bitShare0 = float64(uint64(table.CodeFor(zero).Len)*freqs[zero]) / float64(totalBits)
	}
	enc, err := huffman.ReferenceEncode(codes, table)
	if err != nil {
		return nil, st, err
	}
	return enc, st, nil
}

// refSymbolEntropy is the entropy loop exactly as the pre-overhaul
// compressor carried it.
func refSymbolEntropy(freqs []uint64, total int) float64 {
	if total == 0 {
		return 0
	}
	var h float64
	ft := float64(total)
	for _, f := range freqs {
		if f == 0 {
			continue
		}
		p := float64(f) / ft
		h -= p * math.Log2(p)
	}
	return h
}
