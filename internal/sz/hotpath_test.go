package sz

import (
	"bytes"
	"math"
	"os"
	"testing"
	"time"

	"ocelot/internal/datagen"
)

func nowSec() float64 { return float64(time.Now().UnixNano()) / 1e9 }

// hotpathField builds a deterministic, mildly noisy field that exercises
// escapes, a spread of quantization bins, and every predictor.
func hotpathField(n int) []float64 {
	data := make([]float64, n)
	for i := range data {
		x := float64(i) / float64(n)
		data[i] = 40*math.Sin(11*x) + 6*x + 0.3*math.Sin(301*x)
	}
	// A few unpredictable spikes force literal escapes.
	for i := 97; i < n; i += 997 {
		data[i] += 1e7
	}
	return data
}

// hotpathCases crosses predictors with dimensionalities (odd extents, so
// boundary code paths run).
func hotpathCases() []struct {
	name string
	dims []int
	pred Predictor
} {
	return []struct {
		name string
		dims []int
		pred Predictor
	}{
		{"interp-1d", []int{1200}, PredictorInterp},
		{"interp-2d", []int{30, 41}, PredictorInterp},
		{"interp-3d", []int{11, 13, 17}, PredictorInterp},
		{"lorenzo-2d", []int{29, 43}, PredictorLorenzo},
		{"lorenzo-4d", []int{5, 7, 6, 9}, PredictorLorenzo},
		{"regression-2d", []int{33, 37}, PredictorRegression},
		{"regression-3d", []int{10, 12, 11}, PredictorRegression},
	}
}

// TestCompressMatchesReference: the overhauled hot path must emit streams
// byte-identical to the pre-overhaul reference path, and both must report
// identical run statistics, for every predictor and dimensionality.
func TestCompressMatchesReference(t *testing.T) {
	for _, tc := range hotpathCases() {
		t.Run(tc.name, func(t *testing.T) {
			n := 1
			for _, d := range tc.dims {
				n *= d
			}
			data := hotpathField(n)
			cfg := DefaultConfig(1e-3)
			cfg.Predictor = tc.pred
			fast, fastStats, err := Compress(data, tc.dims, cfg)
			if err != nil {
				t.Fatal(err)
			}
			ref, refStats, err := CompressReference(data, tc.dims, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(fast, ref) {
				t.Fatalf("streams differ: %d vs %d bytes", len(fast), len(ref))
			}
			if *fastStats != *refStats {
				t.Fatalf("stats differ:\n new %+v\n ref %+v", *fastStats, *refStats)
			}

			fastRecon, fastDims, err := Decompress(fast)
			if err != nil {
				t.Fatal(err)
			}
			refRecon, _, err := DecompressReference(fast)
			if err != nil {
				t.Fatal(err)
			}
			if len(fastDims) != len(tc.dims) {
				t.Fatalf("dims %v", fastDims)
			}
			for i := range fastRecon {
				if fastRecon[i] != refRecon[i] {
					t.Fatalf("reconstruction differs at %d: %g vs %g", i, fastRecon[i], refRecon[i])
				}
			}
			if m := MaxAbsError(data, fastRecon); m > 1e-3*(1+1e-9) {
				t.Fatalf("error %g exceeds bound", m)
			}
		})
	}
}

// TestCompressUnaffectedByDirtyArena pins the arena's no-zeroing contract:
// pooled recon buffers are reused without clearing, which is only sound if
// no traversal ever reads a slot it has not yet written. Poison the pool
// with NaN-filled buffers and assert the emitted stream still matches the
// reference path (which allocates fresh zeroed buffers) bit for bit.
func TestCompressUnaffectedByDirtyArena(t *testing.T) {
	for _, tc := range hotpathCases() {
		t.Run(tc.name, func(t *testing.T) {
			n := 1
			for _, d := range tc.dims {
				n *= d
			}
			data := hotpathField(n)
			cfg := DefaultConfig(1e-3)
			cfg.Predictor = tc.pred
			ref, _, err := CompressReference(data, tc.dims, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for round := 0; round < 8; round++ {
				// Poison a batch of arenas large enough for the run, so the
				// pool hands Compress dirty buffers of sufficient capacity.
				poisoned := make([]*arena, 4)
				for i := range poisoned {
					a := getArena()
					r := a.reconScratch(n)
					for j := range r {
						r[j] = math.NaN()
					}
					poisoned[i] = a
				}
				for _, a := range poisoned {
					a.release()
				}
				got, _, err := Compress(data, tc.dims, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, ref) {
					t.Fatalf("round %d: dirty arena changed the stream", round)
				}
			}
		})
	}
}

// TestGoldenByteIdentity pins the strongest compatibility invariant: a
// fresh Compress of the golden field reproduces the frozen on-disk stream
// byte for byte (the golden file predates the hot-path overhaul).
func TestGoldenByteIdentity(t *testing.T) {
	golden, err := os.ReadFile("testdata/golden/sz3-v1.ocsz")
	if err != nil {
		t.Fatal(err)
	}
	fresh, _, err := Compress(dispatchField(), []int{30, 40}, DefaultConfig(1e-4))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fresh, golden) {
		t.Fatalf("freshly compressed stream (%d bytes) differs from frozen golden (%d bytes)",
			len(fresh), len(golden))
	}
}

// TestSteadyStateAllocs budgets the hot path's allocations: with the
// arena pool warm, Compress and Decompress must allocate O(1) — the
// returned stream/reconstruction plus small fixed headers — never
// O(points). A regression back to per-symbol or per-buffer allocation
// blows these budgets by orders of magnitude.
func TestSteadyStateAllocs(t *testing.T) {
	f, err := datagen.Generate("CESM", "TMQ", 24, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(1e-3)
	stream, _, err := Compress(f.Data, f.Dims, cfg)
	if err != nil {
		t.Fatal(err)
	}

	compressAllocs := testing.AllocsPerRun(10, func() {
		if _, _, err := Compress(f.Data, f.Dims, cfg); err != nil {
			t.Fatal(err)
		}
	})
	// Measured ~30 in steady state (stream, marshal, flate buffer growth,
	// table window, stats); 3x headroom absorbs runtime noise while still
	// failing hard on any O(points) regression (which adds thousands).
	if compressAllocs > 90 {
		t.Errorf("Compress steady state: %.0f allocs/run, budget 90", compressAllocs)
	}

	decompressAllocs := testing.AllocsPerRun(10, func() {
		if _, _, err := Decompress(stream); err != nil {
			t.Fatal(err)
		}
	})
	if decompressAllocs > 60 {
		t.Errorf("Decompress steady state: %.0f allocs/run, budget 60", decompressAllocs)
	}
}

// TestHotPathThroughputGain is a coarse same-host sanity gate under `go
// test`: the overhauled decompress path must beat the pinned reference by
// a comfortable margin (the full ≥2x/≥1.3x acceptance is tracked by
// BENCH_hotpath.json at proper benchmark iteration counts; this guards
// against wiring the reference path back into production by mistake).
func TestHotPathThroughputGain(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	f, err := datagen.Generate("CESM", "TMQ", 24, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(1e-3)
	stream, _, err := Compress(f.Data, f.Dims, cfg)
	if err != nil {
		t.Fatal(err)
	}
	time := func(fn func()) float64 {
		best := math.Inf(1)
		for r := 0; r < 5; r++ {
			start := nowSec()
			fn()
			if d := nowSec() - start; d < best {
				best = d
			}
		}
		return best
	}
	newSec := time(func() {
		if _, _, err := Decompress(stream); err != nil {
			t.Fatal(err)
		}
	})
	refSec := time(func() {
		if _, _, err := DecompressReference(stream); err != nil {
			t.Fatal(err)
		}
	})
	if refSec < newSec {
		t.Errorf("table-driven decompress (%.2gs) slower than the bit-by-bit reference (%.2gs)", newSec, refSec)
	}
}

// TestFreqsScratchCleanCertificate pins the arena's frequency-table
// zeroing contract: the all-zero certificate is a LENGTH, so a later run
// with a larger alphabet that fits capacity must still get zeros beyond
// the previously certified prefix (stale counts there would mint phantom
// symbols into the next Huffman table).
func TestFreqsScratchCleanCertificate(t *testing.T) {
	a := &arena{}
	f := a.freqsScratch(100)
	for i := range f {
		f[i] = 7 // a run dirties the whole table...
	}
	a.freqsCleanLen = 50 // ...but certifies only a 50-entry prefix

	g := a.freqsScratch(100)
	for i, v := range g {
		if v != 0 {
			t.Fatalf("entry %d = %d after partial certificate, want 0", i, v)
		}
	}
	for i := range g {
		g[i] = 9
	}
	a.freqsCleanLen = 100 // full certificate (but entries are 9 — simulate a lying run)
	// A smaller request inside a full certificate skips the clear; the
	// certificate is consumed either way.
	h := a.freqsScratch(40)
	if len(h) != 40 {
		t.Fatalf("len = %d", len(h))
	}
	if a.freqsCleanLen != 0 {
		t.Fatal("certificate not consumed on handout")
	}
	// After an aborted run (no re-certification) everything is cleared.
	k := a.freqsScratch(100)
	for i, v := range k {
		if v != 0 {
			t.Fatalf("entry %d = %d after aborted run, want 0", i, v)
		}
	}
}

// TestCompressAfterRadiusChange: byte-identity must survive arena reuse
// across runs with different quantizer radii (different alphabet sizes
// sharing one pooled frequency table).
func TestCompressAfterRadiusChange(t *testing.T) {
	data := hotpathField(1200)
	for _, radius := range []int{64, 4096, 0, 128, 0} {
		cfg := DefaultConfig(1e-3)
		cfg.Radius = radius
		got, _, err := Compress(data, []int{30, 40}, cfg)
		if err != nil {
			t.Fatalf("radius %d: %v", radius, err)
		}
		want, _, err := CompressReference(data, []int{30, 40}, cfg)
		if err != nil {
			t.Fatalf("radius %d: %v", radius, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("radius %d: stream differs from reference after arena reuse", radius)
		}
	}
}
