package sz

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
)

// chunkTestField builds a smooth 2-D field with deterministic noise.
func chunkTestField(rows, cols int, seed int64) ([]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	data := make([]float64, rows*cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			data[i*cols+j] = math.Sin(float64(i)/7)*math.Cos(float64(j)/11) +
				0.02*rng.Float64()
		}
	}
	return data, []int{rows, cols}
}

func TestPlanChunksCoversFieldExactly(t *testing.T) {
	cases := []struct {
		dims   []int
		target int
	}{
		{[]int{100, 30}, 500},
		{[]int{7, 13}, 13},
		{[]int{64}, 10},
		{[]int{5, 4, 3}, 24},
		{[]int{9, 9}, 1}, // smaller than one row: one row per chunk
		{[]int{12, 8}, 0},
	}
	for _, c := range cases {
		plan := PlanChunks(c.dims, c.target)
		if len(plan) == 0 {
			t.Fatalf("dims %v: empty plan", c.dims)
		}
		prev := 0
		for i, r := range plan {
			if r.Index != i {
				t.Errorf("dims %v: chunk %d has index %d", c.dims, i, r.Index)
			}
			if r.Start != prev {
				t.Errorf("dims %v: chunk %d starts at %d, want %d", c.dims, i, r.Start, prev)
			}
			if r.End <= r.Start {
				t.Errorf("dims %v: chunk %d empty [%d,%d)", c.dims, i, r.Start, r.End)
			}
			prev = r.End
		}
		if prev != c.dims[0] {
			t.Errorf("dims %v: plan covers %d of %d rows", c.dims, prev, c.dims[0])
		}
		if c.target <= 0 && len(plan) != 1 {
			t.Errorf("dims %v target %d: want a single chunk, got %d", c.dims, c.target, len(plan))
		}
		// Balanced: row counts differ by at most one.
		lo, hi := c.dims[0], 0
		for _, r := range plan {
			if n := r.End - r.Start; n < lo {
				lo = n
			} else if n > hi {
				hi = n
			}
		}
		if hi-lo > 1 && hi > 0 {
			t.Errorf("dims %v: unbalanced plan (rows %d..%d)", c.dims, lo, hi)
		}
	}
}

func TestPlanChunksDeterministic(t *testing.T) {
	a := PlanChunks([]int{97, 41}, 777)
	b := PlanChunks([]int{97, 41}, 777)
	if len(a) != len(b) {
		t.Fatalf("plans differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("chunk %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestChunkedRoundTripBound: a chunked container must decompress to the
// original shape with every value inside the bound — the same guarantee as
// a monolithic stream.
func TestChunkedRoundTripBound(t *testing.T) {
	data, dims := chunkTestField(60, 45, 1)
	const eb = 1e-3
	for _, pred := range []Predictor{PredictorLorenzo, PredictorInterp, PredictorRegression} {
		cfg := DefaultConfig(eb)
		cfg.Predictor = pred
		stream, st, err := CompressChunked(data, dims, cfg, 8*45)
		if err != nil {
			t.Fatalf("%v: %v", pred, err)
		}
		if !IsChunked(stream) {
			t.Fatalf("%v: stream not a chunked container", pred)
		}
		if st.NumPoints != len(data) {
			t.Errorf("%v: stats cover %d of %d points", pred, st.NumPoints, len(data))
		}
		recon, rdims, err := Decompress(stream) // transparent dispatch
		if err != nil {
			t.Fatalf("%v: decompress: %v", pred, err)
		}
		if len(rdims) != 2 || rdims[0] != 60 || rdims[1] != 45 {
			t.Fatalf("%v: dims %v, want [60 45]", pred, rdims)
		}
		if m := MaxAbsError(data, recon); m > eb*(1+1e-12) {
			t.Errorf("%v: max error %g exceeds bound %g", pred, m, eb)
		}
	}
}

// TestChunkedRelativeBoundUsesFieldRange: with a range-relative bound, every
// chunk must be bounded by relEB × the FULL field's range — not its own
// chunk-local range — or decomposition would silently tighten/loosen the
// guarantee per chunk.
func TestChunkedRelativeBoundUsesFieldRange(t *testing.T) {
	// Rows 0..9 span [0,1]; rows 10..19 span [0,100]: chunk-local ranges
	// differ by 100×.
	dims := []int{20, 50}
	data := make([]float64, 20*50)
	rng := rand.New(rand.NewSource(9))
	for i := range data {
		scale := 1.0
		if i >= 10*50 {
			scale = 100.0
		}
		data[i] = scale * rng.Float64()
	}
	cfg := DefaultConfig(1e-3)
	cfg.BoundMode = BoundRelative
	wantAbs := cfg.AbsoluteBound(data)

	plan := PlanChunks(dims, 10*50)
	if len(plan) != 2 {
		t.Fatalf("want 2 chunks, got %d", len(plan))
	}
	for _, r := range plan {
		stream, _, err := CompressChunk(data, dims, cfg, r)
		if err != nil {
			t.Fatal(err)
		}
		recon, _, err := Decompress(stream)
		if err != nil {
			t.Fatal(err)
		}
		row := 50
		sub := data[r.Start*row : r.End*row]
		if m := MaxAbsError(sub, recon); m > wantAbs*(1+1e-12) {
			t.Errorf("chunk %d: max error %g exceeds field-level bound %g", r.Index, m, wantAbs)
		}
	}
}

// TestAssembleOrderIndependence: assembling chunks compressed in any order
// (as parallel workers would complete them) yields byte-identical
// containers, as long as they are indexed by plan position.
func TestAssembleOrderIndependence(t *testing.T) {
	data, dims := chunkTestField(48, 32, 3)
	cfg := DefaultConfig(5e-4)
	plan := PlanChunks(dims, 6*32)

	inOrder := make([][]byte, len(plan))
	for _, r := range plan {
		s, _, err := CompressChunk(data, dims, cfg, r)
		if err != nil {
			t.Fatal(err)
		}
		inOrder[r.Index] = s
	}
	reversed := make([][]byte, len(plan))
	for i := len(plan) - 1; i >= 0; i-- {
		s, _, err := CompressChunk(data, dims, cfg, plan[i])
		if err != nil {
			t.Fatal(err)
		}
		reversed[plan[i].Index] = s
	}
	a, err := AssembleChunks(inOrder)
	if err != nil {
		t.Fatal(err)
	}
	b, err := AssembleChunks(reversed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("containers differ under reversed compression order")
	}
	serial, _, err := CompressChunked(data, dims, cfg, 6*32)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, serial) {
		t.Fatal("hand-assembled container differs from CompressChunked")
	}
}

func TestSplitChunkedRoundTrip(t *testing.T) {
	data, dims := chunkTestField(30, 20, 5)
	cfg := DefaultConfig(1e-3)
	stream, _, err := CompressChunked(data, dims, cfg, 7*20)
	if err != nil {
		t.Fatal(err)
	}
	chunks, err := SplitChunked(stream)
	if err != nil {
		t.Fatal(err)
	}
	plan := PlanChunks(dims, 7*20)
	if len(chunks) != len(plan) {
		t.Fatalf("%d chunks, want %d", len(chunks), len(plan))
	}
	// Each chunk decompresses independently to its slice of the field.
	for i, c := range chunks {
		recon, sub, err := Decompress(c)
		if err != nil {
			t.Fatalf("chunk %d: %v", i, err)
		}
		if sub[0] != plan[i].End-plan[i].Start || sub[1] != 20 {
			t.Fatalf("chunk %d dims %v", i, sub)
		}
		want := data[plan[i].Start*20 : plan[i].End*20]
		if m := MaxAbsError(want, recon); m > 1e-3*(1+1e-12) {
			t.Errorf("chunk %d: error %g out of bound", i, m)
		}
	}
	reassembled, err := AssembleChunks(chunks)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reassembled, stream) {
		t.Fatal("split+assemble is not the identity")
	}
}

func TestChunkedCorruptionDetected(t *testing.T) {
	data, dims := chunkTestField(20, 10, 7)
	stream, _, err := CompressChunked(data, dims, DefaultConfig(1e-3), 5*10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SplitChunked(stream[:8]); err == nil {
		t.Error("truncated header accepted")
	}
	if _, _, err := DecompressChunked(stream[:len(stream)-3]); err == nil {
		t.Error("truncated body accepted")
	}
	if _, err := SplitChunked([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9}); err == nil {
		t.Error("garbage accepted as container")
	}
	// Mismatched trailing dims must be rejected at assembly.
	a, _, err := Compress(data[:100], []int{10, 10}, DefaultConfig(1e-3))
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Compress(data[:99], []int{9, 11}, DefaultConfig(1e-3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AssembleChunks([][]byte{a, b}); err == nil {
		t.Error("mismatched trailing dims accepted")
	}
}

func TestCompressChunkRejectsBadRange(t *testing.T) {
	data, dims := chunkTestField(10, 10, 11)
	cfg := DefaultConfig(1e-3)
	for _, r := range []ChunkRange{
		{Start: -1, End: 5},
		{Start: 5, End: 5},
		{Start: 8, End: 12},
	} {
		if _, _, err := CompressChunk(data, dims, cfg, r); err == nil {
			t.Errorf("range %+v accepted", r)
		}
	}
}

// TestPlanChunksDegenerateShapes: shapes the compressor would reject must
// come back as a single pass-through chunk, not a panic, so the error
// surfaces from Compress's own validation.
func TestPlanChunksDegenerateShapes(t *testing.T) {
	for _, dims := range [][]int{{5, 0}, {0, 7}, {0}, {3, 0, 4}} {
		plan := PlanChunks(dims, 100)
		if len(plan) != 1 {
			t.Errorf("dims %v: want single pass-through chunk, got %d", dims, len(plan))
		}
	}
	if _, _, err := CompressChunked(nil, []int{5, 0}, DefaultConfig(1e-3), 100); err == nil {
		t.Error("zero-dimension shape accepted")
	}
}

// TestSplitChunkedHugeLengthNoPanic: a crafted container with a ~2^64
// chunk length must return ErrCorrupt, not overflow the bounds check and
// panic on a negative-length slice.
func TestSplitChunkedHugeLengthNoPanic(t *testing.T) {
	crafted := make([]byte, 0, 64)
	var b4 [4]byte
	var b8 [8]byte
	binary.LittleEndian.PutUint32(b4[:], chunkMagic)
	crafted = append(crafted, b4[:]...)
	crafted = append(crafted, chunkVersion)
	binary.LittleEndian.PutUint32(b4[:], 1) // one chunk
	crafted = append(crafted, b4[:]...)
	binary.LittleEndian.PutUint64(b8[:], ^uint64(0)) // length 2^64-1
	crafted = append(crafted, b8[:]...)
	crafted = append(crafted, make([]byte, 46)...) // some body bytes
	if _, err := SplitChunked(crafted); err == nil {
		t.Fatal("huge chunk length accepted")
	}
}
