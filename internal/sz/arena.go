package sz

import (
	"sync"

	"ocelot/internal/huffman"
)

// arena is the pooled per-run scratch of the compression hot path: the
// compact quantization-code stream, the fused frequency table, the
// reconstruction buffer the predictor traversal works in, the literal and
// coefficient accumulators, and the Huffman output buffer. A campaign
// compresses thousands of fields with identical shapes; recycling these
// buffers through a sync.Pool turns the steady state from
// O(points) allocations per field into zero, which is where the GC time
// the profiler attributed to Compress/Decompress went.
//
// Zeroing discipline: freqs is cleared on reuse; recon deliberately is
// NOT. Every predictor traversal writes recon[i] in process(i, ·) before
// any later prediction can read index i, and never reads an index it has
// not yet written: Lorenzo guards every neighbor load with coordinate
// checks, regression predicts from fitted coefficients alone, and the
// interp traversal's 1-D predictions only load lattice points refined at
// a coarser level or an earlier axis pass of the same level (with a
// boundary fallback to the already-written left neighbor). Compression
// output therefore cannot depend on recon's initial contents — the
// property TestCompressUnaffectedByDirtyArena pins by poisoning pooled
// buffers with NaN and asserting byte-identical streams across every
// predictor and dimensionality.
type arena struct {
	syms     huffman.SymbolStream
	freqs    []uint64
	recon    []float64
	literals []float64
	coeffs   []float64
	enc      []byte
	inner    []byte
	// freqsCleanLen is the length of the freqs prefix certified all-zero
	// by the last user (encodeCodesTo clears the used slots during its
	// bit-count pass and Compress certifies the run's alphabet length).
	// It is a length, not a boolean: a later run with a LARGER alphabet
	// that still fits capacity must not trust a certificate that only
	// covered the smaller prefix — stale counts beyond it would mint
	// phantom symbols into the next Huffman table. When an error path
	// abandons a run mid-way the certificate stays 0 and the next
	// freqsScratch pays the full clear.
	freqsCleanLen int
}

var arenaPool = sync.Pool{New: func() interface{} { return &arena{} }}

func getArena() *arena { return arenaPool.Get().(*arena) }

// release returns the arena to the pool. Callers must be done with every
// slice handed out by the scratch methods — in particular, Compress copies
// the Huffman payload into the marshaled stream before releasing.
func (a *arena) release() { arenaPool.Put(a) }

// reconScratch returns a length-n reconstruction buffer. Contents are
// arbitrary — see the type comment for why the traversals never observe
// them.
func (a *arena) reconScratch(n int) []float64 {
	if cap(a.recon) < n {
		a.recon = make([]float64, n)
	}
	return a.recon[:n]
}

// freqsScratch returns a zeroed length-n frequency table, skipping the
// clear only when the previous user's all-zero certificate covers at
// least n entries.
func (a *arena) freqsScratch(n int) []uint64 {
	if cap(a.freqs) < n {
		a.freqs = make([]uint64, n)
		a.freqsCleanLen = 0
		return a.freqs
	}
	s := a.freqs[:n]
	if a.freqsCleanLen < n {
		for i := range s {
			s[i] = 0
		}
	}
	a.freqsCleanLen = 0
	return s
}

// symsScratch returns the arena's symbol stream, reset, with the packed
// lane pre-sized for hint symbols.
func (a *arena) symsScratch(hint int) *huffman.SymbolStream {
	a.syms.Reset()
	if cap(a.syms.Packed) < hint {
		a.syms.Packed = make([]uint16, 0, hint)
	}
	return &a.syms
}

// literalsScratch returns the emptied literal accumulator; the caller
// recaptures the appended slice via keepLiterals so growth is retained.
func (a *arena) literalsScratch() []float64 { return a.literals[:0] }

// coeffsScratch returns the emptied coefficient accumulator.
func (a *arena) coeffsScratch() []float64 { return a.coeffs[:0] }
