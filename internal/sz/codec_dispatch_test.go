package sz

import (
	"encoding/binary"
	"math"
	"os"
	"testing"

	"ocelot/internal/codec"
	"ocelot/internal/grouping"
	"ocelot/internal/szx"
)

// dispatchField synthesizes the deterministic field behind the golden
// streams in testdata/golden.
func dispatchField() []float64 {
	data := make([]float64, 1200)
	for i := range data {
		x := float64(i) / 1200
		data[i] = 30*math.Sin(8*x) + 2*x
	}
	return data
}

// fnvDigest mirrors the campaign engine's reconstruction digest.
func fnvDigest(vals []float64) uint64 {
	h := uint64(14695981039346656037)
	for _, v := range vals {
		w := math.Float64bits(v)
		for s := 0; s < 64; s += 8 {
			h ^= (w >> s) & 0xff
			h *= 1099511628211
		}
	}
	return h
}

// TestGoldenStreamsDecodeViaRegistry pins byte-level compatibility: sz3
// streams and OCSC containers frozen before the codec registry existed
// must still decompress — via sz.Decompress AND via the registry's magic
// dispatch — to bit-identical reconstructions (digests recorded at
// freeze time).
func TestGoldenStreamsDecodeViaRegistry(t *testing.T) {
	cases := []struct {
		file   string
		digest uint64
	}{
		{"testdata/golden/sz3-v1.ocsz", 0x29017251f60f6b29},
		{"testdata/golden/sz3-v1.ocsc", 0x47c05655504b3876},
	}
	for _, tc := range cases {
		t.Run(tc.file, func(t *testing.T) {
			stream, err := os.ReadFile(tc.file)
			if err != nil {
				t.Fatal(err)
			}
			direct, dDims, err := Decompress(stream)
			if err != nil {
				t.Fatalf("sz.Decompress: %v", err)
			}
			viaRegistry, rDims, err := codec.Decompress(stream)
			if err != nil {
				t.Fatalf("codec.Decompress: %v", err)
			}
			if len(dDims) != 2 || dDims[0] != 30 || dDims[1] != 40 {
				t.Fatalf("dims %v, want [30 40]", dDims)
			}
			for i := range dDims {
				if dDims[i] != rDims[i] {
					t.Fatalf("registry dims %v != direct %v", rDims, dDims)
				}
			}
			if got := fnvDigest(direct); got != tc.digest {
				t.Errorf("direct digest %#x, want frozen %#x", got, tc.digest)
			}
			if got := fnvDigest(viaRegistry); got != tc.digest {
				t.Errorf("registry digest %#x, want frozen %#x", got, tc.digest)
			}
			orig := dispatchField()
			if m := MaxAbsError(orig, viaRegistry); m > 1e-4 {
				t.Errorf("max error %g exceeds the golden bound 1e-4", m)
			}
		})
	}
}

// TestHeaderDimsProductOverflowRejected: an sz3 header whose dims each
// pass the 2^32 cap but whose product wraps int64 must be rejected by
// parseHeader — otherwise the chunked container's size pass would sum a
// negative point count into its preallocation.
func TestHeaderDimsProductOverflowRejected(t *testing.T) {
	h := &header{
		predictor: PredictorInterp,
		interp:    InterpCubic,
		boundMode: BoundAbsolute,
		radius:    32768,
		absEB:     1e-3,
		dims:      []int{1 << 31, 1 << 32},
	}
	stream := append(h.marshal(), make([]byte, 64)...)
	if _, _, err := parseHeader(stream); err == nil {
		t.Fatal("want error for wrapped dims product")
	}
	if _, _, err := Decompress(stream); err == nil {
		t.Fatal("want error from Decompress for wrapped dims product")
	}
}

// TestGroupedArchiveMixedCodecDispatch packs one sz3 member and one szx
// member into a single group archive — exactly what a planned campaign
// with per-field codecs ships — and decodes every member through the
// registry.
func TestGroupedArchiveMixedCodecDispatch(t *testing.T) {
	data := dispatchField()
	sz3Stream, _, err := Compress(data, []int{1200}, DefaultConfig(1e-3))
	if err != nil {
		t.Fatal(err)
	}
	szxStream, err := szx.Compress(data, []int{1200}, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	arch, err := grouping.Pack([]grouping.Member{
		{Name: "a.sz", Data: sz3Stream},
		{Name: "b.sz", Data: szxStream},
	})
	if err != nil {
		t.Fatal(err)
	}
	members, err := grouping.Unpack(arch)
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 2 {
		t.Fatalf("%d members", len(members))
	}
	for _, m := range members {
		recon, dims, err := codec.Decompress(m.Data)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if dims[0] != 1200 {
			t.Fatalf("%s: dims %v", m.Name, dims)
		}
		if maxErr := MaxAbsError(data, recon); maxErr > 1e-3 {
			t.Errorf("%s: max error %g", m.Name, maxErr)
		}
	}
}

// TestChunkedContainerMixedCodecDispatch frames sz3 and szx chunk streams
// into one OCSC container: assembly must accept the mix (geometry probes
// go through codec.StreamDims) and decode must dispatch per chunk.
func TestChunkedContainerMixedCodecDispatch(t *testing.T) {
	data := dispatchField()
	half := len(data) / 2
	sz3Chunk, _, err := Compress(data[:half], []int{half / 40, 40}, DefaultConfig(1e-3))
	if err != nil {
		t.Fatal(err)
	}
	szxChunk, err := szx.Compress(data[half:], []int{half / 40, 40}, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	container, err := AssembleChunks([][]byte{sz3Chunk, szxChunk})
	if err != nil {
		t.Fatal(err)
	}
	if !IsChunked(container) {
		t.Fatal("container not recognized as chunked")
	}
	dims, err := ChunkedDims(container)
	if err != nil {
		t.Fatal(err)
	}
	if dims[0] != len(data)/40 || dims[1] != 40 {
		t.Fatalf("dims %v", dims)
	}
	for _, decode := range []func([]byte) ([]float64, []int, error){Decompress, codec.Decompress} {
		recon, rDims, err := decode(container)
		if err != nil {
			t.Fatal(err)
		}
		if rDims[0] != len(data)/40 {
			t.Fatalf("decoded dims %v", rDims)
		}
		if maxErr := MaxAbsError(data, recon); maxErr > 1e-3 {
			t.Errorf("max error %g", maxErr)
		}
	}
	// Mismatched trailing dims must still be rejected across codecs.
	badChunk, err := szx.Compress(data[half:], []int{half / 30, 30}, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AssembleChunks([][]byte{sz3Chunk, badChunk}); err == nil {
		t.Error("want trailing-dims mismatch error across codecs")
	}
}

// TestNestedContainerRejected: a container whose chunk is itself a
// container must error at every entry point — assembly, split-decode,
// and the geometry probe — never recurse (a deep crafted nest would
// otherwise overflow the stack, crashing the process instead of
// returning ErrCorrupt).
func TestNestedContainerRejected(t *testing.T) {
	data := dispatchField()
	inner, _, err := CompressChunked(data, []int{30, 40}, DefaultConfig(1e-3), 300)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AssembleChunks([][]byte{inner}); err == nil {
		t.Error("AssembleChunks accepted a container as a chunk")
	}
	// Hand-frame the nesting AssembleChunks refuses to build: a crafted
	// peer would not be so polite.
	nested := make([]byte, 0, len(inner)+17)
	nested = append(nested, 0x43, 0x53, 0x43, 0x4F, 1, 1, 0, 0, 0) // OCSC, v1, 1 chunk
	var b8 [8]byte
	binary.LittleEndian.PutUint64(b8[:], uint64(len(inner)))
	nested = append(nested, b8[:]...)
	nested = append(nested, inner...)
	if !IsChunked(nested) {
		t.Fatal("hand-framed container not recognized")
	}
	if _, _, err := DecompressChunked(nested); err == nil {
		t.Error("DecompressChunked accepted a nested container")
	}
	if _, err := ChunkedDims(nested); err == nil {
		t.Error("ChunkedDims accepted a nested container")
	}
	if _, _, err := codec.Decompress(nested); err == nil {
		t.Error("codec.Decompress accepted a nested container")
	}
}
