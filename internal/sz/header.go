package sz

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// streamMagic identifies an Ocelot-SZ compressed stream.
const streamMagic = 0x4F43535A // "OCSZ"

// streamVersion is bumped on incompatible layout changes.
const streamVersion = 1

// ErrCorrupt indicates a malformed compressed stream.
var ErrCorrupt = errors.New("sz: corrupt stream")

// header is the fixed, uncompressed prefix of every stream. It carries
// everything needed to re-run the predictor traversal on decompression.
type header struct {
	predictor Predictor
	interp    InterpMode
	boundMode BoundMode
	radius    int
	absEB     float64 // resolved absolute error bound
	dims      []int
}

func (h *header) marshal() []byte {
	out := make([]byte, 0, 32+8*len(h.dims))
	var b4 [4]byte
	var b8 [8]byte
	binary.LittleEndian.PutUint32(b4[:], streamMagic)
	out = append(out, b4[:]...)
	out = append(out, streamVersion, byte(h.predictor), byte(h.interp), byte(h.boundMode))
	binary.LittleEndian.PutUint32(b4[:], uint32(h.radius))
	out = append(out, b4[:]...)
	binary.LittleEndian.PutUint64(b8[:], math.Float64bits(h.absEB))
	out = append(out, b8[:]...)
	out = append(out, byte(len(h.dims)))
	for _, d := range h.dims {
		binary.LittleEndian.PutUint64(b8[:], uint64(d))
		out = append(out, b8[:]...)
	}
	return out
}

func parseHeader(stream []byte) (*header, []byte, error) {
	if len(stream) < 21 {
		return nil, nil, ErrCorrupt
	}
	if binary.LittleEndian.Uint32(stream[:4]) != streamMagic {
		return nil, nil, fmt.Errorf("sz: bad magic: %w", ErrCorrupt)
	}
	if stream[4] != streamVersion {
		return nil, nil, fmt.Errorf("sz: unsupported version %d: %w", stream[4], ErrCorrupt)
	}
	h := &header{
		predictor: Predictor(stream[5]),
		interp:    InterpMode(stream[6]),
		boundMode: BoundMode(stream[7]),
		radius:    int(binary.LittleEndian.Uint32(stream[8:12])),
		absEB:     math.Float64frombits(binary.LittleEndian.Uint64(stream[12:20])),
	}
	nd := int(stream[20])
	if nd == 0 || nd > 4 {
		return nil, nil, ErrCorrupt
	}
	need := 21 + 8*nd
	if len(stream) < need {
		return nil, nil, ErrCorrupt
	}
	h.dims = make([]int, nd)
	total := uint64(1)
	for i := 0; i < nd; i++ {
		d := binary.LittleEndian.Uint64(stream[21+8*i : 29+8*i])
		if d == 0 || d > 1<<32 {
			return nil, nil, ErrCorrupt
		}
		// Check before multiplying: the product must stay ≤ 2^40 without
		// ever wrapping, or crafted dims reach downstream consumers (e.g.
		// the chunked container's size pass) as a negative point count.
		if total > (1<<40)/d {
			return nil, nil, ErrCorrupt
		}
		total *= d
		h.dims[i] = int(d)
	}
	if h.absEB <= 0 || math.IsNaN(h.absEB) || math.IsInf(h.absEB, 0) {
		return nil, nil, ErrCorrupt
	}
	if h.radius <= 0 || h.radius > 1<<23 {
		return nil, nil, ErrCorrupt
	}
	switch h.predictor {
	case PredictorLorenzo, PredictorInterp, PredictorRegression:
	default:
		return nil, nil, ErrCorrupt
	}
	return h, stream[need:], nil
}

// innerPayload is the lossless-compressed body: literals, regression
// coefficients, and the Huffman-coded quantization bins.
type innerPayload struct {
	literals []float64
	coeffs   []float64 // stored with float32 precision
	huffman  []byte
}

func (p *innerPayload) marshal() []byte {
	return p.marshalTo(nil)
}

// marshalTo appends the payload to dst (growing it at most once), so the
// hot path can reuse a pooled buffer for the marshaled body.
func (p *innerPayload) marshalTo(dst []byte) []byte {
	need := len(dst) + 24 + 8*len(p.literals) + 4*len(p.coeffs) + len(p.huffman)
	var out []byte
	if cap(dst) < need {
		out = make([]byte, len(dst), need)
		copy(out, dst)
	} else {
		out = dst
	}
	var b8 [8]byte
	var b4 [4]byte
	binary.LittleEndian.PutUint64(b8[:], uint64(len(p.literals)))
	out = append(out, b8[:]...)
	for _, v := range p.literals {
		binary.LittleEndian.PutUint64(b8[:], math.Float64bits(v))
		out = append(out, b8[:]...)
	}
	binary.LittleEndian.PutUint64(b8[:], uint64(len(p.coeffs)))
	out = append(out, b8[:]...)
	for _, v := range p.coeffs {
		binary.LittleEndian.PutUint32(b4[:], math.Float32bits(float32(v)))
		out = append(out, b4[:]...)
	}
	binary.LittleEndian.PutUint64(b8[:], uint64(len(p.huffman)))
	out = append(out, b8[:]...)
	out = append(out, p.huffman...)
	return out
}

func parseInnerPayload(body []byte) (*innerPayload, error) {
	p := &innerPayload{}
	off := 0
	readU64 := func() (uint64, bool) {
		if off+8 > len(body) {
			return 0, false
		}
		v := binary.LittleEndian.Uint64(body[off : off+8])
		off += 8
		return v, true
	}
	nLit, ok := readU64()
	if !ok || nLit > 1<<36 {
		return nil, ErrCorrupt
	}
	if off+int(nLit)*8 > len(body) {
		return nil, ErrCorrupt
	}
	p.literals = make([]float64, nLit)
	for i := range p.literals {
		p.literals[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[off : off+8]))
		off += 8
	}
	nCoef, ok := readU64()
	if !ok || nCoef > 1<<36 {
		return nil, ErrCorrupt
	}
	if off+int(nCoef)*4 > len(body) {
		return nil, ErrCorrupt
	}
	p.coeffs = make([]float64, nCoef)
	for i := range p.coeffs {
		p.coeffs[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(body[off : off+4])))
		off += 4
	}
	// Compare against the remaining bytes without converting to int: a
	// crafted 64-bit length must not wrap negative past the bounds check.
	nHuff, ok := readU64()
	if !ok || nHuff > uint64(len(body)-off) {
		return nil, ErrCorrupt
	}
	p.huffman = body[off : off+int(nHuff)]
	return p, nil
}
