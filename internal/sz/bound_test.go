package sz

import (
	"math"
	"testing"
)

// The relative→absolute bound resolution is shared between Compress and
// SampledCodes; these are the regressions for the constant-field skew
// where the feature pass once quantized at a different bound than the
// real compression run.
func TestAbsoluteBoundResolution(t *testing.T) {
	rel := Config{ErrorBound: 1e-3, BoundMode: BoundRelative}
	cases := []struct {
		name string
		data []float64
		want float64
	}{
		{"ranged", []float64{0, 2, 10}, 1e-3 * 10},
		{"constant", []float64{5, 5, 5, 5}, 1e-3}, // range falls back to 1
		{"single", []float64{3}, 1e-3},
		{"nan", []float64{math.NaN(), 1, 2}, 1e-3},
		{"inf", []float64{math.Inf(-1), 0, 1}, 1e-3},
	}
	for _, c := range cases {
		if got := rel.AbsoluteBound(c.data); got != c.want {
			t.Errorf("%s: AbsoluteBound = %g, want %g", c.name, got, c.want)
		}
	}
	abs := Config{ErrorBound: 0.25, BoundMode: BoundAbsolute}
	if got := abs.AbsoluteBound([]float64{0, 100}); got != 0.25 {
		t.Errorf("absolute mode: AbsoluteBound = %g, want 0.25", got)
	}
}

// On a constant field, the sampling pass must quantize at exactly the
// bound the real run uses: the relative config and its resolved absolute
// equivalent must produce identical codes.
func TestSampledCodesMatchesCompressBoundOnConstantField(t *testing.T) {
	data := make([]float64, 64)
	for i := range data {
		data[i] = 42.0
	}
	dims := []int{8, 8}
	rel := DefaultConfig(1e-3)
	rel.BoundMode = BoundRelative

	resolved := DefaultConfig(rel.AbsoluteBound(data)) // BoundAbsolute
	relCodes, err := SampledCodes(data, dims, rel, 1)
	if err != nil {
		t.Fatal(err)
	}
	absCodes, err := SampledCodes(data, dims, resolved, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(relCodes) != len(absCodes) {
		t.Fatalf("code count %d != %d", len(relCodes), len(absCodes))
	}
	for i := range relCodes {
		if relCodes[i] != absCodes[i] {
			t.Fatalf("code %d: relative-bound pass %d != resolved-bound pass %d", i, relCodes[i], absCodes[i])
		}
	}

	// And the real run honours the same resolved bound.
	stream, _, err := Compress(data, dims, rel)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if math.Abs(v-data[i]) > rel.AbsoluteBound(data) {
			t.Fatalf("point %d: error %g exceeds resolved bound %g", i, math.Abs(v-data[i]), rel.AbsoluteBound(data))
		}
	}
}
