package sz

import (
	"fmt"
	"math"

	"ocelot/internal/huffman"
	"ocelot/internal/lossless"
	"ocelot/internal/quant"
)

// Stats reports measurable properties of a compression run. They feed the
// compressor-based features of the quality predictor (paper Section VI).
type Stats struct {
	// NumPoints is the number of data values compressed.
	NumPoints int
	// CompressedBytes is the size of the final stream.
	CompressedBytes int
	// NumEscapes counts values stored as literals (unpredictable points).
	NumEscapes int
	// P0Quant is the fraction of quantization codes equal to the zero bin
	// (the paper's p0 feature).
	P0Quant float64
	// HuffP0 is the share of the Huffman payload bits spent on the zero bin
	// (the paper's P0 feature).
	HuffP0 float64
	// QuantEntropy is the Shannon entropy (bits/symbol) of the quantization
	// codes (the paper's quantization-entropy feature).
	QuantEntropy float64
	// HuffmanBits is the size of the Huffman payload before the lossless
	// backend.
	HuffmanBits int
}

// traversal drives one predictor pass. The same traversal code runs during
// compression (data != nil: quantize and record codes/literals) and during
// decompression (data == nil: consume codes/literals to rebuild recon).
type traversal struct {
	q        *quant.Quantizer
	data     []float64 // original values; nil in decode mode
	recon    []float64
	codes    []int
	literals []float64
	coeffs   []float64
	codeIdx  int
	litIdx   int
	coefIdx  int
}

// process handles one point: index i with prediction pred.
func (c *traversal) process(i int, pred float64) {
	if c.data != nil {
		code, rec, ok := c.q.Quantize(c.data[i], pred)
		if !ok {
			c.codes = append(c.codes, quant.EscapeCode)
			c.literals = append(c.literals, c.data[i])
			c.recon[i] = c.data[i]
			return
		}
		c.codes = append(c.codes, code)
		c.recon[i] = rec
		return
	}
	code := c.codes[c.codeIdx]
	c.codeIdx++
	if code == quant.EscapeCode {
		c.recon[i] = c.literals[c.litIdx]
		c.litIdx++
		return
	}
	c.recon[i] = c.q.Recover(pred, code)
}

// pushCoeffs records regression coefficients during compression (rounded to
// float32 so encode and decode predict identically).
func (c *traversal) pushCoeffs(coefs []float64) []float64 {
	out := make([]float64, len(coefs))
	for i, v := range coefs {
		out[i] = float64(float32(v))
		c.coeffs = append(c.coeffs, out[i])
	}
	return out
}

// nextCoeffs consumes coefficients during decompression.
func (c *traversal) nextCoeffs(n int) ([]float64, error) {
	if c.coefIdx+n > len(c.coeffs) {
		return nil, ErrCorrupt
	}
	out := c.coeffs[c.coefIdx : c.coefIdx+n]
	c.coefIdx += n
	return out, nil
}

// Compress encodes data (row-major, dims[0] slowest) under cfg and returns
// the stream plus run statistics.
func Compress(data []float64, dims []int, cfg Config) ([]byte, *Stats, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, nil, err
	}
	if err := validateDims(len(data), dims); err != nil {
		return nil, nil, err
	}
	if len(data) == 0 {
		return nil, nil, fmt.Errorf("sz: empty input")
	}
	absEB := cfg.AbsoluteBound(data)
	q := quant.New(absEB, cfg.Radius)
	c := &traversal{
		q:     q,
		data:  data,
		recon: make([]float64, len(data)),
		codes: make([]int, 0, len(data)),
	}
	if err := runPredictor(c, dims, cfg); err != nil {
		return nil, nil, err
	}

	huffBytes, huffStats, err := encodeCodes(c.codes, q.AlphabetSize())
	if err != nil {
		return nil, nil, err
	}
	inner := &innerPayload{literals: c.literals, coeffs: c.coeffs, huffman: huffBytes}
	body, err := lossless.Compress(inner.marshal(), cfg.Backend)
	if err != nil {
		return nil, nil, err
	}
	h := &header{
		predictor: cfg.Predictor,
		interp:    cfg.Interp,
		boundMode: cfg.BoundMode,
		radius:    q.Radius(),
		absEB:     absEB,
		dims:      dims,
	}
	stream := append(h.marshal(), body...)

	st := &Stats{
		NumPoints:       len(data),
		CompressedBytes: len(stream),
		NumEscapes:      len(c.literals),
		P0Quant:         huffStats.p0,
		HuffP0:          huffStats.bitShare0,
		QuantEntropy:    huffStats.entropy,
		HuffmanBits:     huffStats.totalBits,
	}
	return stream, st, nil
}

// Decompress decodes a stream produced by Compress — or a chunked
// container produced by AssembleChunks/CompressChunked, which it detects by
// magic and routes through DecompressChunked — returning the reconstructed
// values and their shape.
func Decompress(stream []byte) ([]float64, []int, error) {
	if IsChunked(stream) {
		return DecompressChunked(stream)
	}
	h, body, err := parseHeader(stream)
	if err != nil {
		return nil, nil, err
	}
	innerBytes, err := lossless.Decompress(body)
	if err != nil {
		return nil, nil, fmt.Errorf("sz: body: %w", err)
	}
	inner, err := parseInnerPayload(innerBytes)
	if err != nil {
		return nil, nil, err
	}
	codes, err := huffman.Decode(inner.huffman)
	if err != nil {
		return nil, nil, fmt.Errorf("sz: codes: %w", err)
	}
	n := 1
	for _, d := range h.dims {
		n *= d
	}
	if len(codes) != n {
		return nil, nil, fmt.Errorf("sz: code count %d != points %d: %w", len(codes), n, ErrCorrupt)
	}
	// The traversal consumes one literal per escape code; a crafted stream
	// whose escape count exceeds its literal count would index past the
	// literals slice mid-traversal, so validate the invariant up front.
	escapes := 0
	for _, c := range codes {
		if c == quant.EscapeCode {
			escapes++
		}
	}
	if escapes != len(inner.literals) {
		return nil, nil, fmt.Errorf("sz: %d escape codes for %d literals: %w", escapes, len(inner.literals), ErrCorrupt)
	}
	c := &traversal{
		q:        quant.New(h.absEB, h.radius),
		recon:    make([]float64, n),
		codes:    codes,
		literals: inner.literals,
		coeffs:   inner.coeffs,
	}
	cfg := Config{
		ErrorBound: h.absEB,
		BoundMode:  BoundAbsolute,
		Predictor:  h.predictor,
		Interp:     h.interp,
		Radius:     h.radius,
		BlockSide:  6,
	}
	if err := runPredictor(c, h.dims, cfg); err != nil {
		return nil, nil, err
	}
	if c.litIdx != len(c.literals) {
		return nil, nil, fmt.Errorf("sz: %d literals unconsumed: %w", len(c.literals)-c.litIdx, ErrCorrupt)
	}
	dims := make([]int, len(h.dims))
	copy(dims, h.dims)
	return c.recon, dims, nil
}

// runPredictor dispatches the traversal for the configured predictor.
func runPredictor(c *traversal, dims []int, cfg Config) error {
	switch cfg.Predictor {
	case PredictorLorenzo:
		lorenzoTraverse(c, dims)
		return nil
	case PredictorInterp:
		interpTraverse(c, dims, cfg.Interp)
		return nil
	case PredictorRegression:
		return regressionTraverse(c, dims, cfg.BlockSide)
	default:
		return fmt.Errorf("sz: invalid predictor %v", cfg.Predictor)
	}
}

type huffRunStats struct {
	p0        float64
	bitShare0 float64
	entropy   float64
	totalBits int
}

// encodeCodes Huffman-encodes the quantization bins and derives the
// compressor-level features of the run.
func encodeCodes(codes []int, alphabet int) ([]byte, huffRunStats, error) {
	var st huffRunStats
	freqs := make([]uint64, alphabet)
	for _, s := range codes {
		freqs[s]++
	}
	zero := alphabet / 2 // quantizer zero bin
	if len(codes) > 0 {
		st.p0 = float64(freqs[zero]) / float64(len(codes))
		st.entropy = symbolEntropy(freqs, len(codes))
	}
	if len(codes) == 0 {
		freqs[0] = 1
	}
	table, err := huffman.BuildTable(freqs)
	if err != nil {
		return nil, st, err
	}
	totalBits := 0
	for sym, f := range freqs {
		if f > 0 {
			c := table.CodeFor(sym)
			totalBits += int(f) * int(c.Len)
		}
	}
	if len(codes) == 0 {
		totalBits = 0
	}
	st.totalBits = totalBits
	if totalBits > 0 {
		st.bitShare0 = float64(uint64(table.CodeFor(zero).Len)*freqs[zero]) / float64(totalBits)
	}
	enc, err := huffman.Encode(codes, table)
	if err != nil {
		return nil, st, err
	}
	return enc, st, nil
}

// symbolEntropy computes Shannon entropy in bits/symbol from frequencies.
func symbolEntropy(freqs []uint64, total int) float64 {
	if total == 0 {
		return 0
	}
	var h float64
	ft := float64(total)
	for _, f := range freqs {
		if f == 0 {
			continue
		}
		p := float64(f) / ft
		h -= p * math.Log2(p)
	}
	return h
}

// MaxAbsError returns the largest absolute difference between two equally
// sized slices. It is the invariant checked by the error-bound tests.
func MaxAbsError(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var m float64
	for i := 0; i < n; i++ {
		d := math.Abs(a[i] - b[i])
		if d > m {
			m = d
		}
	}
	return m
}
