package sz

import (
	"fmt"
	"math"

	"ocelot/internal/huffman"
	"ocelot/internal/lossless"
	"ocelot/internal/metrics"
	"ocelot/internal/quant"
)

// Stats reports measurable properties of a compression run. They feed the
// compressor-based features of the quality predictor (paper Section VI).
type Stats struct {
	// NumPoints is the number of data values compressed.
	NumPoints int
	// CompressedBytes is the size of the final stream.
	CompressedBytes int
	// NumEscapes counts values stored as literals (unpredictable points).
	NumEscapes int
	// P0Quant is the fraction of quantization codes equal to the zero bin
	// (the paper's p0 feature).
	P0Quant float64
	// HuffP0 is the share of the Huffman payload bits spent on the zero bin
	// (the paper's P0 feature).
	HuffP0 float64
	// QuantEntropy is the Shannon entropy (bits/symbol) of the quantization
	// codes (the paper's quantization-entropy feature).
	QuantEntropy float64
	// HuffmanBits is the size of the Huffman payload before the lossless
	// backend.
	HuffmanBits int
}

// traversal drives one predictor pass. The same traversal code runs during
// compression (data != nil: quantize and record codes/literals) and during
// decompression (data == nil: consume codes/literals to rebuild recon).
//
// Quantization codes travel in the compact huffman.SymbolStream
// representation (two bytes per symbol; codes ≥ huffman.WideEscape ride
// the wide-escape side lane), and in encode mode the symbol frequency
// count is fused into the traversal itself when freqs is non-nil — the
// entropy stage no longer pays a second pass over the code stream.
type traversal struct {
	q        *quant.Quantizer
	data     []float64 // original values; nil in decode mode
	recon    []float64
	syms     *huffman.SymbolStream
	freqs    []uint64 // fused per-symbol counts (encode mode; may be nil)
	literals []float64
	coeffs   []float64
	codeIdx  int
	wideIdx  int
	litIdx   int
	coefIdx  int
}

// process handles one point: index i with prediction pred.
func (c *traversal) process(i int, pred float64) {
	if c.data != nil {
		code, rec, ok := c.q.Quantize(c.data[i], pred)
		if !ok {
			c.syms.Packed = append(c.syms.Packed, quant.EscapeCode)
			if c.freqs != nil {
				c.freqs[quant.EscapeCode]++
			}
			c.literals = append(c.literals, c.data[i])
			c.recon[i] = c.data[i]
			return
		}
		if code < huffman.WideEscape {
			c.syms.Packed = append(c.syms.Packed, uint16(code))
		} else {
			c.syms.Packed = append(c.syms.Packed, huffman.WideEscape)
			c.syms.Wide = append(c.syms.Wide, int32(code))
		}
		if c.freqs != nil {
			c.freqs[code]++
		}
		c.recon[i] = rec
		return
	}
	code := int(c.syms.Packed[c.codeIdx])
	c.codeIdx++
	if code == huffman.WideEscape {
		code = int(c.syms.Wide[c.wideIdx])
		c.wideIdx++
	}
	if code == quant.EscapeCode {
		c.recon[i] = c.literals[c.litIdx]
		c.litIdx++
		return
	}
	c.recon[i] = c.q.Recover(pred, code)
}

// pushCoeffs records regression coefficients during compression (rounded to
// float32 so encode and decode predict identically).
func (c *traversal) pushCoeffs(coefs []float64) []float64 {
	start := len(c.coeffs)
	for _, v := range coefs {
		c.coeffs = append(c.coeffs, float64(float32(v)))
	}
	return c.coeffs[start:]
}

// nextCoeffs consumes coefficients during decompression.
func (c *traversal) nextCoeffs(n int) ([]float64, error) {
	if c.coefIdx+n > len(c.coeffs) {
		return nil, ErrCorrupt
	}
	out := c.coeffs[c.coefIdx : c.coefIdx+n]
	c.coefIdx += n
	return out, nil
}

// Compress encodes data (row-major, dims[0] slowest) under cfg and returns
// the stream plus run statistics. Scratch buffers (code stream, frequency
// table, reconstruction, Huffman output) come from a sync.Pool-backed
// arena, so steady-state campaign runs allocate only the returned stream.
func Compress(data []float64, dims []int, cfg Config) ([]byte, *Stats, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, nil, err
	}
	if err := validateDims(len(data), dims); err != nil {
		return nil, nil, err
	}
	if len(data) == 0 {
		return nil, nil, fmt.Errorf("sz: empty input")
	}
	absEB := cfg.AbsoluteBound(data)
	q := quant.New(absEB, cfg.Radius)
	a := getArena()
	defer a.release()
	c := &traversal{
		q:        q,
		data:     data,
		recon:    a.reconScratch(len(data)),
		syms:     a.symsScratch(len(data)),
		freqs:    a.freqsScratch(q.AlphabetSize()),
		literals: a.literalsScratch(),
		coeffs:   a.coeffsScratch(),
	}
	if err := runPredictor(c, dims, cfg); err != nil {
		return nil, nil, err
	}
	// Recapture accumulators the traversal may have regrown, so the arena
	// keeps the larger buffers for the next run.
	a.literals = c.literals
	a.coeffs = c.coeffs

	huffBytes, huffStats, err := encodeCodesTo(a.enc[:0], c.syms, c.freqs, q.AlphabetSize())
	if err != nil {
		return nil, nil, err
	}
	a.enc = huffBytes
	a.freqsCleanLen = len(c.freqs) // encodeCodesTo zeroed every used slot
	inner := &innerPayload{literals: c.literals, coeffs: c.coeffs, huffman: huffBytes}
	a.inner = inner.marshalTo(a.inner[:0])
	body, err := lossless.Compress(a.inner, cfg.Backend)
	if err != nil {
		return nil, nil, err
	}
	h := &header{
		predictor: cfg.Predictor,
		interp:    cfg.Interp,
		boundMode: cfg.BoundMode,
		radius:    q.Radius(),
		absEB:     absEB,
		dims:      dims,
	}
	stream := append(h.marshal(), body...)

	st := &Stats{
		NumPoints:       len(data),
		CompressedBytes: len(stream),
		NumEscapes:      len(c.literals),
		P0Quant:         huffStats.p0,
		HuffP0:          huffStats.bitShare0,
		QuantEntropy:    huffStats.entropy,
		HuffmanBits:     huffStats.totalBits,
	}
	return stream, st, nil
}

// Decompress decodes a stream produced by Compress — or a chunked
// container produced by AssembleChunks/CompressChunked, which it detects by
// magic and routes through DecompressChunked — returning the reconstructed
// values and their shape. The decoded code stream lives in pooled arena
// scratch; only the returned reconstruction is allocated.
func Decompress(stream []byte) ([]float64, []int, error) {
	if IsChunked(stream) {
		return DecompressChunked(stream)
	}
	h, body, err := parseHeader(stream)
	if err != nil {
		return nil, nil, err
	}
	innerBytes, err := lossless.Decompress(body)
	if err != nil {
		return nil, nil, fmt.Errorf("sz: body: %w", err)
	}
	inner, err := parseInnerPayload(innerBytes)
	if err != nil {
		return nil, nil, err
	}
	a := getArena()
	defer a.release()
	syms := a.symsScratch(0)
	if err := huffman.DecodeInto(syms, inner.huffman); err != nil {
		return nil, nil, fmt.Errorf("sz: codes: %w", err)
	}
	n := 1
	for _, d := range h.dims {
		n *= d
	}
	if syms.Len() != n {
		return nil, nil, fmt.Errorf("sz: code count %d != points %d: %w", syms.Len(), n, ErrCorrupt)
	}
	// The traversal consumes one literal per escape code; a crafted stream
	// whose escape count exceeds its literal count would index past the
	// literals slice mid-traversal, so validate the invariant up front.
	// (Wide-lane symbols are ≥ huffman.WideEscape, never the escape bin.)
	escapes := 0
	for _, p := range syms.Packed {
		if p == quant.EscapeCode {
			escapes++
		}
	}
	if escapes != len(inner.literals) {
		return nil, nil, fmt.Errorf("sz: %d escape codes for %d literals: %w", escapes, len(inner.literals), ErrCorrupt)
	}
	c := &traversal{
		q:        quant.New(h.absEB, h.radius),
		recon:    make([]float64, n),
		syms:     syms,
		literals: inner.literals,
		coeffs:   inner.coeffs,
	}
	cfg := Config{
		ErrorBound: h.absEB,
		BoundMode:  BoundAbsolute,
		Predictor:  h.predictor,
		Interp:     h.interp,
		Radius:     h.radius,
		BlockSide:  6,
	}
	if err := runPredictor(c, h.dims, cfg); err != nil {
		return nil, nil, err
	}
	if c.litIdx != len(c.literals) {
		return nil, nil, fmt.Errorf("sz: %d literals unconsumed: %w", len(c.literals)-c.litIdx, ErrCorrupt)
	}
	dims := make([]int, len(h.dims))
	copy(dims, h.dims)
	return c.recon, dims, nil
}

// runPredictor dispatches the traversal for the configured predictor.
func runPredictor(c *traversal, dims []int, cfg Config) error {
	switch cfg.Predictor {
	case PredictorLorenzo:
		lorenzoTraverse(c, dims)
		return nil
	case PredictorInterp:
		interpTraverse(c, dims, cfg.Interp)
		return nil
	case PredictorRegression:
		return regressionTraverse(c, dims, cfg.BlockSide)
	default:
		return fmt.Errorf("sz: invalid predictor %v", cfg.Predictor)
	}
}

type huffRunStats struct {
	p0        float64
	bitShare0 float64
	entropy   float64
	totalBits int
}

// encodeCodesTo Huffman-encodes the quantization bins into dst and derives
// the compressor-level features of the run. freqs is the symbol frequency
// table the traversal counted in its fused pass — the function performs no
// walk over the code stream beyond the encode itself, and the output is
// sized exactly via the table's EncodedBits so dense streams never regrow.
func encodeCodesTo(dst []byte, syms *huffman.SymbolStream, freqs []uint64, alphabet int) ([]byte, huffRunStats, error) {
	var st huffRunStats
	n := syms.Len()
	zero := alphabet / 2 // quantizer zero bin
	zeroFreq := freqs[zero]
	if n > 0 {
		st.p0 = float64(zeroFreq) / float64(n)
		st.entropy = metrics.SymbolEntropyFromCounts(freqs, uint64(n))
	}
	if n == 0 {
		freqs[0] = 1
	}
	table, err := huffman.BuildTable(freqs)
	if err != nil {
		return nil, st, err
	}
	defer table.Release()
	// One pass both sums the exact payload bit count and zeroes the used
	// frequency slots, handing the arena back a clean table — the alphabet
	// is 64K entries, so folding the clear into a walk we already pay
	// beats a separate 512 KiB memclr on every compression.
	totalBits := 0
	for sym, f := range freqs {
		if f > 0 {
			totalBits += int(f) * int(table.CodeFor(sym).Len)
			freqs[sym] = 0
		}
	}
	if n == 0 {
		totalBits = 0
	}
	st.totalBits = totalBits
	if totalBits > 0 {
		st.bitShare0 = float64(uint64(table.CodeFor(zero).Len)*zeroFreq) / float64(totalBits)
	}
	// totalBits (Σ freq × code length over the fused frequency table) is
	// exactly the payload bit count, so the encoder skips its own counting
	// pass over the symbol stream.
	enc, err := huffman.EncodeToSized(dst, syms, table, totalBits)
	if err != nil {
		return nil, st, err
	}
	return enc, st, nil
}

// MaxAbsError returns the largest absolute difference between two equally
// sized slices. It is the invariant checked by the error-bound tests.
func MaxAbsError(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var m float64
	for i := 0; i < n; i++ {
		d := math.Abs(a[i] - b[i])
		if d > m {
			m = d
		}
	}
	return m
}
