package sz

import (
	"encoding/binary"
	"fmt"

	"ocelot/internal/codec"
)

// chunkMagic identifies an Ocelot-SZ chunked container ("OCSC"). It is
// distinct from streamMagic so Decompress can dispatch transparently.
const chunkMagic = 0x4F435343

// chunkVersion is bumped on incompatible container layout changes.
const chunkVersion = 1

// ChunkRange describes one block of a chunk-decomposed field: the rows
// [Start, End) along the slowest axis (dims[0]). Chunks are contiguous in
// the row-major layout, so a chunk is a zero-copy subslice of the field.
type ChunkRange struct {
	// Index is the chunk's position in the plan (0-based).
	Index int
	// Start is the first row (inclusive) along dims[0].
	Start int
	// End is the last row (exclusive) along dims[0].
	End int
}

// rowPoints returns the number of values in one row (the product of the
// trailing dimensions).
func rowPoints(dims []int) int {
	n := 1
	for _, d := range dims[1:] {
		n *= d
	}
	return n
}

// subDims returns the chunk's shape: r.End−r.Start rows of the field's
// trailing dimensions.
func (r ChunkRange) subDims(dims []int) []int {
	out := make([]int, len(dims))
	copy(out, dims)
	out[0] = r.End - r.Start
	return out
}

// NumPoints returns the number of values the range covers within a field of
// the given shape.
func (r ChunkRange) NumPoints(dims []int) int {
	return (r.End - r.Start) * rowPoints(dims)
}

// PlanChunks splits a field shape into independently compressible chunks of
// roughly targetPoints values each, cutting along the slowest axis
// (dims[0]). Rows are distributed as evenly as possible so parallel workers
// get balanced tasks. targetPoints ≤ 0, or a field too small to split,
// yields a single chunk covering the whole field. The plan depends only on
// the shape and target — never on worker count or timing — so two runs of
// the same campaign always decompose identically.
func PlanChunks(dims []int, targetPoints int) []ChunkRange {
	if len(dims) == 0 {
		return nil
	}
	rows := dims[0]
	row := rowPoints(dims)
	if targetPoints <= 0 || row <= 0 || rows <= 0 {
		// Degenerate shapes fall through as a single chunk so the
		// compressor's own dims validation reports the error (instead of a
		// divide-by-zero here).
		return []ChunkRange{{Index: 0, Start: 0, End: rows}}
	}
	rowsPer := targetPoints / row
	if rowsPer < 1 {
		rowsPer = 1
	}
	n := (rows + rowsPer - 1) / rowsPer
	if n < 1 {
		n = 1
	}
	base, rem := rows/n, rows%n
	out := make([]ChunkRange, n)
	start := 0
	for i := range out {
		size := base
		if i < rem {
			size++
		}
		out[i] = ChunkRange{Index: i, Start: start, End: start + size}
		start += size
	}
	return out
}

// PlanChunksBytes is PlanChunks with the target expressed in raw bytes of
// the original dataset (elementSize bytes per value; ≤ 0 assumes float32).
func PlanChunksBytes(dims []int, targetBytes int64, elementSize int) []ChunkRange {
	if targetBytes <= 0 {
		return PlanChunks(dims, 0)
	}
	if elementSize <= 0 {
		elementSize = 4
	}
	pts := int(targetBytes / int64(elementSize))
	if pts < 1 {
		pts = 1
	}
	return PlanChunks(dims, pts)
}

// CompressChunk compresses one chunk of a field as a standalone stream. The
// error bound is resolved against the WHOLE field (cfg.AbsoluteBound over
// data), not the chunk: a range-relative bound therefore means the same
// absolute tolerance for every chunk, exactly as a monolithic compression
// of the field would apply — chunk decomposition never changes the
// guarantee. The returned stream decompresses independently with Decompress
// and carries the chunk's sub-shape in its header.
func CompressChunk(data []float64, dims []int, cfg Config, r ChunkRange) ([]byte, *Stats, error) {
	if err := validateDims(len(data), dims); err != nil {
		return nil, nil, err
	}
	if r.Start < 0 || r.End > dims[0] || r.Start >= r.End {
		return nil, nil, fmt.Errorf("sz: chunk rows [%d,%d) outside field of %d rows", r.Start, r.End, dims[0])
	}
	row := rowPoints(dims)
	sub := data[r.Start*row : r.End*row]
	ccfg := cfg
	ccfg.ErrorBound = cfg.AbsoluteBound(data)
	ccfg.BoundMode = BoundAbsolute
	return Compress(sub, r.subDims(dims), ccfg)
}

// AssembleChunks frames per-chunk streams (in plan order) into one chunked
// container. Assembly is pure byte layout — no recompression — so the
// container is byte-identical no matter which workers produced the chunks
// or in what order they completed, as long as the caller indexes them by
// ChunkRange.Index. Every chunk must be a stream of a registered codec
// (chunks of one container may even mix codecs — decode dispatches
// per-chunk on magic), and all chunks must agree on the trailing
// dimensions (they differ only in row count).
func AssembleChunks(chunks [][]byte) ([]byte, error) {
	if len(chunks) == 0 {
		return nil, fmt.Errorf("sz: no chunks to assemble")
	}
	if len(chunks) > 1<<31-1 {
		return nil, fmt.Errorf("sz: too many chunks (%d)", len(chunks))
	}
	var tail []int
	total := 9 + 8*len(chunks)
	for i, c := range chunks {
		// Chunks must be codec streams, never containers: nesting would
		// let a crafted container recurse the decoder without bound.
		if IsChunked(c) {
			return nil, fmt.Errorf("sz: chunk %d: nested container: %w", i, ErrCorrupt)
		}
		dims, err := codec.StreamDims(c)
		if err != nil {
			return nil, fmt.Errorf("sz: chunk %d: %w", i, err)
		}
		if i == 0 {
			tail = dims[1:]
		} else {
			if len(dims)-1 != len(tail) {
				return nil, fmt.Errorf("sz: chunk %d dimensionality mismatch: %w", i, ErrCorrupt)
			}
			for j, d := range dims[1:] {
				if d != tail[j] {
					return nil, fmt.Errorf("sz: chunk %d trailing dims mismatch: %w", i, ErrCorrupt)
				}
			}
		}
		total += len(c)
	}
	out := make([]byte, 0, total)
	var b4 [4]byte
	var b8 [8]byte
	binary.LittleEndian.PutUint32(b4[:], chunkMagic)
	out = append(out, b4[:]...)
	out = append(out, chunkVersion)
	binary.LittleEndian.PutUint32(b4[:], uint32(len(chunks)))
	out = append(out, b4[:]...)
	for _, c := range chunks {
		binary.LittleEndian.PutUint64(b8[:], uint64(len(c)))
		out = append(out, b8[:]...)
	}
	for _, c := range chunks {
		out = append(out, c...)
	}
	return out, nil
}

// IsChunked reports whether a stream is a chunked container produced by
// AssembleChunks (as opposed to a plain Compress stream).
func IsChunked(stream []byte) bool {
	return len(stream) >= 4 && binary.LittleEndian.Uint32(stream[:4]) == chunkMagic
}

// SplitChunked returns the per-chunk streams of a chunked container, in
// plan order, as subslices of the input (no copying). Each returned stream
// decompresses independently with Decompress.
func SplitChunked(stream []byte) ([][]byte, error) {
	if !IsChunked(stream) {
		return nil, fmt.Errorf("sz: not a chunked container: %w", ErrCorrupt)
	}
	if len(stream) < 9 {
		return nil, ErrCorrupt
	}
	if stream[4] != chunkVersion {
		return nil, fmt.Errorf("sz: unsupported chunk container version %d: %w", stream[4], ErrCorrupt)
	}
	n := int(binary.LittleEndian.Uint32(stream[5:9]))
	if n <= 0 || n > 1<<28 {
		return nil, ErrCorrupt
	}
	head := 9 + 8*n
	if len(stream) < head {
		return nil, ErrCorrupt
	}
	out := make([][]byte, n)
	off := head
	for i := 0; i < n; i++ {
		l := binary.LittleEndian.Uint64(stream[9+8*i : 17+8*i])
		// Compare against the remaining bytes without adding to l: a
		// crafted 64-bit length must not overflow the bounds check.
		if l == 0 || l > uint64(len(stream)-off) {
			return nil, ErrCorrupt
		}
		out[i] = stream[off : off+int(l)]
		off += int(l)
	}
	if off != len(stream) {
		return nil, fmt.Errorf("sz: %d trailing container bytes: %w", len(stream)-off, ErrCorrupt)
	}
	return out, nil
}

// DecompressChunked decodes a chunked container: each chunk stream is
// decompressed independently — dispatching on its own codec magic, so a
// container may hold chunks from any registered codec — and the
// reconstructions are concatenated in plan order, yielding the full field
// and its shape (the chunks' rows summed along dims[0]). Per-chunk error
// bounds carry through unchanged — every value honours the absolute bound
// its chunk was compressed under.
func DecompressChunked(stream []byte) ([]float64, []int, error) {
	chunks, err := SplitChunked(stream)
	if err != nil {
		return nil, nil, err
	}
	// Size the output once from the chunk headers: this runs in the verify
	// hot path of every chunked campaign, and append-growth would copy the
	// field O(log chunks) times.
	// The headers are attacker-controlled until each chunk actually
	// decodes, so cap the preallocation as it accumulates: a crafted
	// container claiming 2^40 points per chunk must neither reserve
	// terabytes up front nor wrap the sum negative. Legitimate fields
	// beyond the cap merely pay append-growth copies.
	const capLimit = 1 << 24
	total := 0
	for i, c := range chunks {
		// Reject containers-as-chunks before any dispatch: a crafted
		// container nesting containers would otherwise recurse
		// codec.Decompress → DecompressChunked without bound and overflow
		// the stack instead of erroring.
		if IsChunked(c) {
			return nil, nil, fmt.Errorf("sz: chunk %d: nested container: %w", i, ErrCorrupt)
		}
		sub, err := codec.StreamDims(c)
		if err != nil {
			return nil, nil, fmt.Errorf("sz: chunk %d: %w", i, err)
		}
		n := 1
		for _, d := range sub {
			n *= d // headers guarantee each product ≤ 2^40, positive
		}
		if total < capLimit {
			total += n
		}
	}
	if total > capLimit {
		total = capLimit
	}
	data := make([]float64, 0, total)
	var dims []int
	for i, c := range chunks {
		recon, sub, err := codec.Decompress(c)
		if err != nil {
			return nil, nil, fmt.Errorf("sz: chunk %d: %w", i, err)
		}
		if i == 0 {
			dims = sub
		} else {
			if len(sub) != len(dims) {
				return nil, nil, fmt.Errorf("sz: chunk %d dimensionality mismatch: %w", i, ErrCorrupt)
			}
			for j := 1; j < len(sub); j++ {
				if sub[j] != dims[j] {
					return nil, nil, fmt.Errorf("sz: chunk %d trailing dims mismatch: %w", i, ErrCorrupt)
				}
			}
			dims[0] += sub[0]
		}
		data = append(data, recon...)
	}
	return data, dims, nil
}

// ChunkedDims parses only a container's framing and per-chunk headers and
// returns the assembled field shape (rows summed along dims[0]) — the
// cheap geometry probe the codec registry exposes for containers.
func ChunkedDims(stream []byte) ([]int, error) {
	chunks, err := SplitChunked(stream)
	if err != nil {
		return nil, err
	}
	var dims []int
	for i, c := range chunks {
		if IsChunked(c) {
			return nil, fmt.Errorf("sz: chunk %d: nested container: %w", i, ErrCorrupt)
		}
		sub, err := codec.StreamDims(c)
		if err != nil {
			return nil, fmt.Errorf("sz: chunk %d: %w", i, err)
		}
		if i == 0 {
			dims = append([]int(nil), sub...)
			continue
		}
		if len(sub) != len(dims) {
			return nil, fmt.Errorf("sz: chunk %d dimensionality mismatch: %w", i, ErrCorrupt)
		}
		for j := 1; j < len(sub); j++ {
			if sub[j] != dims[j] {
				return nil, fmt.Errorf("sz: chunk %d trailing dims mismatch: %w", i, ErrCorrupt)
			}
		}
		dims[0] += sub[0]
	}
	return dims, nil
}

// CompressChunked is the serial convenience path: plan chunks of roughly
// targetPoints values, compress each (same absolute bound as a monolithic
// run), and assemble the container. It is the reference implementation the
// parallel fan-out in internal/core must match byte-for-byte.
func CompressChunked(data []float64, dims []int, cfg Config, targetPoints int) ([]byte, *Stats, error) {
	ranges := PlanChunks(dims, targetPoints)
	if len(ranges) == 0 {
		return nil, nil, fmt.Errorf("sz: empty chunk plan")
	}
	chunks := make([][]byte, len(ranges))
	agg := &Stats{}
	var wp0, whp0, went float64
	// Resolve a relative bound against the full field once; CompressChunk
	// on an absolute config is then a no-op rescan-wise, so splitting into
	// C chunks does not pay C full-field range scans.
	ccfg := cfg
	ccfg.ErrorBound = cfg.AbsoluteBound(data)
	ccfg.BoundMode = BoundAbsolute
	for i, r := range ranges {
		stream, st, err := CompressChunk(data, dims, ccfg, r)
		if err != nil {
			return nil, nil, fmt.Errorf("sz: chunk %d: %w", i, err)
		}
		chunks[i] = stream
		agg.NumPoints += st.NumPoints
		agg.NumEscapes += st.NumEscapes
		agg.HuffmanBits += st.HuffmanBits
		wp0 += st.P0Quant * float64(st.NumPoints)
		whp0 += st.HuffP0 * float64(st.NumPoints)
		went += st.QuantEntropy * float64(st.NumPoints)
	}
	out, err := AssembleChunks(chunks)
	if err != nil {
		return nil, nil, err
	}
	if agg.NumPoints > 0 {
		agg.P0Quant = wp0 / float64(agg.NumPoints)
		agg.HuffP0 = whp0 / float64(agg.NumPoints)
		agg.QuantEntropy = went / float64(agg.NumPoints)
	}
	agg.CompressedBytes = len(out)
	return out, agg, nil
}
