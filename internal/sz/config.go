// Package sz implements a prediction-based error-bounded lossy compressor in
// the style of SZ2/SZ3 (Liang et al., "SZ3: A modular framework for composing
// prediction-based error-bounded lossy compressors"). The pipeline is
//
//	predict → linear-scale quantize → Huffman encode → lossless backend
//
// with three interchangeable predictors: multidimensional Lorenzo,
// multilevel spline interpolation (the SZ3-interp default), and per-block
// linear regression (the SZ2 style). Compression guarantees that every
// reconstructed value differs from the original by at most the requested
// absolute error bound.
package sz

import (
	"errors"
	"fmt"
	"math"

	"ocelot/internal/codec"
	"ocelot/internal/lossless"
)

// Predictor selects the decorrelation stage of the pipeline.
type Predictor uint8

const (
	// PredictorLorenzo uses the n-dimensional Lorenzo predictor.
	PredictorLorenzo Predictor = iota + 1
	// PredictorInterp uses multilevel spline interpolation (SZ3 default).
	PredictorInterp
	// PredictorRegression uses per-block linear regression (SZ2 style).
	PredictorRegression
)

// String implements fmt.Stringer.
func (p Predictor) String() string {
	switch p {
	case PredictorLorenzo:
		return "lorenzo"
	case PredictorInterp:
		return "interp"
	case PredictorRegression:
		return "regression"
	default:
		return fmt.Sprintf("predictor(%d)", uint8(p))
	}
}

// PredictorNames lists the canonical predictor names ParsePredictor
// accepts, in the order error messages cite them.
func PredictorNames() []string {
	return []string{"lorenzo", "interp", "regression"}
}

// ParsePredictor converts a string name into a Predictor. Unknown names
// error with the valid list, using the same consolidated format as the
// codec registry's name lookup (codec.UnknownName).
func ParsePredictor(s string) (Predictor, error) {
	switch s {
	case "lorenzo":
		return PredictorLorenzo, nil
	case "interp", "interpolation", "sz-interp":
		return PredictorInterp, nil
	case "regression", "reg":
		return PredictorRegression, nil
	default:
		return 0, fmt.Errorf("sz: %w", codec.UnknownName("predictor", s, PredictorNames()))
	}
}

// InterpMode selects the interpolation basis for PredictorInterp.
type InterpMode uint8

const (
	// InterpLinear interpolates between the two nearest lattice neighbors.
	InterpLinear InterpMode = iota + 1
	// InterpCubic uses a 4-point cubic spline where available.
	InterpCubic
)

// String implements fmt.Stringer.
func (m InterpMode) String() string {
	switch m {
	case InterpLinear:
		return "linear"
	case InterpCubic:
		return "cubic"
	default:
		return fmt.Sprintf("interp(%d)", uint8(m))
	}
}

// BoundMode selects how the error bound is interpreted.
type BoundMode uint8

const (
	// BoundAbsolute uses ErrorBound directly.
	BoundAbsolute BoundMode = iota + 1
	// BoundRelative scales ErrorBound by the dataset's value range.
	BoundRelative
)

// String implements fmt.Stringer.
func (m BoundMode) String() string {
	switch m {
	case BoundAbsolute:
		return "abs"
	case BoundRelative:
		return "rel"
	default:
		return fmt.Sprintf("bound(%d)", uint8(m))
	}
}

// Config controls a compression run.
type Config struct {
	// ErrorBound is the absolute (or, with BoundRelative, range-relative)
	// error tolerance. Must be > 0.
	ErrorBound float64
	// BoundMode defaults to BoundAbsolute.
	BoundMode BoundMode
	// Predictor defaults to PredictorInterp.
	Predictor Predictor
	// Interp defaults to InterpCubic and only applies to PredictorInterp.
	Interp InterpMode
	// Backend is the final lossless stage; defaults to lossless.Deflate.
	Backend lossless.Backend
	// Radius is the quantizer radius; ≤ 0 selects quant.DefaultRadius.
	Radius int
	// BlockSide is the regression block edge length; ≤ 0 selects 6.
	BlockSide int
}

// DefaultConfig returns the SZ3-interp default pipeline at the given
// absolute error bound.
func DefaultConfig(eb float64) Config {
	return Config{
		ErrorBound: eb,
		BoundMode:  BoundAbsolute,
		Predictor:  PredictorInterp,
		Interp:     InterpCubic,
		Backend:    lossless.Deflate,
	}
}

// AbsoluteBound resolves the configured error bound against data: with
// BoundAbsolute it is ErrorBound itself; with BoundRelative it is
// ErrorBound × the data's value range, falling back to a range of 1 for
// constant, empty, or non-finite data. Compress and SampledCodes both
// resolve through this helper, so the predictor's cheap feature pass
// quantizes at exactly the bound the real compression run uses — including
// on degenerate fields.
func (c Config) AbsoluteBound(data []float64) float64 {
	if c.BoundMode != BoundRelative || len(data) == 0 {
		return c.ErrorBound
	}
	lo, hi := data[0], data[0]
	for _, v := range data {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	rng := hi - lo
	if rng <= 0 || math.IsNaN(rng) || math.IsInf(rng, 0) {
		rng = 1
	}
	return c.ErrorBound * rng
}

// withDefaults fills zero fields with defaults and validates.
func (c Config) withDefaults() (Config, error) {
	if c.ErrorBound <= 0 {
		return c, errors.New("sz: error bound must be positive")
	}
	if c.BoundMode == 0 {
		c.BoundMode = BoundAbsolute
	}
	if c.Predictor == 0 {
		c.Predictor = PredictorInterp
	}
	if c.Interp == 0 {
		c.Interp = InterpCubic
	}
	if c.Backend == 0 {
		c.Backend = lossless.Deflate
	}
	if c.Radius <= 0 {
		c.Radius = 0 // quant.New substitutes its default
	}
	if c.BlockSide <= 0 {
		c.BlockSide = 6
	}
	switch c.Predictor {
	case PredictorLorenzo, PredictorInterp, PredictorRegression:
	default:
		return c, fmt.Errorf("sz: invalid predictor %v", c.Predictor)
	}
	return c, nil
}

// validateDims checks the shape argument.
func validateDims(n int, dims []int) error {
	if len(dims) == 0 || len(dims) > 4 {
		return fmt.Errorf("sz: unsupported dimensionality %d", len(dims))
	}
	total := 1
	for _, d := range dims {
		if d <= 0 {
			return fmt.Errorf("sz: non-positive dimension %d", d)
		}
		total *= d
	}
	if total != n {
		return fmt.Errorf("sz: dims product %d != data length %d", total, n)
	}
	return nil
}
