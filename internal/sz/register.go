package sz

import "ocelot/internal/codec"

// CodecName is the registry key of the SZ3-style pipeline — the
// repository's default codec (codec.DefaultName).
const CodecName = "sz3"

// sz3Codec adapts this package to the codec.Codec interface, so the
// campaign engine, planner, and CLI address the SZ3 pipeline by name
// exactly like any other registered codec.
type sz3Codec struct{}

func (sz3Codec) Name() string  { return CodecName }
func (sz3Codec) Magic() uint32 { return streamMagic }

// paramsConfig resolves codec-neutral Params into this codec's Config:
// the bound is already absolute, and the predictor hint (when set) must
// name one of the pipeline's predictors.
func paramsConfig(p codec.Params) (Config, error) {
	if err := p.Validate(); err != nil {
		return Config{}, err
	}
	cfg := DefaultConfig(p.AbsErrorBound)
	if p.PredictorHint != "" {
		pred, err := ParsePredictor(p.PredictorHint)
		if err != nil {
			return Config{}, err
		}
		cfg.Predictor = pred
	}
	return cfg, nil
}

func (sz3Codec) Compress(data []float64, dims []int, p codec.Params) ([]byte, error) {
	cfg, err := paramsConfig(p)
	if err != nil {
		return nil, err
	}
	stream, _, err := Compress(data, dims, cfg)
	return stream, err
}

func (sz3Codec) Decompress(stream []byte) ([]float64, []int, error) {
	return Decompress(stream)
}

func (sz3Codec) StreamDims(stream []byte) ([]int, error) {
	h, _, err := parseHeader(stream)
	if err != nil {
		return nil, err
	}
	dims := make([]int, len(h.dims))
	copy(dims, h.dims)
	return dims, nil
}

func (sz3Codec) Probe(data []float64, dims []int, p codec.Params, stride int) ([]int, error) {
	cfg, err := paramsConfig(p)
	if err != nil {
		return nil, err
	}
	return SampledCodes(data, dims, cfg, stride)
}

func (sz3Codec) Caps() codec.Caps {
	return codec.Caps{Predictors: true}
}

func init() {
	codec.Register(sz3Codec{})
	// The chunked container is framing, not a codec: its payloads are
	// codec streams in their own right (any registered codec). Registering
	// it here lets codec.Decompress dispatch whole containers
	// transparently, exactly as sz.Decompress always has.
	codec.RegisterContainer(codec.Container{
		Name:       "ocsc",
		Magic:      chunkMagic,
		Decompress: DecompressChunked,
		StreamDims: ChunkedDims,
	})
}
