package datagen

import (
	"math"
	"testing"

	"ocelot/internal/metrics"
)

func TestAppsAndFields(t *testing.T) {
	apps := Apps()
	if len(apps) != 7 {
		t.Fatalf("want 7 applications, got %d: %v", len(apps), apps)
	}
	for _, app := range apps {
		fields := Fields(app)
		if len(fields) == 0 {
			t.Errorf("%s: no fields", app)
		}
	}
	if Fields("nope") != nil {
		t.Error("unknown app must return nil fields")
	}
}

func TestGenerateAllApps(t *testing.T) {
	for _, app := range Apps() {
		fields, err := GenerateAll(app, 16, 1)
		if err != nil {
			t.Fatalf("%s: %v", app, err)
		}
		for _, f := range fields {
			if f.NumPoints() == 0 {
				t.Errorf("%s/%s: empty", app, f.Name)
			}
			n := 1
			for _, d := range f.Dims {
				n *= d
			}
			if n != f.NumPoints() {
				t.Errorf("%s/%s: dims %v product != %d", app, f.Name, f.Dims, f.NumPoints())
			}
			if f.RawBytes() != 4*f.NumPoints() {
				t.Errorf("%s/%s: raw bytes %d", app, f.Name, f.RawBytes())
			}
			for i, v := range f.Data {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("%s/%s: bad value at %d: %v", app, f.Name, i, v)
				}
			}
		}
	}
}

func TestDeterministic(t *testing.T) {
	a, err := Generate("CESM", "CLDHGH", 20, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate("CESM", "CLDHGH", 20, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("not deterministic at %d", i)
		}
	}
	c, err := Generate("CESM", "CLDHGH", 20, 43)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Data {
		if a.Data[i] != c.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds must differ")
	}
}

// TestTableIRanges verifies the paper's Table I value ranges are matched.
func TestTableIRanges(t *testing.T) {
	cases := []struct {
		app, field string
		min, max   float64
	}{
		{"CESM", "CLDHGH", 0.00, 0.92},
		{"CESM", "FLDSC", 92.84, 418.24},
		{"CESM", "PCONVT", 39025.27, 103207.45},
		{"HACC", "vx", -3846.21, 4031.25},
		{"HACC", "xx", 0.00, 256.00},
	}
	for _, c := range cases {
		f, err := Generate(c.app, c.field, 16, 7)
		if err != nil {
			t.Fatalf("%s/%s: %v", c.app, c.field, err)
		}
		st := metrics.ComputeRange(f.Data)
		tolMin := math.Max(1e-3, math.Abs(c.min)*1e-3)
		tolMax := math.Max(1e-3, math.Abs(c.max)*1e-3)
		if math.Abs(st.Min-c.min) > tolMin {
			t.Errorf("%s/%s: min %.4f want %.4f", c.app, c.field, st.Min, c.min)
		}
		if math.Abs(st.Max-c.max) > tolMax {
			t.Errorf("%s/%s: max %.4f want %.4f", c.app, c.field, st.Max, c.max)
		}
	}
}

func TestClampedFieldsHaveZeroPlateaus(t *testing.T) {
	f, err := Generate("CESM", "CLDHGH", 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	zeros := 0
	for _, v := range f.Data {
		if v == 0 {
			zeros++
		}
	}
	if zeros == 0 {
		t.Error("cloud-fraction field should have a zero plateau")
	}
}

func TestRTMSnapshots(t *testing.T) {
	early, err := Generate("RTM", "snap-0200", 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	late, err := Generate("RTM", "snap-3200", 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Different snapshots must differ: the wavefront moved.
	diff := 0
	for i := range early.Data {
		if early.Data[i] != late.Data[i] {
			diff++
		}
	}
	if diff < len(early.Data)/10 {
		t.Error("snapshots too similar")
	}
	if _, err := Generate("RTM", "bogus", 8, 1); err == nil {
		t.Error("bad RTM field name must error")
	}
	if _, err := Generate("RTM", "snap-9999", 8, 1); err == nil {
		t.Error("out-of-range snapshot must error")
	}
}

func TestUnknownAppAndField(t *testing.T) {
	if _, err := Generate("nope", "x", 8, 1); err == nil {
		t.Error("unknown app must error")
	}
	if _, err := Generate("CESM", "nope", 8, 1); err == nil {
		t.Error("unknown field must error")
	}
	if _, err := GenerateAll("nope", 8, 1); err == nil {
		t.Error("unknown app must error")
	}
}

func TestShrinkScaling(t *testing.T) {
	small, err := Generate("Miranda", "density", 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	large, err := Generate("Miranda", "density", 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if small.NumPoints() >= large.NumPoints() {
		t.Errorf("shrink 32 (%d pts) should be smaller than shrink 16 (%d pts)",
			small.NumPoints(), large.NumPoints())
	}
	// Extreme shrink clamps to minimum size 4 per dim.
	tiny, err := Generate("Miranda", "density", 10000, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range tiny.Dims {
		if d < 4 {
			t.Errorf("dims clamped below 4: %v", tiny.Dims)
		}
	}
}

func TestSmoothVsNoisyCompressibility(t *testing.T) {
	// Miranda density (smooth) must have lower byte entropy than HACC vx.
	smooth, err := Generate("Miranda", "density", 24, 5)
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := Generate("HACC", "vx", 64, 5)
	if err != nil {
		t.Fatal(err)
	}
	se := metrics.ByteEntropy(smooth.Data, 4)
	ne := metrics.ByteEntropy(noisy.Data, 4)
	if se >= ne {
		t.Errorf("smooth entropy %.3f should be below noisy %.3f", se, ne)
	}
}

func TestFieldID(t *testing.T) {
	f, err := Generate("CESM", "TMQ", 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	if f.ID() != "CESM/TMQ" {
		t.Errorf("ID = %q", f.ID())
	}
}

func BenchmarkGenerateCESM(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Generate("CESM", "TMQ", 8, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
