// Package datagen synthesizes the scientific datasets used by the paper's
// evaluation (Table IV): CESM climate fields, Miranda hydrodynamics, RTM
// seismic wavefields, Nyx cosmology, Hurricane ISABEL, QMCPACK orbitals, and
// HACC particle data. Real datasets are not redistributable, so each field
// is replaced by a seeded synthetic equivalent that matches the original's
// dimensionality, value range (paper Table I), smoothness and noise profile
// — the properties that drive prediction-based compression behaviour.
package datagen

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// Field is one named variable of an application dataset.
type Field struct {
	App         string    // application name, e.g. "CESM"
	Name        string    // field name, e.g. "CLDHGH"
	Dims        []int     // row-major shape, dims[0] slowest
	Data        []float64 // values
	ElementSize int       // bytes/element in the original dataset (4 = float32)
}

// NumPoints returns the number of values in the field.
func (f *Field) NumPoints() int { return len(f.Data) }

// RawBytes returns the field's uncompressed size using the original
// dataset's element width.
func (f *Field) RawBytes() int { return len(f.Data) * f.ElementSize }

// ID returns "App/Name".
func (f *Field) ID() string { return f.App + "/" + f.Name }

// texture selects the structural generator for a field.
type texture uint8

const (
	texSmooth    texture = iota + 1 // multi-octave spectral field
	texClamped                      // smooth, clamped at zero (cloud fraction)
	texLogSmooth                    // log10 of a positive lognormal field
	texWave                         // expanding wavefront (RTM)
	texLognormal                    // exp(gaussian): cosmology density
	texVortex                       // rotating storm (ISABEL winds)
	texGaussian                     // white gaussian noise (HACC velocities)
	texUniform                      // white uniform noise (HACC positions)
	texOrbital                      // oscillatory orbital-like product field
)

// spec is the generation recipe for one field.
type spec struct {
	texture  texture
	alpha    float64 // spectral decay: higher = smoother
	noise    float64 // white-noise amplitude as a fraction of signal
	min, max float64 // target value range (paper Table I where known)
	param    float64 // texture-specific parameter
}

// baseDims holds each application's full-size shape (paper Table IV).
var baseDims = map[string][]int{
	"CESM":    {1800, 3600},
	"Miranda": {256, 384, 384},
	"RTM":     {235, 449, 449},
	"Nyx":     {512, 512, 512},
	"ISABEL":  {100, 500, 500},
	"QMCPACK": {288, 69, 69},
	"HACC":    {1 << 25},
}

// fieldSpecs registers every named field. RTM snapshots are handled
// dynamically (any "snap-NNNN" name is valid).
var fieldSpecs = map[string]map[string]spec{
	"CESM": {
		"CLDHGH":    {texture: texClamped, alpha: 2.2, noise: 0.02, min: 0.00, max: 0.92},
		"CLDMED":    {texture: texClamped, alpha: 2.0, noise: 0.05, min: 0.00, max: 0.99},
		"CLDLOW":    {texture: texClamped, alpha: 1.9, noise: 0.04, min: 0.00, max: 1.00},
		"FLDSC":     {texture: texSmooth, alpha: 2.4, noise: 0.01, min: 92.84, max: 418.24},
		"PCONVT":    {texture: texSmooth, alpha: 2.1, noise: 0.03, min: 39025.27, max: 103207.45},
		"TMQ":       {texture: texSmooth, alpha: 2.3, noise: 0.01, min: 0.31, max: 62.88},
		"TROP_Z":    {texture: texSmooth, alpha: 2.8, noise: 0.002, min: 5521.1, max: 17493.7},
		"ICEFRAC":   {texture: texClamped, alpha: 2.5, noise: 0.01, min: 0, max: 1},
		"PSL":       {texture: texSmooth, alpha: 2.7, noise: 0.004, min: 94987.3, max: 104719.8},
		"FLNSC":     {texture: texSmooth, alpha: 2.2, noise: 0.02, min: 23.4, max: 213.6},
		"ODV_ocar2": {texture: texLogSmooth, alpha: 1.8, noise: 0.05, min: 1.1e-12, max: 3.6e-8},
		"LHFLX":     {texture: texSmooth, alpha: 1.9, noise: 0.06, min: -41.5, max: 606.9},
		"TREFHT":    {texture: texSmooth, alpha: 2.6, noise: 0.005, min: 216.1, max: 316.2},
		"FSDTOA":    {texture: texSmooth, alpha: 3.0, noise: 0.001, min: 0, max: 1407.6},
		"SNOWHICE":  {texture: texClamped, alpha: 2.3, noise: 0.01, min: 0, max: 1.72},
	},
	"Miranda": {
		"density":     {texture: texSmooth, alpha: 2.6, noise: 0.002, min: 0.98, max: 3.03},
		"velocityx":   {texture: texSmooth, alpha: 2.2, noise: 0.01, min: -0.55, max: 0.56},
		"velocityy":   {texture: texSmooth, alpha: 2.2, noise: 0.01, min: -0.44, max: 0.47},
		"velocityz":   {texture: texSmooth, alpha: 2.2, noise: 0.01, min: -0.40, max: 0.42},
		"pressure":    {texture: texSmooth, alpha: 2.5, noise: 0.004, min: 0.72, max: 1.32},
		"viscosity":   {texture: texSmooth, alpha: 2.0, noise: 0.02, min: 0, max: 0.0016},
		"diffusivity": {texture: texSmooth, alpha: 2.0, noise: 0.02, min: 0, max: 0.0021},
		"energy":      {texture: texSmooth, alpha: 2.4, noise: 0.006, min: 1.9, max: 4.9},
	},
	"Nyx": {
		"baryon_density":      {texture: texLognormal, alpha: 1.6, noise: 0.08, min: 6.9e-2, max: 4.8e4, param: 2.2},
		"dark_matter_density": {texture: texLognormal, alpha: 1.5, noise: 0.10, min: 0, max: 1.2e4, param: 2.6},
		"temperature":         {texture: texLognormal, alpha: 1.8, noise: 0.05, min: 2.4e2, max: 4.7e6, param: 1.8},
		"velocity_x":          {texture: texSmooth, alpha: 1.9, noise: 0.05, min: -8.7e6, max: 8.9e6},
		"velocity_y":          {texture: texSmooth, alpha: 1.9, noise: 0.05, min: -8.5e6, max: 8.6e6},
		"velocity_z":          {texture: texSmooth, alpha: 1.9, noise: 0.05, min: -8.8e6, max: 8.4e6},
	},
	"ISABEL": {
		"QSNOWf48_log10":  {texture: texLogSmooth, alpha: 1.9, noise: 0.04, min: -8.8, max: -2.2},
		"PRECIPf48_log10": {texture: texLogSmooth, alpha: 1.8, noise: 0.05, min: -9.1, max: -1.9},
		"QVAPORf48":       {texture: texSmooth, alpha: 2.3, noise: 0.01, min: 0, max: 0.024},
		"CLOUDf48_log10":  {texture: texLogSmooth, alpha: 1.9, noise: 0.05, min: -9.5, max: -2.6},
		"Wf48":            {texture: texVortex, alpha: 1.8, noise: 0.06, min: -9.3, max: 28.8, param: 0.3},
		"Pf48":            {texture: texSmooth, alpha: 2.6, noise: 0.004, min: -5471.9, max: 3225.4},
		"TCf48":           {texture: texSmooth, alpha: 2.4, noise: 0.01, min: -83.1, max: 31.8},
		"Uf48":            {texture: texVortex, alpha: 2.0, noise: 0.03, min: -79.5, max: 85.1, param: 1.0},
		"Vf48":            {texture: texVortex, alpha: 2.0, noise: 0.03, min: -76.8, max: 82.8, param: -1.0},
		"QRAINf48_log10":  {texture: texLogSmooth, alpha: 1.8, noise: 0.05, min: -9.3, max: -2.1},
	},
	"QMCPACK": {
		"einspline": {texture: texOrbital, alpha: 2.0, noise: 0.002, min: -2.4, max: 2.6},
	},
	"HACC": {
		"vx": {texture: texGaussian, min: -3846.21, max: 4031.25},
		"vy": {texture: texGaussian, min: -3786.4, max: 3943.8},
		"vz": {texture: texGaussian, min: -3921.7, max: 3881.2},
		"xx": {texture: texUniform, min: 0, max: 256.00},
		"yy": {texture: texUniform, min: 0, max: 256.00},
		"zz": {texture: texUniform, min: 0, max: 256.00},
	},
}

// Apps lists the supported applications in stable order.
func Apps() []string {
	apps := make([]string, 0, len(baseDims))
	for a := range baseDims {
		apps = append(apps, a)
	}
	sort.Strings(apps)
	return apps
}

// Fields lists the named fields of an application in stable order. For RTM
// it returns a default set of snapshot names; any "snap-NNNN" is accepted
// by Generate.
func Fields(app string) []string {
	if app == "RTM" {
		return []string{
			"snap-0200", "snap-0594", "snap-1048", "snap-1400",
			"snap-1800", "snap-1982", "snap-2600", "snap-3200",
		}
	}
	specs, ok := fieldSpecs[app]
	if !ok {
		return nil
	}
	names := make([]string, 0, len(specs))
	for n := range specs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Generate synthesizes one field. shrink divides every base dimension
// (shrink ≤ 1 produces full paper-scale data — large!). The same
// (app, field, shrink, seed) always produces identical values.
func Generate(app, field string, shrink int, seed int64) (*Field, error) {
	dims0, ok := baseDims[app]
	if !ok {
		return nil, fmt.Errorf("datagen: unknown application %q", app)
	}
	if shrink < 1 {
		shrink = 1
	}
	dims := make([]int, len(dims0))
	for i, d := range dims0 {
		dims[i] = d / shrink
		if dims[i] < 4 {
			dims[i] = 4
		}
	}
	var sp spec
	if app == "RTM" {
		idx, err := rtmSnapshotIndex(field)
		if err != nil {
			return nil, err
		}
		sp = spec{texture: texWave, alpha: 2.0, noise: 0.01, min: -1.2e4, max: 1.3e4,
			param: float64(idx)}
	} else {
		sp, ok = fieldSpecs[app][field]
		if !ok {
			return nil, fmt.Errorf("datagen: unknown field %q of %q", field, app)
		}
	}
	rng := rand.New(rand.NewSource(seed ^ int64(fieldHash(app+"/"+field))))
	data := synthesize(sp, dims, rng)
	return &Field{
		App: app, Name: field, Dims: dims, Data: data, ElementSize: 4,
	}, nil
}

// GenerateAll synthesizes every field of an application.
func GenerateAll(app string, shrink int, seed int64) ([]*Field, error) {
	names := Fields(app)
	if names == nil {
		return nil, fmt.Errorf("datagen: unknown application %q", app)
	}
	fields := make([]*Field, 0, len(names))
	for _, n := range names {
		f, err := Generate(app, n, shrink, seed)
		if err != nil {
			return nil, err
		}
		fields = append(fields, f)
	}
	return fields, nil
}

func rtmSnapshotIndex(field string) (int, error) {
	s := strings.TrimPrefix(field, "snap-")
	idx, err := strconv.Atoi(s)
	if err != nil || idx < 0 || idx > 3600 {
		return 0, fmt.Errorf("datagen: RTM field must be snap-NNNN (0..3600), got %q", field)
	}
	return idx, nil
}

func fieldHash(s string) uint32 {
	h := fnv.New32a()
	_, _ = h.Write([]byte(s))
	return h.Sum32()
}

// synthesize builds the raw field then affinely maps it onto [min, max].
func synthesize(sp spec, dims []int, rng *rand.Rand) []float64 {
	n := 1
	for _, d := range dims {
		n *= d
	}
	data := make([]float64, n)
	switch sp.texture {
	case texGaussian:
		for i := range data {
			data[i] = rng.NormFloat64()
		}
	case texUniform:
		for i := range data {
			data[i] = rng.Float64()
		}
	case texWave:
		fillWave(data, dims, sp.param, rng)
	case texVortex:
		fillVortex(data, dims, sp.param, sp.alpha, rng)
	case texOrbital:
		fillOrbital(data, dims, rng)
	case texLognormal:
		fillSpectral(data, dims, sp.alpha, rng)
		s := sp.param
		if s <= 0 {
			s = 2
		}
		for i := range data {
			data[i] = math.Exp(data[i] * s)
		}
	case texLogSmooth:
		fillSpectral(data, dims, sp.alpha, rng)
		// log10 of a lognormal is just a gaussian-ish smooth field; keep the
		// spectral field but sharpen local contrast the way log-scaled
		// hydrometeor fields look.
		for i := range data {
			data[i] = data[i] + 0.4*math.Tanh(3*data[i])
		}
	default: // texSmooth / texClamped
		fillSpectral(data, dims, sp.alpha, rng)
	}
	if sp.noise > 0 {
		for i := range data {
			data[i] += sp.noise * rng.NormFloat64()
		}
	}
	if sp.texture == texClamped {
		for i := range data {
			if data[i] < 0 {
				data[i] = 0
			}
		}
	}
	mapToRange(data, sp.min, sp.max, sp.texture == texClamped)
	// Float32 storage granularity, as the originals are float32.
	for i := range data {
		data[i] = float64(float32(data[i]))
	}
	return data
}

// fillSpectral superposes random cosine modes with power-law amplitudes:
// amplitude(octave o) = 2^(−alpha·o), |k| ≈ 2^o.
func fillSpectral(data []float64, dims []int, alpha float64, rng *rand.Rand) {
	nd := len(dims)
	type mode struct {
		k     []float64
		phase float64
		amp   float64
	}
	const octaves = 5
	const perOctave = 5
	modes := make([]mode, 0, octaves*perOctave)
	for o := 0; o < octaves; o++ {
		base := math.Pow(2, float64(o))
		amp := math.Pow(2, -alpha*float64(o))
		for m := 0; m < perOctave; m++ {
			k := make([]float64, nd)
			for d := range k {
				k[d] = (rng.Float64()*1.2 + 0.4) * base * 2 * math.Pi
				if rng.Intn(2) == 0 {
					k[d] = -k[d]
				}
			}
			modes = append(modes, mode{k: k, phase: rng.Float64() * 2 * math.Pi, amp: amp})
		}
	}
	coords := make([]int, nd)
	inv := make([]float64, nd)
	for d, dim := range dims {
		inv[d] = 1 / float64(dim)
	}
	for i := range data {
		// Decode coordinates.
		rem := i
		for d := nd - 1; d >= 0; d-- {
			coords[d] = rem % dims[d]
			rem /= dims[d]
		}
		var v float64
		for _, m := range modes {
			arg := m.phase
			for d := 0; d < nd; d++ {
				arg += m.k[d] * float64(coords[d]) * inv[d]
			}
			v += m.amp * math.Cos(arg)
		}
		data[i] = v
	}
}

// fillWave synthesizes an RTM-style expanding wavefield: a source at the
// volume center radiates a band-limited pulse whose radius grows with the
// snapshot index; later snapshots add a reflected front.
func fillWave(data []float64, dims []int, snapshot float64, rng *rand.Rand) {
	nd := len(dims)
	maxDim := 0
	for _, d := range dims {
		if d > maxDim {
			maxDim = d
		}
	}
	// Wavefront radius in [0.05, 0.95] of the half-diagonal.
	t := snapshot / 3600
	front := 0.05 + 0.9*t
	lambda := 0.05 + 0.01*rng.Float64()
	sigma := 0.08
	phase := rng.Float64() * 2 * math.Pi
	coords := make([]int, nd)
	for i := range data {
		rem := i
		for d := nd - 1; d >= 0; d-- {
			coords[d] = rem % dims[d]
			rem /= dims[d]
		}
		var r2 float64
		for d := 0; d < nd; d++ {
			x := float64(coords[d])/float64(dims[d]) - 0.5
			r2 += x * x
		}
		r := math.Sqrt(r2) / 0.866 // normalize by half-diagonal of unit cube
		d1 := r - front
		v := math.Sin(2*math.Pi*d1/lambda+phase) * math.Exp(-d1*d1/(2*sigma*sigma))
		if t > 0.4 {
			// Reflected front travelling back.
			d2 := r - (1.1 - front)
			v += 0.6 * math.Sin(2*math.Pi*d2/lambda) * math.Exp(-d2*d2/(2*sigma*sigma))
		}
		data[i] = v
	}
}

// fillVortex synthesizes a hurricane-like rotating field component.
// sign selects U (+1) vs V (−1) style components; small sign values give
// vertical-velocity-like speckle.
func fillVortex(data []float64, dims []int, sign, alpha float64, rng *rand.Rand) {
	fillSpectral(data, dims, alpha, rng)
	nd := len(dims)
	cy := 0.45 + 0.1*rng.Float64()
	cx := 0.45 + 0.1*rng.Float64()
	coords := make([]int, nd)
	for i := range data {
		rem := i
		for d := nd - 1; d >= 0; d-- {
			coords[d] = rem % dims[d]
			rem /= dims[d]
		}
		// Use the last two axes as the horizontal plane.
		y := float64(coords[nd-2])/float64(dims[nd-2]) - cy
		x := float64(coords[nd-1])/float64(dims[nd-1]) - cx
		r := math.Hypot(x, y) + 1e-3
		tangential := r * math.Exp(-r*r/0.02) * 40
		var swirl float64
		if sign >= 0 {
			swirl = -y / r * tangential * math.Abs(sign)
		} else {
			swirl = x / r * tangential * math.Abs(sign)
		}
		data[i] = 0.35*data[i] + swirl
	}
}

// fillOrbital synthesizes QMCPACK einspline-like orbitals: products of
// oscillations across planes, smooth but highly oscillatory along one axis.
func fillOrbital(data []float64, dims []int, rng *rand.Rand) {
	nd := len(dims)
	coords := make([]int, nd)
	kz := float64(rng.Intn(6) + 3)
	ky := float64(rng.Intn(4) + 2)
	kx := float64(rng.Intn(4) + 2)
	phase := rng.Float64() * 2 * math.Pi
	for i := range data {
		rem := i
		for d := nd - 1; d >= 0; d-- {
			coords[d] = rem % dims[d]
			rem /= dims[d]
		}
		z := float64(coords[0]) / float64(dims[0])
		y := float64(coords[nd-2]) / float64(dims[nd-2])
		x := float64(coords[nd-1]) / float64(dims[nd-1])
		data[i] = math.Sin(2*math.Pi*kz*z+phase) *
			math.Cos(2*math.Pi*ky*y) * math.Cos(2*math.Pi*kx*x) *
			math.Exp(-((x-0.5)*(x-0.5)+(y-0.5)*(y-0.5))*2)
	}
}

// mapToRange affinely maps data onto [lo, hi]. When keepZeroFloor is set
// (clamped fields), zeros are preserved so plateaus stay exactly at the
// minimum, like cloud-fraction fields.
func mapToRange(data []float64, lo, hi float64, keepZeroFloor bool) {
	curMin, curMax := math.Inf(1), math.Inf(-1)
	for _, v := range data {
		if v < curMin {
			curMin = v
		}
		if v > curMax {
			curMax = v
		}
	}
	if curMax <= curMin {
		for i := range data {
			data[i] = lo
		}
		return
	}
	if keepZeroFloor && curMin >= 0 {
		// Scale only, so the zero plateau maps exactly to lo (= 0 usually).
		scale := (hi - lo) / curMax
		for i := range data {
			data[i] = lo + data[i]*scale
		}
		return
	}
	scale := (hi - lo) / (curMax - curMin)
	for i := range data {
		data[i] = lo + (data[i]-curMin)*scale
	}
}
