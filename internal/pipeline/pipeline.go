// Package pipeline is a generic bounded-stage streaming engine: stages are
// connected by buffered channels, each stage runs its own worker goroutines,
// and every stage records busy/wall timing so callers can quantify how much
// of the run overlapped. It is the seam the campaign path uses to hide
// compression cost inside WAN transfer time (the paper's end-to-end win),
// but it is deliberately domain-free: any produce → transform → consume
// chain can be expressed with Emit / Stage / Reduce / Collect on one Group.
//
// Usage shape:
//
//	g := pipeline.NewGroup(ctx)
//	src := pipeline.Emit(g, 4, items)
//	mid := pipeline.Stage(g, pipeline.Config{Name: "compress", Workers: 8}, src, fn)
//	out := pipeline.Stage(g, pipeline.Config{Name: "transfer", Workers: 4}, mid, send)
//	got := pipeline.Collect(g, out)
//	err := g.Wait()          // joins everything; first error wins
//	stats := g.Stats()       // per-stage timing, valid after Wait
//
// A failing stage cancels the group context; upstream feeders and
// downstream consumers unwind promptly because every send/receive selects
// on that context.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"ocelot/internal/executor"
	"ocelot/internal/obs"
)

// Config describes one stage.
type Config struct {
	// Name labels the stage in Stats.
	Name string
	// Workers is the stage's goroutine count (≤ 0 means 1).
	Workers int
	// Buffer is the stage's output channel capacity (≤ 0 means unbuffered).
	Buffer int
}

func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = 1
	}
	if c.Buffer < 0 {
		c.Buffer = 0
	}
	if c.Name == "" {
		c.Name = "stage"
	}
	return c
}

// StageStats is one stage's timing ledger.
type StageStats struct {
	// Name echoes Config.Name.
	Name string
	// Workers echoes the stage's parallelism.
	Workers int
	// Items is the number of items the stage processed.
	Items int
	// BusySec is the summed per-item processing time across all workers.
	BusySec float64
	// WallSec spans the first item's start to the last item's end. When
	// stages overlap, the sum of stage WallSecs exceeds the run's wall
	// time; the excess is the measured overlap.
	WallSec float64
	// FirstStart / LastEnd anchor the stage's active window.
	FirstStart time.Time
	LastEnd    time.Time
	// Bytes is the payload volume the caller attributes to the stage
	// (e.g. raw bytes for a compression stage, archive bytes for a
	// transfer stage); the engine itself is payload-agnostic and leaves it
	// zero until AttachThroughput fills it in.
	Bytes int64
	// MBps is Bytes/1e6 divided by WallSec — the stage's delivered
	// throughput over its active window. Per-worker efficiency is
	// Bytes/BusySec instead; the span-based rate is what tells you whether
	// a stage keeps pace with the link.
	MBps float64
}

// AttachThroughput attributes bytes to the named stage and derives its
// MBps from the stage's wall time. Callers that know what volume each
// stage moved (the campaign engine does; the generic engine does not) call
// this once per stage after Stats.
func AttachThroughput(stats []StageStats, name string, bytes int64) {
	for i := range stats {
		if stats[i].Name != name {
			continue
		}
		stats[i].Bytes = bytes
		if stats[i].WallSec > 0 {
			stats[i].MBps = float64(bytes) / 1e6 / stats[i].WallSec
		}
		return
	}
}

// Overlap computes how much stage activity ran concurrently: the sum of
// per-stage wall times minus the span from the earliest stage start to the
// latest stage end. Zero means strictly serial phases.
func Overlap(stats []StageStats) float64 {
	var sum float64
	var first, last time.Time
	for _, s := range stats {
		if s.Items == 0 {
			continue
		}
		sum += s.WallSec
		if first.IsZero() || s.FirstStart.Before(first) {
			first = s.FirstStart
		}
		if last.IsZero() || s.LastEnd.After(last) {
			last = s.LastEnd
		}
	}
	if first.IsZero() {
		return 0
	}
	span := last.Sub(first).Seconds()
	if sum <= span {
		return 0
	}
	return sum - span
}

type stageRec struct {
	mu    sync.Mutex
	stats StageStats
}

func (r *stageRec) record(t0, t1 time.Time) {
	r.add(t0, t1, 1)
}

// recordSpan charges time without counting an item (a packer's final
// flush is work, not an input).
func (r *stageRec) recordSpan(t0, t1 time.Time) {
	r.add(t0, t1, 0)
}

func (r *stageRec) add(t0, t1 time.Time, items int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stats.Items += items
	r.stats.BusySec += t1.Sub(t0).Seconds()
	if r.stats.FirstStart.IsZero() || t0.Before(r.stats.FirstStart) {
		r.stats.FirstStart = t0
	}
	if t1.After(r.stats.LastEnd) {
		r.stats.LastEnd = t1
	}
}

func (r *stageRec) snapshot() StageStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.stats
	if !s.FirstStart.IsZero() {
		s.WallSec = s.LastEnd.Sub(s.FirstStart).Seconds()
	}
	return s
}

// Group owns one pipeline run: a shared context, the stage goroutines, and
// the per-stage stats. Create with NewGroup, wire stages, then Wait.
type Group struct {
	ctx    context.Context
	cancel context.CancelFunc
	now    func() time.Time
	wg     sync.WaitGroup

	// tracer/span, captured from the creation context, receive one
	// "stage:<name>" envelope span per active stage when the run joins —
	// the timing ledger replayed into the trace after the fact.
	tracer *obs.Tracer
	span   *obs.Span
	traced sync.Once

	mu     sync.Mutex
	err    error
	stages []*stageRec
}

// NewGroup creates a pipeline group under ctx.
func NewGroup(ctx context.Context) *Group {
	return NewGroupWithClock(ctx, time.Now)
}

// NewGroupWithClock creates a group with an injected clock for stats
// (tests; nil means time.Now).
func NewGroupWithClock(ctx context.Context, now func() time.Time) *Group {
	if now == nil {
		now = time.Now
	}
	gctx, cancel := context.WithCancel(ctx)
	return &Group{ctx: gctx, cancel: cancel, now: now,
		tracer: obs.TracerFromContext(ctx), span: obs.SpanFromContext(ctx)}
}

// Context is the group's cancellation context; it is cancelled when any
// stage fails or the parent context ends.
func (g *Group) Context() context.Context { return g.ctx }

// fail records the first meaningful error and tears the pipeline down.
// Plain context.Canceled from the teardown itself never masks the root
// cause.
func (g *Group) fail(err error) {
	if err == nil {
		return
	}
	g.mu.Lock()
	if g.err == nil || (errors.Is(g.err, context.Canceled) && !errors.Is(err, context.Canceled)) {
		g.err = err
	}
	g.mu.Unlock()
	g.cancel()
}

// Wait joins every stage and returns the first error (nil on success).
func (g *Group) Wait() error {
	g.wg.Wait()
	g.cancel()
	g.traceStages()
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.err
}

// traceStages replays the per-stage timing ledger into the captured
// tracer as "stage:<name>" envelope spans, parented to the span the
// creation context carried. Runs once; no-op without an enabled tracer.
func (g *Group) traceStages() {
	g.traced.Do(func() {
		if !g.tracer.Enabled() {
			return
		}
		for _, s := range g.Stats() {
			if s.Items == 0 || s.FirstStart.IsZero() {
				continue
			}
			g.tracer.Record(g.span, "stage:"+s.Name, s.FirstStart, s.LastEnd,
				obs.Int("items", int64(s.Items)), obs.Int("workers", int64(s.Workers)))
		}
	})
}

// Stats returns per-stage timing in stage-creation order. Call after Wait;
// calling earlier yields a consistent snapshot of progress so far.
func (g *Group) Stats() []StageStats {
	g.mu.Lock()
	recs := make([]*stageRec, len(g.stages))
	copy(recs, g.stages)
	g.mu.Unlock()
	out := make([]StageStats, len(recs))
	for i, r := range recs {
		out[i] = r.snapshot()
	}
	return out
}

func (g *Group) newStage(cfg Config) *stageRec {
	rec := &stageRec{stats: StageStats{Name: cfg.Name, Workers: cfg.Workers}}
	g.mu.Lock()
	g.stages = append(g.stages, rec)
	g.mu.Unlock()
	return rec
}

// Emit feeds a slice into the pipeline as its source, honouring group
// cancellation.
func Emit[T any](g *Group, buffer int, items []T) <-chan T {
	if buffer < 0 {
		buffer = 0
	}
	out := make(chan T, buffer)
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		defer close(out)
		for _, v := range items {
			select {
			case <-g.ctx.Done():
				return
			case out <- v:
			}
		}
	}()
	return out
}

// Stage runs fn over items from in with cfg.Workers goroutines, streaming
// results onward as they complete (not in input order). The stage's output
// channel closes when the input is exhausted or the group aborts.
func Stage[I, O any](g *Group, cfg Config, in <-chan I, fn func(ctx context.Context, v I) (O, error)) <-chan O {
	cfg = cfg.withDefaults()
	rec := g.newStage(cfg)
	timed := func(ctx context.Context, v I) (O, error) {
		t0 := g.now()
		o, err := fn(ctx, v)
		rec.record(t0, g.now())
		if err != nil {
			// Record the failure before the stage's output channel can
			// close: downstream stages must see a cancelled group, not a
			// cleanly-exhausted input, or their flush would run on
			// partial state and mask the root cause.
			g.fail(fmt.Errorf("pipeline: stage %s: %w", cfg.Name, err))
		}
		return o, err
	}
	out, wait := executor.StreamMap(g.ctx, cfg.Workers, cfg.Buffer, in, timed)
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		if err := wait(); err != nil {
			g.fail(fmt.Errorf("pipeline: stage %s: %w", cfg.Name, err))
		}
	}()
	return out
}

// Reduce runs a single-worker stateful stage: fn may emit zero or more
// outputs per input (a packer emitting an archive only when a group
// fills), and flush runs once after the input is exhausted to drain any
// held state. Emit calls block on downstream backpressure, so held state
// stays bounded. Workers in cfg is forced to 1; Buffer applies to the
// output channel.
func Reduce[I, O any](g *Group, cfg Config, in <-chan I,
	fn func(ctx context.Context, v I, emit func(O) error) error,
	flush func(ctx context.Context, emit func(O) error) error) <-chan O {
	cfg = cfg.withDefaults()
	cfg.Workers = 1
	rec := g.newStage(cfg)
	out := make(chan O, cfg.Buffer)
	emit := func(o O) error {
		select {
		case <-g.ctx.Done():
			return g.ctx.Err()
		case out <- o:
			return nil
		}
	}
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		defer close(out)
		run := func(f func() error, countItem bool) bool {
			t0 := g.now()
			err := f()
			if countItem {
				rec.record(t0, g.now())
			} else {
				rec.recordSpan(t0, g.now())
			}
			if err != nil {
				g.fail(fmt.Errorf("pipeline: stage %s: %w", cfg.Name, err))
				return false
			}
			return true
		}
		for {
			select {
			case <-g.ctx.Done():
				return
			case v, ok := <-in:
				if !ok {
					// A failed upstream stage records its error before its
					// output closes, so a closed input with a live group
					// context really is clean exhaustion.
					if flush != nil && g.ctx.Err() == nil {
						run(func() error { return flush(g.ctx, emit) }, false)
					}
					return
				}
				if !run(func() error { return fn(g.ctx, v, emit) }, true) {
					return
				}
			}
		}
	}()
	return out
}

// Collect drains in into a slice. The returned pointer is safe to read
// only after Wait returns.
func Collect[T any](g *Group, in <-chan T) *[]T {
	out := new([]T)
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		for v := range in {
			*out = append(*out, v)
		}
	}()
	return out
}
