package pipeline

import (
	"context"
	"errors"
	"sort"
	"sync/atomic"
	"testing"
	"time"
)

func TestStageMapsAllItems(t *testing.T) {
	g := NewGroup(context.Background())
	in := Emit(g, 0, []int{1, 2, 3, 4, 5, 6, 7, 8})
	out := Stage(g, Config{Name: "double", Workers: 3, Buffer: 2}, in,
		func(ctx context.Context, v int) (int, error) { return v * 2, nil })
	got := Collect(g, out)
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 8 {
		t.Fatalf("got %d items, want 8", len(*got))
	}
	sort.Ints(*got)
	for i, v := range *got {
		if v != 2*(i+1) {
			t.Fatalf("item %d = %d", i, v)
		}
	}
}

func TestChainedStages(t *testing.T) {
	g := NewGroup(context.Background())
	n := 32
	items := make([]int, n)
	for i := range items {
		items[i] = i
	}
	a := Stage(g, Config{Name: "a", Workers: 4}, Emit(g, 4, items),
		func(ctx context.Context, v int) (int, error) { return v + 1, nil })
	b := Stage(g, Config{Name: "b", Workers: 2}, a,
		func(ctx context.Context, v int) (int, error) { return v * 10, nil })
	got := Collect(g, b)
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if len(*got) != n {
		t.Fatalf("got %d items, want %d", len(*got), n)
	}
	var sum int
	for _, v := range *got {
		sum += v
	}
	want := 10 * n * (n + 1) / 2
	if sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
}

func TestErrorCancelsPipeline(t *testing.T) {
	g := NewGroup(context.Background())
	boom := errors.New("boom")
	items := make([]int, 1000)
	for i := range items {
		items[i] = i
	}
	in := Emit(g, 0, items)
	out := Stage(g, Config{Name: "fail", Workers: 2}, in,
		func(ctx context.Context, v int) (int, error) {
			if v == 5 {
				return 0, boom
			}
			return v, nil
		})
	_ = Collect(g, out)
	err := g.Wait()
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}

func TestDownstreamErrorUnblocksUpstream(t *testing.T) {
	g := NewGroup(context.Background())
	boom := errors.New("sink failure")
	items := make([]int, 500)
	in := Emit(g, 0, items)
	mid := Stage(g, Config{Name: "pass", Workers: 1}, in,
		func(ctx context.Context, v int) (int, error) { return v, nil })
	out := Stage(g, Config{Name: "sink", Workers: 1}, mid,
		func(ctx context.Context, v int) (int, error) { return 0, boom })
	_ = Collect(g, out)
	done := make(chan error, 1)
	go func() { done <- g.Wait() }()
	select {
	case err := <-done:
		if !errors.Is(err, boom) {
			t.Fatalf("err = %v, want %v", err, boom)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pipeline deadlocked after downstream error")
	}
}

func TestParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := NewGroup(ctx)
	items := make([]int, 100)
	started := make(chan struct{}, 1)
	in := Emit(g, 0, items)
	out := Stage(g, Config{Name: "slow", Workers: 1}, in,
		func(ctx context.Context, v int) (int, error) {
			select {
			case started <- struct{}{}:
			default:
			}
			select {
			case <-ctx.Done():
				return 0, ctx.Err()
			case <-time.After(10 * time.Second):
				return v, nil
			}
		})
	_ = Collect(g, out)
	<-started
	cancel()
	if err := g.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestReducePacksAndFlushes(t *testing.T) {
	g := NewGroup(context.Background())
	items := make([]int, 10)
	for i := range items {
		items[i] = i
	}
	in := Emit(g, 0, items)
	var cur []int
	out := Reduce(g, Config{Name: "pack", Buffer: 1}, in,
		func(ctx context.Context, v int, emit func([]int) error) error {
			cur = append(cur, v)
			if len(cur) == 3 {
				grp := cur
				cur = nil
				return emit(grp)
			}
			return nil
		},
		func(ctx context.Context, emit func([]int) error) error {
			if len(cur) == 0 {
				return nil
			}
			grp := cur
			cur = nil
			return emit(grp)
		})
	got := Collect(g, out)
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 4 {
		t.Fatalf("groups = %d, want 4 (3+3+3+1)", len(*got))
	}
	var total int
	for _, grp := range *got {
		total += len(grp)
	}
	if total != 10 {
		t.Fatalf("total packed = %d, want 10", total)
	}
	if len((*got)[3]) != 1 {
		t.Fatalf("flush group size = %d, want 1", len((*got)[3]))
	}
}

func TestStatsAndOverlap(t *testing.T) {
	g := NewGroup(context.Background())
	items := make([]int, 8)
	in := Emit(g, 0, items)
	const delay = 10 * time.Millisecond
	a := Stage(g, Config{Name: "a", Workers: 1}, in,
		func(ctx context.Context, v int) (int, error) { time.Sleep(delay); return v, nil })
	b := Stage(g, Config{Name: "b", Workers: 1, Buffer: 2}, a,
		func(ctx context.Context, v int) (int, error) { time.Sleep(delay); return v, nil })
	_ = Collect(g, b)
	start := time.Now()
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	wall := time.Since(start).Seconds()
	stats := g.Stats()
	if len(stats) != 2 {
		t.Fatalf("stages = %d, want 2", len(stats))
	}
	for _, s := range stats {
		if s.Items != 8 {
			t.Errorf("stage %s items = %d, want 8", s.Name, s.Items)
		}
		if s.BusySec <= 0 || s.WallSec <= 0 {
			t.Errorf("stage %s has empty timing: %+v", s.Name, s)
		}
	}
	// Two 1-worker stages, 8 items, 10ms each: serial = 160ms, pipelined
	// wall ≈ 90ms. Even heavily loaded CI should see wall below the serial
	// sum of the two stages' busy time.
	serial := stats[0].BusySec + stats[1].BusySec
	if wall >= serial {
		t.Errorf("no overlap: wall %.3fs >= serial %.3fs", wall, serial)
	}
	if ov := Overlap(stats); ov <= 0 {
		t.Errorf("Overlap = %.3fs, want > 0", ov)
	}
}

func TestOverlapEmptyAndSerial(t *testing.T) {
	if Overlap(nil) != 0 {
		t.Fatal("Overlap(nil) != 0")
	}
	t0 := time.Unix(0, 0)
	serial := []StageStats{
		{Name: "a", Items: 1, WallSec: 1, FirstStart: t0, LastEnd: t0.Add(time.Second)},
		{Name: "b", Items: 1, WallSec: 1, FirstStart: t0.Add(time.Second), LastEnd: t0.Add(2 * time.Second)},
	}
	if ov := Overlap(serial); ov != 0 {
		t.Fatalf("serial overlap = %g, want 0", ov)
	}
	overlapped := []StageStats{
		{Name: "a", Items: 1, WallSec: 2, FirstStart: t0, LastEnd: t0.Add(2 * time.Second)},
		{Name: "b", Items: 1, WallSec: 2, FirstStart: t0.Add(time.Second), LastEnd: t0.Add(3 * time.Second)},
	}
	if ov := Overlap(overlapped); ov < 0.99 || ov > 1.01 {
		t.Fatalf("overlap = %g, want ≈1", ov)
	}
}

func TestEmitRespectsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := NewGroup(ctx)
	items := make([]int, 1<<20)
	_ = Emit(g, 0, items) // nobody reads; must unwind on cancel
	cancel()
	done := make(chan struct{})
	go func() { g.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Emit leaked after cancellation")
	}
}

func TestStageDefaultsAndCounts(t *testing.T) {
	g := NewGroup(context.Background())
	var calls atomic.Int64
	in := Emit(g, -1, []int{1, 2, 3})
	out := Stage(g, Config{}, in, func(ctx context.Context, v int) (int, error) {
		calls.Add(1)
		return v, nil
	})
	got := Collect(g, out)
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 3 || len(*got) != 3 {
		t.Fatalf("calls = %d, got = %d", calls.Load(), len(*got))
	}
	s := g.Stats()[0]
	if s.Name != "stage" || s.Workers != 1 {
		t.Fatalf("defaults not applied: %+v", s)
	}
}

// TestReduceSkipsFlushAfterUpstreamError: a failed upstream stage must not
// look like clean input exhaustion — the packer's flush would otherwise run
// on partial state and emit garbage downstream.
func TestReduceSkipsFlushAfterUpstreamError(t *testing.T) {
	g := NewGroup(context.Background())
	boom := errors.New("boom")
	items := make([]int, 50)
	in := Emit(g, 0, items)
	mid := Stage(g, Config{Name: "fail", Workers: 2}, in,
		func(ctx context.Context, v int) (int, error) { return 0, boom })
	var flushed atomic.Bool
	out := Reduce(g, Config{Name: "pack"}, mid,
		func(ctx context.Context, v int, emit func(int) error) error { return nil },
		func(ctx context.Context, emit func(int) error) error {
			flushed.Store(true)
			return emit(-1)
		})
	got := Collect(g, out)
	if err := g.Wait(); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v (root cause must not be masked)", err, boom)
	}
	if flushed.Load() {
		t.Error("flush ran after upstream failure")
	}
	if len(*got) != 0 {
		t.Errorf("reduce emitted %d items after upstream failure", len(*got))
	}
}
