// Package szx implements an SZx-style ultra-fast error-bounded lossy
// compressor (Yu et al., "SZx: an Ultra-fast Error-Bounded Lossy
// Compressor for Scientific Datasets"). Where the SZ3-style pipeline in
// internal/sz spends its time on prediction, Huffman coding, and a
// lossless backend to maximize ratio, szx makes one cheap pass over
// fixed-size blocks of the linearized field:
//
//   - constant blocks (value spread ≤ 2×eb) store a single midpoint;
//   - linear blocks (a first→last ramp predicts every value within eb)
//     store two coefficients;
//   - everything else packs per-value offsets from the block minimum,
//     quantized to the error bound, at the minimum bit width the block
//     needs — no entropy coding, no lossless stage;
//   - blocks with non-finite values or extreme dynamic range escape to
//     verbatim float64 storage, so the bound holds unconditionally.
//
// The result is GB/s-class throughput at a lower compression ratio — the
// other end of the speed/ratio spectrum the codec-aware planner trades
// across: szx wins end-to-end on fast links where compression time
// dominates, sz3 on slow links where every byte moved is expensive.
package szx

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"ocelot/internal/bitstream"
	"ocelot/internal/codec"
	"ocelot/internal/quant"
)

// Name is the codec's registry key.
const Name = "szx"

// Magic identifies an Ocelot-SZX stream ("OCSX", little-endian).
const Magic = 0x5853434F

// streamVersion is bumped on incompatible layout changes.
const streamVersion = 1

// DefaultBlockSize is the number of values per block. 256 keeps block
// headers under 5% of payload even at 1-bit packing while the per-block
// min/max scan stays in cache.
const DefaultBlockSize = 256

// MaxBlockSize bounds the per-block value count on both the compress and
// decompress paths. It caps the worst-case expansion of a decoded stream
// at MaxBlockSize/9 values per input byte, so a crafted header cannot
// turn a kilobyte of input into gigabytes of output.
const MaxBlockSize = 4096

// maxPackedBits caps the per-value bit width of a packed block; a block
// whose offset range needs more than this escapes to raw storage (packing
// 40-bit offsets already beats raw float64 by 37%, and wider offsets mean
// the bound is tiny relative to the block's spread — raw is the honest
// fallback there).
const maxPackedBits = 40

// Block tags, one byte ahead of every block payload.
const (
	tagConstant = 0x00 // one float64 midpoint reconstructs every value
	tagLinear   = 0x01 // float64 intercept + slope ramp
	tagPacked   = 0x02 // float64 base + bit width + packed offsets
	tagRaw      = 0x03 // verbatim float64 values (lossless escape)
)

// ErrCorrupt indicates a malformed szx stream.
var ErrCorrupt = errors.New("szx: corrupt stream")

// header layout: magic u32 | version u8 | blockSize u32 | absEB f64 |
// ndims u8 | dims u64 each.
const headerFixed = 4 + 1 + 4 + 8 + 1

// Compress encodes a row-major field (dims[0] slowest) under the absolute
// error bound absEB with the default block size.
func Compress(data []float64, dims []int, absEB float64) ([]byte, error) {
	return CompressBlocked(data, dims, absEB, DefaultBlockSize)
}

// CompressBlocked is Compress with an explicit block size (values per
// block; ≤ 0 selects DefaultBlockSize).
func CompressBlocked(data []float64, dims []int, absEB float64, blockSize int) ([]byte, error) {
	if absEB <= 0 || math.IsNaN(absEB) || math.IsInf(absEB, 0) {
		return nil, fmt.Errorf("szx: error bound must be positive and finite (got %g)", absEB)
	}
	if err := codec.ValidateDims(len(data), dims); err != nil {
		return nil, fmt.Errorf("szx: %w", err)
	}
	if len(data) == 0 {
		return nil, errors.New("szx: empty input")
	}
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	if blockSize > MaxBlockSize {
		blockSize = MaxBlockSize
	}

	out := make([]byte, 0, headerFixed+8*len(dims)+len(data)/2)
	out = marshalHeader(out, absEB, blockSize, dims)

	w := bitstream.NewWriter(blockSize * 2)
	var b8 [8]byte
	putF64 := func(v float64) {
		binary.LittleEndian.PutUint64(b8[:], math.Float64bits(v))
		out = append(out, b8[:]...)
	}
	ks := make([]uint64, blockSize)

	for start := 0; start < len(data); start += blockSize {
		end := start + blockSize
		if end > len(data) {
			end = len(data)
		}
		block := data[start:end]

		tag, mid, slope, nbits := classifyBlock(block, absEB, ks)
		out = append(out, tag)
		switch tag {
		case tagConstant:
			putF64(mid)
		case tagLinear:
			putF64(mid) // intercept
			putF64(slope)
		case tagPacked:
			putF64(mid) // base
			out = append(out, nbits)
			w.Reset()
			for _, k := range ks[:len(block)] {
				w.WriteBits(k, uint(nbits))
			}
			out = append(out, w.Bytes()...)
		case tagRaw:
			for _, v := range block {
				putF64(v)
			}
		}
	}
	return out, nil
}

// classifyBlock picks the cheapest representation that preserves the
// bound. For tagConstant mid is the stored midpoint; for tagLinear mid is
// the intercept and slope the per-index step; for tagPacked mid is the
// base, nbits the per-value width, and ks[:len(block)] the offsets.
func classifyBlock(block []float64, eb float64, ks []uint64) (tag byte, mid, slope float64, nbits byte) {
	lo, hi := block[0], block[0]
	finite := true
	for _, v := range block {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			finite = false
			break
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if !finite {
		return tagRaw, 0, 0, 0
	}

	// Constant: one midpoint covers the whole spread. The explicit
	// endpoint checks (not just hi−lo ≤ 2eb) keep the guarantee exact
	// under floating-point rounding of the midpoint.
	m := (lo + hi) / 2
	if math.Abs(m-lo) <= eb && math.Abs(m-hi) <= eb {
		return tagConstant, m, 0, 0
	}

	// Linear: first→last ramp. Decode replays the identical float64
	// arithmetic, so checking the encoder's prediction checks the bound.
	if n := len(block); n >= 2 {
		a := block[0]
		s := (block[n-1] - block[0]) / float64(n-1)
		ok := true
		for i, v := range block {
			if math.Abs(v-(a+s*float64(i))) > eb {
				ok = false
				break
			}
		}
		if ok {
			return tagLinear, a, s, 0
		}
	}

	// Packed: offsets from the block minimum in 2eb steps at the minimum
	// width the block's spread needs.
	step := 2 * eb
	var maxK uint64
	for i, v := range block {
		d := (v - lo) / step
		if d > float64(uint64(1)<<maxPackedBits) {
			return tagRaw, 0, 0, 0
		}
		k := uint64(d + 0.5)
		// Floating-point rounding can push the recovered value past the
		// bound; escape the whole block in that (rare) case.
		if math.Abs(lo+float64(k)*step-v) > eb {
			return tagRaw, 0, 0, 0
		}
		ks[i] = k
		if k > maxK {
			maxK = k
		}
	}
	nb := byte(1)
	for maxK>>nb != 0 {
		nb++
	}
	if nb > maxPackedBits {
		return tagRaw, 0, 0, 0
	}
	return tagPacked, lo, 0, nb
}

// Decompress decodes a stream produced by Compress, returning the
// reconstruction and its shape.
func Decompress(stream []byte) ([]float64, []int, error) {
	absEB, blockSize, dims, body, err := parseHeader(stream)
	if err != nil {
		return nil, nil, err
	}
	n := 1
	for _, d := range dims {
		n *= d
	}
	// Every block costs at least 9 body bytes (tag + one float64), so a
	// header claiming more points than the body can possibly carry is
	// corrupt — reject before reserving memory for it, and cap the
	// preallocation since the headers are attacker-controlled until the
	// body actually decodes.
	nBlocks := (n + blockSize - 1) / blockSize
	if len(body) < 9*nBlocks {
		return nil, nil, fmt.Errorf("szx: body %d bytes cannot hold %d blocks: %w", len(body), nBlocks, ErrCorrupt)
	}
	capHint := n
	if capHint > 1<<24 {
		capHint = 1 << 24
	}
	out := make([]float64, 0, capHint)
	step := 2 * absEB
	off := 0
	readF64 := func() (float64, bool) {
		if off+8 > len(body) {
			return 0, false
		}
		v := math.Float64frombits(binary.LittleEndian.Uint64(body[off : off+8]))
		off += 8
		return v, true
	}
	for len(out) < n {
		if off >= len(body) {
			return nil, nil, fmt.Errorf("szx: truncated body at %d of %d points: %w", len(out), n, ErrCorrupt)
		}
		bn := blockSize
		if rem := n - len(out); rem < bn {
			bn = rem
		}
		tag := body[off]
		off++
		switch tag {
		case tagConstant:
			v, ok := readF64()
			if !ok {
				return nil, nil, ErrCorrupt
			}
			for i := 0; i < bn; i++ {
				out = append(out, v)
			}
		case tagLinear:
			a, ok := readF64()
			s, ok2 := readF64()
			if !ok || !ok2 {
				return nil, nil, ErrCorrupt
			}
			for i := 0; i < bn; i++ {
				out = append(out, a+s*float64(i))
			}
		case tagPacked:
			base, ok := readF64()
			if !ok || off >= len(body) {
				return nil, nil, ErrCorrupt
			}
			nbits := body[off]
			off++
			if nbits == 0 || nbits > maxPackedBits {
				return nil, nil, fmt.Errorf("szx: packed width %d: %w", nbits, ErrCorrupt)
			}
			nbytes := (bn*int(nbits) + 7) / 8
			if off+nbytes > len(body) {
				return nil, nil, ErrCorrupt
			}
			r := bitstream.NewReader(body[off : off+nbytes])
			off += nbytes
			for i := 0; i < bn; i++ {
				k, err := r.ReadBits(uint(nbits))
				if err != nil {
					return nil, nil, fmt.Errorf("szx: %w", ErrCorrupt)
				}
				out = append(out, base+float64(k)*step)
			}
		case tagRaw:
			if off+8*bn > len(body) {
				return nil, nil, ErrCorrupt
			}
			for i := 0; i < bn; i++ {
				v, _ := readF64()
				out = append(out, v)
			}
		default:
			return nil, nil, fmt.Errorf("szx: unknown block tag %#x: %w", tag, ErrCorrupt)
		}
	}
	if off != len(body) {
		return nil, nil, fmt.Errorf("szx: %d trailing bytes: %w", len(body)-off, ErrCorrupt)
	}
	outDims := make([]int, len(dims))
	copy(outDims, dims)
	return out, outDims, nil
}

// StreamDims parses just the header and returns the field shape.
func StreamDims(stream []byte) ([]int, error) {
	_, _, dims, _, err := parseHeader(stream)
	return dims, err
}

func marshalHeader(out []byte, absEB float64, blockSize int, dims []int) []byte {
	var b4 [4]byte
	var b8 [8]byte
	binary.LittleEndian.PutUint32(b4[:], Magic)
	out = append(out, b4[:]...)
	out = append(out, streamVersion)
	binary.LittleEndian.PutUint32(b4[:], uint32(blockSize))
	out = append(out, b4[:]...)
	binary.LittleEndian.PutUint64(b8[:], math.Float64bits(absEB))
	out = append(out, b8[:]...)
	out = append(out, byte(len(dims)))
	for _, d := range dims {
		binary.LittleEndian.PutUint64(b8[:], uint64(d))
		out = append(out, b8[:]...)
	}
	return out
}

func parseHeader(stream []byte) (absEB float64, blockSize int, dims []int, body []byte, err error) {
	if len(stream) < headerFixed {
		return 0, 0, nil, nil, ErrCorrupt
	}
	if binary.LittleEndian.Uint32(stream[:4]) != Magic {
		return 0, 0, nil, nil, fmt.Errorf("szx: bad magic: %w", ErrCorrupt)
	}
	if stream[4] != streamVersion {
		return 0, 0, nil, nil, fmt.Errorf("szx: unsupported version %d: %w", stream[4], ErrCorrupt)
	}
	blockSize = int(binary.LittleEndian.Uint32(stream[5:9]))
	if blockSize <= 0 || blockSize > MaxBlockSize {
		return 0, 0, nil, nil, fmt.Errorf("szx: block size %d: %w", blockSize, ErrCorrupt)
	}
	absEB = math.Float64frombits(binary.LittleEndian.Uint64(stream[9:17]))
	if absEB <= 0 || math.IsNaN(absEB) || math.IsInf(absEB, 0) {
		return 0, 0, nil, nil, fmt.Errorf("szx: bad error bound: %w", ErrCorrupt)
	}
	nd := int(stream[17])
	if nd == 0 || nd > codec.MaxDims {
		return 0, 0, nil, nil, ErrCorrupt
	}
	need := headerFixed + 8*nd
	if len(stream) < need {
		return 0, 0, nil, nil, ErrCorrupt
	}
	dims = make([]int, nd)
	total := uint64(1)
	for i := 0; i < nd; i++ {
		d := binary.LittleEndian.Uint64(stream[headerFixed+8*i : headerFixed+8*i+8])
		if d == 0 || d > 1<<32 {
			return 0, 0, nil, nil, ErrCorrupt
		}
		// Check before multiplying: the product must stay ≤ 2^40 without
		// ever wrapping, or a crafted header reaches downstream
		// allocations with a negative point count.
		if total > (1<<40)/d {
			return 0, 0, nil, nil, ErrCorrupt
		}
		total *= d
		dims[i] = int(d)
	}
	return absEB, blockSize, dims, stream[need:], nil
}

// Probe runs the cheap sampling pass the quality predictor's
// compressor-based features need: every stride-th point is quantized
// against its block's first value — the base a packed block would offset
// from — on the shared quantizer alphabet (escape = 0, zero bin =
// radius). Constant-block-heavy fields therefore show a high p0 exactly
// as a real szx run would spend almost no bits on them.
func Probe(data []float64, dims []int, absEB float64, stride int) ([]int, error) {
	if absEB <= 0 || math.IsNaN(absEB) || math.IsInf(absEB, 0) {
		return nil, fmt.Errorf("szx: error bound must be positive and finite (got %g)", absEB)
	}
	if err := codec.ValidateDims(len(data), dims); err != nil {
		return nil, fmt.Errorf("szx: %w", err)
	}
	if stride < 1 {
		stride = 1
	}
	q := quant.New(absEB, 0)
	codes := make([]int, 0, len(data)/stride+1)
	for idx := 0; idx < len(data); idx += stride {
		base := data[idx-idx%DefaultBlockSize]
		code, _, ok := q.Quantize(data[idx], base)
		if !ok {
			code = quant.EscapeCode
		}
		codes = append(codes, code)
	}
	if len(codes) == 0 {
		return nil, errors.New("szx: sampling produced no points")
	}
	return codes, nil
}
