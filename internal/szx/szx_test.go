package szx

import (
	"math"
	"math/rand"
	"testing"

	"ocelot/internal/codec"
)

// maxAbsErr returns the L∞ distance between two equal-length slices.
func maxAbsErr(t *testing.T, a, b []float64) float64 {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("length mismatch: %d vs %d", len(a), len(b))
	}
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// genField synthesizes a smooth field with localized turbulence so all
// four block classes (constant, linear, packed, raw via spikes) appear.
func genField(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		x := float64(i) / float64(n)
		out[i] = 40*math.Sin(6*x) + 5*x + rng.NormFloat64()*0.3
	}
	// A constant plateau and a pure ramp, block-aligned.
	for i := 0; i < 256 && i < n; i++ {
		out[i] = 17.5
	}
	for i := 256; i < 512 && i < n; i++ {
		out[i] = 3 + 0.01*float64(i-256)
	}
	return out
}

func TestRoundTripBound(t *testing.T) {
	for _, tc := range []struct {
		name string
		dims []int
		eb   float64
	}{
		{"1d-tight", []int{4096}, 1e-4},
		{"1d-loose", []int{4096}, 1e-1},
		{"2d", []int{64, 67}, 1e-3},
		{"3d", []int{16, 17, 18}, 1e-2},
		{"short-tail", []int{1000}, 1e-3}, // last block shorter than BlockSize
		{"tiny", []int{3}, 1e-3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			n := 1
			for _, d := range tc.dims {
				n *= d
			}
			data := genField(n, 7)
			stream, err := Compress(data, tc.dims, tc.eb)
			if err != nil {
				t.Fatal(err)
			}
			recon, dims, err := Decompress(stream)
			if err != nil {
				t.Fatal(err)
			}
			if len(dims) != len(tc.dims) {
				t.Fatalf("dims = %v, want %v", dims, tc.dims)
			}
			for i, d := range dims {
				if d != tc.dims[i] {
					t.Fatalf("dims = %v, want %v", dims, tc.dims)
				}
			}
			if m := maxAbsErr(t, data, recon); m > tc.eb {
				t.Errorf("max error %g exceeds bound %g", m, tc.eb)
			}
		})
	}
}

func TestConstantFieldCompressesHard(t *testing.T) {
	data := make([]float64, 1<<14)
	for i := range data {
		data[i] = 42
	}
	stream, err := Compress(data, []int{len(data)}, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	// Constant blocks cost 9 bytes per 256 values; anything near raw size
	// means block classification broke.
	if len(stream) > len(data)/16 {
		t.Errorf("constant field compressed to %d bytes (raw %d)", len(stream), len(data)*8)
	}
	recon, _, err := Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	if m := maxAbsErr(t, data, recon); m > 1e-6 {
		t.Errorf("max error %g", m)
	}
}

func TestNonFiniteValuesEscapeLosslessly(t *testing.T) {
	data := genField(1024, 3)
	data[10] = math.NaN()
	data[500] = math.Inf(1)
	data[900] = math.Inf(-1)
	stream, err := Compress(data, []int{len(data)}, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	recon, _, err := Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(recon[10]) || !math.IsInf(recon[500], 1) || !math.IsInf(recon[900], -1) {
		t.Error("non-finite values not preserved")
	}
	for i, v := range data {
		if i == 10 {
			continue
		}
		if math.Abs(v-recon[i]) > 1e-3 {
			t.Fatalf("value %d: error %g", i, math.Abs(v-recon[i]))
		}
	}
}

func TestHugeDynamicRangeEscapes(t *testing.T) {
	// Offsets would need far more than maxPackedBits: blocks must fall
	// back to raw and stay lossless.
	data := make([]float64, 512)
	for i := range data {
		data[i] = float64(i) * 1e12
	}
	data[5] = 3e15
	stream, err := Compress(data, []int{len(data)}, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	recon, _, err := Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if data[i] != recon[i] {
			t.Fatalf("value %d not lossless: %g vs %g", i, data[i], recon[i])
		}
	}
}

func TestCompressRejectsBadInput(t *testing.T) {
	data := []float64{1, 2, 3}
	if _, err := Compress(data, []int{3}, 0); err == nil {
		t.Error("want error for zero bound")
	}
	if _, err := Compress(data, []int{3}, math.NaN()); err == nil {
		t.Error("want error for NaN bound")
	}
	if _, err := Compress(data, []int{4}, 1e-3); err == nil {
		t.Error("want error for dims mismatch")
	}
	if _, err := Compress(nil, nil, 1e-3); err == nil {
		t.Error("want error for empty input")
	}
}

func TestDecompressRejectsCorrupt(t *testing.T) {
	data := genField(1024, 9)
	stream, err := Compress(data, []int{1024}, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":        {},
		"short":        stream[:10],
		"bad-magic":    append([]byte{1, 2, 3, 4}, stream[4:]...),
		"truncated":    stream[:len(stream)-7],
		"trailing":     append(append([]byte(nil), stream...), 0xFF),
		"bad-version":  append([]byte{stream[0], stream[1], stream[2], stream[3], 99}, stream[5:]...),
		"zero-bound":   corruptBound(stream),
		"bad-blocksz":  corruptBlockSize(stream),
		"bad-tag":      corruptFirstTag(stream),
		"bad-ndims":    corruptNDims(stream),
		"body-missing": stream[:headerFixed+8],
	}
	for name, s := range cases {
		if _, _, err := Decompress(s); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func corruptBound(stream []byte) []byte {
	s := append([]byte(nil), stream...)
	for i := 9; i < 17; i++ {
		s[i] = 0
	}
	return s
}

func corruptBlockSize(stream []byte) []byte {
	s := append([]byte(nil), stream...)
	s[5], s[6], s[7], s[8] = 0, 0, 0, 0
	return s
}

func corruptFirstTag(stream []byte) []byte {
	s := append([]byte(nil), stream...)
	s[headerFixed+8] = 0x7F
	return s
}

func corruptNDims(stream []byte) []byte {
	s := append([]byte(nil), stream...)
	s[17] = 200
	return s
}

// TestDimsProductOverflowRejected: a crafted header whose per-axis dims
// pass the 2^32 cap but whose product wraps int64 must error, not reach
// an allocation with a negative point count (found by FuzzDecompress-
// style review; the check-before-multiply guard in parseHeader).
func TestDimsProductOverflowRejected(t *testing.T) {
	hdr := marshalHeader(nil, 1e-3, 256, []int{1 << 31, 1 << 32})
	stream := append(hdr, make([]byte, 64)...)
	if _, _, err := Decompress(stream); err == nil {
		t.Fatal("want error for wrapped dims product")
	}
	if _, err := StreamDims(stream); err == nil {
		t.Fatal("want error from StreamDims for wrapped dims product")
	}
}

func TestStreamDims(t *testing.T) {
	data := genField(60, 1)
	stream, err := Compress(data, []int{5, 12}, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	dims, err := StreamDims(stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(dims) != 2 || dims[0] != 5 || dims[1] != 12 {
		t.Errorf("dims = %v, want [5 12]", dims)
	}
}

func TestProbe(t *testing.T) {
	data := genField(4096, 5)
	codes, err := Probe(data, []int{4096}, 1e-2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if want := 4096/7 + 1; len(codes) != want {
		t.Errorf("got %d codes, want %d", len(codes), want)
	}
	for _, c := range codes {
		if c < 0 {
			t.Fatalf("negative code %d", c)
		}
	}
	if _, err := Probe(data, []int{4096}, 0, 1); err == nil {
		t.Error("want error for zero bound")
	}
}

func TestRegisteredInCodecRegistry(t *testing.T) {
	c, err := codec.Lookup(Name)
	if err != nil {
		t.Fatal(err)
	}
	if c.Magic() != Magic {
		t.Errorf("magic %#x, want %#x", c.Magic(), Magic)
	}
	if caps := c.Caps(); !caps.SpeedOptimized || caps.Predictors {
		t.Errorf("caps = %+v", caps)
	}
	data := genField(2048, 11)
	stream, err := c.Compress(data, []int{2048}, codec.Params{AbsErrorBound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	recon, dims, err := codec.Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	if dims[0] != 2048 {
		t.Errorf("dims = %v", dims)
	}
	if m := maxAbsErr(t, data, recon); m > 1e-3 {
		t.Errorf("max error %g", m)
	}
	if _, err := c.Compress(data, []int{2048}, codec.Params{}); err == nil {
		t.Error("want error for missing bound")
	}
}
