package szx

import "ocelot/internal/codec"

// szxCodec adapts the package functions to the codec.Codec interface.
type szxCodec struct{}

func (szxCodec) Name() string  { return Name }
func (szxCodec) Magic() uint32 { return Magic }

func (szxCodec) Compress(data []float64, dims []int, p codec.Params) ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return Compress(data, dims, p.AbsErrorBound)
}

func (szxCodec) Decompress(stream []byte) ([]float64, []int, error) {
	return Decompress(stream)
}

func (szxCodec) StreamDims(stream []byte) ([]int, error) {
	return StreamDims(stream)
}

func (szxCodec) Probe(data []float64, dims []int, p codec.Params, stride int) ([]int, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return Probe(data, dims, p.AbsErrorBound, stride)
}

func (szxCodec) Caps() codec.Caps {
	return codec.Caps{SpeedOptimized: true}
}

func init() {
	codec.Register(szxCodec{})
}
