package huffman

import (
	"runtime"
	"runtime/debug"
	"testing"
)

// TestEncodeWithFreqsReleasesTable is the regression test for the table
// leak ocelotvet's poolsafe analyzer found: EncodeWithFreqs built a table
// and returned Encode's result without ever calling Release, so the code
// window (~0.5–1 MiB for escape-heavy alphabets) was garbage on every
// call instead of cycling through tableCodesPool.
//
// The check drains the pool, runs one encode, and asserts a non-empty
// window came back. sync.Pool is only deterministic on a single pinned
// goroutine with the GC off, so the test locks the thread and disables
// collection for its duration.
func TestEncodeWithFreqsReleasesTable(t *testing.T) {
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	// Drain windows left behind by other tests until the pool hands out
	// fresh (zero-cap) entries.
	for {
		p := tableCodesPool.Get().(*[]Code)
		if cap(*p) == 0 {
			break
		}
	}

	data := make([]int, 4096)
	for i := range data {
		data[i] = i % 256
	}
	if _, err := EncodeWithFreqs(data, 256); err != nil {
		t.Fatal(err)
	}

	p := tableCodesPool.Get().(*[]Code)
	if cap(*p) == 0 {
		t.Fatal("EncodeWithFreqs did not return its table's code window to the pool; the window leaks on every call")
	}
}
