package huffman

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestRoundTripSimple(t *testing.T) {
	data := []int{0, 1, 2, 1, 0, 0, 0, 3, 2, 1, 0}
	enc, err := EncodeWithFreqs(data, 4)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dec, data) {
		t.Fatalf("got %v want %v", dec, data)
	}
}

func TestSingleSymbolAlphabet(t *testing.T) {
	data := []int{5, 5, 5, 5, 5}
	enc, err := EncodeWithFreqs(data, 8)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dec, data) {
		t.Fatalf("got %v want %v", dec, data)
	}
}

func TestEmptyData(t *testing.T) {
	enc, err := EncodeWithFreqs(nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 0 {
		t.Fatalf("want empty, got %v", dec)
	}
}

func TestPrefixFree(t *testing.T) {
	freqs := []uint64{100, 50, 25, 12, 6, 3, 2, 1}
	tbl, err := BuildTable(freqs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(freqs); i++ {
		ci := tbl.CodeFor(i)
		for j := 0; j < len(freqs); j++ {
			if i == j {
				continue
			}
			cj := tbl.CodeFor(j)
			if ci.Len == 0 || cj.Len == 0 {
				continue
			}
			// ci must not be a prefix of cj.
			if ci.Len <= cj.Len {
				prefix := cj.Bits >> (cj.Len - ci.Len)
				if prefix == ci.Bits {
					t.Fatalf("code %d (%b/%d) is prefix of %d (%b/%d)",
						i, ci.Bits, ci.Len, j, cj.Bits, cj.Len)
				}
			}
		}
	}
}

func TestOptimality(t *testing.T) {
	// More frequent symbols must not have longer codes.
	freqs := []uint64{1000, 500, 100, 10, 1}
	tbl, err := BuildTable(freqs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(freqs); i++ {
		if tbl.CodeFor(i-1).Len > tbl.CodeFor(i).Len {
			t.Fatalf("symbol %d (freq %d) has longer code than symbol %d (freq %d)",
				i-1, freqs[i-1], i, freqs[i])
		}
	}
}

func TestSkewedDistribution(t *testing.T) {
	// A heavily zero-dominated stream, like quantization codes at large eb.
	rng := rand.New(rand.NewSource(7))
	data := make([]int, 50000)
	for i := range data {
		if rng.Float64() < 0.95 {
			data[i] = 512 // the "zero" bin in SZ convention
		} else {
			data[i] = 512 + rng.Intn(21) - 10
		}
	}
	enc, err := EncodeWithFreqs(data, 1024)
	if err != nil {
		t.Fatal(err)
	}
	// Should compress far below 2 bytes/symbol.
	if len(enc) > len(data) {
		t.Fatalf("no compression: %d bytes for %d symbols", len(enc), len(data))
	}
	dec, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dec, data) {
		t.Fatal("round trip mismatch")
	}
}

func TestLargeAlphabet(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	data := make([]int, 20000)
	for i := range data {
		data[i] = rng.Intn(65536)
	}
	enc, err := EncodeWithFreqs(data, 65536)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dec, data) {
		t.Fatal("round trip mismatch")
	}
}

func TestDecodeCorruptInputs(t *testing.T) {
	cases := [][]byte{
		nil,
		{0x01},
		{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF},
		make([]byte, 12),
	}
	for i, c := range cases {
		if _, err := Decode(c); err == nil {
			t.Fatalf("case %d: want error for corrupt input", i)
		}
	}
}

func TestEncodeSymbolOutOfRange(t *testing.T) {
	if _, err := EncodeWithFreqs([]int{0, 1, 9}, 4); err == nil {
		t.Fatal("want error for out-of-alphabet symbol")
	}
	if _, err := EncodeWithFreqs([]int{-1}, 4); err == nil {
		t.Fatal("want error for negative symbol")
	}
}

func TestEncodedBits(t *testing.T) {
	data := []int{0, 0, 0, 1, 1, 2}
	freqs := []uint64{3, 2, 1}
	tbl, err := BuildTable(freqs)
	if err != nil {
		t.Fatal(err)
	}
	bits, err := tbl.EncodedBits(data)
	if err != nil {
		t.Fatal(err)
	}
	want := 3*int(tbl.CodeFor(0).Len) + 2*int(tbl.CodeFor(1).Len) + int(tbl.CodeFor(2).Len)
	if bits != want {
		t.Fatalf("EncodedBits = %d want %d", bits, want)
	}
}

// TestRoundTripQuick: random streams over random alphabets round-trip.
func TestRoundTripQuick(t *testing.T) {
	f := func(seed int64, n uint16, alpha uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		alphabet := int(alpha)%200 + 2
		count := int(n) % 2000
		data := make([]int, count)
		for i := range data {
			// Geometric-ish distribution to exercise variable lengths.
			v := int(rng.ExpFloat64() * float64(alphabet) / 8)
			if v >= alphabet {
				v = alphabet - 1
			}
			data[i] = v
		}
		enc, err := EncodeWithFreqs(data, alphabet)
		if err != nil {
			return false
		}
		dec, err := Decode(enc)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(dec, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncode(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	data := make([]int, 1<<16)
	for i := range data {
		data[i] = 512 + int(rng.NormFloat64()*4)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeWithFreqs(data, 1024); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	data := make([]int, 1<<16)
	for i := range data {
		data[i] = 512 + int(rng.NormFloat64()*4)
	}
	enc, err := EncodeWithFreqs(data, 1024)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}
