// Package huffman implements a canonical Huffman coder for the quantization
// codes produced by the SZ-style compressors. The encoder builds an optimal
// prefix code from symbol frequencies, converts it to canonical form (so only
// code lengths need to be serialized), and packs codes MSB-first via
// package bitstream.
//
// The decoder reconstructs the canonical table from the serialized lengths
// and decodes with a simple length-bucketed lookup, which is fast enough for
// the symbol alphabets used here (quantization bins, typically ≤ 2^16
// distinct symbols).
package huffman

import (
	"container/heap"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"ocelot/internal/bitstream"
)

// Maximum supported code length. Canonical Huffman codes for realistic
// quantization-bin distributions stay well under this.
const maxCodeLen = 58

var (
	// ErrCorrupt indicates the encoded stream or table is malformed.
	ErrCorrupt = errors.New("huffman: corrupt stream")
	// ErrTooManySymbols indicates the alphabet exceeds the supported size.
	ErrTooManySymbols = errors.New("huffman: too many symbols")
)

// Code describes the canonical code assigned to one symbol.
type Code struct {
	Bits uint64 // code bits, right-aligned
	Len  uint8  // code length in bits; 0 = symbol unused
}

// Table is a canonical Huffman code table mapping symbol -> code.
type Table struct {
	codes   []Code
	symbols int
}

type hNode struct {
	freq        uint64
	symbol      int // -1 for internal
	left, right *hNode
	order       int // tie-break for determinism
}

type hHeap []*hNode

func (h hHeap) Len() int { return len(h) }
func (h hHeap) Less(i, j int) bool {
	if h[i].freq != h[j].freq {
		return h[i].freq < h[j].freq
	}
	return h[i].order < h[j].order
}
func (h hHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *hHeap) Push(x interface{}) { *h = append(*h, x.(*hNode)) }
func (h *hHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// BuildTable constructs a canonical Huffman table from symbol frequencies.
// freqs[i] is the occurrence count of symbol i; zero-frequency symbols get
// no code. At least one symbol must have nonzero frequency.
func BuildTable(freqs []uint64) (*Table, error) {
	if len(freqs) == 0 {
		return nil, errors.New("huffman: empty alphabet")
	}
	if len(freqs) > 1<<24 {
		return nil, ErrTooManySymbols
	}
	var nodes []*hNode
	for sym, f := range freqs {
		if f > 0 {
			nodes = append(nodes, &hNode{freq: f, symbol: sym, order: sym})
		}
	}
	if len(nodes) == 0 {
		return nil, errors.New("huffman: no symbols with nonzero frequency")
	}
	lengths := make([]uint8, len(freqs))
	if len(nodes) == 1 {
		// Degenerate alphabet: assign a 1-bit code.
		lengths[nodes[0].symbol] = 1
	} else {
		h := hHeap(nodes)
		heap.Init(&h)
		order := len(freqs)
		for h.Len() > 1 {
			a := heap.Pop(&h).(*hNode)
			b := heap.Pop(&h).(*hNode)
			order++
			heap.Push(&h, &hNode{
				freq: a.freq + b.freq, symbol: -1, left: a, right: b, order: order,
			})
		}
		root := h[0]
		if err := assignLengths(root, 0, lengths); err != nil {
			// Pathologically skewed distributions can exceed the supported
			// depth; fall back to near-uniform codes (depth ≤ log2 alphabet).
			flat := make([]uint64, len(freqs))
			for sym, f := range freqs {
				if f > 0 {
					flat[sym] = 1
				}
			}
			return BuildTable(flat)
		}
	}
	return tableFromLengths(lengths)
}

func assignLengths(n *hNode, depth uint8, lengths []uint8) error {
	if n.symbol >= 0 {
		if depth == 0 {
			depth = 1
		}
		if depth > maxCodeLen {
			return fmt.Errorf("huffman: code length %d exceeds max %d", depth, maxCodeLen)
		}
		lengths[n.symbol] = depth
		return nil
	}
	if err := assignLengths(n.left, depth+1, lengths); err != nil {
		return err
	}
	return assignLengths(n.right, depth+1, lengths)
}

// tableFromLengths assigns canonical codes: symbols sorted by (length, value).
func tableFromLengths(lengths []uint8) (*Table, error) {
	type symLen struct {
		sym int
		ln  uint8
	}
	var used []symLen
	for sym, ln := range lengths {
		if ln > 0 {
			if ln > maxCodeLen {
				return nil, ErrCorrupt
			}
			used = append(used, symLen{sym, ln})
		}
	}
	if len(used) == 0 {
		return nil, ErrCorrupt
	}
	sort.Slice(used, func(i, j int) bool {
		if used[i].ln != used[j].ln {
			return used[i].ln < used[j].ln
		}
		return used[i].sym < used[j].sym
	})
	codes := make([]Code, len(lengths))
	var code uint64
	prevLen := used[0].ln
	for _, sl := range used {
		code <<= sl.ln - prevLen
		// Validate the code fits in its length (overflow means invalid lengths).
		if sl.ln < 64 && code >= 1<<sl.ln {
			return nil, ErrCorrupt
		}
		codes[sl.sym] = Code{Bits: code, Len: sl.ln}
		code++
		prevLen = sl.ln
	}
	return &Table{codes: codes, symbols: len(used)}, nil
}

// NumSymbols reports the number of symbols with assigned codes.
func (t *Table) NumSymbols() int { return t.symbols }

// CodeFor returns the code for symbol sym, or Len==0 if unused.
func (t *Table) CodeFor(sym int) Code {
	if sym < 0 || sym >= len(t.codes) {
		return Code{}
	}
	return t.codes[sym]
}

// AlphabetSize reports the size of the alphabet (max symbol + 1).
func (t *Table) AlphabetSize() int { return len(t.codes) }

// EncodedBits returns the total bits required to encode data with this table,
// or an error if data contains a symbol without a code.
func (t *Table) EncodedBits(data []int) (int, error) {
	total := 0
	for _, sym := range data {
		if sym < 0 || sym >= len(t.codes) || t.codes[sym].Len == 0 {
			return 0, fmt.Errorf("huffman: symbol %d has no code", sym)
		}
		total += int(t.codes[sym].Len)
	}
	return total, nil
}

// Encode compresses data (symbol stream) using table t and returns the
// serialized stream: [table][count][payload bits].
func Encode(data []int, t *Table) ([]byte, error) {
	header := t.serialize()
	w := bitstream.NewWriter(len(data)/2 + 16)
	for _, sym := range data {
		if sym < 0 || sym >= len(t.codes) {
			return nil, fmt.Errorf("huffman: symbol %d out of alphabet", sym)
		}
		c := t.codes[sym]
		if c.Len == 0 {
			return nil, fmt.Errorf("huffman: symbol %d has no code", sym)
		}
		w.WriteBits(c.Bits, uint(c.Len))
	}
	payload := w.Bytes()
	out := make([]byte, 0, len(header)+8+len(payload))
	out = append(out, header...)
	var cnt [8]byte
	binary.LittleEndian.PutUint64(cnt[:], uint64(len(data)))
	out = append(out, cnt[:]...)
	out = append(out, payload...)
	return out, nil
}

// EncodeWithFreqs builds a table from the data's own frequencies and encodes.
func EncodeWithFreqs(data []int, alphabetSize int) ([]byte, error) {
	if alphabetSize <= 0 {
		return nil, errors.New("huffman: alphabet size must be positive")
	}
	freqs := make([]uint64, alphabetSize)
	for _, sym := range data {
		if sym < 0 || sym >= alphabetSize {
			return nil, fmt.Errorf("huffman: symbol %d out of alphabet %d", sym, alphabetSize)
		}
		freqs[sym]++
	}
	if len(data) == 0 {
		// Emit an empty stream with a minimal one-symbol table.
		freqs[0] = 1
	}
	t, err := BuildTable(freqs)
	if err != nil {
		return nil, err
	}
	return Encode(data, t)
}

// Decode decompresses a stream produced by Encode/EncodeWithFreqs.
func Decode(stream []byte) ([]int, error) {
	t, rest, err := deserializeTable(stream)
	if err != nil {
		return nil, err
	}
	if len(rest) < 8 {
		return nil, ErrCorrupt
	}
	count := binary.LittleEndian.Uint64(rest[:8])
	if count > 1<<40 {
		return nil, ErrCorrupt
	}
	payload := rest[8:]
	// Every symbol consumes at least one payload bit, so a count beyond
	// the payload's bit length is a lie — reject it before allocating
	// count ints (a crafted 16-byte stream must not demand terabytes).
	if count > uint64(len(payload))*8 {
		return nil, ErrCorrupt
	}
	dec, err := newDecoder(t)
	if err != nil {
		return nil, err
	}
	r := bitstream.NewReader(payload)
	out := make([]int, count)
	for i := range out {
		sym, err := dec.decodeOne(r)
		if err != nil {
			return nil, err
		}
		out[i] = sym
	}
	return out, nil
}

// serialize emits the canonical table as:
// [u32 alphabetSize][u32 usedCount] then usedCount × ([u32 symbol][u8 len]).
func (t *Table) serialize() []byte {
	var out []byte
	var b4 [4]byte
	binary.LittleEndian.PutUint32(b4[:], uint32(len(t.codes)))
	out = append(out, b4[:]...)
	binary.LittleEndian.PutUint32(b4[:], uint32(t.symbols))
	out = append(out, b4[:]...)
	for sym, c := range t.codes {
		if c.Len == 0 {
			continue
		}
		binary.LittleEndian.PutUint32(b4[:], uint32(sym))
		out = append(out, b4[:]...)
		out = append(out, c.Len)
	}
	return out
}

func deserializeTable(stream []byte) (*Table, []byte, error) {
	if len(stream) < 8 {
		return nil, nil, ErrCorrupt
	}
	alphabet := int(binary.LittleEndian.Uint32(stream[:4]))
	used := int(binary.LittleEndian.Uint32(stream[4:8]))
	if alphabet <= 0 || alphabet > 1<<24 || used <= 0 || used > alphabet {
		return nil, nil, ErrCorrupt
	}
	need := 8 + used*5
	if len(stream) < need {
		return nil, nil, ErrCorrupt
	}
	lengths := make([]uint8, alphabet)
	off := 8
	for i := 0; i < used; i++ {
		sym := int(binary.LittleEndian.Uint32(stream[off : off+4]))
		ln := stream[off+4]
		off += 5
		if sym < 0 || sym >= alphabet || ln == 0 || ln > maxCodeLen {
			return nil, nil, ErrCorrupt
		}
		lengths[sym] = ln
	}
	t, err := tableFromLengths(lengths)
	if err != nil {
		return nil, nil, err
	}
	return t, stream[need:], nil
}

// decoder performs canonical decoding by length buckets: for each code
// length L it records the first code value and the index of the first
// symbol with that length in the sorted symbol list.
type decoder struct {
	firstCode  [maxCodeLen + 2]uint64
	firstIndex [maxCodeLen + 2]int
	count      [maxCodeLen + 2]int
	symbols    []int // sorted by (len, symbol)
	minLen     uint8
	maxLen     uint8
}

func newDecoder(t *Table) (*decoder, error) {
	type symLen struct {
		sym int
		ln  uint8
	}
	var used []symLen
	for sym, c := range t.codes {
		if c.Len > 0 {
			used = append(used, symLen{sym, c.Len})
		}
	}
	if len(used) == 0 {
		return nil, ErrCorrupt
	}
	sort.Slice(used, func(i, j int) bool {
		if used[i].ln != used[j].ln {
			return used[i].ln < used[j].ln
		}
		return used[i].sym < used[j].sym
	})
	d := &decoder{
		symbols: make([]int, len(used)),
		minLen:  used[0].ln,
		maxLen:  used[len(used)-1].ln,
	}
	for i, sl := range used {
		d.symbols[i] = sl.sym
		d.count[sl.ln]++
	}
	var code uint64
	idx := 0
	for ln := d.minLen; ln <= d.maxLen; ln++ {
		d.firstCode[ln] = code
		d.firstIndex[ln] = idx
		code = (code + uint64(d.count[ln])) << 1
		idx += d.count[ln]
	}
	return d, nil
}

func (d *decoder) decodeOne(r *bitstream.Reader) (int, error) {
	var code uint64
	var ln uint8
	for ln < d.minLen {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		code = code<<1 | uint64(b)
		ln++
	}
	for {
		if d.count[ln] > 0 {
			offset := code - d.firstCode[ln]
			if code >= d.firstCode[ln] && offset < uint64(d.count[ln]) {
				return d.symbols[d.firstIndex[ln]+int(offset)], nil
			}
		}
		if ln >= d.maxLen {
			return 0, ErrCorrupt
		}
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		code = code<<1 | uint64(b)
		ln++
	}
}
