// Package huffman implements a canonical Huffman coder for the quantization
// codes produced by the SZ-style compressors. The encoder builds an optimal
// prefix code from symbol frequencies, converts it to canonical form (so only
// code lengths need to be serialized), and packs codes MSB-first via
// package bitstream.
//
// The decoder is table-driven: a 12-bit first-level lookup resolves nearly
// every realistic code with one peek, and longer codes fall back to a
// canonical length-bucket walk (see decoder.go). The hot-path APIs —
// EncodeTo and DecodeInto — operate on the compact SymbolStream
// representation and write into caller-provided buffers sized exactly via
// EncodedBits, so steady-state coding performs no per-symbol allocations.
// The pre-table bit-by-bit decoder survives as ReferenceDecode (see
// reference.go), pinned as the byte-compatibility oracle and benchmark
// baseline.
package huffman

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"

	"ocelot/internal/bitstream"
)

// Maximum supported code length. Canonical Huffman codes for realistic
// quantization-bin distributions stay well under this.
const maxCodeLen = 58

var (
	// ErrCorrupt indicates the encoded stream or table is malformed.
	ErrCorrupt = errors.New("huffman: corrupt stream")
	// ErrTooManySymbols indicates the alphabet exceeds the supported size.
	ErrTooManySymbols = errors.New("huffman: too many symbols")
)

// Code describes the canonical code assigned to one symbol.
type Code struct {
	Bits uint64 // code bits, right-aligned
	Len  uint8  // code length in bits; 0 = symbol unused
}

// Table is a canonical Huffman code table mapping symbol -> code.
//
// Codes are stored densely over the window [base, base+len(codes)) — the
// span from the smallest to the largest coded symbol. Quantization-bin
// alphabets are huge (2×radius, 65536 by default) but the occupied bins
// cluster tightly around the zero bin, so windowing shrinks the per-table
// allocation and the serialize walk from alphabet-sized to used-span-sized
// without changing the serialized bytes (which record the full alphabet).
type Table struct {
	codes    []Code // indexed by sym - base
	base     int    // smallest coded symbol
	alphabet int    // full alphabet size (max symbol + 1)
	symbols  int    // number of coded symbols
}

// leafSort sorts table-build leaves by (freq, symbol) without the closure
// allocation sort.Slice pays.
type leafSort struct {
	freqs []uint64
	syms  []int32
}

func (s *leafSort) Len() int { return len(s.syms) }
func (s *leafSort) Less(i, j int) bool {
	if s.freqs[i] != s.freqs[j] {
		return s.freqs[i] < s.freqs[j]
	}
	return s.syms[i] < s.syms[j]
}
func (s *leafSort) Swap(i, j int) {
	s.freqs[i], s.freqs[j] = s.freqs[j], s.freqs[i]
	s.syms[i], s.syms[j] = s.syms[j], s.syms[i]
}

// buildScratch pools the table-construction working set: leaf arrays, the
// merge tree, and the window-length buffer. BuildTable runs once per
// compressed field, and without pooling its transient arrays dominated the
// compressor's allocation profile.
type buildScratch struct {
	sorter  leafSort
	restF   []uint64 // stable-partition spill for freq ≥ 2 leaves
	restS   []int32
	freqw   []uint64 // node frequencies: leaves then internals
	parent  []int32
	depth   []uint8
	lengths []uint8
}

var buildScratchPool = sync.Pool{New: func() interface{} { return &buildScratch{} }}

// BuildTable constructs a canonical Huffman table from symbol frequencies.
// freqs[i] is the occurrence count of symbol i; zero-frequency symbols get
// no code. At least one symbol must have nonzero frequency.
//
// The optimal code lengths come from the sorted two-queue merge rather
// than a pointer-node heap: leaves sorted by (freq, symbol) are merged
// against a FIFO of internal nodes whose frequencies are non-decreasing by
// construction, with ties preferring leaves. That ordering reproduces the
// reference heap's (freq, order) tie-break exactly — leaves carry their
// symbol as order, internal nodes are created in increasing order — so the
// assigned lengths, and therefore every emitted stream byte, are identical
// to ReferenceBuildTable's (pinned by TestBuildTableMatchesReference and
// the frozen golden streams).
func BuildTable(freqs []uint64) (*Table, error) {
	if len(freqs) == 0 {
		return nil, errors.New("huffman: empty alphabet")
	}
	if len(freqs) > 1<<24 {
		return nil, ErrTooManySymbols
	}
	sc := buildScratchPool.Get().(*buildScratch)
	defer buildScratchPool.Put(sc)
	lfreq := sc.sorter.freqs[:0]
	lsym := sc.sorter.syms[:0]
	for sym, f := range freqs {
		if f > 0 {
			lfreq = append(lfreq, f)
			lsym = append(lsym, int32(sym))
		}
	}
	sc.sorter.freqs, sc.sorter.syms = lfreq, lsym
	k := len(lsym)
	if k == 0 {
		return nil, errors.New("huffman: no symbols with nonzero frequency")
	}
	base := int(lsym[0])
	window := int(lsym[k-1]) - base + 1
	if cap(sc.lengths) < window {
		sc.lengths = make([]uint8, window)
	}
	lengths := sc.lengths[:window]
	for i := range lengths {
		lengths[i] = 0
	}
	if k == 1 {
		// Degenerate alphabet: assign a 1-bit code.
		lengths[0] = 1
		return tableFromLengthsWindow(lengths, base, len(freqs), true)
	}
	// Sort leaves by (freq, symbol). Noisy fields put most of their mass
	// in a long tail of frequency-1 bins; those are already in the
	// required relative order (equal freq, symbols ascending from the
	// collection pass) and sort before every freq ≥ 2 leaf, so a stable
	// partition moves them to the front untouched and the comparison sort
	// only pays for the minority.
	restF := sc.restF[:0]
	restS := sc.restS[:0]
	ones := 0
	for i := 0; i < k; i++ {
		if lfreq[i] == 1 {
			lfreq[ones] = lfreq[i]
			lsym[ones] = lsym[i]
			ones++
		} else {
			restF = append(restF, lfreq[i])
			restS = append(restS, lsym[i])
		}
	}
	sc.restF, sc.restS = restF, restS
	copy(lfreq[ones:], restF)
	copy(lsym[ones:], restS)
	sort.Sort(&leafSort{lfreq[ones:], lsym[ones:]})

	// Two-queue merge over flat arrays: nodes 0..k-1 are the sorted
	// leaves, k..2k-2 the internals in creation order.
	n := 2*k - 1
	if cap(sc.freqw) < n {
		sc.freqw = make([]uint64, n)
		sc.parent = make([]int32, n)
		sc.depth = make([]uint8, n)
	}
	freqw := sc.freqw[:n]
	parent := sc.parent[:n]
	depth := sc.depth[:n]
	copy(freqw, lfreq)
	li, ii := 0, k
	for next := k; next < n; next++ {
		for c := 0; c < 2; c++ {
			var pick int
			if li < k && (ii >= next || freqw[li] <= freqw[ii]) {
				pick = li
				li++
			} else {
				pick = ii
				ii++
			}
			if c == 0 {
				freqw[next] = freqw[pick]
			} else {
				freqw[next] += freqw[pick]
			}
			parent[pick] = int32(next)
		}
	}

	// Depths top-down: parents are always created (and indexed) after
	// their children, so one descending pass resolves every node. Depths
	// cannot overflow uint8: depth d requires total frequency ≥ Fib(d+1),
	// and Fib(93) already exceeds 2^64.
	depth[n-1] = 0
	overflow := false
	for v := n - 2; v >= 0; v-- {
		d := depth[parent[v]] + 1
		depth[v] = d
		if v < k && d > maxCodeLen {
			overflow = true
		}
	}
	if overflow {
		// Pathologically skewed distributions can exceed the supported
		// depth; fall back to near-uniform codes (depth ≤ log2 alphabet).
		flat := make([]uint64, len(freqs))
		for sym, f := range freqs {
			if f > 0 {
				flat[sym] = 1
			}
		}
		return BuildTable(flat)
	}
	for i := 0; i < k; i++ {
		lengths[lsym[i]-int32(base)] = depth[i]
	}
	return tableFromLengthsWindow(lengths, base, len(freqs), true)
}

// symLen pairs a symbol with its code length for canonical ordering.
type symLen struct {
	sym int32
	ln  uint8
}

// canonicalOrder returns the symbols with nonzero code length sorted by
// (length, symbol) — the canonical assignment order — appended to dst. It
// is the single ordering authority shared by table construction
// (tableFromLengths) and decoder construction (decoder.init), replacing
// the two sort.Slice passes that previously re-derived the same order. A
// counting sort by length keeps it O(n + maxLen) and deterministic.
func canonicalOrder(lengths []uint8, dst []symLen) ([]symLen, error) {
	var count [maxCodeLen + 1]int32
	used := 0
	for _, ln := range lengths {
		if ln == 0 {
			continue
		}
		if ln > maxCodeLen {
			return nil, ErrCorrupt
		}
		count[ln]++
		used++
	}
	if used == 0 {
		return nil, ErrCorrupt
	}
	var start [maxCodeLen + 1]int32
	var s int32
	for ln := 1; ln <= maxCodeLen; ln++ {
		start[ln] = s
		s += count[ln]
	}
	if cap(dst) < used {
		dst = make([]symLen, used)
	}
	dst = dst[:used]
	for sym, ln := range lengths {
		if ln == 0 {
			continue
		}
		dst[start[ln]] = symLen{int32(sym), ln}
		start[ln]++
	}
	return dst, nil
}

// tableCodesPool recycles code windows between released tables. The
// escape bin sits at symbol 0, so any field with literals stretches the
// window across half the alphabet (~0.5–1 MiB of Code entries) — garbage
// the compressor would otherwise produce once per field.
var tableCodesPool = sync.Pool{New: func() interface{} { return new([]Code) }}

// Release returns the table's code window to the internal pool. Optional:
// callers on the compression hot path (which build one table per field)
// release; everyone else lets the GC take it. The table must not be used
// after Release.
func (t *Table) Release() {
	c := t.codes
	if c == nil {
		return
	}
	t.codes = nil
	tableCodesPool.Put(&c)
}

// pooledCodes returns a zeroed length-n code window, reusing pool capacity.
func pooledCodes(n int) []Code {
	p := tableCodesPool.Get().(*[]Code)
	s := *p
	if cap(s) < n {
		//ocelotvet:ok poolsafe undersized entry is deliberately dropped so the pool converges on full-alphabet windows
		return make([]Code, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = Code{}
	}
	//ocelotvet:ok poolsafe the window transfers into the Table; Table.Release puts it back
	return s
}

// tableFromLengths assigns canonical codes: symbols sorted by (length, value).
func tableFromLengths(lengths []uint8) (*Table, error) {
	return tableFromLengthsWindow(lengths, 0, len(lengths), false)
}

// tableFromLengthsWindow builds a table whose lengths slice covers the
// symbol window [base, base+len(lengths)) of an alphabet-sized alphabet.
// pooled selects the recycled code window (hot path); the reference
// builders pass false so the pre-overhaul allocation profile stays honest.
func tableFromLengthsWindow(lengths []uint8, base, alphabet int, pooled bool) (*Table, error) {
	used, err := canonicalOrder(lengths, nil)
	if err != nil {
		return nil, err
	}
	var codes []Code
	if pooled {
		codes = pooledCodes(len(lengths))
	} else {
		codes = make([]Code, len(lengths))
	}
	var code uint64
	prevLen := used[0].ln
	for _, sl := range used {
		code <<= sl.ln - prevLen
		// Validate the code fits in its length (overflow means invalid lengths).
		if sl.ln < 64 && code >= 1<<sl.ln {
			return nil, ErrCorrupt
		}
		codes[sl.sym] = Code{Bits: code, Len: sl.ln}
		code++
		prevLen = sl.ln
	}
	return &Table{codes: codes, base: base, alphabet: alphabet, symbols: len(used)}, nil
}

// NumSymbols reports the number of symbols with assigned codes.
func (t *Table) NumSymbols() int { return t.symbols }

// CodeFor returns the code for symbol sym, or Len==0 if unused.
func (t *Table) CodeFor(sym int) Code {
	sym -= t.base
	if sym < 0 || sym >= len(t.codes) {
		return Code{}
	}
	return t.codes[sym]
}

// AlphabetSize reports the size of the alphabet (max symbol + 1).
func (t *Table) AlphabetSize() int { return t.alphabet }

// EncodedBits returns the total bits required to encode data with this table,
// or an error if data contains a symbol without a code.
func (t *Table) EncodedBits(data []int) (int, error) {
	total := 0
	for _, sym := range data {
		w := sym - t.base
		if w < 0 || w >= len(t.codes) || t.codes[w].Len == 0 {
			return 0, fmt.Errorf("huffman: symbol %d has no code", sym)
		}
		total += int(t.codes[w].Len)
	}
	return total, nil
}

// EncodedBitsStream is EncodedBits over the compact representation. It also
// validates the stream: every symbol must have a code, and the number of
// WideEscape markers must match the Wide lane exactly.
func (t *Table) EncodedBitsStream(s *SymbolStream) (int, error) {
	total := 0
	wi := 0
	for _, p := range s.Packed {
		sym := int(p)
		if p == WideEscape {
			if wi >= len(s.Wide) {
				return 0, fmt.Errorf("huffman: %d escape markers for %d wide symbols", wi+1, len(s.Wide))
			}
			sym = int(s.Wide[wi])
			wi++
		}
		w := sym - t.base
		if w < 0 || w >= len(t.codes) || t.codes[w].Len == 0 {
			return 0, fmt.Errorf("huffman: symbol %d has no code", sym)
		}
		total += int(t.codes[w].Len)
	}
	if wi != len(s.Wide) {
		return 0, fmt.Errorf("huffman: %d escape markers for %d wide symbols", wi, len(s.Wide))
	}
	return total, nil
}

// encodedSize returns the exact byte size of the serialized stream for a
// payload of payloadBits bits: table header + symbol count + payload.
func (t *Table) encodedSize(payloadBits int) int {
	return t.serializedSize() + 8 + (payloadBits+7)/8
}

// Encode compresses data (symbol stream) using table t and returns the
// serialized stream: [table][count][payload bits]. The output is sized
// exactly from EncodedBits — no regrows on dense streams.
func Encode(data []int, t *Table) ([]byte, error) {
	bits, err := t.EncodedBits(data)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, t.encodedSize(bits))
	out = t.serializeTo(out)
	var cnt [8]byte
	binary.LittleEndian.PutUint64(cnt[:], uint64(len(data)))
	out = append(out, cnt[:]...)
	w := bitstream.NewWriterBuf(out)
	for _, sym := range data {
		// EncodedBits validated every symbol above.
		c := t.codes[sym-t.base]
		w.WriteBits(c.Bits, uint(c.Len))
	}
	return w.Bytes(), nil
}

// EncodeTo compresses the symbol stream s with table t and appends the
// serialized stream to dst, growing it at most once (the exact output size
// is known up front from EncodedBitsStream). The emitted bytes are
// identical to Encode's for the same symbols. It is the hot encode path:
// callers reuse dst across fields so steady-state encoding allocates
// nothing.
func EncodeTo(dst []byte, s *SymbolStream, t *Table) ([]byte, error) {
	bits, err := t.EncodedBitsStream(s)
	if err != nil {
		return nil, err
	}
	need := len(dst) + t.encodedSize(bits)
	if cap(dst) < need {
		grown := make([]byte, len(dst), need)
		copy(grown, dst)
		dst = grown
	}
	out := t.serializeTo(dst)
	var cnt [8]byte
	binary.LittleEndian.PutUint64(cnt[:], uint64(s.Len()))
	out = append(out, cnt[:]...)
	w := bitstream.NewWriterBuf(out)
	wi := 0
	base := int32(t.base)
	for _, p := range s.Packed {
		sym := int32(p)
		if p == WideEscape {
			sym = s.Wide[wi]
			wi++
		}
		c := t.codes[sym-base]
		w.WriteBits(c.Bits, uint(c.Len))
	}
	return w.Bytes(), nil
}

// EncodeToSized is EncodeTo for callers that already know the payload bit
// count — the SZ pipeline derives it from the same frequency table the
// Huffman table was built from, so re-walking the symbol stream to count
// bits would be pure waste. payloadBits must equal what EncodedBitsStream
// would return; symbols without a code and wide-lane inconsistencies are
// still detected in the write loop.
func EncodeToSized(dst []byte, s *SymbolStream, t *Table, payloadBits int) ([]byte, error) {
	need := len(dst) + t.encodedSize(payloadBits)
	if cap(dst) < need {
		grown := make([]byte, len(dst), need)
		copy(grown, dst)
		dst = grown
	}
	out := t.serializeTo(dst)
	var cnt [8]byte
	binary.LittleEndian.PutUint64(cnt[:], uint64(s.Len()))
	out = append(out, cnt[:]...)
	// The pack loop keeps the bit-writer state in locals (left-aligned
	// accumulator flushed eight bytes at a time), emitting exactly the
	// MSB-first packing bitstream.Writer produces — pinned byte-identical
	// to the Writer paths by the encode-equivalence tests.
	var acc uint64
	var nbit uint
	var word [8]byte
	wi := 0
	base := int32(t.base)
	codes := t.codes
	for _, p := range s.Packed {
		sym := int32(p)
		if p == WideEscape {
			if wi >= len(s.Wide) {
				return nil, fmt.Errorf("huffman: %d escape markers for %d wide symbols", wi+1, len(s.Wide))
			}
			sym = s.Wide[wi]
			wi++
		}
		sw := sym - base
		if sw < 0 || int(sw) >= len(codes) || codes[sw].Len == 0 {
			return nil, fmt.Errorf("huffman: symbol %d has no code", sym)
		}
		c := codes[sw]
		width := uint(c.Len)
		if free := 64 - nbit; width <= free {
			acc = acc<<width | c.Bits
			nbit += width
			if nbit == 64 {
				binary.BigEndian.PutUint64(word[:], acc)
				out = append(out, word[:]...)
				acc, nbit = 0, 0
			}
			continue
		}
		take := 64 - nbit
		acc = acc<<take | c.Bits>>(width-take)
		binary.BigEndian.PutUint64(word[:], acc)
		out = append(out, word[:]...)
		rem := width - take
		acc = c.Bits & (1<<rem - 1)
		nbit = rem
	}
	// Flush the partial word, padding the final byte with zero bits.
	if nbit > 0 {
		if pad := (8 - nbit%8) % 8; pad > 0 {
			acc <<= pad
			nbit += pad
		}
		for nbit > 0 {
			out = append(out, byte(acc>>(nbit-8)))
			nbit -= 8
		}
	}
	return out, nil
}

// EncodeWithFreqs builds a table from the data's own frequencies and encodes.
func EncodeWithFreqs(data []int, alphabetSize int) ([]byte, error) {
	if alphabetSize <= 0 {
		return nil, errors.New("huffman: alphabet size must be positive")
	}
	freqs := make([]uint64, alphabetSize)
	for _, sym := range data {
		if sym < 0 || sym >= alphabetSize {
			return nil, fmt.Errorf("huffman: symbol %d out of alphabet %d", sym, alphabetSize)
		}
		freqs[sym]++
	}
	if len(data) == 0 {
		// Emit an empty stream with a minimal one-symbol table.
		freqs[0] = 1
	}
	t, err := BuildTable(freqs)
	if err != nil {
		return nil, err
	}
	// Encode copies everything it needs into the output stream, so the
	// table's pooled code window can go straight back.
	defer t.Release()
	return Encode(data, t)
}

// serializedSize is the exact byte length serialize emits.
func (t *Table) serializedSize() int {
	return 8 + t.symbols*5
}

// serializeTo appends the canonical table to dst as:
// [u32 alphabetSize][u32 usedCount] then usedCount × ([u32 symbol][u8 len]).
func (t *Table) serializeTo(dst []byte) []byte {
	var b4 [4]byte
	binary.LittleEndian.PutUint32(b4[:], uint32(t.alphabet))
	dst = append(dst, b4[:]...)
	binary.LittleEndian.PutUint32(b4[:], uint32(t.symbols))
	dst = append(dst, b4[:]...)
	for w, c := range t.codes {
		if c.Len == 0 {
			continue
		}
		binary.LittleEndian.PutUint32(b4[:], uint32(w+t.base))
		dst = append(dst, b4[:]...)
		dst = append(dst, c.Len)
	}
	return dst
}

// serialize emits the canonical table, preallocated to its exact size.
func (t *Table) serialize() []byte {
	return t.serializeTo(make([]byte, 0, t.serializedSize()))
}

func deserializeTable(stream []byte) (*Table, []byte, error) {
	lengths, rest, err := parseTableLengths(stream, nil)
	if err != nil {
		return nil, nil, err
	}
	t, err := tableFromLengths(lengths)
	if err != nil {
		return nil, nil, err
	}
	return t, rest, nil
}
