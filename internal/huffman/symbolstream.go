package huffman

// WideEscape is the in-memory marker a SymbolStream stores in its packed
// lane for symbols that do not fit in 15.99 bits: any symbol ≥ WideEscape
// is represented as the marker plus an entry in the Wide side array. The
// escape is purely an in-memory representation — encoded streams carry the
// real symbol and are byte-identical to the []int API's output.
const WideEscape = 0xFFFF

// SymbolStream is the compact in-memory representation of a symbol
// sequence: two bytes per symbol instead of the eight an []int costs,
// which halves-to-quarters the memory traffic of the entropy stage for
// the quantization-code alphabets the SZ pipeline produces (≤ 2^16 bins
// in every default configuration).
//
// Symbols ≥ WideEscape — possible only with an oversized quantizer radius
// or an exotic alphabet — take the escape-extension path: the packed lane
// holds WideEscape and the actual symbol is appended to Wide, in stream
// order. Readers that walk Packed sequentially resolve escapes by
// consuming Wide with a second cursor.
type SymbolStream struct {
	// Packed holds one entry per symbol; WideEscape entries defer to Wide.
	Packed []uint16
	// Wide holds the symbols ≥ WideEscape, in the order they appear.
	Wide []int32
}

// Append adds one symbol. sym must be in [0, 1<<24).
func (s *SymbolStream) Append(sym int) {
	if sym >= WideEscape {
		s.Packed = append(s.Packed, WideEscape)
		s.Wide = append(s.Wide, int32(sym))
		return
	}
	s.Packed = append(s.Packed, uint16(sym))
}

// Len reports the number of symbols in the stream.
func (s *SymbolStream) Len() int { return len(s.Packed) }

// Reset empties the stream, retaining both lanes' capacity for reuse.
func (s *SymbolStream) Reset() {
	s.Packed = s.Packed[:0]
	s.Wide = s.Wide[:0]
}

// Ints expands the stream to the []int representation (primarily for
// tests and the compatibility APIs).
func (s *SymbolStream) Ints() []int {
	out := make([]int, len(s.Packed))
	wi := 0
	for i, p := range s.Packed {
		if p == WideEscape && wi < len(s.Wide) {
			out[i] = int(s.Wide[wi])
			wi++
			continue
		}
		out[i] = int(p)
	}
	return out
}

// AppendInts appends every symbol of data to the stream.
func (s *SymbolStream) AppendInts(data []int) {
	for _, v := range data {
		s.Append(v)
	}
}
