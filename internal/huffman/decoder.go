package huffman

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// primaryBits is the width of the first-level decode table. Every code of
// length ≤ primaryBits resolves with a single Peek + table load; canonical
// Huffman codes for realistic quantization-bin distributions are almost
// entirely ≤ 12 bits, so the overflow path is cold.
const primaryBits = 12

// decoder is the two-level table-driven canonical Huffman decoder.
//
// The primary table maps every primaryBits-wide window of upcoming stream
// bits to a packed (symbol, length) entry: a code of length L ≤ primaryBits
// owns all 2^(primaryBits−L) slots sharing its prefix, so one Peek resolves
// the symbol and tells the reader exactly how many bits to Skip. Entries
// are sym<<8 | len (symbols < 2^24, lengths ≤ 58), and 0 marks a window
// whose prefix belongs to a longer code — those fall back to the canonical
// length-bucket walk seeded with the primaryBits already read.
//
// decoders are pooled: the 16 KiB primary table and the scratch arrays are
// reused across Decode calls, so steady-state decompression does not
// allocate per-call decode tables.
type decoder struct {
	primary    []uint32
	symbols    []int32 // canonical (length, symbol) order
	order      []symLen
	lengths    []uint8 // table-deserialization scratch, alphabet-sized
	firstCode  [maxCodeLen + 2]uint64
	firstIndex [maxCodeLen + 2]int32
	count      [maxCodeLen + 2]int32
	minLen     uint8
	maxLen     uint8
}

var decoderPool = sync.Pool{New: func() interface{} {
	return &decoder{primary: make([]uint32, 1<<primaryBits)}
}}

// init builds the decode tables from per-symbol code lengths. It performs
// the same canonical assignment as tableFromLengths and rejects the same
// malformed inputs (oversubscribed lengths whose canonical codes overflow
// their bit width), so every table the bucket decoder accepted or refused
// gets the identical verdict here.
func (d *decoder) init(lengths []uint8) error {
	order, err := canonicalOrder(lengths, d.order[:0])
	if err != nil {
		return err
	}
	d.order = order
	d.minLen = order[0].ln
	d.maxLen = order[len(order)-1].ln
	for i := range d.count {
		d.count[i] = 0
	}
	for i := range d.primary {
		d.primary[i] = 0
	}
	if cap(d.symbols) < len(order) {
		d.symbols = make([]int32, len(order))
	}
	d.symbols = d.symbols[:len(order)]

	// Canonical walk: assign each code, validate it fits its length, and
	// fill the primary-table slots owned by short codes.
	var code uint64
	prevLen := order[0].ln
	for i, sl := range order {
		code <<= sl.ln - prevLen
		if sl.ln < 64 && code >= 1<<sl.ln {
			return ErrCorrupt
		}
		d.symbols[i] = sl.sym
		d.count[sl.ln]++
		if sl.ln <= primaryBits {
			shift := primaryBits - uint(sl.ln)
			base := uint32(code) << shift
			entry := uint32(sl.sym)<<8 | uint32(sl.ln)
			for j := uint32(0); j < 1<<shift; j++ {
				d.primary[base+j] = entry
			}
		}
		code++
		prevLen = sl.ln
	}

	// Length-bucket index for the overflow path (codes > primaryBits).
	code = 0
	var idx int32
	for ln := d.minLen; ln <= d.maxLen; ln++ {
		d.firstCode[ln] = code
		d.firstIndex[ln] = idx
		code = (code + uint64(d.count[ln])) << 1
		idx += d.count[ln]
	}
	return nil
}

// parseTableLengths deserializes the canonical-table header into a dense
// per-symbol length array (reusing scratch when it is large enough) and
// returns the remaining stream. Validation matches deserializeTable.
func parseTableLengths(stream []byte, scratch []uint8) (lengths []uint8, rest []byte, err error) {
	if len(stream) < 8 {
		return nil, nil, ErrCorrupt
	}
	alphabet := int(binary.LittleEndian.Uint32(stream[:4]))
	used := int(binary.LittleEndian.Uint32(stream[4:8]))
	if alphabet <= 0 || alphabet > 1<<24 || used <= 0 || used > alphabet {
		return nil, nil, ErrCorrupt
	}
	need := 8 + used*5
	if len(stream) < need {
		return nil, nil, ErrCorrupt
	}
	if cap(scratch) >= alphabet {
		lengths = scratch[:alphabet]
		for i := range lengths {
			lengths[i] = 0
		}
	} else {
		lengths = make([]uint8, alphabet)
	}
	off := 8
	for i := 0; i < used; i++ {
		sym := int(binary.LittleEndian.Uint32(stream[off : off+4]))
		ln := stream[off+4]
		off += 5
		if sym < 0 || sym >= alphabet || ln == 0 || ln > maxCodeLen {
			return nil, nil, ErrCorrupt
		}
		lengths[sym] = ln
	}
	return lengths, stream[need:], nil
}

// DecodeInto decompresses a stream produced by Encode/EncodeTo into s,
// reusing both lanes' capacity. It is the hot decode path: a pooled
// two-level table decoder, a word-at-a-time bit reader, and no per-symbol
// allocations. Corrupt tables, truncated payloads, and symbol-count lies
// all return errors wrapping ErrCorrupt.
func DecodeInto(s *SymbolStream, stream []byte) error {
	d := decoderPool.Get().(*decoder)
	defer decoderPool.Put(d)

	lengths, rest, err := parseTableLengths(stream, d.lengths)
	if err != nil {
		return err
	}
	d.lengths = lengths
	if err := d.init(lengths); err != nil {
		return err
	}
	if len(rest) < 8 {
		return ErrCorrupt
	}
	count := binary.LittleEndian.Uint64(rest[:8])
	if count > 1<<40 {
		return ErrCorrupt
	}
	payload := rest[8:]
	// Every symbol consumes at least one payload bit, so a count beyond
	// the payload's bit length is a lie — reject it before allocating
	// count entries (a crafted 16-byte stream must not demand terabytes).
	if count > uint64(len(payload))*8 {
		return ErrCorrupt
	}
	n := int(count)
	if cap(s.Packed) < n {
		s.Packed = make([]uint16, n)
	}
	packed := s.Packed[:n]
	wide := s.Wide[:0]

	// The symbol loop keeps the bit-reader state (left-aligned 64-bit
	// accumulator, valid-bit count, source position) in locals: one table
	// load plus a shift pair per short code, with the accumulator refilled
	// eight bytes at a time. Bits below nacc are always zero, so peeking
	// past the end of the payload zero-pads exactly like bitstream.Reader.
	var acc uint64
	var nacc uint
	pos := 0
	primary := d.primary
	for i := 0; i < n; i++ {
		if nacc <= 56 {
			if pos+8 <= len(payload) && nacc == 0 {
				acc = binary.BigEndian.Uint64(payload[pos:])
				nacc = 64
				pos += 8
			} else {
				for nacc <= 56 && pos < len(payload) {
					acc |= uint64(payload[pos]) << (56 - nacc)
					nacc += 8
					pos++
				}
			}
		}
		var sym int32
		if e := primary[acc>>(64-primaryBits)]; e != 0 {
			ln := uint(e & 0xff)
			if ln > nacc {
				return fmt.Errorf("huffman: truncated payload: %w", ErrCorrupt)
			}
			acc <<= ln
			nacc -= ln
			sym = int32(e >> 8)
		} else {
			// Overflow path: no code of length ≤ primaryBits matches.
			// Consume the primary window and extend bit by bit through the
			// canonical length buckets, exactly like the pre-table decoder.
			if nacc < primaryBits {
				// Source exhausted mid-window: any real code this short
				// would have hit the primary table.
				return fmt.Errorf("huffman: truncated payload: %w", ErrCorrupt)
			}
			code := acc >> (64 - primaryBits)
			acc <<= primaryBits
			nacc -= primaryBits
			ln := uint8(primaryBits)
			for {
				if ln >= d.maxLen {
					return ErrCorrupt
				}
				if nacc == 0 {
					for nacc <= 56 && pos < len(payload) {
						acc |= uint64(payload[pos]) << (56 - nacc)
						nacc += 8
						pos++
					}
					if nacc == 0 {
						return fmt.Errorf("huffman: truncated payload: %w", ErrCorrupt)
					}
				}
				code = code<<1 | acc>>63
				acc <<= 1
				nacc--
				ln++
				if d.count[ln] > 0 && code >= d.firstCode[ln] {
					if off := code - d.firstCode[ln]; off < uint64(d.count[ln]) {
						sym = d.symbols[d.firstIndex[ln]+int32(off)]
						break
					}
				}
			}
		}
		if sym >= WideEscape {
			packed[i] = WideEscape
			wide = append(wide, sym)
		} else {
			packed[i] = uint16(sym)
		}
	}
	s.Packed = packed
	s.Wide = wide
	return nil
}

// Decode decompresses a stream produced by Encode/EncodeWithFreqs into the
// []int representation. It runs on the same table-driven hot path as
// DecodeInto; callers that decode repeatedly should prefer DecodeInto with
// a reused SymbolStream to avoid the expansion allocation.
func Decode(stream []byte) ([]int, error) {
	var s SymbolStream
	if err := DecodeInto(&s, stream); err != nil {
		return nil, err
	}
	return s.Ints(), nil
}
