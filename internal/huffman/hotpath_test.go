package huffman

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// geometricData builds a skewed symbol stream whose Huffman code lengths
// span a wide range — including codes longer than primaryBits when depth
// is large — so both decoder levels are exercised.
func geometricData(rng *rand.Rand, n, alphabet int) []int {
	data := make([]int, n)
	for i := range data {
		v := int(rng.ExpFloat64() * float64(alphabet) / 16)
		if v >= alphabet {
			v = alphabet - 1
		}
		data[i] = v
	}
	return data
}

// fibFreqs builds Fibonacci-like frequencies: the canonical code lengths
// grow linearly with the alphabet, so a 20-symbol alphabet yields codes
// near 19 bits — deep into the overflow table.
func fibFreqs(n int) []uint64 {
	freqs := make([]uint64, n)
	a, b := uint64(1), uint64(1)
	for i := range freqs {
		freqs[i] = a
		a, b = b, a+b
	}
	return freqs
}

// TestDecodeMatchesReference: the table-driven decoder and the pre-table
// bucket decoder must agree bit-for-bit on valid streams of every shape.
func TestDecodeMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	cases := []struct {
		name string
		data []int
		alph int
	}{
		{"dense-small", geometricData(rng, 5000, 64), 64},
		{"sparse-large", geometricData(rng, 5000, 60000), 60000},
		{"single", []int{3, 3, 3, 3}, 8},
		{"empty", nil, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			enc, err := EncodeWithFreqs(tc.data, tc.alph)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := ReferenceDecode(enc)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Decode(enc)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, ref) {
				t.Fatal("table-driven decode differs from reference")
			}
		})
	}
}

// TestDecodeLongCodes forces codes beyond primaryBits (the overflow path)
// and checks both decoders agree.
func TestDecodeLongCodes(t *testing.T) {
	freqs := fibFreqs(24) // max code length ~23 bits > primaryBits
	tbl, err := BuildTable(freqs)
	if err != nil {
		t.Fatal(err)
	}
	var maxLen uint8
	for i := 0; i < len(freqs); i++ {
		if l := tbl.CodeFor(i).Len; l > maxLen {
			maxLen = l
		}
	}
	if maxLen <= primaryBits {
		t.Fatalf("test setup: max code length %d does not exceed primary table width %d", maxLen, primaryBits)
	}
	rng := rand.New(rand.NewSource(5))
	data := make([]int, 4000)
	for i := range data {
		data[i] = rng.Intn(len(freqs))
	}
	enc, err := Encode(data, tbl)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := ReferenceDecode(enc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ref) {
		t.Fatal("overflow-path decode differs from reference")
	}
	if !reflect.DeepEqual(got, data) {
		t.Fatal("overflow-path round trip mismatch")
	}
}

// TestEncodeToByteIdentical: the three encode paths must emit identical
// bytes for the same symbols — the invariant that keeps every stream
// frozen across the hot-path overhaul.
func TestEncodeToByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	data := geometricData(rng, 20000, 1024)
	freqs := make([]uint64, 1024)
	for _, s := range data {
		freqs[s]++
	}
	tbl, err := BuildTable(freqs)
	if err != nil {
		t.Fatal(err)
	}
	old, err := ReferenceEncode(data, tbl)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := Encode(data, tbl)
	if err != nil {
		t.Fatal(err)
	}
	var s SymbolStream
	s.AppendInts(data)
	fast, err := EncodeTo(nil, &s, tbl)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(old, cur) {
		t.Fatal("Encode bytes differ from ReferenceEncode")
	}
	if !bytes.Equal(old, fast) {
		t.Fatal("EncodeTo bytes differ from ReferenceEncode")
	}
}

// TestEncodeExactSize: Encode and EncodeTo must size output exactly — no
// regrow on dense streams (the old len/2+16 guess regrew several times).
func TestEncodeExactSize(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	// Near-uniform over a large alphabet: ~16 bits/symbol, 4x the old guess.
	data := make([]int, 8192)
	for i := range data {
		data[i] = rng.Intn(50000)
	}
	enc, err := EncodeWithFreqs(data, 50000)
	if err != nil {
		t.Fatal(err)
	}
	if cap(enc) != len(enc) {
		t.Errorf("Encode overallocated: len %d cap %d", len(enc), cap(enc))
	}
	var s SymbolStream
	s.AppendInts(data)
	freqs := make([]uint64, 50000)
	for _, v := range data {
		freqs[v]++
	}
	tbl, err := BuildTable(freqs)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := EncodeTo(nil, &s, tbl)
	if err != nil {
		t.Fatal(err)
	}
	if cap(fast) != len(fast) {
		t.Errorf("EncodeTo overallocated: len %d cap %d", len(fast), cap(fast))
	}
}

// TestWideAlphabetEscape: symbols ≥ WideEscape ride the escape extension
// through SymbolStream and still round-trip byte-identically.
func TestWideAlphabetEscape(t *testing.T) {
	alphabet := 1 << 17
	data := []int{70000, 3, 65535, 70000, 131071, 3, 3, 65534}
	freqs := make([]uint64, alphabet)
	for _, v := range data {
		freqs[v]++
	}
	tbl, err := BuildTable(freqs)
	if err != nil {
		t.Fatal(err)
	}
	var s SymbolStream
	s.AppendInts(data)
	if len(s.Wide) != 4 { // 70000, 70000, 131071 and the boundary 65535
		t.Fatalf("wide lane holds %d symbols, want 4", len(s.Wide))
	}
	enc, err := EncodeTo(nil, &s, tbl)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := ReferenceEncode(data, tbl)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, ref) {
		t.Fatal("wide-alphabet EncodeTo bytes differ from reference")
	}
	var dec SymbolStream
	if err := DecodeInto(&dec, enc); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dec.Ints(), data) {
		t.Fatalf("wide round trip: got %v want %v", dec.Ints(), data)
	}
}

// TestDecodeIntoReusesBuffers: steady-state DecodeInto must not allocate
// per-symbol or per-call decode tables.
func TestDecodeIntoReusesBuffers(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	data := geometricData(rng, 1<<15, 1024)
	enc, err := EncodeWithFreqs(data, 1024)
	if err != nil {
		t.Fatal(err)
	}
	var s SymbolStream
	if err := DecodeInto(&s, enc); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := DecodeInto(&s, enc); err != nil {
			t.Fatal(err)
		}
	})
	// The pooled decoder and the reused SymbolStream make the steady state
	// allocation-free; a small budget absorbs pool churn under GC.
	if allocs > 4 {
		t.Errorf("DecodeInto steady state allocates %.1f times per call", allocs)
	}
}

// TestCorruptStreams: crafted tables and truncated payloads must error
// with ErrCorrupt from BOTH decoders — never panic, never succeed.
func TestCorruptStreams(t *testing.T) {
	valid, err := EncodeWithFreqs([]int{1, 2, 3, 1, 1, 0}, 8)
	if err != nil {
		t.Fatal(err)
	}

	// Oversubscribed lengths: three 1-bit codes cannot exist.
	overs := make([]byte, 0, 8+3*5)
	var b4 [4]byte
	binary.LittleEndian.PutUint32(b4[:], 8)
	overs = append(overs, b4[:]...)
	binary.LittleEndian.PutUint32(b4[:], 3)
	overs = append(overs, b4[:]...)
	for sym := 0; sym < 3; sym++ {
		binary.LittleEndian.PutUint32(b4[:], uint32(sym))
		overs = append(overs, b4[:]...)
		overs = append(overs, 1) // length 1 for all three
	}
	var cnt8 [8]byte
	overs = append(overs, cnt8[:]...)

	cases := map[string][]byte{
		"truncated-table":    valid[:6],
		"truncated-count":    valid[:len(valid)-9],
		"oversubscribed":     overs,
		"count-beyond-bits":  append(append([]byte{}, valid[:len(valid)-9]...), 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0),
		"truncated-payload":  valid[:len(valid)-1],
		"zero-length-stream": nil,
	}
	for name, stream := range cases {
		t.Run(name, func(t *testing.T) {
			var s SymbolStream
			errNew := DecodeInto(&s, stream)
			_, errRef := ReferenceDecode(stream)
			if errNew == nil {
				// The reference must agree that this stream is acceptable.
				if errRef != nil {
					t.Fatalf("table-driven accepted a stream the reference rejects (%v)", errRef)
				}
				t.Skip("stream turned out valid for both decoders")
			}
			if errRef == nil {
				t.Fatalf("table-driven rejected (%v) a stream the reference accepts", errNew)
			}
			if !errors.Is(errNew, ErrCorrupt) {
				t.Errorf("error %v does not wrap ErrCorrupt", errNew)
			}
		})
	}
}

// TestTruncatedPayloadErrCorrupt: payload cut mid-code must be ErrCorrupt
// (the pre-overhaul decoder surfaced a bare bitstream EOF).
func TestTruncatedPayloadErrCorrupt(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	data := geometricData(rng, 3000, 512)
	enc, err := EncodeWithFreqs(data, 512)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut <= 16; cut++ {
		var s SymbolStream
		err := DecodeInto(&s, enc[:len(enc)-cut])
		if err == nil {
			t.Fatalf("truncated by %d bytes decoded successfully", cut)
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncated by %d: error %v does not wrap ErrCorrupt", cut, err)
		}
	}
}

// TestDecodeMatchesReferenceQuick: random alphabets/streams, both decoders
// agree on every valid stream.
func TestDecodeMatchesReferenceQuick(t *testing.T) {
	f := func(seed int64, n uint16, alpha uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		alphabet := int(alpha)%5000 + 2
		data := geometricData(rng, int(n)%3000, alphabet)
		enc, err := EncodeWithFreqs(data, alphabet)
		if err != nil {
			return false
		}
		ref, err := ReferenceDecode(enc)
		if err != nil {
			return false
		}
		got, err := Decode(enc)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// FuzzDecodeVsReference: on arbitrary bytes the table-driven decoder and
// the pre-table bucket decoder must agree — same accept/reject decision,
// and identical symbols when both accept. This pins the overhaul to the
// old decoder's exact semantics across the whole input space, including
// crafted first-level collisions, overflow tables, and truncated payloads.
func FuzzDecodeVsReference(f *testing.F) {
	rng := rand.New(rand.NewSource(71))
	smallEnc, err := EncodeWithFreqs(geometricData(rng, 300, 40), 40)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(smallEnc)
	longTbl, err := BuildTable(fibFreqs(24))
	if err != nil {
		f.Fatal(err)
	}
	longEnc, err := Encode([]int{23, 22, 21, 0, 1, 23}, longTbl)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(longEnc)                  // overflow-table codes at the boundary
	f.Add([]byte{})                 // empty
	f.Add(smallEnc[:9])             // truncated table
	f.Add(longEnc[:len(longEnc)-1]) // truncated payload
	f.Fuzz(func(t *testing.T, stream []byte) {
		ref, refErr := ReferenceDecode(stream)
		var s SymbolStream
		newErr := DecodeInto(&s, stream)
		if (refErr == nil) != (newErr == nil) {
			t.Fatalf("decoders disagree on acceptance: ref=%v new=%v", refErr, newErr)
		}
		if refErr != nil {
			return
		}
		if !reflect.DeepEqual(s.Ints(), ref) {
			t.Fatal("decoders disagree on symbols")
		}
	})
}

func BenchmarkDecodeInto(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	data := make([]int, 1<<16)
	for i := range data {
		data[i] = 512 + int(rng.NormFloat64()*4)
	}
	enc, err := EncodeWithFreqs(data, 1024)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	var s SymbolStream
	for i := 0; i < b.N; i++ {
		if err := DecodeInto(&s, enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReferenceDecode(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	data := make([]int, 1<<16)
	for i := range data {
		data[i] = 512 + int(rng.NormFloat64()*4)
	}
	enc, err := EncodeWithFreqs(data, 1024)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReferenceDecode(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeTo(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	data := make([]int, 1<<16)
	for i := range data {
		data[i] = 512 + int(rng.NormFloat64()*4)
	}
	freqs := make([]uint64, 1024)
	for _, s := range data {
		freqs[s]++
	}
	tbl, err := BuildTable(freqs)
	if err != nil {
		b.Fatal(err)
	}
	var s SymbolStream
	s.AppendInts(data)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	var buf []byte
	for i := 0; i < b.N; i++ {
		out, err := EncodeTo(buf[:0], &s, tbl)
		if err != nil {
			b.Fatal(err)
		}
		buf = out
	}
}

// TestBuildTableMatchesReference: the two-queue merge must assign the
// exact code table the reference heap merge assigns, across degenerate,
// skewed, flat, and deep-code distributions.
func TestBuildTableMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	randFreqs := func(n, zeros int) []uint64 {
		f := make([]uint64, n)
		for i := range f {
			if rng.Intn(zeros+1) == 0 {
				f[i] = uint64(rng.Intn(1000) + 1)
			}
		}
		f[rng.Intn(n)] = uint64(rng.Intn(1000) + 1) // at least one used
		return f
	}
	cases := map[string][]uint64{
		"single":        {0, 0, 7, 0},
		"pair":          {3, 3},
		"flat":          {1, 1, 1, 1, 1, 1, 1},
		"fibonacci":     fibFreqs(30),
		"deep-overflow": fibFreqs(120), // triggers the flat-code fallback
		"sparse":        randFreqs(5000, 20),
		"dense":         randFreqs(300, 0),
		"ties":          {5, 5, 5, 5, 5, 5, 5, 5, 5, 5},
	}
	for name, freqs := range cases {
		t.Run(name, func(t *testing.T) {
			want, errW := ReferenceBuildTable(freqs)
			got, errG := BuildTable(freqs)
			if (errW == nil) != (errG == nil) {
				t.Fatalf("error mismatch: ref=%v new=%v", errW, errG)
			}
			if errW != nil {
				return
			}
			if got.AlphabetSize() != want.AlphabetSize() || got.NumSymbols() != want.NumSymbols() {
				t.Fatalf("shape mismatch: alphabet %d/%d symbols %d/%d",
					got.AlphabetSize(), want.AlphabetSize(), got.NumSymbols(), want.NumSymbols())
			}
			for sym := 0; sym < want.AlphabetSize(); sym++ {
				if got.CodeFor(sym) != want.CodeFor(sym) {
					t.Fatalf("symbol %d: code %+v != reference %+v", sym, got.CodeFor(sym), want.CodeFor(sym))
				}
			}
			if !bytes.Equal(got.serialize(), want.serialize()) {
				t.Fatal("serialized tables differ")
			}
		})
	}
}

// FuzzBuildTableVsReference drives arbitrary frequency tables through both
// builders; lengths, codes, and serialized bytes must match.
func FuzzBuildTableVsReference(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 0, 0, 9})
	f.Add([]byte{255, 255, 1})
	f.Add([]byte{0})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) == 0 {
			return
		}
		freqs := make([]uint64, len(raw))
		for i, b := range raw {
			// Spread a byte into a wide dynamic range so ties and deep
			// trees both occur.
			freqs[i] = uint64(b%16) << (b / 16)
		}
		want, errW := ReferenceBuildTable(freqs)
		got, errG := BuildTable(freqs)
		if (errW == nil) != (errG == nil) {
			t.Fatalf("error mismatch: ref=%v new=%v", errW, errG)
		}
		if errW != nil {
			return
		}
		if !bytes.Equal(got.serialize(), want.serialize()) {
			t.Fatal("serialized tables differ")
		}
		for sym := 0; sym < want.AlphabetSize(); sym++ {
			if got.CodeFor(sym) != want.CodeFor(sym) {
				t.Fatalf("symbol %d code mismatch", sym)
			}
		}
	})
}
