package huffman

import (
	"container/heap"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"ocelot/internal/bitstream"
)

// This file pins the pre-overhaul entropy coder: the append-as-you-go
// encoder with its conservative capacity guess and the length-bucket
// bit-by-bit decoder. Neither is used by the production pipeline; they are
// retained verbatim for two jobs:
//
//   - Oracle: the fuzz/property tests assert the table-driven decoder
//     accepts, rejects, and decodes exactly the same streams bit-for-bit
//     (TestDecodeMatchesReference, FuzzDecodeVsReference).
//   - Baseline: BENCH_hotpath.json and the HotPath experiment measure the
//     new hot path's speedup against these functions on the same machine,
//     so the ≥2x decode / ≥1.3x encode targets are tracked as a file diff
//     rather than against stale absolute numbers.
//
// Do not "optimize" this file — its value is that it does not change.

type hNode struct {
	freq        uint64
	symbol      int // -1 for internal
	left, right *hNode
	order       int // tie-break for determinism
}

type hHeap []*hNode

func (h hHeap) Len() int { return len(h) }
func (h hHeap) Less(i, j int) bool {
	if h[i].freq != h[j].freq {
		return h[i].freq < h[j].freq
	}
	return h[i].order < h[j].order
}
func (h hHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *hHeap) Push(x interface{}) { *h = append(*h, x.(*hNode)) }
func (h *hHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// ReferenceBuildTable is the pre-overhaul BuildTable: a pointer-node heap
// merge with per-node allocations. The production BuildTable's two-queue
// merge must assign identical code lengths for every input — the property
// TestBuildTableMatchesReference and FuzzBuildTableVsReference pin.
func ReferenceBuildTable(freqs []uint64) (*Table, error) {
	if len(freqs) == 0 {
		return nil, errors.New("huffman: empty alphabet")
	}
	if len(freqs) > 1<<24 {
		return nil, ErrTooManySymbols
	}
	var nodes []*hNode
	for sym, f := range freqs {
		if f > 0 {
			nodes = append(nodes, &hNode{freq: f, symbol: sym, order: sym})
		}
	}
	if len(nodes) == 0 {
		return nil, errors.New("huffman: no symbols with nonzero frequency")
	}
	lengths := make([]uint8, len(freqs))
	if len(nodes) == 1 {
		// Degenerate alphabet: assign a 1-bit code.
		lengths[nodes[0].symbol] = 1
	} else {
		h := hHeap(nodes)
		heap.Init(&h)
		order := len(freqs)
		for h.Len() > 1 {
			a := heap.Pop(&h).(*hNode)
			b := heap.Pop(&h).(*hNode)
			order++
			heap.Push(&h, &hNode{
				freq: a.freq + b.freq, symbol: -1, left: a, right: b, order: order,
			})
		}
		root := h[0]
		if err := assignLengths(root, 0, lengths); err != nil {
			// Pathologically skewed distributions can exceed the supported
			// depth; fall back to near-uniform codes (depth ≤ log2 alphabet).
			flat := make([]uint64, len(freqs))
			for sym, f := range freqs {
				if f > 0 {
					flat[sym] = 1
				}
			}
			return ReferenceBuildTable(flat)
		}
	}
	return tableFromLengths(lengths)
}

func assignLengths(n *hNode, depth uint8, lengths []uint8) error {
	if n.symbol >= 0 {
		if depth == 0 {
			depth = 1
		}
		if depth > maxCodeLen {
			return fmt.Errorf("huffman: code length %d exceeds max %d", depth, maxCodeLen)
		}
		lengths[n.symbol] = depth
		return nil
	}
	if err := assignLengths(n.left, depth+1, lengths); err != nil {
		return err
	}
	return assignLengths(n.right, depth+1, lengths)
}

// ReferenceEncode is the pre-overhaul Encode: per-symbol range checks in
// the write loop and a halfway-capacity writer that regrows on dense
// streams. Output bytes are identical to Encode's. (Symbol lookups go
// through CodeFor — the windowed codes array postdates this baseline, but
// the lookup cost profile is the same as the original direct index.)
func ReferenceEncode(data []int, t *Table) ([]byte, error) {
	header := t.serialize()
	w := bitstream.NewWriter(len(data)/2 + 16)
	for _, sym := range data {
		c := t.CodeFor(sym)
		if c.Len == 0 {
			return nil, fmt.Errorf("huffman: symbol %d has no code", sym)
		}
		w.WriteBits(c.Bits, uint(c.Len))
	}
	payload := w.Bytes()
	out := make([]byte, 0, len(header)+8+len(payload))
	out = append(out, header...)
	var cnt [8]byte
	binary.LittleEndian.PutUint64(cnt[:], uint64(len(data)))
	out = append(out, cnt[:]...)
	out = append(out, payload...)
	return out, nil
}

// ReferenceDecode is the pre-overhaul Decode: canonical decoding by length
// buckets, one bit per loop iteration.
func ReferenceDecode(stream []byte) ([]int, error) {
	t, rest, err := deserializeTable(stream)
	if err != nil {
		return nil, err
	}
	if len(rest) < 8 {
		return nil, ErrCorrupt
	}
	count := binary.LittleEndian.Uint64(rest[:8])
	if count > 1<<40 {
		return nil, ErrCorrupt
	}
	payload := rest[8:]
	if count > uint64(len(payload))*8 {
		return nil, ErrCorrupt
	}
	dec, err := newRefDecoder(t)
	if err != nil {
		return nil, err
	}
	r := bitstream.NewReader(payload)
	out := make([]int, count)
	for i := range out {
		sym, err := dec.decodeOne(r)
		if err != nil {
			return nil, err
		}
		out[i] = sym
	}
	return out, nil
}

// refDecoder performs canonical decoding by length buckets: for each code
// length L it records the first code value and the index of the first
// symbol with that length in the sorted symbol list.
type refDecoder struct {
	firstCode  [maxCodeLen + 2]uint64
	firstIndex [maxCodeLen + 2]int
	count      [maxCodeLen + 2]int
	symbols    []int // sorted by (len, symbol)
	minLen     uint8
	maxLen     uint8
}

func newRefDecoder(t *Table) (*refDecoder, error) {
	type refSymLen struct {
		sym int
		ln  uint8
	}
	var used []refSymLen
	for w, c := range t.codes {
		if c.Len > 0 {
			used = append(used, refSymLen{w + t.base, c.Len})
		}
	}
	if len(used) == 0 {
		return nil, ErrCorrupt
	}
	sort.Slice(used, func(i, j int) bool {
		if used[i].ln != used[j].ln {
			return used[i].ln < used[j].ln
		}
		return used[i].sym < used[j].sym
	})
	d := &refDecoder{
		symbols: make([]int, len(used)),
		minLen:  used[0].ln,
		maxLen:  used[len(used)-1].ln,
	}
	for i, sl := range used {
		d.symbols[i] = sl.sym
		d.count[sl.ln]++
	}
	var code uint64
	idx := 0
	for ln := d.minLen; ln <= d.maxLen; ln++ {
		d.firstCode[ln] = code
		d.firstIndex[ln] = idx
		code = (code + uint64(d.count[ln])) << 1
		idx += d.count[ln]
	}
	return d, nil
}

func (d *refDecoder) decodeOne(r *bitstream.Reader) (int, error) {
	var code uint64
	var ln uint8
	for ln < d.minLen {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		code = code<<1 | uint64(b)
		ln++
	}
	for {
		if d.count[ln] > 0 {
			offset := code - d.firstCode[ln]
			if code >= d.firstCode[ln] && offset < uint64(d.count[ln]) {
				return d.symbols[d.firstIndex[ln]+int(offset)], nil
			}
		}
		if ln >= d.maxLen {
			return 0, ErrCorrupt
		}
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		code = code<<1 | uint64(b)
		ln++
	}
}
