package sim

import (
	"testing"
)

func TestEventOrdering(t *testing.T) {
	c := NewClock()
	var order []int
	c.After(3, func() { order = append(order, 3) })
	c.After(1, func() { order = append(order, 1) })
	c.After(2, func() { order = append(order, 2) })
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if c.Now() != 3 {
		t.Fatalf("final time = %v", c.Now())
	}
}

func TestFIFOTieBreak(t *testing.T) {
	c := NewClock()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		c.After(1, func() { order = append(order, i) })
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break not FIFO: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	c := NewClock()
	var times []float64
	c.After(1, func() {
		times = append(times, c.Now())
		c.After(2, func() {
			times = append(times, c.Now())
		})
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if len(times) != 2 || times[0] != 1 || times[1] != 3 {
		t.Fatalf("times = %v", times)
	}
}

func TestPastEventRejected(t *testing.T) {
	c := NewClock()
	c.After(5, func() {
		if err := c.At(1, func() {}); err == nil {
			t.Error("want error scheduling in the past")
		}
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeAfterClamped(t *testing.T) {
	c := NewClock()
	ran := false
	c.After(-10, func() { ran = true })
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran || c.Now() != 0 {
		t.Fatalf("ran=%v now=%v", ran, c.Now())
	}
}

func TestBudgetExhaustion(t *testing.T) {
	c := NewClock()
	c.budget = 100
	var loop func()
	loop = func() { c.After(1, loop) }
	loop()
	if err := c.Run(); err == nil {
		t.Fatal("want budget error")
	}
}

func TestPending(t *testing.T) {
	c := NewClock()
	if c.Pending() != 0 {
		t.Fatal("fresh clock has pending events")
	}
	c.After(1, func() {})
	c.After(2, func() {})
	if c.Pending() != 2 {
		t.Fatalf("pending = %d", c.Pending())
	}
}
