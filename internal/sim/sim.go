// Package sim provides a small deterministic discrete-event simulation
// engine: a virtual clock and an event queue. The WAN, batch-scheduler, and
// end-to-end transfer models run on it so that experiments covering hours of
// supercomputer time execute in microseconds and are exactly reproducible.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
)

// Clock is a virtual-time event loop. The zero value is not usable; call
// NewClock.
type Clock struct {
	now    float64
	queue  eventQueue
	seq    int64
	budget int
}

// event is a scheduled callback.
type event struct {
	at  float64
	seq int64 // FIFO tie-break for determinism
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// defaultBudget bounds the number of processed events to catch runaway
// simulations in tests.
const defaultBudget = 50_000_000

// NewClock returns a clock at time 0.
func NewClock() *Clock {
	return &Clock{budget: defaultBudget}
}

// Now reports the current virtual time in seconds.
func (c *Clock) Now() float64 { return c.now }

// ErrPastEvent is returned by At when scheduling before the current time.
var ErrPastEvent = errors.New("sim: event scheduled in the past")

// At schedules fn to run at absolute virtual time t.
func (c *Clock) At(t float64, fn func()) error {
	if t < c.now {
		return fmt.Errorf("%w: t=%.6f now=%.6f", ErrPastEvent, t, c.now)
	}
	c.seq++
	heap.Push(&c.queue, &event{at: t, seq: c.seq, fn: fn})
	return nil
}

// After schedules fn to run d seconds from now. Negative d means now.
func (c *Clock) After(d float64, fn func()) {
	if d < 0 {
		d = 0
	}
	// Error impossible: t >= now by construction.
	_ = c.At(c.now+d, fn)
}

// Run processes events until the queue drains, advancing virtual time.
// It returns an error if the event budget is exhausted.
func (c *Clock) Run() error {
	processed := 0
	for c.queue.Len() > 0 {
		e, ok := heap.Pop(&c.queue).(*event)
		if !ok {
			return errors.New("sim: corrupt event queue")
		}
		c.now = e.at
		e.fn()
		processed++
		if processed > c.budget {
			return fmt.Errorf("sim: event budget %d exhausted at t=%.3f", c.budget, c.now)
		}
	}
	return nil
}

// Pending reports the number of scheduled events.
func (c *Clock) Pending() int { return c.queue.Len() }
