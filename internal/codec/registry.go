package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// DefaultName is the codec used when a caller leaves the codec choice
// empty: the SZ3-style prediction pipeline, the repository's historical
// default.
const DefaultName = "sz3"

// ErrUnknownStream indicates a stream whose magic matches no registered
// codec or container format.
var ErrUnknownStream = errors.New("codec: unknown stream magic")

// Container is a non-codec framing format (e.g. the OCSC chunked
// container) whose streams Decompress should also dispatch transparently.
// Containers sit above codecs: their payloads are codec streams in their
// own right.
type Container struct {
	// Name labels the format in errors ("ocsc").
	Name string
	// Magic is the little-endian 4-byte stream prefix.
	Magic uint32
	// Decompress decodes the whole container into a field and its shape.
	Decompress func(stream []byte) ([]float64, []int, error)
	// StreamDims parses only the container header(s) for the field shape.
	StreamDims func(stream []byte) ([]int, error)
}

var (
	regMu      sync.RWMutex
	codecs     = map[string]Codec{}
	byMagic    = map[uint32]Codec{}
	containers = map[uint32]Container{}
)

// Register adds a codec to the process-wide registry. It is intended to be
// called from init functions and panics on a duplicate name or magic —
// both indicate a build-level wiring mistake, not a runtime condition.
func Register(c Codec) {
	regMu.Lock()
	defer regMu.Unlock()
	name := c.Name()
	if name == "" {
		panic("codec: Register with empty name")
	}
	if _, dup := codecs[name]; dup {
		panic(fmt.Sprintf("codec: duplicate codec name %q", name))
	}
	if prev, dup := byMagic[c.Magic()]; dup {
		panic(fmt.Sprintf("codec: magic %#x already registered by %q", c.Magic(), prev.Name()))
	}
	if _, dup := containers[c.Magic()]; dup {
		panic(fmt.Sprintf("codec: magic %#x already registered as a container", c.Magic()))
	}
	codecs[name] = c
	byMagic[c.Magic()] = c
}

// RegisterContainer adds a framing format to the dispatch table so
// Decompress handles its streams transparently. Panics on a duplicate
// magic, like Register.
func RegisterContainer(ct Container) {
	regMu.Lock()
	defer regMu.Unlock()
	if ct.Decompress == nil {
		panic("codec: RegisterContainer with nil Decompress")
	}
	if prev, dup := byMagic[ct.Magic]; dup {
		panic(fmt.Sprintf("codec: magic %#x already registered by codec %q", ct.Magic, prev.Name()))
	}
	if _, dup := containers[ct.Magic]; dup {
		panic(fmt.Sprintf("codec: duplicate container magic %#x", ct.Magic))
	}
	containers[ct.Magic] = ct
}

// Names returns the registered codec names in sorted order — the list the
// CLI prints and error messages cite.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(codecs))
	for name := range codecs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Lookup resolves a codec by registry name. The empty string selects
// DefaultName, so callers can pass user input through unchanged. Unknown
// names error with the valid list (the consolidated name-error format
// shared with sz.ParsePredictor).
func Lookup(name string) (Codec, error) {
	if name == "" {
		name = DefaultName
	}
	regMu.RLock()
	c, ok := codecs[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("codec: %w", UnknownName("codec", name, Names()))
	}
	return c, nil
}

// Normalize maps a user-supplied codec name to its canonical registry key,
// validating it exists ("" → DefaultName).
func Normalize(name string) (string, error) {
	c, err := Lookup(name)
	if err != nil {
		return "", err
	}
	return c.Name(), nil
}

// Sniff identifies the codec that produced a stream by its magic. Streams
// shorter than 4 bytes and container magics return ErrUnknownStream (use
// Decompress for transparent container handling).
func Sniff(stream []byte) (Codec, error) {
	if len(stream) < 4 {
		return nil, ErrUnknownStream
	}
	magic := binary.LittleEndian.Uint32(stream[:4])
	regMu.RLock()
	c, ok := byMagic[magic]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("codec: magic %#x: %w", magic, ErrUnknownStream)
	}
	return c, nil
}

// FormatName names the registered format a stream carries — a codec name
// ("sz3", "szx") or a container name ("ocsc") — for display purposes.
// Unlike Sniff it resolves container magics too.
func FormatName(stream []byte) (string, error) {
	if len(stream) < 4 {
		return "", ErrUnknownStream
	}
	magic := binary.LittleEndian.Uint32(stream[:4])
	regMu.RLock()
	defer regMu.RUnlock()
	if c, ok := byMagic[magic]; ok {
		return c.Name(), nil
	}
	if ct, ok := containers[magic]; ok {
		return ct.Name, nil
	}
	return "", fmt.Errorf("codec: magic %#x: %w", magic, ErrUnknownStream)
}

// Decompress decodes any registered stream — codec streams and container
// formats alike — by dispatching on the 4-byte magic. This is the decode
// entry point for grouped-archive members and chunked-container payloads,
// which may have been produced by any codec.
func Decompress(stream []byte) ([]float64, []int, error) {
	if len(stream) < 4 {
		return nil, nil, ErrUnknownStream
	}
	magic := binary.LittleEndian.Uint32(stream[:4])
	regMu.RLock()
	c, isCodec := byMagic[magic]
	ct, isContainer := containers[magic]
	regMu.RUnlock()
	switch {
	case isCodec:
		return c.Decompress(stream)
	case isContainer:
		return ct.Decompress(stream)
	default:
		return nil, nil, fmt.Errorf("codec: magic %#x: %w", magic, ErrUnknownStream)
	}
}

// StreamDims parses only the header(s) of any registered stream for the
// field shape — the cheap geometry probe container framing relies on.
func StreamDims(stream []byte) ([]int, error) {
	if len(stream) < 4 {
		return nil, ErrUnknownStream
	}
	magic := binary.LittleEndian.Uint32(stream[:4])
	regMu.RLock()
	c, isCodec := byMagic[magic]
	ct, isContainer := containers[magic]
	regMu.RUnlock()
	switch {
	case isCodec:
		return c.StreamDims(stream)
	case isContainer && ct.StreamDims != nil:
		return ct.StreamDims(stream)
	default:
		return nil, fmt.Errorf("codec: magic %#x: %w", magic, ErrUnknownStream)
	}
}
