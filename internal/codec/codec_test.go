package codec

import (
	"encoding/binary"
	"errors"
	"strings"
	"testing"
)

// fakeCodec is a registry test double: "compression" is a magic-prefixed
// copy of the raw float bytes.
type fakeCodec struct {
	name  string
	magic uint32
}

func (f fakeCodec) Name() string  { return f.name }
func (f fakeCodec) Magic() uint32 { return f.magic }

func (f fakeCodec) Compress(data []float64, dims []int, p Params) ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	out := make([]byte, 4, 4+8*len(data))
	binary.LittleEndian.PutUint32(out, f.magic)
	var b8 [8]byte
	for _, v := range data {
		binary.LittleEndian.PutUint64(b8[:], uint64(v))
		out = append(out, b8[:]...)
	}
	return out, nil
}

func (f fakeCodec) Decompress(stream []byte) ([]float64, []int, error) {
	body := stream[4:]
	out := make([]float64, len(body)/8)
	for i := range out {
		out[i] = float64(binary.LittleEndian.Uint64(body[8*i : 8*i+8]))
	}
	return out, []int{len(out)}, nil
}

func (f fakeCodec) StreamDims(stream []byte) ([]int, error) {
	return []int{(len(stream) - 4) / 8}, nil
}

func (f fakeCodec) Probe(data []float64, dims []int, p Params, stride int) ([]int, error) {
	return []int{0}, nil
}

func (f fakeCodec) Caps() Caps { return Caps{} }

func TestRegistryDispatch(t *testing.T) {
	fc := fakeCodec{name: "fake-a", magic: 0xAA00AA01}
	Register(fc)

	if _, err := Lookup("fake-a"); err != nil {
		t.Fatal(err)
	}
	names := Names()
	found := false
	for _, n := range names {
		if n == "fake-a" {
			found = true
		}
	}
	if !found {
		t.Errorf("Names() = %v missing fake-a", names)
	}

	stream, err := fc.Compress([]float64{1, 2, 3}, []int{3}, Params{AbsErrorBound: 1})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Sniff(stream)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "fake-a" {
		t.Errorf("sniffed %q", c.Name())
	}
	recon, dims, err := Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(recon) != 3 || dims[0] != 3 || recon[2] != 3 {
		t.Errorf("recon = %v dims = %v", recon, dims)
	}
	if d, err := StreamDims(stream); err != nil || d[0] != 3 {
		t.Errorf("StreamDims = %v, %v", d, err)
	}
}

func TestUnknownStreamErrors(t *testing.T) {
	for _, s := range [][]byte{nil, {1}, {0xDE, 0xAD, 0xBE, 0xEF, 0}} {
		if _, _, err := Decompress(s); !errors.Is(err, ErrUnknownStream) {
			t.Errorf("Decompress(%v) err = %v, want ErrUnknownStream", s, err)
		}
		if _, err := Sniff(s); !errors.Is(err, ErrUnknownStream) {
			t.Errorf("Sniff(%v) err = %v, want ErrUnknownStream", s, err)
		}
		if _, err := StreamDims(s); s != nil && !errors.Is(err, ErrUnknownStream) {
			t.Errorf("StreamDims(%v) err = %v, want ErrUnknownStream", s, err)
		}
	}
}

func TestLookupErrorListsValidNames(t *testing.T) {
	_, err := Lookup("no-such-codec")
	if err == nil {
		t.Fatal("want error")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"no-such-codec"`) || !strings.Contains(msg, "valid:") {
		t.Errorf("error %q should quote the name and list valid codecs", msg)
	}
}

func TestRegisterPanicsOnDuplicates(t *testing.T) {
	base := fakeCodec{name: "fake-dup", magic: 0xAA00AA02}
	Register(base)
	mustPanic(t, "duplicate name", func() {
		Register(fakeCodec{name: "fake-dup", magic: 0xAA00AA03})
	})
	mustPanic(t, "duplicate magic", func() {
		Register(fakeCodec{name: "fake-dup2", magic: 0xAA00AA02})
	})
	RegisterContainer(Container{Name: "fake-container", Magic: 0xAA00AA04,
		Decompress: func([]byte) ([]float64, []int, error) { return nil, nil, nil }})
	mustPanic(t, "codec over container magic", func() {
		Register(fakeCodec{name: "fake-dup3", magic: 0xAA00AA04})
	})
	mustPanic(t, "container over codec magic", func() {
		RegisterContainer(Container{Name: "fake-container2", Magic: 0xAA00AA02,
			Decompress: func([]byte) ([]float64, []int, error) { return nil, nil, nil }})
	})
	mustPanic(t, "nil container decode", func() {
		RegisterContainer(Container{Name: "fake-container3", Magic: 0xAA00AA05})
	})
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: want panic", what)
		}
	}()
	fn()
}

func TestFormatName(t *testing.T) {
	Register(fakeCodec{name: "fake-fmt", magic: 0xAA00AA07})
	RegisterContainer(Container{Name: "fake-fmt-container", Magic: 0xAA00AA08,
		Decompress: func([]byte) ([]float64, []int, error) { return nil, nil, nil }})
	if name, err := FormatName([]byte{0x07, 0xAA, 0x00, 0xAA, 1}); err != nil || name != "fake-fmt" {
		t.Errorf("FormatName codec = %q, %v", name, err)
	}
	if name, err := FormatName([]byte{0x08, 0xAA, 0x00, 0xAA, 1}); err != nil || name != "fake-fmt-container" {
		t.Errorf("FormatName container = %q, %v", name, err)
	}
	if _, err := FormatName([]byte{1, 2}); !errors.Is(err, ErrUnknownStream) {
		t.Errorf("short stream err = %v", err)
	}
	if _, err := FormatName([]byte{9, 9, 9, 9, 9}); !errors.Is(err, ErrUnknownStream) {
		t.Errorf("unknown magic err = %v", err)
	}
}

func TestNormalize(t *testing.T) {
	Register(fakeCodec{name: "fake-norm", magic: 0xAA00AA06})
	got, err := Normalize("fake-norm")
	if err != nil || got != "fake-norm" {
		t.Errorf("Normalize = %q, %v", got, err)
	}
	if _, err := Normalize("bogus"); err == nil {
		t.Error("want error for bogus codec")
	}
}

func TestValidateDims(t *testing.T) {
	if err := ValidateDims(6, []int{2, 3}); err != nil {
		t.Error(err)
	}
	for _, tc := range []struct {
		n    int
		dims []int
	}{
		{3, nil},
		{3, []int{1, 1, 1, 1, 3}},
		{3, []int{-3}},
		{3, []int{4}},
	} {
		if err := ValidateDims(tc.n, tc.dims); err == nil {
			t.Errorf("ValidateDims(%d, %v): want error", tc.n, tc.dims)
		}
	}
}

func TestParamsValidate(t *testing.T) {
	if err := (Params{AbsErrorBound: 1e-3}).Validate(); err != nil {
		t.Error(err)
	}
	if err := (Params{}).Validate(); err == nil {
		t.Error("want error for zero bound")
	}
}
