package codec

import "fmt"

// MaxDims is the highest dimensionality any registered codec accepts,
// matching the SZ family's 1–4D support.
const MaxDims = 4

// ValidateDims checks a field shape against its data length: 1–MaxDims
// axes, every axis positive, product equal to n. Codecs share this so the
// campaign engine sees one error contract regardless of codec.
func ValidateDims(n int, dims []int) error {
	if len(dims) == 0 || len(dims) > MaxDims {
		return fmt.Errorf("codec: unsupported dimensionality %d", len(dims))
	}
	total := 1
	for _, d := range dims {
		if d <= 0 {
			return fmt.Errorf("codec: non-positive dimension %d", d)
		}
		total *= d
	}
	if total != n {
		return fmt.Errorf("codec: dims product %d != data length %d", total, n)
	}
	return nil
}
