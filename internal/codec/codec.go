// Package codec defines the pluggable compressor abstraction of the
// pipeline: a Codec interface every error-bounded lossy compressor
// implements, plus a process-wide registry keyed by name that dispatches
// decompression on each stream's 4-byte magic. The campaign engine, the
// quality predictor, and the planner all speak to compressors through this
// package, so adding a codec (register it in an init function, as
// internal/sz and internal/szx do) automatically extends the candidate
// grid, the CLI's -codec flag, and transparent decode of mixed-codec
// archives.
package codec

import (
	"fmt"
	"strings"
)

// Params is the codec-neutral compression request handed to every codec.
type Params struct {
	// AbsErrorBound is the resolved absolute error tolerance; must be > 0.
	// Every reconstructed value is guaranteed within this distance of the
	// original.
	AbsErrorBound float64
	// PredictorHint names a decorrelation pipeline for codecs that expose
	// one ("lorenzo" | "interp" | "regression"). Codecs whose Caps report
	// no predictor stage ignore it. Empty selects the codec's default.
	PredictorHint string
}

// Validate checks the request.
func (p Params) Validate() error {
	if p.AbsErrorBound <= 0 {
		return fmt.Errorf("codec: error bound must be positive (got %g)", p.AbsErrorBound)
	}
	return nil
}

// Caps describes what a codec can do, so planners and CLIs can adapt the
// knobs they expose without type-switching on implementations.
type Caps struct {
	// Predictors reports whether the codec honours Params.PredictorHint
	// (the sz3 family does; szx has a fixed block pipeline).
	Predictors bool
	// SpeedOptimized marks codecs that trade ratio for GB/s-class
	// throughput (the szx family); planners may use it to seed candidate
	// grids for fast links.
	SpeedOptimized bool
}

// Codec is one error-bounded lossy compressor behind the registry. All
// implementations must be safe for concurrent use: campaign stages call
// Compress and Decompress from many goroutines at once.
type Codec interface {
	// Name is the registry key ("sz3", "szx").
	Name() string
	// Magic is the little-endian 4-byte prefix identifying this codec's
	// streams; Decompress dispatches on it.
	Magic() uint32
	// Compress encodes a row-major field (dims[0] slowest) under p. Every
	// reconstructed value differs from the original by at most
	// p.AbsErrorBound.
	Compress(data []float64, dims []int, p Params) ([]byte, error)
	// Decompress decodes a stream carrying this codec's magic, returning
	// the reconstruction and its shape. Malformed streams must error (never
	// panic).
	Decompress(stream []byte) ([]float64, []int, error)
	// StreamDims parses only the stream header and returns the field shape
	// — the cheap probe container framing uses to validate chunk geometry
	// without decoding payloads.
	StreamDims(stream []byte) ([]int, error)
	// Probe runs the codec's cheap sampling pass: every stride-th point is
	// quantized the way a real compression run would bin it, returning
	// quantization codes on the shared alphabet (escape = 0, zero-residual
	// bin = radius) that feed the quality predictor's compressor features.
	Probe(data []float64, dims []int, p Params, stride int) ([]int, error)
	// Caps describes the codec's capabilities.
	Caps() Caps
}

// UnknownName builds the canonical unknown-name error used by every
// name-keyed lookup (codec names here, predictor names in internal/sz):
// it names the kind, quotes the offending value, and lists the valid
// names, so CLI errors are self-documenting.
func UnknownName(kind, got string, valid []string) error {
	return fmt.Errorf("unknown %s %q (valid: %s)", kind, got, strings.Join(valid, ", "))
}
