package codec_test

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"ocelot/internal/codec"
	"ocelot/internal/sz"
	_ "ocelot/internal/szx"
)

// genField synthesizes a field with smooth structure plus noise so every
// codec exercises its full block/predictor repertoire.
func genField(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		x := float64(i) / float64(n)
		out[i] = 25*math.Cos(9*x) + 100*x*x + rng.NormFloat64()*0.2
	}
	return out
}

// TestCrossCodecRoundTripTable is the cross-codec property table: every
// registered codec × shape × (predictor hint, where supported) must
// round-trip within the absolute bound pointwise, decode to the original
// shape, and dispatch back through the registry by magic alone.
func TestCrossCodecRoundTripTable(t *testing.T) {
	shapes := [][]int{
		{2048},
		{40, 50},
		{11, 13, 17},
		{5, 6, 7, 8},
	}
	bounds := []float64{1e-5, 1e-3, 1e-1}
	for _, name := range codec.Names() {
		if strings.HasPrefix(name, "fake-") {
			continue // registry-test doubles from the internal test file
		}
		cdc, err := codec.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		hints := []string{""}
		if cdc.Caps().Predictors {
			hints = append(hints, sz.PredictorNames()...)
		}
		for _, dims := range shapes {
			n := 1
			for _, d := range dims {
				n *= d
			}
			data := genField(n, 42)
			for _, eb := range bounds {
				for _, hint := range hints {
					label := fmt.Sprintf("%s/%v/eb=%g/hint=%q", name, dims, eb, hint)
					t.Run(label, func(t *testing.T) {
						stream, err := cdc.Compress(data, dims, codec.Params{
							AbsErrorBound: eb,
							PredictorHint: hint,
						})
						if err != nil {
							t.Fatal(err)
						}
						sniffed, err := codec.Sniff(stream)
						if err != nil {
							t.Fatal(err)
						}
						if sniffed.Name() != name {
							t.Fatalf("sniffed %q, want %q", sniffed.Name(), name)
						}
						gotDims, err := codec.StreamDims(stream)
						if err != nil {
							t.Fatal(err)
						}
						recon, rDims, err := codec.Decompress(stream)
						if err != nil {
							t.Fatal(err)
						}
						for i, d := range dims {
							if gotDims[i] != d || rDims[i] != d {
								t.Fatalf("dims %v / %v, want %v", gotDims, rDims, dims)
							}
						}
						if len(recon) != n {
							t.Fatalf("%d points, want %d", len(recon), n)
						}
						for i := range data {
							if d := math.Abs(data[i] - recon[i]); d > eb {
								t.Fatalf("point %d: |err| %g exceeds bound %g", i, d, eb)
							}
						}
					})
				}
			}
		}
	}
}

// TestCrossCodecBadPredictorHint: a hint the codec supports but cannot
// parse must error with the consolidated name-error text.
func TestCrossCodecBadPredictorHint(t *testing.T) {
	cdc, err := codec.Lookup(sz.CodecName)
	if err != nil {
		t.Fatal(err)
	}
	data := genField(100, 1)
	_, err = cdc.Compress(data, []int{100}, codec.Params{AbsErrorBound: 1e-3, PredictorHint: "bogus"})
	if err == nil {
		t.Fatal("want error for bogus predictor hint")
	}
}
