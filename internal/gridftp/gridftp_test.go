package gridftp

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"ocelot/internal/datagen"
	"ocelot/internal/sz"
)

func newPair(t *testing.T, channels int) (*Server, *Client, string) {
	t.Helper()
	dir := t.TempDir()
	srv, err := NewServer(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	cli, err := Dial(srv.Addr(), channels)
	if err != nil {
		t.Fatal(err)
	}
	return srv, cli, dir
}

func TestSingleFileRoundTrip(t *testing.T) {
	_, cli, dir := newPair(t, 1)
	payload := []byte("ocelot over the wire")
	sum, err := cli.Transfer(context.Background(), []File{{Name: "hello.txt", Data: payload}})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Files != 1 || sum.Bytes != int64(len(payload)) {
		t.Fatalf("summary %+v", sum)
	}
	got, err := os.ReadFile(filepath.Join(dir, "hello.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload mismatch")
	}
}

func TestManyFilesParallelChannels(t *testing.T) {
	_, cli, dir := newPair(t, 8)
	rng := rand.New(rand.NewSource(3))
	files := make([]File, 64)
	for i := range files {
		data := make([]byte, rng.Intn(64<<10)+1)
		rng.Read(data)
		files[i] = File{Name: fmt.Sprintf("d/%02d.bin", i), Data: data}
	}
	sum, err := cli.Transfer(context.Background(), files)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Files != len(files) {
		t.Fatalf("files = %d", sum.Files)
	}
	for _, f := range files {
		got, err := os.ReadFile(filepath.Join(dir, f.Name))
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		if !bytes.Equal(got, f.Data) {
			t.Fatalf("%s: corrupted", f.Name)
		}
	}
}

func TestEmptyBatch(t *testing.T) {
	_, cli, _ := newPair(t, 2)
	sum, err := cli.Transfer(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Files != 0 {
		t.Fatalf("summary %+v", sum)
	}
}

func TestEmptyFilePayload(t *testing.T) {
	_, cli, dir := newPair(t, 1)
	if _, err := cli.Transfer(context.Background(), []File{{Name: "empty.bin", Data: nil}}); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(filepath.Join(dir, "empty.bin"))
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != 0 {
		t.Fatalf("size = %d", st.Size())
	}
}

func TestUnsafeNamesRejected(t *testing.T) {
	_, cli, _ := newPair(t, 1)
	for _, name := range []string{"../escape.txt", "/abs.txt"} {
		if _, err := cli.Transfer(context.Background(), []File{{Name: name, Data: []byte("x")}}); err == nil {
			t.Errorf("name %q should be rejected", name)
		}
	}
}

func TestBadNameClientSide(t *testing.T) {
	_, cli, _ := newPair(t, 1)
	if _, err := cli.Transfer(context.Background(), []File{{Name: "", Data: []byte("x")}}); err == nil {
		t.Error("empty name must fail")
	}
}

func TestDialValidation(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", 100); err == nil {
		t.Error("too many channels must error")
	}
	c, err := Dial("127.0.0.1:1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.channels != 4 {
		t.Errorf("default channels = %d", c.channels)
	}
}

func TestServerGoneMidSession(t *testing.T) {
	dir := t.TempDir()
	srv, err := NewServer(dir)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	_ = srv.Close()
	cli, err := Dial(addr, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Transfer(context.Background(), []File{{Name: "x", Data: []byte("y")}}); err == nil {
		t.Error("transfer to closed server must fail")
	}
}

// TestCompressedPipelineOverTCP is the end-to-end integration: compress a
// field, ship the stream through the real protocol, read it back at the
// destination, decompress, verify the bound.
func TestCompressedPipelineOverTCP(t *testing.T) {
	_, cli, dir := newPair(t, 4)
	f, err := datagen.Generate("Miranda", "density", 32, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sz.DefaultConfig(1e-4)
	stream, _, err := sz.Compress(f.Data, f.Dims, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Transfer(context.Background(), []File{{Name: "density.sz", Data: stream}}); err != nil {
		t.Fatal(err)
	}
	landed, err := os.ReadFile(filepath.Join(dir, "density.sz"))
	if err != nil {
		t.Fatal(err)
	}
	recon, _, err := sz.Decompress(landed)
	if err != nil {
		t.Fatal(err)
	}
	if got := sz.MaxAbsError(f.Data, recon); got > 1e-4+1e-12 {
		t.Fatalf("error %g after network round trip", got)
	}
}

func TestFrameCorruptionDetected(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, File{Name: "a", Data: []byte("hello world")}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)-7] ^= 0xFF // flip a payload byte
	if _, _, err := readFrame(bytes.NewReader(raw)); err == nil {
		t.Fatal("corruption must be detected")
	}
}

func TestSequentialSessions(t *testing.T) {
	_, cli, dir := newPair(t, 2)
	for round := 0; round < 3; round++ {
		name := fmt.Sprintf("round-%d.bin", round)
		data := bytes.Repeat([]byte{byte(round)}, 1024)
		if _, err := cli.Transfer(context.Background(), []File{{Name: name, Data: data}}); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}

func BenchmarkTransferThroughput(b *testing.B) {
	dir := b.TempDir()
	srv, err := NewServer(dir)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr(), 4)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(1)).Read(data)
	files := []File{{Name: "bench.bin", Data: data}}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cli.Transfer(context.Background(), files); err != nil {
			b.Fatal(err)
		}
	}
}
