// Package gridftp implements a GridFTP-inspired transfer protocol over TCP:
// a JSON-line control channel negotiates a session, and the payload moves
// over multiple parallel data channels (the "concurrency" knob of the
// Globus transfer service). Every file is integrity-checked with CRC-32.
//
// The WAN simulator (internal/wan) models this protocol's behaviour at
// testbed scale; this package is the actual wire implementation used by
// integration tests and local deployments.
package gridftp

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// File is one transfer unit.
type File struct {
	// Name is a relative path at the destination; ".." is rejected.
	Name string
	// Data is the payload.
	Data []byte
}

// Summary reports a completed session.
type Summary struct {
	Files   int     `json:"files"`
	Bytes   int64   `json:"bytes"`
	Seconds float64 `json:"seconds"`
	MBps    float64 `json:"mbps"`
}

// Protocol limits.
const (
	maxNameLen = 4096
	maxFileLen = int64(1) << 36
)

var (
	// ErrChecksum indicates payload corruption detected by CRC-32.
	ErrChecksum = errors.New("gridftp: checksum mismatch")
	// ErrBadName indicates an unsafe destination path.
	ErrBadName = errors.New("gridftp: unsafe file name")
	// ErrSession indicates a control-protocol failure.
	ErrSession = errors.New("gridftp: session error")
)

// --- Server ---

// Server receives files into a root directory.
type Server struct {
	ln   net.Listener
	dir  string
	mu   sync.Mutex
	sess map[string]*session
	wg   sync.WaitGroup
	done chan struct{}
	next atomic.Int64
}

type session struct {
	expected int
	received atomic.Int64
	bytes    atomic.Int64
	failed   atomic.Bool
	reason   atomic.Value // string
	complete chan struct{}
	once     sync.Once
}

func (s *session) fail(reason string) {
	s.failed.Store(true)
	s.reason.Store(reason)
	s.finish()
}

func (s *session) finish() { s.once.Do(func() { close(s.complete) }) }

// NewServer starts a server on 127.0.0.1 (ephemeral port) writing received
// files under dir.
func NewServer(dir string) (*Server, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("gridftp: root dir: %w", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("gridftp: listen: %w", err)
	}
	s := &Server{ln: ln, dir: dir, sess: make(map[string]*session), done: make(chan struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's dial address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting and waits for handlers to drain.
func (s *Server) Close() error {
	close(s.done)
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return
			default:
				continue
			}
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			s.handle(conn)
		}()
	}
}

// handle dispatches a connection by its first line: "CTRL" or "DATA <id>".
func (s *Server) handle(conn net.Conn) {
	r := bufio.NewReader(conn)
	line, err := r.ReadString('\n')
	if err != nil {
		return
	}
	line = strings.TrimSpace(line)
	switch {
	case line == "CTRL":
		s.handleControl(conn, r)
	case strings.HasPrefix(line, "DATA "):
		s.handleData(strings.TrimPrefix(line, "DATA "), r)
	}
}

type ctrlRequest struct {
	Files    int `json:"files"`
	Channels int `json:"channels"`
}

type ctrlReply struct {
	OK      bool   `json:"ok"`
	Session string `json:"session,omitempty"`
	Error   string `json:"error,omitempty"`
}

func (s *Server) handleControl(conn net.Conn, r *bufio.Reader) {
	var req ctrlRequest
	line, err := r.ReadString('\n')
	if err != nil || json.Unmarshal([]byte(line), &req) != nil {
		_ = json.NewEncoder(conn).Encode(ctrlReply{Error: "bad request"})
		return
	}
	if req.Files <= 0 || req.Channels <= 0 || req.Channels > 64 {
		_ = json.NewEncoder(conn).Encode(ctrlReply{Error: "invalid session parameters"})
		return
	}
	id := strconv.FormatInt(s.next.Add(1), 10)
	sess := &session{expected: req.Files, complete: make(chan struct{})}
	s.mu.Lock()
	s.sess[id] = sess
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.sess, id)
		s.mu.Unlock()
	}()
	if err := json.NewEncoder(conn).Encode(ctrlReply{OK: true, Session: id}); err != nil {
		return
	}
	// Wait for completion or client drop.
	select {
	case <-sess.complete:
	case <-s.done:
		return
	}
	reply := ctrlReply{OK: !sess.failed.Load(), Session: id}
	if sess.failed.Load() {
		if r, ok := sess.reason.Load().(string); ok {
			reply.Error = r
		}
	}
	_ = json.NewEncoder(conn).Encode(reply)
}

func (s *Server) lookup(id string) *session {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sess[id]
}

// handleData reads file frames until EOF.
func (s *Server) handleData(id string, r *bufio.Reader) {
	sess := s.lookup(id)
	if sess == nil {
		return
	}
	for {
		name, data, err := readFrame(r)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return
			}
			sess.fail(err.Error())
			return
		}
		if err := s.store(name, data); err != nil {
			sess.fail(err.Error())
			return
		}
		sess.bytes.Add(int64(len(data)))
		if sess.received.Add(1) == int64(sess.expected) {
			sess.finish()
		}
	}
}

func (s *Server) store(name string, data []byte) error {
	clean := filepath.Clean(name)
	if strings.HasPrefix(clean, "..") || filepath.IsAbs(clean) {
		return fmt.Errorf("%w: %q", ErrBadName, name)
	}
	path := filepath.Join(s.dir, clean)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// --- Wire framing ---
//
// Frame: u16 nameLen | name | u64 size | payload | u32 crc32(payload).

func writeFrame(w io.Writer, f File) error {
	if len(f.Name) == 0 || len(f.Name) > maxNameLen {
		return fmt.Errorf("%w: %q", ErrBadName, f.Name)
	}
	var hdr [2]byte
	binary.LittleEndian.PutUint16(hdr[:], uint16(len(f.Name)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := io.WriteString(w, f.Name); err != nil {
		return err
	}
	var sz [8]byte
	binary.LittleEndian.PutUint64(sz[:], uint64(len(f.Data)))
	if _, err := w.Write(sz[:]); err != nil {
		return err
	}
	if _, err := w.Write(f.Data); err != nil {
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(f.Data))
	_, err := w.Write(crc[:])
	return err
}

func readFrame(r io.Reader) (string, []byte, error) {
	var hdr [2]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return "", nil, err // io.EOF at a frame boundary is clean
	}
	nameLen := int(binary.LittleEndian.Uint16(hdr[:]))
	if nameLen == 0 || nameLen > maxNameLen {
		return "", nil, fmt.Errorf("%w: name length %d", ErrSession, nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(r, name); err != nil {
		return "", nil, fmt.Errorf("gridftp: short name: %w", err)
	}
	var sz [8]byte
	if _, err := io.ReadFull(r, sz[:]); err != nil {
		return "", nil, fmt.Errorf("gridftp: short size: %w", err)
	}
	size := int64(binary.LittleEndian.Uint64(sz[:]))
	if size < 0 || size > maxFileLen {
		return "", nil, fmt.Errorf("%w: size %d", ErrSession, size)
	}
	data := make([]byte, size)
	if _, err := io.ReadFull(r, data); err != nil {
		return "", nil, fmt.Errorf("gridftp: short payload: %w", err)
	}
	var crc [4]byte
	if _, err := io.ReadFull(r, crc[:]); err != nil {
		return "", nil, fmt.Errorf("gridftp: short crc: %w", err)
	}
	if crc32.ChecksumIEEE(data) != binary.LittleEndian.Uint32(crc[:]) {
		return "", nil, ErrChecksum
	}
	return string(name), data, nil
}

// --- Client ---

// Client transfers file batches to one server.
type Client struct {
	addr     string
	channels int
}

// Dial prepares a client for addr with the given data-channel concurrency.
func Dial(addr string, channels int) (*Client, error) {
	if channels <= 0 {
		channels = 4
	}
	if channels > 64 {
		return nil, errors.New("gridftp: too many channels")
	}
	return &Client{addr: addr, channels: channels}, nil
}

// Transfer sends files over parallel data channels and waits for the
// server's integrity confirmation.
func (c *Client) Transfer(ctx context.Context, files []File) (*Summary, error) {
	if len(files) == 0 {
		return &Summary{}, nil
	}
	start := time.Now()

	ctrl, err := net.Dial("tcp", c.addr)
	if err != nil {
		return nil, fmt.Errorf("gridftp: control dial: %w", err)
	}
	defer ctrl.Close()
	if _, err := io.WriteString(ctrl, "CTRL\n"); err != nil {
		return nil, err
	}
	if err := json.NewEncoder(ctrl).Encode(ctrlRequest{Files: len(files), Channels: c.channels}); err != nil {
		return nil, err
	}
	ctrlR := bufio.NewReader(ctrl)
	var hello ctrlReply
	if err := decodeLine(ctrlR, &hello); err != nil {
		return nil, fmt.Errorf("gridftp: handshake: %w", err)
	}
	if !hello.OK {
		return nil, fmt.Errorf("%w: %s", ErrSession, hello.Error)
	}

	// Feed files to channel workers.
	queue := make(chan int)
	channels := c.channels
	if channels > len(files) {
		channels = len(files)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, channels)
	for w := 0; w < channels; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := net.Dial("tcp", c.addr)
			if err != nil {
				errCh <- err //ocelotvet:ok ctxflow errCh is buffered to one slot per worker and each worker sends at most once; the send can never block
				return
			}
			defer conn.Close()
			bw := bufio.NewWriterSize(conn, 256<<10)
			if _, err := io.WriteString(bw, "DATA "+hello.Session+"\n"); err != nil {
				errCh <- err //ocelotvet:ok ctxflow buffered one-slot-per-worker channel; each worker sends at most once, never blocking
				return
			}
			for idx := range queue {
				if err := writeFrame(bw, files[idx]); err != nil {
					errCh <- err //ocelotvet:ok ctxflow buffered one-slot-per-worker channel; each worker sends at most once, never blocking
					return
				}
			}
			if err := bw.Flush(); err != nil {
				errCh <- err //ocelotvet:ok ctxflow buffered one-slot-per-worker channel; each worker sends at most once, never blocking
			}
		}()
	}
feed:
	for i := range files {
		select {
		case <-ctx.Done():
			break feed
		case queue <- i:
		}
	}
	close(queue)
	wg.Wait()
	select {
	case err := <-errCh:
		return nil, fmt.Errorf("gridftp: data channel: %w", err)
	default:
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Await server confirmation.
	var final ctrlReply
	if err := decodeLine(ctrlR, &final); err != nil {
		return nil, fmt.Errorf("gridftp: confirmation: %w", err)
	}
	if !final.OK {
		// The failure reason crosses the control channel as text; restore
		// the typed identity of checksum failures so callers can classify
		// wire corruption (errors.Is(err, ErrChecksum)) and retry it rather
		// than treating it as a permanent protocol error.
		if strings.Contains(final.Error, ErrChecksum.Error()) {
			return nil, fmt.Errorf("%w: server rejected transfer: %s", ErrChecksum, final.Error)
		}
		return nil, fmt.Errorf("%w: %s", ErrSession, final.Error)
	}
	var bytes int64
	for _, f := range files {
		bytes += int64(len(f.Data))
	}
	elapsed := time.Since(start).Seconds()
	sum := &Summary{Files: len(files), Bytes: bytes, Seconds: elapsed}
	if elapsed > 0 {
		sum.MBps = float64(bytes) / 1e6 / elapsed
	}
	return sum, nil
}

func decodeLine(r *bufio.Reader, v interface{}) error {
	line, err := r.ReadString('\n')
	if err != nil {
		return err
	}
	return json.Unmarshal([]byte(line), v)
}
