package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// SpanRecord is one completed span: a named interval with typed
// attributes and a parent link (0 = root). Records are what the tracer
// accumulates and what both export formats serialize.
type SpanRecord struct {
	// ID is the span's tracer-unique id (1-based).
	ID uint64
	// Parent is the enclosing span's id, 0 for a root span.
	Parent uint64
	// Name labels the span (see the span taxonomy in ARCHITECTURE.md).
	Name string
	// Start and End bound the interval.
	Start, End time.Time
	// Attrs carries the span's typed attributes.
	Attrs []Attr
}

// Tracer records spans. The zero value is not usable; construct with
// NewTracer. A Tracer is safe for concurrent use: campaigns start and
// end spans from every stage worker at once.
//
// Cost contract: StartSpan on a disabled tracer is one atomic load; on
// a nil tracer it is a pointer check. Only enabled tracers allocate.
type Tracer struct {
	disabled atomic.Bool
	clock    func() time.Time
	nextID   atomic.Uint64

	mu    sync.Mutex
	spans []SpanRecord
}

// NewTracer returns an enabled tracer on the real clock.
func NewTracer() *Tracer { return &Tracer{clock: time.Now} }

// NewTracerWithClock returns an enabled tracer on an injected clock —
// deterministic span times for golden tests.
func NewTracerWithClock(clock func() time.Time) *Tracer { return &Tracer{clock: clock} }

// SetEnabled flips span recording. A disabled tracer's StartSpan is an
// atomic load returning a nil span — the "instrumented but off" state
// the ObsOverhead artifact prices.
func (t *Tracer) SetEnabled(on bool) { t.disabled.Store(!on) }

// Enabled reports whether the tracer records spans (false for nil).
func (t *Tracer) Enabled() bool { return t != nil && !t.disabled.Load() }

func (t *Tracer) now() time.Time {
	if t.clock == nil {
		return time.Now()
	}
	return t.clock()
}

// Span is one in-flight interval. Methods on a nil *Span are no-ops, so
// call sites never branch on whether tracing is live. End must be called
// on every path once the operation finishes (the spanend analyzer in
// tools/ocelotvet enforces this); double End is idempotent.
type Span struct {
	t      *Tracer
	id     uint64
	parent uint64
	name   string
	start  time.Time

	mu    sync.Mutex
	attrs []Attr
	ended bool
}

// StartSpan opens a span named name, parented to the span carried by ctx
// (when it belongs to this tracer), and returns a derived context
// carrying the new span plus the span itself. Disabled or nil tracers
// return ctx unchanged and a nil span.
func (t *Tracer) StartSpan(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	if t == nil || t.disabled.Load() {
		return ctx, nil
	}
	var parent uint64
	if p, ok := ctx.Value(spanKey).(*Span); ok && p != nil && p.t == t {
		parent = p.id
	}
	s := &Span{t: t, id: t.nextID.Add(1), parent: parent, name: name, start: t.now(), attrs: attrs}
	return context.WithValue(ctx, spanKey, s), s
}

// StartSpan opens a span on whatever tracer ctx carries — the span's own
// tracer if ctx is inside one, else the context bundle's (NewContext).
// Code that only receives a context (the faas chunk function) uses this;
// with no tracer in ctx it returns ctx unchanged and a nil span.
func StartSpan(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	return TracerFromContext(ctx).StartSpan(ctx, name, attrs...)
}

// SpanFromContext returns the span ctx carries, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey).(*Span)
	return s
}

// TracerFromContext resolves the tracer reachable from ctx: the carried
// span's tracer first, else the carried bundle's. Returns nil (a valid,
// disabled tracer receiver) when ctx carries neither.
func TracerFromContext(ctx context.Context) *Tracer {
	if s, ok := ctx.Value(spanKey).(*Span); ok && s != nil {
		return s.t
	}
	if o, ok := ctx.Value(obsKey).(*Obs); ok && o != nil {
		return o.Tracer
	}
	return nil
}

// Annotate appends attributes to an in-flight span (no-op after End or
// on a nil span).
func (s *Span) Annotate(attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.attrs = append(s.attrs, attrs...)
	}
	s.mu.Unlock()
}

// End completes the span and hands its record to the tracer. Idempotent;
// no-op on a nil span.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()
	end := s.t.now()
	s.t.record(SpanRecord{ID: s.id, Parent: s.parent, Name: s.name,
		Start: s.start, End: end, Attrs: attrs})
}

// Record adds an already-completed interval as a span parented to
// parent (nil = root) — how the pipeline engine contributes per-stage
// envelope spans from its timing ledger after the fact. No-op on a nil
// or disabled tracer.
func (t *Tracer) Record(parent *Span, name string, start, end time.Time, attrs ...Attr) {
	if t == nil || t.disabled.Load() {
		return
	}
	var pid uint64
	if parent != nil && parent.t == t {
		pid = parent.id
	}
	t.record(SpanRecord{ID: t.nextID.Add(1), Parent: pid, Name: name,
		Start: start, End: end, Attrs: attrs})
}

func (t *Tracer) record(r SpanRecord) {
	t.mu.Lock()
	t.spans = append(t.spans, r)
	t.mu.Unlock()
}

// Spans snapshots every completed span, ordered by start time (ties by
// id) — deterministic regardless of which goroutine ended which span
// first.
func (t *Tracer) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]SpanRecord, len(t.spans))
	copy(out, t.spans)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// chromeEvent is one trace_event record ("X" = complete event).
type chromeEvent struct {
	Name string                 `json:"name"`
	Cat  string                 `json:"cat"`
	Ph   string                 `json:"ph"`
	TS   float64                `json:"ts"`  // microseconds from trace start
	Dur  float64                `json:"dur"` // microseconds
	PID  int                    `json:"pid"`
	TID  int                    `json:"tid"`
	Args map[string]interface{} `json:"args,omitempty"`
}

// chromeTrace is the container format chrome://tracing and Perfetto load.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome exports the completed spans as Chrome trace_event JSON,
// loadable in chrome://tracing and Perfetto. Spans are laid out on
// synthetic threads (tid lanes) such that each lane nests properly: a
// child shares its parent's lane when it is the innermost open span
// there, and overlapping siblings spill onto fresh lanes — concurrent
// stage work renders side by side instead of garbling one track.
func (t *Tracer) WriteChrome(w io.Writer) error {
	spans := t.Spans()
	lanes := assignLanes(spans)
	var epoch time.Time
	if len(spans) > 0 {
		epoch = spans[0].Start
	}
	events := make([]chromeEvent, 0, len(spans))
	for i, s := range spans {
		args := make(map[string]interface{}, len(s.Attrs)+2)
		args["span"] = s.ID
		if s.Parent != 0 {
			args["parent"] = s.Parent
		}
		for _, a := range s.Attrs {
			args[a.Key] = a.Value()
		}
		events = append(events, chromeEvent{
			Name: s.Name,
			Cat:  "ocelot",
			Ph:   "X",
			TS:   float64(s.Start.Sub(epoch)) / float64(time.Microsecond),
			Dur:  float64(s.End.Sub(s.Start)) / float64(time.Microsecond),
			PID:  1,
			TID:  lanes[i] + 1,
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// assignLanes maps spans (in Spans() order) to nesting-safe lanes: spans
// on one lane always form a stack in time, which is what the trace_event
// "X" renderer assumes per tid.
func assignLanes(spans []SpanRecord) []int {
	type open struct {
		id  uint64
		end time.Time
	}
	var lanes [][]open
	laneOf := make(map[uint64]int, len(spans))
	out := make([]int, len(spans))
	pop := func(l int, now time.Time) {
		st := lanes[l]
		for len(st) > 0 && !st[len(st)-1].end.After(now) {
			st = st[:len(st)-1]
		}
		lanes[l] = st
	}
	for i, s := range spans {
		lane := -1
		if s.Parent != 0 {
			if pl, ok := laneOf[s.Parent]; ok {
				pop(pl, s.Start)
				if st := lanes[pl]; len(st) > 0 && st[len(st)-1].id == s.Parent && !st[len(st)-1].end.Before(s.End) {
					lane = pl
				}
			}
		}
		if lane < 0 {
			for l := range lanes {
				pop(l, s.Start)
				if len(lanes[l]) == 0 {
					lane = l
					break
				}
			}
		}
		if lane < 0 {
			lanes = append(lanes, nil)
			lane = len(lanes) - 1
		}
		lanes[lane] = append(lanes[lane], open{id: s.ID, end: s.End})
		laneOf[s.ID] = lane
		out[i] = lane
	}
	return out
}

// ndjsonSpan is one exported NDJSON span record. Times are relative to
// the trace start so two runs of the same campaign diff structurally.
type ndjsonSpan struct {
	ID      uint64                 `json:"id"`
	Parent  uint64                 `json:"parent,omitempty"`
	Name    string                 `json:"name"`
	StartUS float64                `json:"startUs"`
	DurUS   float64                `json:"durUs"`
	Attrs   map[string]interface{} `json:"attrs,omitempty"`
}

// WriteNDJSON exports the completed spans as newline-delimited JSON, one
// span per line in start order — the machine-diffable companion to the
// Chrome export.
func (t *Tracer) WriteNDJSON(w io.Writer) error {
	spans := t.Spans()
	var epoch time.Time
	if len(spans) > 0 {
		epoch = spans[0].Start
	}
	enc := json.NewEncoder(w)
	for _, s := range spans {
		var attrs map[string]interface{}
		if len(s.Attrs) > 0 {
			attrs = make(map[string]interface{}, len(s.Attrs))
			for _, a := range s.Attrs {
				attrs[a.Key] = a.Value()
			}
		}
		rec := ndjsonSpan{
			ID:      s.ID,
			Parent:  s.Parent,
			Name:    s.Name,
			StartUS: float64(s.Start.Sub(epoch)) / float64(time.Microsecond),
			DurUS:   float64(s.End.Sub(s.Start)) / float64(time.Microsecond),
			Attrs:   attrs,
		}
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("obs: ndjson span %d: %w", s.ID, err)
		}
	}
	return nil
}
