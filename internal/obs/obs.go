// Package obs is the repo's observability layer: span tracing, an
// atomic metrics registry with Prometheus text exposition, and the
// context plumbing that threads both through the campaign engine.
//
// The package is designed around one contract: observability that is
// switched off must cost (almost) nothing. Every entry point is nil-safe
// — StartSpan on a nil or disabled Tracer is an atomic load plus pointer
// checks and returns a nil *Span whose End is a no-op; Counter/Gauge/
// Histogram handles resolved from a nil *Obs or nil *Registry are nil
// pointers whose Add/Set/Observe methods return immediately. Call sites
// therefore instrument unconditionally and let the bundle decide.
//
// The three pillars:
//
//   - Tracing (trace.go): Tracer/Span record named, attributed,
//     parent-linked intervals carried via context.Context, exportable as
//     Chrome trace_event JSON (chrome://tracing, Perfetto) and NDJSON.
//   - Metrics (metrics.go): Registry hands out atomic Counters, Gauges,
//     and log-bucketed Histograms keyed by name + labels, rendered in
//     Prometheus text exposition format by WritePrometheus.
//   - Profiling is stdlib net/http/pprof + expvar; the obs package only
//     defines the conventions — cmd/ocelot mounts the handlers.
package obs

import "context"

// Obs bundles a tracer and a metrics registry — the handle a campaign,
// daemon, or test threads through the layers it wants observed. Either
// field (or the whole bundle) may be nil: every method degrades to a
// no-op through pointer checks alone.
type Obs struct {
	// Tracer records spans; nil (or disabled) means no tracing.
	Tracer *Tracer
	// Metrics is the registry instrumented counters resolve against; nil
	// means no metrics.
	Metrics *Registry
}

// With derives a bundle whose metrics carry additional base labels (the
// serve daemon labels each tenant's campaign metrics this way); the
// tracer is shared. Nil-safe: a nil bundle stays nil.
func (o *Obs) With(labels ...Label) *Obs {
	if o == nil {
		return nil
	}
	return &Obs{Tracer: o.Tracer, Metrics: o.Metrics.With(labels...)}
}

// StartSpan opens a span on the bundle's tracer (see Tracer.StartSpan).
// With no bundle or no tracer it returns ctx unchanged and a nil span.
func (o *Obs) StartSpan(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	if o == nil || o.Tracer == nil {
		return ctx, nil
	}
	return o.Tracer.StartSpan(ctx, name, attrs...)
}

// Counter resolves a counter on the bundle's registry (nil without one).
func (o *Obs) Counter(name string, labels ...Label) *Counter {
	if o == nil {
		return nil
	}
	return o.Metrics.Counter(name, labels...)
}

// Gauge resolves a gauge on the bundle's registry (nil without one).
func (o *Obs) Gauge(name string, labels ...Label) *Gauge {
	if o == nil {
		return nil
	}
	return o.Metrics.Gauge(name, labels...)
}

// Histogram resolves a histogram on the bundle's registry (nil without
// one).
func (o *Obs) Histogram(name string, labels ...Label) *Histogram {
	if o == nil {
		return nil
	}
	return o.Metrics.Histogram(name, labels...)
}

// ctxKey keys the obs values carried in a context.
type ctxKey int

const (
	obsKey ctxKey = iota
	spanKey
)

// NewContext returns a context carrying the bundle, for code that is
// only handed a context (the chunk fan-out function, HTTP handlers).
func NewContext(ctx context.Context, o *Obs) context.Context {
	return context.WithValue(ctx, obsKey, o)
}

// FromContext returns the bundle carried by ctx, or nil.
func FromContext(ctx context.Context) *Obs {
	o, _ := ctx.Value(obsKey).(*Obs)
	return o
}

// AttrKind discriminates an attribute's payload.
type AttrKind uint8

// Attribute payload kinds.
const (
	// AttrString marks a string-valued attribute.
	AttrString AttrKind = iota
	// AttrInt marks an int64-valued attribute.
	AttrInt
	// AttrFloat marks a float64-valued attribute.
	AttrFloat
)

// Attr is one typed span attribute. Exactly one payload field is
// meaningful, selected by Kind; build attrs with String, Int, or Float.
type Attr struct {
	// Key names the attribute.
	Key string
	// Kind selects the payload field.
	Kind AttrKind
	// Str is the payload for AttrString.
	Str string
	// Int is the payload for AttrInt.
	Int int64
	// Float is the payload for AttrFloat.
	Float float64
}

// String builds a string attribute.
func String(key, value string) Attr { return Attr{Key: key, Kind: AttrString, Str: value} }

// Int builds an integer attribute.
func Int(key string, value int64) Attr { return Attr{Key: key, Kind: AttrInt, Int: value} }

// Float builds a float attribute.
func Float(key string, value float64) Attr { return Attr{Key: key, Kind: AttrFloat, Float: value} }

// Value returns the attribute's payload as an interface value (for JSON
// export).
func (a Attr) Value() interface{} {
	switch a.Kind {
	case AttrInt:
		return a.Int
	case AttrFloat:
		return a.Float
	default:
		return a.Str
	}
}
