package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"
)

// testClock returns a deterministic clock ticking 1ms per call.
func testClock() func() time.Time {
	t0 := time.Unix(1700000000, 0)
	n := 0
	return func() time.Time {
		n++
		return t0.Add(time.Duration(n) * time.Millisecond)
	}
}

func TestSpanParentLinks(t *testing.T) {
	tr := NewTracerWithClock(testClock())
	ctx := context.Background()
	ctx, root := tr.StartSpan(ctx, "campaign")
	cctx, child := tr.StartSpan(ctx, "compress")
	_, grand := tr.StartSpan(cctx, "chunk")
	grand.End()
	child.End()
	root.End()

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	byName := map[string]SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["campaign"].Parent != 0 {
		t.Errorf("root parent = %d, want 0", byName["campaign"].Parent)
	}
	if byName["compress"].Parent != byName["campaign"].ID {
		t.Errorf("compress parent = %d, want campaign id %d", byName["compress"].Parent, byName["campaign"].ID)
	}
	if byName["chunk"].Parent != byName["compress"].ID {
		t.Errorf("chunk parent = %d, want compress id %d", byName["chunk"].Parent, byName["compress"].ID)
	}
}

func TestNilAndDisabledSafety(t *testing.T) {
	// Nil everything: every call must no-op without panicking.
	var o *Obs
	ctx, sp := o.StartSpan(context.Background(), "x")
	sp.End()
	sp.Annotate(Int("n", 1))
	o.Counter("c").Inc()
	o.Gauge("g").Set(3)
	o.Histogram("h").Observe(1)
	o.With(L("tenant", "t"))
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer reports enabled")
	}
	if _, s := tr.StartSpan(ctx, "y"); s != nil {
		t.Error("nil tracer handed out a live span")
	}
	tr.Record(nil, "z", time.Now(), time.Now())
	if tr.Spans() != nil {
		t.Error("nil tracer has spans")
	}
	var reg *Registry
	reg.Counter("c").Add(1)
	if err := reg.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if reg.Snapshot() != nil {
		t.Error("nil registry snapshot not nil")
	}

	// Disabled tracer: no spans recorded, ctx unchanged.
	dt := NewTracer()
	dt.SetEnabled(false)
	ctx2, dsp := dt.StartSpan(context.Background(), "off")
	if dsp != nil {
		t.Error("disabled tracer handed out a live span")
	}
	if ctx2 != context.Background() {
		t.Error("disabled tracer derived a new context")
	}
	dsp.End()
	if got := len(dt.Spans()); got != 0 {
		t.Errorf("disabled tracer recorded %d spans", got)
	}
	dt.SetEnabled(true)
	_, s := dt.StartSpan(context.Background(), "on")
	s.End()
	if got := len(dt.Spans()); got != 1 {
		t.Errorf("re-enabled tracer recorded %d spans, want 1", got)
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	tr := NewTracerWithClock(testClock())
	_, sp := tr.StartSpan(context.Background(), "once")
	sp.End()
	sp.End()
	sp.Annotate(Int("late", 1)) // after End: dropped
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("double End recorded %d spans, want 1", len(spans))
	}
	if len(spans[0].Attrs) != 0 {
		t.Error("annotation after End was recorded")
	}
}

func TestChromeExportValid(t *testing.T) {
	tr := NewTracerWithClock(testClock())
	ctx, root := tr.StartSpan(context.Background(), "campaign", Int("fields", 2))
	_, a := tr.StartSpan(ctx, "compress", String("field", "TMQ"))
	a.End()
	_, b := tr.StartSpan(ctx, "transfer")
	b.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string                 `json:"name"`
			Ph   string                 `json:"ph"`
			TS   float64                `json:"ts"`
			Dur  float64                `json:"dur"`
			TID  int                    `json:"tid"`
			Args map[string]interface{} `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("exported %d events, want 3", len(doc.TraceEvents))
	}
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" {
			t.Errorf("event %q has ph %q, want X", e.Name, e.Ph)
		}
		if e.TS < 0 || e.Dur < 0 {
			t.Errorf("event %q has negative ts/dur", e.Name)
		}
		if e.TID < 1 {
			t.Errorf("event %q on tid %d, want >= 1", e.Name, e.TID)
		}
	}
	if doc.TraceEvents[0].Name != "campaign" {
		t.Errorf("first event %q, want campaign (start order)", doc.TraceEvents[0].Name)
	}
	if got := doc.TraceEvents[1].Args["field"]; got != "TMQ" {
		t.Errorf("compress field attr = %v, want TMQ", got)
	}
}

func TestNDJSONExportValid(t *testing.T) {
	tr := NewTracerWithClock(testClock())
	ctx, root := tr.StartSpan(context.Background(), "campaign")
	_, a := tr.StartSpan(ctx, "compress", Float("mbps", 38.5))
	a.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("exported %d lines, want 2", len(lines))
	}
	var first, second map[string]interface{}
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 1 invalid JSON: %v", err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatalf("line 2 invalid JSON: %v", err)
	}
	if first["name"] != "campaign" || second["name"] != "compress" {
		t.Errorf("line order %v, %v; want campaign, compress", first["name"], second["name"])
	}
	if second["parent"] != first["id"] {
		t.Errorf("compress parent %v != campaign id %v", second["parent"], first["id"])
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := &Histogram{}
	h.Observe(0)          // smallest bucket
	h.Observe(1e-7)       // below the smallest finite bound
	h.Observe(1)          // exactly a boundary: counts as ≤ 1
	h.Observe(3)          // lands in the ≤ 4 bucket
	h.Observe(2e6)        // above the largest finite bound: +Inf bucket
	h.Observe(math.NaN()) // dropped
	if got := h.Count(); got != 5 {
		t.Errorf("count = %d, want 5 (NaN dropped)", got)
	}
	if got := h.Sum(); math.Abs(got-(1e-7+1+3+2e6)) > 1e-9 {
		t.Errorf("sum = %g", got)
	}

	reg := NewRegistry()
	rh := reg.Histogram("lat_seconds")
	rh.Observe(0.5)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# TYPE lat_seconds histogram") {
		t.Errorf("missing TYPE line:\n%s", out)
	}
	if !strings.Contains(out, `lat_seconds_bucket{le="+Inf"} 1`) {
		t.Errorf("missing +Inf bucket:\n%s", out)
	}
	if !strings.Contains(out, "lat_seconds_count 1") {
		t.Errorf("missing count:\n%s", out)
	}
	// Cumulative: the ≤ 1 bucket must already include the 0.5 sample.
	if !strings.Contains(out, `lat_seconds_bucket{le="1"} 1`) {
		t.Errorf("0.5 sample missing from le=1 bucket:\n%s", out)
	}
}

func TestRegistryLabelsAndExposition(t *testing.T) {
	reg := NewRegistry()
	climate := reg.With(L("tenant", "climate"))
	physics := reg.With(L("tenant", "physics"))
	climate.Counter("serve_admissions_total").Add(2)
	physics.Counter("serve_admissions_total").Inc()
	climate.Gauge("serve_active_campaigns").Set(1)
	reg.Counter("unlabeled_total").Inc()

	// Views share storage: the parent renders every tenant's series.
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE serve_admissions_total counter",
		`serve_admissions_total{tenant="climate"} 2`,
		`serve_admissions_total{tenant="physics"} 1`,
		`serve_active_campaigns{tenant="climate"} 1`,
		"unlabeled_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// Same (name, labels) resolves to the same handle.
	if reg.Counter("serve_admissions_total", L("tenant", "climate")) !=
		climate.Counter("serve_admissions_total") {
		t.Error("equivalent label sets resolved different counters")
	}

	snap := reg.Snapshot()
	if snap[`serve_admissions_total{tenant="climate"}`] != 2 {
		t.Errorf("snapshot = %v", snap)
	}

	// Label values with quotes and newlines must escape.
	reg.Counter("odd_total", L("v", "a\"b\nc")).Inc()
	buf.Reset()
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `odd_total{v="a\"b\nc"} 1`) {
		t.Errorf("label escaping wrong:\n%s", buf.String())
	}
}

func TestObsContextPlumbing(t *testing.T) {
	tr := NewTracerWithClock(testClock())
	o := &Obs{Tracer: tr, Metrics: NewRegistry()}
	ctx := NewContext(context.Background(), o)
	if FromContext(ctx) != o {
		t.Fatal("FromContext lost the bundle")
	}
	// Package-level StartSpan finds the tracer through the bundle, then
	// through the span itself once one is in flight.
	ctx, root := StartSpan(ctx, "root")
	if root == nil {
		t.Fatal("StartSpan missed the context bundle's tracer")
	}
	_, child := StartSpan(ctx, "child")
	child.End()
	root.End()
	spans := tr.Spans()
	if len(spans) != 2 || spans[1].Parent != spans[0].ID {
		t.Fatalf("context-threaded spans mislinked: %+v", spans)
	}
	if SpanFromContext(ctx) == nil {
		t.Error("SpanFromContext lost the span")
	}
	// A context with no bundle starts nothing.
	if _, s := StartSpan(context.Background(), "free"); s != nil {
		t.Error("StartSpan invented a tracer")
	}
}

func TestTracerRecord(t *testing.T) {
	clock := testClock()
	tr := NewTracerWithClock(clock)
	_, root := tr.StartSpan(context.Background(), "campaign")
	start := clock()
	end := clock()
	tr.Record(root, "stage:compress", start, end, Int("items", 4))
	root.End()
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	var stage SpanRecord
	for _, s := range spans {
		if s.Name == "stage:compress" {
			stage = s
		}
	}
	if stage.ID == 0 || stage.Parent == 0 {
		t.Fatalf("Record span missing or unparented: %+v", stage)
	}
	if !stage.Start.Equal(start) || !stage.End.Equal(end) {
		t.Error("Record did not keep the given interval")
	}
}
