package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension (e.g. tenant="climate").
type Label struct {
	// Key is the label name.
	Key string
	// Value is the label value.
	Value string
}

// L builds a label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotone atomic counter. Methods on a nil *Counter are
// no-ops, so handles resolved from an absent registry cost one pointer
// check per event.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n (negative n is ignored: counters are
// monotone by contract).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the counter (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value (queue depth, active
// campaigns). Methods on a nil *Gauge are no-ops.
type Gauge struct{ v atomic.Int64 }

// Set stores the gauge value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by delta (negative deltas allowed).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value reads the gauge (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram buckets: powers of four from 4^-10 (~1e-6) through 4^10
// (~1e6), plus +Inf — a log-bucketed layout that covers microsecond send
// latencies and thousands-of-MB/s stage rates with 22 buckets.
const (
	histBuckets = 21 // finite boundaries: 4^(i-10), i = 0..20
	histBase    = 4.0
	histMinExp  = -10
)

// Histogram is an atomic log-bucketed histogram (fixed power-of-four
// boundaries). Methods on a nil *Histogram are no-ops. Exposition
// renders cumulative Prometheus-style _bucket/_sum/_count series.
type Histogram struct {
	counts [histBuckets + 1]atomic.Int64 // last bucket is +Inf
	sum    atomic.Uint64                 // float64 bits, CAS-accumulated
	n      atomic.Int64
}

// histBound returns finite bucket boundary i (values ≤ bound land in
// bucket i).
func histBound(i int) float64 { return math.Pow(histBase, float64(i+histMinExp)) }

// Observe records one sample. NaN is dropped; negative and zero samples
// land in the smallest bucket.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	idx := 0
	if v > 0 {
		idx = int(math.Ceil(math.Log2(v)/2)) - histMinExp
		if idx < 0 {
			idx = 0
		} else if idx > histBuckets {
			idx = histBuckets
		}
	}
	h.counts[idx].Add(1)
	h.n.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count reports the number of samples (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum reports the sample sum (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// series is one registered metric instance: a family name, its resolved
// label set, and the live value holder.
type series struct {
	name   string
	labels []Label
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
}

// regState is the storage a Registry (and every labeled view of it)
// shares.
type regState struct {
	mu     sync.RWMutex
	kinds  map[string]string  // family name -> "counter" | "gauge" | "histogram"
	series map[string]*series // series key -> instance
}

// Registry hands out metrics keyed by family name + label set and
// renders them in Prometheus text exposition format. The zero value is
// not usable; construct with NewRegistry. All methods are safe for
// concurrent use, and resolution is a read-locked map hit once a series
// exists — call sites in hot loops should still resolve their handles
// once up front. Methods on a nil *Registry return nil handles, whose
// methods are no-ops.
type Registry struct {
	state *regState
	base  []Label // labels every series resolved through this view carries
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{state: &regState{
		kinds:  make(map[string]string),
		series: make(map[string]*series),
	}}
}

// With derives a view that stamps the given labels onto every series it
// resolves (the serve daemon derives one view per tenant). The view
// shares storage with its parent: WritePrometheus on either renders the
// same series. Nil-safe.
func (r *Registry) With(labels ...Label) *Registry {
	if r == nil || len(labels) == 0 {
		return r
	}
	base := make([]Label, 0, len(r.base)+len(labels))
	base = append(base, r.base...)
	base = append(base, labels...)
	return &Registry{state: r.state, base: base}
}

// resolveLabels merges the view's base labels with the call's, sorted by
// key (later keys win on duplicates after sorting — stable either way
// for exposition).
func (r *Registry) resolveLabels(labels []Label) []Label {
	merged := make([]Label, 0, len(r.base)+len(labels))
	merged = append(merged, r.base...)
	merged = append(merged, labels...)
	sort.SliceStable(merged, func(i, j int) bool { return merged[i].Key < merged[j].Key })
	return merged
}

// seriesKey builds the storage key for one (name, labels) instance.
func seriesKey(name string, labels []Label) string {
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte(0xff)
		b.WriteString(l.Key)
		b.WriteByte(0xfe)
		b.WriteString(l.Value)
	}
	return b.String()
}

// lookup returns the series for key under the read lock, or nil.
func (st *regState) lookup(key string) *series {
	st.mu.RLock()
	s := st.series[key]
	st.mu.RUnlock()
	return s
}

// getOrCreate resolves (name, labels) to its series, creating it (and
// registering the family kind on first sight) when missing.
func (r *Registry) getOrCreate(name, kind string, labels []Label) *series {
	merged := r.resolveLabels(labels)
	key := seriesKey(name, merged)
	if s := r.state.lookup(key); s != nil {
		return s
	}
	r.state.mu.Lock()
	defer r.state.mu.Unlock()
	if s := r.state.series[key]; s != nil {
		return s
	}
	if _, ok := r.state.kinds[name]; !ok {
		r.state.kinds[name] = kind
	}
	s := &series{name: name, labels: merged}
	switch kind {
	case "counter":
		s.ctr = &Counter{}
	case "gauge":
		s.gauge = &Gauge{}
	default:
		s.hist = &Histogram{}
	}
	r.state.series[key] = s
	return s
}

// Counter resolves (creating on first use) the named counter with the
// view's base labels plus the given ones. Nil receiver → nil handle.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.getOrCreate(name, "counter", labels).ctr
}

// Gauge resolves (creating on first use) the named gauge.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.getOrCreate(name, "gauge", labels).gauge
}

// Histogram resolves (creating on first use) the named histogram.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return r.getOrCreate(name, "histogram", labels).hist
}

// snapshotSeries copies the live series list under the read lock, sorted
// by family name then label set, so exposition and snapshots never hold
// the lock while formatting — scrapes do not contend with instrumented
// hot paths beyond the map read.
func (r *Registry) snapshotSeries() ([]*series, map[string]string) {
	r.state.mu.RLock()
	out := make([]*series, 0, len(r.state.series))
	for _, s := range r.state.series {
		out = append(out, s)
	}
	kinds := make(map[string]string, len(r.state.kinds))
	for k, v := range r.state.kinds {
		kinds[k] = v
	}
	r.state.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return labelString(out[i].labels) < labelString(out[j].labels)
	})
	return out, kinds
}

// labelString renders a label set as {k="v",...} ("" when empty),
// escaping backslashes, quotes, and newlines per the exposition format.
func labelString(labels []Label) string {
	return labelStringExtra(labels, "", "")
}

// labelStringExtra renders labels with one extra pair appended (the
// histogram "le" bound); extraKey "" means none.
func labelStringExtra(labels []Label, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraVal))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(v string) string { return labelEscaper.Replace(v) }

// formatFloat renders a sample value the way Prometheus expects.
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every series in Prometheus text exposition
// format (version 0.0.4): `# TYPE` headers per family, one sample line
// per series, cumulative `_bucket`/`_sum`/`_count` triples per
// histogram. Families and series emit in sorted order so consecutive
// scrapes diff cleanly. Nil-safe (writes nothing).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	all, kinds := r.snapshotSeries()
	var b strings.Builder
	lastFamily := ""
	for _, s := range all {
		if s.name != lastFamily {
			fmt.Fprintf(&b, "# TYPE %s %s\n", s.name, kinds[s.name])
			lastFamily = s.name
		}
		switch {
		case s.ctr != nil:
			fmt.Fprintf(&b, "%s%s %d\n", s.name, labelString(s.labels), s.ctr.Value())
		case s.gauge != nil:
			fmt.Fprintf(&b, "%s%s %d\n", s.name, labelString(s.labels), s.gauge.Value())
		case s.hist != nil:
			cum := int64(0)
			for i := 0; i < histBuckets; i++ {
				cum += s.hist.counts[i].Load()
				fmt.Fprintf(&b, "%s_bucket%s %d\n", s.name,
					labelStringExtra(s.labels, "le", formatFloat(histBound(i))), cum)
			}
			cum += s.hist.counts[histBuckets].Load()
			fmt.Fprintf(&b, "%s_bucket%s %d\n", s.name,
				labelStringExtra(s.labels, "le", "+Inf"), cum)
			fmt.Fprintf(&b, "%s_sum%s %s\n", s.name, labelString(s.labels), formatFloat(s.hist.Sum()))
			fmt.Fprintf(&b, "%s_count%s %d\n", s.name, labelString(s.labels), s.hist.Count())
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Snapshot flattens every series to scalar values keyed
// `name{k="v",...}` (histograms contribute `_sum` and `_count`) — the
// inline form CampaignResult carries. Nil-safe (returns nil).
func (r *Registry) Snapshot() map[string]float64 {
	if r == nil {
		return nil
	}
	all, _ := r.snapshotSeries()
	out := make(map[string]float64, len(all))
	for _, s := range all {
		key := s.name + labelString(s.labels)
		switch {
		case s.ctr != nil:
			out[key] = float64(s.ctr.Value())
		case s.gauge != nil:
			out[key] = float64(s.gauge.Value())
		case s.hist != nil:
			out[s.name+"_sum"+labelString(s.labels)] = s.hist.Sum()
			out[s.name+"_count"+labelString(s.labels)] = float64(s.hist.Count())
		}
	}
	return out
}
