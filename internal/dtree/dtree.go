// Package dtree implements a CART-style regression tree (plus a small
// bagged-forest variant) — the machine-learning model the paper uses to
// predict compression ratio, compression time, and PSNR from the extracted
// features (Section VI). Splits minimize within-node variance; training is
// deterministic given the seed.
package dtree

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Params controls tree growth.
type Params struct {
	// MaxDepth limits tree depth; ≤ 0 means 12.
	MaxDepth int `json:"maxDepth"`
	// MinSamplesLeaf is the minimum samples in any leaf; ≤ 0 means 2.
	MinSamplesLeaf int `json:"minSamplesLeaf"`
	// MinImpurityDecrease prunes splits that reduce variance by less than
	// this fraction of the parent impurity; < 0 means 1e-7.
	MinImpurityDecrease float64 `json:"minImpurityDecrease"`
}

func (p Params) withDefaults() Params {
	if p.MaxDepth <= 0 {
		p.MaxDepth = 12
	}
	if p.MinSamplesLeaf <= 0 {
		p.MinSamplesLeaf = 2
	}
	if p.MinImpurityDecrease < 0 {
		p.MinImpurityDecrease = 1e-7
	}
	return p
}

// node is one tree node; leaves have Feature == -1.
type node struct {
	Feature   int     `json:"f"`
	Threshold float64 `json:"t"`
	Value     float64 `json:"v"`
	Left      *node   `json:"l,omitempty"`
	Right     *node   `json:"r,omitempty"`
}

// Tree is a trained regression tree.
type Tree struct {
	Root     *node   `json:"root"`
	NumFeats int     `json:"numFeats"`
	MinY     float64 `json:"minY"`
	MaxY     float64 `json:"maxY"`
	params   Params
}

// ErrNoData indicates an empty training set.
var ErrNoData = errors.New("dtree: empty training set")

// Train fits a regression tree on X (samples × features) and targets y.
func Train(x [][]float64, y []float64, params Params) (*Tree, error) {
	if len(x) == 0 || len(y) == 0 {
		return nil, ErrNoData
	}
	if len(x) != len(y) {
		return nil, fmt.Errorf("dtree: %d samples vs %d targets", len(x), len(y))
	}
	nf := len(x[0])
	for i, row := range x {
		if len(row) != nf {
			return nil, fmt.Errorf("dtree: sample %d has %d features, want %d", i, len(row), nf)
		}
	}
	p := params.withDefaults()
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	minY, maxY := y[0], y[0]
	for _, v := range y {
		minY = math.Min(minY, v)
		maxY = math.Max(maxY, v)
	}
	t := &Tree{NumFeats: nf, MinY: minY, MaxY: maxY, params: p}
	t.Root = grow(x, y, idx, p, 0)
	return t, nil
}

func grow(x [][]float64, y []float64, idx []int, p Params, depth int) *node {
	mean, variance := meanVar(y, idx)
	n := &node{Feature: -1, Value: mean}
	if depth >= p.MaxDepth || len(idx) < 2*p.MinSamplesLeaf || variance <= 0 {
		return n
	}
	feat, thr, gain := bestSplit(x, y, idx, p)
	if feat < 0 || gain < p.MinImpurityDecrease*variance {
		return n
	}
	var left, right []int
	for _, i := range idx {
		if x[i][feat] <= thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < p.MinSamplesLeaf || len(right) < p.MinSamplesLeaf {
		return n
	}
	n.Feature = feat
	n.Threshold = thr
	n.Left = grow(x, y, left, p, depth+1)
	n.Right = grow(x, y, right, p, depth+1)
	return n
}

func meanVar(y []float64, idx []int) (mean, variance float64) {
	if len(idx) == 0 {
		return 0, 0
	}
	var s, ss float64
	for _, i := range idx {
		s += y[i]
		ss += y[i] * y[i]
	}
	nf := float64(len(idx))
	mean = s / nf
	variance = ss/nf - mean*mean
	if variance < 0 {
		variance = 0
	}
	return mean, variance
}

// bestSplit scans every feature with a sorted prefix-sum sweep and returns
// the (feature, threshold) pair with the largest variance reduction.
func bestSplit(x [][]float64, y []float64, idx []int, p Params) (int, float64, float64) {
	bestFeat, bestThr, bestGain := -1, 0.0, 0.0
	n := len(idx)
	_, parentVar := meanVar(y, idx)
	parentSSE := parentVar * float64(n)

	order := make([]int, n)
	for f := 0; f < len(x[idx[0]]); f++ {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool { return x[order[a]][f] < x[order[b]][f] })
		var sumL, sseL float64
		var sumAll, ssAll float64
		for _, i := range order {
			sumAll += y[i]
			ssAll += y[i] * y[i]
		}
		var ssL float64
		for k := 0; k < n-1; k++ {
			yi := y[order[k]]
			sumL += yi
			ssL += yi * yi
			// Can't split between equal feature values.
			if x[order[k]][f] == x[order[k+1]][f] {
				continue
			}
			nl := float64(k + 1)
			nr := float64(n - k - 1)
			if int(nl) < p.MinSamplesLeaf || int(nr) < p.MinSamplesLeaf {
				continue
			}
			sseL = ssL - sumL*sumL/nl
			sumR := sumAll - sumL
			sseR := (ssAll - ssL) - sumR*sumR/nr
			gain := (parentSSE - sseL - sseR) / float64(n)
			if gain > bestGain {
				bestGain = gain
				bestFeat = f
				bestThr = (x[order[k]][f] + x[order[k+1]][f]) / 2
			}
		}
	}
	return bestFeat, bestThr, bestGain
}

// Predict returns the tree's estimate for one feature vector.
func (t *Tree) Predict(features []float64) (float64, error) {
	if len(features) != t.NumFeats {
		return 0, fmt.Errorf("dtree: got %d features, want %d", len(features), t.NumFeats)
	}
	n := t.Root
	for n.Feature >= 0 {
		if features[n.Feature] <= n.Threshold {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return n.Value, nil
}

// Depth returns the tree depth (leaf-only tree has depth 0).
func (t *Tree) Depth() int { return depth(t.Root) }

func depth(n *node) int {
	if n == nil || n.Feature < 0 {
		return 0
	}
	l, r := depth(n.Left), depth(n.Right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// NumLeaves counts the leaves.
func (t *Tree) NumLeaves() int { return leaves(t.Root) }

func leaves(n *node) int {
	if n == nil {
		return 0
	}
	if n.Feature < 0 {
		return 1
	}
	return leaves(n.Left) + leaves(n.Right)
}

// MarshalJSON / UnmarshalJSON give the tree a stable on-disk format.
type treeJSON struct {
	Root     *node   `json:"root"`
	NumFeats int     `json:"numFeats"`
	MinY     float64 `json:"minY"`
	MaxY     float64 `json:"maxY"`
}

// MarshalJSON implements json.Marshaler.
func (t *Tree) MarshalJSON() ([]byte, error) {
	return json.Marshal(treeJSON{Root: t.Root, NumFeats: t.NumFeats, MinY: t.MinY, MaxY: t.MaxY})
}

// UnmarshalJSON implements json.Unmarshaler.
func (t *Tree) UnmarshalJSON(b []byte) error {
	var tj treeJSON
	if err := json.Unmarshal(b, &tj); err != nil {
		return err
	}
	if tj.Root == nil {
		return errors.New("dtree: missing root")
	}
	t.Root = tj.Root
	t.NumFeats = tj.NumFeats
	t.MinY = tj.MinY
	t.MaxY = tj.MaxY
	return nil
}

// Forest is a bagged ensemble of trees (a robustness extension over the
// paper's single decision tree).
type Forest struct {
	Trees []*Tree `json:"trees"`
}

// TrainForest fits nTrees trees on bootstrap resamples of the data.
func TrainForest(x [][]float64, y []float64, params Params, nTrees int, seed int64) (*Forest, error) {
	if nTrees <= 0 {
		nTrees = 10
	}
	if len(x) == 0 {
		return nil, ErrNoData
	}
	rng := rand.New(rand.NewSource(seed))
	f := &Forest{Trees: make([]*Tree, 0, nTrees)}
	for k := 0; k < nTrees; k++ {
		bx := make([][]float64, len(x))
		by := make([]float64, len(y))
		for i := range bx {
			j := rng.Intn(len(x))
			bx[i] = x[j]
			by[i] = y[j]
		}
		t, err := Train(bx, by, params)
		if err != nil {
			return nil, err
		}
		f.Trees = append(f.Trees, t)
	}
	return f, nil
}

// Predict averages the member trees' estimates.
func (f *Forest) Predict(features []float64) (float64, error) {
	if len(f.Trees) == 0 {
		return 0, ErrNoData
	}
	var s float64
	for _, t := range f.Trees {
		v, err := t.Predict(features)
		if err != nil {
			return 0, err
		}
		s += v
	}
	return s / float64(len(f.Trees)), nil
}
