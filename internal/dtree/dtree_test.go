package dtree

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// makeRegression builds a piecewise dataset a tree can fit well.
func makeRegression(n int, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		a, b, c := rng.Float64()*10, rng.Float64()*10, rng.Float64()*10
		x[i] = []float64{a, b, c}
		switch {
		case a < 3:
			y[i] = 1 + 0.01*b
		case a < 7 && b > 5:
			y[i] = 5 + 0.01*c
		default:
			y[i] = 9
		}
	}
	return x, y
}

func TestFitsPiecewiseFunction(t *testing.T) {
	x, y := makeRegression(2000, 1)
	tree, err := Train(x, y, Params{})
	if err != nil {
		t.Fatal(err)
	}
	var sse float64
	for i := range x {
		p, err := tree.Predict(x[i])
		if err != nil {
			t.Fatal(err)
		}
		d := p - y[i]
		sse += d * d
	}
	rmse := math.Sqrt(sse / float64(len(x)))
	if rmse > 0.2 {
		t.Fatalf("train RMSE = %v, tree failed to fit", rmse)
	}
}

func TestGeneralizes(t *testing.T) {
	x, y := makeRegression(2000, 2)
	tree, err := Train(x[:1500], y[:1500], Params{MaxDepth: 8, MinSamplesLeaf: 5})
	if err != nil {
		t.Fatal(err)
	}
	var sse float64
	for i := 1500; i < 2000; i++ {
		p, _ := tree.Predict(x[i])
		d := p - y[i]
		sse += d * d
	}
	rmse := math.Sqrt(sse / 500)
	if rmse > 0.6 {
		t.Fatalf("test RMSE = %v", rmse)
	}
}

func TestConstantTarget(t *testing.T) {
	x := [][]float64{{1}, {2}, {3}, {4}}
	y := []float64{7, 7, 7, 7}
	tree, err := Train(x, y, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Depth() != 0 {
		t.Fatalf("constant target should give a leaf, depth=%d", tree.Depth())
	}
	p, _ := tree.Predict([]float64{99})
	if p != 7 {
		t.Fatalf("predict = %v", p)
	}
}

func TestErrors(t *testing.T) {
	if _, err := Train(nil, nil, Params{}); err != ErrNoData {
		t.Fatal("want ErrNoData")
	}
	if _, err := Train([][]float64{{1}}, []float64{1, 2}, Params{}); err == nil {
		t.Fatal("want length mismatch error")
	}
	if _, err := Train([][]float64{{1}, {1, 2}}, []float64{1, 2}, Params{}); err == nil {
		t.Fatal("want ragged feature error")
	}
	tree, err := Train([][]float64{{1, 2}, {3, 4}}, []float64{1, 2}, Params{MinSamplesLeaf: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tree.Predict([]float64{1}); err == nil {
		t.Fatal("want feature-count error")
	}
}

func TestMaxDepthRespected(t *testing.T) {
	x, y := makeRegression(500, 3)
	for _, d := range []int{1, 2, 4} {
		tree, err := Train(x, y, Params{MaxDepth: d, MinSamplesLeaf: 1})
		if err != nil {
			t.Fatal(err)
		}
		if tree.Depth() > d {
			t.Fatalf("depth %d exceeds max %d", tree.Depth(), d)
		}
	}
}

func TestMinSamplesLeaf(t *testing.T) {
	x, y := makeRegression(200, 4)
	tree, err := Train(x, y, Params{MinSamplesLeaf: 50})
	if err != nil {
		t.Fatal(err)
	}
	if tree.NumLeaves() > 4 {
		t.Fatalf("too many leaves (%d) for MinSamplesLeaf=50", tree.NumLeaves())
	}
}

func TestJSONRoundTrip(t *testing.T) {
	x, y := makeRegression(300, 5)
	tree, err := Train(x, y, Params{MaxDepth: 6})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(tree)
	if err != nil {
		t.Fatal(err)
	}
	var back Tree
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		p1, _ := tree.Predict(x[i])
		p2, _ := back.Predict(x[i])
		if p1 != p2 {
			t.Fatalf("prediction drift after serialization: %v vs %v", p1, p2)
		}
	}
	var bad Tree
	if err := json.Unmarshal([]byte(`{"numFeats":1}`), &bad); err == nil {
		t.Fatal("missing root must error")
	}
}

func TestDeterministic(t *testing.T) {
	x, y := makeRegression(400, 6)
	t1, err := Train(x, y, Params{})
	if err != nil {
		t.Fatal(err)
	}
	t2, err := Train(x, y, Params{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		p1, _ := t1.Predict(x[i])
		p2, _ := t2.Predict(x[i])
		if p1 != p2 {
			t.Fatal("training is not deterministic")
		}
	}
}

// Property: predictions always lie within the training-target range.
func TestPredictionsWithinRangeQuick(t *testing.T) {
	x, y := makeRegression(500, 7)
	tree, err := Train(x, y, Params{})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := y[0], y[0]
	for _, v := range y {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	f := func(a, b, c float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(c) {
			return true
		}
		p, err := tree.Predict([]float64{a, b, c})
		if err != nil {
			return false
		}
		return p >= lo-1e-9 && p <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestForest(t *testing.T) {
	x, y := makeRegression(1000, 8)
	forest, err := TrainForest(x[:800], y[:800], Params{MaxDepth: 8}, 15, 99)
	if err != nil {
		t.Fatal(err)
	}
	var sse float64
	for i := 800; i < 1000; i++ {
		p, err := forest.Predict(x[i])
		if err != nil {
			t.Fatal(err)
		}
		d := p - y[i]
		sse += d * d
	}
	rmse := math.Sqrt(sse / 200)
	if rmse > 0.8 {
		t.Fatalf("forest test RMSE = %v", rmse)
	}
	if _, err := TrainForest(nil, nil, Params{}, 5, 1); err == nil {
		t.Fatal("want error on empty data")
	}
	empty := &Forest{}
	if _, err := empty.Predict([]float64{1, 2, 3}); err == nil {
		t.Fatal("empty forest must error")
	}
}

func BenchmarkTrain(b *testing.B) {
	x, y := makeRegression(2000, 9)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(x, y, Params{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredict(b *testing.B) {
	x, y := makeRegression(2000, 10)
	tree, err := Train(x, y, Params{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tree.Predict(x[i%len(x)]); err != nil {
			b.Fatal(err)
		}
	}
}
