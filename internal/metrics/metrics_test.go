package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestComputeRange(t *testing.T) {
	st := ComputeRange([]float64{3, -1, 4, 1, 5, -9, 2, 6})
	if st.Min != -9 || st.Max != 6 || st.Range != 15 {
		t.Fatalf("got %+v", st)
	}
	if math.Abs(st.Mean-1.375) > 1e-12 {
		t.Fatalf("mean = %v", st.Mean)
	}
}

func TestComputeRangeEdge(t *testing.T) {
	if st := ComputeRange(nil); st.Range != 0 {
		t.Fatal("empty input should be zero stats")
	}
	st := ComputeRange([]float64{math.NaN(), 2, math.NaN(), 4})
	if st.Min != 2 || st.Max != 4 {
		t.Fatalf("NaN skipping broken: %+v", st)
	}
	one := ComputeRange([]float64{7})
	if one.Min != 7 || one.Max != 7 || one.Range != 0 || one.Std != 0 {
		t.Fatalf("single value stats: %+v", one)
	}
}

func TestMSEAndRMSE(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{1, 2, 3, 6}
	m, err := MSE(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m != 1.0 {
		t.Fatalf("MSE = %v want 1", m)
	}
	r, err := RMSE(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if r != 1.0 {
		t.Fatalf("RMSE = %v want 1", r)
	}
	if _, err := MSE(a, b[:2]); err != ErrLengthMismatch {
		t.Fatal("want ErrLengthMismatch")
	}
}

func TestPSNR(t *testing.T) {
	orig := make([]float64, 1000)
	rec := make([]float64, 1000)
	for i := range orig {
		orig[i] = math.Sin(float64(i) / 50)
		rec[i] = orig[i] + 1e-4
	}
	p, err := PSNR(orig, rec)
	if err != nil {
		t.Fatal(err)
	}
	// range ≈ 2, mse = 1e-8 → PSNR = 20log10(2) + 80 ≈ 86 dB.
	if p < 80 || p > 92 {
		t.Fatalf("PSNR = %v, want ~86", p)
	}
	// Perfect reconstruction → +Inf.
	pi, err := PSNR(orig, orig)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(pi, 1) {
		t.Fatalf("perfect PSNR = %v", pi)
	}
}

func TestPSNRMonotoneInError(t *testing.T) {
	orig := make([]float64, 500)
	for i := range orig {
		orig[i] = float64(i % 37)
	}
	var prev = math.Inf(1)
	for _, noise := range []float64{1e-6, 1e-4, 1e-2, 1} {
		rec := make([]float64, len(orig))
		for i := range rec {
			rec[i] = orig[i] + noise
		}
		p, err := PSNR(orig, rec)
		if err != nil {
			t.Fatal(err)
		}
		if p >= prev {
			t.Fatalf("PSNR must fall as error grows: %v !< %v", p, prev)
		}
		prev = p
	}
}

func TestMaxAbsError(t *testing.T) {
	m, err := MaxAbsError([]float64{1, 2, 3}, []float64{1.5, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if m != 1.0 {
		t.Fatalf("max = %v", m)
	}
	if _, err := MaxAbsError([]float64{1}, []float64{}); err == nil {
		t.Fatal("want mismatch error")
	}
}

func TestByteEntropy(t *testing.T) {
	// Constant data has low byte entropy; random data is near 8 bits/byte
	// in the mantissa but constant in exponent, so between the two.
	constant := make([]float64, 4096)
	for i := range constant {
		constant[i] = 1.0
	}
	ce := ByteEntropy(constant, 4)
	if ce > 1.5 {
		t.Fatalf("constant entropy = %v", ce)
	}
	varied := make([]float64, 4096)
	for i := range varied {
		varied[i] = float64(i)*0.7183 + math.Sin(float64(i))
	}
	ve := ByteEntropy(varied, 4)
	if ve <= ce {
		t.Fatalf("varied entropy %v should exceed constant %v", ve, ce)
	}
	if e := ByteEntropy(nil, 4); e != 0 {
		t.Fatalf("empty entropy = %v", e)
	}
	// 8-byte view also works and differs from the 4-byte view.
	if e8 := ByteEntropy(varied, 8); e8 <= 0 {
		t.Fatalf("8-byte entropy = %v", e8)
	}
}

func TestSymbolEntropy(t *testing.T) {
	if e := SymbolEntropy(nil); e != 0 {
		t.Fatal("empty symbol entropy")
	}
	uniform := []int{0, 1, 2, 3, 0, 1, 2, 3}
	if e := SymbolEntropy(uniform); math.Abs(e-2) > 1e-12 {
		t.Fatalf("uniform-4 entropy = %v want 2", e)
	}
	constant := []int{5, 5, 5, 5}
	if e := SymbolEntropy(constant); e != 0 {
		t.Fatalf("constant entropy = %v", e)
	}
}

func TestCompressionRatio(t *testing.T) {
	if r := CompressionRatio(100, 10); r != 10 {
		t.Fatalf("ratio = %v", r)
	}
	if r := CompressionRatio(100, 0); r != 0 {
		t.Fatalf("zero divisor ratio = %v", r)
	}
}

// Property: PSNR is symmetric under adding the same offset to both inputs.
func TestPSNRShiftInvariantQuick(t *testing.T) {
	f := func(offset float64) bool {
		if math.IsNaN(offset) || math.IsInf(offset, 0) || math.Abs(offset) > 1e6 {
			return true
		}
		orig := []float64{1, 2, 3, 4, 5, 6, 7, 8}
		rec := []float64{1.01, 2, 3.01, 4, 5.01, 6, 7.01, 8}
		p1, err1 := PSNR(orig, rec)
		o2 := make([]float64, len(orig))
		r2 := make([]float64, len(rec))
		for i := range orig {
			o2[i] = orig[i] + offset
			r2[i] = rec[i] + offset
		}
		p2, err2 := PSNR(o2, r2)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(p1-p2) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
