// Package metrics provides the data-quality and data-characterization
// metrics used throughout the paper: PSNR (the distortion metric of
// Section VI-C), RMSE, byte-level Shannon entropy (the "chaos level"
// data feature), and basic range statistics (Table I).
package metrics

import (
	"encoding/binary"
	"errors"
	"math"
	"sort"
)

// ErrLengthMismatch indicates two slices of different lengths were compared.
var ErrLengthMismatch = errors.New("metrics: length mismatch")

// RangeStats summarizes a field's value distribution (paper Table I).
type RangeStats struct {
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Range float64 `json:"range"`
	Mean  float64 `json:"mean"`
	Std   float64 `json:"std"`
}

// ComputeRange scans data once and returns its range statistics.
// NaN values are skipped; an all-NaN or empty input yields zeros.
func ComputeRange(data []float64) RangeStats {
	var st RangeStats
	n := 0
	var sum, sumSq float64
	for _, v := range data {
		if math.IsNaN(v) {
			continue
		}
		if n == 0 {
			st.Min, st.Max = v, v
		} else {
			if v < st.Min {
				st.Min = v
			}
			if v > st.Max {
				st.Max = v
			}
		}
		sum += v
		sumSq += v * v
		n++
	}
	if n == 0 {
		return RangeStats{}
	}
	st.Range = st.Max - st.Min
	st.Mean = sum / float64(n)
	variance := sumSq/float64(n) - st.Mean*st.Mean
	if variance > 0 {
		st.Std = math.Sqrt(variance)
	}
	return st
}

// MSE returns the mean squared error between original and reconstructed.
func MSE(original, reconstructed []float64) (float64, error) {
	if len(original) != len(reconstructed) {
		return 0, ErrLengthMismatch
	}
	if len(original) == 0 {
		return 0, nil
	}
	var s float64
	for i := range original {
		d := original[i] - reconstructed[i]
		s += d * d
	}
	return s / float64(len(original)), nil
}

// RMSE returns the root mean squared error.
func RMSE(original, reconstructed []float64) (float64, error) {
	m, err := MSE(original, reconstructed)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(m), nil
}

// PSNR computes the peak signal-to-noise ratio in dB exactly as Z-checker
// does for scientific data: PSNR = 20·log10(range) − 10·log10(MSE), where
// range is the original data's value range. A perfect reconstruction
// returns +Inf.
func PSNR(original, reconstructed []float64) (float64, error) {
	m, err := MSE(original, reconstructed)
	if err != nil {
		return 0, err
	}
	if m == 0 {
		return math.Inf(1), nil
	}
	r := ComputeRange(original).Range
	if r == 0 {
		return math.Inf(1), nil
	}
	return 20*math.Log10(r) - 10*math.Log10(m), nil
}

// MaxAbsError returns the L∞ distance between the slices.
func MaxAbsError(original, reconstructed []float64) (float64, error) {
	if len(original) != len(reconstructed) {
		return 0, ErrLengthMismatch
	}
	var m float64
	for i := range original {
		d := math.Abs(original[i] - reconstructed[i])
		if d > m {
			m = d
		}
	}
	return m, nil
}

// MaxAbsErrorSampled is MaxAbsError over every stride-th point (plus the
// final point, so the tail is never unaudited); stride ≤ 1 audits every
// point. Campaigns use it as the post-decompress bound audit: sampling
// trades a weaker per-point guarantee for less verify-stage CPU on very
// large fields.
func MaxAbsErrorSampled(original, reconstructed []float64, stride int) (float64, error) {
	if stride <= 1 {
		return MaxAbsError(original, reconstructed)
	}
	if len(original) != len(reconstructed) {
		return 0, ErrLengthMismatch
	}
	var m float64
	for i := 0; i < len(original); i += stride {
		if d := math.Abs(original[i] - reconstructed[i]); d > m {
			m = d
		}
	}
	if n := len(original); n > 0 {
		if d := math.Abs(original[n-1] - reconstructed[n-1]); d > m {
			m = d
		}
	}
	return m, nil
}

// ByteEntropy computes the Shannon entropy (bits/byte) of the IEEE-754
// little-endian byte representation of data, matching the paper's byte-level
// information entropy feature. elementSize must be 4 (float32 views) or 8.
func ByteEntropy(data []float64, elementSize int) float64 {
	var counts [256]int
	total := 0
	var buf [8]byte
	for _, v := range data {
		switch elementSize {
		case 4:
			binary.LittleEndian.PutUint32(buf[:4], math.Float32bits(float32(v)))
			for _, b := range buf[:4] {
				counts[b]++
			}
			total += 4
		default:
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			for _, b := range buf[:] {
				counts[b]++
			}
			total += 8
		}
	}
	if total == 0 {
		return 0
	}
	var h float64
	ft := float64(total)
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / ft
		h -= p * math.Log2(p)
	}
	return h
}

// SymbolEntropyFromCounts computes Shannon entropy (bits/symbol) from an
// occurrence-count table, accumulating in index order. It is the single
// entropy kernel shared by SymbolEntropy and the SZ compressor's fused
// frequency pass (which already holds a dense count table and must not pay
// a second walk over the symbol stream). Accumulation order is the
// caller-supplied index order: floating-point summation order must be
// deterministic, because downstream decision-tree training amplifies
// ULP-level feature differences into different split structures.
func SymbolEntropyFromCounts(counts []uint64, total uint64) float64 {
	if total == 0 {
		return 0
	}
	var h float64
	ft := float64(total)
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / ft
		h -= p * math.Log2(p)
	}
	return h
}

// SymbolEntropy computes the Shannon entropy (bits/symbol) of an integer
// symbol stream, used for the quantization-entropy feature. Counting goes
// through a map (symbols may be sparse and unbounded) and the counts are
// then accumulated in sorted-symbol order via SymbolEntropyFromCounts,
// preserving the deterministic summation order identical inputs require
// (a map-ordered sum made identical inputs train different models).
func SymbolEntropy(symbols []int) float64 {
	if len(symbols) == 0 {
		return 0
	}
	counts := make(map[int]int, 256)
	for _, s := range symbols {
		counts[s]++
	}
	syms := make([]int, 0, len(counts))
	for s := range counts {
		syms = append(syms, s)
	}
	sort.Ints(syms)
	ordered := make([]uint64, len(syms))
	for i, s := range syms {
		ordered[i] = uint64(counts[s])
	}
	return SymbolEntropyFromCounts(ordered, uint64(len(symbols)))
}

// CompressionRatio returns originalBytes / compressedBytes.
func CompressionRatio(originalBytes, compressedBytes int) float64 {
	if compressedBytes <= 0 {
		return 0
	}
	return float64(originalBytes) / float64(compressedBytes)
}
