// Package features extracts the compression-quality prediction features of
// the paper's Section VI (Fig 3), grouped into three families:
//
//   - config-based: error bound and compressor pipeline
//   - data-based: min, max, value range, byte-level entropy, average
//     Lorenzo prediction error
//   - compressor-based: p0 (zero-bin fraction), P0 (zero-bin share of the
//     Huffman payload), quantization-bin entropy, and the run-length
//     estimator Rrle = 1 / ((1−p0)·P0 + (1−P0))
//
// Extraction runs on a subsample of the data (the paper uses 1 point in
// 100) so its cost stays below a few percent of the real compression time.
package features

import (
	"fmt"
	"math"

	"ocelot/internal/codec"
	"ocelot/internal/huffman"
	"ocelot/internal/metrics"
	"ocelot/internal/quant"
	"ocelot/internal/sz"
)

// Names lists the feature vector components in order.
var Names = []string{
	"log10_eb",      // config
	"compressor",    // config: predictor enum as float
	"min",           // data
	"max",           // data
	"value_range",   // data
	"byte_entropy",  // data
	"lorenzo_error", // data: average Lorenzo error (log10-compressed)
	"p0",            // compressor
	"P0",            // compressor
	"quant_entropy", // compressor
	"rle_estimator", // compressor
}

// NumFeatures is the length of every feature vector.
var NumFeatures = len(Names)

// Vector is one extracted feature vector.
type Vector struct {
	Log10EB      float64 `json:"log10Eb"`
	Compressor   float64 `json:"compressor"`
	Min          float64 `json:"min"`
	Max          float64 `json:"max"`
	ValueRange   float64 `json:"valueRange"`
	ByteEntropy  float64 `json:"byteEntropy"`
	LorenzoError float64 `json:"lorenzoError"`
	P0Quant      float64 `json:"p0"`
	HuffP0       float64 `json:"P0"`
	QuantEntropy float64 `json:"quantEntropy"`
	Rrle         float64 `json:"rleEstimator"`
}

// Slice returns the vector in Names order, ready for the decision tree.
func (v *Vector) Slice() []float64 {
	return []float64{
		v.Log10EB, v.Compressor, v.Min, v.Max, v.ValueRange,
		v.ByteEntropy, v.LorenzoError, v.P0Quant, v.HuffP0,
		v.QuantEntropy, v.Rrle,
	}
}

// Options tunes extraction cost.
type Options struct {
	// SampleStride takes one point every SampleStride points (paper: 100);
	// ≤ 0 selects 100.
	SampleStride int
	// EntropySampleCap bounds how many values feed the byte-entropy
	// estimate; ≤ 0 selects 1<<16.
	EntropySampleCap int
	// Codec selects whose sampling probe produces the compressor-based
	// features ("" = the default sz3 codec). The quality predictor trains
	// one tree set per codec, so features must come from the probe of the
	// codec whose outcome they predict.
	Codec string
}

func (o Options) withDefaults() Options {
	if o.SampleStride <= 0 {
		o.SampleStride = 100
	}
	if o.EntropySampleCap <= 0 {
		o.EntropySampleCap = 1 << 16
	}
	return o
}

// Extract computes the feature vector for compressing data (shape dims)
// with cfg. Only a subsample of the data is touched.
func Extract(data []float64, dims []int, cfg sz.Config, opts Options) (*Vector, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("features: empty data")
	}
	opts = opts.withDefaults()
	v := &Vector{}

	// Config-based.
	if cfg.ErrorBound <= 0 {
		return nil, fmt.Errorf("features: error bound must be positive")
	}
	v.Log10EB = math.Log10(cfg.ErrorBound)
	pred := cfg.Predictor
	if pred == 0 {
		pred = sz.PredictorInterp
	}
	v.Compressor = float64(pred)

	// Data-based.
	st := metrics.ComputeRange(data)
	v.Min, v.Max, v.ValueRange = st.Min, st.Max, st.Range

	entropyStride := len(data)/opts.EntropySampleCap + 1
	sampled := data
	if entropyStride > 1 {
		sampled = make([]float64, 0, len(data)/entropyStride+1)
		for i := 0; i < len(data); i += entropyStride {
			sampled = append(sampled, data[i])
		}
	}
	v.ByteEntropy = metrics.ByteEntropy(sampled, 4)

	le, err := sz.AvgLorenzoError(data, dims, opts.SampleStride)
	if err != nil {
		return nil, err
	}
	// Compress the dynamic range so the tree sees comparable magnitudes
	// across applications whose scales differ by orders of magnitude.
	v.LorenzoError = math.Log10(le + 1e-18)

	// Compressor-based: quantize the subsample with the target codec's own
	// probe, then derive p0 / P0 / quantization entropy / Rrle from the
	// sampled bin distribution.
	var codes []int
	if opts.Codec == "" || opts.Codec == sz.CodecName {
		codes, err = sz.SampledCodes(data, dims, cfg, opts.SampleStride)
	} else {
		var cdc codec.Codec
		cdc, err = codec.Lookup(opts.Codec)
		if err != nil {
			return nil, fmt.Errorf("features: %w", err)
		}
		codes, err = cdc.Probe(data, dims, codec.Params{AbsErrorBound: cfg.AbsoluteBound(data)}, opts.SampleStride)
	}
	if err != nil {
		return nil, err
	}
	comp, err := FromCodes(codes, quant.DefaultRadius)
	if err != nil {
		return nil, err
	}
	v.P0Quant = comp.P0Quant
	v.HuffP0 = comp.HuffP0
	v.QuantEntropy = comp.QuantEntropy
	v.Rrle = comp.Rrle
	return v, nil
}

// CompressorFeatures holds just the compressor-based family, reusable from
// either a sampling pass or a full compression run's stats.
type CompressorFeatures struct {
	P0Quant      float64
	HuffP0       float64
	QuantEntropy float64
	Rrle         float64
}

// FromCodes derives compressor-based features from quantization codes with
// the given quantizer radius (zero bin = radius).
func FromCodes(codes []int, radius int) (*CompressorFeatures, error) {
	if len(codes) == 0 {
		return nil, fmt.Errorf("features: no quantization codes")
	}
	maxSym := 0
	for _, c := range codes {
		if c < 0 {
			return nil, fmt.Errorf("features: negative code %d", c)
		}
		if c > maxSym {
			maxSym = c
		}
	}
	alphabet := maxSym + 1
	if alphabet < 2*radius {
		alphabet = 2 * radius
	}
	freqs := make([]uint64, alphabet)
	for _, c := range codes {
		freqs[c]++
	}
	zero := radius
	out := &CompressorFeatures{}
	out.P0Quant = float64(freqs[zero]) / float64(len(codes))
	out.QuantEntropy = metrics.SymbolEntropy(codes)

	table, err := huffman.BuildTable(freqs)
	if err != nil {
		return nil, err
	}
	defer table.Release()
	totalBits := 0
	for sym, f := range freqs {
		if f > 0 {
			totalBits += int(f) * int(table.CodeFor(sym).Len)
		}
	}
	if totalBits > 0 {
		out.HuffP0 = float64(uint64(table.CodeFor(zero).Len)*freqs[zero]) / float64(totalBits)
	}
	out.Rrle = Rrle(out.P0Quant, out.HuffP0)
	return out, nil
}

// Rrle computes the paper's run-length estimator feature:
// Rrle = 1 / ((1 − p0)·P0 + (1 − P0)). Unlike the prior work's ad-hoc C1
// formula, it carries no tuned constant; the tree learns its weight.
func Rrle(p0, hp0 float64) float64 {
	den := (1-p0)*hp0 + (1 - hp0)
	if den <= 1e-9 {
		den = 1e-9
	}
	return 1 / den
}
