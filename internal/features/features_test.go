package features

import (
	"math"
	"testing"

	"ocelot/internal/datagen"
	"ocelot/internal/quant"
	"ocelot/internal/sz"
)

func testField(t *testing.T) *datagen.Field {
	t.Helper()
	f, err := datagen.Generate("CESM", "TMQ", 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestExtractBasics(t *testing.T) {
	f := testField(t)
	cfg := sz.DefaultConfig(1e-3)
	v, err := Extract(f.Data, f.Dims, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v.Log10EB != -3 {
		t.Errorf("log10 eb = %v", v.Log10EB)
	}
	if v.Compressor != float64(sz.PredictorInterp) {
		t.Errorf("compressor = %v", v.Compressor)
	}
	if v.ValueRange <= 0 {
		t.Errorf("range = %v", v.ValueRange)
	}
	if v.P0Quant < 0 || v.P0Quant > 1 {
		t.Errorf("p0 = %v", v.P0Quant)
	}
	if v.HuffP0 < 0 || v.HuffP0 > 1 {
		t.Errorf("P0 = %v", v.HuffP0)
	}
	if v.Rrle < 1-1e-9 {
		t.Errorf("Rrle = %v, must be ≥ 1", v.Rrle)
	}
	if len(v.Slice()) != NumFeatures {
		t.Errorf("slice length %d != %d", len(v.Slice()), NumFeatures)
	}
	if len(Names) != NumFeatures {
		t.Errorf("Names length mismatch")
	}
}

func TestP0GrowsWithErrorBound(t *testing.T) {
	f := testField(t)
	var prev float64 = -1
	for _, eb := range []float64{1e-6, 1e-4, 1e-2, 1e-1} {
		v, err := Extract(f.Data, f.Dims, sz.DefaultConfig(eb), Options{SampleStride: 10})
		if err != nil {
			t.Fatal(err)
		}
		if v.P0Quant < prev-0.05 {
			t.Errorf("p0 should broadly grow with eb: eb=%g p0=%.3f prev=%.3f", eb, v.P0Quant, prev)
		}
		prev = v.P0Quant
	}
}

func TestQuantEntropyFallsWithErrorBound(t *testing.T) {
	f := testField(t)
	small, err := Extract(f.Data, f.Dims, sz.DefaultConfig(1e-6), Options{SampleStride: 10})
	if err != nil {
		t.Fatal(err)
	}
	large, err := Extract(f.Data, f.Dims, sz.DefaultConfig(1e-1), Options{SampleStride: 10})
	if err != nil {
		t.Fatal(err)
	}
	if large.QuantEntropy >= small.QuantEntropy {
		t.Errorf("entropy should fall with eb: %.3f !< %.3f", large.QuantEntropy, small.QuantEntropy)
	}
}

func TestSampledFeaturesApproximateFullRun(t *testing.T) {
	f := testField(t)
	cfg := sz.DefaultConfig(1e-3)
	v, err := Extract(f.Data, f.Dims, cfg, Options{SampleStride: 100})
	if err != nil {
		t.Fatal(err)
	}
	// Full compression's Lorenzo-free stats won't match exactly (the real
	// run uses interp over reconstructed values), but p0 should be in the
	// same regime — this mirrors the paper's observation that sampled
	// features are "different from the actual percentage" yet predictive.
	_, st, err := sz.Compress(f.Data, f.Dims, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v.P0Quant-st.P0Quant) > 0.5 {
		t.Errorf("sampled p0 %.3f far from full-run p0 %.3f", v.P0Quant, st.P0Quant)
	}
}

func TestFromCodes(t *testing.T) {
	radius := 8
	zero := radius
	codes := []int{zero, zero, zero, zero + 1, zero - 1, zero, zero, zero}
	cf, err := FromCodes(codes, radius)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cf.P0Quant-0.75) > 1e-12 {
		t.Errorf("p0 = %v want 0.75", cf.P0Quant)
	}
	if cf.QuantEntropy <= 0 {
		t.Errorf("entropy = %v", cf.QuantEntropy)
	}
	if cf.Rrle < 1 {
		t.Errorf("rrle = %v", cf.Rrle)
	}
	if _, err := FromCodes(nil, radius); err == nil {
		t.Error("empty codes must error")
	}
	if _, err := FromCodes([]int{-1}, radius); err == nil {
		t.Error("negative codes must error")
	}
}

func TestRrleFormula(t *testing.T) {
	// p0=1, P0=1 → denominator (1-1)*1 + (1-1) = 0 → clamped, huge value.
	if r := Rrle(1, 1); r < 1e8 {
		t.Errorf("degenerate rrle = %v", r)
	}
	// p0=0 → 1/((1)·P0 + 1−P0) = 1.
	if r := Rrle(0, 0.5); math.Abs(r-1) > 1e-12 {
		t.Errorf("rrle(0,0.5) = %v want 1", r)
	}
	// Monotone in p0 for fixed P0.
	if Rrle(0.9, 0.5) <= Rrle(0.1, 0.5) {
		t.Error("rrle must grow with p0")
	}
}

func TestExtractErrors(t *testing.T) {
	if _, err := Extract(nil, nil, sz.DefaultConfig(1e-3), Options{}); err == nil {
		t.Error("empty data must error")
	}
	f := testField(t)
	if _, err := Extract(f.Data, f.Dims, sz.Config{}, Options{}); err == nil {
		t.Error("zero eb must error")
	}
	if _, err := Extract(f.Data, []int{1, 2, 3}, sz.DefaultConfig(1e-3), Options{}); err == nil {
		t.Error("bad dims must error")
	}
}

func TestEscapeHeavyCodes(t *testing.T) {
	// All escapes: p0 = 0, P0 = 0, Rrle = 1.
	codes := make([]int, 100)
	for i := range codes {
		codes[i] = quant.EscapeCode
	}
	cf, err := FromCodes(codes, 8)
	if err != nil {
		t.Fatal(err)
	}
	if cf.P0Quant != 0 {
		t.Errorf("p0 = %v", cf.P0Quant)
	}
	if math.Abs(cf.Rrle-1) > 1e-9 {
		t.Errorf("rrle = %v", cf.Rrle)
	}
}

func BenchmarkExtract(b *testing.B) {
	f, err := datagen.Generate("CESM", "TMQ", 8, 1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := sz.DefaultConfig(1e-3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Extract(f.Data, f.Dims, cfg, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
