package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"ocelot/internal/core"
	"ocelot/internal/datagen"
	"ocelot/internal/wan"
)

// testFields synthesizes a small dataset quickly.
func testFields(t *testing.T, n int) []*datagen.Field {
	t.Helper()
	fields, err := GenerateFields("CESM", n, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	return fields
}

func postJSON(t *testing.T, url string, body interface{}) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeStatus(t *testing.T, resp *http.Response) JobStatus {
	t.Helper()
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// The daemon round trip: submit over HTTP, watch the NDJSON stream to
// completion, and read the terminal status back.
func TestServeSubmitWatchComplete(t *testing.T) {
	srv := NewServer(Config{
		Transport: &core.SimulatedWANTransport{
			Link:      &wan.Link{BandwidthMBps: 500, Concurrency: 4},
			Timescale: 1e-3,
		},
	})
	srv.WatchInterval = 10 * time.Millisecond
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/v1/campaigns", SubmitRequest{
		Tenant: "climate", Fields: 2, Shrink: 64, Seed: 1,
		Spec: SpecRequest{RelErrorBound: 1e-3, Workers: 2, Groups: 2},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	st := decodeStatus(t, resp)
	if st.ID == "" || st.Tenant != "climate" {
		t.Fatalf("submit returned %+v", st)
	}

	// Watch until terminal.
	wresp, err := http.Get(ts.URL + "/v1/campaigns/" + st.ID + "/watch")
	if err != nil {
		t.Fatal(err)
	}
	defer wresp.Body.Close()
	if ct := wresp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("watch content type %q", ct)
	}
	var last JobStatus
	snapshots := 0
	sc := bufio.NewScanner(wresp.Body)
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("bad watch line %q: %v", sc.Text(), err)
		}
		snapshots++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if snapshots == 0 || !last.Terminal || last.State != "done" {
		t.Fatalf("watch ended after %d snapshots in state %q (terminal=%v, err=%q)",
			snapshots, last.State, last.Terminal, last.Error)
	}
	if last.Campaign == nil || last.Campaign.SentGroups == 0 {
		t.Fatalf("terminal watch snapshot has no campaign progress: %+v", last.Campaign)
	}

	// Status and list agree.
	gresp, err := http.Get(ts.URL + "/v1/campaigns/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got := decodeStatus(t, gresp); got.State != "done" {
		t.Fatalf("status after watch = %q", got.State)
	}
	lresp, err := http.Get(ts.URL + "/v1/campaigns")
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	var list []JobStatus
	if err := json.NewDecoder(lresp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != st.ID {
		t.Fatalf("list = %+v", list)
	}
}

// Cancelling over HTTP mid-stage unwinds the campaign promptly: the link
// below would pace the transfer for minutes, so reaching a terminal
// canceled state within seconds proves mid-send cancellation works
// through the whole daemon stack.
func TestServeCancelMidStage(t *testing.T) {
	srv := NewServer(Config{
		Transport: &core.SimulatedWANTransport{
			Link:      &wan.Link{BandwidthMBps: 0.01, Concurrency: 2},
			Timescale: 1,
		},
	})
	srv.WatchInterval = 10 * time.Millisecond
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/v1/campaigns", SubmitRequest{
		Tenant: "climate", Fields: 2, Shrink: 64, Seed: 1,
		Spec: SpecRequest{RelErrorBound: 1e-3, Workers: 2, Groups: 2},
	})
	st := decodeStatus(t, resp)
	job, err := srv.Scheduler().Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}

	// Wait until bytes are in flight.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if s := job.Status(); s.State == "running" && s.Campaign != nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(30 * time.Millisecond)

	canceledAt := time.Now()
	cresp := postJSON(t, ts.URL+"/v1/campaigns/"+st.ID+"/cancel", nil)
	if cresp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel status %d", cresp.StatusCode)
	}
	cresp.Body.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := job.Wait(ctx); err == nil {
		t.Fatal("cancelled campaign completed without error")
	}
	if lat := time.Since(canceledAt); lat > 3*time.Second {
		t.Errorf("cancel-to-terminal latency %v, want prompt against a minutes-long transfer", lat)
	}
	if got := job.Status(); got.State != "canceled" {
		t.Fatalf("terminal state %q, want canceled", got.State)
	}
}

// A full admission queue answers 429, the backpressure contract.
func TestServeQueueBackpressure(t *testing.T) {
	srv := NewServer(Config{
		Transport: &core.SimulatedWANTransport{
			Link:      &wan.Link{BandwidthMBps: 0.01, Concurrency: 1},
			Timescale: 1,
		},
		MaxRunning: 1,
		QueueDepth: 1,
	})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	req := SubmitRequest{
		Tenant: "t", Fields: 1, Shrink: 64, Seed: 1,
		Spec: SpecRequest{RelErrorBound: 1e-3, Workers: 1, Groups: 1},
	}
	codes := make([]int, 3)
	for i := range codes {
		resp := postJSON(t, ts.URL+"/v1/campaigns", req)
		codes[i] = resp.StatusCode
		resp.Body.Close()
	}
	if codes[0] != http.StatusAccepted || codes[1] != http.StatusAccepted {
		t.Fatalf("first two submits = %v, want 202s", codes[:2])
	}
	if codes[2] != http.StatusTooManyRequests {
		t.Fatalf("third submit = %d, want 429", codes[2])
	}
}

// Unknown campaign IDs and malformed submissions get clean JSON errors.
func TestServeErrorPaths(t *testing.T) {
	srv := NewServer(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	if resp, err := http.Get(ts.URL + "/v1/campaigns/c-404"); err != nil {
		t.Fatal(err)
	} else {
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("unknown ID status %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
	for name, req := range map[string]SubmitRequest{
		"no bound":      {Tenant: "t", Spec: SpecRequest{}},
		"bad engine":    {Tenant: "t", Spec: SpecRequest{RelErrorBound: 1e-3, Engine: "warp"}},
		"bad codec":     {Tenant: "t", Spec: SpecRequest{RelErrorBound: 1e-3, Codec: "nope"}},
		"bad predictor": {Tenant: "t", Spec: SpecRequest{RelErrorBound: 1e-3, Predictor: "psychic"}},
		"bad app":       {Tenant: "t", App: "NOPE", Spec: SpecRequest{RelErrorBound: 1e-3}},
	} {
		resp := postJSON(t, ts.URL+"/v1/campaigns", req)
		var body httpError
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("%s: undecodable error body: %v", name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest || body.Error == "" {
			t.Errorf("%s: status %d body %+v, want 400 with message", name, resp.StatusCode, body)
		}
	}
}

// Per-tenant MaxCampaigns keeps a tenant's second campaign queued while
// its first runs, even with global capacity to spare; cancelling the
// first admits the second.
func TestTenantQuotaAdmission(t *testing.T) {
	sched := NewScheduler(Config{
		Transport: &core.SimulatedWANTransport{
			Link:      &wan.Link{BandwidthMBps: 0.01, Concurrency: 4},
			Timescale: 1,
		},
		Tenants:    map[string]TenantConfig{"capped": {MaxCampaigns: 1}},
		MaxRunning: 4,
	})
	defer sched.Close()

	spec := core.CampaignSpec{RelErrorBound: 1e-3, Workers: 1, GroupParam: 1}
	first, err := sched.Submit(Request{Tenant: "capped", Fields: testFields(t, 1), Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	second, err := sched.Submit(Request{Tenant: "capped", Fields: testFields(t, 1), Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	// An uncapped tenant is admitted immediately alongside.
	other, err := sched.Submit(Request{Tenant: "free", Fields: testFields(t, 1), Spec: spec})
	if err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && other.Status().State == "queued" {
		time.Sleep(2 * time.Millisecond)
	}
	if st := other.Status().State; st == "queued" {
		t.Fatal("uncapped tenant stayed queued despite global capacity")
	}
	time.Sleep(50 * time.Millisecond)
	if st := second.Status().State; st != "queued" {
		t.Fatalf("capped tenant's second campaign is %q, want queued behind the quota", st)
	}

	first.Cancel()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := first.Wait(ctx); err == nil {
		t.Fatal("cancelled first campaign reported success")
	}
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && second.Status().State == "queued" {
		time.Sleep(2 * time.Millisecond)
	}
	if st := second.Status().State; st == "queued" {
		t.Fatal("second campaign not admitted after quota freed")
	}
}

// Priorities order a tenant's own queue: with one running slot, a later
// high-priority submission runs before an earlier low-priority one.
func TestPriorityOrdering(t *testing.T) {
	sched := NewScheduler(Config{MaxRunning: 1})
	defer sched.Close()

	spec := core.CampaignSpec{RelErrorBound: 1e-3, Workers: 1, GroupParam: 1}
	fields := testFields(t, 1)
	// Occupy the lone slot long enough to stack the queue behind it.
	blocker, err := sched.Submit(Request{Tenant: "t", Fields: testFields(t, 2), Spec: core.CampaignSpec{
		RelErrorBound: 1e-3, Workers: 1, GroupParam: 1,
		Transport: nil, // scheduler overrides with its own
	}})
	if err != nil {
		t.Fatal(err)
	}
	low, err := sched.Submit(Request{Tenant: "t", Priority: 0, Fields: fields, Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	high, err := sched.Submit(Request{Tenant: "t", Priority: 5, Fields: fields, Spec: spec})
	if err != nil {
		t.Fatal(err)
	}

	order := make(chan string, 3)
	for name, j := range map[string]*Job{"blocker": blocker, "low": low, "high": high} {
		go func(name string, j *Job) {
			<-j.Done()
			order <- name
		}(name, j)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	got := make([]string, 0, 3)
	for len(got) < 3 {
		select {
		case n := <-order:
			got = append(got, n)
		case <-ctx.Done():
			t.Fatalf("jobs not all terminal; completion order so far %v", got)
		}
	}
	pos := map[string]int{}
	for i, n := range got {
		pos[n] = i
	}
	if pos["high"] > pos["low"] {
		t.Fatalf("completion order %v: priority-5 job finished after priority-0", got)
	}
	for _, j := range []*Job{blocker, low, high} {
		if _, err := j.Result(); err != nil {
			t.Fatalf("job failed: %v", err)
		}
	}
}

// Submitting to a closed scheduler fails; Close leaves every job terminal.
func TestSchedulerClose(t *testing.T) {
	sched := NewScheduler(Config{
		Transport: &core.SimulatedWANTransport{
			Link:      &wan.Link{BandwidthMBps: 0.01, Concurrency: 1},
			Timescale: 1,
		},
		MaxRunning: 1,
	})
	spec := core.CampaignSpec{RelErrorBound: 1e-3, Workers: 1, GroupParam: 1}
	var jobs []*Job
	for i := 0; i < 3; i++ {
		j, err := sched.Submit(Request{Tenant: fmt.Sprintf("t%d", i), Fields: testFields(t, 1), Spec: spec})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	sched.Close()
	for _, j := range jobs {
		select {
		case <-j.Done():
		default:
			t.Fatalf("job %s not terminal after Close", j.ID())
		}
	}
	if _, err := sched.Submit(Request{Tenant: "late", Fields: testFields(t, 1), Spec: spec}); err == nil {
		t.Fatal("submit after Close succeeded")
	}
}
