// Package serve is the multi-tenant campaign service behind `ocelot
// serve`: a scheduler that admits concurrent campaigns from named tenants
// onto a shared transport with weighted-fair bandwidth sharing, per-tenant
// quotas, priorities, and bounded-queue backpressure, plus the HTTP JSON
// API (submit / status / watch / cancel / list) the daemon exposes.
//
// The scheduler builds directly on the re-entrant campaign handles of
// internal/core: every admitted job is a core.Submit handle, watchable and
// cancellable mid-stage, and its transport weight is the owning tenant's
// weight, so campaigns sharing a simulated WAN link split the bandwidth in
// proportion to their tenants' weights.
package serve

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"ocelot/internal/core"
	"ocelot/internal/datagen"
	"ocelot/internal/obs"
)

var (
	// ErrQueueFull is the backpressure signal: the admission queue is at
	// capacity, so the submission is rejected (HTTP 429) rather than
	// buffered without bound.
	ErrQueueFull = errors.New("serve: admission queue full")
	// ErrUnknownJob is returned for campaign IDs the scheduler never issued
	// (or has no record of).
	ErrUnknownJob = errors.New("serve: unknown campaign")
)

// TenantConfig sets one tenant's share and quotas.
type TenantConfig struct {
	// Weight is the tenant's fair share, both for admission order and for
	// the transport-level bandwidth split; ≤ 0 means 1.
	Weight float64 `json:"weight"`
	// MaxCampaigns bounds the tenant's concurrently running campaigns;
	// ≤ 0 means unlimited. Excess submissions queue.
	MaxCampaigns int `json:"maxCampaigns"`
	// MaxBytes bounds the tenant's in-flight raw bytes; ≤ 0 means
	// unlimited. A job that would exceed it queues until the tenant's
	// running volume drains (a job larger than the quota alone is still
	// admitted when nothing of the tenant's runs, so it cannot starve).
	MaxBytes int64 `json:"maxBytes"`
}

// Config tunes the scheduler and the daemon built on it.
type Config struct {
	// Transport is the shared link every campaign's archives ship over;
	// nil means in-process (NopTransport).
	Transport core.Transport
	// Tenants maps tenant names to their configs; submissions from names
	// not listed here use Default.
	Tenants map[string]TenantConfig
	// Default is the config for tenants absent from Tenants.
	Default TenantConfig
	// QueueDepth bounds the number of queued (admitted-but-not-running)
	// campaigns across all tenants; ≤ 0 means 64. Submissions beyond it
	// fail with ErrQueueFull.
	QueueDepth int
	// MaxRunning bounds globally concurrent running campaigns; ≤ 0 means 8.
	MaxRunning int
	// Now injects a clock for tests; nil = time.Now.
	Now func() time.Time
	// BaseContext is the root every campaign context derives from, so an
	// embedding process (daemon shutdown, request-scoped serving) can
	// cancel the whole scheduler from outside; nil means a private root
	// that only Close cancels.
	BaseContext context.Context
	// JournalDir, when non-empty, gives every submitted campaign a durable
	// journal at <JournalDir>/<tenant>/<id>.ocjl (unless the spec already
	// names one), so a daemon restarted after a crash can resume unfinished
	// campaigns from exactly what completed (Server.Recover).
	JournalDir string
	// Metrics is the registry the scheduler (and every campaign it admits)
	// reports into, labeled per tenant; nil means a private registry the
	// daemon's GET /metrics exposes. Supply one to aggregate several
	// schedulers or to scrape in-process.
	Metrics *obs.Registry
}

// Request is one campaign submission.
type Request struct {
	// Tenant names the submitting tenant ("" = "default").
	Tenant string
	// Priority orders the tenant's own queue: higher runs first, ties FIFO.
	Priority int
	// Fields is the data the campaign moves.
	Fields []*datagen.Field
	// Spec describes the campaign; TransportWeight and Transport are
	// overridden by the scheduler (shared link, tenant weight).
	Spec core.CampaignSpec
	// Meta is caller bookkeeping stamped into the campaign journal's begin
	// record when the scheduler journals (Config.JournalDir). The HTTP
	// server stores the original submit request here so Recover can rebuild
	// the campaign's fields and spec from the journal alone.
	Meta map[string]string
}

// JobStatus is the JSON snapshot of one scheduled campaign.
type JobStatus struct {
	// ID is the scheduler-issued campaign ID.
	ID string `json:"id"`
	// Tenant and Priority echo the submission.
	Tenant   string `json:"tenant"`
	Priority int    `json:"priority"`
	// State is "queued" while awaiting admission, then the campaign
	// handle's state (pending/planning/running/done/failed/canceled).
	State string `json:"state"`
	// Terminal reports whether State is final.
	Terminal bool `json:"terminal"`
	// QueuedSec is time spent waiting for admission.
	QueuedSec float64 `json:"queuedSec"`
	// Campaign is the live handle snapshot once the job started.
	Campaign *core.CampaignStatus `json:"campaign,omitempty"`
	// Error carries the terminal failure message, if any.
	Error string `json:"error,omitempty"`
}

// Job is one scheduled campaign: queued until the scheduler admits it,
// then a running core.Campaign handle.
type Job struct {
	id       string
	tenant   string
	priority int
	fields   []*datagen.Field
	spec     core.CampaignSpec
	rawBytes int64
	seq      int64 // FIFO tiebreak within a tenant's priority class

	s *Scheduler

	mu        sync.Mutex
	submitted time.Time
	started   time.Time
	handle    *core.Campaign // nil while queued
	canceled  bool           // cancel requested (possibly before start)
	err       error          // terminal error for never-started jobs
	finished  bool
	done      chan struct{}
}

// ID returns the scheduler-issued campaign ID.
func (j *Job) ID() string { return j.id }

// Tenant returns the owning tenant's name.
func (j *Job) Tenant() string { return j.tenant }

// Done returns a channel closed when the job reaches a terminal state
// (including cancellation while still queued).
func (j *Job) Done() <-chan struct{} { return j.done }

// Result returns the campaign result once terminal; jobs cancelled before
// admission report context.Canceled.
func (j *Job) Result() (*core.CampaignResult, error) {
	j.mu.Lock()
	h := j.handle
	err := j.err
	fin := j.finished
	j.mu.Unlock()
	if h != nil {
		return h.Result()
	}
	if !fin {
		return nil, core.ErrCampaignRunning
	}
	return nil, err
}

// Wait blocks until the job is terminal or ctx dies.
func (j *Job) Wait(ctx context.Context) (*core.CampaignResult, error) {
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-j.done:
		return j.Result()
	}
}

// Cancel stops the job: a queued job leaves the queue immediately, a
// running one unwinds mid-stage through its campaign handle.
func (j *Job) Cancel() { j.s.cancel(j) }

// Status snapshots the job.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	h := j.handle
	submitted := j.submitted
	started := j.started
	canceled := j.canceled
	jerr := j.err
	fin := j.finished
	j.mu.Unlock()

	st := JobStatus{ID: j.id, Tenant: j.tenant, Priority: j.priority}
	now := j.s.now()
	switch {
	case h != nil:
		cs := h.Status()
		st.State = cs.State.String()
		st.Terminal = cs.State.Terminal()
		st.QueuedSec = started.Sub(submitted).Seconds()
		st.Campaign = &cs
		st.Error = cs.Error
	case fin:
		st.State = core.CampaignCanceled.String()
		st.Terminal = true
		st.QueuedSec = now.Sub(submitted).Seconds()
		if jerr != nil {
			st.Error = jerr.Error()
		}
	default:
		st.State = "queued"
		st.QueuedSec = now.Sub(submitted).Seconds()
		if canceled {
			st.State = "canceling"
		}
	}
	return st
}

// tenantState is the scheduler's per-tenant ledger.
type tenantState struct {
	cfg          TenantConfig
	queue        []*Job // admission order: priority desc, then FIFO
	running      int
	runningBytes int64
	// served is raw bytes of completed-or-started work, the numerator of
	// the tenant's virtual time served/weight: the scheduler always admits
	// from the eligible tenant with the smallest virtual time, so service
	// converges to weight proportions.
	served float64
}

func (t *tenantState) weight() float64 {
	if t.cfg.Weight <= 0 {
		return 1
	}
	return t.cfg.Weight
}

// virtualTime is the tenant's weighted service measure; in-flight bytes
// count so a tenant cannot monopolize admission while its work runs.
func (t *tenantState) virtualTime() float64 {
	return (t.served + float64(t.runningBytes)) / t.weight()
}

// hasHeadroom reports whether the tenant's quotas admit a job of size b.
func (t *tenantState) hasHeadroom(b int64) bool {
	if t.cfg.MaxCampaigns > 0 && t.running >= t.cfg.MaxCampaigns {
		return false
	}
	if t.cfg.MaxBytes > 0 && t.running > 0 && t.runningBytes+b > t.cfg.MaxBytes {
		return false
	}
	return true
}

// Scheduler admits campaigns from named tenants onto a shared transport:
// a bounded admission queue per the config, weighted-fair pick order
// across tenants, per-tenant quotas, and priority order within a tenant.
type Scheduler struct {
	cfg       Config
	transport core.Transport
	baseCtx   context.Context
	baseStop  context.CancelFunc
	metrics   *obs.Registry

	mu      sync.Mutex
	tenants map[string]*tenantState
	jobs    map[string]*Job
	order   []string // issue order, for stable listings
	queued  int
	running int
	nextID  int64
	closed  bool
}

// NewScheduler builds a scheduler; Close releases it.
func NewScheduler(cfg Config) *Scheduler {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.MaxRunning <= 0 {
		cfg.MaxRunning = 8
	}
	transport := cfg.Transport
	if transport == nil {
		transport = core.NopTransport{}
	}
	base := cfg.BaseContext
	if base == nil {
		// The one deliberate root: a scheduler not embedded under a caller
		// context is its own lifetime, and Close cancels it.
		base = context.Background() //ocelotvet:ok ctxflow documented fallback root; callers embed via Config.BaseContext and Close cancels this one
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	ctx, stop := context.WithCancel(base)
	return &Scheduler{
		cfg:       cfg,
		transport: transport,
		baseCtx:   ctx,
		baseStop:  stop,
		metrics:   reg,
		tenants:   make(map[string]*tenantState),
		jobs:      make(map[string]*Job),
	}
}

// Metrics is the scheduler's registry — per-tenant admission/queue/active
// series plus every admitted campaign's own series, tenant-labeled. The
// daemon's GET /metrics renders it.
func (s *Scheduler) Metrics() *obs.Registry { return s.metrics }

func (s *Scheduler) now() time.Time {
	if s.cfg.Now != nil {
		return s.cfg.Now()
	}
	return time.Now()
}

// tenantLocked returns (creating on first use) the tenant's state.
func (s *Scheduler) tenantLocked(name string) *tenantState {
	t, ok := s.tenants[name]
	if !ok {
		cfg, known := s.cfg.Tenants[name]
		if !known {
			cfg = s.cfg.Default
		}
		t = &tenantState{cfg: cfg}
		s.tenants[name] = t
	}
	return t
}

// Submit validates and enqueues one campaign, returning its job handle.
// It fails fast — ErrQueueFull under backpressure, spec validation errors
// immediately — and never blocks on the queue.
func (s *Scheduler) Submit(req Request) (*Job, error) {
	if len(req.Fields) == 0 {
		return nil, errors.New("serve: no fields")
	}
	spec := req.Spec
	spec.Transport = s.transport
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	tenant := req.Tenant
	if tenant == "" {
		tenant = "default"
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errors.New("serve: scheduler closed")
	}
	if s.queued >= s.cfg.QueueDepth {
		s.metrics.Counter("serve_rejections_total", obs.L("tenant", tenant)).Inc()
		return nil, fmt.Errorf("%w (%d queued)", ErrQueueFull, s.queued)
	}
	s.nextID++
	ts := s.tenantLocked(tenant)
	spec.TransportWeight = ts.weight()
	s.metrics.Counter("serve_admissions_total", obs.L("tenant", tenant)).Inc()
	if spec.Obs == nil {
		// Every admitted campaign reports into the shared registry under
		// its tenant's label, so GET /metrics shows per-tenant campaign
		// series without each campaign wiring its own bundle.
		spec.Obs = &obs.Obs{Metrics: s.metrics.With(obs.L("tenant", tenant))}
	}
	if s.cfg.JournalDir != "" && spec.Journal == "" {
		spec.Journal = filepath.Join(s.cfg.JournalDir, tenant, fmt.Sprintf("c-%d.ocjl", s.nextID))
		spec.JournalMeta = req.Meta
	}
	j := &Job{
		id:        fmt.Sprintf("c-%d", s.nextID),
		tenant:    tenant,
		priority:  req.Priority,
		fields:    req.Fields,
		spec:      spec,
		seq:       s.nextID,
		s:         s,
		submitted: s.now(),
		done:      make(chan struct{}),
	}
	for _, f := range req.Fields {
		j.rawBytes += int64(f.RawBytes())
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)

	// Insert by priority (desc), FIFO within a class.
	pos := sort.Search(len(ts.queue), func(i int) bool {
		return ts.queue[i].priority < j.priority
	})
	ts.queue = append(ts.queue, nil)
	copy(ts.queue[pos+1:], ts.queue[pos:])
	ts.queue[pos] = j
	s.queued++

	s.dispatchLocked()
	return j, nil
}

// advanceID moves the job-id counter past id, so a recovered daemon's
// fresh submissions never reuse (and truncate) a previous incarnation's
// journal paths.
func (s *Scheduler) advanceID(id int64) {
	s.mu.Lock()
	if id > s.nextID {
		s.nextID = id
	}
	s.mu.Unlock()
}

// dispatchLocked starts queued jobs while global capacity and tenant
// quotas allow, always picking the eligible tenant with the least
// weighted service. Callers hold s.mu.
func (s *Scheduler) dispatchLocked() {
	for s.running < s.cfg.MaxRunning {
		var best *tenantState
		for _, ts := range s.tenants {
			if len(ts.queue) == 0 || !ts.hasHeadroom(ts.queue[0].rawBytes) {
				continue
			}
			if best == nil || ts.virtualTime() < best.virtualTime() ||
				(ts.virtualTime() == best.virtualTime() && ts.queue[0].seq < best.queue[0].seq) {
				best = ts
			}
		}
		if best == nil {
			return
		}
		j := best.queue[0]
		best.queue = best.queue[1:]
		s.queued--
		best.running++
		best.runningBytes += j.rawBytes
		s.running++
		s.startLocked(j, best)
	}
}

// startLocked hands a dequeued job to the campaign engine. Callers hold
// s.mu; the job's own lock is taken for its state flip.
func (s *Scheduler) startLocked(j *Job, ts *tenantState) {
	j.mu.Lock()
	j.started = s.now()
	wait := j.started.Sub(j.submitted).Seconds()
	canceled := j.canceled
	j.mu.Unlock()
	active := s.metrics.Gauge("serve_active_campaigns", obs.L("tenant", j.tenant))
	s.metrics.Histogram("serve_queue_wait_seconds", obs.L("tenant", j.tenant)).Observe(wait)
	active.Add(1)

	finish := func(h *core.Campaign, err error) {
		// Runs unlocked; settles the job and returns capacity.
		j.mu.Lock()
		j.handle = h
		j.err = err
		j.finished = true
		j.mu.Unlock()
		close(j.done)
		active.Add(-1)
		s.mu.Lock()
		ts.running--
		ts.runningBytes -= j.rawBytes
		ts.served += float64(j.rawBytes)
		s.running--
		s.dispatchLocked()
		s.mu.Unlock()
	}

	if canceled {
		go finish(nil, context.Canceled)
		return
	}
	h, err := core.Submit(s.baseCtx, j.fields, j.spec)
	if err != nil {
		go finish(nil, err)
		return
	}
	j.mu.Lock()
	j.handle = h
	if j.canceled {
		// Cancel raced admission: stop the freshly started campaign.
		h.Cancel()
	}
	j.mu.Unlock()
	go func() {
		<-h.Done()
		_, err := h.Result()
		finish(h, err)
	}()
}

// cancel implements Job.Cancel.
func (s *Scheduler) cancel(j *Job) {
	j.mu.Lock()
	if j.finished {
		j.mu.Unlock()
		return
	}
	j.canceled = true
	h := j.handle
	j.mu.Unlock()
	if h != nil {
		h.Cancel()
		return
	}
	// Still queued: pull it out of the tenant queue and settle it here.
	s.mu.Lock()
	ts := s.tenants[j.tenant]
	removed := false
	for i, q := range ts.queue {
		if q == j {
			ts.queue = append(ts.queue[:i], ts.queue[i+1:]...)
			s.queued--
			removed = true
			break
		}
	}
	s.mu.Unlock()
	if removed {
		j.mu.Lock()
		j.err = context.Canceled
		j.finished = true
		j.mu.Unlock()
		close(j.done)
		return
	}
	// The dispatcher grabbed it between our two lock windows; its handle
	// (once set) sees j.canceled in startLocked and cancels there.
	j.mu.Lock()
	if h := j.handle; h != nil {
		j.mu.Unlock()
		h.Cancel()
		return
	}
	j.mu.Unlock()
}

// Get looks a job up by ID.
func (s *Scheduler) Get(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	return j, nil
}

// Jobs lists every known job in submission order.
func (s *Scheduler) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// Close stops the scheduler: queued jobs are cancelled, running campaigns
// unwound, and further submissions rejected. It returns once every job is
// terminal.
func (s *Scheduler) Close() {
	s.mu.Lock()
	s.closed = true
	jobs := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	s.baseStop()
	for _, j := range jobs {
		j.Cancel()
	}
	for _, j := range jobs {
		<-j.Done()
	}
}
