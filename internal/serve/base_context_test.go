package serve

import (
	"context"
	"testing"
	"time"

	"ocelot/internal/core"
)

// TestSchedulerBaseContextCancellation covers the Config.BaseContext
// plumbing added for the ctxflow finding in NewScheduler: the scheduler
// used to mint its own root context unconditionally, so an embedding
// process had no way to tie campaign lifetimes to its own shutdown.
// Cancelling the supplied base must settle submitted jobs with an error
// instead of running them to completion.
func TestSchedulerBaseContextCancellation(t *testing.T) {
	base, cancelBase := context.WithCancel(context.Background())
	sched := NewScheduler(Config{BaseContext: base})
	defer sched.Close()

	cancelBase()
	j, err := sched.Submit(Request{
		Tenant: "t",
		Fields: testFields(t, 1),
		Spec:   core.CampaignSpec{RelErrorBound: 1e-3, Workers: 1, GroupParam: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := j.Wait(ctx); err == nil {
		t.Fatal("job ran to completion under a cancelled base context")
	}
}
