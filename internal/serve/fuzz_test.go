package serve

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
)

// fuzzServer is a shared daemon whose scheduler is closed immediately:
// every fuzzed submission exercises the full decode → spec resolution →
// field synthesis → error-marshalling path without ever running a
// campaign, so the fuzzer spends its budget on the wire layer.
var (
	fuzzServerOnce sync.Once
	fuzzServer     *Server
)

func sharedFuzzServer() *Server {
	fuzzServerOnce.Do(func() {
		fuzzServer = NewServer(Config{})
		fuzzServer.Close()
	})
	return fuzzServer
}

// FuzzServeAPI throws arbitrary bytes at the daemon's wire layer: the
// POST /v1/campaigns decode path (body limit, shrink floor, spec and
// datagen validation) and the status/watch marshalling types. Every
// response must be well-formed JSON with an HTTP status the API
// documents — never a panic, never a non-JSON body.
func FuzzServeAPI(f *testing.F) {
	f.Add([]byte(`{"tenant":"climate","app":"CESM","fields":2,"shrink":48,"seed":7,"spec":{"relErrorBound":1e-3,"engine":"pipelined","workers":2}}`))
	f.Add([]byte(`{"spec":{"relErrorBound":-1}}`))
	f.Add([]byte(`{"app":"nosuch","shrink":1}`))
	f.Add([]byte(`{"spec":{"engine":"warp","predictor":"oracle"}}`))
	f.Add([]byte(`{"tenant":"\u0000","priority":-9,"fields":1000000,"seed":-1,"spec":{"relErrorBound":1e300,"chunkMB":-3}}`))
	f.Add([]byte(`{"id":"c-1","tenant":"t","state":"running","terminal":false,"queuedSec":0.5,"error":"x"}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(``))

	srv := sharedFuzzServer()
	f.Fuzz(func(t *testing.T, body []byte) {
		// Submit path. The scheduler is closed, so every outcome is a 400
		// with a JSON error body; which 400 depends on how far the request
		// gets (decode, shrink floor, spec, datagen, admission).
		req := httptest.NewRequest("POST", "/v1/campaigns", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code != 400 {
			t.Fatalf("submit status = %d, want 400 from a closed scheduler", rec.Code)
		}
		var he httpError
		if err := json.Unmarshal(rec.Body.Bytes(), &he); err != nil || he.Error == "" {
			t.Fatalf("submit error body not JSON {error}: %v %q", err, rec.Body.String())
		}

		// Status and watch lookups with a fuzz-derived campaign ID must
		// 404 with the same JSON error shape.
		id := url.PathEscape(string(body))
		if id == "" || strings.Contains(id, "/") {
			id = "c-none"
		}
		for _, path := range []string{"/v1/campaigns/" + id, "/v1/campaigns/" + id + "/watch"} {
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
			if rec.Code != 404 || !json.Valid(rec.Body.Bytes()) {
				t.Fatalf("GET %s: status %d body %q, want JSON 404", path, rec.Code, rec.Body.String())
			}
		}

		// Status wire type: any bytes that decode as a JobStatus must
		// re-marshal — the watch stream emits these verbatim.
		var st JobStatus
		if err := json.Unmarshal(body, &st); err == nil {
			if _, err := json.Marshal(st); err != nil {
				t.Fatalf("JobStatus round-trip: %v", err)
			}
		}
	})
}

// TestSubmitBodyLimit pins the 1 MiB request-body cap: a multi-megabyte
// submission is cut off mid-decode and rejected, not buffered.
func TestSubmitBodyLimit(t *testing.T) {
	srv := sharedFuzzServer()
	body := append([]byte(`{"tenant":"`), bytes.Repeat([]byte("a"), 2*maxSubmitBody)...)
	body = append(body, []byte(`"}`)...)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/campaigns", bytes.NewReader(body)))
	if rec.Code != 400 || !strings.Contains(rec.Body.String(), "bad request body") {
		t.Fatalf("oversized body: status %d body %q, want 400 bad request body", rec.Code, rec.Body.String())
	}
}

// TestSubmitShrinkFloor pins the MinShrink guard: shrink 1 asks the
// daemon to synthesize near-paper-scale fields and is refused before any
// generation happens, while a sane shrink passes the guard (and here dies
// later, at admission, because the shared scheduler is closed).
func TestSubmitShrinkFloor(t *testing.T) {
	srv := sharedFuzzServer()
	post := func(body string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/campaigns", strings.NewReader(body)))
		return rec
	}
	rec := post(`{"shrink":1,"fields":1,"spec":{"relErrorBound":1e-3}}`)
	if rec.Code != 400 || !strings.Contains(rec.Body.String(), "below minimum") {
		t.Fatalf("shrink 1: status %d body %q, want 400 below minimum", rec.Code, rec.Body.String())
	}
	rec = post(`{"shrink":64,"fields":1,"spec":{"relErrorBound":1e-3}}`)
	if rec.Code != 400 || !strings.Contains(rec.Body.String(), "scheduler closed") {
		t.Fatalf("shrink 64: status %d body %q, want to reach admission", rec.Code, rec.Body.String())
	}
}
