package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"sort"
	"time"

	"ocelot/internal/core"
	"ocelot/internal/datagen"
	"ocelot/internal/journal"
	"ocelot/internal/sz"
)

// SubmitRequest is the POST /v1/campaigns body: which tenant submits, how
// to synthesize the campaign's fields, and the campaign spec.
type SubmitRequest struct {
	// Tenant names the submitting tenant ("" = "default").
	Tenant string `json:"tenant"`
	// Priority orders the tenant's queue; higher runs first.
	Priority int `json:"priority"`
	// App, Fields, Shrink, Seed parameterize the synthetic dataset
	// (datagen.Generate over the app's field list). Fields ≤ 0 means 4,
	// Shrink ≤ 0 means 24, App "" means CESM. Shrink values in
	// [1, MinShrink) are rejected: they ask the daemon to materialize
	// near-paper-scale fields on behalf of a remote caller.
	App    string `json:"app"`
	Fields int    `json:"fields"`
	Shrink int    `json:"shrink"`
	Seed   int64  `json:"seed"`
	// Spec describes the campaign itself.
	Spec SpecRequest `json:"spec"`
}

// SpecRequest is the wire form of core.CampaignSpec (the subset a remote
// submitter controls; the daemon owns the transport and tenant weight).
type SpecRequest struct {
	// RelErrorBound is the relative error bound (required, > 0).
	RelErrorBound float64 `json:"relErrorBound"`
	// Codec names the compressor ("" = sz3).
	Codec string `json:"codec"`
	// Predictor is the sz predictor name ("" = interp).
	Predictor string `json:"predictor"`
	// Workers bounds compression parallelism; ≤ 0 = 4.
	Workers int `json:"workers"`
	// Groups is the by-world-size group count (0 = worker count).
	Groups int64 `json:"groups"`
	// Engine is pipelined (default), barrier, or sequential.
	Engine string `json:"engine"`
	// Streams is the transfer-stream count (0 = link concurrency).
	Streams int `json:"streams"`
	// ChunkMB > 0 fans compression out chunk-wise (raw MB per chunk).
	ChunkMB float64 `json:"chunkMB"`
	// CompressWorkers is the fan-out endpoint's worker count (0 = Workers).
	CompressWorkers int `json:"compressWorkers"`
}

// Campaign resolves the wire spec into a core.CampaignSpec.
func (r SpecRequest) Campaign() (core.CampaignSpec, error) {
	engine, err := core.ParseEngine(r.Engine)
	if err != nil {
		return core.CampaignSpec{}, err
	}
	pred, err := sz.ParsePredictor(orDefault(r.Predictor, "interp"))
	if err != nil {
		return core.CampaignSpec{}, err
	}
	return core.CampaignSpec{
		RelErrorBound:   r.RelErrorBound,
		Predictor:       pred,
		Codec:           r.Codec,
		Workers:         r.Workers,
		GroupParam:      r.Groups,
		Engine:          engine,
		TransferStreams: r.Streams,
		ChunkMB:         r.ChunkMB,
		CompressWorkers: r.CompressWorkers,
	}, nil
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

// GenerateFields synthesizes the dataset a SubmitRequest describes.
func GenerateFields(app string, n, shrink int, seed int64) ([]*datagen.Field, error) {
	if app == "" {
		app = "CESM"
	}
	if n <= 0 {
		n = 4
	}
	if shrink <= 0 {
		shrink = 24
	}
	available := datagen.Fields(app)
	if len(available) == 0 {
		return nil, fmt.Errorf("serve: unknown app %q", app)
	}
	if n > len(available) {
		n = len(available)
	}
	fields := make([]*datagen.Field, 0, n)
	for _, name := range available[:n] {
		f, err := datagen.Generate(app, name, shrink, seed)
		if err != nil {
			return nil, err
		}
		fields = append(fields, f)
	}
	return fields, nil
}

// Server is the daemon: a scheduler plus its HTTP JSON API.
//
// Routes (JSON unless noted):
//
//	POST   /v1/campaigns            submit; 202 + JobStatus, 429 when full
//	GET    /v1/campaigns            list every campaign's JobStatus
//	GET    /v1/campaigns/{id}       one campaign's JobStatus
//	GET    /v1/campaigns/{id}/watch NDJSON JobStatus stream until terminal
//	POST   /v1/campaigns/{id}/cancel request cancellation; 202 + JobStatus
//	GET    /v1/healthz              liveness probe (also at /healthz)
//	GET    /healthz                 alias for /v1/healthz (probe convention)
//	GET    /metrics                 Prometheus text exposition (per-tenant)
type Server struct {
	sched *Scheduler
	mux   *http.ServeMux
	// WatchInterval is the /watch poll cadence; 0 means 100ms.
	WatchInterval time.Duration
}

// NewServer builds the daemon around a fresh scheduler.
func NewServer(cfg Config) *Server {
	s := &Server{sched: NewScheduler(cfg), mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/campaigns", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/campaigns", s.handleList)
	s.mux.HandleFunc("GET /v1/campaigns/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/campaigns/{id}/watch", s.handleWatch)
	s.mux.HandleFunc("POST /v1/campaigns/{id}/cancel", s.handleCancel)
	// Liveness at both the versioned path and the bare conventional one —
	// load balancers and container probes default to /healthz.
	healthz := func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	}
	s.mux.HandleFunc("GET /v1/healthz", healthz)
	s.mux.HandleFunc("GET /healthz", healthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// handleMetrics renders the scheduler's registry in the Prometheus text
// exposition format (version 0.0.4): scheduler series and every admitted
// campaign's series, tenant-labeled.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.sched.Metrics().WritePrometheus(w)
}

// Scheduler exposes the underlying scheduler (tests and in-process use).
func (s *Server) Scheduler() *Scheduler { return s.sched }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close cancels every campaign and stops admitting new ones.
func (s *Server) Close() { s.sched.Close() }

// maxSubmitBody caps the POST /v1/campaigns body. A well-formed submit
// request is a few hundred bytes; anything beyond 1 MiB is a client bug
// or a memory-exhaustion attempt, and the decoder stops reading there.
const maxSubmitBody = 1 << 20

// MinShrink is the smallest dataset shrink factor a remote submission may
// request. Shrink 1 is paper scale — gigabytes per field — which a daemon
// must not synthesize just because an HTTP body asked for it. In-process
// callers that really want full scale can build fields themselves and use
// Scheduler.Submit directly.
const MinShrink = 4

// httpError is the error body every route returns.
type httpError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, httpError{Error: err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSubmitBody)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad request body: %w", err))
		return
	}
	if req.Shrink > 0 && req.Shrink < MinShrink {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("serve: shrink %d below minimum %d (near-paper-scale fields are not served remotely)", req.Shrink, MinShrink))
		return
	}
	spec, err := req.Spec.Campaign()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	fields, err := GenerateFields(req.App, req.Fields, req.Shrink, req.Seed)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	job, err := s.sched.Submit(Request{
		Tenant:   req.Tenant,
		Priority: req.Priority,
		Fields:   fields,
		Spec:     spec,
		Meta:     submitMeta(req),
	})
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrQueueFull) {
			status = http.StatusTooManyRequests
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusAccepted, job.Status())
}

// metaSubmit is the journal-meta key under which the daemon stores the
// original submit request, so Recover can rebuild a campaign's fields and
// spec from its journal alone.
const metaSubmit = "submit"

// submitMeta serializes the submit request into journal metadata. The
// request already round-tripped through the decoder, so marshalling cannot
// fail; a nil map keeps un-journaled schedulers meta-free.
func submitMeta(req SubmitRequest) map[string]string {
	b, err := json.Marshal(req)
	if err != nil {
		return nil
	}
	return map[string]string{metaSubmit: string(b)}
}

// Recover scans the scheduler's journal directory for campaigns a previous
// daemon incarnation left unfinished and re-submits each one as a resume:
// the new job re-executes only the groups its journal never acked and
// reproduces the original campaign's ReconDigest. Journals marked done are
// left alone; unreadable or foreign journals (no stored submit request) are
// reported in errs and skipped. No-op unless Config.JournalDir was set.
func (s *Server) Recover() (resumed []*Job, errs []error) {
	dir := s.sched.cfg.JournalDir
	if dir == "" {
		return nil, nil
	}
	paths, err := filepath.Glob(filepath.Join(dir, "*", "*.ocjl"))
	if err != nil {
		return nil, []error{err}
	}
	sort.Strings(paths)
	// Push the id counter past every journal on disk — done or not — so a
	// fresh submission never stamps a path that truncates old state.
	for _, path := range paths {
		var id int64
		if _, err := fmt.Sscanf(filepath.Base(path), "c-%d.ocjl", &id); err == nil {
			s.sched.advanceID(id)
		}
	}
	for _, path := range paths {
		m, err := journal.Load(path)
		if err != nil {
			errs = append(errs, fmt.Errorf("serve: recover %s: %w", path, err))
			continue
		}
		if m.Done {
			continue
		}
		raw, ok := m.Meta[metaSubmit]
		if !ok {
			errs = append(errs, fmt.Errorf("serve: recover %s: journal has no stored submit request", path))
			continue
		}
		var req SubmitRequest
		if err := json.Unmarshal([]byte(raw), &req); err != nil {
			errs = append(errs, fmt.Errorf("serve: recover %s: stored submit request: %w", path, err))
			continue
		}
		spec, err := req.Spec.Campaign()
		if err != nil {
			errs = append(errs, fmt.Errorf("serve: recover %s: %w", path, err))
			continue
		}
		fields, err := GenerateFields(req.App, req.Fields, req.Shrink, req.Seed)
		if err != nil {
			errs = append(errs, fmt.Errorf("serve: recover %s: %w", path, err))
			continue
		}
		spec.Journal = path
		spec.ResumeFrom = path
		spec.JournalMeta = m.Meta
		job, err := s.sched.Submit(Request{
			Tenant:   req.Tenant,
			Priority: req.Priority,
			Fields:   fields,
			Spec:     spec,
		})
		if err != nil {
			errs = append(errs, fmt.Errorf("serve: recover %s: %w", path, err))
			continue
		}
		resumed = append(resumed, job)
	}
	return resumed, errs
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.sched.Jobs()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	j, err := s.sched.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return nil, false
	}
	return j, true
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.job(w, r); ok {
		writeJSON(w, http.StatusOK, j.Status())
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.job(w, r); ok {
		j.Cancel()
		writeJSON(w, http.StatusAccepted, j.Status())
	}
}

// handleWatch streams newline-delimited JobStatus JSON until the campaign
// is terminal, flushing after every snapshot so clients see progress live.
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	interval := s.WatchInterval
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		st := j.Status()
		if err := enc.Encode(st); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		if st.Terminal {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-j.Done():
			// Emit the terminal snapshot on the next loop pass.
		case <-ticker.C:
		}
	}
}
