package serve

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"ocelot/internal/core"
	"ocelot/internal/sentinel"
	"ocelot/internal/wan"
)

// TestServeIntegrityStressCorruptingFlappingLink pushes 16 concurrent
// campaigns through the scheduler over ONE shared link that both drops
// sends (flaps, rejected before pacing) and corrupts delivered payloads
// (injected after pacing, so retransmits consume real link capacity).
// Run under -race this is the daemon's end-to-end integrity torture test.
// It asserts:
//
//   - every campaign reaches a terminal done state with a ReconDigest
//     bit-identical to a clean single-campaign reference run;
//   - delivery accounting stays exact under retransmission — each job's
//     observed SentBytes equals GroupedBytes + RetransmitBytes exactly;
//   - aggregate throughput (including every retransmitted byte) respects
//     the shared link's bandwidth.
func TestServeIntegrityStressCorruptingFlappingLink(t *testing.T) {
	if testing.Short() {
		t.Skip("16-campaign corruption stress")
	}
	const (
		campaigns = 16
		bwMBps    = 50.0
		scale     = 1.0
	)

	// One shared read-only dataset; a clean journaled reference run pins
	// the digest every chaos campaign must reproduce.
	fields := testFields(t, 2)
	spec := core.CampaignSpec{
		RelErrorBound:   1e-3,
		Workers:         2,
		GroupParam:      2,
		TransferStreams: 2,
		Retry: sentinel.RetryPolicy{
			MaxAttempts: 10,
			BaseBackoff: time.Millisecond,
			MaxBackoff:  4 * time.Millisecond,
		},
	}
	refSpec := spec
	refSpec.Transport = core.NopTransport{}
	refSpec.Journal = filepath.Join(t.TempDir(), "ref.ocjl")
	ref, err := core.Run(context.Background(), fields, refSpec)
	if err != nil {
		t.Fatal(err)
	}
	if ref.ReconDigest == 0 {
		t.Fatal("reference run produced no digest")
	}

	link := &wan.Link{
		Name:          "dirty-flap",
		BandwidthMBps: bwMBps,
		Concurrency:   4,
		Faults: &wan.Faults{
			SendErrProb: 0.15,
			CorruptProb: 0.2,
			CorruptMode: wan.CorruptMix,
			Seed:        17,
		},
	}
	sched := NewScheduler(Config{
		Transport:  &core.SimulatedWANTransport{Link: link, Timescale: scale},
		MaxRunning: 8,
		QueueDepth: campaigns,
	})
	defer sched.Close()

	// Per-request journals (the scheduler preserves them when it has no
	// JournalDir of its own) turn the digest pass on for every campaign.
	jdir := t.TempDir()
	start := time.Now()
	jobs := make([]*Job, 0, campaigns)
	for i := 0; i < campaigns; i++ {
		js := spec
		js.Journal = filepath.Join(jdir, fmt.Sprintf("job-%02d.ocjl", i))
		j, err := sched.Submit(Request{Tenant: fmt.Sprintf("t%d", i%4), Fields: fields, Spec: js})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		jobs = append(jobs, j)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	for _, j := range jobs {
		if _, err := j.Wait(ctx); err != nil {
			t.Fatalf("job %s did not complete: %v", j.ID(), err)
		}
	}
	wallSec := time.Since(start).Seconds()

	var totalSent, totalCorrupt, totalRetransmits int64
	for _, j := range jobs {
		res, err := j.Result()
		if err != nil {
			t.Fatalf("job %s failed: %v", j.ID(), err)
		}
		st := j.Status()
		if st.State != "done" || st.Campaign == nil {
			t.Fatalf("job %s terminal state %q with campaign %v", j.ID(), st.State, st.Campaign)
		}
		if res.ReconDigest != ref.ReconDigest {
			t.Errorf("job %s: digest %016x != clean reference %016x — corruption escaped into the result",
				j.ID(), res.ReconDigest, ref.ReconDigest)
		}
		if st.Campaign.SentBytes != res.GroupedBytes+res.RetransmitBytes+res.DegradedBytes {
			t.Errorf("job %s: observed SentBytes %d != grouped %d + retransmit %d + degraded %d",
				j.ID(), st.Campaign.SentBytes, res.GroupedBytes, res.RetransmitBytes, res.DegradedBytes)
		}
		if st.Campaign.CorruptGroups != int64(res.CorruptGroups) || st.Campaign.Retransmits != int64(res.Retransmits) {
			t.Errorf("job %s: status integrity ledger (%d, %d) != result (%d, %d)",
				j.ID(), st.Campaign.CorruptGroups, st.Campaign.Retransmits, res.CorruptGroups, res.Retransmits)
		}
		if len(res.DegradedFields) != 0 {
			t.Errorf("job %s: corruption-only chaos degraded fields %v", j.ID(), res.DegradedFields)
		}
		totalSent += st.Campaign.SentBytes
		totalCorrupt += int64(res.CorruptGroups)
		totalRetransmits += int64(res.Retransmits)
	}
	if totalCorrupt == 0 {
		t.Error("no corrupted deliveries across 16 campaigns on a p=0.2 link — injection not reaching the verify path")
	}
	if totalRetransmits < totalCorrupt {
		t.Errorf("%d retransmits below %d corrupted groups — a corrupted group completed unrecovered", totalRetransmits, totalCorrupt)
	}

	// Corruption is injected after pacing, so every retransmitted byte paid
	// for link time: aggregate throughput including retransmits must still
	// respect the shared link.
	simSec := wallSec / scale
	throughput := float64(totalSent) / 1e6 / simSec
	if throughput > bwMBps*1.02 {
		t.Errorf("aggregate throughput %.1f MB/s exceeds shared link bandwidth %.1f MB/s", throughput, bwMBps)
	}
	t.Logf("16 campaigns, %d corrupt deliveries, %d retransmits, %.1f MB aggregate in %.1fs sim (%.1f MB/s on a %.0f MB/s link)",
		totalCorrupt, totalRetransmits, float64(totalSent)/1e6, simSec, throughput, bwMBps)
}
