package serve

import (
	"context"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"ocelot/internal/core"
	"ocelot/internal/journal"
	"ocelot/internal/wan"
)

// TestServerJournalRecovery is the daemon-restart drill: submit over HTTP
// to a journaling daemon, kill the campaign mid-transfer, tear the daemon
// down, and let a fresh incarnation Recover from the journal directory.
// The recovered campaign must resume (not restart), skip exactly the
// journal-acked groups, and reproduce the uninterrupted run's ReconDigest.
func TestServerJournalRecovery(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	// Incarnation 1: a crawling link so the kill lands with work undone.
	srvA := NewServer(Config{
		Transport: &core.SimulatedWANTransport{
			Link:      &wan.Link{Name: "crawl", BandwidthMBps: 0.5, PerFileOverheadSec: 0.01, Concurrency: 1},
			Timescale: 1,
		},
		JournalDir: dir,
	})
	tsA := httptest.NewServer(srvA)
	req := SubmitRequest{
		Tenant: "climate", Fields: 4, Shrink: 64, Seed: 3,
		Spec: SpecRequest{RelErrorBound: 1e-3, Workers: 2, Groups: 4},
	}
	resp := postJSON(t, tsA.URL+"/v1/campaigns", req)
	st := decodeStatus(t, resp)
	job, err := srvA.Scheduler().Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	jpath := filepath.Join(dir, "climate", st.ID+".ocjl")

	// Kill once the journal proves at least one group made it end to end.
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if m, err := journal.Load(jpath); err == nil && m.AckedGroups() >= 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	job.Cancel()
	<-job.Done()
	tsA.Close()
	srvA.Close()

	pre, err := journal.Load(jpath)
	if err != nil {
		t.Fatalf("journal unreadable after daemon death: %v", err)
	}
	if pre.Done {
		t.Skip("campaign finished before the kill landed; nothing to recover")
	}
	preAcked := pre.AckedGroups()

	// Ground truth: the same request run uninterrupted.
	refSpec, err := req.Spec.Campaign()
	if err != nil {
		t.Fatal(err)
	}
	refFields, err := GenerateFields(req.App, req.Fields, req.Shrink, req.Seed)
	if err != nil {
		t.Fatal(err)
	}
	refSpec.Journal = filepath.Join(t.TempDir(), "ref.ocjl")
	refSpec.Transport = core.NopTransport{}
	ref, err := core.Run(ctx, refFields, refSpec)
	if err != nil {
		t.Fatal(err)
	}

	// Incarnation 2: fresh daemon, same journal directory.
	srvB := NewServer(Config{JournalDir: dir})
	defer srvB.Close()
	resumed, errs := srvB.Recover()
	for _, e := range errs {
		t.Errorf("recover error: %v", e)
	}
	if len(resumed) != 1 {
		t.Fatalf("recovered %d campaigns, want 1", len(resumed))
	}
	// The id counter advanced past the dead incarnation's journals, so the
	// recovered job (and any fresh submission) gets a new id.
	if resumed[0].ID() == st.ID {
		t.Errorf("recovered job reused id %s", st.ID)
	}

	wctx, cancel := context.WithTimeout(ctx, time.Minute)
	defer cancel()
	res, err := resumed[0].Wait(wctx)
	if err != nil {
		t.Fatalf("recovered campaign failed: %v", err)
	}
	if !res.Resumed {
		t.Error("recovered campaign did not resume from the journal")
	}
	if res.SkippedGroups != preAcked {
		t.Errorf("resume skipped %d groups, journal had %d acked", res.SkippedGroups, preAcked)
	}
	if res.ReconDigest != ref.ReconDigest {
		t.Errorf("recovered digest %016x != uninterrupted %016x", res.ReconDigest, ref.ReconDigest)
	}
	post, err := journal.Load(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if !post.Done {
		t.Error("journal not marked done after recovery")
	}

	// With everything done, a second Recover finds nothing to resume.
	again, errs := srvB.Recover()
	for _, e := range errs {
		t.Errorf("second recover error: %v", e)
	}
	if len(again) != 0 {
		t.Errorf("second recover resumed %d campaigns, want 0", len(again))
	}
}
