package serve

import (
	"context"
	"fmt"
	"testing"
	"time"

	"ocelot/internal/core"
	"ocelot/internal/sentinel"
	"ocelot/internal/wan"
)

// TestServeFaultStressSharedFlappingLink pushes 32 concurrent campaigns
// through the scheduler over ONE shared link that drops a quarter of all
// sends, with a retry budget that absorbs the flaps. Run under -race this
// is the daemon's fault-tolerance torture test. It asserts the three
// properties that must survive the chaos:
//
//   - every campaign still reaches a terminal done state;
//   - retries never double-count progress — each job's observed SentBytes
//     equals its result's GroupedBytes exactly;
//   - aggregate throughput stays within the shared link's bandwidth, i.e.
//     failed attempts never consume simulated link capacity.
func TestServeFaultStressSharedFlappingLink(t *testing.T) {
	if testing.Short() {
		t.Skip("32-campaign fault stress")
	}
	const (
		campaigns = 32
		bwMBps    = 50.0
		scale     = 1.0
	)
	link := &wan.Link{
		Name:          "flap",
		BandwidthMBps: bwMBps,
		Concurrency:   4,
		Faults:        &wan.Faults{SendErrProb: 0.25, Seed: 11},
	}
	sched := NewScheduler(Config{
		Transport:  &core.SimulatedWANTransport{Link: link, Timescale: scale},
		MaxRunning: 8,
		QueueDepth: campaigns,
	})
	defer sched.Close()

	// One shared read-only dataset keeps memory flat across 32 campaigns.
	fields := testFields(t, 2)
	spec := core.CampaignSpec{
		RelErrorBound:   1e-3,
		Workers:         2,
		GroupParam:      2,
		TransferStreams: 2,
		Retry: sentinel.RetryPolicy{
			MaxAttempts: 10,
			BaseBackoff: time.Millisecond,
			MaxBackoff:  4 * time.Millisecond,
		},
	}

	start := time.Now()
	jobs := make([]*Job, 0, campaigns)
	for i := 0; i < campaigns; i++ {
		j, err := sched.Submit(Request{Tenant: fmt.Sprintf("t%d", i%4), Fields: fields, Spec: spec})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		jobs = append(jobs, j)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	for _, j := range jobs {
		if _, err := j.Wait(ctx); err != nil {
			t.Fatalf("job %s did not complete: %v", j.ID(), err)
		}
	}
	wallSec := time.Since(start).Seconds()

	var totalSent, totalRetries int64
	for _, j := range jobs {
		res, err := j.Result()
		if err != nil {
			t.Fatalf("job %s failed: %v", j.ID(), err)
		}
		st := j.Status()
		if st.State != "done" || st.Campaign == nil {
			t.Fatalf("job %s terminal state %q with campaign %v", j.ID(), st.State, st.Campaign)
		}
		if st.Campaign.SentBytes != res.GroupedBytes {
			t.Errorf("job %s: observed SentBytes %d != GroupedBytes %d — a retry double-counted progress",
				j.ID(), st.Campaign.SentBytes, res.GroupedBytes)
		}
		if int(st.Campaign.Retries) != res.Retries {
			t.Errorf("job %s: status retries %d != result retries %d", j.ID(), st.Campaign.Retries, res.Retries)
		}
		totalSent += st.Campaign.SentBytes
		totalRetries += st.Campaign.Retries
	}
	if totalRetries == 0 {
		t.Error("no retries across 32 campaigns on a quarter-drop link — fault injection not reaching the retry path")
	}

	// Failed attempts are rejected before pacing, so even with a quarter of
	// sends retried the aggregate rate must respect the shared link.
	simSec := wallSec / scale
	throughput := float64(totalSent) / 1e6 / simSec
	if throughput > bwMBps*1.02 {
		t.Errorf("aggregate throughput %.1f MB/s exceeds shared link bandwidth %.1f MB/s", throughput, bwMBps)
	}
	t.Logf("32 campaigns, %d retries, %.1f MB aggregate in %.1fs sim (%.1f MB/s on a %.0f MB/s link)",
		totalRetries, float64(totalSent)/1e6, simSec, throughput, bwMBps)
}
