package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"ocelot/internal/core"
	"ocelot/internal/wan"
)

// promLine matches one exposition sample: name, optional label set,
// value.
var promLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*(?:_bucket|_sum|_count)?)(\{[^}]*\})? (\S+)$`)

// parseExposition parses Prometheus text format into series → value,
// failing the test on any malformed line.
func parseExposition(t *testing.T, body string) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			switch parts[3] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("unknown metric kind in %q", line)
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		m := promLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(strings.Replace(m[3], "+Inf", "Inf", 1), 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		out[m[1]+m[2]] = v
	}
	return out
}

func scrape(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return parseExposition(t, string(body))
}

// TestMetricsScrapeUnderLoad runs 8 campaigns across two tenants while a
// scraper goroutine hits /metrics concurrently: every scrape must parse,
// per-tenant counters must be monotone across scrapes, and the final
// exposition must account for every admission. Run under -race this also
// proves scrapes do not contend with the instrumented hot paths.
func TestMetricsScrapeUnderLoad(t *testing.T) {
	srv := NewServer(Config{
		MaxRunning: 3,
		Transport: &core.SimulatedWANTransport{
			Link:      &wan.Link{BandwidthMBps: 500, Concurrency: 4},
			Timescale: 1e-3,
		},
	})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const perTenant = 4
	tenants := []string{"climate", "physics"}
	var ids []string
	for i := 0; i < perTenant; i++ {
		for _, tenant := range tenants {
			resp := postJSON(t, ts.URL+"/v1/campaigns", SubmitRequest{
				Tenant: tenant, Fields: 2, Shrink: 64, Seed: int64(i + 1),
				Spec: SpecRequest{RelErrorBound: 1e-3, Workers: 2, Groups: 2},
			})
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("submit %d for %s: status %d", i, tenant, resp.StatusCode)
			}
			ids = append(ids, decodeStatus(t, resp).ID)
		}
	}

	// Scraper: hammer /metrics until told to stop, checking that every
	// per-tenant counter is monotone non-decreasing between scrapes.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		prev := map[string]float64{}
		for {
			select {
			case <-stop:
				return
			default:
			}
			cur := scrape(t, ts.URL)
			for series, was := range prev {
				if !strings.Contains(series, "_total") && !strings.Contains(series, "_count") {
					continue
				}
				if now, ok := cur[series]; ok && now < was {
					t.Errorf("counter %s went backwards: %g -> %g", series, was, now)
				}
			}
			prev = cur
			time.Sleep(2 * time.Millisecond)
		}
	}()

	deadline := time.Now().Add(30 * time.Second)
	for _, id := range ids {
		for {
			resp, err := http.Get(ts.URL + "/v1/campaigns/" + id)
			if err != nil {
				t.Fatal(err)
			}
			st := decodeStatus(t, resp)
			if st.Terminal {
				if st.State != "done" {
					t.Fatalf("campaign %s ended %q: %s", id, st.State, st.Error)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("campaign %s still %q at deadline", id, st.State)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	close(stop)
	wg.Wait()

	final := scrape(t, ts.URL)
	for _, tenant := range tenants {
		adm := fmt.Sprintf(`serve_admissions_total{tenant="%s"}`, tenant)
		if got := final[adm]; got != perTenant {
			t.Errorf("%s = %g, want %d", adm, got, perTenant)
		}
		active := fmt.Sprintf(`serve_active_campaigns{tenant="%s"}`, tenant)
		if got := final[active]; got != 0 {
			t.Errorf("%s = %g after completion, want 0", active, got)
		}
		raw := fmt.Sprintf(`campaign_raw_bytes_total{tenant="%s"}`, tenant)
		if got := final[raw]; got <= 0 {
			t.Errorf("%s = %g, want > 0 (campaign metrics not tenant-labeled)", raw, got)
		}
		qw := fmt.Sprintf(`serve_queue_wait_seconds_count{tenant="%s"}`, tenant)
		if got := final[qw]; got != perTenant {
			t.Errorf("%s = %g, want %d", qw, got, perTenant)
		}
	}
}

// TestHealthzAlias: both the versioned and the bare health route answer,
// and the watch stream always carries explicit retry/failover counts.
func TestHealthzAlias(t *testing.T) {
	srv := NewServer(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	for _, path := range []string{"/v1/healthz", "/healthz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: %d, want 200", path, resp.StatusCode)
		}
	}
}

// TestWatchStreamsRetryCounts asserts the NDJSON watch stream serializes
// retries/failovers on every snapshot — a watcher's ledger needs the
// explicit zero to distinguish "no faults" from "field absent".
func TestWatchStreamsRetryCounts(t *testing.T) {
	srv := NewServer(Config{})
	srv.WatchInterval = 5 * time.Millisecond
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/v1/campaigns", SubmitRequest{
		Tenant: "climate", Fields: 2, Shrink: 64, Seed: 1,
		Spec: SpecRequest{RelErrorBound: 1e-3, Workers: 2, Groups: 2},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	id := decodeStatus(t, resp).ID
	wresp, err := http.Get(ts.URL + "/v1/campaigns/" + id + "/watch")
	if err != nil {
		t.Fatal(err)
	}
	defer wresp.Body.Close()
	sc := bufio.NewScanner(wresp.Body)
	lines := 0
	for sc.Scan() {
		var snap map[string]json.RawMessage
		if err := json.Unmarshal(sc.Bytes(), &snap); err != nil {
			t.Fatalf("bad watch line %q: %v", sc.Text(), err)
		}
		var campaign map[string]json.RawMessage
		if raw, ok := snap["campaign"]; ok && string(raw) != "null" {
			if err := json.Unmarshal(raw, &campaign); err != nil {
				t.Fatal(err)
			}
			for _, key := range []string{"retries", "failovers"} {
				if _, ok := campaign[key]; !ok {
					t.Fatalf("watch snapshot omits %q: %s", key, sc.Text())
				}
			}
			lines++
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines == 0 {
		t.Fatal("watch stream carried no campaign snapshots")
	}
}
