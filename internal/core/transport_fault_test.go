package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"ocelot/internal/sentinel"
	"ocelot/internal/wan"
)

func TestSimulatedWANOutageTransient(t *testing.T) {
	tr := &SimulatedWANTransport{
		Link: &wan.Link{Name: "flappy", BandwidthMBps: 100, Concurrency: 4,
			Faults: &wan.Faults{Outages: []wan.FaultWindow{{StartSec: 0, EndSec: 1e9}}}},
		Timescale: 1e-3,
	}
	_, err := tr.Send(context.Background(), "g", make([]byte, 1000))
	var fe *wan.FaultError
	if !errors.As(err, &fe) || fe.Reason != "outage" {
		t.Fatalf("want outage FaultError, got %v", err)
	}
	if !sentinel.IsTransient(err) {
		t.Fatal("outage must classify transient")
	}
}

func TestSimulatedWANFlapAccountingMode(t *testing.T) {
	tr := &SimulatedWANTransport{
		Link: &wan.Link{Name: "flappy", BandwidthMBps: 100, Concurrency: 4,
			Faults: &wan.Faults{SendErrProb: 0.5, Seed: 3}},
		Timescale: -1,
	}
	flaps := 0
	for i := 0; i < 100; i++ {
		if _, err := tr.Send(context.Background(), "g", make([]byte, 10)); err != nil {
			if !sentinel.IsTransient(err) {
				t.Fatalf("flap not transient: %v", err)
			}
			flaps++
		}
	}
	if flaps < 25 || flaps > 75 {
		t.Fatalf("flap count %d implausible for p=0.5", flaps)
	}
}

func TestSimulatedWANDipSlowsSend(t *testing.T) {
	// A dip to 25% covering the entire send should quadruple the simulated
	// link seconds of a lone send: 1 MB at 100 MB/s is 0.01 s clean, 0.04 s
	// dipped.
	clean := &SimulatedWANTransport{
		Link:      &wan.Link{Name: "clean", BandwidthMBps: 100, Concurrency: 4},
		Timescale: 1e-2,
	}
	dipped := &SimulatedWANTransport{
		Link: &wan.Link{Name: "dipped", BandwidthMBps: 100, Concurrency: 4,
			Faults: &wan.Faults{Dips: []wan.BandwidthDip{
				{FaultWindow: wan.FaultWindow{StartSec: 0, EndSec: 1e9}, Factor: 0.25}}}},
		Timescale: 1e-2,
	}
	data := make([]byte, 1e6)
	secClean, err := clean.Send(context.Background(), "g", data)
	if err != nil {
		t.Fatal(err)
	}
	secDipped, err := dipped.Send(context.Background(), "g", data)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := secDipped / secClean; math.Abs(ratio-4) > 0.5 {
		t.Fatalf("dip factor 0.25 should ~4x the send: clean=%.4fs dipped=%.4fs ratio=%.2f",
			secClean, secDipped, ratio)
	}
}

func TestSimulatedWANInvalidFaultsRejected(t *testing.T) {
	tr := &SimulatedWANTransport{
		Link: &wan.Link{Name: "bad", BandwidthMBps: 100, Concurrency: 4,
			Faults: &wan.Faults{SendErrProb: 2}},
		Timescale: -1,
	}
	if _, err := tr.Send(context.Background(), "g", []byte{1}); err == nil {
		t.Fatal("invalid fault schedule accepted")
	}
}
