package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"ocelot/internal/faas"
	"ocelot/internal/sz"
)

// TestCompressRemoteHonoursCancelOnFullQueue is the regression test for
// the ctxflow finding in CompressRemote/DecompressRemote: both took a
// context and then dropped it, submitting through the context-free faas
// path — a caller cancelling a campaign still blocked forever behind a
// full endpoint queue. The fix threads the caller's context into
// SubmitContext, so cancellation unblocks the submitter.
func TestCompressRemoteHonoursCancelOnFullQueue(t *testing.T) {
	svc := faas.NewService()
	block := make(chan struct{})
	if err := svc.RegisterFunction("block", func(ctx context.Context, p interface{}) (interface{}, error) {
		<-block
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	src, err := svc.DeployEndpoint("source", faas.EndpointConfig{Workers: 1, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	dst, err := svc.DeployEndpoint("dest", faas.EndpointConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		close(block)
		src.Close()
		dst.Close()
	}()
	orch, err := NewOrchestrator(svc, "source", "dest")
	if err != nil {
		t.Fatal(err)
	}

	// Fill the source worker and its 1-deep queue with blockers.
	if _, err := svc.SubmitBatchContext(context.Background(), "source", "block", []interface{}{1, 2}); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := orch.CompressRemote(ctx, []float64{1, 2, 3, 4}, []int{4}, sz.DefaultConfig(1e-3))
		done <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the submitter block on the full queue
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("CompressRemote ignored cancellation while the endpoint queue was full")
	}
}
