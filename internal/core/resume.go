package core

import (
	"strconv"

	"ocelot/internal/datagen"
	"ocelot/internal/grouping"
	"ocelot/internal/journal"
	"ocelot/internal/sz"
)

// engineName names the executing engine for journal begin records and the
// spec fingerprint.
func (m campaignMode) engineName() string {
	switch {
	case m.sequential:
		return "sequential"
	case m.pipelined:
		return "pipelined"
	default:
		return "barrier"
	}
}

// specFingerprint hashes the facts a resume must not change: the engine, the
// grouping knobs, the campaign-level compression settings, the fan-out
// granularity, and the dataset's field identities. Per-field planned
// settings are deliberately excluded — a resumed adaptive campaign pins them
// from the journal's own begin record, which this fingerprint guards.
func specFingerprint(fields []*datagen.Field, mode campaignMode, strategy grouping.Strategy,
	param int64, relEB float64, pred sz.Predictor, codecName string) string {
	h := uint64(fnvOffset64)
	add := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= fnvPrime64
		}
		// Token separator so adjacent tokens cannot alias ("ab"+"c" ≠ "a"+"bc").
		h ^= 0x1f
		h *= fnvPrime64
	}
	add("ocjl-v1")
	add(mode.engineName())
	add(strconv.Itoa(int(strategy)))
	add(strconv.FormatInt(param, 10))
	add(strconv.FormatFloat(relEB, 'g', -1, 64))
	add(strconv.Itoa(int(pred)))
	add(codecName)
	add(strconv.FormatInt(mode.chunkBytes, 10))
	// The integrity frame changes every archive byte, so a journal written
	// with framing on cannot be resumed with it off (or vice versa) — the
	// recorded archive digests would never match what this incarnation packs.
	add(strconv.FormatBool(mode.integrity))
	if mode.perField != nil {
		add("planned")
	}
	for _, f := range fields {
		add(f.ID())
		for _, d := range f.Dims {
			add(strconv.Itoa(d))
		}
	}
	return journal.FormatDigest(h)
}

// byteDigest hashes raw bytes with the same FNV-64a the recon digests use;
// the journal stores one per packed archive so a resumed incarnation's
// bookkeeping can tell a re-packed group from a recorded one.
func byteDigest(b []byte) uint64 {
	h := uint64(fnvOffset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}

// replayAcked copies a prior incarnation's acked groups into a fresh
// journal, so a resume writing to a NEW path produces a journal that stands
// alone — a later resume needs only that file.
func replayAcked(jw *journal.Writer, m *journal.Manifest) error {
	for _, g := range m.SortedGroups() {
		if !g.Acked {
			continue
		}
		if err := jw.Group(g.ID, g.Members, g.ArchiveDigest, g.FrameCRC, g.Bytes); err != nil {
			return err
		}
		if err := jw.Sent(g.ID); err != nil {
			return err
		}
		if err := jw.Ack(g.ID, g.ArchiveDigest, g.Digests); err != nil {
			return err
		}
	}
	return nil
}
