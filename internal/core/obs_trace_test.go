package core

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"

	"ocelot/internal/datagen"
	"ocelot/internal/obs"
	"ocelot/internal/sentinel"
	"ocelot/internal/wan"
)

// traceTestFields builds the seeded two-field dataset the span-tree test
// runs over.
func traceTestFields(t *testing.T) []*datagen.Field {
	t.Helper()
	names := datagen.Fields("CESM")[:2]
	fields := make([]*datagen.Field, 0, len(names))
	for _, name := range names {
		f, err := datagen.Generate("CESM", name, 64, 1)
		if err != nil {
			t.Fatal(err)
		}
		fields = append(fields, f)
	}
	return fields
}

// TestCampaignSpanTree runs a seeded campaign over a flaky link and
// asserts the span tree's shape is the documented taxonomy: one campaign
// root; per-field compress spans; per-group pack, transfer, and
// decompress spans under the root; retry attempts as send children of
// their transfer; per-member verify under decompress; and a stage:*
// envelope per pipeline stage. The tree (not the timings) is the golden
// surface — it must be stable run to run.
func TestCampaignSpanTree(t *testing.T) {
	fields := traceTestFields(t)
	tracer := obs.NewTracer()
	spec := CampaignSpec{
		RelErrorBound: 1e-3,
		Workers:       2,
		GroupParam:    2, // one field per group: two groups
		Transport: &SimulatedWANTransport{
			Link: &wan.Link{Name: "flaky", BandwidthMBps: 500, Concurrency: 2,
				Faults: &wan.Faults{SendErrProb: 0.5, Seed: 7}},
			Timescale: 1e-3,
		},
		Retry: sentinel.RetryPolicy{MaxAttempts: 10,
			BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond},
		Obs: &obs.Obs{Tracer: tracer, Metrics: obs.NewRegistry()},
	}
	res, err := Run(context.Background(), fields, spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries == 0 {
		t.Fatal("seeded flaky link produced no retries; the retry-span assertion below would be vacuous")
	}

	spans := tracer.Spans()
	byID := map[uint64]obs.SpanRecord{}
	byName := map[string][]obs.SpanRecord{}
	for _, s := range spans {
		byID[s.ID] = s
		byName[s.Name] = append(byName[s.Name], s)
	}

	if n := len(byName["campaign"]); n != 1 {
		t.Fatalf("%d campaign roots, want 1", n)
	}
	root := byName["campaign"][0]
	if root.Parent != 0 {
		t.Errorf("campaign root has parent %d", root.Parent)
	}

	const groups = 2
	wantCounts := map[string]int{
		"compress":   len(fields), // one per field
		"pack":       groups,
		"transfer":   groups,
		"decompress": groups,
		"verify":     len(fields), // one per member
	}
	for name, want := range wantCounts {
		if got := len(byName[name]); got != want {
			t.Errorf("%d %s spans, want %d", got, name, want)
		}
	}
	for _, name := range []string{"compress", "pack", "transfer", "decompress"} {
		for _, s := range byName[name] {
			if s.Parent != root.ID {
				t.Errorf("%s span %d parented to %d, want campaign root %d", name, s.ID, s.Parent, root.ID)
			}
		}
	}

	// Every send attempt is a child of a transfer span, and the flaky link
	// means strictly more attempts than groups.
	sends := byName["send"]
	if len(sends) <= groups {
		t.Errorf("%d send spans with %d retries, want > %d (each attempt its own span)",
			len(sends), res.Retries, groups)
	}
	for _, s := range sends {
		if p, ok := byID[s.Parent]; !ok || p.Name != "transfer" {
			t.Errorf("send span %d parented to %q, want transfer", s.ID, p.Name)
		}
	}
	for _, s := range byName["verify"] {
		if p, ok := byID[s.Parent]; !ok || p.Name != "decompress" {
			t.Errorf("verify span %d parented to %q, want decompress", s.ID, p.Name)
		}
	}
	for _, stage := range []string{"stage:compress", "stage:pack", "stage:transfer", "stage:decompress"} {
		if len(byName[stage]) != 1 {
			t.Errorf("%d %s envelope spans, want 1", len(byName[stage]), stage)
		}
	}

	// Chrome export round-trips: valid JSON, one event per span, parent
	// links preserved in args.
	var buf bytes.Buffer
	if err := tracer.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string                 `json:"name"`
			Ph   string                 `json:"ph"`
			Args map[string]interface{} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export invalid JSON: %v", err)
	}
	if len(doc.TraceEvents) != len(spans) {
		t.Fatalf("chrome export has %d events for %d spans", len(doc.TraceEvents), len(spans))
	}
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" {
			t.Errorf("event %q has ph %q", e.Name, e.Ph)
		}
		id, ok := e.Args["span"].(float64)
		if !ok {
			t.Fatalf("event %q missing span id arg", e.Name)
		}
		s := byID[uint64(id)]
		if s.Parent != 0 {
			if p, ok := e.Args["parent"].(float64); !ok || uint64(p) != s.Parent {
				t.Errorf("event %q (span %d) exports parent %v, want %d", e.Name, s.ID, e.Args["parent"], s.Parent)
			}
		}
	}
}
