package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"ocelot/internal/datagen"
	"ocelot/internal/pipeline"
)

// CampaignState is the lifecycle of a submitted campaign handle.
type CampaignState uint8

const (
	// CampaignPending means submitted but not yet started by the runner
	// goroutine.
	CampaignPending CampaignState = iota + 1
	// CampaignPlanning means the adaptive plan pass (sample → predict →
	// decide) is running; no bytes are moving yet.
	CampaignPlanning
	// CampaignRunning means the stage graph is executing.
	CampaignRunning
	// CampaignDone means the campaign finished and verified successfully.
	CampaignDone
	// CampaignFailed means a stage returned an error.
	CampaignFailed
	// CampaignCanceled means Cancel (or the submit context) stopped the
	// campaign before completion.
	CampaignCanceled
)

// String implements fmt.Stringer.
func (s CampaignState) String() string {
	switch s {
	case CampaignPending:
		return "pending"
	case CampaignPlanning:
		return "planning"
	case CampaignRunning:
		return "running"
	case CampaignDone:
		return "done"
	case CampaignFailed:
		return "failed"
	case CampaignCanceled:
		return "canceled"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// Terminal reports whether the state is final (done, failed, canceled).
func (s CampaignState) Terminal() bool {
	return s == CampaignDone || s == CampaignFailed || s == CampaignCanceled
}

// ErrCampaignRunning is returned by Result before the campaign reaches a
// terminal state.
var ErrCampaignRunning = errors.New("core: campaign still running")

// CampaignStatus is a point-in-time snapshot of a submitted campaign —
// what a watch endpoint streams. Stages carries the live per-stage ledger
// (items, busy/wall seconds, and MB/s for the stages whose moved volume
// is known mid-run), so progress is observable while bytes move.
type CampaignStatus struct {
	// State is the lifecycle position at snapshot time.
	State CampaignState `json:"state"`
	// Fields is the campaign's field count.
	Fields int `json:"fields"`
	// RawBytes is the campaign's total raw volume.
	RawBytes int64 `json:"rawBytes"`
	// ElapsedSec is submit-to-now (or submit-to-terminal once finished).
	ElapsedSec float64 `json:"elapsedSec"`
	// SentGroups and SentBytes count archives accepted by the transport so
	// far.
	SentGroups int64 `json:"sentGroups"`
	SentBytes  int64 `json:"sentBytes"`
	// Retries and Failovers count transient-failure recoveries so far (zero
	// unless the spec carries a retry policy or fallback transports). They
	// serialize unconditionally — a watcher's ledger needs the explicit
	// zero to distinguish "no faults" from "field absent".
	Retries   int64 `json:"retries"`
	Failovers int64 `json:"failovers"`
	// Integrity counters, same unconditional-zero contract: corrupted group
	// deliveries detected so far, successful retransmits of those groups,
	// and fields the bound audit quarantined lossless.
	CorruptGroups  int64 `json:"corruptGroups"`
	Retransmits    int64 `json:"retransmits"`
	DegradedFields int64 `json:"degradedFields"`
	// Stages is the live per-stage timing/throughput ledger (nil until the
	// stage graph starts).
	Stages []StageTiming `json:"stages,omitempty"`
	// Error carries the failure message in terminal failed/canceled states.
	Error string `json:"error,omitempty"`
}

// Campaign is a re-entrant handle to one submitted campaign: hundreds may
// run concurrently in one process, each watchable (Status), awaitable
// (Wait/Done), and cancellable mid-stage (Cancel) — the unit the serve
// daemon's scheduler admits, meters, and exposes over HTTP.
type Campaign struct {
	fields   []*datagen.Field
	rawBytes int64
	cancel   context.CancelFunc
	done     chan struct{}
	now      func() time.Time
	progress *campaignProgress

	mu        sync.Mutex
	state     CampaignState
	group     *pipeline.Group // live stage stats once running
	submitted time.Time
	finished  time.Time
	canceled  bool
	res       *CampaignResult
	err       error
}

// Submit starts a campaign asynchronously and returns its handle. The
// spec is validated synchronously — a daemon can reject a bad submission
// before anything runs — and the campaign then executes under a context
// derived from ctx: cancelling ctx (or calling Cancel) unwinds the stages
// promptly, including mid-send on simulated WAN transports and mid-queue
// on the chunk fan-out fabric.
func Submit(ctx context.Context, fields []*datagen.Field, spec CampaignSpec) (*Campaign, error) {
	if len(fields) == 0 {
		return nil, errors.New("core: no fields")
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	now := spec.Now
	if now == nil {
		now = time.Now
	}
	cctx, cancel := context.WithCancel(ctx)
	c := &Campaign{
		fields:    fields,
		cancel:    cancel,
		done:      make(chan struct{}),
		now:       now,
		progress:  &campaignProgress{},
		state:     CampaignPending,
		submitted: now(),
	}
	for _, f := range fields {
		c.rawBytes += int64(f.RawBytes())
	}

	mode := spec.mode()
	mode.progress = c.progress
	mode.observe = func(g *pipeline.Group) {
		c.mu.Lock()
		c.group = g
		c.state = CampaignRunning
		c.mu.Unlock()
	}
	planning := func() {
		c.mu.Lock()
		c.state = CampaignPlanning
		c.mu.Unlock()
	}

	go func() {
		defer cancel()
		res, err := runSpec(cctx, fields, spec, mode, planning)
		c.mu.Lock()
		c.res, c.err = res, err
		c.finished = now()
		switch {
		case err == nil:
			c.state = CampaignDone
		case c.canceled || errors.Is(err, context.Canceled):
			c.state = CampaignCanceled
		default:
			c.state = CampaignFailed
		}
		c.mu.Unlock()
		close(c.done)
	}()
	return c, nil
}

// Cancel stops the campaign: in-flight stage work unwinds on the
// campaign's context (a paced WAN send returns within one pacing select,
// queued fan-out chunks drain unexecuted) and the handle reaches
// CampaignCanceled. Cancel after a terminal state is a no-op.
func (c *Campaign) Cancel() {
	c.mu.Lock()
	if !c.state.Terminal() {
		c.canceled = true
	}
	c.mu.Unlock()
	c.cancel()
}

// Done returns a channel closed when the campaign reaches a terminal
// state.
func (c *Campaign) Done() <-chan struct{} { return c.done }

// Wait blocks until the campaign finishes or ctx is cancelled (which does
// NOT cancel the campaign itself — call Cancel for that). On completion
// it returns the result exactly as the campaign's runner produced it.
func (c *Campaign) Wait(ctx context.Context) (*CampaignResult, error) {
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-c.done:
		return c.Result()
	}
}

// Result returns the terminal outcome, or ErrCampaignRunning while the
// campaign is still in flight.
func (c *Campaign) Result() (*CampaignResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.state.Terminal() {
		return nil, ErrCampaignRunning
	}
	return c.res, c.err
}

// State reports the current lifecycle state.
func (c *Campaign) State() CampaignState {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state
}

// Status snapshots the campaign's progress: state, elapsed time, shipped
// archives, and the live per-stage ledger with MB/s attached for the
// stages whose moved volume is known mid-run (compress and decompress
// rated over the raw bytes their finished items represent, transfer over
// the archive bytes actually accepted by the transport).
func (c *Campaign) Status() CampaignStatus {
	c.mu.Lock()
	state := c.state
	group := c.group
	submitted := c.submitted
	finished := c.finished
	err := c.err
	c.mu.Unlock()

	st := CampaignStatus{
		State:          state,
		Fields:         len(c.fields),
		RawBytes:       c.rawBytes,
		SentGroups:     c.progress.sentGroups.Load(),
		SentBytes:      c.progress.sentBytes.Load(),
		Retries:        c.progress.retries.Load(),
		Failovers:      c.progress.failovers.Load(),
		CorruptGroups:  c.progress.corruptGroups.Load(),
		Retransmits:    c.progress.retransmits.Load(),
		DegradedFields: c.progress.degraded.Load(),
	}
	end := c.now()
	if state.Terminal() && !finished.IsZero() {
		end = finished
	}
	st.ElapsedSec = end.Sub(submitted).Seconds()
	if err != nil {
		st.Error = err.Error()
	}
	if group != nil {
		stats := group.Stats()
		// Mid-run byte attribution: items completed so far, scaled over the
		// campaign's raw volume for the codec-facing stages.
		n := len(c.fields)
		for _, s := range stats {
			switch s.Name {
			case "compress", "decompress":
				if n > 0 && s.Items > 0 {
					pipeline.AttachThroughput(stats, s.Name, c.rawBytes*int64(s.Items)/int64(n))
				}
			case "transfer":
				pipeline.AttachThroughput(stats, s.Name, st.SentBytes)
			}
		}
		st.Stages = stats
	}
	return st
}
