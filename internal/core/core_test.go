package core

import (
	"context"
	"math"
	"testing"

	"ocelot/internal/cluster"
	"ocelot/internal/datagen"
	"ocelot/internal/faas"
	"ocelot/internal/grouping"
	"ocelot/internal/sz"
	"ocelot/internal/wan"
)

func testPipeline(link string) *Pipeline {
	machines := cluster.Standard()
	return &Pipeline{
		Source: machines["Anvil"],
		Dest:   machines["Cori"],
		Link:   wan.StandardLinks()[link],
	}
}

func cesmLike() *FileSet {
	return UniformFileSet("CESM", 7182, 224e6, 7.2)
}

func TestSimulateDirect(t *testing.T) {
	p := testPipeline("Anvil->Cori")
	fs := cesmLike()
	rep, err := p.Simulate(fs, Plan{Mode: ModeDirect, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.CompressSec != 0 || rep.DecompressSec != 0 {
		t.Error("direct mode must have no compute phases")
	}
	if rep.MovedBytes != fs.TotalBytes() {
		t.Errorf("moved %d != raw %d", rep.MovedBytes, fs.TotalBytes())
	}
	// Paper: CESM Anvil->Cori NP ≈ 446s. Same regime expected.
	if rep.TotalSec < 200 || rep.TotalSec > 900 {
		t.Errorf("NP time %.0fs out of the calibrated regime (paper: 446s)", rep.TotalSec)
	}
}

// TestTableVIIIShape: CP and OP must dramatically beat NP for compressible
// many-file datasets, and OP must beat CP (grouping recovers small-file
// throughput).
func TestTableVIIIShape(t *testing.T) {
	p := testPipeline("Anvil->Bebop") // slow link: compression pays off most
	fs := cesmLike()
	direct, cp, op, err := p.CompareModes(fs, Plan{SourceNodes: 16, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if cp.TotalSec >= direct.TotalSec {
		t.Fatalf("CP (%.0fs) must beat NP (%.0fs)", cp.TotalSec, direct.TotalSec)
	}
	gain := Gain(direct, op)
	// Paper reports 76% reduction for CESM Anvil->Bebop.
	if gain < 0.4 || gain > 0.95 {
		t.Errorf("OP gain %.2f out of expected range (paper: 0.76)", gain)
	}
	// Grouped transfer moves fewer, larger files.
	if op.MovedFiles >= cp.MovedFiles {
		t.Errorf("OP files %d should be < CP files %d", op.MovedFiles, cp.MovedFiles)
	}
	// OP transfer phase should be at least as fast as CP's.
	if op.TransferSec > cp.TransferSec*1.05 {
		t.Errorf("OP transfer %.1fs should not exceed CP %.1fs", op.TransferSec, cp.TransferSec)
	}
}

// TestMirandaGroupingCaveat reproduces the paper's observation that for
// Miranda (few files), grouping into world-size groups can *hurt* because
// the group count falls below the transfer concurrency.
func TestMirandaGroupingCaveat(t *testing.T) {
	p := testPipeline("Anvil->Cori")
	fs := UniformFileSet("Miranda", 768, 150e6, 4.3)
	plan := Plan{SourceNodes: 16, Seed: 3, GroupStrategy: grouping.ByWorldSize, GroupParam: 8}
	_, cp, op, err := p.CompareModes(fs, plan)
	if err != nil {
		t.Fatal(err)
	}
	// With only 8 groups on an 8-channel link, OP's transfer should NOT be
	// dramatically better than CP's — matching the paper's caveat.
	if op.TransferSec < 0.5*cp.TransferSec {
		t.Errorf("grouping to 8 archives should not massively beat CP: op=%.1f cp=%.1f",
			op.TransferSec, cp.TransferSec)
	}
}

func TestSimulateValidation(t *testing.T) {
	p := testPipeline("Anvil->Cori")
	if _, err := p.Simulate(&FileSet{}, Plan{Mode: ModeDirect}); err == nil {
		t.Error("empty file set must error")
	}
	fs := UniformFileSet("x", 4, 1e6, 0)
	if _, err := p.Simulate(fs, Plan{Mode: ModeCompressed}); err == nil {
		t.Error("zero ratio must error")
	}
	if _, err := p.Simulate(cesmLike(), Plan{Mode: Mode(99)}); err == nil {
		t.Error("unknown mode must error")
	}
	broken := &Pipeline{}
	if _, err := broken.Simulate(cesmLike(), Plan{Mode: ModeDirect}); err == nil {
		t.Error("nil pipeline parts must error")
	}
}

func TestModeString(t *testing.T) {
	if ModeDirect.String() != "NP" || ModeCompressed.String() != "CP" || ModeGrouped.String() != "OP" {
		t.Fatal("mode strings")
	}
	if Mode(42).String() == "" {
		t.Fatal("unknown mode string")
	}
}

func TestRatioJitter(t *testing.T) {
	fs := cesmLike()
	fs.RatioJitterFrac = 0.3
	a := compressedSizes(fs, 1)
	b := compressedSizes(fs, 1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("jitter not deterministic")
		}
	}
	c := compressedSizes(fs, 2)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds must differ")
	}
}

func campaignFields(t testing.TB) []*datagen.Field {
	t.Helper()
	var fields []*datagen.Field
	for _, name := range []string{"TMQ", "CLDHGH", "FLDSC", "PSL", "LHFLX", "TREFHT"} {
		f, err := datagen.Generate("CESM", name, 36, 5)
		if err != nil {
			t.Fatal(err)
		}
		fields = append(fields, f)
	}
	return fields
}

func TestRunCampaignEndToEnd(t *testing.T) {
	fields := campaignFields(t)
	res, err := RunCampaign(context.Background(), fields, CampaignOptions{
		RelErrorBound: 1e-3,
		Workers:       4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Files != len(fields) {
		t.Errorf("files = %d", res.Files)
	}
	if res.Ratio <= 1 {
		t.Errorf("ratio = %.2f, expected compression", res.Ratio)
	}
	if res.MaxRelError > 1e-3*(1+1e-9) {
		t.Errorf("max relative error %g exceeds bound", res.MaxRelError)
	}
	if res.Groups == 0 || res.Groups > len(fields) {
		t.Errorf("groups = %d", res.Groups)
	}
	if res.GroupedBytes < res.CompressedBytes {
		t.Errorf("grouped bytes %d < compressed %d", res.GroupedBytes, res.CompressedBytes)
	}
	if res.Metadata == "" {
		t.Error("metadata text missing")
	}
}

func TestRunCampaignValidation(t *testing.T) {
	if _, err := RunCampaign(context.Background(), nil, CampaignOptions{RelErrorBound: 1e-3}); err == nil {
		t.Error("no fields must error")
	}
	fields := campaignFields(t)[:1]
	if _, err := RunCampaign(context.Background(), fields, CampaignOptions{}); err == nil {
		t.Error("zero bound must error")
	}
}

func TestOrchestratorRoundTrip(t *testing.T) {
	svc := faas.NewService()
	src, err := svc.DeployEndpoint("source", faas.EndpointConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	dst, err := svc.DeployEndpoint("dest", faas.EndpointConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()

	orch, err := NewOrchestrator(svc, "source", "dest")
	if err != nil {
		t.Fatal(err)
	}
	f, err := datagen.Generate("Miranda", "density", 32, 9)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sz.DefaultConfig(1e-4)
	stream, err := orch.CompressRemote(context.Background(), f.Data, f.Dims, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(stream) >= f.NumPoints()*8 {
		t.Error("no compression achieved")
	}
	recon, err := orch.DecompressRemote(context.Background(), stream)
	if err != nil {
		t.Fatal(err)
	}
	var maxErr float64
	for i := range recon {
		maxErr = math.Max(maxErr, math.Abs(recon[i]-f.Data[i]))
	}
	if maxErr > 1e-4+1e-12 {
		t.Fatalf("error %g exceeds bound", maxErr)
	}
}

func TestOrchestratorNilService(t *testing.T) {
	if _, err := NewOrchestrator(nil, "a", "b"); err == nil {
		t.Fatal("nil service must error")
	}
}
