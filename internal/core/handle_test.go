package core

import (
	"context"
	"testing"
	"time"

	"ocelot/internal/wan"
)

// A submitted campaign must report a live, progressing status and reach
// CampaignDone with the same result a blocking Run would produce.
func TestSubmitLifecycle(t *testing.T) {
	fields := pipelineFields(t, 3, 48)
	c, err := Submit(context.Background(), fields, CampaignSpec{
		RelErrorBound: 1e-3,
		Workers:       2,
		GroupParam:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Result(); err != ErrCampaignRunning && c.State() != CampaignDone {
		t.Fatalf("pre-terminal Result error = %v, want ErrCampaignRunning", err)
	}
	res, err := c.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if c.State() != CampaignDone {
		t.Fatalf("state after Wait = %v, want done", c.State())
	}
	st := c.Status()
	if st.State != CampaignDone || st.Fields != 3 || st.RawBytes != res.RawBytes {
		t.Fatalf("terminal status %+v inconsistent with result (raw %d)", st, res.RawBytes)
	}
	if st.SentGroups != int64(res.Groups) || st.SentBytes != res.GroupedBytes {
		t.Fatalf("status counted %d groups / %d bytes, result says %d / %d",
			st.SentGroups, st.SentBytes, res.Groups, res.GroupedBytes)
	}
	if len(st.Stages) == 0 {
		t.Fatal("terminal status has no stage ledger")
	}
	// Re-entrant reads after completion.
	if res2, err := c.Result(); err != nil || res2 != res {
		t.Fatalf("Result after Wait = (%p, %v), want (%p, nil)", res2, err, res)
	}
}

// Cancel mid-transfer must unwind the stages promptly and classify the
// handle as canceled, not failed.
func TestSubmitCancelMidStage(t *testing.T) {
	fields := pipelineFields(t, 4, 64)
	// A crawling link: the campaign would pace for many seconds, so a prompt
	// return proves cancellation cut the send short.
	tr := &SimulatedWANTransport{
		Link:      &wan.Link{BandwidthMBps: 0.05, Concurrency: 2},
		Timescale: 1,
	}
	c, err := Submit(context.Background(), fields, CampaignSpec{
		RelErrorBound: 1e-3,
		Workers:       2,
		GroupParam:    2,
		Transport:     tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until bytes are actually in flight before cancelling.
	deadline := time.Now().Add(5 * time.Second)
	for c.State() != CampaignRunning && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	canceledAt := time.Now()
	c.Cancel()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := c.Wait(ctx); err == nil {
		t.Fatal("cancelled campaign returned nil error")
	}
	if lat := time.Since(canceledAt); lat > 2*time.Second {
		t.Errorf("cancel-to-terminal latency %v, want prompt unwind", lat)
	}
	if got := c.State(); got != CampaignCanceled {
		t.Fatalf("state after cancel = %v, want canceled", got)
	}
	st := c.Status()
	if st.Error == "" {
		t.Error("canceled status carries no error message")
	}
}

// Wait with an expired context returns the context error without
// cancelling the campaign itself.
func TestWaitContextDoesNotCancelCampaign(t *testing.T) {
	fields := pipelineFields(t, 2, 48)
	tr := &SimulatedWANTransport{
		Link:      &wan.Link{BandwidthMBps: 5, Concurrency: 2},
		Timescale: 1,
	}
	c, err := Submit(context.Background(), fields, CampaignSpec{
		RelErrorBound: 1e-3,
		Workers:       2,
		GroupParam:    1,
		Transport:     tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if _, err := c.Wait(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Wait with dead context = %v, want deadline exceeded", err)
	}
	if res, err := c.Wait(context.Background()); err != nil || res == nil {
		t.Fatalf("campaign should still complete after an abandoned Wait: %v", err)
	}
}

// Submit must reject invalid specs synchronously.
func TestSubmitValidation(t *testing.T) {
	fields := pipelineFields(t, 1, 32)
	if _, err := Submit(context.Background(), nil, CampaignSpec{RelErrorBound: 1e-3}); err == nil {
		t.Error("Submit with no fields succeeded")
	}
	if _, err := Submit(context.Background(), fields, CampaignSpec{}); err == nil {
		t.Error("Submit with no bound and no plan succeeded")
	}
	if _, err := Submit(context.Background(), fields, CampaignSpec{RelErrorBound: 1e-3, Codec: "nope"}); err == nil {
		t.Error("Submit with unknown codec succeeded")
	}
	if _, err := Submit(context.Background(), fields, CampaignSpec{RelErrorBound: 1e-3, Engine: 99}); err == nil {
		t.Error("Submit with unknown engine succeeded")
	}
}

// ParseEngine round-trips every engine name and rejects junk.
func TestParseEngine(t *testing.T) {
	for _, e := range []Engine{EnginePipelined, EngineBarrier, EngineSequential} {
		got, err := ParseEngine(e.String())
		if err != nil || got != e {
			t.Errorf("ParseEngine(%q) = %v, %v", e.String(), got, err)
		}
	}
	if e, err := ParseEngine(""); err != nil || e != EnginePipelined {
		t.Errorf("ParseEngine(\"\") = %v, %v, want pipelined", e, err)
	}
	if _, err := ParseEngine("warp"); err == nil {
		t.Error("ParseEngine accepted unknown engine")
	}
}
