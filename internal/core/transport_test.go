package core

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"ocelot/internal/wan"
)

// TestSimulatedTransportAggregateThroughput is the headline regression for
// the bandwidth-accounting bug: however many goroutines call Send
// concurrently, bytes must not move faster than the link's aggregate
// bandwidth. Before the fix, each send was paced at BandwidthMBps /
// Concurrency regardless of how many sends were in flight, so 16 streams
// on a concurrency-4 link simulated 4x the link's capacity.
func TestSimulatedTransportAggregateThroughput(t *testing.T) {
	const (
		bwMBps  = 1000.0
		scale   = 10.0 // wall seconds per simulated second: magnifies pacing
		archive = 1 << 21
	)
	for _, streams := range []int{1, 4, 16} {
		streams := streams
		t.Run(map[int]string{1: "streams=1", 4: "streams=4", 16: "streams=16"}[streams], func(t *testing.T) {
			t.Parallel()
			tr := &SimulatedWANTransport{
				Link:      &wan.Link{Name: "t", BandwidthMBps: bwMBps, Concurrency: 4},
				Timescale: scale,
			}
			data := make([]byte, archive)
			var wg sync.WaitGroup
			errs := make([]error, streams)
			start := time.Now()
			for i := 0; i < streams; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					_, errs[i] = tr.Send(context.Background(), "a", data)
				}(i)
			}
			wg.Wait()
			wallSec := time.Since(start).Seconds()
			for _, err := range errs {
				if err != nil {
					t.Fatal(err)
				}
			}
			simSec := wallSec / scale
			totalMB := float64(streams) * float64(archive) / 1e6
			throughput := totalMB / simSec
			// Sleeps only ever run long, so measured throughput can only
			// fall below nominal; any excess means the pacing bug is back.
			if throughput > bwMBps*1.02 {
				t.Errorf("aggregate simulated throughput %.0f MB/s exceeds link bandwidth %.0f MB/s",
					throughput, bwMBps)
			}
			// Guard the other direction loosely: the link should still be
			// substantially used (catches accidental serialization at the
			// old per-channel rate).
			if streams >= 4 && throughput < bwMBps*0.5 {
				t.Errorf("aggregate simulated throughput %.0f MB/s is under half the link bandwidth", throughput)
			}
		})
	}
}

// A lone send owns the whole link, matching wan.Link.Estimate for a batch
// smaller than the channel count.
func TestSimulatedTransportSoloSendFullBandwidth(t *testing.T) {
	tr := &SimulatedWANTransport{
		Link:      &wan.Link{BandwidthMBps: 500, PerFileOverheadSec: 0.01, Concurrency: 8},
		Timescale: 1e-3,
	}
	data := make([]byte, 4<<20)
	sec, err := tr.Send(context.Background(), "a", data)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.01 + float64(len(data))/1e6/500
	if math.Abs(sec-want) > 1e-6 {
		t.Errorf("solo send charged %.6fs, want %.6fs (full link share)", sec, want)
	}
}

// Accounting-only mode (negative timescale) charges the solo full-link
// share — matching both a lone paced send and wan.Link.Estimate for a
// small batch — and returns immediately.
func TestSimulatedTransportAccountingOnly(t *testing.T) {
	tr := &SimulatedWANTransport{
		Link:      &wan.Link{BandwidthMBps: 800, PerFileOverheadSec: 0.02, Concurrency: 4},
		Timescale: -1,
	}
	data := make([]byte, 2<<20)
	start := time.Now()
	sec, err := tr.Send(context.Background(), "a", data)
	if err != nil {
		t.Fatal(err)
	}
	if wall := time.Since(start).Seconds(); wall > 0.05 {
		t.Errorf("accounting-only send slept %.3fs", wall)
	}
	want := 0.02 + float64(len(data))/1e6/800.0
	if math.Abs(sec-want) > 1e-6 {
		t.Errorf("accounting-only send charged %.6fs, want %.6fs", sec, want)
	}
}

// Cancellation must release the link channel so later sends proceed.
func TestSimulatedTransportCancellation(t *testing.T) {
	tr := &SimulatedWANTransport{
		Link:      &wan.Link{BandwidthMBps: 1, Concurrency: 1},
		Timescale: 1,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := tr.Send(ctx, "slow", make([]byte, 8<<20)); err == nil {
		t.Fatal("want cancellation error")
	}
	tr.Timescale = -1
	if _, err := tr.Send(context.Background(), "next", []byte{1}); err != nil {
		t.Fatalf("link channel not released after cancellation: %v", err)
	}
}

// TransferStreams must default to the link's concurrency, not a constant
// chosen independently of it.
func TestTransferStreamsDefaultFollowsLinkConcurrency(t *testing.T) {
	fields := pipelineFields(t, 4, 40)
	link := &wan.Link{BandwidthMBps: 4000, Concurrency: 3}
	res, err := RunPipelinedCampaign(context.Background(), fields, PipelineOptions{
		CampaignOptions: CampaignOptions{RelErrorBound: 1e-3, Workers: 2, GroupParam: 2},
		Transport:       &SimulatedWANTransport{Link: link, Timescale: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Stages {
		if s.Name == "transfer" && s.Workers != link.Concurrency {
			t.Errorf("transfer stage ran %d workers, want link concurrency %d", s.Workers, link.Concurrency)
		}
	}
	// A transport without a hint keeps the Globus default of 4.
	if got := defaultStreams(NopTransport{}); got != 4 {
		t.Errorf("defaultStreams(nop) = %d, want 4", got)
	}
	if got := defaultStreams(&SimulatedWANTransport{Link: link}); got != 3 {
		t.Errorf("defaultStreams(sim) = %d, want 3", got)
	}
}
