package core

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"ocelot/internal/wan"
)

// TestSimulatedTransportAggregateThroughput is the headline regression for
// the bandwidth-accounting bug: however many goroutines call Send
// concurrently, bytes must not move faster than the link's aggregate
// bandwidth. Before the fix, each send was paced at BandwidthMBps /
// Concurrency regardless of how many sends were in flight, so 16 streams
// on a concurrency-4 link simulated 4x the link's capacity.
func TestSimulatedTransportAggregateThroughput(t *testing.T) {
	const (
		bwMBps  = 1000.0
		scale   = 10.0 // wall seconds per simulated second: magnifies pacing
		archive = 1 << 21
	)
	for _, streams := range []int{1, 4, 16} {
		streams := streams
		t.Run(map[int]string{1: "streams=1", 4: "streams=4", 16: "streams=16"}[streams], func(t *testing.T) {
			t.Parallel()
			tr := &SimulatedWANTransport{
				Link:      &wan.Link{Name: "t", BandwidthMBps: bwMBps, Concurrency: 4},
				Timescale: scale,
			}
			data := make([]byte, archive)
			var wg sync.WaitGroup
			errs := make([]error, streams)
			start := time.Now()
			for i := 0; i < streams; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					_, errs[i] = tr.Send(context.Background(), "a", data)
				}(i)
			}
			wg.Wait()
			wallSec := time.Since(start).Seconds()
			for _, err := range errs {
				if err != nil {
					t.Fatal(err)
				}
			}
			simSec := wallSec / scale
			totalMB := float64(streams) * float64(archive) / 1e6
			throughput := totalMB / simSec
			// Sleeps only ever run long, so measured throughput can only
			// fall below nominal; any excess means the pacing bug is back.
			if throughput > bwMBps*1.02 {
				t.Errorf("aggregate simulated throughput %.0f MB/s exceeds link bandwidth %.0f MB/s",
					throughput, bwMBps)
			}
			// Guard the other direction loosely: the link should still be
			// substantially used (catches accidental serialization at the
			// old per-channel rate).
			if streams >= 4 && throughput < bwMBps*0.5 {
				t.Errorf("aggregate simulated throughput %.0f MB/s is under half the link bandwidth", throughput)
			}
		})
	}
}

// A lone send owns the whole link, matching wan.Link.Estimate for a batch
// smaller than the channel count.
func TestSimulatedTransportSoloSendFullBandwidth(t *testing.T) {
	tr := &SimulatedWANTransport{
		Link:      &wan.Link{BandwidthMBps: 500, PerFileOverheadSec: 0.01, Concurrency: 8},
		Timescale: 1e-3,
	}
	data := make([]byte, 4<<20)
	sec, err := tr.Send(context.Background(), "a", data)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.01 + float64(len(data))/1e6/500
	if math.Abs(sec-want) > 1e-6 {
		t.Errorf("solo send charged %.6fs, want %.6fs (full link share)", sec, want)
	}
}

// Accounting-only mode (negative timescale) charges the solo full-link
// share — matching both a lone paced send and wan.Link.Estimate for a
// small batch — and returns immediately.
func TestSimulatedTransportAccountingOnly(t *testing.T) {
	tr := &SimulatedWANTransport{
		Link:      &wan.Link{BandwidthMBps: 800, PerFileOverheadSec: 0.02, Concurrency: 4},
		Timescale: -1,
	}
	data := make([]byte, 2<<20)
	start := time.Now()
	sec, err := tr.Send(context.Background(), "a", data)
	if err != nil {
		t.Fatal(err)
	}
	if wall := time.Since(start).Seconds(); wall > 0.05 {
		t.Errorf("accounting-only send slept %.3fs", wall)
	}
	want := 0.02 + float64(len(data))/1e6/800.0
	if math.Abs(sec-want) > 1e-6 {
		t.Errorf("accounting-only send charged %.6fs, want %.6fs", sec, want)
	}
}

// Cancellation must release the link channel so later sends proceed.
func TestSimulatedTransportCancellation(t *testing.T) {
	tr := &SimulatedWANTransport{
		Link:      &wan.Link{BandwidthMBps: 1, Concurrency: 1},
		Timescale: 1,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := tr.Send(ctx, "slow", make([]byte, 8<<20)); err == nil {
		t.Fatal("want cancellation error")
	}
	tr.Timescale = -1
	if _, err := tr.Send(context.Background(), "next", []byte{1}); err != nil {
		t.Fatalf("link channel not released after cancellation: %v", err)
	}
}

// Two concurrent sends with a 3:1 weight split must see ~3:1 bandwidth:
// the heavy send finishes in about M/(0.75·BW) simulated seconds, the
// light one (which inherits the full link after the heavy one leaves) in
// about 2·M/BW — a ~1.5x ratio, against 1.33x for equal sharing.
func TestSimulatedTransportWeightedSharing(t *testing.T) {
	const (
		bwMBps = 1000.0
		scale  = 25.0
		bytes  = 8 << 20
	)
	tr := &SimulatedWANTransport{
		Link:      &wan.Link{BandwidthMBps: bwMBps, Concurrency: 2},
		Timescale: scale,
	}
	data := make([]byte, bytes)
	var heavySec, lightSec float64
	var heavyErr, lightErr error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		heavySec, heavyErr = tr.SendWeighted(context.Background(), "heavy", data, 3)
	}()
	go func() {
		defer wg.Done()
		lightSec, lightErr = tr.SendWeighted(context.Background(), "light", data, 1)
	}()
	wg.Wait()
	if heavyErr != nil || lightErr != nil {
		t.Fatal(heavyErr, lightErr)
	}
	if heavySec >= lightSec {
		t.Fatalf("weight-3 send charged %.4fs, not faster than weight-1 send's %.4fs", heavySec, lightSec)
	}
	// The exact ratio depends on how closely the two admissions coincide;
	// accept anything clearly past equal sharing's 1.33 midpoint region.
	if ratio := lightSec / heavySec; ratio < 1.25 || ratio > 2.2 {
		t.Errorf("light/heavy charged-time ratio %.2f outside [1.25, 2.2] (weights not honoured)", ratio)
	}
}

// A cancelled in-flight send must return promptly — within far less than
// its remaining transfer time — because every pacing select includes
// ctx.Done. This is the transport half of the mid-stage cancellation
// guarantee the serve daemon's cancel endpoint relies on.
func TestSimulatedTransportCancelLatencyMidSend(t *testing.T) {
	tr := &SimulatedWANTransport{
		// 1 MB/s: the 8 MB send below would pace for ~8 wall seconds.
		Link:      &wan.Link{BandwidthMBps: 1, Concurrency: 1},
		Timescale: 1,
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := tr.Send(ctx, "slow", make([]byte, 8<<20))
		errCh <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the send enter its pacing loop
	canceledAt := time.Now()
	cancel()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("cancelled send returned nil error")
		}
		if lat := time.Since(canceledAt); lat > 250*time.Millisecond {
			t.Errorf("cancel latency %v, want well under the send's ~8s pacing", lat)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("send did not return after cancellation")
	}
}

// TransferStreams must default to the link's concurrency, not a constant
// chosen independently of it.
func TestTransferStreamsDefaultFollowsLinkConcurrency(t *testing.T) {
	fields := pipelineFields(t, 4, 40)
	link := &wan.Link{BandwidthMBps: 4000, Concurrency: 3}
	res, err := RunPipelinedCampaign(context.Background(), fields, PipelineOptions{
		CampaignOptions: CampaignOptions{RelErrorBound: 1e-3, Workers: 2, GroupParam: 2},
		Transport:       &SimulatedWANTransport{Link: link, Timescale: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Stages {
		if s.Name == "transfer" && s.Workers != link.Concurrency {
			t.Errorf("transfer stage ran %d workers, want link concurrency %d", s.Workers, link.Concurrency)
		}
	}
	// A transport without a hint keeps the Globus default of 4.
	if got := defaultStreams(NopTransport{}); got != 4 {
		t.Errorf("defaultStreams(nop) = %d, want 4", got)
	}
	if got := defaultStreams(&SimulatedWANTransport{Link: link}); got != 3 {
		t.Errorf("defaultStreams(sim) = %d, want 3", got)
	}
}
