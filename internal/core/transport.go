package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ocelot/internal/gridftp"
	"ocelot/internal/obs"
	"ocelot/internal/sentinel"
	"ocelot/internal/wan"
)

// Transport moves one packed archive from the source to the destination
// endpoint. Implementations return the seconds they account to the move —
// wall time for real wires, simulated link time for modelled WANs — which
// the campaign engine sums into CampaignResult.LinkSec.
type Transport interface {
	// Name labels the transport in reports.
	Name() string
	// Send ships one named archive; it must honour ctx cancellation.
	Send(ctx context.Context, name string, data []byte) (seconds float64, err error)
}

// WeightedTransport is a Transport whose in-flight sends share the
// underlying link in proportion to a per-send weight instead of equally.
// The multi-tenant scheduler (internal/serve) uses it to give each
// tenant's campaigns a weighted-fair share of a shared link: two tenants
// with weights 2 and 1 sending concurrently see a 2:1 bandwidth split.
// Send is equivalent to SendWeighted with weight 1.
type WeightedTransport interface {
	Transport
	// SendWeighted ships one archive with the given fair-share weight
	// (values ≤ 0 are treated as 1).
	SendWeighted(ctx context.Context, name string, data []byte, weight float64) (seconds float64, err error)
}

// DeliveredTransport is a Transport that reports the payload bytes that
// actually arrived at the destination — which may differ from the offered
// bytes when the link corrupts in flight (wan.Faults.CorruptProb). The
// campaign's verify stage checksums the delivered bytes, so it sees
// exactly what the wire produced rather than assuming the send buffer
// arrived intact. Transports without in-flight corruption simply return
// the input slice.
type DeliveredTransport interface {
	Transport
	// SendDelivered ships one archive with the given fair-share weight
	// (values ≤ 0 are treated as 1) and returns the delivered payload.
	SendDelivered(ctx context.Context, name string, data []byte, weight float64) (delivered []byte, seconds float64, err error)
}

// streamHinter is implemented by transports that know how many archives
// the underlying link can usefully keep in flight; runCampaign uses it to
// default PipelineOptions.TransferStreams instead of picking a constant
// that may disagree with the link's concurrency.
type streamHinter interface {
	StreamHint() int
}

// defaultStreams resolves the TransferStreams default for a transport: the
// transport's own hint (e.g. the simulated link's concurrency) when it has
// one, else 4 (the Globus default concurrency).
func defaultStreams(t Transport) int {
	if h, ok := t.(streamHinter); ok {
		if n := h.StreamHint(); n > 0 {
			return n
		}
	}
	return 4
}

// NopTransport moves bytes instantaneously: the in-process campaign path
// where source and destination share memory.
type NopTransport struct{}

// Name implements Transport.
func (NopTransport) Name() string { return "nop" }

// Send implements Transport.
func (NopTransport) Send(ctx context.Context, name string, data []byte) (float64, error) {
	return 0, ctx.Err()
}

// SimulatedWANTransport paces archives over a wan.Link, actually sleeping
// (scaled by Timescale) so that pipelining overlap is observable in wall
// time. It is the bridge between the calibrated link models and the real
// streaming engine.
//
// Bandwidth-sharing semantics: the link admits at most Link.Concurrency
// sends at once — further concurrent Send calls queue until a channel
// frees — and the sends in flight share Link.BandwidthMBps in proportion
// to their weights (Send uses weight 1, so plain sends share equally),
// with every send's pace recomputed whenever one starts or finishes.
// Aggregate simulated throughput therefore never exceeds the link's
// bandwidth, no matter how many goroutines
// (PipelineOptions.TransferStreams) call Send concurrently: extra streams
// beyond the link's concurrency only deepen the queue. A lone send gets
// the full link, matching wan.Link.Estimate's treatment of a batch
// smaller than the channel count.
//
// A SimulatedWANTransport carries shared pacing state and must not be
// copied after first use; campaigns pass it by pointer.
type SimulatedWANTransport struct {
	// Link provides bandwidth, concurrency, and per-file overhead.
	Link *wan.Link
	// Timescale is wall seconds slept per simulated second (e.g. 1e-3
	// compresses a 500 s paper-scale transfer into 0.5 s). 0 means real
	// time; negative disables sleeping entirely (accounting only — sends
	// return instantly, each charged the solo full-link share, overhead +
	// bytes/BandwidthMBps, matching both a lone paced send and
	// wan.Link.Estimate's treatment of a batch smaller than the channel
	// count; without pacing there is no wall-time overlap to share the
	// link across).
	Timescale float64
	// Metrics, when set, counts pacing waits (wan_pacing_waits_total — one
	// per pacing quantum slept) and feeds the fault injector's counters.
	// Set before the first send and never reassigned after; nil = off.
	// Campaigns that carry their own registry install it via adoptMetrics
	// instead, so a transport shared across concurrent campaigns (the
	// serve scheduler's link) is never mutated mid-send.
	Metrics *obs.Registry

	// adopted is the campaign-installed registry when Metrics was nil:
	// CAS-installed so concurrent campaigns sharing this transport race
	// benignly (first adopter wins, matching the old set-if-nil intent).
	adopted atomic.Pointer[obs.Registry]

	mu     sync.Mutex
	active int           // sends currently admitted to the link
	weight float64       // summed fair-share weight of admitted sends
	change chan struct{} // closed and replaced whenever membership changes

	// Fault-injection state, initialised lazily from Link.Faults on the
	// first send: the injector evaluates the schedule against this
	// transport's simulated clock (seconds since epoch, wall time divided
	// by Timescale).
	faultOnce sync.Once
	injector  *wan.Injector
	faultErr  error
	epoch     time.Time
}

// adoptMetrics installs reg as the transport's registry unless one was
// configured at construction or already adopted. Safe under concurrent
// campaigns sharing the transport.
func (t *SimulatedWANTransport) adoptMetrics(reg *obs.Registry) {
	if reg == nil || t.Metrics != nil {
		return
	}
	t.adopted.CompareAndSwap(nil, reg)
}

// metrics is the registry sends observe: the construction-time Metrics
// field when set, else the campaign-adopted one. Either may be nil — the
// obs handles are nil-safe.
func (t *SimulatedWANTransport) metrics() *obs.Registry {
	if t.Metrics != nil {
		return t.Metrics
	}
	return t.adopted.Load()
}

// Name implements Transport.
func (t *SimulatedWANTransport) Name() string {
	if t.Link != nil && t.Link.Name != "" {
		return "sim:" + t.Link.Name
	}
	return "sim"
}

// StreamHint reports the link's concurrency so campaigns default their
// transfer streams to what the link can actually carry.
func (t *SimulatedWANTransport) StreamHint() int {
	if t.Link == nil {
		return 0
	}
	return t.Link.Concurrency
}

// initFaults builds the injector (once) when the link carries a fault
// schedule, anchoring the simulated clock at the first send.
func (t *SimulatedWANTransport) initFaults() error {
	t.faultOnce.Do(func() {
		t.epoch = time.Now()
		if t.Link.Faults != nil {
			t.injector, t.faultErr = wan.NewInjector(t.Link.Faults)
			t.injector.SetMetrics(t.metrics())
		}
	})
	return t.faultErr
}

// simNow is the transport's simulated clock: wall seconds since the first
// send divided by the timescale, so a fault window of [10s, 20s) covers
// the same simulated span whatever the compression factor. Accounting-only
// transports (negative scale) have no advancing clock and report 0 — only
// the probabilistic flap errors apply there.
func (t *SimulatedWANTransport) simNow(scale float64) float64 {
	if scale <= 0 {
		return 0
	}
	return time.Since(t.epoch).Seconds() / scale
}

// bump wakes every send waiting on a membership change. Callers hold mu.
func (t *SimulatedWANTransport) bump() {
	if t.change != nil {
		close(t.change)
	}
	t.change = make(chan struct{})
}

// admit blocks until a link channel is free, honouring ctx, then joins
// the link with fair-share weight w.
func (t *SimulatedWANTransport) admit(ctx context.Context, w float64) error {
	t.mu.Lock()
	if t.change == nil {
		t.change = make(chan struct{})
	}
	for t.active >= t.Link.Concurrency {
		ch := t.change
		t.mu.Unlock()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ch:
		}
		t.mu.Lock()
	}
	t.active++
	t.weight += w
	t.bump()
	t.mu.Unlock()
	return nil
}

func (t *SimulatedWANTransport) release(w float64) {
	t.mu.Lock()
	t.active--
	t.weight -= w
	if t.active == 0 {
		// Reset so float subtraction error cannot accumulate across sends.
		t.weight = 0
	}
	t.bump()
	t.mu.Unlock()
}

// Send implements Transport: it queues for a link channel, charges the
// per-file overhead, then moves the bytes at the current fair share of the
// link bandwidth, re-pacing whenever another send joins or leaves the
// link. The returned seconds are the simulated link time this send took
// (queueing excluded: a queued send is not using the link).
func (t *SimulatedWANTransport) Send(ctx context.Context, name string, data []byte) (float64, error) {
	return t.SendWeighted(ctx, name, data, 1)
}

// SendWeighted implements WeightedTransport: the send's pace is the link
// bandwidth times weight / (summed weight of all in-flight sends), so
// concurrent sends split the link in proportion to their weights. Cancel
// latency is bounded by the select granularity of one pacing quantum: the
// pacing loop always has ctx.Done in its select, so a cancelled send
// returns without finishing its current timer.
func (t *SimulatedWANTransport) SendWeighted(ctx context.Context, name string, data []byte, weight float64) (float64, error) {
	_, sec, err := t.SendDelivered(ctx, name, data, weight)
	return sec, err
}

// SendDelivered implements DeliveredTransport with SendWeighted's pacing
// semantics, additionally returning the delivered payload. When the link's
// fault schedule carries a corruption probability, the injector damages
// the delivery *after* pacing completes — a corrupted archive consumed the
// full link capacity of a clean one, so the throughput ≤ bandwidth
// invariant is unaffected — and the caller's buffer is never mutated (a
// retransmit re-offers the original bytes).
func (t *SimulatedWANTransport) SendDelivered(ctx context.Context, name string, data []byte, weight float64) ([]byte, float64, error) {
	if t.Link == nil {
		return nil, 0, errors.New("core: simulated transport needs a link")
	}
	if weight <= 0 {
		weight = 1
	}
	if err := t.Link.Validate(); err != nil {
		return nil, 0, err
	}
	scale := t.Timescale
	if scale == 0 {
		scale = 1
	}
	if err := t.initFaults(); err != nil {
		return nil, 0, err
	}
	if scale < 0 {
		// Accounting only: no sleeping means sends never overlap in wall
		// time, so each is charged as the fluid model would charge a lone
		// send — the full link share. Probabilistic flap errors still
		// apply (the fast way for tests to exercise the retry path);
		// scheduled windows do not, as there is no advancing clock.
		if err := t.injector.SendError(0); err != nil {
			return nil, 0, err
		}
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
		return t.injector.CorruptPayload(data), t.Link.PerFileOverheadSec + float64(len(data))/1e6/t.Link.BandwidthMBps, nil
	}

	// Fault check before admission: a send attempted during an outage (or
	// losing the flap coin toss) fails without consuming a link channel,
	// exactly like a connection that never establishes. A send already
	// mid-flight when an outage window opens is NOT killed — established
	// streams ride out short control-plane blips; dips (below) model the
	// data-plane degradation.
	if err := t.injector.SendError(t.simNow(scale)); err != nil {
		return nil, 0, err
	}

	if err := t.admit(ctx, weight); err != nil {
		return nil, 0, err
	}
	defer t.release(weight)

	simSec := t.Link.PerFileOverheadSec
	if err := sleepScaled(ctx, t.Link.PerFileOverheadSec, scale); err != nil {
		return nil, 0, err
	}
	remainingMB := float64(len(data)) / 1e6
	pacingWaits := t.metrics().Counter("wan_pacing_waits_total")
	for remainingMB > 1e-12 {
		pacingWaits.Inc()
		t.mu.Lock()
		share := weight / t.weight
		ch := t.change
		t.mu.Unlock()
		if share > 1 || share <= 0 {
			share = 1
		}
		simStart := t.simNow(scale)
		// Bandwidth dips scale the whole link while their window is open;
		// the pacing quantum is capped at the next dip boundary so the
		// degraded rate applies exactly on schedule.
		rate := t.Link.BandwidthMBps * share * t.injector.RateFactor(simStart) // MB per simulated second
		need := remainingMB / rate
		if next := t.injector.NextChange(simStart); next-simStart < need {
			need = next - simStart
		}
		start := time.Now()
		timer := time.NewTimer(time.Duration(need * scale * float64(time.Second)))
		select {
		case <-ctx.Done():
			timer.Stop()
			return nil, 0, ctx.Err()
		case <-timer.C:
			simSec += need
			remainingMB -= need * rate
			if remainingMB < 1e-12 {
				remainingMB = 0
			}
		case <-ch:
			timer.Stop()
			elapsedSim := time.Since(start).Seconds() / scale
			if elapsedSim > need {
				elapsedSim = need
			}
			simSec += elapsedSim
			remainingMB -= elapsedSim * rate
		}
	}
	// Corruption is injected only after the payload has been fully paced
	// through the link, so damaged deliveries still paid their bandwidth.
	return t.injector.CorruptPayload(data), simSec, nil
}

// sleepScaled sleeps sec simulated seconds at the given timescale,
// honouring ctx.
func sleepScaled(ctx context.Context, sec, scale float64) error {
	if sec <= 0 {
		return ctx.Err()
	}
	timer := time.NewTimer(time.Duration(sec * scale * float64(time.Second)))
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}

// GridFTPTransport ships archives over the repo's real wire protocol
// (parallel TCP data channels, CRC-32 integrity), one session per archive.
type GridFTPTransport struct {
	// Client is a dialled gridftp client bound to the destination server.
	Client *gridftp.Client
}

// Name implements Transport.
func (t *GridFTPTransport) Name() string { return "gridftp" }

// Send implements Transport. A checksum failure reported by the server is
// wire corruption, not a protocol bug: it is marked transient so the
// campaign's retry/failover budget re-sends the archive, the same contract
// simulated corruption gets from the verify stage.
func (t *GridFTPTransport) Send(ctx context.Context, name string, data []byte) (float64, error) {
	if t.Client == nil {
		return 0, errors.New("core: gridftp transport needs a client")
	}
	sum, err := t.Client.Transfer(ctx, []gridftp.File{{Name: name, Data: data}})
	if err != nil {
		wrapped := fmt.Errorf("core: gridftp send %s: %w", name, err)
		if errors.Is(err, gridftp.ErrChecksum) {
			return 0, sentinel.MarkTransient(wrapped)
		}
		return 0, wrapped
	}
	return sum.Seconds, nil
}
