package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"ocelot/internal/gridftp"
	"ocelot/internal/wan"
)

// Transport moves one packed archive from the source to the destination
// endpoint. Implementations return the seconds they account to the move —
// wall time for real wires, simulated link time for modelled WANs — which
// the campaign engine sums into CampaignResult.LinkSec.
type Transport interface {
	// Name labels the transport in reports.
	Name() string
	// Send ships one named archive; it must honour ctx cancellation.
	Send(ctx context.Context, name string, data []byte) (seconds float64, err error)
}

// NopTransport moves bytes instantaneously: the in-process campaign path
// where source and destination share memory.
type NopTransport struct{}

// Name implements Transport.
func (NopTransport) Name() string { return "nop" }

// Send implements Transport.
func (NopTransport) Send(ctx context.Context, name string, data []byte) (float64, error) {
	return 0, ctx.Err()
}

// SimulatedWANTransport paces each archive at a wan.Link's per-channel
// rate, actually sleeping (scaled by Timescale) so that pipelining overlap
// is observable in wall time. It is the bridge between the calibrated
// link models and the real streaming engine.
type SimulatedWANTransport struct {
	// Link provides bandwidth, concurrency, and per-file overhead.
	Link *wan.Link
	// Timescale is wall seconds slept per simulated second (e.g. 1e-3
	// compresses a 500 s paper-scale transfer into 0.5 s). 0 means real
	// time; negative disables sleeping entirely (accounting only).
	Timescale float64
}

// Name implements Transport.
func (t *SimulatedWANTransport) Name() string {
	if t.Link != nil && t.Link.Name != "" {
		return "sim:" + t.Link.Name
	}
	return "sim"
}

// Send implements Transport: it charges the link's per-file overhead plus
// bandwidth time at the per-channel share, mirroring wan.Link.Estimate for
// a single file on one channel.
func (t *SimulatedWANTransport) Send(ctx context.Context, name string, data []byte) (float64, error) {
	if t.Link == nil {
		return 0, errors.New("core: simulated transport needs a link")
	}
	if err := t.Link.Validate(); err != nil {
		return 0, err
	}
	perChannelMBps := t.Link.BandwidthMBps / float64(t.Link.Concurrency)
	sec := t.Link.PerFileOverheadSec + float64(len(data))/1e6/perChannelMBps
	scale := t.Timescale
	if scale == 0 {
		scale = 1
	}
	if scale > 0 {
		timer := time.NewTimer(time.Duration(sec * scale * float64(time.Second)))
		defer timer.Stop()
		select {
		case <-ctx.Done():
			return 0, ctx.Err()
		case <-timer.C:
		}
	}
	return sec, nil
}

// GridFTPTransport ships archives over the repo's real wire protocol
// (parallel TCP data channels, CRC-32 integrity), one session per archive.
type GridFTPTransport struct {
	// Client is a dialled gridftp client bound to the destination server.
	Client *gridftp.Client
}

// Name implements Transport.
func (t *GridFTPTransport) Name() string { return "gridftp" }

// Send implements Transport.
func (t *GridFTPTransport) Send(ctx context.Context, name string, data []byte) (float64, error) {
	if t.Client == nil {
		return 0, errors.New("core: gridftp transport needs a client")
	}
	sum, err := t.Client.Transfer(ctx, []gridftp.File{{Name: name, Data: data}})
	if err != nil {
		return 0, fmt.Errorf("core: gridftp send %s: %w", name, err)
	}
	return sum.Seconds, nil
}
