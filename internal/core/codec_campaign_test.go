package core

import (
	"context"
	"strings"
	"testing"

	"ocelot/internal/datagen"
	"ocelot/internal/sz"
	"ocelot/internal/szx"
)

// codecCampaignFields builds a small CESM workload.
func codecCampaignFields(t *testing.T, n int) []*datagen.Field {
	t.Helper()
	names := datagen.Fields("CESM")[:n]
	fields := make([]*datagen.Field, 0, n)
	for _, name := range names {
		f, err := datagen.Generate("CESM", name, 40, 5)
		if err != nil {
			t.Fatal(err)
		}
		fields = append(fields, f)
	}
	return fields
}

// TestCampaignSzxCodec runs the full pipelined campaign on the szx codec:
// compress, pack, ship, decompress via registry dispatch, verify bounds.
func TestCampaignSzxCodec(t *testing.T) {
	fields := codecCampaignFields(t, 6)
	res, err := RunPipelinedCampaign(context.Background(), fields, PipelineOptions{
		CampaignOptions: CampaignOptions{
			RelErrorBound: 1e-3,
			Workers:       4,
			GroupParam:    3,
			Codec:         szx.Name,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Codec != szx.Name {
		t.Errorf("result codec %q, want %q", res.Codec, szx.Name)
	}
	if res.MaxRelError > 1e-3*(1+1e-9) {
		t.Errorf("max relative error %g exceeds the bound", res.MaxRelError)
	}
	if res.Ratio <= 1 {
		t.Errorf("ratio %.2f did not compress", res.Ratio)
	}
	if res.Files != 6 || res.Groups != 3 {
		t.Errorf("files %d groups %d", res.Files, res.Groups)
	}
}

// TestCampaignSzxChunkFanout exercises the generic codec path through the
// chunk fan-out endpoint: szx chunks are compressed by the faas workers,
// assembled into OCSC containers, and must round-trip within the bound.
func TestCampaignSzxChunkFanout(t *testing.T) {
	fields := codecCampaignFields(t, 4)
	chunkMB := float64(fields[0].RawBytes()) / 4 / 1e6
	res, err := RunPipelinedCampaign(context.Background(), fields, PipelineOptions{
		CampaignOptions: CampaignOptions{
			RelErrorBound: 1e-3,
			Workers:       4,
			GroupParam:    2,
			Codec:         szx.Name,
		},
		ChunkMB:         chunkMB,
		CompressWorkers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Chunks <= res.Files {
		t.Errorf("fields did not split: %d chunks for %d fields", res.Chunks, res.Files)
	}
	if res.MaxRelError > 1e-3*(1+1e-9) {
		t.Errorf("max relative error %g exceeds the bound", res.MaxRelError)
	}
	if res.ReconDigest == 0 {
		t.Error("fan-out campaign should report a reconstruction digest")
	}
}

// TestCampaignMixedCodecs drives the engine with per-field codec
// settings (what a planned campaign does): sz3 and szx members share
// group archives and the verify stage dispatches per member.
func TestCampaignMixedCodecs(t *testing.T) {
	fields := codecCampaignFields(t, 4)
	settings := make([]fieldSetting, len(fields))
	for i := range settings {
		settings[i] = fieldSetting{relEB: 1e-3, codec: sz.CodecName}
		if i%2 == 1 {
			settings[i].codec = szx.Name
		}
	}
	res, err := runCampaign(context.Background(), fields, CampaignOptions{
		Workers:    4,
		GroupParam: 2,
	}, campaignMode{
		pipelined:       true,
		transport:       NopTransport{},
		transferStreams: 2,
		perField:        settings,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Codec != "mixed" {
		t.Errorf("result codec %q, want mixed", res.Codec)
	}
	if res.MaxRelError > 1e-3*(1+1e-9) {
		t.Errorf("max relative error %g exceeds the bound", res.MaxRelError)
	}
}

// TestCampaignUnknownCodecFailsFast: a typo'd codec name errors before
// any compression starts, citing the valid names.
func TestCampaignUnknownCodecFailsFast(t *testing.T) {
	fields := codecCampaignFields(t, 2)
	_, err := RunPipelinedCampaign(context.Background(), fields, PipelineOptions{
		CampaignOptions: CampaignOptions{
			RelErrorBound: 1e-3,
			Codec:         "zstd",
		},
	})
	if err == nil {
		t.Fatal("want error for unknown codec")
	}
	if !strings.Contains(err.Error(), "valid:") {
		t.Errorf("error %q should list the valid codec names", err)
	}
}
