package core

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ocelot/internal/datagen"
	"ocelot/internal/gridftp"
	"ocelot/internal/grouping"
	"ocelot/internal/wan"
)

// pipelineFields builds a campaign large enough that compression takes
// real wall time, so stage overlap is observable.
func pipelineFields(t testing.TB, n, shrink int) []*datagen.Field {
	t.Helper()
	names := datagen.Fields("CESM")
	if n > len(names) {
		n = len(names)
	}
	fields := make([]*datagen.Field, 0, n)
	for _, name := range names[:n] {
		f, err := datagen.Generate("CESM", name, shrink, 5)
		if err != nil {
			t.Fatal(err)
		}
		fields = append(fields, f)
	}
	return fields
}

// slowLink makes each archive send sleep tens of milliseconds so the
// transfer stage dominates and overlap with compression is unmistakable.
func slowLink() *wan.Link {
	return &wan.Link{Name: "test", BandwidthMBps: 4000, PerFileOverheadSec: 0.03, Concurrency: 8}
}

func TestRunPipelinedCampaignOverlapsStages(t *testing.T) {
	fields := pipelineFields(t, 12, 16)
	res, err := RunPipelinedCampaign(context.Background(), fields, PipelineOptions{
		CampaignOptions: CampaignOptions{
			RelErrorBound: 1e-3,
			Workers:       4,
			GroupParam:    6, // ByWorldSize → 6 groups of 2
		},
		Transport:       &SimulatedWANTransport{Link: slowLink(), Timescale: 1},
		TransferStreams: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pipelined {
		t.Error("result not marked pipelined")
	}
	if res.Files != 12 || res.Groups != 6 {
		t.Errorf("files=%d groups=%d, want 12/6", res.Files, res.Groups)
	}
	if res.Ratio <= 1 {
		t.Errorf("ratio = %.2f, expected compression", res.Ratio)
	}
	if res.MaxRelError > 1e-3*(1+1e-9) {
		t.Errorf("max relative error %g exceeds bound", res.MaxRelError)
	}
	if res.Metadata == "" || !strings.Contains(res.Metadata, "groups: 6") {
		t.Errorf("metadata missing or wrong:\n%s", res.Metadata)
	}
	if res.LinkSec <= 0 {
		t.Errorf("LinkSec = %g, want > 0 (simulated WAN charged nothing)", res.LinkSec)
	}
	if res.CompressSec <= 0 || res.TransferSec <= 0 || res.DecompressSec <= 0 || res.WallSec <= 0 {
		t.Errorf("missing stage times: %+v", res)
	}
	if len(res.Stages) != 4 {
		t.Fatalf("stages = %d, want 4", len(res.Stages))
	}
	byName := map[string]StageTiming{}
	for _, s := range res.Stages {
		byName[s.Name] = s
	}
	if byName["compress"].Items != 12 {
		t.Errorf("compress items = %d", byName["compress"].Items)
	}
	if byName["transfer"].Items != 6 || byName["decompress"].Items != 6 {
		t.Errorf("transfer/decompress items = %d/%d, want 6/6",
			byName["transfer"].Items, byName["decompress"].Items)
	}
	// The whole point: stages ran concurrently. With 6 sends of ≥ 30 ms
	// paced while compression/decompression proceed, the measured overlap
	// is structurally far from zero.
	if res.OverlapSec <= 0 {
		t.Errorf("OverlapSec = %g, want > 0", res.OverlapSec)
	}
	serial := res.CompressSec + res.TransferSec + res.DecompressSec
	if res.WallSec >= serial {
		t.Errorf("no pipelining: wall %.3fs >= serial-phase sum %.3fs", res.WallSec, serial)
	}
}

func TestRunPipelinedCampaignTargetSizeGrouping(t *testing.T) {
	fields := pipelineFields(t, 8, 36)
	res, err := RunPipelinedCampaign(context.Background(), fields, PipelineOptions{
		CampaignOptions: CampaignOptions{
			RelErrorBound: 1e-3,
			Workers:       4,
			GroupStrategy: grouping.ByTargetSize,
			GroupParam:    1 << 14, // small target → several groups
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Groups < 2 {
		t.Errorf("groups = %d, want ≥ 2 with a small byte target", res.Groups)
	}
	if res.MaxRelError > 1e-3*(1+1e-9) {
		t.Errorf("bound violated: %g", res.MaxRelError)
	}
}

func TestRunPipelinedCampaignSingleArchive(t *testing.T) {
	fields := pipelineFields(t, 4, 36)
	res, err := RunPipelinedCampaign(context.Background(), fields, PipelineOptions{
		CampaignOptions: CampaignOptions{
			RelErrorBound: 1e-3,
			Workers:       2,
			GroupStrategy: grouping.SingleArchive,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Groups != 1 {
		t.Errorf("groups = %d, want 1", res.Groups)
	}
}

func TestRunPipelinedCampaignOverGridFTP(t *testing.T) {
	dir := t.TempDir()
	srv, err := gridftp.NewServer(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := gridftp.Dial(srv.Addr(), 4)
	if err != nil {
		t.Fatal(err)
	}

	fields := pipelineFields(t, 6, 36)
	res, err := RunPipelinedCampaign(context.Background(), fields, PipelineOptions{
		CampaignOptions: CampaignOptions{
			RelErrorBound: 1e-3,
			Workers:       3,
			GroupParam:    3,
		},
		Transport:       &GridFTPTransport{Client: client},
		TransferStreams: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every archive must have landed at the destination over the real wire.
	landed, err := filepath.Glob(filepath.Join(dir, "group-*.ocgr"))
	if err != nil {
		t.Fatal(err)
	}
	if len(landed) != res.Groups {
		t.Errorf("%d archives on disk, want %d", len(landed), res.Groups)
	}
	for _, p := range landed {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() == 0 {
			t.Errorf("empty archive %s", p)
		}
	}
}

func TestRunPipelinedCampaignValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := RunPipelinedCampaign(ctx, nil, PipelineOptions{
		CampaignOptions: CampaignOptions{RelErrorBound: 1e-3},
	}); err == nil {
		t.Error("no fields must error")
	}
	fields := pipelineFields(t, 1, 40)
	if _, err := RunPipelinedCampaign(ctx, fields, PipelineOptions{}); err == nil {
		t.Error("zero bound must error")
	}
	if _, err := RunPipelinedCampaign(ctx, fields, PipelineOptions{
		CampaignOptions: CampaignOptions{RelErrorBound: 1e-3, GroupStrategy: grouping.Strategy(99)},
	}); err == nil {
		t.Error("unknown strategy must error")
	}
}

func TestRunPipelinedCampaignCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	fields := pipelineFields(t, 4, 36)
	if _, err := RunPipelinedCampaign(ctx, fields, PipelineOptions{
		CampaignOptions: CampaignOptions{RelErrorBound: 1e-3},
	}); err == nil {
		t.Error("cancelled context must error")
	}
}

func TestBarrierCampaignReportsEngineStats(t *testing.T) {
	fields := campaignFields(t)
	res, err := RunCampaign(context.Background(), fields, CampaignOptions{
		RelErrorBound: 1e-3,
		Workers:       4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pipelined {
		t.Error("barrier run must not be marked pipelined")
	}
	if res.WallSec <= 0 || len(res.Stages) != 4 {
		t.Errorf("engine stats missing: wall=%g stages=%d", res.WallSec, len(res.Stages))
	}
	if res.LinkSec != 0 {
		t.Errorf("nop transport charged %g link seconds", res.LinkSec)
	}
}

func TestTransportValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := (&SimulatedWANTransport{}).Send(ctx, "x", nil); err == nil {
		t.Error("nil link must error")
	}
	if _, err := (&GridFTPTransport{}).Send(ctx, "x", nil); err == nil {
		t.Error("nil client must error")
	}
	if sec, err := (NopTransport{}).Send(ctx, "x", []byte{1}); err != nil || sec != 0 {
		t.Errorf("nop: sec=%g err=%v", sec, err)
	}
	names := []string{(NopTransport{}).Name(), (&SimulatedWANTransport{Link: slowLink()}).Name(), (&GridFTPTransport{}).Name()}
	for _, n := range names {
		if n == "" {
			t.Error("empty transport name")
		}
	}
}

func TestRunSequentialCampaignBaseline(t *testing.T) {
	fields := pipelineFields(t, 8, 36)
	res, err := RunSequentialCampaign(context.Background(), fields, PipelineOptions{
		CampaignOptions: CampaignOptions{
			RelErrorBound: 1e-3,
			Workers:       4,
			GroupParam:    4,
		},
		Transport:       &SimulatedWANTransport{Link: slowLink(), Timescale: 1},
		TransferStreams: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pipelined {
		t.Error("sequential run must not be marked pipelined")
	}
	if res.MaxRelError > 1e-3*(1+1e-9) {
		t.Errorf("bound violated: %g", res.MaxRelError)
	}
	if len(res.Stages) != 5 { // compress, pack, transfer, barrier, decompress
		t.Errorf("stages = %d, want 5", len(res.Stages))
	}
	if res.LinkSec <= 0 {
		t.Errorf("LinkSec = %g, want > 0", res.LinkSec)
	}
	// The barrier forces decompress to start only after the last send
	// ended: their active windows must not interleave.
	var transfer, decompress StageTiming
	for _, s := range res.Stages {
		switch s.Name {
		case "transfer":
			transfer = s
		case "decompress":
			decompress = s
		}
	}
	if decompress.FirstStart.Before(transfer.LastEnd) {
		t.Errorf("decompress started %v before transfer ended %v",
			decompress.FirstStart, transfer.LastEnd)
	}
}

// TestPipelinedWorldSizeGroupCount: the streaming packer must produce
// exactly the requested number of groups even when the field count does
// not divide evenly, so sequential-vs-pipelined comparisons ship the same
// archive count (same per-file WAN overhead).
func TestPipelinedWorldSizeGroupCount(t *testing.T) {
	fields := pipelineFields(t, 5, 40)
	res, err := RunPipelinedCampaign(context.Background(), fields, PipelineOptions{
		CampaignOptions: CampaignOptions{RelErrorBound: 1e-3, Workers: 4, GroupParam: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Groups != 4 {
		t.Errorf("groups = %d, want 4 (balanced 2+1+1+1)", res.Groups)
	}
}

// TestPipelinedCompressErrorNotMasked: when compression fails, the caller
// must see the compress-stage error, not a downstream decompress error on
// a half-packed group.
func TestPipelinedCompressErrorNotMasked(t *testing.T) {
	fields := pipelineFields(t, 4, 40)
	bad := &datagen.Field{App: "CESM", Name: "broken", Dims: []int{10, 10},
		Data: make([]float64, 5), ElementSize: 8}
	fields = append(fields, bad)
	_, err := RunPipelinedCampaign(context.Background(), fields, PipelineOptions{
		CampaignOptions: CampaignOptions{RelErrorBound: 1e-3, Workers: 2, GroupParam: 2},
	})
	if err == nil {
		t.Fatal("mismatched dims must error")
	}
	if !strings.Contains(err.Error(), "stage compress") {
		t.Errorf("root cause masked: %v", err)
	}
}

// TestCampaignStageThroughput: every campaign stage must carry a byte
// attribution and a derived MB/s, with compress/decompress measured over
// raw bytes and pack/transfer over their on-the-wire volumes.
func TestCampaignStageThroughput(t *testing.T) {
	fields := pipelineFields(t, 6, 24)
	res, err := RunPipelinedCampaign(context.Background(), fields, PipelineOptions{
		CampaignOptions: CampaignOptions{RelErrorBound: 1e-3, Workers: 2, GroupParam: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	wantBytes := map[string]int64{
		"compress":   res.RawBytes,
		"pack":       res.CompressedBytes,
		"transfer":   res.GroupedBytes,
		"decompress": res.RawBytes,
	}
	seen := 0
	for _, s := range res.Stages {
		want, ok := wantBytes[s.Name]
		if !ok {
			continue
		}
		seen++
		if s.Bytes != want {
			t.Errorf("stage %s: Bytes = %d, want %d", s.Name, s.Bytes, want)
		}
		if s.WallSec > 0 && s.MBps <= 0 {
			t.Errorf("stage %s: MBps = %g with wall %g", s.Name, s.MBps, s.WallSec)
		}
		if s.WallSec > 0 {
			wantRate := float64(s.Bytes) / 1e6 / s.WallSec
			if diff := s.MBps - wantRate; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("stage %s: MBps %g != bytes/wall %g", s.Name, s.MBps, wantRate)
			}
		}
	}
	if seen != 4 {
		t.Errorf("attributed %d stages, want 4", seen)
	}
}
