package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"ocelot/internal/codec"
	"ocelot/internal/datagen"
	"ocelot/internal/faas"
	"ocelot/internal/grouping"
	"ocelot/internal/journal"
	"ocelot/internal/obs"
	"ocelot/internal/planner"
	"ocelot/internal/quality"
	"ocelot/internal/sentinel"
	"ocelot/internal/sz"
)

// Engine selects how a campaign's stages execute.
type Engine uint8

const (
	// EnginePipelined streams compress → pack → transfer → decompress
	// through bounded channels, so a packed group ships while later fields
	// are still compressing (the default).
	EnginePipelined Engine = iota
	// EngineBarrier packs only after every field has compressed, so groups
	// follow grouping.Plan exactly — the classic RunCampaign semantics.
	EngineBarrier
	// EngineSequential adds a hard barrier between the transfer and
	// decompress phases too: the pre-pipelining baseline overlap
	// benchmarks compare against.
	EngineSequential
)

// String implements fmt.Stringer.
func (e Engine) String() string {
	switch e {
	case EnginePipelined:
		return "pipelined"
	case EngineBarrier:
		return "barrier"
	case EngineSequential:
		return "sequential"
	default:
		return fmt.Sprintf("engine(%d)", uint8(e))
	}
}

// ParseEngine resolves an engine by name ("" selects pipelined).
func ParseEngine(name string) (Engine, error) {
	switch name {
	case "", "pipelined":
		return EnginePipelined, nil
	case "barrier":
		return EngineBarrier, nil
	case "sequential":
		return EngineSequential, nil
	default:
		return 0, fmt.Errorf("core: unknown engine %q (have: pipelined, barrier, sequential)", name)
	}
}

// CampaignSpec is the single description of a campaign: what to compress
// (bounds, predictor, codec), how to pack it, which engine executes the
// stages, which transport ships the archives, how compression fans out,
// and whether the predictive planner chooses per-field configurations
// first. It unifies the historical CampaignOptions / PipelineOptions /
// PlanOptions triple — those remain as deprecated wrappers — and is what
// Submit, Run, and the serve daemon's scheduler all consume.
//
// The zero value is not runnable: RelErrorBound must be positive unless
// Adaptive is set (the planner then assigns per-field bounds).
type CampaignSpec struct {
	// RelErrorBound is applied relative to each field's value range.
	// Adaptive campaigns may leave it zero: the plan assigns bounds.
	RelErrorBound float64
	// Predictor for the SZ pipeline; 0 = interp. Ignored by codecs without
	// a predictor stage.
	Predictor sz.Predictor
	// Codec names the registered compressor every field uses ("" = sz3).
	// Adaptive campaigns override it per field with the plan's decisions.
	Codec string
	// Workers bounds compression/decompression parallelism; ≤ 0 = 4.
	Workers int

	// GroupStrategy and GroupParam control packing; 0 = ByWorldSize with
	// world = Workers.
	GroupStrategy grouping.Strategy
	GroupParam    int64

	// Engine selects barrier, pipelined, or sequential stage execution.
	Engine Engine
	// Transport ships packed archives; nil means NopTransport (in-process).
	Transport Transport
	// TransferStreams is the number of goroutines offering archives to the
	// transport at once; ≤ 0 defaults to the transport's own hint (a
	// simulated WAN hints its link's concurrency), else 4.
	TransferStreams int
	// StageBuffer is the capacity of the channels between stages; ≤ 0
	// means the worker count.
	StageBuffer int
	// TransportWeight is the campaign's fair-share weight on transports
	// implementing WeightedTransport (≤ 0 = unweighted Send). The serve
	// scheduler sets it to the owning tenant's weight so concurrent
	// campaigns split a shared link proportionally.
	TransportWeight float64

	// ChunkMB, when > 0, enables chunk-parallel compression over an
	// in-process faas endpoint (see PipelineOptions.ChunkMB).
	ChunkMB float64
	// CompressWorkers is the fan-out endpoint's worker count; ≤ 0 defaults
	// to Workers.
	CompressWorkers int
	// ChunkEndpoint tunes the deployed fan-out endpoint; its Workers field
	// is overridden by CompressWorkers. Ignored when ChunkMB ≤ 0.
	ChunkEndpoint faas.EndpointConfig

	// Adaptive runs the predictive planner first: per-field bounds,
	// predictors, codecs, and the grouping knob come from the plan, and
	// the result reports predicted vs. actual.
	Adaptive bool
	// Model is the trained quality model adaptive campaigns predict with.
	// nil degenerates gracefully to the most conservative candidate.
	Model *quality.Model
	// Planner tunes the adaptive decision pass; Link and Workers default
	// from the campaign context when unset.
	Planner planner.Options

	// Journal, when non-empty, is the path of a durable campaign manifest
	// (internal/journal): every packed, sent, and verified group is recorded
	// with write+fsync before the campaign proceeds, so a crashed or
	// canceled campaign can later be resumed from exactly what completed.
	// Journaling also enables the per-field reconstruction digest pass
	// (CampaignResult.ReconDigest).
	Journal string
	// ResumeFrom, when non-empty, loads an existing journal and re-executes
	// only the fields no acked group covers, reproducing the uninterrupted
	// campaign's ReconDigest. The journal's spec fingerprint must match this
	// spec (journal.ErrSpecMismatch otherwise). Usually set equal to Journal
	// so the resumed incarnation extends the same file.
	ResumeFrom string
	// JournalMeta is caller bookkeeping stamped into the journal's begin
	// record — the serve daemon stores the original submit request here so
	// its recovery pass can reconstruct campaigns from journals alone.
	JournalMeta map[string]string
	// Retry tunes transient-failure retry with exponential backoff for the
	// transfer stage and the chunk fan-out. The zero value keeps fail-fast
	// semantics (a single attempt).
	Retry sentinel.RetryPolicy
	// Obs attaches an observability bundle (internal/obs): when set, the
	// campaign records spans for every lifecycle step — plan, per-field
	// compress (down to chunk fan-out), pack, per-group transfer including
	// each retry/failover attempt and journal ack, decompress, verify —
	// on Obs.Tracer, and instruments counters/histograms on Obs.Metrics
	// (snapshotted into CampaignResult.Metrics). nil costs only pointer
	// checks on the instrumented paths.
	Obs *obs.Obs
	// FallbackTransports are failover endpoints: when the primary Transport
	// exhausts its retry budget — or fails permanently — each fallback is
	// tried in order under the same policy. The terminal error is a
	// classified *sentinel.PermanentError.
	FallbackTransports []Transport

	// NoIntegrity disables the end-to-end checksum layer: packed archives
	// ship unframed and the verify stage decompresses whatever arrives. On
	// a corrupting link this is the silent-corruption testbed — garbage
	// bytes reach the codecs undetected. The default (false) frames every
	// archive with CRC-32C digests at pack time and verifies the frame
	// before decompressing, so in-flight corruption is detected and the
	// affected group retransmitted under Retry.
	NoIntegrity bool
	// BoundAudit tunes the post-decompress pointwise bound audit and its
	// quarantine escape; the zero value audits every point and fails the
	// campaign on a violation (the historical behaviour).
	BoundAudit BoundAudit

	// Now injects a clock for tests; nil = time.Now.
	Now func() time.Time
}

// BoundAudit is the SpecOption controlling the post-decompress audit: after
// each field decompresses, its reconstruction is checked pointwise against
// the promised absolute error bound — the codec's contract is verified
// against the data, not trusted.
type BoundAudit struct {
	// Stride samples every Stride-th point (plus the final point); ≤ 1
	// audits every point. Sampling weakens the per-point guarantee in
	// exchange for less verify-stage CPU on very large fields.
	Stride int
	// Quarantine, when set, converts a bound violation from a campaign
	// failure into a degraded-field recovery: the offending field is
	// re-shipped lossless (raw float64 bits through the deflate escape,
	// integrity-framed), replaces the lossy reconstruction bit-exactly,
	// and is recorded in CampaignResult.DegradedFields.
	Quarantine bool
}

// Validate fast-fails the spec errors a daemon wants to reject at submit
// time (empty codec names resolve; unknown codecs, missing bounds, and
// unknown engines do not wait until mid-pipeline).
func (s CampaignSpec) Validate() error {
	if s.RelErrorBound <= 0 && !s.Adaptive {
		return errors.New("core: relative error bound must be positive")
	}
	if _, err := codec.Normalize(s.Codec); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if s.Engine > EngineSequential {
		return fmt.Errorf("core: unknown engine %v", s.Engine)
	}
	if s.BoundAudit.Stride < 0 {
		return fmt.Errorf("core: bound audit stride %d is negative", s.BoundAudit.Stride)
	}
	return nil
}

// legacyOptions projects the spec onto the engine-internal option struct.
func (s CampaignSpec) legacyOptions() CampaignOptions {
	return CampaignOptions{
		RelErrorBound: s.RelErrorBound,
		Predictor:     s.Predictor,
		Codec:         s.Codec,
		Workers:       s.Workers,
		GroupStrategy: s.GroupStrategy,
		GroupParam:    s.GroupParam,
		Now:           s.Now,
	}
}

// chunkMode derives the chunk fan-out portion of a campaignMode.
func (s CampaignSpec) chunkMode() (chunkBytes int64, workers int, ep faas.EndpointConfig) {
	if s.ChunkMB <= 0 {
		return 0, 0, faas.EndpointConfig{}
	}
	workers = s.CompressWorkers
	if workers <= 0 {
		workers = s.Workers
	}
	if workers <= 0 {
		workers = 4
	}
	ep = s.ChunkEndpoint
	ep.Workers = workers
	return int64(s.ChunkMB * 1e6), workers, ep
}

// resolveTransport fills the transport and stream-count defaults.
func (s CampaignSpec) resolveTransport() (Transport, int) {
	transport := s.Transport
	if transport == nil {
		transport = NopTransport{}
	}
	streams := s.TransferStreams
	if streams <= 0 {
		streams = defaultStreams(transport)
	}
	return transport, streams
}

// mode assembles the engine-internal campaignMode for this spec.
func (s CampaignSpec) mode() campaignMode {
	transport, streams := s.resolveTransport()
	chunkBytes, cw, ep := s.chunkMode()
	return campaignMode{
		pipelined:       s.Engine == EnginePipelined,
		sequential:      s.Engine == EngineSequential,
		transport:       transport,
		transferStreams: streams,
		buffer:          s.StageBuffer,
		chunkBytes:      chunkBytes,
		compressWorkers: cw,
		endpoint:        ep,
		weight:          s.TransportWeight,
		journalPath:     s.Journal,
		resumePath:      s.ResumeFrom,
		journalMeta:     s.JournalMeta,
		retry:           s.Retry,
		fallbacks:       s.FallbackTransports,
		obs:             s.Obs,
		integrity:       !s.NoIntegrity,
		audit:           s.BoundAudit,
	}
}

// resolvedPlanner fills Planner defaults from the campaign context: the
// assumed parallelism follows the fan-out endpoint when chunking is on,
// the chunk granularity follows ChunkMB, and the link defaults to the
// simulated transport's, so the plan predicts the campaign that will
// actually run.
func (s CampaignSpec) resolvedPlanner() planner.Options {
	p := s.Planner
	if p.Workers <= 0 {
		if s.ChunkMB > 0 && s.CompressWorkers > 0 {
			p.Workers = s.CompressWorkers
		} else {
			p.Workers = s.Workers
		}
	}
	if p.ChunkBytes == 0 && s.ChunkMB > 0 {
		p.ChunkBytes = int64(s.ChunkMB * 1e6)
	}
	if p.ChunkDispatchSec == 0 && s.ChunkMB > 0 {
		p.ChunkDispatchSec = s.ChunkEndpoint.WarmStart.Seconds()
	}
	if p.Link == nil {
		if st, ok := s.Transport.(*SimulatedWANTransport); ok {
			p.Link = st.Link
		}
	}
	return p
}

// PlanSpec runs only the plan stage of an adaptive spec: the cheap
// sampling pass over every field, quality predictions across the
// candidate grid, and the grouping decision. The returned plan is what an
// Adaptive Submit/Run would execute.
func PlanSpec(fields []*datagen.Field, spec CampaignSpec) (*planner.Plan, error) {
	return planner.Build(fields, spec.Model, spec.resolvedPlanner())
}

// runSpec executes one campaign end to end: the optional adaptive plan
// pass, then the shared stage graph. observe/progress/planning feed the
// Campaign handle's live status when the run came through Submit.
func runSpec(ctx context.Context, fields []*datagen.Field, spec CampaignSpec,
	mode campaignMode, planning func()) (*CampaignResult, error) {
	opts := spec.legacyOptions()
	if spec.ResumeFrom != "" {
		m, err := journal.Load(spec.ResumeFrom)
		if err != nil {
			return nil, fmt.Errorf("core: resume: %w", err)
		}
		if len(m.Fields) != len(fields) {
			return nil, fmt.Errorf("core: journal %s records %d fields, campaign has %d",
				spec.ResumeFrom, len(m.Fields), len(fields))
		}
		mode.manifest = m
	}
	if !spec.Adaptive {
		return runCampaign(ctx, fields, opts, mode)
	}

	now := spec.Now
	if now == nil {
		now = time.Now
	}
	if planning != nil {
		planning()
	}
	planStart := now()
	_, planSpan := mode.obs.StartSpan(ctx, "plan", obs.Int("fields", int64(len(fields))))
	var plan *planner.Plan
	var err error
	if m := mode.manifest; m != nil {
		// Resumed adaptive campaign: execution settings are pinned from the
		// journal's begin record — never re-planned, so the resumed half is
		// byte-compatible with the completed half. The plan pass only
		// re-prices the REMAINING work (Done mask) so predicted-vs-actual
		// stays meaningful for the resume itself.
		opts.GroupStrategy = grouping.Strategy(m.Strategy)
		opts.GroupParam = m.GroupParam
		settings := make([]fieldSetting, len(m.Fields))
		for i, fp := range m.Fields {
			settings[i] = fieldSetting{relEB: fp.RelEB, predictor: sz.Predictor(fp.Predictor), codec: fp.Codec}
		}
		mode.perField = settings
		mode.measurePSNR = true
		popts := spec.resolvedPlanner()
		popts.Done, _ = m.DoneFields()
		plan, err = planner.Build(fields, spec.Model, popts)
	} else {
		plan, err = PlanSpec(fields, spec)
	}
	planSpan.End()
	if err != nil {
		return nil, err
	}
	planSec := now().Sub(planStart).Seconds()
	if err := ctx.Err(); err != nil {
		// A campaign cancelled during its plan pass must not start moving
		// bytes.
		return nil, err
	}

	if mode.manifest == nil {
		opts.GroupStrategy = plan.GroupStrategy
		opts.GroupParam = plan.GroupParam
		settings := make([]fieldSetting, len(plan.Fields))
		for i, fp := range plan.Fields {
			settings[i] = fieldSetting{relEB: fp.RelEB, predictor: fp.Predictor, codec: fp.Codec}
		}
		mode.perField = settings
		mode.measurePSNR = true
	}

	res, err := runCampaign(ctx, fields, opts, mode)
	if err != nil {
		return nil, err
	}
	res.Planned = true
	res.PlanSec = planSec
	res.Plan = plan
	res.PredRatio = plan.PredRatio
	res.PredCompressSec = plan.PredCompressSec
	res.PredTransferSec = plan.PredTransferSec
	res.PredWallSec = plan.PredWallSec
	if link := spec.resolvedPlanner().Link; link != nil && len(res.GroupBytes) > 0 {
		est, err := link.Estimate(res.GroupBytes, spec.Planner.Seed)
		if err != nil {
			return nil, err
		}
		res.LinkEstSec = est.Seconds
	}
	return res, nil
}

// Run executes a campaign described by spec and blocks until it finishes
// — the convenience wrapper over Submit + Wait that every one-shot caller
// (CLI, examples, benchmarks) uses. Cancellation via ctx unwinds the
// stages promptly, including mid-send on simulated WAN transports.
func Run(ctx context.Context, fields []*datagen.Field, spec CampaignSpec) (*CampaignResult, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return runSpec(ctx, fields, spec, spec.mode(), nil)
}
