package core

import (
	"context"
	"errors"
	"time"

	"ocelot/internal/datagen"
	"ocelot/internal/faas"
	"ocelot/internal/grouping"
	"ocelot/internal/planner"
	"ocelot/internal/sz"

	// Link every registered codec into campaign binaries so codec names
	// resolve and mixed-codec archives decompress via registry dispatch.
	_ "ocelot/internal/szx"
)

// CampaignOptions configures a real (in-process) compress-group-decompress
// campaign over actual data.
//
// Deprecated: new code should build a CampaignSpec and call Run or Submit;
// CampaignOptions survives as the compatibility surface for the original
// RunCampaign API (and as the engine-internal projection of a spec).
type CampaignOptions struct {
	// RelErrorBound is applied relative to each field's value range.
	RelErrorBound float64
	// Predictor for the SZ pipeline; 0 = interp. Ignored by codecs without
	// a predictor stage.
	Predictor sz.Predictor
	// Codec names the registered compressor every field uses ("" = sz3).
	// Planned campaigns override it per field with the plan's decisions.
	Codec string
	// Workers bounds compression/decompression parallelism; ≤ 0 = 4.
	Workers int
	// GroupStrategy and GroupParam control packing; 0 = ByWorldSize with
	// world = Workers.
	GroupStrategy grouping.Strategy
	GroupParam    int64
	// Now injects a clock for tests; nil = time.Now.
	Now func() time.Time
}

// CampaignResult reports a real campaign run.
type CampaignResult struct {
	Files    int
	RawBytes int64
	// Codec is the registry name the campaign compressed with; "mixed"
	// when a plan assigned different codecs to different fields (the
	// per-field detail is in Plan.Fields).
	Codec           string
	CompressedBytes int64
	Groups          int
	GroupedBytes    int64
	GroupBytes      []int64 // realized per-archive sizes, in emit order
	Ratio           float64
	CompressSec     float64
	DecompressSec   float64
	MaxRelError     float64 // max observed |err| / field range, ≤ RelErrorBound on success
	Metadata        string

	// Streaming-engine accounting (populated by both campaign paths).
	Pipelined   bool    // true when run by RunPipelinedCampaign
	PackSec     float64 // time spent packing group archives
	TransferSec float64 // transfer-stage span (first send start to last send end)
	LinkSec     float64 // transport-reported seconds (e.g. simulated WAN time)
	WallSec     float64 // end-to-end wall time of the campaign

	// Chunk fan-out accounting (populated when PipelineOptions.ChunkMB > 0).
	Chunks          int // total compression chunks across all fields
	CompressWorkers int // fan-out endpoint worker count (0 = fan-out off)
	// ReconDigest is an FNV-64a digest of every field's reconstruction,
	// folded in field order (independent of completion order). Two
	// fan-out campaigns over the same fields produced bit-identical
	// decompressed output iff their digests match — the check the
	// parallel-compression artifact uses to prove worker count never
	// changes the bytes. Zero when chunk fan-out is off: monolithic runs
	// do not pay the digest pass.
	ReconDigest uint64
	// OverlapSec is the measured concurrency between stages: the sum of
	// per-stage spans minus the run's span. Zero means strictly serial
	// phases; the pipelined engine's win is this time, hidden.
	OverlapSec float64
	Stages     []StageTiming

	// Fault-tolerance accounting (populated when the spec journals,
	// resumes, or retries — see CampaignSpec.Journal/ResumeFrom/Retry).
	// ReconDigest is also populated for journaled and resumed campaigns: a
	// resumed campaign folds the journal's recorded digests for skipped
	// fields with fresh digests for re-executed ones, reproducing the
	// uninterrupted run's digest bit for bit.
	Resumed       bool  // this run resumed from a journal
	SkippedGroups int   // journal-acked groups the resume did not re-execute
	SkippedBytes  int64 // their archive bytes — work the resume skipped
	Retries       int   // transient retries across transfer sends and fan-out
	Failovers     int   // endpoint failovers across transfer sends

	// End-to-end integrity accounting (populated when the integrity frame
	// is on — the default; see CampaignSpec.NoIntegrity/BoundAudit).
	// SentBytes-style accounting stays exact under corruption:
	// campaign_sent_bytes_total = GroupedBytes + RetransmitBytes +
	// DegradedBytes, since every delivery is counted once.
	CorruptGroups   int      // groups whose delivery failed checksum verification at least once
	Retransmits     int      // successful re-deliveries of corrupted groups
	RetransmitBytes int64    // bytes those re-deliveries shipped
	DegradedFields  []string // members the bound audit quarantined and re-shipped lossless
	DegradedBytes   int64    // bytes the lossless quarantine escapes shipped

	// Planner accounting (populated by RunPlannedCampaign): the plan's
	// predictions beside the measured outcome, so every adaptive run
	// reports predicted vs. actual.
	Planned         bool    // true when a predictive plan chose the configs
	PlanSec         float64 // seconds spent sampling, predicting, deciding
	MinPSNR         float64 // measured min PSNR across fields (planned runs only)
	PredRatio       float64 // plan's predicted compression ratio (vs. Ratio)
	PredCompressSec float64 // predicted compress wall (vs. CompressSec)
	PredTransferSec float64 // predicted transfer makespan (vs. LinkEstSec)
	PredWallSec     float64 // predicted pipelined wall (vs. WallSec)
	// LinkEstSec is the link model's transfer makespan over the REALIZED
	// archive sizes — the honest "actual" beside PredTransferSec, since
	// LinkSec sums per-send seconds (overlap double-counted) while the
	// prediction is a makespan.
	LinkEstSec float64
	Plan       *planner.Plan // the full per-field decision table

	// Metrics is the inline flattened snapshot of the spec's metrics
	// registry at campaign completion (nil unless CampaignSpec.Obs carries
	// one): every counter/gauge keyed `name{labels}`, histograms as
	// `_sum`/`_count` pairs — the same series GET /metrics exposes from
	// the daemon, without running one.
	Metrics map[string]float64 `json:",omitempty"`
}

// Spec projects the legacy options onto the unified CampaignSpec.
func (o CampaignOptions) Spec() CampaignSpec {
	return CampaignSpec{
		RelErrorBound: o.RelErrorBound,
		Predictor:     o.Predictor,
		Codec:         o.Codec,
		Workers:       o.Workers,
		GroupStrategy: o.GroupStrategy,
		GroupParam:    o.GroupParam,
		Now:           o.Now,
	}
}

// RunCampaign compresses all fields in parallel with the real SZ pipeline,
// packs the streams into groups, unpacks and decompresses them, and
// verifies every value honours the error bound. It is the actual data path
// that the simulation models at scale. Execution runs on the streaming
// engine in barrier mode: packing waits for every stream so groups follow
// grouping.Plan exactly.
//
// Deprecated: equivalent to Run with Engine: EngineBarrier and
// TransferStreams: 1; new code should use Run (or Submit for a handle).
func RunCampaign(ctx context.Context, fields []*datagen.Field, opts CampaignOptions) (*CampaignResult, error) {
	spec := opts.Spec()
	spec.Engine = EngineBarrier
	spec.TransferStreams = 1
	return Run(ctx, fields, spec)
}

// Orchestrator runs campaigns through the funcX-style fabric: compression
// executes on the source endpoint, decompression on the destination
// endpoint, exactly like Ocelot's remote orchestration (Section V.3).
type Orchestrator struct {
	svc      *faas.Service
	sourceEP string
	destEP   string
}

// Function names registered on the fabric.
const (
	fnCompress   = "ocelot.compress"
	fnDecompress = "ocelot.decompress"
)

type compressArgs struct {
	data []float64
	dims []int
	cfg  sz.Config
}

type decompressArgs struct {
	stream []byte
}

// NewOrchestrator registers Ocelot's functions on the fabric and binds the
// source/destination endpoints (which must already be deployed).
func NewOrchestrator(svc *faas.Service, sourceEP, destEP string) (*Orchestrator, error) {
	if svc == nil {
		return nil, errors.New("core: nil faas service")
	}
	if err := svc.RegisterFunction(fnCompress, func(ctx context.Context, payload interface{}) (interface{}, error) {
		args, ok := payload.(compressArgs)
		if !ok {
			return nil, errors.New("ocelot.compress: bad payload")
		}
		stream, _, err := sz.Compress(args.data, args.dims, args.cfg)
		return stream, err
	}); err != nil {
		return nil, err
	}
	if err := svc.RegisterFunction(fnDecompress, func(ctx context.Context, payload interface{}) (interface{}, error) {
		args, ok := payload.(decompressArgs)
		if !ok {
			return nil, errors.New("ocelot.decompress: bad payload")
		}
		recon, _, err := sz.Decompress(args.stream)
		return recon, err
	}); err != nil {
		return nil, err
	}
	return &Orchestrator{svc: svc, sourceEP: sourceEP, destEP: destEP}, nil
}

// CompressRemote submits a compression task to the source endpoint and
// waits for the stream.
func (o *Orchestrator) CompressRemote(ctx context.Context, data []float64, dims []int, cfg sz.Config) ([]byte, error) {
	id, err := o.svc.SubmitContext(ctx, o.sourceEP, fnCompress, compressArgs{data: data, dims: dims, cfg: cfg})
	if err != nil {
		return nil, err
	}
	res, err := o.svc.Wait(ctx, id)
	if err != nil {
		return nil, err
	}
	stream, ok := res.([]byte)
	if !ok {
		return nil, errors.New("core: compress returned wrong type")
	}
	return stream, nil
}

// DecompressRemote submits a decompression task to the destination endpoint.
func (o *Orchestrator) DecompressRemote(ctx context.Context, stream []byte) ([]float64, error) {
	id, err := o.svc.SubmitContext(ctx, o.destEP, fnDecompress, decompressArgs{stream: stream})
	if err != nil {
		return nil, err
	}
	res, err := o.svc.Wait(ctx, id)
	if err != nil {
		return nil, err
	}
	recon, ok := res.([]float64)
	if !ok {
		return nil, errors.New("core: decompress returned wrong type")
	}
	return recon, nil
}
