package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"ocelot/internal/datagen"
	"ocelot/internal/executor"
	"ocelot/internal/faas"
	"ocelot/internal/grouping"
	"ocelot/internal/metrics"
	"ocelot/internal/sz"
)

// CampaignOptions configures a real (in-process) compress-group-decompress
// campaign over actual data.
type CampaignOptions struct {
	// RelErrorBound is applied relative to each field's value range.
	RelErrorBound float64
	// Predictor for the SZ pipeline; 0 = interp.
	Predictor sz.Predictor
	// Workers bounds compression/decompression parallelism; ≤ 0 = 4.
	Workers int
	// GroupStrategy and GroupParam control packing; 0 = ByWorldSize with
	// world = Workers.
	GroupStrategy grouping.Strategy
	GroupParam    int64
	// Now injects a clock for tests; nil = time.Now.
	Now func() time.Time
}

// CampaignResult reports a real campaign run.
type CampaignResult struct {
	Files           int
	RawBytes        int64
	CompressedBytes int64
	Groups          int
	GroupedBytes    int64
	Ratio           float64
	CompressSec     float64
	DecompressSec   float64
	MaxRelError     float64 // max observed |err| / field range, ≤ RelErrorBound on success
	Metadata        string
}

// RunCampaign compresses all fields in parallel with the real SZ pipeline,
// packs the streams into groups, unpacks and decompresses them, and
// verifies every value honours the error bound. It is the actual data path
// that the simulation models at scale.
func RunCampaign(ctx context.Context, fields []*datagen.Field, opts CampaignOptions) (*CampaignResult, error) {
	if len(fields) == 0 {
		return nil, errors.New("core: no fields")
	}
	if opts.RelErrorBound <= 0 {
		return nil, errors.New("core: relative error bound must be positive")
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = 4
	}
	now := opts.Now
	if now == nil {
		now = time.Now
	}
	res := &CampaignResult{Files: len(fields)}
	absEBs := make([]float64, len(fields))
	ranges := make([]float64, len(fields))
	for i, f := range fields {
		res.RawBytes += int64(f.RawBytes())
		r := metrics.ComputeRange(f.Data).Range
		if r <= 0 {
			r = 1
		}
		ranges[i] = r
		absEBs[i] = opts.RelErrorBound * r
	}

	// Parallel compression (Section VII-A).
	start := now()
	streams, err := executor.Map(ctx, workers, len(fields), func(ctx context.Context, i int) ([]byte, error) {
		cfg := sz.DefaultConfig(absEBs[i])
		if opts.Predictor != 0 {
			cfg.Predictor = opts.Predictor
		}
		stream, _, err := sz.Compress(fields[i].Data, fields[i].Dims, cfg)
		if err != nil {
			return nil, fmt.Errorf("compress %s: %w", fields[i].ID(), err)
		}
		return stream, nil
	})
	if err != nil {
		return nil, err
	}
	res.CompressSec = now().Sub(start).Seconds()

	sizes := make([]int64, len(streams))
	names := make([]string, len(streams))
	for i, s := range streams {
		sizes[i] = int64(len(s))
		names[i] = fields[i].ID() + ".sz"
		res.CompressedBytes += int64(len(s))
	}
	res.Ratio = float64(res.RawBytes) / float64(res.CompressedBytes)

	// Grouping (Section VII-C).
	strategy := opts.GroupStrategy
	if strategy == 0 {
		strategy = grouping.ByWorldSize
	}
	param := opts.GroupParam
	if param <= 0 {
		param = int64(workers)
	}
	plan, err := grouping.Plan(sizes, strategy, param)
	if err != nil {
		return nil, err
	}
	archives := make([][]byte, len(plan))
	for g, idxs := range plan {
		members := make([]grouping.Member, 0, len(idxs))
		for _, i := range idxs {
			members = append(members, grouping.Member{Name: names[i], Data: streams[i]})
		}
		arch, err := grouping.Pack(members)
		if err != nil {
			return nil, err
		}
		archives[g] = arch
		res.GroupedBytes += int64(len(arch))
	}
	res.Groups = len(archives)
	res.Metadata = grouping.Metadata(names, plan, strategy)

	// Receiver side: unpack, decompress in parallel, verify bounds.
	type unpacked struct {
		name   string
		stream []byte
	}
	var all []unpacked
	for _, arch := range archives {
		members, err := grouping.Unpack(arch)
		if err != nil {
			return nil, err
		}
		for _, m := range members {
			all = append(all, unpacked{m.Name, m.Data})
		}
	}
	if len(all) != len(fields) {
		return nil, fmt.Errorf("core: %d members after grouping, want %d", len(all), len(fields))
	}
	byName := make(map[string]int, len(fields))
	for i, n := range names {
		byName[n] = i
	}
	start = now()
	maxRel, err := executor.Map(ctx, workers, len(all), func(ctx context.Context, k int) (float64, error) {
		i, ok := byName[all[k].name]
		if !ok {
			return 0, fmt.Errorf("core: unknown member %q", all[k].name)
		}
		recon, dims, err := sz.Decompress(all[k].stream)
		if err != nil {
			return 0, fmt.Errorf("decompress %s: %w", all[k].name, err)
		}
		if len(dims) != len(fields[i].Dims) {
			return 0, fmt.Errorf("core: %s: dims mismatch", all[k].name)
		}
		maxErr, err := metrics.MaxAbsError(fields[i].Data, recon)
		if err != nil {
			return 0, err
		}
		if maxErr > absEBs[i]*(1+1e-9) {
			return 0, fmt.Errorf("core: %s: error %g exceeds bound %g", all[k].name, maxErr, absEBs[i])
		}
		return maxErr / ranges[i], nil
	})
	if err != nil {
		return nil, err
	}
	res.DecompressSec = now().Sub(start).Seconds()
	for _, r := range maxRel {
		res.MaxRelError = math.Max(res.MaxRelError, r)
	}
	return res, nil
}

// Orchestrator runs campaigns through the funcX-style fabric: compression
// executes on the source endpoint, decompression on the destination
// endpoint, exactly like Ocelot's remote orchestration (Section V.3).
type Orchestrator struct {
	svc      *faas.Service
	sourceEP string
	destEP   string
}

// Function names registered on the fabric.
const (
	fnCompress   = "ocelot.compress"
	fnDecompress = "ocelot.decompress"
)

type compressArgs struct {
	data []float64
	dims []int
	cfg  sz.Config
}

type decompressArgs struct {
	stream []byte
}

// NewOrchestrator registers Ocelot's functions on the fabric and binds the
// source/destination endpoints (which must already be deployed).
func NewOrchestrator(svc *faas.Service, sourceEP, destEP string) (*Orchestrator, error) {
	if svc == nil {
		return nil, errors.New("core: nil faas service")
	}
	if err := svc.RegisterFunction(fnCompress, func(ctx context.Context, payload interface{}) (interface{}, error) {
		args, ok := payload.(compressArgs)
		if !ok {
			return nil, errors.New("ocelot.compress: bad payload")
		}
		stream, _, err := sz.Compress(args.data, args.dims, args.cfg)
		return stream, err
	}); err != nil {
		return nil, err
	}
	if err := svc.RegisterFunction(fnDecompress, func(ctx context.Context, payload interface{}) (interface{}, error) {
		args, ok := payload.(decompressArgs)
		if !ok {
			return nil, errors.New("ocelot.decompress: bad payload")
		}
		recon, _, err := sz.Decompress(args.stream)
		return recon, err
	}); err != nil {
		return nil, err
	}
	return &Orchestrator{svc: svc, sourceEP: sourceEP, destEP: destEP}, nil
}

// CompressRemote submits a compression task to the source endpoint and
// waits for the stream.
func (o *Orchestrator) CompressRemote(ctx context.Context, data []float64, dims []int, cfg sz.Config) ([]byte, error) {
	id, err := o.svc.Submit(o.sourceEP, fnCompress, compressArgs{data: data, dims: dims, cfg: cfg})
	if err != nil {
		return nil, err
	}
	res, err := o.svc.Wait(ctx, id)
	if err != nil {
		return nil, err
	}
	stream, ok := res.([]byte)
	if !ok {
		return nil, errors.New("core: compress returned wrong type")
	}
	return stream, nil
}

// DecompressRemote submits a decompression task to the destination endpoint.
func (o *Orchestrator) DecompressRemote(ctx context.Context, stream []byte) ([]float64, error) {
	id, err := o.svc.Submit(o.destEP, fnDecompress, decompressArgs{stream: stream})
	if err != nil {
		return nil, err
	}
	res, err := o.svc.Wait(ctx, id)
	if err != nil {
		return nil, err
	}
	recon, ok := res.([]float64)
	if !ok {
		return nil, errors.New("core: decompress returned wrong type")
	}
	return recon, nil
}
