package core

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"ocelot/internal/codec"
	"ocelot/internal/datagen"
	"ocelot/internal/faas"
	"ocelot/internal/metrics"
	"ocelot/internal/sz"
)

// mustCodec resolves a registry codec or fails the test.
func mustCodec(t *testing.T, name string) codec.Codec {
	t.Helper()
	c, err := codec.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// slowFanout builds a fanout whose compression function delays each chunk
// by delay(chunkIndex) before compressing, so tests can force adversarial
// completion orders (e.g. the first chunk finishing last).
func slowFanout(t *testing.T, workers int, delay func(idx int) time.Duration) *chunkFanout {
	t.Helper()
	svc := faas.NewService()
	if err := svc.RegisterFunction(fnCompressChunk, func(ctx context.Context, payload interface{}) (interface{}, error) {
		p, ok := payload.(chunkPayload)
		if !ok {
			return nil, errors.New("bad payload")
		}
		if d := delay(p.rng.Index); d > 0 {
			time.Sleep(d)
		}
		stream, _, err := sz.CompressChunk(p.data, p.dims, p.cfg, p.rng)
		return stream, err
	}); err != nil {
		t.Fatal(err)
	}
	ep, err := svc.DeployEndpoint(chunkFanoutEndpoint, faas.EndpointConfig{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return &chunkFanout{svc: svc, ep: ep}
}

// TestChunkFanoutOutOfOrderBitIdentical: when endpoint workers finish
// chunks out of order (earlier chunks delayed longest), the assembled
// container must still be byte-identical to the serial reference, and every
// chunk must honour the field-level error bound.
func TestChunkFanoutOutOfOrderBitIdentical(t *testing.T) {
	f, err := datagen.Generate("CESM", "TMQ", 24, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sz.DefaultConfig(1e-3 * metrics.ComputeRange(f.Data).Range)
	chunkPts := f.NumPoints() / 6
	chunkBytes := int64(chunkPts * f.ElementSize)

	// Invert completion order: chunk 0 sleeps longest.
	fan := slowFanout(t, 8, func(idx int) time.Duration {
		return time.Duration(6-idx%7) * 2 * time.Millisecond
	})
	defer fan.close()

	got, n, err := fan.compressField(context.Background(), f, mustCodec(t, sz.CodecName), cfg, chunkBytes)
	if err != nil {
		t.Fatal(err)
	}
	if n < 2 {
		t.Fatalf("field did not split: %d chunks", n)
	}
	want, _, err := sz.CompressChunked(f.Data, f.Dims, cfg, chunkPts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("fan-out container differs from the serial reference")
	}

	// Per-chunk bounds: each extracted chunk reconstructs its slice of the
	// field within the field-level absolute bound.
	chunks, err := sz.SplitChunked(got)
	if err != nil {
		t.Fatal(err)
	}
	plan := sz.PlanChunks(f.Dims, chunkPts)
	if len(chunks) != len(plan) {
		t.Fatalf("%d chunks in container, plan has %d", len(chunks), len(plan))
	}
	row := f.NumPoints() / f.Dims[0]
	for i, c := range chunks {
		recon, _, err := sz.Decompress(c)
		if err != nil {
			t.Fatalf("chunk %d: %v", i, err)
		}
		orig := f.Data[plan[i].Start*row : plan[i].End*row]
		maxErr, err := metrics.MaxAbsError(orig, recon)
		if err != nil {
			t.Fatal(err)
		}
		if maxErr > cfg.ErrorBound*(1+1e-9) {
			t.Errorf("chunk %d: error %g exceeds bound %g", i, maxErr, cfg.ErrorBound)
		}
	}
}

// TestChunkFanoutCancellationMidField: cancelling the context while chunks
// are still queued must abort compressField promptly with the context
// error, not hang waiting for the remaining chunks.
func TestChunkFanoutCancellationMidField(t *testing.T) {
	f, err := datagen.Generate("CESM", "CLDHGH", 32, 3)
	if err != nil {
		t.Fatal(err)
	}
	// One worker, slow chunks: the batch cannot finish before the cancel.
	fan := slowFanout(t, 1, func(int) time.Duration { return 30 * time.Millisecond })
	defer fan.close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	done := make(chan error, 1)
	go func() {
		_, _, err := fan.compressField(ctx, f, mustCodec(t, sz.CodecName), sz.DefaultConfig(1e-3), int64(f.NumPoints()/8*f.ElementSize))
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("compressField did not honour cancellation")
	}
}

// TestChunkedCampaignWorkerCountInvariance: the full pipelined campaign
// with chunk fan-out must produce bit-identical decompressed output for 1
// and 4 endpoint workers, split every field, and stay inside the bound.
func TestChunkedCampaignWorkerCountInvariance(t *testing.T) {
	fields := pipelineFields(t, 6, 28)
	run := func(workers int) *CampaignResult {
		res, err := RunPipelinedCampaign(context.Background(), fields, PipelineOptions{
			CampaignOptions: CampaignOptions{
				RelErrorBound: 1e-3,
				Workers:       4,
				GroupParam:    3,
			},
			ChunkMB:         float64(fields[0].RawBytes()) / 4 / 1e6,
			CompressWorkers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	solo := run(1)
	wide := run(4)
	if solo.Chunks <= solo.Files {
		t.Fatalf("chunking did not split fields: %d chunks for %d files", solo.Chunks, solo.Files)
	}
	if solo.Chunks != wide.Chunks {
		t.Fatalf("chunk plan changed with workers: %d vs %d", solo.Chunks, wide.Chunks)
	}
	if solo.ReconDigest == 0 || solo.ReconDigest != wide.ReconDigest {
		t.Fatalf("decompressed output differs across worker counts: %x vs %x",
			solo.ReconDigest, wide.ReconDigest)
	}
	if wide.CompressWorkers != 4 {
		t.Fatalf("CompressWorkers = %d, want 4", wide.CompressWorkers)
	}
	if wide.MaxRelError > 1e-3*(1+1e-9) {
		t.Fatalf("max rel error %g exceeds bound", wide.MaxRelError)
	}
}

// TestChunkedCampaignMatchesUnchunkedRecon: chunked and monolithic
// campaigns both verify against the same per-field bound; the chunked one
// must also report the same file/group accounting shape.
func TestChunkedCampaignDisabledByDefault(t *testing.T) {
	fields := pipelineFields(t, 4, 32)
	res, err := RunPipelinedCampaign(context.Background(), fields, PipelineOptions{
		CampaignOptions: CampaignOptions{RelErrorBound: 1e-3, Workers: 2, GroupParam: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Chunks != 0 || res.CompressWorkers != 0 {
		t.Fatalf("fan-out accounting populated without ChunkMB: chunks=%d workers=%d",
			res.Chunks, res.CompressWorkers)
	}
	if res.ReconDigest != 0 {
		t.Fatal("monolithic campaign paid the recon-digest pass")
	}
}

// TestChunkedCampaignCancellationPromptness: cancelling a chunked campaign
// must not block on the endpoint draining its backlog — the teardown
// aborts queued chunks instead of compressing them.
func TestChunkedCampaignCancellationPromptness(t *testing.T) {
	fields := pipelineFields(t, 8, 24)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(15 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := RunPipelinedCampaign(ctx, fields, PipelineOptions{
		CampaignOptions: CampaignOptions{RelErrorBound: 1e-3, Workers: 4, GroupParam: 4},
		// Tiny chunks on one slow-dispatch worker: a deep backlog that
		// would take many seconds to drain if teardown executed it.
		ChunkMB:         float64(fields[0].RawBytes()) / 24 / 1e6,
		CompressWorkers: 1,
		ChunkEndpoint:   faas.EndpointConfig{WarmStart: 25 * time.Millisecond},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("cancelled campaign took %v to return (backlog drained instead of aborted)", d)
	}
}
