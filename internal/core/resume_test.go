package core

import (
	"context"
	"errors"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"ocelot/internal/journal"
	"ocelot/internal/sentinel"
	"ocelot/internal/wan"
)

// resumeSpec is the shared campaign shape of the crash-resume tests: six
// fields in six single-member groups, so kills at different points leave
// meaningfully different journal states.
func resumeSpec(engine Engine, jpath, resume string, tr Transport) CampaignSpec {
	return CampaignSpec{
		RelErrorBound:   1e-3,
		Workers:         2,
		GroupParam:      6,
		Engine:          engine,
		Transport:       tr,
		TransferStreams: 1,
		Journal:         jpath,
		ResumeFrom:      resume,
	}
}

// crawlLink paces sends slowly enough (tens of ms per archive) that a
// background poller can observe and kill the campaign at a chosen journal
// state.
func crawlLink() *wan.Link {
	return &wan.Link{Name: "crawl", BandwidthMBps: 1, PerFileOverheadSec: 0.01, Concurrency: 1}
}

// killAt runs a journaled campaign, cancels it as soon as the journal
// satisfies trigger, resumes from the journal, and checks the resume
// contract: the resumed ReconDigest equals the uninterrupted run's, resumed
// groups cover only fields no pre-kill acked group covered, and skipped
// accounting matches the journal.
func killAt(t *testing.T, engine Engine, refDigest uint64, trigger func(*journal.Manifest) bool) {
	t.Helper()
	ctx := context.Background()
	jpath := filepath.Join(t.TempDir(), "run.ocjl")
	fields := pipelineFields(t, 6, 16)

	slow := &SimulatedWANTransport{Link: crawlLink(), Timescale: 1}
	h, err := Submit(ctx, fields, resumeSpec(engine, jpath, "", slow))
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			select {
			case <-h.Done():
				return
			case <-time.After(500 * time.Microsecond):
			}
			if m, err := journal.Load(jpath); err == nil && trigger(m) {
				h.Cancel()
				return
			}
		}
	}()
	<-h.Done()

	pre, err := journal.Load(jpath)
	if err != nil {
		t.Fatalf("journal unreadable after kill: %v", err)
	}
	preDone, _ := pre.DoneFields()
	preMax := pre.MaxGroupID()
	preAcked := pre.AckedGroups()

	res, err := Run(ctx, fields, resumeSpec(engine, jpath, jpath, NopTransport{}))
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if !res.Resumed {
		t.Error("result not marked resumed")
	}
	if res.ReconDigest != refDigest {
		t.Errorf("resumed digest %016x != uninterrupted %016x", res.ReconDigest, refDigest)
	}
	if res.SkippedGroups != preAcked {
		t.Errorf("skipped %d groups, journal had %d acked", res.SkippedGroups, preAcked)
	}

	post, err := journal.Load(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if !post.Done {
		t.Error("journal not marked done after resume")
	}
	for id, g := range post.Groups {
		if id <= preMax {
			continue
		}
		// Groups packed by the resumed incarnation must cover only fields
		// the pre-kill journal had NOT acked.
		for _, idx := range g.Members {
			if preDone[idx] {
				t.Errorf("resume re-packed already-acked field %d in group %d", idx, id)
			}
		}
	}
}

// TestCrashResumeProperty kills a journaled campaign at four points —
// mid-compress, mid-pack, mid-transfer, between groups — on both the
// pipelined and barrier engines, and verifies every resume reproduces the
// uninterrupted campaign's ReconDigest while re-executing only missing
// fields. The kill points are journal-state predicates, so the property
// holds wherever the cancel actually lands.
func TestCrashResumeProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-scenario kill/resume matrix")
	}
	triggers := []struct {
		name    string
		trigger func(*journal.Manifest) bool
	}{
		{"mid-compress", func(m *journal.Manifest) bool { return true }},
		{"mid-pack", func(m *journal.Manifest) bool { return len(m.Groups) >= 1 }},
		{"mid-transfer", func(m *journal.Manifest) bool {
			for _, g := range m.Groups {
				if g.Sent {
					return true
				}
			}
			return false
		}},
		{"between-groups", func(m *journal.Manifest) bool { return m.AckedGroups() >= 2 }},
	}
	for _, engine := range []Engine{EnginePipelined, EngineBarrier} {
		engine := engine
		t.Run(engine.String(), func(t *testing.T) {
			// One uninterrupted reference run per engine; its digest is the
			// ground truth every kill/resume pair must reproduce.
			refPath := filepath.Join(t.TempDir(), "ref.ocjl")
			fields := pipelineFields(t, 6, 16)
			ref, err := Run(context.Background(), fields, resumeSpec(engine, refPath, "", NopTransport{}))
			if err != nil {
				t.Fatal(err)
			}
			if ref.ReconDigest == 0 {
				t.Fatal("journaled reference run has no digest")
			}
			for _, tc := range triggers {
				tc := tc
				t.Run(tc.name, func(t *testing.T) {
					killAt(t, engine, ref.ReconDigest, tc.trigger)
				})
			}
		})
	}
}

// TestResumeCompletedCampaignShortCircuits resumes a journal whose campaign
// already finished: nothing re-executes, and the digest folds entirely from
// the journal's records.
func TestResumeCompletedCampaignShortCircuits(t *testing.T) {
	ctx := context.Background()
	jpath := filepath.Join(t.TempDir(), "done.ocjl")
	fields := pipelineFields(t, 4, 16)
	spec := resumeSpec(EnginePipelined, jpath, "", NopTransport{})
	spec.GroupParam = 4
	full, err := Run(ctx, fields, spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.ResumeFrom = jpath
	res, err := Run(ctx, fields, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resumed || res.Groups != 0 || res.SkippedGroups != full.Groups {
		t.Fatalf("short-circuit resume ran work: %+v", res)
	}
	if res.ReconDigest != full.ReconDigest {
		t.Fatalf("digest drifted on no-op resume: %016x vs %016x", res.ReconDigest, full.ReconDigest)
	}
}

// TestResumeSpecMismatchRefused verifies a journal refuses to resume under a
// changed spec — splicing halves compressed under different bounds would
// corrupt the result silently.
func TestResumeSpecMismatchRefused(t *testing.T) {
	ctx := context.Background()
	jpath := filepath.Join(t.TempDir(), "mismatch.ocjl")
	fields := pipelineFields(t, 4, 16)
	spec := resumeSpec(EnginePipelined, jpath, "", NopTransport{})
	if _, err := Run(ctx, fields, spec); err != nil {
		t.Fatal(err)
	}
	spec.ResumeFrom = jpath
	spec.RelErrorBound = 1e-2 // changed: must be refused
	if _, err := Run(ctx, fields, spec); !errors.Is(err, journal.ErrSpecMismatch) {
		t.Fatalf("want ErrSpecMismatch, got %v", err)
	}
}

// flakyTransport fails every send until the Nth attempt with a transient
// error — the deterministic way to exercise the retry loop.
type flakyTransport struct {
	failPerSend int32 // transient failures before each send succeeds
	attempts    map[string]*int32
	calls       atomic.Int64
}

func newFlakyTransport(failPerSend int32) *flakyTransport {
	return &flakyTransport{failPerSend: failPerSend, attempts: map[string]*int32{}}
}

func (f *flakyTransport) Name() string { return "flaky" }

func (f *flakyTransport) Send(ctx context.Context, name string, data []byte) (float64, error) {
	f.calls.Add(1)
	// TransferStreams=1 in the tests using this, so the map is single-writer.
	n, ok := f.attempts[name]
	if !ok {
		n = new(int32)
		f.attempts[name] = n
	}
	if *n < f.failPerSend {
		*n++
		return 0, sentinel.MarkTransient(errors.New("flaky: simulated drop"))
	}
	return 0, ctx.Err()
}

// TestTransferRetryRecoversFlaps: every send drops twice then succeeds; with
// a retry budget the campaign completes and reports the retries.
func TestTransferRetryRecoversFlaps(t *testing.T) {
	fields := pipelineFields(t, 4, 16)
	tr := newFlakyTransport(2)
	res, err := Run(context.Background(), fields, CampaignSpec{
		RelErrorBound:   1e-3,
		Workers:         2,
		GroupParam:      4,
		Transport:       tr,
		TransferStreams: 1,
		Retry:           sentinel.RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries != 8 { // 4 groups × 2 drops each
		t.Errorf("retries = %d, want 8", res.Retries)
	}
	if res.Failovers != 0 {
		t.Errorf("failovers = %d, want 0", res.Failovers)
	}
}

// rejectTransport fails every send permanently.
type rejectTransport struct{ calls atomic.Int64 }

func (r *rejectTransport) Name() string { return "reject" }
func (r *rejectTransport) Send(ctx context.Context, name string, data []byte) (float64, error) {
	r.calls.Add(1)
	return 0, errors.New("reject: archive refused")
}

// TestPermanentEndpointFailureFailsFast: a permanent error must not consume
// the retry budget; the campaign fails immediately with a classified error.
func TestPermanentEndpointFailureFailsFast(t *testing.T) {
	fields := pipelineFields(t, 2, 16)
	tr := &rejectTransport{}
	_, err := Run(context.Background(), fields, CampaignSpec{
		RelErrorBound:   1e-3,
		Workers:         2,
		GroupParam:      1, // one group → exactly one send attempt
		Transport:       tr,
		TransferStreams: 1,
		Retry:           sentinel.RetryPolicy{MaxAttempts: 5, BaseBackoff: time.Millisecond},
	})
	var pe *sentinel.PermanentError
	if !errors.As(err, &pe) {
		t.Fatalf("want *sentinel.PermanentError, got %v", err)
	}
	if pe.Transient {
		t.Error("permanent failure classified transient")
	}
	if pe.Attempts != 1 || tr.calls.Load() != 1 {
		t.Errorf("permanent error retried: %d attempts, %d calls", pe.Attempts, tr.calls.Load())
	}
}

// TestFailoverToFallbackTransport: the primary endpoint is hard down
// (transient), the fallback works — the campaign completes over the
// fallback with failovers on the result.
func TestFailoverToFallbackTransport(t *testing.T) {
	fields := pipelineFields(t, 4, 16)
	down := &SimulatedWANTransport{
		Link: &wan.Link{Name: "down", BandwidthMBps: 100, Concurrency: 2,
			Faults: &wan.Faults{Outages: []wan.FaultWindow{{StartSec: 0, EndSec: 1e9}}}},
		Timescale: 1e-3,
	}
	res, err := Run(context.Background(), fields, CampaignSpec{
		RelErrorBound:      1e-3,
		Workers:            2,
		GroupParam:         2,
		Transport:          down,
		TransferStreams:    1,
		FallbackTransports: []Transport{NopTransport{}},
		Retry:              sentinel.RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failovers != 2 { // both groups failed over once
		t.Errorf("failovers = %d, want 2", res.Failovers)
	}
	if res.Retries != 2 { // one in-place retry per group on the dead primary
		t.Errorf("retries = %d, want 2", res.Retries)
	}
}
