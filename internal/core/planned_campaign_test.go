package core

import (
	"context"
	"math"
	"testing"

	"ocelot/internal/datagen"
	"ocelot/internal/dtree"
	"ocelot/internal/planner"
	"ocelot/internal/quality"
	"ocelot/internal/wan"
)

// mixedFields builds the planner's target workload: smooth climate fields
// beside noisy turbulence/hurricane fields.
func mixedFields(t testing.TB, shrink int, seed int64) []*datagen.Field {
	t.Helper()
	specs := []struct{ app, field string }{
		{"CESM", "TMQ"},
		{"CESM", "CLDHGH"},
		{"CESM", "FLDSC"},
		{"Miranda", "density"},
		{"ISABEL", "Pf48"},
		{"ISABEL", "QVAPORf48"},
	}
	fields := make([]*datagen.Field, 0, len(specs))
	for _, sp := range specs {
		f, err := datagen.Generate(sp.app, sp.field, shrink, seed)
		if err != nil {
			t.Fatal(err)
		}
		fields = append(fields, f)
	}
	return fields
}

func plannedModel(t testing.TB) *quality.Model {
	t.Helper()
	m, err := planner.TrainFromSweep(mixedFields(t, 64, 11), nil, dtree.Params{MaxDepth: 12})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// RunPlannedCampaign must execute the plan's per-field bounds, verify
// them, and report predicted vs. actual — the closed loop's smoke test.
func TestRunPlannedCampaignPredictedVsActual(t *testing.T) {
	fields := mixedFields(t, 32, 5)
	model := plannedModel(t)
	link := &wan.Link{Name: "t", BandwidthMBps: 1000, PerFileOverheadSec: 0.02, Concurrency: 4}
	const floor = 70.0
	res, err := RunPlannedCampaign(context.Background(), fields, PlanOptions{
		PipelineOptions: PipelineOptions{
			CampaignOptions: CampaignOptions{Workers: 4},
			Transport:       &SimulatedWANTransport{Link: link, Timescale: -1},
		},
		Model:   model,
		Planner: planner.Options{MinPSNR: floor, Seed: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Planned || !res.Pipelined {
		t.Errorf("planned campaign flags: planned=%v pipelined=%v", res.Planned, res.Pipelined)
	}
	if res.Plan == nil || len(res.Plan.Fields) != len(fields) {
		t.Fatalf("result carries no per-field plan")
	}
	if res.Files != len(fields) {
		t.Errorf("files %d, want %d", res.Files, len(fields))
	}
	// Per-field bounds were actually applied and verified: the observed
	// max relative error must sit within the loosest planned bound.
	maxPlanned := 0.0
	for _, fp := range res.Plan.Fields {
		maxPlanned = math.Max(maxPlanned, fp.RelEB)
	}
	if res.MaxRelError > maxPlanned*(1+1e-9) {
		t.Errorf("max rel error %g exceeds loosest planned bound %g", res.MaxRelError, maxPlanned)
	}
	// Predicted-vs-actual fields must be populated on both sides.
	if res.PredRatio <= 0 || res.Ratio <= 0 {
		t.Errorf("ratio not reported: pred %g actual %g", res.PredRatio, res.Ratio)
	}
	if res.PredTransferSec <= 0 || res.LinkEstSec <= 0 || res.LinkSec <= 0 {
		t.Errorf("transfer seconds not reported: pred %g est-actual %g link %g",
			res.PredTransferSec, res.LinkEstSec, res.LinkSec)
	}
	// Prediction and realized makespan share units and grouping, so the
	// forecast must land in the same ballpark.
	if res.PredTransferSec > res.LinkEstSec*3 || res.PredTransferSec < res.LinkEstSec/3 {
		t.Errorf("predicted transfer makespan %.4fs wildly off realized-archive makespan %.4fs",
			res.PredTransferSec, res.LinkEstSec)
	}
	if res.MinPSNR <= 0 || math.IsInf(res.MinPSNR, 0) {
		t.Errorf("measured min PSNR not reported: %g", res.MinPSNR)
	}
	// Smoke-level prediction accuracy: the tree was trained on stand-ins
	// of these very fields, so the ratio forecast should land within a
	// small multiplicative band of reality.
	if res.PredRatio > res.Ratio*3 || res.PredRatio < res.Ratio/3 {
		t.Errorf("predicted ratio %.2f wildly off actual %.2f", res.PredRatio, res.Ratio)
	}
	// The quality floor was enforced through real reconstruction too.
	if res.MinPSNR < floor-10 {
		t.Errorf("measured min PSNR %.1f dB far below the %.0f dB floor the plan promised", res.MinPSNR, floor)
	}
}

// The adaptive plan must beat the best fixed global bound meeting the same
// quality floor on the same link and the same grouping decision — both on
// the model's own objective (provable: the fixed configuration is in the
// candidate grid, so per-field minimization can only improve on it) and on
// the measured transfer makespan over the realized archives.
// Deterministic: accounting-only transport, fixed seeds.
func TestAdaptivePlanBeatsFixedBaseline(t *testing.T) {
	fields := mixedFields(t, 32, 5)
	model := plannedModel(t)
	link := &wan.Link{Name: "t", BandwidthMBps: 1000, PerFileOverheadSec: 0.02, Concurrency: 4}
	const floor = 70.0
	popts := planner.Options{MinPSNR: floor, Link: link, Workers: 4, Seed: 5}

	fixedEB, err := planner.FixedBaseline(fields, model, popts)
	if err != nil {
		t.Fatal(err)
	}
	base := PipelineOptions{
		CampaignOptions: CampaignOptions{Workers: 4},
		Transport:       &SimulatedWANTransport{Link: link, Timescale: -1},
	}
	ctx := context.Background()
	adaptive, err := RunPlannedCampaign(ctx, fields, PlanOptions{
		PipelineOptions: base,
		Model:           model,
		Planner:         popts,
	})
	if err != nil {
		t.Fatal(err)
	}
	fixedOpts := base
	fixedOpts.RelErrorBound = fixedEB
	fixedOpts.GroupStrategy = adaptive.Plan.GroupStrategy
	fixedOpts.GroupParam = adaptive.Plan.GroupParam
	fixed, err := RunPipelinedCampaign(ctx, fields, fixedOpts)
	if err != nil {
		t.Fatal(err)
	}

	// Modelled objective: the fixed global configuration planned through
	// the same machinery must never score better than the adaptive plan.
	fixedPlan, err := planner.Build(fields, model, planner.Options{
		Candidates: []planner.Candidate{{RelEB: fixedEB}},
		Link:       link, Workers: 4, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	adaptiveObj := adaptive.Plan.PredCompressSec + float64(adaptive.Plan.PredBytes)/1e6/link.BandwidthMBps
	fixedObj := fixedPlan.PredCompressSec + float64(fixedPlan.PredBytes)/1e6/link.BandwidthMBps
	if adaptiveObj > fixedObj*(1+1e-9) {
		t.Errorf("adaptive plan objective %.6f worse than the fixed bound's %.6f — per-field minimization lost to a global knob",
			adaptiveObj, fixedObj)
	}

	// Measured transfer makespan over realized archives, same grouping.
	fixedEst, err := link.Estimate(fixed.GroupBytes, 5)
	if err != nil {
		t.Fatal(err)
	}
	if adaptive.LinkEstSec > fixedEst.Seconds*1.05 {
		t.Errorf("adaptive transfer makespan %.4fs exceeds fixed baseline's %.4fs",
			adaptive.LinkEstSec, fixedEst.Seconds)
	}
	if adaptive.MinPSNR < floor-10 {
		t.Errorf("adaptive min PSNR %.1f dB far below the shared floor %.0f dB", adaptive.MinPSNR, floor)
	}
}

// An untrained planner must still produce a correct campaign (fallback
// bounds), not an error.
func TestRunPlannedCampaignUntrained(t *testing.T) {
	fields := mixedFields(t, 48, 5)
	res, err := RunPlannedCampaign(context.Background(), fields, PlanOptions{
		PipelineOptions: PipelineOptions{CampaignOptions: CampaignOptions{Workers: 2}},
		Model:           nil,
		Planner:         planner.Options{MinPSNR: 70},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, fp := range res.Plan.Fields {
		if !fp.Fallback {
			t.Errorf("%s: expected fallback decision without a model", fp.Field)
		}
	}
	if res.MaxRelError > 1e-5*(1+1e-9) {
		t.Errorf("fallback campaign exceeded the most conservative bound: %g", res.MaxRelError)
	}
}
