package core

import (
	"context"
	"time"

	"ocelot/internal/datagen"
	"ocelot/internal/planner"
	"ocelot/internal/quality"
)

// PlanOptions configures a predictor-driven (adaptive) campaign: the
// planner's sample→predict→decide pass runs ahead of the pipelined engine
// and chooses per-field error bounds, predictors, and the grouping knob.
// The plan's transfer estimates assume the campaign offers the link its
// full concurrency; leave TransferStreams at 0 (the default resolves it
// from the transport's hint) unless you want to deliberately starve the
// link.
type PlanOptions struct {
	PipelineOptions
	// Model is a trained quality model. nil degenerates gracefully: every
	// field gets the planner's most conservative candidate.
	Model *quality.Model
	// Planner tunes the decision pass. Planner.Link defaults to the
	// simulated transport's link and Planner.Workers to the campaign's
	// Workers when unset.
	Planner planner.Options
}

// resolvedPlanner fills PlanOptions.Planner defaults from the campaign
// context so callers only state what they want to override: the planner's
// assumed parallelism follows the fan-out endpoint's worker count when
// chunking is on, and the chunk granularity follows ChunkMB, so the plan
// predicts the campaign that will actually run.
func (o PlanOptions) resolvedPlanner() planner.Options {
	p := o.Planner
	if p.Workers <= 0 {
		if o.ChunkMB > 0 && o.CompressWorkers > 0 {
			p.Workers = o.CompressWorkers
		} else {
			p.Workers = o.Workers
		}
	}
	if p.ChunkBytes == 0 && o.ChunkMB > 0 {
		p.ChunkBytes = int64(o.ChunkMB * 1e6)
	}
	if p.ChunkDispatchSec == 0 && o.ChunkMB > 0 {
		p.ChunkDispatchSec = o.ChunkEndpoint.WarmStart.Seconds()
	}
	if p.Link == nil {
		if st, ok := o.Transport.(*SimulatedWANTransport); ok {
			p.Link = st.Link
		}
	}
	return p
}

// PlanCampaign runs only the plan stage: the cheap sampling pass over every
// field, quality predictions across the candidate grid, and the grouping
// decision. The returned plan is what RunPlannedCampaign would execute.
func PlanCampaign(fields []*datagen.Field, opts PlanOptions) (*planner.Plan, error) {
	return planner.Build(fields, opts.Model, opts.resolvedPlanner())
}

// RunPlannedCampaign closes the paper's predict-then-transfer loop: it
// builds a plan (PlanCampaign), then runs the pipelined engine with the
// plan's per-field configurations and grouping, measuring reconstruction
// PSNR so the result reports predicted vs. actual ratio, stage seconds,
// and quality.
func RunPlannedCampaign(ctx context.Context, fields []*datagen.Field, opts PlanOptions) (*CampaignResult, error) {
	now := opts.Now
	if now == nil {
		now = time.Now
	}
	planStart := now()
	plan, err := PlanCampaign(fields, opts)
	if err != nil {
		return nil, err
	}
	planSec := now().Sub(planStart).Seconds()

	transport, streams := resolveTransport(opts.PipelineOptions)
	copts := opts.CampaignOptions
	copts.GroupStrategy = plan.GroupStrategy
	copts.GroupParam = plan.GroupParam

	settings := make([]fieldSetting, len(plan.Fields))
	for i, fp := range plan.Fields {
		settings[i] = fieldSetting{relEB: fp.RelEB, predictor: fp.Predictor, codec: fp.Codec}
	}
	chunkBytes, cw, ep := opts.PipelineOptions.chunkMode()
	res, err := runCampaign(ctx, fields, copts, campaignMode{
		pipelined:       true,
		transport:       transport,
		transferStreams: streams,
		buffer:          opts.StageBuffer,
		perField:        settings,
		measurePSNR:     true,
		chunkBytes:      chunkBytes,
		compressWorkers: cw,
		endpoint:        ep,
	})
	if err != nil {
		return nil, err
	}
	res.Planned = true
	res.PlanSec = planSec
	res.Plan = plan
	res.PredRatio = plan.PredRatio
	res.PredCompressSec = plan.PredCompressSec
	res.PredTransferSec = plan.PredTransferSec
	res.PredWallSec = plan.PredWallSec
	if link := opts.resolvedPlanner().Link; link != nil && len(res.GroupBytes) > 0 {
		est, err := link.Estimate(res.GroupBytes, opts.Planner.Seed)
		if err != nil {
			return nil, err
		}
		res.LinkEstSec = est.Seconds
	}
	return res, nil
}
