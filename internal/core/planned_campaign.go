package core

import (
	"context"

	"ocelot/internal/datagen"
	"ocelot/internal/planner"
	"ocelot/internal/quality"
)

// PlanOptions configures a predictor-driven (adaptive) campaign: the
// planner's sample→predict→decide pass runs ahead of the pipelined engine
// and chooses per-field error bounds, predictors, and the grouping knob.
// The plan's transfer estimates assume the campaign offers the link its
// full concurrency; leave TransferStreams at 0 (the default resolves it
// from the transport's hint) unless you want to deliberately starve the
// link.
//
// Deprecated: new code should build a CampaignSpec with Adaptive: true and
// call Run or Submit; PlanOptions survives as the compatibility surface
// for the original RunPlannedCampaign API.
type PlanOptions struct {
	PipelineOptions
	// Model is a trained quality model. nil degenerates gracefully: every
	// field gets the planner's most conservative candidate.
	Model *quality.Model
	// Planner tunes the decision pass. Planner.Link defaults to the
	// simulated transport's link and Planner.Workers to the campaign's
	// Workers when unset.
	Planner planner.Options
}

// Spec projects the legacy plan options onto the unified CampaignSpec
// (Adaptive set, Engine left at EnginePipelined).
func (o PlanOptions) Spec() CampaignSpec {
	spec := o.PipelineOptions.Spec()
	spec.Adaptive = true
	spec.Model = o.Model
	spec.Planner = o.Planner
	return spec
}

// PlanCampaign runs only the plan stage: the cheap sampling pass over every
// field, quality predictions across the candidate grid, and the grouping
// decision. The returned plan is what RunPlannedCampaign would execute.
//
// Deprecated: use PlanSpec.
func PlanCampaign(fields []*datagen.Field, opts PlanOptions) (*planner.Plan, error) {
	return PlanSpec(fields, opts.Spec())
}

// RunPlannedCampaign closes the paper's predict-then-transfer loop: it
// builds a plan (PlanCampaign), then runs the pipelined engine with the
// plan's per-field configurations and grouping, measuring reconstruction
// PSNR so the result reports predicted vs. actual ratio, stage seconds,
// and quality.
//
// Deprecated: equivalent to Run with Adaptive: true; new code should use
// Run (or Submit for a handle).
func RunPlannedCampaign(ctx context.Context, fields []*datagen.Field, opts PlanOptions) (*CampaignResult, error) {
	return Run(ctx, fields, opts.Spec())
}
