package core

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
	"math"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"ocelot/internal/codec"
	"ocelot/internal/gridftp"
	"ocelot/internal/journal"
	"ocelot/internal/obs"
	"ocelot/internal/sentinel"
	"ocelot/internal/wan"
)

// countingTransport wraps a simulated WAN link and tallies successful
// deliveries per archive name, so tests can prove only corrupted groups
// were re-sent.
type countingTransport struct {
	inner *SimulatedWANTransport
	mu    sync.Mutex
	sends map[string]int
}

func newCountingTransport(inner *SimulatedWANTransport) *countingTransport {
	return &countingTransport{inner: inner, sends: map[string]int{}}
}

func (c *countingTransport) Name() string { return "counting" }

func (c *countingTransport) Send(ctx context.Context, name string, data []byte) (float64, error) {
	_, sec, err := c.SendDelivered(ctx, name, data, 0)
	return sec, err
}

func (c *countingTransport) SendDelivered(ctx context.Context, name string, data []byte, weight float64) ([]byte, float64, error) {
	d, sec, err := c.inner.SendDelivered(ctx, name, data, weight)
	if err == nil {
		c.mu.Lock()
		c.sends[name]++
		c.mu.Unlock()
	}
	return d, sec, err
}

// corruptingLink is an accounting-only simulated link whose deliveries are
// corrupted with the given probability, deterministically per seed.
func corruptingLink(prob float64, mode wan.CorruptMode, seed int64) *SimulatedWANTransport {
	return &SimulatedWANTransport{
		Link: &wan.Link{Name: "dirty", BandwidthMBps: 1000, Concurrency: 4,
			Faults: &wan.Faults{CorruptProb: prob, CorruptMode: mode, Seed: seed}},
		Timescale: -1,
	}
}

// TestCampaignCorruptionRetransmitDigestIdentity runs the same campaign
// over a clean link and over a corrupting one and proves the end-to-end
// integrity contract: the corrupted run completes, reproduces the clean
// run's ReconDigest bit for bit, re-sends exactly the corrupted groups
// (every clean delivery ships once), and keeps SentBytes accounting exact
// under retransmission.
func TestCampaignCorruptionRetransmitDigestIdentity(t *testing.T) {
	ctx := context.Background()
	fields := pipelineFields(t, 6, 16)

	refSpec := CampaignSpec{
		RelErrorBound:   1e-3,
		Workers:         2,
		GroupParam:      6,
		Engine:          EnginePipelined,
		Transport:       NopTransport{},
		TransferStreams: 2,
		Journal:         filepath.Join(t.TempDir(), "ref.ocjl"),
	}
	ref, err := Run(ctx, fields, refSpec)
	if err != nil {
		t.Fatal(err)
	}
	if ref.ReconDigest == 0 {
		t.Fatal("clean journaled run produced no digest")
	}
	if ref.CorruptGroups != 0 || ref.Retransmits != 0 || ref.RetransmitBytes != 0 {
		t.Fatalf("clean run reports corruption: %+v", ref)
	}

	dirty := corruptingLink(0.45, wan.CorruptMix, 7)
	// The counting wrapper hides the simulated transport from the engine's
	// registry adoption, so install the campaign registry on it directly —
	// the injected-vs-detected reconciliation below needs both sides'
	// counters in one snapshot.
	reg := obs.NewRegistry()
	dirty.Metrics = reg
	tr := newCountingTransport(dirty)
	spec := refSpec
	spec.Journal = filepath.Join(t.TempDir(), "dirty.ocjl")
	spec.Transport = tr
	spec.Obs = &obs.Obs{Metrics: reg}
	spec.Retry = sentinel.RetryPolicy{MaxAttempts: 5, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond}
	h, err := Submit(ctx, fields, spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Wait(ctx)
	if err != nil {
		t.Fatalf("corrupted-link campaign failed: %v", err)
	}

	if res.CorruptGroups == 0 {
		t.Fatal("seeded corrupting link corrupted nothing; the test exercised no recovery")
	}
	if res.ReconDigest != ref.ReconDigest {
		t.Errorf("corrupted-link digest %016x != clean %016x", res.ReconDigest, ref.ReconDigest)
	}

	// Only corrupted groups re-ship: total successful deliveries beyond one
	// per group must equal the retransmit count, and the number of archives
	// shipped more than once must equal the corrupted-group count.
	tr.mu.Lock()
	extraSends, multiShipped := 0, 0
	for _, n := range tr.sends {
		if n > 1 {
			extraSends += n - 1
			multiShipped++
		}
	}
	tr.mu.Unlock()
	if extraSends != res.Retransmits {
		t.Errorf("%d extra deliveries for %d retransmits — an uncorrupted group was re-sent", extraSends, res.Retransmits)
	}
	if multiShipped != res.CorruptGroups {
		t.Errorf("%d archives shipped more than once, %d groups corrupt", multiShipped, res.CorruptGroups)
	}
	if res.Retransmits < res.CorruptGroups {
		t.Errorf("retransmits %d below corrupt groups %d: a corrupted group was never recovered", res.Retransmits, res.CorruptGroups)
	}

	// Delivery accounting stays exact under retransmission.
	st := h.Status()
	if st.SentBytes != res.GroupedBytes+res.RetransmitBytes+res.DegradedBytes {
		t.Errorf("SentBytes %d != grouped %d + retransmit %d + degraded %d",
			st.SentBytes, res.GroupedBytes, res.RetransmitBytes, res.DegradedBytes)
	}
	if st.CorruptGroups != int64(res.CorruptGroups) || st.Retransmits != int64(res.Retransmits) {
		t.Errorf("status ledger (%d corrupt, %d retransmits) disagrees with result (%d, %d)",
			st.CorruptGroups, st.Retransmits, res.CorruptGroups, res.Retransmits)
	}
	if len(res.DegradedFields) != 0 || res.DegradedBytes != 0 {
		t.Errorf("corruption-only run degraded fields: %v", res.DegradedFields)
	}

	// The detected corruption is visible in the inline metrics snapshot,
	// and nothing escaped silently: every injected corruption was detected.
	if res.Metrics == nil {
		t.Fatal("spec carried a registry but result has no metrics snapshot")
	}
	injected := res.Metrics["wan_corruptions_injected_total"]
	detected := res.Metrics["campaign_corruption_detected_total"]
	if injected == 0 || injected != detected {
		t.Errorf("injected %g corruptions, detected %g — silent corruption escaped", injected, detected)
	}
}

// TestCampaignCorruptionExhaustsRetransmitBudget: with no retry policy the
// engine grants a single retransmit; a link that corrupts essentially every
// delivery must fail the campaign loudly, never return garbage.
func TestCampaignCorruptionExhaustsRetransmitBudget(t *testing.T) {
	fields := pipelineFields(t, 2, 16)
	_, err := Run(context.Background(), fields, CampaignSpec{
		RelErrorBound:   1e-3,
		Workers:         2,
		GroupParam:      1,
		Engine:          EnginePipelined,
		Transport:       corruptingLink(0.99, wan.CorruptGarble, 3),
		TransferStreams: 1,
	})
	if err == nil {
		t.Fatal("always-corrupting link completed")
	}
	if !strings.Contains(err.Error(), "corrupted in transit") {
		t.Fatalf("want corruption classification, got: %v", err)
	}
}

// TestCampaignNoIntegritySilentCorruption: with the frame disabled the
// same corrupting link hands garbage straight to the unpacker — the
// silent-corruption testbed the integrity frame exists to close. The
// campaign must still not succeed quietly (garbled archives fail to
// parse), but nothing classifies or retransmits.
func TestCampaignNoIntegritySilentCorruption(t *testing.T) {
	fields := pipelineFields(t, 2, 16)
	res, err := Run(context.Background(), fields, CampaignSpec{
		RelErrorBound:   1e-3,
		Workers:         2,
		GroupParam:      1,
		Engine:          EnginePipelined,
		Transport:       corruptingLink(0.99, wan.CorruptGarble, 3),
		TransferStreams: 1,
		NoIntegrity:     true,
	})
	if err == nil {
		t.Fatalf("garbled archive verified without integrity frame: %+v", res)
	}
	if strings.Contains(err.Error(), "corrupted in transit") {
		t.Fatalf("frameless run classified corruption it cannot detect: %v", err)
	}
}

// liarCodec wraps the default codec and perturbs the first reconstructed
// value by 3x the error bound — a codec that breaks its contract, which
// the bound audit must catch.
type liarCodec struct{ inner codec.Codec }

const liarMagic = 0x5241494C // "LIAR" little-endian

var liarOnce sync.Once

func registerLiar(t *testing.T) {
	t.Helper()
	liarOnce.Do(func() {
		inner, err := codec.Lookup("")
		if err != nil {
			panic(err)
		}
		codec.Register(&liarCodec{inner: inner})
	})
}

func (l *liarCodec) Name() string  { return "liar" }
func (l *liarCodec) Magic() uint32 { return liarMagic }

func (l *liarCodec) Compress(data []float64, dims []int, p codec.Params) ([]byte, error) {
	inner, err := l.inner.Compress(data, dims, p)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 12+len(inner))
	binary.LittleEndian.PutUint32(out[:4], liarMagic)
	binary.LittleEndian.PutUint64(out[4:12], math.Float64bits(3*p.AbsErrorBound))
	copy(out[12:], inner)
	return out, nil
}

func (l *liarCodec) Decompress(stream []byte) ([]float64, []int, error) {
	if len(stream) < 12 || binary.LittleEndian.Uint32(stream[:4]) != liarMagic {
		return nil, nil, errors.New("liar: bad stream")
	}
	delta := math.Float64frombits(binary.LittleEndian.Uint64(stream[4:12]))
	vals, dims, err := codec.Decompress(stream[12:])
	if err != nil {
		return nil, nil, err
	}
	if len(vals) > 0 {
		vals[0] += delta
	}
	return vals, dims, nil
}

func (l *liarCodec) StreamDims(stream []byte) ([]int, error) {
	if len(stream) < 12 {
		return nil, errors.New("liar: short stream")
	}
	return l.inner.StreamDims(stream[12:])
}

func (l *liarCodec) Probe(data []float64, dims []int, p codec.Params, stride int) ([]int, error) {
	return l.inner.Probe(data, dims, p, stride)
}

func (l *liarCodec) Caps() codec.Caps { return l.inner.Caps() }

// TestBoundAuditQuarantine: a codec that violates its bound is caught by
// the post-decompress audit. Without quarantine the campaign fails; with
// it, the violating fields are re-shipped lossless, recorded as degraded,
// and the final digest equals the digest of the EXACT original values —
// the replacement is bit-exact, not merely within bound.
func TestBoundAuditQuarantine(t *testing.T) {
	registerLiar(t)
	fields := pipelineFields(t, 2, 16)
	spec := CampaignSpec{
		RelErrorBound:   1e-3,
		Workers:         2,
		GroupParam:      2,
		Engine:          EnginePipelined,
		Codec:           "liar",
		Transport:       NopTransport{},
		TransferStreams: 1,
	}

	// Audit on, quarantine off: the violation is a campaign failure.
	if _, err := Run(context.Background(), fields, spec); err == nil {
		t.Fatal("bound-violating codec passed the audit")
	} else if !strings.Contains(err.Error(), "exceeds bound") {
		t.Fatalf("want bound-violation error, got: %v", err)
	}

	// Quarantine on: the campaign completes, the fields are degraded, and
	// the journaled digest is the digest of the exact original data.
	spec.BoundAudit = BoundAudit{Quarantine: true}
	spec.Journal = filepath.Join(t.TempDir(), "quarantine.ocjl")
	res, err := Run(context.Background(), fields, spec)
	if err != nil {
		t.Fatalf("quarantine should complete the campaign: %v", err)
	}
	if len(res.DegradedFields) != len(fields) {
		t.Fatalf("degraded %v, want all %d fields", res.DegradedFields, len(fields))
	}
	if res.DegradedBytes == 0 {
		t.Error("quarantine shipped no bytes")
	}
	if res.MaxRelError > spec.RelErrorBound {
		t.Errorf("max rel error %g above bound after quarantine", res.MaxRelError)
	}
	exact := make([]uint64, len(fields))
	for i, f := range fields {
		exact[i] = reconDigest(f.Data)
	}
	if want := foldDigests(exact); res.ReconDigest != want {
		t.Errorf("quarantined digest %016x != exact-data digest %016x", res.ReconDigest, want)
	}
}

// TestResumeAckEchoMismatchResends tampers a finished journal — the done
// record dropped, one ack's archive echo rewritten — and verifies resume
// treats the mismatched ack as void: that group is re-sent, the others are
// skipped, and the digest still matches the uninterrupted run.
func TestResumeAckEchoMismatchResends(t *testing.T) {
	ctx := context.Background()
	jpath := filepath.Join(t.TempDir(), "tampered.ocjl")
	fields := pipelineFields(t, 4, 16)
	spec := resumeSpec(EnginePipelined, jpath, "", NopTransport{})
	spec.GroupParam = 4
	full, err := Run(ctx, fields, spec)
	if err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	var kept []string
	tampered := false
	for _, ln := range strings.Split(strings.TrimSuffix(string(data), "\n"), "\n") {
		var e map[string]interface{}
		if err := json.Unmarshal([]byte(ln), &e); err != nil {
			t.Fatal(err)
		}
		switch e["t"] {
		case "done":
			continue // the campaign now looks interrupted
		case "ack":
			if !tampered {
				e["archive"] = "deadbeef" // no longer matches the group record
				b, err := json.Marshal(e)
				if err != nil {
					t.Fatal(err)
				}
				ln = string(b)
				tampered = true
			}
		}
		kept = append(kept, ln)
	}
	if !tampered {
		t.Fatal("journal had no ack records to tamper")
	}
	if err := os.WriteFile(jpath, []byte(strings.Join(kept, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	pre, err := journal.Load(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if got := pre.AckedGroups(); got != 3 {
		t.Fatalf("voided ack still counted: %d acked groups, want 3", got)
	}

	spec.ResumeFrom = jpath
	res, err := Run(ctx, fields, spec)
	if err != nil {
		t.Fatalf("resume over tampered journal: %v", err)
	}
	if !res.Resumed || res.SkippedGroups != 3 || res.Groups != 1 {
		t.Fatalf("voided group not re-sent: skipped=%d groups=%d", res.SkippedGroups, res.Groups)
	}
	if res.ReconDigest != full.ReconDigest {
		t.Errorf("digest %016x after tampered resume != %016x", res.ReconDigest, full.ReconDigest)
	}
}

// TestCrashResumeUnderCorruption combines the two fault axes: a journaled
// campaign over a corrupting link is killed mid-run, then resumed over a
// (differently seeded) corrupting link. The resumed campaign must still
// reproduce the clean uninterrupted digest — corruption recovery and
// crash recovery compose.
func TestCrashResumeUnderCorruption(t *testing.T) {
	if testing.Short() {
		t.Skip("kill/resume over paced corrupting link")
	}
	ctx := context.Background()
	fields := pipelineFields(t, 6, 16)

	refSpec := resumeSpec(EnginePipelined, filepath.Join(t.TempDir(), "ref.ocjl"), "", NopTransport{})
	ref, err := Run(ctx, fields, refSpec)
	if err != nil {
		t.Fatal(err)
	}

	jpath := filepath.Join(t.TempDir(), "crash.ocjl")
	slow := &SimulatedWANTransport{
		Link: &wan.Link{Name: "dirty-crawl", BandwidthMBps: 1, PerFileOverheadSec: 0.01, Concurrency: 1,
			Faults: &wan.Faults{CorruptProb: 0.4, CorruptMode: wan.CorruptMix, Seed: 11}},
		Timescale: 1,
	}
	spec := resumeSpec(EnginePipelined, jpath, "", slow)
	spec.Retry = sentinel.RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond}
	h, err := Submit(ctx, fields, spec)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			select {
			case <-h.Done():
				return
			case <-time.After(500 * time.Microsecond):
			}
			if m, err := journal.Load(jpath); err == nil && m.AckedGroups() >= 1 {
				h.Cancel()
				return
			}
		}
	}()
	<-h.Done()

	rspec := resumeSpec(EnginePipelined, jpath, jpath, corruptingLink(0.4, wan.CorruptMix, 23))
	rspec.Retry = spec.Retry
	res, err := Run(ctx, fields, rspec)
	if err != nil {
		t.Fatalf("resume over corrupting link: %v", err)
	}
	if res.ReconDigest != ref.ReconDigest {
		t.Errorf("crash+corruption digest %016x != clean %016x", res.ReconDigest, ref.ReconDigest)
	}
}

// corruptingProxy forwards gridftp connections to backend, flipping the
// final byte of every data channel's client stream — the tail of the last
// frame's CRC trailer — so the wire arrives damaged but well-formed.
func corruptingProxy(t *testing.T, backend string) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				b, err := net.Dial("tcp", backend)
				if err != nil {
					return
				}
				defer b.Close()
				br := bufio.NewReader(c)
				first, err := br.ReadString('\n')
				if err != nil {
					return
				}
				if _, err := io.WriteString(b, first); err != nil {
					return
				}
				if strings.HasPrefix(first, "DATA ") {
					// Buffer the client's whole frame stream (the client
					// half-closes after flushing), corrupt the tail, forward.
					buf, _ := io.ReadAll(br)
					if len(buf) > 0 {
						buf[len(buf)-1] ^= 0x01
					}
					b.Write(buf)
					if tc, ok := b.(*net.TCPConn); ok {
						tc.CloseWrite()
					}
					io.Copy(io.Discard, b)
					return
				}
				// Control channel: transparent bidirectional forward.
				go func() {
					io.Copy(b, br)
					if tc, ok := b.(*net.TCPConn); ok {
						tc.CloseWrite()
					}
				}()
				io.Copy(c, b)
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// TestGridFTPChecksumCorruptionTransient drives a real transfer through a
// corrupting TCP proxy: the server's wire checksum rejects it, the typed
// ErrChecksum identity survives the text-based control channel, and the
// transport classifies it transient so the retry budget re-requests it.
func TestGridFTPChecksumCorruptionTransient(t *testing.T) {
	srv, err := gridftp.NewServer(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := gridftp.Dial(corruptingProxy(t, srv.Addr()), 1)
	if err != nil {
		t.Fatal(err)
	}
	tr := &GridFTPTransport{Client: client}
	_, err = tr.Send(context.Background(), "blob.bin", make([]byte, 4096))
	if err == nil {
		t.Fatal("corrupted transfer accepted")
	}
	if !errors.Is(err, gridftp.ErrChecksum) {
		t.Fatalf("want ErrChecksum identity, got: %v", err)
	}
	if !sentinel.IsTransient(err) {
		t.Fatalf("wire corruption must classify transient: %v", err)
	}
}
