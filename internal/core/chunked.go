package core

import (
	"context"
	"errors"
	"fmt"

	"ocelot/internal/datagen"
	"ocelot/internal/faas"
	"ocelot/internal/sz"
)

// fnCompressChunk is the chunk-compression function registered on the
// fan-out fabric.
const fnCompressChunk = "ocelot.compressChunk"

// chunkFanoutEndpoint is the name of the endpoint the campaign deploys for
// chunk-parallel compression (the paper's funcX source endpoint).
const chunkFanoutEndpoint = "compress-pool"

// chunkPayload is one chunk-compression task shipped through the fabric.
// The data slice is the WHOLE field; the range selects the chunk, so the
// fabric moves no copies (in-process endpoints share memory, matching the
// paper's compress-at-the-source placement).
type chunkPayload struct {
	data []float64
	dims []int
	cfg  sz.Config
	rng  sz.ChunkRange
}

// chunkFanout owns the in-process funcX-style fabric the campaign engine
// fans chunk compression out on: one service, one deployed endpoint whose
// worker count is the campaign's compression parallelism, and the
// registered chunk-compression function. The endpoint's warming model
// applies — the first chunk executed on the endpoint pays the configured
// cold-start cost (warming is per function per endpoint, not per worker),
// every later chunk the warm dispatch cost.
type chunkFanout struct {
	svc *faas.Service
	ep  *faas.Endpoint
}

// newChunkFanout deploys a fresh fabric with the given endpoint tuning.
func newChunkFanout(cfg faas.EndpointConfig) (*chunkFanout, error) {
	svc := faas.NewService()
	if err := svc.RegisterFunction(fnCompressChunk, func(ctx context.Context, payload interface{}) (interface{}, error) {
		p, ok := payload.(chunkPayload)
		if !ok {
			return nil, errors.New("ocelot.compressChunk: bad payload")
		}
		stream, _, err := sz.CompressChunk(p.data, p.dims, p.cfg, p.rng)
		return stream, err
	}); err != nil {
		return nil, err
	}
	ep, err := svc.DeployEndpoint(chunkFanoutEndpoint, cfg)
	if err != nil {
		return nil, err
	}
	return &chunkFanout{svc: svc, ep: ep}, nil
}

// close tears the fabric down. Abort before Close so a campaign unwinding
// from an error or cancellation is not held hostage by a deep chunk
// backlog: queued chunks finish with ErrEndpointClosed instead of
// compressing (on a clean run the queue is already empty and the abort is
// a no-op).
func (cf *chunkFanout) close() {
	if cf != nil && cf.ep != nil {
		cf.ep.Abort()
		cf.ep.Close()
	}
}

// compressField chunk-decomposes one field (sz.PlanChunksBytes — the same
// conversion the planner's chunk-count prediction uses), batch-submits
// every chunk to the endpoint (funcX batching), waits for completions —
// workers may finish chunks in any order — and assembles the framed
// container by chunk index. The container is therefore byte-identical for
// any worker count or completion order: only the chunk plan (shape × chunk
// size) determines the bytes. Task records are forgotten once collected so
// the fabric does not hold a second copy of every compressed chunk for the
// campaign's lifetime. Returns the container and the number of chunks.
func (cf *chunkFanout) compressField(ctx context.Context, f *datagen.Field, cfg sz.Config, chunkBytes int64) ([]byte, int, error) {
	ranges := sz.PlanChunksBytes(f.Dims, chunkBytes, f.ElementSize)
	payloads := make([]interface{}, len(ranges))
	for i, r := range ranges {
		payloads[i] = chunkPayload{data: f.Data, dims: f.Dims, cfg: cfg, rng: r}
	}
	// Context-aware submission: a cancelled campaign must not keep feeding
	// the endpoint backlog from behind a full queue.
	ids, err := cf.svc.SubmitBatchContext(ctx, chunkFanoutEndpoint, fnCompressChunk, payloads)
	defer cf.svc.Forget(ids...)
	if err != nil {
		return nil, 0, fmt.Errorf("core: submit chunks for %s: %w", f.ID(), err)
	}
	results, err := cf.svc.WaitAll(ctx, ids)
	if err != nil {
		return nil, 0, fmt.Errorf("core: compress chunks for %s: %w", f.ID(), err)
	}
	chunks := make([][]byte, len(results))
	for i, res := range results {
		stream, ok := res.([]byte)
		if !ok || len(stream) == 0 {
			return nil, 0, fmt.Errorf("core: chunk %d of %s returned no stream", i, f.ID())
		}
		chunks[i] = stream
	}
	stream, err := sz.AssembleChunks(chunks)
	if err != nil {
		return nil, 0, fmt.Errorf("core: assemble %s: %w", f.ID(), err)
	}
	return stream, len(ranges), nil
}
