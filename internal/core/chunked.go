package core

import (
	"context"
	"errors"
	"fmt"

	"ocelot/internal/codec"
	"ocelot/internal/datagen"
	"ocelot/internal/faas"
	"ocelot/internal/obs"
	"ocelot/internal/sz"
)

// fnCompressChunk is the chunk-compression function registered on the
// fan-out fabric.
const fnCompressChunk = "ocelot.compressChunk"

// chunkFanoutEndpoint is the name of the endpoint the campaign deploys for
// chunk-parallel compression (the paper's funcX source endpoint).
const chunkFanoutEndpoint = "compress-pool"

// chunkPayload is one chunk-compression task shipped through the fabric.
// The data slice is the WHOLE field; the range selects the chunk, so the
// fabric moves no copies (in-process endpoints share memory, matching the
// paper's compress-at-the-source placement). The codec travels with the
// task, so one endpoint serves chunks of any registered codec.
type chunkPayload struct {
	data  []float64
	dims  []int
	cdc   codec.Codec
	cfg   sz.Config // sz3 path only; carries the field-level absolute bound
	absEB float64
	rng   sz.ChunkRange
}

// chunkFanout owns the in-process funcX-style fabric the campaign engine
// fans chunk compression out on: one service, one deployed endpoint whose
// worker count is the campaign's compression parallelism, and the
// registered chunk-compression function. The endpoint's warming model
// applies — the first chunk executed on the endpoint pays the configured
// cold-start cost (warming is per function per endpoint, not per worker),
// every later chunk the warm dispatch cost.
type chunkFanout struct {
	svc *faas.Service
	ep  *faas.Endpoint
}

// newChunkFanout deploys a fresh fabric with the given endpoint tuning.
func newChunkFanout(cfg faas.EndpointConfig) (*chunkFanout, error) {
	svc := faas.NewService()
	if err := svc.RegisterFunction(fnCompressChunk, func(ctx context.Context, payload interface{}) (interface{}, error) {
		p, ok := payload.(chunkPayload)
		if !ok {
			return nil, errors.New("ocelot.compressChunk: bad payload")
		}
		// The fabric hands the function the submitter's context, which
		// carries the compress stage's span — each chunk task traces as a
		// child of its field's compress span.
		_, span := obs.StartSpan(ctx, "chunk",
			obs.Int("start", int64(p.rng.Start)), obs.Int("end", int64(p.rng.End)))
		defer span.End()
		if p.cdc != nil && p.cdc.Name() != sz.CodecName {
			// Generic codec path: the chunk is a contiguous row block, so
			// it compresses as a standalone field under the FIELD-level
			// absolute bound (relative bounds were resolved against the
			// whole field upstream — decomposition never changes the
			// guarantee).
			row := 1
			for _, d := range p.dims[1:] {
				row *= d
			}
			sub := p.data[p.rng.Start*row : p.rng.End*row]
			subDims := append([]int(nil), p.dims...)
			subDims[0] = p.rng.End - p.rng.Start
			return p.cdc.Compress(sub, subDims, codec.Params{AbsErrorBound: p.absEB})
		}
		stream, _, err := sz.CompressChunk(p.data, p.dims, p.cfg, p.rng)
		return stream, err
	}); err != nil {
		return nil, err
	}
	ep, err := svc.DeployEndpoint(chunkFanoutEndpoint, cfg)
	if err != nil {
		return nil, err
	}
	return &chunkFanout{svc: svc, ep: ep}, nil
}

// close tears the fabric down. Abort before Close so a campaign unwinding
// from an error or cancellation is not held hostage by a deep chunk
// backlog: queued chunks finish with ErrEndpointClosed instead of
// compressing (on a clean run the queue is already empty and the abort is
// a no-op).
func (cf *chunkFanout) close() {
	if cf != nil && cf.ep != nil {
		cf.ep.Abort()
		cf.ep.Close()
	}
}

// compressField chunk-decomposes one field (sz.PlanChunksBytes — the same
// conversion the planner's chunk-count prediction uses), batch-submits
// every chunk to the endpoint (funcX batching), waits for completions —
// workers may finish chunks in any order — and assembles the framed
// container by chunk index. The container is therefore byte-identical for
// any worker count or completion order: only the chunk plan (shape × chunk
// size) determines the bytes. Task records are forgotten once collected so
// the fabric does not hold a second copy of every compressed chunk for the
// campaign's lifetime. Returns the container and the number of chunks.
func (cf *chunkFanout) compressField(ctx context.Context, f *datagen.Field, cdc codec.Codec, cfg sz.Config, chunkBytes int64) ([]byte, int, error) {
	ranges := sz.PlanChunksBytes(f.Dims, chunkBytes, f.ElementSize)
	// Resolve the field-level bound once: with a relative-mode config this
	// is a full range scan, and it is identical for every chunk.
	absEB := cfg.AbsoluteBound(f.Data)
	payloads := make([]interface{}, len(ranges))
	for i, r := range ranges {
		payloads[i] = chunkPayload{data: f.Data, dims: f.Dims, cdc: cdc, cfg: cfg,
			absEB: absEB, rng: r}
	}
	// Context-aware submission: a cancelled campaign must not keep feeding
	// the endpoint backlog from behind a full queue.
	ids, err := cf.svc.SubmitBatchContext(ctx, chunkFanoutEndpoint, fnCompressChunk, payloads)
	defer cf.svc.Forget(ids...)
	if err != nil {
		return nil, 0, fmt.Errorf("core: submit chunks for %s: %w", f.ID(), err)
	}
	results, err := cf.svc.WaitAll(ctx, ids)
	if err != nil {
		return nil, 0, fmt.Errorf("core: compress chunks for %s: %w", f.ID(), err)
	}
	chunks := make([][]byte, len(results))
	for i, res := range results {
		stream, ok := res.([]byte)
		if !ok || len(stream) == 0 {
			return nil, 0, fmt.Errorf("core: chunk %d of %s returned no stream", i, f.ID())
		}
		chunks[i] = stream
	}
	stream, err := sz.AssembleChunks(chunks)
	if err != nil {
		return nil, 0, fmt.Errorf("core: assemble %s: %w", f.ID(), err)
	}
	return stream, len(ranges), nil
}
