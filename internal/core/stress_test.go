package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"ocelot/internal/wan"
)

// TestSubmitStressSharedTransport is the multi-tenancy soak for the
// re-entrant campaign API: well over a hundred campaigns are submitted
// concurrently onto ONE shared SimulatedWANTransport, a quarter of them
// cancelled mid-flight. Run under -race this exercises every handle
// transition and the transport's admission accounting at once. Three
// invariants must hold: no campaign hangs (every handle reaches a
// terminal state), cancellation is honoured (cancelled handles settle
// as canceled or done, never failed), and the shared link never moves
// bytes faster than its simulated bandwidth no matter how many
// campaigns pile onto it.
func TestSubmitStressSharedTransport(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	const (
		campaigns = 120
		bwMBps    = 50.0
		scale     = 1.0 // wall seconds per simulated second
	)
	fields := pipelineFields(t, 2, 96) // tiny, shared read-only by all campaigns
	tr := &SimulatedWANTransport{
		Link:      &wan.Link{Name: "stress", BandwidthMBps: bwMBps, Concurrency: 4},
		Timescale: scale,
	}

	handles := make([]*Campaign, campaigns)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < campaigns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h, err := Submit(context.Background(), fields, CampaignSpec{
				RelErrorBound:   1e-3,
				Workers:         1,
				GroupParam:      2,
				Transport:       tr,
				TransferStreams: 1,
			})
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			handles[i] = h
			// Cancel every fourth campaign after a short, staggered
			// delay so cancellation lands across all stages: some
			// while queued for the link, some mid-send, some after.
			if i%4 == 0 {
				time.Sleep(time.Duration(i) * 100 * time.Microsecond)
				h.Cancel()
			}
		}(i)
	}
	wg.Wait()

	waitCtx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var totalSent int64
	var done, canceled int
	for i, h := range handles {
		if h == nil {
			continue
		}
		if _, err := h.Wait(waitCtx); err != nil && !errors.Is(err, context.Canceled) {
			t.Errorf("campaign %d: %v", i, err)
		}
		st := h.Status()
		if !st.State.Terminal() {
			t.Fatalf("campaign %d not terminal after Wait: %s", i, st.State)
		}
		totalSent += st.SentBytes
		switch st.State {
		case CampaignDone:
			done++
			if st.SentBytes == 0 {
				t.Errorf("campaign %d done with no bytes sent", i)
			}
		case CampaignCanceled:
			canceled++
		default:
			t.Errorf("campaign %d finished %s: %s", i, st.State, st.Error)
		}
	}
	wallSec := time.Since(start).Seconds()

	// A cancelled campaign may still have won its race and completed;
	// what may never happen is a failure, or everything being cancelled.
	if done < campaigns/2 {
		t.Errorf("only %d/%d campaigns completed", done, campaigns)
	}
	t.Logf("%d done, %d canceled, %.2f MB sent in %.2fs wall", done, canceled, float64(totalSent)/1e6, wallSec)

	// Shared-link conservation: aggregate simulated throughput across
	// every concurrent campaign must stay within the link's bandwidth.
	// Sleeps only ever run long, so any excess means pacing is broken.
	simSec := wallSec / scale
	if throughput := float64(totalSent) / 1e6 / simSec; throughput > bwMBps*1.02 {
		t.Errorf("aggregate simulated throughput %.1f MB/s exceeds link bandwidth %.0f MB/s",
			throughput, bwMBps)
	}
}
