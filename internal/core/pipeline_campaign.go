package core

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ocelot/internal/codec"
	"ocelot/internal/datagen"
	"ocelot/internal/faas"
	"ocelot/internal/grouping"
	"ocelot/internal/integrity"
	"ocelot/internal/journal"
	"ocelot/internal/lossless"
	"ocelot/internal/metrics"
	"ocelot/internal/obs"
	"ocelot/internal/pipeline"
	"ocelot/internal/sentinel"
	"ocelot/internal/sz"
)

// StageTiming is the per-stage ledger threaded into CampaignResult.
type StageTiming = pipeline.StageStats

// PipelineOptions configures the streaming campaign engine.
//
// Deprecated: new code should build a CampaignSpec and call Run or Submit;
// PipelineOptions survives as the compatibility surface for the original
// RunPipelinedCampaign / RunSequentialCampaign API.
type PipelineOptions struct {
	CampaignOptions
	// Transport ships packed archives; nil means NopTransport (in-process).
	Transport Transport
	// TransferStreams is the number of goroutines offering archives to the
	// transport at once — the Globus "concurrency" knob. ≤ 0 defaults to
	// the transport's own hint (a simulated WAN hints its link's
	// concurrency), else 4. Streams beyond the link's concurrency do not
	// add bandwidth: SimulatedWANTransport admits at most
	// Link.Concurrency sends at a time and queues the rest.
	TransferStreams int
	// StageBuffer is the capacity of the channels between stages; ≤ 0
	// means the worker count (enough slack to decouple stage cadences
	// without unbounded buffering).
	StageBuffer int
	// ChunkMB, when > 0, enables chunk-parallel compression: every field is
	// decomposed into ~ChunkMB-of-raw-data blocks (sz.PlanChunks) that are
	// batch-submitted to an in-process funcX-style endpoint and compressed
	// by its workers concurrently, so a single wide field no longer
	// serializes on one worker. The assembled chunked container is
	// byte-identical for any worker count (see sz.AssembleChunks).
	ChunkMB float64
	// CompressWorkers is the fan-out endpoint's worker count (the effective
	// compression parallelism when ChunkMB > 0); ≤ 0 defaults to Workers.
	CompressWorkers int
	// ChunkEndpoint tunes the deployed fan-out endpoint — cold/warm start
	// costs (the fabric's container-warming model) and queue depth. Its
	// Workers field is overridden by CompressWorkers. Ignored when
	// ChunkMB ≤ 0.
	ChunkEndpoint faas.EndpointConfig
}

// campaignMode selects between the barrier (classic) and streaming
// (pipelined) execution of the shared stage graph.
type campaignMode struct {
	pipelined       bool
	sequential      bool // hard barrier between transfer and decompress too
	transport       Transport
	transferStreams int
	buffer          int
	// perField overrides the global RelErrorBound/Predictor with planner
	// decisions, one entry per field (planned campaigns).
	perField []fieldSetting
	// measurePSNR also scores reconstruction PSNR in the verify stage so
	// planned campaigns can report predicted-vs-actual quality.
	measurePSNR bool
	// chunkBytes > 0 fans compression out chunk-wise over a faas endpoint
	// with compressWorkers workers tuned by endpoint.
	chunkBytes      int64
	compressWorkers int
	endpoint        faas.EndpointConfig
	// weight > 0 ships archives via SendWeighted on weighted transports, so
	// a multi-tenant scheduler can give campaigns proportional link shares.
	weight float64
	// journalPath, when non-empty, persists a durable manifest
	// (internal/journal) of every packed/sent/acked group; resumePath names
	// the journal a resumed campaign loads; journalMeta is stamped into the
	// begin record; manifest is the loaded resume state (runSpec fills it
	// when resumePath is set).
	journalPath string
	resumePath  string
	journalMeta map[string]string
	manifest    *journal.Manifest
	// retry and fallbacks make the transfer stage (and the chunk fan-out)
	// fault-tolerant: transient errors retry with exponential backoff, and
	// an exhausted or permanently failed transport fails over to the next.
	retry     sentinel.RetryPolicy
	fallbacks []Transport
	// observe, when set, receives the run's pipeline group right after
	// creation — the campaign handle uses it to serve live Stats snapshots.
	observe func(*pipeline.Group)
	// progress, when set, receives live transfer counters for Status.
	progress *campaignProgress
	// obs, when set, records lifecycle spans and campaign metrics
	// (CampaignSpec.Obs). nil costs pointer checks only.
	obs *obs.Obs
	// integrity frames every packed archive with CRC-32C digests at pack
	// time and verifies the frame before decompressing (on unless
	// CampaignSpec.NoIntegrity); audit tunes the post-decompress pointwise
	// bound audit and its quarantine escape.
	integrity bool
	audit     BoundAudit
}

// campaignMetrics holds the campaign counters resolved once per run, so
// the stage hot paths pay an atomic add — not a registry lookup — per
// event. All fields are nil (no-op) when the spec carries no registry.
type campaignMetrics struct {
	rawBytes        *obs.Counter   // campaign_raw_bytes_total
	compressedBytes *obs.Counter   // campaign_compressed_bytes_total
	sentBytes       *obs.Counter   // campaign_sent_bytes_total
	groups          *obs.Counter   // campaign_groups_total
	chunks          *obs.Counter   // campaign_chunks_total
	fields          *obs.Counter   // campaign_fields_total
	sendSeconds     *obs.Histogram // campaign_send_seconds
	corruptions     *obs.Counter   // campaign_corruption_detected_total
	retransmits     *obs.Counter   // campaign_retransmits_total
	auditFailures   *obs.Counter   // campaign_bound_audit_failures_total
	degradedFields  *obs.Counter   // campaign_degraded_fields_total
}

// newCampaignMetrics resolves the campaign metric family against the
// bundle's registry (all-nil when absent).
func newCampaignMetrics(o *obs.Obs) campaignMetrics {
	return campaignMetrics{
		rawBytes:        o.Counter("campaign_raw_bytes_total"),
		compressedBytes: o.Counter("campaign_compressed_bytes_total"),
		sentBytes:       o.Counter("campaign_sent_bytes_total"),
		groups:          o.Counter("campaign_groups_total"),
		chunks:          o.Counter("campaign_chunks_total"),
		fields:          o.Counter("campaign_fields_total"),
		sendSeconds:     o.Histogram("campaign_send_seconds"),
		corruptions:     o.Counter("campaign_corruption_detected_total"),
		retransmits:     o.Counter("campaign_retransmits_total"),
		auditFailures:   o.Counter("campaign_bound_audit_failures_total"),
		degradedFields:  o.Counter("campaign_degraded_fields_total"),
	}
}

// campaignProgress carries the live mid-run counters a Campaign handle's
// Status surfaces; the stage workers update it atomically.
type campaignProgress struct {
	sentBytes     atomic.Int64 // archive bytes accepted by the transport
	sentGroups    atomic.Int64 // archives shipped so far
	retries       atomic.Int64 // transient retries across transfer + fan-out
	failovers     atomic.Int64 // endpoint failovers across sends
	corruptGroups atomic.Int64 // groups whose delivery failed checksum verification
	retransmits   atomic.Int64 // successful re-deliveries of corrupted groups
	degraded      atomic.Int64 // fields quarantined lossless by the bound audit
}

// chunkMode derives the chunk fan-out portion of a campaignMode from the
// caller-facing options.
func (o PipelineOptions) chunkMode() (chunkBytes int64, workers int, ep faas.EndpointConfig) {
	if o.ChunkMB <= 0 {
		return 0, 0, faas.EndpointConfig{}
	}
	workers = o.CompressWorkers
	if workers <= 0 {
		workers = o.Workers
	}
	if workers <= 0 {
		workers = 4
	}
	ep = o.ChunkEndpoint
	ep.Workers = workers
	return int64(o.ChunkMB * 1e6), workers, ep
}

// fieldSetting is one field's planned compression configuration.
type fieldSetting struct {
	relEB     float64
	predictor sz.Predictor
	codec     string // registry name; "" inherits the campaign codec
}

// Spec projects the legacy pipeline options onto the unified CampaignSpec
// (Engine left at the zero value, EnginePipelined).
func (o PipelineOptions) Spec() CampaignSpec {
	spec := o.CampaignOptions.Spec()
	spec.Transport = o.Transport
	spec.TransferStreams = o.TransferStreams
	spec.StageBuffer = o.StageBuffer
	spec.ChunkMB = o.ChunkMB
	spec.CompressWorkers = o.CompressWorkers
	spec.ChunkEndpoint = o.ChunkEndpoint
	return spec
}

// RunPipelinedCampaign is the streaming version of RunCampaign: fields are
// compressed, packed into group archives, shipped over the transport, and
// decompressed/verified by concurrently running stages connected with
// bounded channels — a packed group starts its WAN transfer while later
// fields are still compressing, hiding compression cost inside transfer
// time exactly as the paper's end-to-end pipeline does. The result carries
// per-stage timings and the measured overlap.
//
// Deprecated: equivalent to Run with Engine: EnginePipelined; new code
// should use Run (or Submit for a handle).
func RunPipelinedCampaign(ctx context.Context, fields []*datagen.Field, opts PipelineOptions) (*CampaignResult, error) {
	spec := opts.Spec()
	spec.Engine = EnginePipelined
	return Run(ctx, fields, spec)
}

// RunSequentialCampaign executes the same campaign with hard barriers
// between every phase — compress all, pack all, transfer all, decompress
// all — the pre-pipelining behaviour. Each phase still runs its internal
// parallelism; only the phases are serialized. It exists as the honest
// baseline the pipelined engine is benchmarked against on the same
// transport.
//
// Deprecated: equivalent to Run with Engine: EngineSequential; new code
// should use Run (or Submit for a handle).
func RunSequentialCampaign(ctx context.Context, fields []*datagen.Field, opts PipelineOptions) (*CampaignResult, error) {
	spec := opts.Spec()
	spec.Engine = EngineSequential
	return Run(ctx, fields, spec)
}

// Items flowing between stages.
type compressedItem struct {
	idx    int
	name   string
	stream []byte
}

type packedGroup struct {
	id      int
	idxs    []int
	archive []byte
}

type sentGroup struct {
	packedGroup
	linkSec float64
	// delivered is what actually arrived at the destination — the verify
	// stage checksums these bytes, not the send buffer, so in-flight
	// corruption is observable. nil (plain Transport) means the archive
	// arrived as offered.
	delivered []byte
}

type verifiedGroup struct {
	members int
	maxRel  float64
	minPSNR float64
	// Integrity ledger: corrupt marks a group whose delivery failed
	// checksum verification at least once; retransmits/retransmitBytes
	// count its successful re-deliveries; degraded names members the bound
	// audit quarantined, with degradedBytes their lossless re-ship cost.
	corrupt         bool
	retransmits     int
	retransmitBytes int64
	degraded        []string
	degradedBytes   int64
}

// packState accumulates grouping bookkeeping; it is only touched by the
// single-worker pack stage, so no locking is needed until after Wait.
type packState struct {
	names           []string
	streams         map[int][]byte // barrier mode: held until flush
	plan            [][]int        // realized groups, in emit order
	groupBytes      []int64        // realized archive sizes, in emit order
	compressedBytes int64
	groupedBytes    int64
	nextID          int
	// idOffset is the first group id of this incarnation: resumed campaigns
	// number new groups after the journal's MaxGroupID so ids stay unique
	// across incarnations.
	idOffset int
	// journal, when set, durably records each packed group before it is
	// offered to the transport.
	journal *journal.Writer
	// obs records one "pack" span per emitted group (nil = off).
	obs *obs.Obs
	// integrity wraps each packed archive in a CRC-32C frame at pack time;
	// the journal's group digest then covers the framed bytes — exactly
	// what the transport ships and the verify stage checks.
	integrity bool
}

func (ps *packState) emitGroup(ctx context.Context, idxs []int, emit func(packedGroup) error) error {
	_, span := ps.obs.StartSpan(ctx, "pack",
		obs.Int("group", int64(ps.nextID)), obs.Int("members", int64(len(idxs))))
	defer span.End()
	members := make([]grouping.Member, 0, len(idxs))
	for _, i := range idxs {
		members = append(members, grouping.Member{Name: ps.names[i], Data: ps.streams[i]})
		delete(ps.streams, i)
	}
	arch, err := grouping.Pack(members)
	if err != nil {
		return err
	}
	var frameCRC uint32
	if ps.integrity {
		// Frame the archive at pack time: per-member CRC-32C digests plus a
		// payload digest, all checked before a byte is decompressed. The
		// journal digest below covers the framed bytes — the exact wire
		// payload — so journal, frame, and transport agree on one identity.
		sums := make([]uint32, len(members))
		for k, m := range members {
			sums[k] = integrity.Checksum(m.Data)
		}
		frameCRC = integrity.Checksum(arch)
		arch = integrity.Wrap(arch, sums)
	}
	span.Annotate(obs.Int("bytes", int64(len(arch))))
	ps.groupedBytes += int64(len(arch))
	ps.plan = append(ps.plan, idxs)
	ps.groupBytes = append(ps.groupBytes, int64(len(arch)))
	g := packedGroup{id: ps.nextID, idxs: idxs, archive: arch}
	ps.nextID++
	if ps.journal != nil {
		if err := ps.journal.Group(g.id, idxs, byteDigest(arch), frameCRC, int64(len(arch))); err != nil {
			return err
		}
	}
	return emit(g)
}

// runCampaign executes the shared compress → pack → transfer →
// decompress/verify stage graph. Barrier mode reproduces the classic
// RunCampaign semantics (pack waits for every stream, groups follow
// grouping.Plan); pipelined mode packs and ships groups as soon as they
// fill.
func runCampaign(ctx context.Context, fields []*datagen.Field, opts CampaignOptions, mode campaignMode) (*CampaignResult, error) {
	if len(fields) == 0 {
		return nil, errors.New("core: no fields")
	}
	if mode.perField != nil && len(mode.perField) != len(fields) {
		return nil, fmt.Errorf("core: %d field settings for %d fields", len(mode.perField), len(fields))
	}
	if opts.RelErrorBound <= 0 && mode.perField == nil {
		return nil, errors.New("core: relative error bound must be positive")
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = 4
	}
	now := opts.Now
	if now == nil {
		now = time.Now
	}
	strategy := opts.GroupStrategy
	if strategy == 0 {
		strategy = grouping.ByWorldSize
	}
	switch strategy {
	case grouping.ByWorldSize, grouping.ByTargetSize, grouping.SingleArchive:
	default:
		return nil, fmt.Errorf("core: unknown strategy %v", strategy)
	}
	param := opts.GroupParam
	if param <= 0 {
		param = int64(workers)
	}
	buffer := mode.buffer
	if buffer <= 0 {
		buffer = workers
	}

	// Resolve the campaign codec once; per-field plan decisions override
	// it below. Every name is validated against the registry before any
	// compression starts, so a typo fails fast instead of mid-pipeline.
	globalCodec, err := codec.Normalize(opts.Codec)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	res := &CampaignResult{Files: len(fields), Pipelined: mode.pipelined, Codec: globalCodec}
	absEBs := make([]float64, len(fields))
	relEBs := make([]float64, len(fields))
	ranges := make([]float64, len(fields))
	preds := make([]sz.Predictor, len(fields))
	codecs := make([]codec.Codec, len(fields))
	codecNames := make([]string, len(fields))
	byName := make(map[string]int, len(fields))
	ps := &packState{names: make([]string, len(fields)), streams: make(map[int][]byte)}
	for i, f := range fields {
		res.RawBytes += int64(f.RawBytes())
		r := metrics.ComputeRange(f.Data).Range
		if r <= 0 {
			r = 1
		}
		ranges[i] = r
		relEB := opts.RelErrorBound
		preds[i] = opts.Predictor
		codecName := globalCodec
		if mode.perField != nil {
			if s := mode.perField[i]; s.relEB > 0 {
				relEB = s.relEB
				if s.predictor != 0 {
					preds[i] = s.predictor
				}
				if s.codec != "" {
					codecName = s.codec
				}
			}
		}
		if relEB <= 0 {
			return nil, fmt.Errorf("core: field %d has no error bound", i)
		}
		if codecs[i], err = codec.Lookup(codecName); err != nil {
			return nil, fmt.Errorf("core: field %d: %w", i, err)
		}
		// Report the codec the campaign actually ran: the common per-field
		// codec, or "mixed" when a plan split the fields across codecs.
		if i == 0 {
			res.Codec = codecName
		} else if codecName != res.Codec {
			res.Codec = "mixed"
		}
		absEBs[i] = relEB * r
		relEBs[i] = relEB
		codecNames[i] = codecName
		ps.names[i] = f.ID() + ".sz"
		byName[ps.names[i]] = i
	}

	// Fault-tolerance bookkeeping. The spec fingerprint guards resumes: a
	// journal written under one spec refuses to resume under another. The
	// manifest (when resuming) tells us which fields acked groups already
	// cover — only the rest is re-executed — and the journal writer records
	// this incarnation's progress durably before each step proceeds.
	journaling := mode.journalPath != "" || mode.manifest != nil
	var hash string
	if journaling {
		hash = specFingerprint(fields, mode, strategy, param, opts.RelErrorBound, opts.Predictor, globalCodec)
	}
	reconDigests := make([]uint64, len(fields))
	missing := make([]int, 0, len(fields))
	if m := mode.manifest; m != nil {
		if len(m.Fields) != len(fields) {
			return nil, fmt.Errorf("core: journal records %d fields, campaign has %d", len(m.Fields), len(fields))
		}
		for i, fp := range m.Fields {
			if fp.Name != ps.names[i] {
				return nil, fmt.Errorf("core: journal field %d is %q, campaign has %q", i, fp.Name, ps.names[i])
			}
		}
		if err := m.CheckSpec(hash); err != nil {
			return nil, fmt.Errorf("core: resume %s: %w", mode.resumePath, err)
		}
		done, doneDigests := m.DoneFields()
		copy(reconDigests, doneDigests)
		for i := range fields {
			if !done[i] {
				missing = append(missing, i)
			}
		}
		ps.idOffset = m.MaxGroupID() + 1
		ps.nextID = ps.idOffset
		res.Resumed = true
		res.SkippedGroups = m.AckedGroups()
		res.SkippedBytes = m.AckedBytes()
	} else {
		for i := range fields {
			missing = append(missing, i)
		}
	}

	var jw *journal.Writer
	if mode.journalPath != "" {
		if mode.manifest != nil && mode.journalPath == mode.resumePath {
			// Resumed incarnation extending its own journal: append-only.
			if jw, err = journal.OpenAppend(mode.journalPath); err == nil {
				err = jw.Resume()
			}
		} else {
			plans := make([]journal.FieldPlan, len(fields))
			for i := range fields {
				plans[i] = journal.FieldPlan{Name: ps.names[i], RelEB: relEBs[i],
					Predictor: int(preds[i]), Codec: codecNames[i]}
			}
			if jw, err = journal.Create(mode.journalPath); err == nil {
				err = jw.Begin(hash, mode.engineName(), int(strategy), param, plans, mode.journalMeta)
			}
			if err == nil && mode.manifest != nil {
				// Resume journaling to a new path: replay the acked state so
				// the fresh journal stands alone.
				err = replayAcked(jw, mode.manifest)
			}
		}
		if err != nil {
			return nil, fmt.Errorf("core: journal %s: %w", mode.journalPath, err)
		}
		if mode.obs != nil {
			jw.SetMetrics(mode.obs.Metrics)
		}
		defer jw.Close()
	}
	ps.journal = jw
	ps.obs = mode.obs
	ps.integrity = mode.integrity

	// Observability: the root span covers the whole stage graph (the ctx
	// rebind parents every stage and per-item span under it), and the
	// campaign counter family is resolved once so stage workers pay one
	// atomic add per event. A nil bundle leaves cm all-nil no-ops.
	cm := newCampaignMetrics(mode.obs)
	cm.fields.Add(int64(len(missing)))
	cm.rawBytes.Add(res.RawBytes)
	ctx, rootSpan := mode.obs.StartSpan(ctx, "campaign",
		obs.Int("fields", int64(len(fields))), obs.String("engine", mode.engineName()))
	defer rootSpan.End()
	if mode.obs != nil {
		mode.retry.Metrics = mode.obs.Metrics
		mode.endpoint.Metrics = mode.obs.Metrics
		for _, tr := range append([]Transport{mode.transport}, mode.fallbacks...) {
			if st, ok := tr.(*SimulatedWANTransport); ok {
				st.adoptMetrics(mode.obs.Metrics)
			}
		}
	}

	if len(missing) == 0 {
		// Every field was acked before this incarnation started: nothing to
		// re-execute. The digest fold over the journal's recorded digests is
		// identical to the uninterrupted campaign's.
		if jw != nil {
			if err := jw.Done(); err != nil {
				return nil, fmt.Errorf("core: journal %s: %w", mode.journalPath, err)
			}
		}
		res.ReconDigest = foldDigests(reconDigests)
		if mode.obs != nil && mode.obs.Metrics != nil {
			res.Metrics = mode.obs.Metrics.Snapshot()
		}
		return res, nil
	}

	wallStart := now()
	g := pipeline.NewGroupWithClock(ctx, now)
	if mode.observe != nil {
		mode.observe(g)
	}

	src := pipeline.Emit(g, buffer, missing)

	var fan *chunkFanout
	var totalChunks atomic.Int64
	var retriesTotal, failoversTotal atomic.Int64
	if mode.chunkBytes > 0 {
		var err error
		if fan, err = newChunkFanout(mode.endpoint); err != nil {
			return nil, err
		}
		defer fan.close()
	}
	compress := pipeline.Stage(g, pipeline.Config{Name: "compress", Workers: workers, Buffer: buffer}, src,
		func(ctx context.Context, i int) (compressedItem, error) {
			ctx, span := mode.obs.StartSpan(ctx, "compress",
				obs.String("field", fields[i].ID()), obs.String("codec", codecNames[i]))
			defer span.End()
			cfg := sz.DefaultConfig(absEBs[i])
			if preds[i] != 0 {
				cfg.Predictor = preds[i]
			}
			var stream []byte
			var err error
			switch {
			case fan != nil:
				// Chunk fan-out: this stage worker only batches chunk tasks
				// onto the endpoint and assembles the completions; the
				// endpoint's worker pool is the actual compression
				// parallelism. The chunk tasks carry the field's codec.
				// Transient fabric failures retry under the campaign policy.
				var n, r int
				r, err = mode.retry.Do(ctx, func(ctx context.Context) error {
					var cerr error
					stream, n, cerr = fan.compressField(ctx, fields[i], codecs[i], cfg, mode.chunkBytes)
					return cerr
				})
				retriesTotal.Add(int64(r))
				if mode.progress != nil && r > 0 {
					mode.progress.retries.Add(int64(r))
				}
				totalChunks.Add(int64(n))
				cm.chunks.Add(int64(n))
				span.Annotate(obs.Int("chunks", int64(n)))
			case codecs[i].Name() == sz.CodecName:
				// The sz3 path keeps its richer Config (predictor choice,
				// future knobs) rather than flattening through the
				// codec-neutral Params.
				stream, _, err = sz.Compress(fields[i].Data, fields[i].Dims, cfg)
			default:
				stream, err = codecs[i].Compress(fields[i].Data, fields[i].Dims,
					codec.Params{AbsErrorBound: absEBs[i]})
			}
			if err != nil {
				return compressedItem{}, fmt.Errorf("compress %s: %w", fields[i].ID(), err)
			}
			cm.compressedBytes.Add(int64(len(stream)))
			span.Annotate(obs.Int("bytes", int64(len(stream))))
			return compressedItem{idx: i, name: ps.names[i], stream: stream}, nil
		})

	packed := packStage(g, compress, ps, mode, strategy, param, missing, buffer)

	// Transfer with retry + failover: transient errors (link flaps, outage
	// windows) retry in place with exponential backoff, and when the primary
	// transport's budget is spent — or it fails permanently — the send moves
	// to the next fallback endpoint under the same policy. Weighted
	// transports carry the campaign's fair-share weight on every attempt so
	// concurrent campaigns split a shared link proportionally. Progress
	// counters advance only on success, so a retried send never
	// double-counts SentBytes.
	transports := append([]Transport{mode.transport}, mode.fallbacks...)
	send := func(ctx context.Context, tr Transport, name string, data []byte) ([]byte, float64, error) {
		if dt, ok := tr.(DeliveredTransport); ok {
			return dt.SendDelivered(ctx, name, data, mode.weight)
		}
		if wt, ok := tr.(WeightedTransport); ok && mode.weight > 0 {
			sec, err := wt.SendWeighted(ctx, name, data, mode.weight)
			return data, sec, err
		}
		sec, err := tr.Send(ctx, name, data)
		return data, sec, err
	}
	var linkMu sync.Mutex
	var linkSec float64
	// ship moves one named payload with the full retry/failover budget and
	// returns the bytes that actually arrived. Every successful delivery —
	// first send, corruption retransmit, or quarantine escape — flows
	// through here, so link seconds and SentBytes account each one exactly
	// once, while retries never double-count.
	ship := func(ctx context.Context, name string, payload []byte) ([]byte, float64, error) {
		var sec float64
		var delivered []byte
		var attempt int64
		r, f, err := sentinel.Failover(ctx, mode.retry, len(transports),
			func(ctx context.Context, ep int) error {
				// One child span per attempt, so retries and failovers
				// are visible in the trace as repeated sends under the
				// group's transfer span.
				attempt++
				actx, asp := mode.obs.StartSpan(ctx, "send",
					obs.Int("attempt", attempt), obs.Int("endpoint", int64(ep)))
				start := now()
				d, s, sendErr := send(actx, transports[ep], name, payload)
				cm.sendSeconds.Observe(now().Sub(start).Seconds())
				if sendErr == nil {
					delivered, sec = d, s
				} else {
					asp.Annotate(obs.String("error", sendErr.Error()))
				}
				asp.End()
				return sendErr
			})
		retriesTotal.Add(int64(r))
		failoversTotal.Add(int64(f))
		if mode.progress != nil {
			mode.progress.retries.Add(int64(r))
			mode.progress.failovers.Add(int64(f))
		}
		if err != nil {
			return nil, 0, err
		}
		linkMu.Lock()
		linkSec += sec
		linkMu.Unlock()
		cm.sentBytes.Add(int64(len(payload)))
		if mode.progress != nil {
			mode.progress.sentBytes.Add(int64(len(payload)))
		}
		return delivered, sec, nil
	}
	sent := pipeline.Stage(g, pipeline.Config{Name: "transfer", Workers: mode.transferStreams, Buffer: buffer}, packed,
		func(ctx context.Context, pg packedGroup) (sentGroup, error) {
			ctx, span := mode.obs.StartSpan(ctx, "transfer",
				obs.Int("group", int64(pg.id)), obs.Int("bytes", int64(len(pg.archive))))
			defer span.End()
			delivered, sec, err := ship(ctx, fmt.Sprintf("group-%04d.ocgr", pg.id), pg.archive)
			if err != nil {
				return sentGroup{}, err
			}
			cm.groups.Inc()
			if mode.progress != nil {
				mode.progress.sentGroups.Add(1)
			}
			if jw != nil {
				_, jsp := mode.obs.StartSpan(ctx, "journal.sent", obs.Int("group", int64(pg.id)))
				jerr := jw.Sent(pg.id)
				jsp.End()
				if jerr != nil {
					return sentGroup{}, jerr
				}
			}
			return sentGroup{packedGroup: pg, linkSec: sec, delivered: delivered}, nil
		})

	if mode.sequential {
		// Hard barrier: hold every transferred group until the transfer
		// phase completes, so decompression cannot overlap it.
		var held []sentGroup
		sent = pipeline.Reduce(g, pipeline.Config{Name: "barrier", Buffer: buffer}, sent,
			func(ctx context.Context, sg sentGroup, emit func(sentGroup) error) error {
				held = append(held, sg)
				return nil
			},
			func(ctx context.Context, emit func(sentGroup) error) error {
				for _, sg := range held {
					if err := emit(sg); err != nil {
						return err
					}
				}
				return nil
			})
	}

	// quarantine re-ships one bound-violating field through the lossless
	// escape: the raw float64 bits travel deflate-compressed (with the
	// backend's raw fallback) inside an integrity frame, are verified on
	// arrival, and replace the lossy reconstruction bit-exactly. It returns
	// the exact values and the bytes shipped (counted per delivery).
	quarantine := func(ctx context.Context, i int) ([]float64, int64, error) {
		qctx, qsp := mode.obs.StartSpan(ctx, "quarantine", obs.String("field", ps.names[i]))
		defer qsp.End()
		comp, err := lossless.Compress(floatsToBytes(fields[i].Data), lossless.Deflate)
		if err != nil {
			return nil, 0, err
		}
		payload := comp
		if mode.integrity {
			payload = integrity.Wrap(comp, []uint32{integrity.Checksum(comp)})
		}
		qsp.Annotate(obs.Int("bytes", int64(len(payload))))
		var delivered []byte
		var shipped int64
		_, err = mode.retry.Do(qctx, func(ctx context.Context) error {
			d, _, serr := ship(ctx, ps.names[i]+".lossless", payload)
			if serr != nil {
				return serr
			}
			shipped += int64(len(payload))
			if mode.integrity {
				inner, _, verr := integrity.Verify(d)
				if verr != nil {
					// The escape itself was corrupted in flight: detected,
					// and re-shipped under the same transient budget.
					cm.corruptions.Inc()
					return sentinel.MarkTransient(verr)
				}
				d = inner
			}
			delivered = d
			return nil
		})
		if err != nil {
			return nil, shipped, err
		}
		raw, err := lossless.Decompress(delivered)
		if err != nil {
			return nil, shipped, err
		}
		vals, err := bytesToFloats(raw, len(fields[i].Data))
		return vals, shipped, err
	}

	// Fan-out campaigns pay the digest pass to prove worker-count
	// invariance; journaled/resumed campaigns pay it so a resumed half can
	// be compared digest-for-digest with an uninterrupted run.
	digestOn := mode.chunkBytes > 0 || journaling
	verified := pipeline.Stage(g, pipeline.Config{Name: "decompress", Workers: workers, Buffer: buffer}, sent,
		func(ctx context.Context, sg sentGroup) (verifiedGroup, error) {
			ctx, span := mode.obs.StartSpan(ctx, "decompress", obs.Int("group", int64(sg.id)))
			defer span.End()
			out := verifiedGroup{minPSNR: math.Inf(1)}
			payload := sg.delivered
			if payload == nil {
				payload = sg.archive
			}
			var memberSums []uint32
			if mode.integrity {
				// Checksum gate before any decompression: a delivery that
				// fails the frame check is detected corruption, classified
				// transient, and only this group is re-requested through the
				// retry budget (a zero-value policy grants one retransmit).
				var verr error
				payload, memberSums, verr = integrity.Verify(payload)
				if verr != nil {
					out.corrupt = true
					cm.corruptions.Inc()
					if mode.progress != nil {
						mode.progress.corruptGroups.Add(1)
					}
					span.Annotate(obs.String("corrupt", verr.Error()))
					_, rerr := mode.retry.Do(ctx, func(ctx context.Context) error {
						rctx, rsp := mode.obs.StartSpan(ctx, "retransmit", obs.Int("group", int64(sg.id)))
						defer rsp.End()
						d, _, serr := ship(rctx, fmt.Sprintf("group-%04d.ocgr", sg.id), sg.archive)
						if serr != nil {
							return serr
						}
						out.retransmits++
						out.retransmitBytes += int64(len(sg.archive))
						cm.retransmits.Inc()
						if mode.progress != nil {
							mode.progress.retransmits.Add(1)
						}
						payload, memberSums, verr = integrity.Verify(d)
						if verr != nil {
							cm.corruptions.Inc()
							return sentinel.MarkTransient(verr)
						}
						return nil
					})
					if rerr != nil {
						return verifiedGroup{}, fmt.Errorf("core: group %d corrupted in transit and not recovered after %d retransmit(s): %w", sg.id, out.retransmits, rerr)
					}
				}
			}
			members, err := grouping.Unpack(payload)
			if err != nil {
				return verifiedGroup{}, err
			}
			if mode.integrity && len(memberSums) != len(members) {
				return verifiedGroup{}, fmt.Errorf("core: group %d: frame records %d members, archive holds %d", sg.id, len(memberSums), len(members))
			}
			span.Annotate(obs.Int("members", int64(len(members))))
			out.members = len(members)
			for k, m := range members {
				// One verify span per member: checksum, decode, digest, bound
				// audit, optional PSNR. The closure gives the span a single
				// exit for every error path.
				k, m := k, m
				if err := func() error {
					_, vsp := mode.obs.StartSpan(ctx, "verify", obs.String("field", m.Name))
					defer vsp.End()
					i, ok := byName[m.Name]
					if !ok {
						return fmt.Errorf("core: unknown member %q", m.Name)
					}
					if mode.integrity && integrity.Checksum(m.Data) != memberSums[k] {
						return fmt.Errorf("core: %s: member checksum does not match its pack-time digest", m.Name)
					}
					// Registry dispatch on the member's own magic: grouped
					// archives may mix codecs (per-field plan decisions), and
					// pre-codec sz3 archives decode through the same path
					// byte-identically.
					recon, dims, err := codec.Decompress(m.Data)
					if err != nil {
						return fmt.Errorf("decompress %s: %w", m.Name, err)
					}
					if len(dims) != len(fields[i].Dims) {
						return fmt.Errorf("core: %s: dims mismatch", m.Name)
					}
					// Pointwise bound audit (full by default, stride-sampled
					// via BoundAudit.Stride): the codec's error-bound contract
					// is checked against the data, not trusted.
					maxErr, err := metrics.MaxAbsErrorSampled(fields[i].Data, recon, mode.audit.Stride)
					if err != nil {
						return err
					}
					quarantined := false
					if maxErr > absEBs[i]*(1+1e-9) {
						cm.auditFailures.Inc()
						if !mode.audit.Quarantine {
							return fmt.Errorf("core: %s: error %g exceeds bound %g", m.Name, maxErr, absEBs[i])
						}
						// The codec broke its bound for this field: quarantine
						// it — re-ship the raw values lossless and record the
						// degradation instead of failing the campaign.
						exact, shipped, qerr := quarantine(ctx, i)
						out.degradedBytes += shipped
						if qerr != nil {
							return fmt.Errorf("core: %s: bound violated (%g > %g) and lossless quarantine failed: %w", m.Name, maxErr, absEBs[i], qerr)
						}
						recon, quarantined = exact, true
						out.degraded = append(out.degraded, m.Name)
						cm.degradedFields.Inc()
						if mode.progress != nil {
							mode.progress.degraded.Add(1)
						}
						vsp.Annotate(obs.String("quarantined", "lossless"))
					} else {
						out.maxRel = math.Max(out.maxRel, maxErr/ranges[i])
					}
					// Each field is verified exactly once, so writing its slot
					// is race-free across decompress workers. Quarantined
					// fields digest their exact replacement.
					if digestOn {
						reconDigests[i] = reconDigest(recon)
					}
					// A quarantined field's replacement is bit-exact — there
					// is no noise to score, so it does not drag minPSNR.
					if mode.measurePSNR && !quarantined {
						p, err := metrics.PSNR(fields[i].Data, recon)
						if err != nil {
							return err
						}
						out.minPSNR = math.Min(out.minPSNR, p)
					}
					return nil
				}(); err != nil {
					return verifiedGroup{}, err
				}
			}
			if jw != nil {
				// The group is now verified end to end — durable at the
				// destination. Record its per-member recon digests (parallel
				// to the group's journal members, which are sg.idxs) so a
				// resume can fold them without redoing the field, echoing the
				// archive digest so a later resume can prove the ack belongs
				// to the archive the journal describes.
				acks := make([]uint64, len(sg.idxs))
				for k, i := range sg.idxs {
					acks[k] = reconDigests[i]
				}
				_, jsp := mode.obs.StartSpan(ctx, "journal.ack", obs.Int("group", int64(sg.id)))
				err := jw.Ack(sg.id, byteDigest(sg.archive), acks)
				jsp.End()
				if err != nil {
					return verifiedGroup{}, err
				}
			}
			return out, nil
		})

	collected := pipeline.Collect(g, verified)

	if err := g.Wait(); err != nil {
		return nil, err
	}
	res.WallSec = now().Sub(wallStart).Seconds()

	verifiedFiles := 0
	minPSNR := math.Inf(1)
	for _, v := range *collected {
		verifiedFiles += v.members
		res.MaxRelError = math.Max(res.MaxRelError, v.maxRel)
		minPSNR = math.Min(minPSNR, v.minPSNR)
		if v.corrupt {
			res.CorruptGroups++
		}
		res.Retransmits += v.retransmits
		res.RetransmitBytes += v.retransmitBytes
		res.DegradedBytes += v.degradedBytes
		res.DegradedFields = append(res.DegradedFields, v.degraded...)
	}
	sort.Strings(res.DegradedFields)
	if mode.measurePSNR {
		res.MinPSNR = minPSNR
	}
	if verifiedFiles != len(missing) {
		return nil, fmt.Errorf("core: %d members after grouping, want %d", verifiedFiles, len(missing))
	}

	if jw != nil {
		if err := jw.Done(); err != nil {
			return nil, fmt.Errorf("core: journal %s: %w", mode.journalPath, err)
		}
	}

	res.CompressedBytes = ps.compressedBytes
	res.GroupedBytes = ps.groupedBytes
	res.Groups = len(ps.plan)
	res.GroupBytes = ps.groupBytes
	// The ratio rates the work this incarnation actually did: for a resume
	// that is the missing fields' raw bytes over their compressed bytes.
	var procRaw int64
	for _, i := range missing {
		procRaw += int64(fields[i].RawBytes())
	}
	if res.CompressedBytes > 0 {
		res.Ratio = float64(procRaw) / float64(res.CompressedBytes)
	}
	res.Metadata = grouping.Metadata(ps.names, ps.plan, strategy)
	res.LinkSec = linkSec
	res.Chunks = int(totalChunks.Load())
	res.CompressWorkers = mode.compressWorkers
	res.Retries = int(retriesTotal.Load())
	res.Failovers = int(failoversTotal.Load())
	if digestOn {
		res.ReconDigest = foldDigests(reconDigests)
	}

	stats := g.Stats()
	res.OverlapSec = pipeline.Overlap(stats)
	// Per-stage throughput: compress consumes the raw field bytes,
	// packing consumes the compressed streams, the transfer ships the
	// packed archives, and decompression delivers raw bytes back — so
	// compress/decompress MB/s are directly comparable to the codec's
	// single-stream throughput and to the link's rate.
	pipeline.AttachThroughput(stats, "compress", res.RawBytes)
	pipeline.AttachThroughput(stats, "pack", res.CompressedBytes)
	pipeline.AttachThroughput(stats, "transfer", res.GroupedBytes)
	pipeline.AttachThroughput(stats, "decompress", res.RawBytes)
	res.Stages = stats
	for _, s := range stats {
		switch s.Name {
		case "compress":
			res.CompressSec = s.WallSec
		case "pack":
			res.PackSec = s.BusySec
		case "transfer":
			res.TransferSec = s.WallSec
		case "decompress":
			res.DecompressSec = s.WallSec
		}
	}
	if mode.obs != nil && mode.obs.Metrics != nil {
		// Per-stage throughput distribution across runs, then the inline
		// snapshot — taken last so it includes everything above.
		for _, s := range stats {
			if s.MBps > 0 {
				mode.obs.Histogram("campaign_stage_mbps", obs.L("stage", s.Name)).Observe(s.MBps)
			}
		}
		res.Metrics = mode.obs.Metrics.Snapshot()
	}
	return res, nil
}

// FNV-64a parameters for the inline digest loops below: every campaign
// digests every reconstruction, so this runs in the decompress hot path
// and must not pay hash.Hash interface dispatch or per-value allocations.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnv64aWord folds one 64-bit word into an FNV-64a state, low byte first
// (equivalent to hashing the word's little-endian bytes).
func fnv64aWord(h, w uint64) uint64 {
	for s := 0; s < 64; s += 8 {
		h ^= (w >> s) & 0xff
		h *= fnvPrime64
	}
	return h
}

// reconDigest hashes one field's reconstruction (FNV-64a over the exact
// float64 bit patterns), so two campaigns can be compared for bit-identical
// output without retaining the data.
func reconDigest(recon []float64) uint64 {
	h := uint64(fnvOffset64)
	for _, v := range recon {
		h = fnv64aWord(h, math.Float64bits(v))
	}
	return h
}

// floatsToBytes flattens float64 values into their little-endian IEEE-754
// bit patterns — the wire form of a quarantined field's lossless escape.
func floatsToBytes(vals []float64) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(v))
	}
	return out
}

// bytesToFloats inverts floatsToBytes, checking the payload carries
// exactly the expected value count.
func bytesToFloats(raw []byte, want int) ([]float64, error) {
	if len(raw) != 8*want {
		return nil, fmt.Errorf("core: lossless escape carries %d bytes, want %d", len(raw), 8*want)
	}
	vals := make([]float64, want)
	for i := range vals {
		vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	return vals, nil
}

// foldDigests combines per-field digests in field-index order into one
// campaign digest. Field order is fixed by the input, not by completion
// order, so the fold is deterministic under any scheduling.
func foldDigests(digests []uint64) uint64 {
	h := uint64(fnvOffset64)
	for _, d := range digests {
		h = fnv64aWord(h, d)
	}
	return h
}

// packStage wires the grouping stage over the active field subset (all
// fields on a fresh run, the journal's missing fields on a resume). Both
// modes run as a single-worker Reduce; they differ in when groups are
// emitted.
func packStage(g *pipeline.Group, in <-chan compressedItem, ps *packState, mode campaignMode,
	strategy grouping.Strategy, param int64, active []int, buffer int) <-chan packedGroup {
	cfg := pipeline.Config{Name: "pack", Buffer: buffer}
	nFields := len(active)

	if !mode.pipelined {
		// Barrier: hold every stream, then group exactly as the classic
		// path does (round-robin plan over the active inventory).
		return pipeline.Reduce(g, cfg, in,
			func(ctx context.Context, it compressedItem, emit func(packedGroup) error) error {
				ps.streams[it.idx] = it.stream
				ps.compressedBytes += int64(len(it.stream))
				return nil
			},
			func(ctx context.Context, emit func(packedGroup) error) error {
				sizes := make([]int64, nFields)
				for j, i := range active {
					sizes[j] = int64(len(ps.streams[i]))
				}
				plan, err := grouping.Plan(sizes, strategy, param)
				if err != nil {
					return err
				}
				for _, pos := range plan {
					idxs := make([]int, len(pos))
					for k, p := range pos {
						idxs[k] = active[p]
					}
					if err := ps.emitGroup(ctx, idxs, emit); err != nil {
						return err
					}
				}
				return nil
			})
	}

	// Streaming: emit a group the moment it fills so the transfer stage
	// can start while later fields are still compressing. ByWorldSize
	// fills exactly `world` balanced groups (the first n%world groups get
	// one extra member, matching the round-robin plan's sizes, so the
	// archive count — and hence per-file WAN overhead — is identical to
	// the barrier engine's). ByTargetSize fills byte-budget groups;
	// SingleArchive degenerates to one flush.
	groupSize := func(int) int { return 0 }
	if strategy == grouping.ByWorldSize {
		world := int(param)
		if world > nFields {
			world = nFields
		}
		base, rem := nFields/world, nFields%world
		groupSize = func(g int) int {
			if g < rem {
				return base + 1
			}
			return base
		}
	}
	var cur []int
	var curBytes int64
	flushCur := func(ctx context.Context, emit func(packedGroup) error) error {
		if len(cur) == 0 {
			return nil
		}
		// Streams arrive in completion order; keep members sorted so
		// metadata is stable for a given grouping.
		idxs := append([]int(nil), cur...)
		sort.Ints(idxs)
		cur, curBytes = nil, 0
		return ps.emitGroup(ctx, idxs, emit)
	}
	return pipeline.Reduce(g, cfg, in,
		func(ctx context.Context, it compressedItem, emit func(packedGroup) error) error {
			size := int64(len(it.stream))
			ps.compressedBytes += size
			if strategy == grouping.ByTargetSize && curBytes > 0 && curBytes+size > param {
				if err := flushCur(ctx, emit); err != nil {
					return err
				}
			}
			ps.streams[it.idx] = it.stream
			cur = append(cur, it.idx)
			curBytes += size
			if want := groupSize(ps.nextID - ps.idOffset); want > 0 && len(cur) == want {
				return flushCur(ctx, emit)
			}
			return nil
		},
		func(ctx context.Context, emit func(packedGroup) error) error {
			return flushCur(ctx, emit)
		})
}
