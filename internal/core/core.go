// Package core is the Ocelot framework: it composes the quality predictor,
// the parallel compression executor, the file-grouping optimizer, the
// funcX-style orchestration fabric, and the Globus-style WAN transfer into
// the end-to-end "compress and transfer" pipeline of the paper (Fig 1/2).
//
// Two paths are provided:
//
//   - Simulate: the calibrated analytic/discrete-event model used to
//     regenerate the paper's end-to-end results (Table VIII, Fig 16) for
//     testbeds we cannot physically run.
//   - Campaign: a real in-process pipeline that compresses actual data with
//     the Go SZ implementation, packs groups, moves bytes, decompresses,
//     and verifies error bounds.
package core

import (
	"errors"
	"fmt"
	"math/rand"

	"ocelot/internal/cluster"
	"ocelot/internal/grouping"
	"ocelot/internal/wan"
)

// Mode selects the transfer strategy, matching Table VIII's columns.
type Mode uint8

const (
	// ModeDirect transfers raw files (the paper's NP).
	ModeDirect Mode = iota + 1
	// ModeCompressed compresses each file individually first (CP).
	ModeCompressed
	// ModeGrouped compresses and packs small files into groups (OP).
	ModeGrouped
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeDirect:
		return "NP"
	case ModeCompressed:
		return "CP"
	case ModeGrouped:
		return "OP"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// FileSet describes one dataset campaign (e.g. "CESM, 7182 files, 1.61TB").
type FileSet struct {
	// App label for reports.
	App string
	// Sizes are per-file raw byte counts.
	Sizes []int64
	// Ratio is the effective compression ratio the compressor achieves on
	// this application's files (measured on synthetic samples or predicted
	// by the quality model).
	Ratio float64
	// RatioJitterFrac varies per-file ratios deterministically (0 = none).
	RatioJitterFrac float64
}

// TotalBytes sums the raw file sizes.
func (fs *FileSet) TotalBytes() int64 {
	var t int64
	for _, s := range fs.Sizes {
		t += s
	}
	return t
}

// UniformFileSet builds a FileSet of n equal files.
func UniformFileSet(app string, n int, fileBytes int64, ratio float64) *FileSet {
	sizes := make([]int64, n)
	for i := range sizes {
		sizes[i] = fileBytes
	}
	return &FileSet{App: app, Sizes: sizes, Ratio: ratio}
}

// Pipeline binds a source machine, destination machine, and WAN link.
type Pipeline struct {
	Source *cluster.Machine
	Dest   *cluster.Machine
	Link   *wan.Link
}

// Plan configures one simulated run.
type Plan struct {
	// Mode is the strategy; required.
	Mode Mode
	// SourceNodes for compression (default 16, the paper's Anvil setup).
	SourceNodes int
	// DestNodes for decompression (default: the destination's I/O knee).
	DestNodes int
	// GroupStrategy and GroupParam control ModeGrouped packing; defaults:
	// ByWorldSize with world = SourceNodes × cores.
	GroupStrategy grouping.Strategy
	GroupParam    int64
	// Seed drives deterministic jitter.
	Seed int64
}

// Report is the simulated outcome, matching Table VIII's columns.
type Report struct {
	Mode          Mode    `json:"mode"`
	Files         int     `json:"files"`
	RawBytes      int64   `json:"rawBytes"`
	MovedBytes    int64   `json:"movedBytes"`
	MovedFiles    int     `json:"movedFiles"`
	CompressSec   float64 `json:"compressSec"`
	TransferSec   float64 `json:"transferSec"`
	DecompressSec float64 `json:"decompressSec"`
	TotalSec      float64 `json:"totalSec"`
	// EffectiveMBps is the transfer-phase effective speed.
	EffectiveMBps float64 `json:"effectiveMBps"`
}

// Gain computes the paper's performance improvement (T(NP) − Total)/T(NP).
func Gain(direct, withCompression *Report) float64 {
	if direct.TotalSec <= 0 {
		return 0
	}
	return (direct.TotalSec - withCompression.TotalSec) / direct.TotalSec
}

// Simulate runs one plan over the calibrated models.
func (p *Pipeline) Simulate(fs *FileSet, plan Plan) (*Report, error) {
	if p.Source == nil || p.Dest == nil || p.Link == nil {
		return nil, errors.New("core: pipeline needs source, dest, link")
	}
	if err := p.Link.Validate(); err != nil {
		return nil, err
	}
	if len(fs.Sizes) == 0 {
		return nil, errors.New("core: empty file set")
	}
	if plan.Mode != ModeDirect && fs.Ratio <= 0 {
		return nil, errors.New("core: compression modes need a positive ratio")
	}
	srcNodes := plan.SourceNodes
	if srcNodes <= 0 {
		srcNodes = 16
	}
	dstNodes := plan.DestNodes
	if dstNodes <= 0 {
		dstNodes = int(p.Dest.IOKneeNodes)
	}
	rep := &Report{Mode: plan.Mode, Files: len(fs.Sizes), RawBytes: fs.TotalBytes()}

	switch plan.Mode {
	case ModeDirect:
		tr, err := p.Link.Estimate(fs.Sizes, plan.Seed)
		if err != nil {
			return nil, err
		}
		rep.TransferSec = tr.Seconds
		rep.TotalSec = tr.Seconds
		rep.MovedBytes = tr.Bytes
		rep.MovedFiles = tr.Files
		rep.EffectiveMBps = tr.EffectiveMBps
		return rep, nil

	case ModeCompressed, ModeGrouped:
		compressed := compressedSizes(fs, plan.Seed)
		rep.CompressSec = p.Source.CompressTime(fs.Sizes, srcNodes)

		moved := compressed
		if plan.Mode == ModeGrouped {
			strategy := plan.GroupStrategy
			if strategy == 0 {
				strategy = grouping.ByWorldSize
			}
			param := plan.GroupParam
			if param <= 0 {
				param = int64(srcNodes * p.Source.CoresPerNode)
			}
			planIdx, err := grouping.Plan(compressed, strategy, param)
			if err != nil {
				return nil, err
			}
			moved = grouping.GroupSizes(compressed, planIdx)
		}
		tr, err := p.Link.Estimate(moved, plan.Seed)
		if err != nil {
			return nil, err
		}
		rep.TransferSec = tr.Seconds
		rep.MovedBytes = tr.Bytes
		rep.MovedFiles = tr.Files
		rep.EffectiveMBps = tr.EffectiveMBps
		rep.DecompressSec = p.Dest.DecompressTime(fs.Sizes, dstNodes)
		rep.TotalSec = rep.CompressSec + rep.TransferSec + rep.DecompressSec
		return rep, nil

	default:
		return nil, fmt.Errorf("core: unknown mode %v", plan.Mode)
	}
}

// compressedSizes derives per-file compressed sizes from the set's ratio
// with optional deterministic jitter.
func compressedSizes(fs *FileSet, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed ^ 0x5EED))
	out := make([]int64, len(fs.Sizes))
	for i, s := range fs.Sizes {
		r := fs.Ratio
		if fs.RatioJitterFrac > 0 {
			r *= 1 + fs.RatioJitterFrac*(rng.Float64()*2-1)
			if r < 1 {
				r = 1
			}
		}
		c := int64(float64(s) / r)
		if c < 1 {
			c = 1
		}
		out[i] = c
	}
	return out
}

// CompareModes simulates NP, CP, and OP for one file set and returns the
// three reports (Table VIII row).
func (p *Pipeline) CompareModes(fs *FileSet, plan Plan) (direct, cp, op *Report, err error) {
	d := plan
	d.Mode = ModeDirect
	if direct, err = p.Simulate(fs, d); err != nil {
		return nil, nil, nil, err
	}
	c := plan
	c.Mode = ModeCompressed
	if cp, err = p.Simulate(fs, c); err != nil {
		return nil, nil, nil, err
	}
	o := plan
	o.Mode = ModeGrouped
	if op, err = p.Simulate(fs, o); err != nil {
		return nil, nil, nil, err
	}
	return direct, cp, op, nil
}
