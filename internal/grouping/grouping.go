// Package grouping implements the file-grouping optimization of the paper's
// Section VII-C (Fig 11): many small compressed files are packed into a few
// grouped archives so the WAN transfer regains large-file throughput. Each
// archive has a binary header (member count, names, offsets, sizes) followed
// by the concatenated member bodies, and a human-readable metadata text is
// produced for the whole grouping, mirroring the paper's design.
package grouping

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
)

// Member is one file inside a group.
type Member struct {
	Name string
	Data []byte
}

// groupMagic identifies an Ocelot group archive.
const groupMagic = 0x4F434752 // "OCGR"

// ErrCorrupt indicates a malformed archive.
var ErrCorrupt = errors.New("grouping: corrupt archive")

// Pack serializes members into one archive: header (magic, count, table of
// name/offset/size) then bodies at the recorded offsets.
func Pack(members []Member) ([]byte, error) {
	if len(members) == 0 {
		return nil, errors.New("grouping: no members")
	}
	headerSize := 8 // magic + count
	for _, m := range members {
		if m.Name == "" {
			return nil, errors.New("grouping: empty member name")
		}
		if len(m.Name) > 1<<16-1 {
			return nil, fmt.Errorf("grouping: name too long: %d bytes", len(m.Name))
		}
		headerSize += 2 + len(m.Name) + 8 + 8
	}
	total := headerSize
	for _, m := range members {
		total += len(m.Data)
	}
	out := make([]byte, 0, total)
	var b4 [4]byte
	var b8 [8]byte
	binary.LittleEndian.PutUint32(b4[:], groupMagic)
	out = append(out, b4[:]...)
	binary.LittleEndian.PutUint32(b4[:], uint32(len(members)))
	out = append(out, b4[:]...)
	offset := uint64(headerSize)
	for _, m := range members {
		var b2 [2]byte
		binary.LittleEndian.PutUint16(b2[:], uint16(len(m.Name)))
		out = append(out, b2[:]...)
		out = append(out, m.Name...)
		binary.LittleEndian.PutUint64(b8[:], offset)
		out = append(out, b8[:]...)
		binary.LittleEndian.PutUint64(b8[:], uint64(len(m.Data)))
		out = append(out, b8[:]...)
		offset += uint64(len(m.Data))
	}
	for _, m := range members {
		out = append(out, m.Data...)
	}
	return out, nil
}

// Unpack parses an archive back into members. Member data aliases the
// input buffer.
func Unpack(archive []byte) ([]Member, error) {
	if len(archive) < 8 {
		return nil, ErrCorrupt
	}
	if binary.LittleEndian.Uint32(archive[:4]) != groupMagic {
		return nil, fmt.Errorf("grouping: bad magic: %w", ErrCorrupt)
	}
	count := int(binary.LittleEndian.Uint32(archive[4:8]))
	if count <= 0 || count > 1<<24 {
		return nil, ErrCorrupt
	}
	members := make([]Member, 0, count)
	off := 8
	type entry struct {
		name         string
		offset, size uint64
	}
	entries := make([]entry, 0, count)
	for i := 0; i < count; i++ {
		if off+2 > len(archive) {
			return nil, ErrCorrupt
		}
		nameLen := int(binary.LittleEndian.Uint16(archive[off : off+2]))
		off += 2
		if off+nameLen+16 > len(archive) {
			return nil, ErrCorrupt
		}
		name := string(archive[off : off+nameLen])
		off += nameLen
		o := binary.LittleEndian.Uint64(archive[off : off+8])
		s := binary.LittleEndian.Uint64(archive[off+8 : off+16])
		off += 16
		entries = append(entries, entry{name, o, s})
	}
	var prevEnd uint64
	for i, e := range entries {
		if e.offset > uint64(len(archive)) || e.offset+e.size > uint64(len(archive)) {
			return nil, ErrCorrupt
		}
		// Offsets must be monotone and non-overlapping.
		if i > 0 && e.offset < prevEnd {
			return nil, fmt.Errorf("grouping: overlapping members: %w", ErrCorrupt)
		}
		prevEnd = e.offset + e.size
		members = append(members, Member{Name: e.name, Data: archive[e.offset : e.offset+e.size]})
	}
	return members, nil
}

// Strategy selects how files are split into groups.
type Strategy uint8

const (
	// ByWorldSize creates one group per parallel rank (the paper's default:
	// ranks finish compression at a similar time and each writes one group).
	ByWorldSize Strategy = iota + 1
	// ByTargetSize packs greedily until each group reaches a target byte
	// size (derived from the profiled fastest-transferring file size).
	ByTargetSize
	// SingleArchive concatenates everything into one group (shown by the
	// paper to be counterproductive: it cannot use transfer concurrency).
	SingleArchive
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case ByWorldSize:
		return "by-world-size"
	case ByTargetSize:
		return "by-target-size"
	case SingleArchive:
		return "single-archive"
	default:
		return fmt.Sprintf("strategy(%d)", uint8(s))
	}
}

// Plan assigns file indices to groups. sizes are per-file byte counts;
// param means: ByWorldSize → world size (rank count), ByTargetSize →
// target bytes per group. Returned groups preserve file order within each
// group and cover every index exactly once.
func Plan(sizes []int64, strategy Strategy, param int64) ([][]int, error) {
	if len(sizes) == 0 {
		return nil, errors.New("grouping: no files")
	}
	switch strategy {
	case ByWorldSize:
		world := int(param)
		if world <= 0 {
			return nil, errors.New("grouping: world size must be positive")
		}
		if world > len(sizes) {
			world = len(sizes)
		}
		groups := make([][]int, world)
		// Round-robin matches rank ownership in the parallel compressor.
		for i := range sizes {
			g := i % world
			groups[g] = append(groups[g], i)
		}
		return groups, nil
	case ByTargetSize:
		target := param
		if target <= 0 {
			return nil, errors.New("grouping: target size must be positive")
		}
		var groups [][]int
		var cur []int
		var curBytes int64
		for i, s := range sizes {
			if curBytes > 0 && curBytes+s > target {
				groups = append(groups, cur)
				cur = nil
				curBytes = 0
			}
			cur = append(cur, i)
			curBytes += s
		}
		if len(cur) > 0 {
			groups = append(groups, cur)
		}
		return groups, nil
	case SingleArchive:
		all := make([]int, len(sizes))
		for i := range all {
			all[i] = i
		}
		return [][]int{all}, nil
	default:
		return nil, fmt.Errorf("grouping: unknown strategy %v", strategy)
	}
}

// GroupSizes converts a plan into per-group byte totals (header overhead
// included, estimated at 34 bytes/member + 8).
func GroupSizes(sizes []int64, plan [][]int) []int64 {
	out := make([]int64, len(plan))
	for g, idxs := range plan {
		var b int64 = 8
		for _, i := range idxs {
			b += sizes[i] + 34
		}
		out[g] = b
	}
	return out
}

// Metadata renders the human-readable metadata text file the paper
// describes: file counts, strategy, and original filenames per group.
func Metadata(names []string, plan [][]int, strategy Strategy) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "ocelot-grouping v1\nstrategy: %s\ngroups: %d\nfiles: %d\n",
		strategy, len(plan), len(names))
	for g, idxs := range plan {
		fmt.Fprintf(&sb, "group %d (%d files):\n", g, len(idxs))
		for _, i := range idxs {
			name := fmt.Sprintf("file-%d", i)
			if i < len(names) {
				name = names[i]
			}
			fmt.Fprintf(&sb, "  %s\n", name)
		}
	}
	return sb.String()
}
