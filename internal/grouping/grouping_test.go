package grouping

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func sampleMembers() []Member {
	return []Member{
		{Name: "a.sz", Data: []byte("alpha")},
		{Name: "b.sz", Data: []byte("")},
		{Name: "dir/c.sz", Data: bytes.Repeat([]byte{0xCD}, 1000)},
	}
}

func TestPackUnpackIdentity(t *testing.T) {
	members := sampleMembers()
	arch, err := Pack(members)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unpack(arch)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(members) {
		t.Fatalf("count %d != %d", len(back), len(members))
	}
	for i := range members {
		if back[i].Name != members[i].Name {
			t.Errorf("name %q != %q", back[i].Name, members[i].Name)
		}
		if !bytes.Equal(back[i].Data, members[i].Data) {
			t.Errorf("member %d data mismatch", i)
		}
	}
}

func TestPackErrors(t *testing.T) {
	if _, err := Pack(nil); err == nil {
		t.Error("empty pack must error")
	}
	if _, err := Pack([]Member{{Name: "", Data: []byte("x")}}); err == nil {
		t.Error("empty name must error")
	}
	if _, err := Pack([]Member{{Name: strings.Repeat("n", 70000), Data: nil}}); err == nil {
		t.Error("oversized name must error")
	}
}

func TestUnpackCorrupt(t *testing.T) {
	arch, err := Pack(sampleMembers())
	if err != nil {
		t.Fatal(err)
	}
	cases := [][]byte{
		nil,
		{1, 2, 3},
		arch[:10],
		arch[:len(arch)-3],
	}
	for i, c := range cases {
		if _, err := Unpack(c); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
	bad := append([]byte{}, arch...)
	bad[0] ^= 0xFF
	if _, err := Unpack(bad); err == nil {
		t.Error("bad magic must error")
	}
}

func TestPackUnpackQuick(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n)%20 + 1
		members := make([]Member, count)
		for i := range members {
			nameLen := rng.Intn(30) + 1
			name := make([]byte, nameLen)
			for j := range name {
				name[j] = byte('a' + rng.Intn(26))
			}
			data := make([]byte, rng.Intn(500))
			rng.Read(data)
			members[i] = Member{Name: string(name), Data: data}
		}
		arch, err := Pack(members)
		if err != nil {
			return false
		}
		back, err := Unpack(arch)
		if err != nil || len(back) != count {
			return false
		}
		for i := range members {
			if back[i].Name != members[i].Name || !bytes.Equal(back[i].Data, members[i].Data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPlanByWorldSize(t *testing.T) {
	sizes := []int64{10, 20, 30, 40, 50, 60, 70}
	plan, err := Plan(sizes, ByWorldSize, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 3 {
		t.Fatalf("groups = %d", len(plan))
	}
	assertCoverage(t, plan, len(sizes))
	// World size larger than files clamps.
	plan, err = Plan(sizes, ByWorldSize, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != len(sizes) {
		t.Fatalf("clamped groups = %d", len(plan))
	}
}

func TestPlanByTargetSize(t *testing.T) {
	sizes := []int64{40, 40, 40, 40, 100, 10, 10}
	plan, err := Plan(sizes, ByTargetSize, 100)
	if err != nil {
		t.Fatal(err)
	}
	assertCoverage(t, plan, len(sizes))
	for g, idxs := range plan {
		var total int64
		for _, i := range idxs {
			total += sizes[i]
		}
		// A group may exceed target only when a single file does.
		if total > 100 && len(idxs) > 1 {
			t.Errorf("group %d exceeds target with %d members (%d bytes)", g, len(idxs), total)
		}
	}
}

func TestPlanSingleArchive(t *testing.T) {
	sizes := []int64{1, 2, 3}
	plan, err := Plan(sizes, SingleArchive, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 1 || len(plan[0]) != 3 {
		t.Fatalf("plan = %v", plan)
	}
}

func TestPlanErrors(t *testing.T) {
	if _, err := Plan(nil, ByWorldSize, 4); err == nil {
		t.Error("no files must error")
	}
	if _, err := Plan([]int64{1}, ByWorldSize, 0); err == nil {
		t.Error("zero world must error")
	}
	if _, err := Plan([]int64{1}, ByTargetSize, 0); err == nil {
		t.Error("zero target must error")
	}
	if _, err := Plan([]int64{1}, Strategy(99), 0); err == nil {
		t.Error("unknown strategy must error")
	}
}

func assertCoverage(t *testing.T, plan [][]int, n int) {
	t.Helper()
	seen := make([]bool, n)
	for _, g := range plan {
		for _, i := range g {
			if i < 0 || i >= n {
				t.Fatalf("index %d out of range", i)
			}
			if seen[i] {
				t.Fatalf("index %d assigned twice", i)
			}
			seen[i] = true
		}
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("index %d unassigned", i)
		}
	}
}

func TestGroupSizes(t *testing.T) {
	sizes := []int64{100, 200, 300}
	plan := [][]int{{0, 1}, {2}}
	gs := GroupSizes(sizes, plan)
	if len(gs) != 2 {
		t.Fatalf("gs = %v", gs)
	}
	if gs[0] <= 300 || gs[1] <= 300 {
		t.Fatalf("group sizes must include bodies + overhead: %v", gs)
	}
}

func TestMetadata(t *testing.T) {
	names := []string{"x.dat", "y.dat", "z.dat"}
	plan := [][]int{{0, 2}, {1}}
	md := Metadata(names, plan, ByWorldSize)
	for _, want := range []string{"strategy: by-world-size", "groups: 2", "files: 3", "x.dat", "y.dat", "z.dat"} {
		if !strings.Contains(md, want) {
			t.Errorf("metadata missing %q:\n%s", want, md)
		}
	}
}

func TestStrategyString(t *testing.T) {
	if ByWorldSize.String() == "" || ByTargetSize.String() == "" || SingleArchive.String() == "" {
		t.Fatal("empty strategy strings")
	}
	if Strategy(42).String() == "" {
		t.Fatal("unknown strategy String empty")
	}
}

func BenchmarkPack(b *testing.B) {
	members := make([]Member, 64)
	for i := range members {
		members[i] = Member{Name: "file.sz", Data: bytes.Repeat([]byte{byte(i)}, 4096)}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Pack(members); err != nil {
			b.Fatal(err)
		}
	}
}
