package executor

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestPoolRunsAllJobs(t *testing.T) {
	p, err := NewPool(4)
	if err != nil {
		t.Fatal(err)
	}
	var count atomic.Int64
	jobs := make([]Job, 100)
	for i := range jobs {
		jobs[i] = func(ctx context.Context, rank int) error {
			count.Add(1)
			return nil
		}
	}
	if err := p.Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	if count.Load() != 100 {
		t.Fatalf("ran %d jobs", count.Load())
	}
}

func TestPoolBoundedParallelism(t *testing.T) {
	const workers = 3
	p, err := NewPool(workers)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	cur, max := 0, 0
	jobs := make([]Job, 50)
	for i := range jobs {
		jobs[i] = func(ctx context.Context, rank int) error {
			mu.Lock()
			cur++
			if cur > max {
				max = cur
			}
			mu.Unlock()
			time.Sleep(time.Millisecond)
			mu.Lock()
			cur--
			mu.Unlock()
			return nil
		}
	}
	if err := p.Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	if max > workers {
		t.Fatalf("observed %d concurrent jobs, limit %d", max, workers)
	}
}

func TestPoolErrorCancels(t *testing.T) {
	p, err := NewPool(2)
	if err != nil {
		t.Fatal(err)
	}
	wantErr := errors.New("boom")
	var ran atomic.Int64
	jobs := make([]Job, 1000)
	for i := range jobs {
		i := i
		jobs[i] = func(ctx context.Context, rank int) error {
			ran.Add(1)
			if i == 3 {
				return wantErr
			}
			return nil
		}
	}
	err = p.Run(context.Background(), jobs)
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v", err)
	}
	if ran.Load() == 1000 {
		t.Error("error should stop feeding jobs early")
	}
}

func TestPoolContextCancel(t *testing.T) {
	p, err := NewPool(2)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran atomic.Int64
	jobs := make([]Job, 1000)
	for i := range jobs {
		jobs[i] = func(ctx context.Context, rank int) error {
			if ran.Add(1) == 5 {
				cancel()
			}
			return nil
		}
	}
	err = p.Run(ctx, jobs)
	if err == nil {
		t.Fatal("want context error")
	}
	if ran.Load() == 1000 {
		t.Error("cancel should stop the pool")
	}
}

func TestPoolRankRange(t *testing.T) {
	p, err := NewPool(5)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	ranks := map[int]bool{}
	jobs := make([]Job, 100)
	for i := range jobs {
		jobs[i] = func(ctx context.Context, rank int) error {
			mu.Lock()
			ranks[rank] = true
			mu.Unlock()
			return nil
		}
	}
	if err := p.Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	for r := range ranks {
		if r < 0 || r >= 5 {
			t.Fatalf("rank %d out of range", r)
		}
	}
}

func TestNewPoolRejectsZero(t *testing.T) {
	if _, err := NewPool(0); err == nil {
		t.Fatal("want error")
	}
}

func TestEmptyJobs(t *testing.T) {
	p, _ := NewPool(2)
	if err := p.Run(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
}

func TestMap(t *testing.T) {
	out, err := Map(context.Background(), 4, 10, func(ctx context.Context, i int) (int, error) {
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	_, err = Map(context.Background(), 4, 10, func(ctx context.Context, i int) (int, error) {
		if i == 7 {
			return 0, errors.New("nope")
		}
		return 0, nil
	})
	if err == nil {
		t.Fatal("want error")
	}
}

func TestMakespanBasics(t *testing.T) {
	if m := Makespan(nil, 4); m != 0 {
		t.Fatalf("empty makespan = %v", m)
	}
	if m := Makespan([]float64{5}, 10); m != 5 {
		t.Fatalf("single job = %v", m)
	}
	// 4 equal jobs on 2 workers → 2 each.
	if m := Makespan([]float64{1, 1, 1, 1}, 2); m != 2 {
		t.Fatalf("makespan = %v", m)
	}
	// One dominant job bounds the makespan.
	if m := Makespan([]float64{10, 1, 1, 1}, 4); m != 10 {
		t.Fatalf("makespan = %v", m)
	}
}

// Properties: makespan ≥ max(cost), ≥ sum/workers, ≤ sum.
func TestMakespanBoundsQuick(t *testing.T) {
	f := func(raw []uint16, w uint8) bool {
		if len(raw) == 0 {
			return true
		}
		workers := int(w)%16 + 1
		costs := make([]float64, len(raw))
		var sum, max float64
		for i, r := range raw {
			costs[i] = float64(r) / 100
			sum += costs[i]
			if costs[i] > max {
				max = costs[i]
			}
		}
		m := Makespan(costs, workers)
		lower := math.Max(max, sum/float64(workers))
		return m >= lower-1e-9 && m <= sum+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMakespanMoreWorkersNeverSlower(t *testing.T) {
	costs := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5}
	prev := math.Inf(1)
	for _, w := range []int{1, 2, 4, 8, 16} {
		m := Makespan(costs, w)
		if m > prev+1e-9 {
			t.Fatalf("makespan grew with workers: %v -> %v at %d", prev, m, w)
		}
		prev = m
	}
}

func TestStreamMapDeliversAll(t *testing.T) {
	in := make(chan int)
	go func() {
		defer close(in)
		for i := 0; i < 50; i++ {
			in <- i
		}
	}()
	out, wait := StreamMap(context.Background(), 4, 2, in,
		func(ctx context.Context, v int) (int, error) { return v * v, nil })
	var sum int
	for v := range out {
		sum += v
	}
	if err := wait(); err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := 0; i < 50; i++ {
		want += i * i
	}
	if sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
}

func TestStreamMapErrorAborts(t *testing.T) {
	boom := errors.New("boom")
	ctx := context.Background()
	in := make(chan int)
	go func() {
		defer close(in)
		for i := 0; i < 1000; i++ {
			select {
			case in <- i:
			case <-time.After(5 * time.Second):
				return
			}
		}
	}()
	out, wait := StreamMap(ctx, 2, 0, in, func(ctx context.Context, v int) (int, error) {
		if v == 3 {
			return 0, boom
		}
		return v, nil
	})
	for range out {
	}
	if err := wait(); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}

func TestStreamMapParentCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	in := make(chan int) // never fed, never closed
	out, wait := StreamMap(ctx, 2, 0, in,
		func(ctx context.Context, v int) (int, error) { return v, nil })
	cancel()
	for range out {
	}
	if err := wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
