// Package executor provides the parallel (de)compression engine of the
// paper's Section VII-A. It has two faces:
//
//   - Pool: a real bounded worker pool that runs actual compression jobs on
//     goroutines — the "MPI program that loads different files and
//     compresses them in parallel", with ranks mapped to goroutines.
//   - Plan/estimate helpers that the simulation layer uses to model
//     many-node runs that would not fit in a test process.
package executor

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// Job is one unit of work identified by its index in the submission order.
type Job func(ctx context.Context, rank int) error

// Pool runs jobs across a fixed set of worker goroutines ("ranks").
type Pool struct {
	workers int
}

// NewPool creates a pool with the given parallelism (≥ 1).
func NewPool(workers int) (*Pool, error) {
	if workers < 1 {
		return nil, errors.New("executor: need at least one worker")
	}
	return &Pool{workers: workers}, nil
}

// Workers reports the pool's parallelism.
func (p *Pool) Workers() int { return p.workers }

// Run executes all jobs, at most `workers` concurrently, and returns the
// first error encountered (remaining jobs are cancelled via ctx). All
// goroutines are joined before returning.
func (p *Pool) Run(ctx context.Context, jobs []Job) error {
	if len(jobs) == 0 {
		return nil
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	next := make(chan int)
	var wg sync.WaitGroup
	errCh := make(chan error, 1)

	for rank := 0; rank < p.workers; rank++ {
		rank := rank
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-ctx.Done():
					return
				case idx, ok := <-next:
					if !ok {
						return
					}
					if err := jobs[idx](ctx, rank); err != nil {
						select {
						case errCh <- fmt.Errorf("executor: job %d: %w", idx, err):
							cancel()
						default:
						}
						return
					}
				}
			}
		}()
	}
	// Feed jobs; stop feeding on cancellation.
feed:
	for i := range jobs {
		select {
		case <-ctx.Done():
			break feed
		case next <- i:
		}
	}
	close(next)
	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
	}
	return ctx.Err()
}

// Map runs fn over n items with bounded parallelism and collects results.
// Results are indexed by item; on error the first failure is returned.
func Map[T any](ctx context.Context, workers, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	p, err := NewPool(workers)
	if err != nil {
		return nil, err
	}
	out := make([]T, n)
	jobs := make([]Job, n)
	for i := 0; i < n; i++ {
		i := i
		jobs[i] = func(ctx context.Context, rank int) error {
			v, err := fn(ctx, i)
			if err != nil {
				return err
			}
			out[i] = v
			return nil
		}
	}
	if err := p.Run(ctx, jobs); err != nil {
		return nil, err
	}
	return out, nil
}

// StreamMap is the streaming counterpart of Map: it applies fn to values
// arriving on in with `workers` goroutines, delivering results on the
// returned channel (buffered to `buffer`). Results are emitted as they
// complete, not in input order. The output channel is closed once in is
// closed and all in-flight items have finished, or once the stage aborts
// on error/cancellation. The returned wait function joins the workers and
// reports the first error (nil on clean completion).
//
// Callers that feed `in` must select on ctx.Done while sending, or the
// feeder can block forever after the stage aborts.
func StreamMap[I, O any](ctx context.Context, workers, buffer int, in <-chan I, fn func(ctx context.Context, v I) (O, error)) (<-chan O, func() error) {
	if workers < 1 {
		workers = 1
	}
	if buffer < 0 {
		buffer = 0
	}
	sctx, cancel := context.WithCancel(ctx)
	out := make(chan O, buffer)
	errCh := make(chan error, 1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-sctx.Done():
					return
				case v, ok := <-in:
					if !ok {
						return
					}
					o, err := fn(sctx, v)
					if err != nil {
						select {
						case errCh <- err:
						default:
						}
						cancel()
						return
					}
					select {
					case <-sctx.Done():
						return
					case out <- o:
					}
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(out)
		close(done)
	}()
	wait := func() error {
		<-done
		cancel()
		select {
		case err := <-errCh:
			return err
		default:
		}
		return ctx.Err()
	}
	return out, wait
}

// Makespan computes the simulated completion time of running tasks with the
// given per-task costs (seconds) on `workers` parallel workers using greedy
// longest-first scheduling. It mirrors what Pool achieves in practice and
// is used by the cluster model for node counts a test process cannot spawn.
func Makespan(costs []float64, workers int) float64 {
	if len(costs) == 0 || workers <= 0 {
		return 0
	}
	if workers > len(costs) {
		workers = len(costs)
	}
	// Insertion sort descending for small n, heap otherwise.
	sorted := make([]float64, len(costs))
	copy(sorted, costs)
	sortDesc(sorted)
	load := make([]float64, workers)
	for _, c := range sorted {
		load[0] += c
		siftDown(load)
	}
	var mk float64
	for _, v := range load {
		if v > mk {
			mk = v
		}
	}
	return mk
}

func sortDesc(a []float64) {
	// Simple heapsort to avoid importing sort for a hot path.
	n := len(a)
	for i := n/2 - 1; i >= 0; i-- {
		down(a, i, n)
	}
	for i := n - 1; i > 0; i-- {
		a[0], a[i] = a[i], a[0]
		down(a, 0, i)
	}
	// Heapsort yields ascending; reverse for descending.
	for i, j := 0, n-1; i < j; i, j = i+1, j-1 {
		a[i], a[j] = a[j], a[i]
	}
}

func down(a []float64, i, n int) {
	for {
		l, r := 2*i+1, 2*i+2
		max := i
		if l < n && a[l] > a[max] {
			max = l
		}
		if r < n && a[r] > a[max] {
			max = r
		}
		if max == i {
			return
		}
		a[i], a[max] = a[max], a[i]
		i = max
	}
}

// siftDown restores the min-heap property for load[0].
func siftDown(load []float64) {
	n := len(load)
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && load[l] < load[min] {
			min = l
		}
		if r < n && load[r] < load[min] {
			min = r
		}
		if min == i {
			return
		}
		load[i], load[min] = load[min], load[i]
		i = min
	}
}
