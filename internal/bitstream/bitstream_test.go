package bitstream

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadSingleBits(t *testing.T) {
	w := NewWriter(16)
	bits := []uint{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1}
	for _, b := range bits {
		w.WriteBit(b)
	}
	r := NewReader(w.Bytes())
	for i, want := range bits {
		got, err := r.ReadBit()
		if err != nil {
			t.Fatalf("bit %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("bit %d: got %d want %d", i, got, want)
		}
	}
}

func TestWriteBitsWidths(t *testing.T) {
	tests := []struct {
		name   string
		values []uint64
		widths []uint
	}{
		{"bytes", []uint64{0xAB, 0xCD, 0x12}, []uint{8, 8, 8}},
		{"mixed", []uint64{0x3, 0x1F, 0x0, 0xFFFF}, []uint{2, 5, 1, 16}},
		{"wide", []uint64{0xDEADBEEFCAFEF00D, 0x1}, []uint{64, 1}},
		{"cross-boundary", []uint64{0x1FF, 0x7F, 0x3FFFF}, []uint{9, 7, 18}},
		{"zero-width", []uint64{0x0, 0xFF}, []uint{0, 8}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			w := NewWriter(64)
			for i, v := range tt.values {
				w.WriteBits(v, tt.widths[i])
			}
			r := NewReader(w.Bytes())
			for i, want := range tt.values {
				got, err := r.ReadBits(tt.widths[i])
				if err != nil {
					t.Fatalf("value %d: %v", i, err)
				}
				mask := uint64(0)
				if tt.widths[i] == 64 {
					mask = ^uint64(0)
				} else {
					mask = (1 << tt.widths[i]) - 1
				}
				if got != want&mask {
					t.Fatalf("value %d: got %#x want %#x", i, got, want&mask)
				}
			}
		})
	}
}

func TestBitLen(t *testing.T) {
	w := NewWriter(8)
	if w.BitLen() != 0 {
		t.Fatalf("empty writer BitLen = %d", w.BitLen())
	}
	w.WriteBits(0x5, 3)
	if w.BitLen() != 3 {
		t.Fatalf("BitLen after 3 bits = %d", w.BitLen())
	}
	w.WriteBits(0xFFFF, 16)
	if w.BitLen() != 19 {
		t.Fatalf("BitLen after 19 bits = %d", w.BitLen())
	}
}

func TestReaderEOF(t *testing.T) {
	r := NewReader([]byte{0xFF})
	if _, err := r.ReadBits(8); err != nil {
		t.Fatalf("first byte: %v", err)
	}
	if _, err := r.ReadBits(1); err != ErrUnexpectedEOF {
		t.Fatalf("want ErrUnexpectedEOF, got %v", err)
	}
}

func TestReaderWidthTooLarge(t *testing.T) {
	r := NewReader(make([]byte, 16))
	if _, err := r.ReadBits(65); err == nil {
		t.Fatal("want error for width 65")
	}
}

func TestAlign(t *testing.T) {
	w := NewWriter(8)
	w.WriteBits(0x5, 3)
	w.WriteBits(0xAB, 8)
	data := w.Bytes()
	r := NewReader(data)
	if _, err := r.ReadBits(3); err != nil {
		t.Fatal(err)
	}
	r.Align()
	if r.Remaining()%8 != 0 {
		t.Fatalf("after Align remaining bits %d not byte aligned", r.Remaining())
	}
}

func TestReset(t *testing.T) {
	w := NewWriter(8)
	w.WriteBits(0xFF, 8)
	w.Reset()
	if w.BitLen() != 0 {
		t.Fatalf("BitLen after Reset = %d", w.BitLen())
	}
	w.WriteBits(0x2, 2)
	got := w.Bytes()
	if len(got) != 1 || got[0] != 0x80 {
		t.Fatalf("after reset bytes = %#v", got)
	}
}

// TestRoundTripQuick verifies that arbitrary (value, width) sequences
// round-trip exactly.
func TestRoundTripQuick(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%64) + 1
		values := make([]uint64, count)
		widths := make([]uint, count)
		for i := range values {
			widths[i] = uint(rng.Intn(64) + 1)
			values[i] = rng.Uint64() & ((1 << widths[i]) - 1)
			if widths[i] == 64 {
				values[i] = rng.Uint64()
			}
		}
		w := NewWriter(count * 8)
		for i, v := range values {
			w.WriteBits(v, widths[i])
		}
		r := NewReader(w.Bytes())
		for i, want := range values {
			got, err := r.ReadBits(widths[i])
			if err != nil || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWriteBits(b *testing.B) {
	w := NewWriter(1 << 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if i%100000 == 0 {
			w.Reset()
		}
		w.WriteBits(uint64(i), 17)
	}
}

func BenchmarkReadBits(b *testing.B) {
	w := NewWriter(1 << 20)
	for i := 0; i < 1<<17; i++ {
		w.WriteBits(uint64(i), 17)
	}
	data := w.Bytes()
	b.ResetTimer()
	b.ReportAllocs()
	r := NewReader(data)
	for i := 0; i < b.N; i++ {
		if r.Remaining() < 17 {
			r = NewReader(data)
		}
		if _, err := r.ReadBits(17); err != nil {
			b.Fatal(err)
		}
	}
}

// TestPeekSkipMatchesReadBits drives the same random stream through the
// peek-then-skip word-at-a-time API and through plain ReadBits; both must
// observe identical bit sequences.
func TestPeekSkipMatchesReadBits(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	w := NewWriter(1 << 12)
	var widths []uint
	var values []uint64
	for i := 0; i < 500; i++ {
		wd := uint(rng.Intn(56) + 1)
		v := rng.Uint64() & ((1 << wd) - 1)
		widths = append(widths, wd)
		values = append(values, v)
		w.WriteBits(v, wd)
	}
	data := w.Bytes()
	r := NewReader(data)
	for i, wd := range widths {
		got := r.Peek(wd)
		if got != values[i] {
			t.Fatalf("peek %d: got %#x want %#x", i, got, values[i])
		}
		// A second peek must be idempotent.
		if again := r.Peek(wd); again != got {
			t.Fatalf("peek %d not idempotent: %#x then %#x", i, got, again)
		}
		if err := r.Skip(wd); err != nil {
			t.Fatalf("skip %d: %v", i, err)
		}
	}
}

// TestPeekPastEndZeroPads: peeking beyond the stream must zero-pad, and the
// matching Skip must fail with ErrUnexpectedEOF.
func TestPeekPastEndZeroPads(t *testing.T) {
	r := NewReader([]byte{0xFF})
	if got := r.Peek(12); got != 0xFF0 {
		t.Fatalf("peek(12) over 1 byte = %#x, want 0xFF0", got)
	}
	if err := r.Skip(12); err != ErrUnexpectedEOF {
		t.Fatalf("skip past end: got %v, want ErrUnexpectedEOF", err)
	}
}

// TestSkipWideAcrossWords skips widths larger than the accumulator.
func TestSkipWideAcrossWords(t *testing.T) {
	data := make([]byte, 32)
	for i := range data {
		data[i] = byte(i * 37)
	}
	r := NewReader(data)
	if err := r.Skip(200); err != nil {
		t.Fatal(err)
	}
	want := NewReader(data)
	if _, err := want.ReadBits(64); err != nil {
		t.Fatal(err)
	}
	if _, err := want.ReadBits(64); err != nil {
		t.Fatal(err)
	}
	if _, err := want.ReadBits(64); err != nil {
		t.Fatal(err)
	}
	if _, err := want.ReadBits(8); err != nil {
		t.Fatal(err)
	}
	g, err := r.ReadBits(16)
	if err != nil {
		t.Fatal(err)
	}
	w, err := want.ReadBits(16)
	if err != nil {
		t.Fatal(err)
	}
	if g != w {
		t.Fatalf("after Skip(200): got %#x want %#x", g, w)
	}
	if r.Remaining() != want.Remaining() {
		t.Fatalf("remaining %d vs %d", r.Remaining(), want.Remaining())
	}
}

// TestReaderReset reuses one Reader across buffers.
func TestReaderReset(t *testing.T) {
	r := NewReader([]byte{0xAB})
	if _, err := r.ReadBits(8); err != nil {
		t.Fatal(err)
	}
	r.Reset([]byte{0xCD, 0xEF})
	v, err := r.ReadBits(16)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xCDEF {
		t.Fatalf("after Reset: %#x", v)
	}
}

// TestAlignAfterPeek: Align must account for accumulator-held bits.
func TestAlignAfterPeek(t *testing.T) {
	data := []byte{0b10110100, 0b01011111, 0xA5}
	r := NewReader(data)
	_ = r.Peek(3) // pulls a word into the accumulator
	if _, err := r.ReadBits(3); err != nil {
		t.Fatal(err)
	}
	r.Align()
	v, err := r.ReadBits(8)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0b01011111 {
		t.Fatalf("after align: %#x want %#x", v, 0b01011111)
	}
	if r.Remaining() != 8 {
		t.Fatalf("remaining = %d want 8", r.Remaining())
	}
}

func BenchmarkPeekSkip(b *testing.B) {
	w := NewWriter(1 << 20)
	for i := 0; i < 1<<17; i++ {
		w.WriteBits(uint64(i), 17)
	}
	data := w.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	r := NewReader(data)
	for i := 0; i < b.N; i++ {
		r.Reset(data)
		for r.Remaining() >= 17 {
			_ = r.Peek(12)
			if err := r.Skip(17); err != nil {
				b.Fatal(err)
			}
		}
	}
}
