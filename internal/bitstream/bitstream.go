// Package bitstream provides bit-granular writers and readers used by the
// entropy-coding stages of the compressors. Bits are packed MSB-first into
// bytes so that encoded streams are byte-order independent and the output of
// the canonical Huffman coder is deterministic across platforms.
package bitstream

import (
	"errors"
	"fmt"
)

// ErrUnexpectedEOF is returned when a read requests more bits than remain.
var ErrUnexpectedEOF = errors.New("bitstream: unexpected end of stream")

// Writer accumulates bits MSB-first into an internal byte buffer.
// The zero value is ready to use.
type Writer struct {
	buf  []byte
	cur  uint64 // bits not yet flushed, left-aligned within nbits
	nbit uint   // number of valid bits in cur (0..63)
}

// NewWriter returns a Writer with capacity preallocated for sizeHint bytes.
func NewWriter(sizeHint int) *Writer {
	if sizeHint < 0 {
		sizeHint = 0
	}
	return &Writer{buf: make([]byte, 0, sizeHint)}
}

// WriteBits appends the low `width` bits of v to the stream, MSB first.
// width must be in [0, 64].
func (w *Writer) WriteBits(v uint64, width uint) {
	if width == 0 {
		return
	}
	if width < 64 {
		v &= (1 << width) - 1
	}
	// Split so cur never exceeds 64 bits.
	for width > 0 {
		free := 64 - w.nbit
		take := width
		if take > free {
			take = free
		}
		chunk := v >> (width - take)
		w.cur = (w.cur << take) | (chunk & ((1 << take) - 1))
		w.nbit += take
		width -= take
		if w.nbit == 64 {
			w.flushWord()
		}
	}
}

// WriteBit appends a single bit (0 or 1).
func (w *Writer) WriteBit(b uint) {
	w.WriteBits(uint64(b&1), 1)
}

func (w *Writer) flushWord() {
	for i := 0; i < 8; i++ {
		w.buf = append(w.buf, byte(w.cur>>(56-8*uint(i))))
	}
	w.cur = 0
	w.nbit = 0
}

// BitLen reports the total number of bits written so far.
func (w *Writer) BitLen() int {
	return len(w.buf)*8 + int(w.nbit)
}

// Bytes finalizes the stream, padding the final partial byte with zero bits,
// and returns the underlying buffer. The Writer may continue to be used; the
// padding bits become part of the stream.
func (w *Writer) Bytes() []byte {
	if w.nbit > 0 {
		pad := (8 - w.nbit%8) % 8
		if pad > 0 {
			w.cur <<= pad
			w.nbit += pad
		}
		for w.nbit > 0 {
			w.buf = append(w.buf, byte(w.cur>>(w.nbit-8)))
			w.nbit -= 8
		}
		w.cur = 0
	}
	return w.buf
}

// Reset clears the writer for reuse, retaining the allocated buffer.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.cur = 0
	w.nbit = 0
}

// Reader consumes bits MSB-first from a byte slice.
type Reader struct {
	buf []byte
	pos int  // byte position
	bit uint // bit position within buf[pos] (0 = MSB)
}

// NewReader returns a Reader over buf. The Reader does not copy buf.
func NewReader(buf []byte) *Reader {
	return &Reader{buf: buf}
}

// ReadBits reads `width` bits (MSB-first) and returns them right-aligned.
// width must be in [0, 64].
func (r *Reader) ReadBits(width uint) (uint64, error) {
	if width > 64 {
		return 0, fmt.Errorf("bitstream: width %d out of range", width)
	}
	var v uint64
	for width > 0 {
		if r.pos >= len(r.buf) {
			return 0, ErrUnexpectedEOF
		}
		avail := 8 - r.bit
		take := width
		if take > avail {
			take = avail
		}
		cur := uint64(r.buf[r.pos])
		chunk := (cur >> (avail - take)) & ((1 << take) - 1)
		v = (v << take) | chunk
		r.bit += take
		width -= take
		if r.bit == 8 {
			r.bit = 0
			r.pos++
		}
	}
	return v, nil
}

// ReadBit reads a single bit.
func (r *Reader) ReadBit() (uint, error) {
	v, err := r.ReadBits(1)
	return uint(v), err
}

// Remaining reports the number of unread bits.
func (r *Reader) Remaining() int {
	return (len(r.buf)-r.pos)*8 - int(r.bit)
}

// Align advances the reader to the next byte boundary.
func (r *Reader) Align() {
	if r.bit != 0 {
		r.bit = 0
		r.pos++
	}
}
