// Package bitstream provides bit-granular writers and readers used by the
// entropy-coding stages of the compressors. Bits are packed MSB-first into
// bytes so that encoded streams are byte-order independent and the output of
// the canonical Huffman coder is deterministic across platforms.
//
// The Reader is built around a 64-bit accumulator refilled eight bytes at a
// time, so decoders can Peek a window of upcoming bits, resolve a symbol
// with a table lookup, and Skip its exact length — the word-at-a-time
// pattern the table-driven Huffman decoder depends on — instead of paying a
// branch per bit.
package bitstream

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrUnexpectedEOF is returned when a read requests more bits than remain.
var ErrUnexpectedEOF = errors.New("bitstream: unexpected end of stream")

// Writer accumulates bits MSB-first into an internal byte buffer.
// The zero value is ready to use.
type Writer struct {
	buf  []byte
	cur  uint64 // bits not yet flushed, left-aligned within nbits
	nbit uint   // number of valid bits in cur (0..63)
}

// NewWriter returns a Writer with capacity preallocated for sizeHint bytes.
func NewWriter(sizeHint int) *Writer {
	if sizeHint < 0 {
		sizeHint = 0
	}
	return &Writer{buf: make([]byte, 0, sizeHint)}
}

// NewWriterBuf returns a Writer that appends to buf (contents preserved,
// capacity reused). Callers that know the exact encoded size — e.g. the
// Huffman encoder, which sizes output from Table.EncodedBits — can hand in
// a preallocated buffer and avoid every regrow.
func NewWriterBuf(buf []byte) *Writer {
	return &Writer{buf: buf}
}

// WriteBits appends the low `width` bits of v to the stream, MSB first.
// width must be in [0, 64].
func (w *Writer) WriteBits(v uint64, width uint) {
	if width == 0 {
		return
	}
	if width < 64 {
		v &= (1 << width) - 1
	}
	// Fast path: the whole value fits into the pending word.
	if free := 64 - w.nbit; width <= free {
		w.cur = w.cur<<width | v
		w.nbit += width
		if w.nbit == 64 {
			w.flushWord()
		}
		return
	}
	// Split across the word boundary: top part fills cur, rest seeds it.
	take := 64 - w.nbit
	w.cur = w.cur<<take | v>>(width-take)
	w.nbit = 64
	w.flushWord()
	rem := width - take
	w.cur = v & (1<<rem - 1)
	w.nbit = rem
}

// WriteBit appends a single bit (0 or 1).
func (w *Writer) WriteBit(b uint) {
	w.WriteBits(uint64(b&1), 1)
}

func (w *Writer) flushWord() {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], w.cur)
	w.buf = append(w.buf, b[:]...)
	w.cur = 0
	w.nbit = 0
}

// BitLen reports the total number of bits written so far.
func (w *Writer) BitLen() int {
	return len(w.buf)*8 + int(w.nbit)
}

// Bytes finalizes the stream, padding the final partial byte with zero bits,
// and returns the underlying buffer. The Writer may continue to be used; the
// padding bits become part of the stream.
func (w *Writer) Bytes() []byte {
	if w.nbit > 0 {
		pad := (8 - w.nbit%8) % 8
		if pad > 0 {
			w.cur <<= pad
			w.nbit += pad
		}
		for w.nbit > 0 {
			w.buf = append(w.buf, byte(w.cur>>(w.nbit-8)))
			w.nbit -= 8
		}
		w.cur = 0
	}
	return w.buf
}

// Reset clears the writer for reuse, retaining the allocated buffer.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.cur = 0
	w.nbit = 0
}

// Reader consumes bits MSB-first from a byte slice.
//
// Internally it maintains a left-aligned 64-bit accumulator: the next
// unread bit is always the accumulator's MSB, and only the top nacc bits
// are meaningful (the rest are zero). refill loads eight source bytes per
// iteration whenever at least eight bits of accumulator space are free.
type Reader struct {
	buf  []byte
	pos  int    // next source byte to load into acc
	acc  uint64 // unread bits, left-aligned; bits below nacc are zero
	nacc uint   // number of valid bits in acc (0..64)
}

// NewReader returns a Reader over buf. The Reader does not copy buf.
func NewReader(buf []byte) *Reader {
	return &Reader{buf: buf}
}

// Reset re-points the Reader at buf, reusing the struct.
func (r *Reader) Reset(buf []byte) {
	r.buf = buf
	r.pos = 0
	r.acc = 0
	r.nacc = 0
}

// refill tops the accumulator up from the source buffer: a single 64-bit
// load when eight bytes remain, byte-at-a-time near the end of the stream.
func (r *Reader) refill() {
	if r.nacc <= 0 && r.pos+8 <= len(r.buf) {
		// Empty accumulator and a full word available: one load.
		r.acc = binary.BigEndian.Uint64(r.buf[r.pos:])
		r.nacc = 64
		r.pos += 8
		return
	}
	for r.nacc <= 56 && r.pos < len(r.buf) {
		r.acc |= uint64(r.buf[r.pos]) << (56 - r.nacc)
		r.nacc += 8
		r.pos++
	}
}

// Peek returns the next width bits (MSB-first, right-aligned) without
// consuming them. Past the end of the stream the missing low bits are
// zero-padded — callers detect truncation via Skip/ReadBits, which do fail.
// width must be in [0, 56] to guarantee a full window after one refill.
func (r *Reader) Peek(width uint) uint64 {
	if width == 0 {
		return 0
	}
	if r.nacc < width {
		r.refill()
	}
	return r.acc >> (64 - width)
}

// Skip consumes width bits, which must have been peeked or otherwise known
// to exist: skipping past the end of the stream returns ErrUnexpectedEOF
// (with the reader drained).
func (r *Reader) Skip(width uint) error {
	if width <= r.nacc {
		r.acc <<= width
		r.nacc -= width
		return nil
	}
	for width > r.nacc {
		if r.pos >= len(r.buf) {
			r.acc = 0
			r.nacc = 0
			return ErrUnexpectedEOF
		}
		r.refill()
		if width <= r.nacc {
			break
		}
		// Accumulator full (or source drained) and still short: consume it
		// wholesale and keep going.
		width -= r.nacc
		r.acc = 0
		r.nacc = 0
	}
	r.acc <<= width
	r.nacc -= width
	return nil
}

// ReadBits reads `width` bits (MSB-first) and returns them right-aligned.
// width must be in [0, 64].
func (r *Reader) ReadBits(width uint) (uint64, error) {
	if width > 64 {
		return 0, fmt.Errorf("bitstream: width %d out of range", width)
	}
	if width <= r.nacc {
		// Fast path: entirely inside the accumulator.
		v := r.acc >> (64 - width)
		r.acc <<= width
		r.nacc -= width
		return v, nil
	}
	var v uint64
	for width > 0 {
		if r.nacc == 0 {
			r.refill()
			if r.nacc == 0 {
				return 0, ErrUnexpectedEOF
			}
		}
		take := width
		if take > r.nacc {
			take = r.nacc
		}
		v = v<<take | r.acc>>(64-take)
		r.acc <<= take
		r.nacc -= take
		width -= take
	}
	return v, nil
}

// ReadBit reads a single bit.
func (r *Reader) ReadBit() (uint, error) {
	if r.nacc == 0 {
		r.refill()
		if r.nacc == 0 {
			return 0, ErrUnexpectedEOF
		}
	}
	b := uint(r.acc >> 63)
	r.acc <<= 1
	r.nacc--
	return b, nil
}

// Remaining reports the number of unread bits.
func (r *Reader) Remaining() int {
	return (len(r.buf)-r.pos)*8 + int(r.nacc)
}

// Align advances the reader to the next byte boundary of the original
// stream (consumed-bit count becomes a multiple of 8).
func (r *Reader) Align() {
	// Consumed bits = pos*8 - nacc, so the misalignment is nacc mod 8.
	if k := r.nacc % 8; k > 0 {
		r.acc <<= k
		r.nacc -= k
	}
}
