// Package lossless provides the byte-level lossless backends applied after
// entropy coding in the SZ-style pipeline (SZ3 uses zstd; we provide DEFLATE
// from the standard library and a self-contained LZSS codec). Every stream is
// prefixed with a one-byte backend tag plus the uncompressed length so
// decompression is self-describing.
package lossless

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Backend selects the lossless algorithm.
type Backend uint8

const (
	// None stores bytes verbatim (useful for already-dense streams).
	None Backend = iota + 1
	// Deflate uses compress/flate at the default level.
	Deflate
	// LZSS uses the package's own LZ77/LZSS implementation.
	LZSS
)

// String implements fmt.Stringer.
func (b Backend) String() string {
	switch b {
	case None:
		return "none"
	case Deflate:
		return "deflate"
	case LZSS:
		return "lzss"
	default:
		return fmt.Sprintf("backend(%d)", uint8(b))
	}
}

// ErrCorrupt indicates a malformed compressed stream.
var ErrCorrupt = errors.New("lossless: corrupt stream")

// Compress encodes data with the requested backend. If the backend expands
// the data it transparently falls back to None.
func Compress(data []byte, backend Backend) ([]byte, error) {
	var body []byte
	var err error
	var release func()
	switch backend {
	case None:
		body = data
	case Deflate:
		body, release, err = deflateCompress(data)
	case LZSS:
		body = lzssCompress(data)
	default:
		return nil, fmt.Errorf("lossless: unknown backend %d", backend)
	}
	if err != nil {
		return nil, err
	}
	if backend != None && len(body) >= len(data) {
		backend, body = None, data
	}
	out := make([]byte, 0, len(body)+9)
	out = append(out, byte(backend))
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(data)))
	out = append(out, n[:]...)
	out = append(out, body...)
	// body has been copied into out; a pooled deflate buffer can go back.
	if release != nil {
		release()
	}
	return out, nil
}

// ReferenceCompress is Compress with the pre-pooling deflate path (a
// fresh flate.Writer per call). It exists solely as the benchmark baseline
// the hot-path overhaul is measured against; output bytes are identical to
// Compress's.
func ReferenceCompress(data []byte, backend Backend) ([]byte, error) {
	if backend != Deflate {
		return Compress(data, backend)
	}
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, flate.DefaultCompression)
	if err != nil {
		return nil, err
	}
	if _, err := w.Write(data); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	body := buf.Bytes()
	if len(body) >= len(data) {
		backend, body = None, data
	}
	out := make([]byte, 0, len(body)+9)
	out = append(out, byte(backend))
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(data)))
	out = append(out, n[:]...)
	out = append(out, body...)
	return out, nil
}

// ReferenceDecompress is Decompress with the pre-pooling inflate path (a
// fresh flate.Reader per call); the benchmark baseline counterpart of
// ReferenceCompress.
func ReferenceDecompress(stream []byte) ([]byte, error) {
	if len(stream) < 9 || Backend(stream[0]) != Deflate {
		return Decompress(stream)
	}
	size := binary.LittleEndian.Uint64(stream[1:9])
	body := stream[9:]
	if size > 1<<40 || size > 4096*uint64(len(body))+64 {
		return nil, ErrCorrupt
	}
	r := flate.NewReader(bytes.NewReader(body))
	defer r.Close()
	out := make([]byte, size)
	if _, err := io.ReadFull(r, out); err != nil {
		return nil, fmt.Errorf("lossless: inflate: %w", ErrCorrupt)
	}
	return out, nil
}

// Decompress decodes a stream produced by Compress.
func Decompress(stream []byte) ([]byte, error) {
	if len(stream) < 9 {
		return nil, ErrCorrupt
	}
	backend := Backend(stream[0])
	size := binary.LittleEndian.Uint64(stream[1:9])
	if size > 1<<40 {
		return nil, ErrCorrupt
	}
	body := stream[9:]
	// The size prefix is attacker-controlled until the body actually
	// inflates. Deflate tops out near 1032:1 and LZSS near 1366:1, so a
	// claimed size beyond 4096× the body is a lie — reject it before
	// allocating (a crafted 50-byte stream must not demand terabytes).
	if size > 4096*uint64(len(body))+64 {
		return nil, ErrCorrupt
	}
	switch backend {
	case None:
		if uint64(len(body)) != size {
			return nil, ErrCorrupt
		}
		out := make([]byte, size)
		copy(out, body)
		return out, nil
	case Deflate:
		return deflateDecompress(body, int(size))
	case LZSS:
		return lzssDecompress(body, int(size))
	default:
		return nil, fmt.Errorf("lossless: unknown backend %d: %w", backend, ErrCorrupt)
	}
}

// Flate keeps large internal state (hash chains on the write side, a
// sliding window on the read side) that the standard constructors allocate
// per call; pooling the coders — and the output buffer, whose bytes
// Compress copies into the framed stream before releasing — removes that
// cost from the compression hot path. flate output is deterministic for a
// given input and level, and Reset restores the initial coder state, so
// pooled coders emit byte-identical streams.
var (
	deflateWriterPool sync.Pool
	deflateReaderPool sync.Pool
	deflateBufPool    = sync.Pool{New: func() interface{} { return new(bytes.Buffer) }}
)

// deflateCompress returns the compressed body plus a release function that
// recycles the backing buffer; the caller must copy the body out before
// calling release.
func deflateCompress(data []byte) ([]byte, func(), error) {
	buf := deflateBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	release := func() { deflateBufPool.Put(buf) }
	w, _ := deflateWriterPool.Get().(*flate.Writer)
	if w == nil {
		var err error
		w, err = flate.NewWriter(buf, flate.DefaultCompression)
		if err != nil {
			release()
			return nil, nil, err
		}
	} else {
		w.Reset(buf)
	}
	defer deflateWriterPool.Put(w)
	if _, err := w.Write(data); err != nil {
		release()
		return nil, nil, err
	}
	if err := w.Close(); err != nil {
		release()
		return nil, nil, err
	}
	return buf.Bytes(), release, nil
}

func deflateDecompress(body []byte, size int) ([]byte, error) {
	br := bytes.NewReader(body)
	r, _ := deflateReaderPool.Get().(io.ReadCloser)
	if r == nil {
		r = flate.NewReader(br)
	} else if err := r.(flate.Resetter).Reset(br, nil); err != nil {
		// The reader is still reusable — Reset with a nil dictionary only
		// fails on the source, and the next user Resets again anyway.
		deflateReaderPool.Put(r)
		return nil, err
	}
	defer deflateReaderPool.Put(r)
	out := make([]byte, size)
	if _, err := io.ReadFull(r, out); err != nil {
		return nil, fmt.Errorf("lossless: inflate: %w", ErrCorrupt)
	}
	return out, nil
}

// --- LZSS ---
//
// Token stream: a flag byte precedes every 8 tokens; bit i set means token i
// is a (length, distance) match encoded as 3 bytes: 12-bit distance,
// 4+8 = 12-bit length-3. Clear bits are literals.

const (
	lzWindow   = 1 << 12 // 4096-byte window (12-bit distance)
	lzMinMatch = 3
	lzMaxMatch = (1 << 12) - 1 + lzMinMatch
	lzHashBits = 14
	lzHashSize = 1 << lzHashBits
)

func lzHash(a, b, c byte) uint32 {
	v := uint32(a) | uint32(b)<<8 | uint32(c)<<16
	return (v * 2654435761) >> (32 - lzHashBits)
}

func lzssCompress(data []byte) []byte {
	out := make([]byte, 0, len(data)/2+16)
	var head [lzHashSize]int32
	for i := range head {
		head[i] = -1
	}
	prev := make([]int32, len(data))

	var flagPos int
	var flagBit uint
	emitFlagByte := func() {
		flagPos = len(out)
		out = append(out, 0)
		flagBit = 0
	}
	emitFlagByte()

	i := 0
	for i < len(data) {
		if flagBit == 8 {
			emitFlagByte()
		}
		bestLen, bestDist := 0, 0
		if i+lzMinMatch <= len(data) {
			h := lzHash(data[i], data[i+1], data[i+2])
			cand := head[h]
			tries := 16
			for cand >= 0 && tries > 0 && int(cand) >= i-lzWindow+1 {
				c := int(cand)
				if data[c] == data[i] {
					l := matchLen(data, c, i)
					if l > bestLen {
						bestLen, bestDist = l, i-c
					}
				}
				cand = prev[c]
				tries--
			}
			prev[i] = head[h]
			head[h] = int32(i)
		}
		if bestLen >= lzMinMatch {
			if bestLen > lzMaxMatch {
				bestLen = lzMaxMatch
			}
			out[flagPos] |= 1 << flagBit
			l := bestLen - lzMinMatch
			out = append(out,
				byte(bestDist),
				byte((bestDist>>8)&0x0F)|byte((l&0x0F)<<4),
				byte(l>>4))
			// Insert hash entries for skipped positions.
			for k := i + 1; k < i+bestLen && k+lzMinMatch <= len(data); k++ {
				h := lzHash(data[k], data[k+1], data[k+2])
				prev[k] = head[h]
				head[h] = int32(k)
			}
			i += bestLen
		} else {
			out = append(out, data[i])
			i++
		}
		flagBit++
	}
	return out
}

func matchLen(data []byte, a, b int) int {
	n := 0
	maxN := len(data) - b
	if maxN > lzMaxMatch {
		maxN = lzMaxMatch
	}
	for n < maxN && data[a+n] == data[b+n] {
		n++
	}
	return n
}

func lzssDecompress(body []byte, size int) ([]byte, error) {
	out := make([]byte, 0, size)
	i := 0
	for len(out) < size {
		if i >= len(body) {
			return nil, ErrCorrupt
		}
		flags := body[i]
		i++
		for bit := uint(0); bit < 8 && len(out) < size; bit++ {
			if flags&(1<<bit) != 0 {
				if i+3 > len(body) {
					return nil, ErrCorrupt
				}
				b0, b1, b2 := body[i], body[i+1], body[i+2]
				i += 3
				dist := int(b0) | int(b1&0x0F)<<8
				length := int(b1>>4) | int(b2)<<4
				length += lzMinMatch
				if dist == 0 || dist > len(out) {
					return nil, ErrCorrupt
				}
				start := len(out) - dist
				for k := 0; k < length; k++ {
					out = append(out, out[start+k])
				}
			} else {
				if i >= len(body) {
					return nil, ErrCorrupt
				}
				out = append(out, body[i])
				i++
			}
		}
	}
	if len(out) != size {
		return nil, ErrCorrupt
	}
	return out, nil
}
