package lossless

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, data []byte, b Backend) {
	t.Helper()
	enc, err := Compress(data, b)
	if err != nil {
		t.Fatalf("%v compress: %v", b, err)
	}
	dec, err := Decompress(enc)
	if err != nil {
		t.Fatalf("%v decompress: %v", b, err)
	}
	if !bytes.Equal(dec, data) {
		t.Fatalf("%v round trip mismatch: %d in, %d out", b, len(data), len(dec))
	}
}

func TestRoundTripAllBackends(t *testing.T) {
	inputs := map[string][]byte{
		"empty":    {},
		"single":   {0x42},
		"repeated": bytes.Repeat([]byte{0xAA}, 1000),
		"ascending": func() []byte {
			b := make([]byte, 300)
			for i := range b {
				b[i] = byte(i)
			}
			return b
		}(),
		"textlike": bytes.Repeat([]byte("the quick brown fox "), 64),
		"periodic": bytes.Repeat([]byte{1, 2, 3, 4, 5, 6, 7}, 500),
	}
	rng := rand.New(rand.NewSource(1))
	random := make([]byte, 4096)
	rng.Read(random)
	inputs["random"] = random

	for name, data := range inputs {
		for _, b := range []Backend{None, Deflate, LZSS} {
			t.Run(name+"/"+b.String(), func(t *testing.T) {
				roundTrip(t, data, b)
			})
		}
	}
}

func TestCompressesRepetitiveData(t *testing.T) {
	data := bytes.Repeat([]byte("scientific data transfer "), 1000)
	for _, b := range []Backend{Deflate, LZSS} {
		enc, err := Compress(data, b)
		if err != nil {
			t.Fatal(err)
		}
		if len(enc) >= len(data)/2 {
			t.Errorf("%v: weak compression: %d -> %d", b, len(data), len(enc))
		}
	}
}

func TestRandomDataFallsBackToNone(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	data := make([]byte, 8192)
	rng.Read(data)
	enc, err := Compress(data, LZSS)
	if err != nil {
		t.Fatal(err)
	}
	if Backend(enc[0]) != None {
		t.Errorf("want fallback to None for incompressible data, got %v", Backend(enc[0]))
	}
	if len(enc) > len(data)+9 {
		t.Errorf("expansion beyond header: %d -> %d", len(data), len(enc))
	}
}

func TestDecompressCorrupt(t *testing.T) {
	cases := [][]byte{
		nil,
		{1},
		{99, 0, 0, 0, 0, 0, 0, 0, 0}, // unknown backend
		{byte(None), 10, 0, 0, 0, 0, 0, 0, 0, 1, 2},   // size mismatch
		{byte(LZSS), 10, 0, 0, 0, 0, 0, 0, 0},         // truncated body
		{byte(Deflate), 4, 0, 0, 0, 0, 0, 0, 0, 0xFF}, // invalid deflate
	}
	for i, c := range cases {
		if _, err := Decompress(c); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestUnknownBackendCompress(t *testing.T) {
	if _, err := Compress([]byte{1}, Backend(200)); err == nil {
		t.Fatal("want error for unknown backend")
	}
}

func TestBackendString(t *testing.T) {
	if None.String() != "none" || Deflate.String() != "deflate" || LZSS.String() != "lzss" {
		t.Fatal("bad String values")
	}
	if Backend(42).String() == "" {
		t.Fatal("unknown backend String empty")
	}
}

func TestLZSSQuick(t *testing.T) {
	f := func(seed int64, n uint16, rep uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		// Mix of random and repeated segments.
		var data []byte
		remaining := int(n)
		for remaining > 0 {
			seg := rng.Intn(remaining) + 1
			if rng.Float64() < 0.5 {
				chunk := make([]byte, seg)
				rng.Read(chunk)
				data = append(data, chunk...)
			} else {
				unit := make([]byte, rng.Intn(7)+1)
				rng.Read(unit)
				for len(data) < len(data)+seg && seg > 0 {
					take := len(unit)
					if take > seg {
						take = seg
					}
					data = append(data, unit[:take]...)
					seg -= take
				}
			}
			remaining -= seg
			if seg > 0 {
				remaining -= 0
			}
			remaining = int(n) - len(data)
		}
		enc, err := Compress(data, LZSS)
		if err != nil {
			return false
		}
		dec, err := Decompress(enc)
		if err != nil {
			return false
		}
		return bytes.Equal(dec, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDeflate(b *testing.B) {
	data := bytes.Repeat([]byte("ocelot transfer pipeline "), 4096)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Compress(data, Deflate); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLZSS(b *testing.B) {
	data := bytes.Repeat([]byte("ocelot transfer pipeline "), 4096)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Compress(data, LZSS); err != nil {
			b.Fatal(err)
		}
	}
}
