package experiments

import (
	"bytes"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"ocelot/internal/datagen"
	"ocelot/internal/huffman"
	"ocelot/internal/metrics"
	"ocelot/internal/sz"
)

// hotpathReps is how many timed batches each throughput figure takes.
const hotpathReps = 9

// hotpathRepSecs is the target duration of one timed batch; short calls
// are repeated until a batch takes at least this long, so per-call timer
// noise cannot dominate the figure.
const hotpathRepSecs = 0.15

// calibrate warms fn (pools, caches) and returns the batch iteration
// count that makes one timed batch last about hotpathRepSecs.
func calibrate(fn func() error) (int, error) {
	start := time.Now()
	if err := fn(); err != nil {
		return 0, err
	}
	once := time.Since(start).Seconds()
	iters := 1
	if once < hotpathRepSecs {
		iters = int(hotpathRepSecs/once) + 1
	}
	return iters, nil
}

// batchSecs runs one timed batch and returns per-call seconds.
func batchSecs(fn func() error, iters int) (float64, error) {
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := fn(); err != nil {
			return 0, err
		}
	}
	return time.Since(start).Seconds() / float64(iters), nil
}

// pairedMedian A/B-times newFn against refFn: each round runs one batch
// of each back to back, so multi-second host-load epochs land on both
// sides of the comparison instead of skewing whichever leg they happened
// to overlap. It returns the median per-call seconds of each side and the
// median of the per-round speedup ratios (the robust figure the artifact
// gates on). Medians, not minima, on purpose: allocation-heavy code pays
// its GC bill stochastically, and a best-of filter would erase that real
// cost from the pre-overhaul baseline. The heap is flushed up front so GC
// pacing carried over from a previous pair cannot tilt the comparison.
func pairedMedian(newFn, refFn func() error) (newSec, refSec, speedup float64, err error) {
	runtime.GC()
	newIters, err := calibrate(newFn)
	if err != nil {
		return 0, 0, 0, err
	}
	refIters, err := calibrate(refFn)
	if err != nil {
		return 0, 0, 0, err
	}
	newReps := make([]float64, hotpathReps)
	refReps := make([]float64, hotpathReps)
	ratios := make([]float64, hotpathReps)
	for r := 0; r < hotpathReps; r++ {
		if newReps[r], err = batchSecs(newFn, newIters); err != nil {
			return 0, 0, 0, err
		}
		if refReps[r], err = batchSecs(refFn, refIters); err != nil {
			return 0, 0, 0, err
		}
		ratios[r] = refReps[r] / newReps[r]
	}
	sort.Float64s(newReps)
	sort.Float64s(refReps)
	sort.Float64s(ratios)
	mid := hotpathReps / 2
	return newReps[mid], refReps[mid], ratios[mid], nil
}

// HotPath measures the entropy-stage overhaul: single-stream sz3
// compress/decompress MB/s and Huffman encode/decode MB/s on the
// production hot path versus the pinned pre-overhaul reference
// implementations (sz.CompressReference / sz.DecompressReference /
// huffman.ReferenceEncode / huffman.ReferenceDecode), on the same host in
// the same process. Byte-identity between both paths is asserted, and the
// reconstruction PSNR is reported for both so the artifact also documents
// that the speedup changed no output. The emitted values back
// BENCH_hotpath.json, whose speedup_* figures are the PR-acceptance
// record (≥2x decompress, ≥1.3x compress).
func HotPath(scale Scale) (*Result, error) {
	scale = scale.timing() // throughput needs fields big enough to time
	res := newResult("HotPath")

	f, err := datagen.Generate("CESM", "TMQ", scale.Shrink, scale.Seed)
	if err != nil {
		return nil, err
	}
	cfg := sz.DefaultConfig(1e-3)
	rawBytes := float64(f.NumPoints() * 8)
	mb := rawBytes / 1e6

	stream, stats, err := sz.Compress(f.Data, f.Dims, cfg)
	if err != nil {
		return nil, err
	}

	// Throughput pairs run FIRST, while the only live heap is the field
	// and one stream — the state a real single-stream compression runs in.
	// The byte-identity buffers below would otherwise inflate the live set
	// and stretch the GC intervals the allocation-heavy reference path
	// pays.
	type pair struct {
		key   string
		newFn func() error
		refFn func() error
	}
	szPairs := []pair{
		{"sz3_compress",
			func() error { _, _, err := sz.Compress(f.Data, f.Dims, cfg); return err },
			func() error { _, _, err := sz.CompressReference(f.Data, f.Dims, cfg); return err }},
		{"sz3_decompress",
			func() error { _, _, err := sz.Decompress(stream); return err },
			func() error { _, _, err := sz.DecompressReference(stream); return err }},
	}
	for _, p := range szPairs {
		newSec, refSec, sp, err := pairedMedian(p.newFn, p.refFn)
		if err != nil {
			return nil, fmt.Errorf("hotpath %s: %w", p.key, err)
		}
		res.Values[p.key+"_mbps"] = mb / newSec
		res.Values[p.key+"_ref_mbps"] = mb / refSec
		res.Values["speedup_"+p.key] = sp
	}

	// Byte-identity: the comparison above is only meaningful if both paths
	// emit the same stream and reconstruction.
	refStream, _, err := sz.CompressReference(f.Data, f.Dims, cfg)
	if err != nil {
		return nil, err
	}
	if !bytes.Equal(stream, refStream) {
		return nil, fmt.Errorf("hotpath: overhauled stream differs from reference")
	}
	recon, _, err := sz.Decompress(stream)
	if err != nil {
		return nil, err
	}
	refRecon, _, err := sz.DecompressReference(stream)
	if err != nil {
		return nil, err
	}
	identical := 1.0
	for i := range recon {
		if recon[i] != refRecon[i] {
			identical = 0
			break
		}
	}
	if identical == 0 {
		return nil, fmt.Errorf("hotpath: reconstructions differ between decoders")
	}
	psnr, err := metrics.PSNR(f.Data, recon)
	if err != nil {
		return nil, err
	}

	// Isolated Huffman stage: the quantization-code stream of the same
	// field, coded standalone (no predictor, no lossless backend).
	codes, err := sz.SampledCodes(f.Data, f.Dims, cfg, 1)
	if err != nil {
		return nil, err
	}
	var symStream huffman.SymbolStream
	symStream.AppendInts(codes)
	freqs := make([]uint64, 1<<16)
	for _, c := range codes {
		freqs[c]++
	}
	table, err := huffman.BuildTable(freqs)
	if err != nil {
		return nil, err
	}
	// The benchmark closures below borrow the table; it outlives them all,
	// so one deferred release covers every exit.
	defer table.Release()
	huffBits, err := table.EncodedBitsStream(&symStream)
	if err != nil {
		return nil, err
	}
	huffEnc, err := huffman.EncodeToSized(nil, &symStream, table, huffBits)
	if err != nil {
		return nil, err
	}
	symMB := float64(len(codes)) / 1e6 // MSym/s, reported as mbps of symbols
	var decodeScratch huffman.SymbolStream
	huffPairs := []pair{
		// The production compressor knows the payload bit count from its
		// fused frequency table, so the encode leg measures EncodeToSized —
		// the path sz actually runs.
		{"huffman_encode",
			func() error { _, err := huffman.EncodeToSized(huffEnc[:0], &symStream, table, huffBits); return err },
			func() error { _, err := huffman.ReferenceEncode(codes, table); return err }},
		{"huffman_decode",
			func() error { return huffman.DecodeInto(&decodeScratch, huffEnc) },
			func() error { _, err := huffman.ReferenceDecode(huffEnc); return err }},
	}
	for _, p := range huffPairs {
		newSec, refSec, sp, err := pairedMedian(p.newFn, p.refFn)
		if err != nil {
			return nil, fmt.Errorf("hotpath %s: %w", p.key, err)
		}
		res.Values[p.key+"_msyms"] = symMB / newSec
		res.Values[p.key+"_ref_msyms"] = symMB / refSec
		res.Values["speedup_"+p.key] = sp
	}
	res.Values["stream_bytes"] = float64(len(stream))
	res.Values["ratio"] = rawBytes / float64(len(stream))
	res.Values["psnr_db"] = psnr
	res.Values["bytes_identical"] = identical
	res.Values["quant_entropy"] = stats.QuantEntropy
	res.Values["config/points"] = float64(f.NumPoints())

	var b strings.Builder
	fmt.Fprintf(&b, "Entropy hot path: overhauled vs pre-overhaul reference (CESM TMQ, %d points, eb 1e-3)\n", f.NumPoints())
	fmt.Fprintf(&b, "%-18s %12s %12s %9s\n", "leg", "new", "reference", "speedup")
	fmt.Fprintf(&b, "%-18s %9.1f MB/s %9.1f MB/s %8.2fx\n", "sz3 compress",
		res.Values["sz3_compress_mbps"], res.Values["sz3_compress_ref_mbps"], res.Values["speedup_sz3_compress"])
	fmt.Fprintf(&b, "%-18s %9.1f MB/s %9.1f MB/s %8.2fx\n", "sz3 decompress",
		res.Values["sz3_decompress_mbps"], res.Values["sz3_decompress_ref_mbps"], res.Values["speedup_sz3_decompress"])
	fmt.Fprintf(&b, "%-18s %8.1f MSym/s %8.1f MSym/s %7.2fx\n", "huffman encode",
		res.Values["huffman_encode_msyms"], res.Values["huffman_encode_ref_msyms"], res.Values["speedup_huffman_encode"])
	fmt.Fprintf(&b, "%-18s %8.1f MSym/s %8.1f MSym/s %7.2fx\n", "huffman decode",
		res.Values["huffman_decode_msyms"], res.Values["huffman_decode_ref_msyms"], res.Values["speedup_huffman_decode"])
	fmt.Fprintf(&b, "streams byte-identical, PSNR %.1f dB, ratio %.1f\n",
		psnr, res.Values["ratio"])
	res.Text = b.String()
	return res, nil
}
