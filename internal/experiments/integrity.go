package experiments

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"ocelot/internal/codec"
	"ocelot/internal/core"
	"ocelot/internal/datagen"
	"ocelot/internal/obs"
	"ocelot/internal/sentinel"
	"ocelot/internal/wan"
)

// countingTransport tallies successful deliveries per archive name on top
// of a simulated link, so the artifact can prove only corrupted groups
// were re-sent.
type countingTransport struct {
	inner *core.SimulatedWANTransport
	mu    sync.Mutex
	sends map[string]int
}

func (c *countingTransport) Name() string { return "counting" }

func (c *countingTransport) Send(ctx context.Context, name string, data []byte) (float64, error) {
	_, sec, err := c.SendDelivered(ctx, name, data, 0)
	return sec, err
}

func (c *countingTransport) SendDelivered(ctx context.Context, name string, data []byte, weight float64) ([]byte, float64, error) {
	d, sec, err := c.inner.SendDelivered(ctx, name, data, weight)
	if err == nil {
		c.mu.Lock()
		c.sends[name]++
		c.mu.Unlock()
	}
	return d, sec, err
}

// misboundCodec wraps the default codec and perturbs the first
// reconstructed value by 3x the error bound — a compressor that breaks
// its contract, registered only when the quarantine leg runs so the bound
// audit has something real to catch.
type misboundCodec struct{ inner codec.Codec }

const misboundMagic = 0x44414221 // "!BAD" little-endian

var misboundOnce sync.Once

func registerMisbound() {
	misboundOnce.Do(func() {
		inner, err := codec.Lookup("")
		if err != nil {
			panic(err)
		}
		codec.Register(&misboundCodec{inner: inner})
	})
}

func (m *misboundCodec) Name() string  { return "misbound" }
func (m *misboundCodec) Magic() uint32 { return misboundMagic }

func (m *misboundCodec) Compress(data []float64, dims []int, p codec.Params) ([]byte, error) {
	inner, err := m.inner.Compress(data, dims, p)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 12+len(inner))
	binary.LittleEndian.PutUint32(out[:4], misboundMagic)
	binary.LittleEndian.PutUint64(out[4:12], math.Float64bits(3*p.AbsErrorBound))
	copy(out[12:], inner)
	return out, nil
}

func (m *misboundCodec) Decompress(stream []byte) ([]float64, []int, error) {
	if len(stream) < 12 || binary.LittleEndian.Uint32(stream[:4]) != misboundMagic {
		return nil, nil, errors.New("misbound: bad stream")
	}
	delta := math.Float64frombits(binary.LittleEndian.Uint64(stream[4:12]))
	vals, dims, err := codec.Decompress(stream[12:])
	if err != nil {
		return nil, nil, err
	}
	if len(vals) > 0 {
		vals[0] += delta
	}
	return vals, dims, nil
}

func (m *misboundCodec) StreamDims(stream []byte) ([]int, error) {
	if len(stream) < 12 {
		return nil, errors.New("misbound: short stream")
	}
	return m.inner.StreamDims(stream[12:])
}

func (m *misboundCodec) Probe(data []float64, dims []int, p codec.Params, stride int) ([]int, error) {
	return m.inner.Probe(data, dims, p, stride)
}

func (m *misboundCodec) Caps() codec.Caps { return m.inner.Caps() }

// Integrity is the end-to-end integrity artifact: four legs, each proving
// one contract of the checksummed pipeline.
//
// Corrupt-retransmit: a seeded link corrupts ~35% of delivered archives;
// the campaign completes with a ReconDigest bit-identical to a clean
// run's, re-sends exactly the corrupted groups (every clean delivery
// ships once), and reconciles the wire's injected-corruption counter
// against the verify stage's detected counter — zero silent escapes.
//
// Silent-corruption testbed: the same corrupting link with the integrity
// frame disabled. The campaign must not succeed (garbled archives fail to
// parse), demonstrating what the frame closes: without it corruption is
// only caught by luck, never classified or retransmitted.
//
// Bound-audit fail: a codec that violates its error bound is caught by
// the post-decompress pointwise audit and fails the campaign loudly.
//
// Quarantine: the same lying codec under BoundAudit.Quarantine — the
// campaign completes, every violating field is re-shipped lossless and
// recorded as degraded rather than failing the run.
func Integrity(scale Scale) (*Result, error) {
	scale = scale.withDefaults()
	res := newResult("Integrity")
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	const nFields = 6
	names := datagen.Fields("CESM")[:nFields]
	fields := make([]*datagen.Field, 0, nFields)
	for _, name := range names {
		f, err := datagen.Generate("CESM", name, scale.Shrink, scale.Seed)
		if err != nil {
			return nil, err
		}
		fields = append(fields, f)
	}
	spec := core.CampaignSpec{
		RelErrorBound:   1e-3,
		Workers:         2,
		GroupParam:      nFields,
		Codec:           scale.Codec,
		Engine:          core.EnginePipelined,
		TransferStreams: 2,
	}

	dir, err := os.MkdirTemp("", "ocelot-integrity-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	// Ground truth: the same campaign over a clean link. Its digest is what
	// the corrupted run must reproduce.
	ref := spec
	ref.Journal = filepath.Join(dir, "ref.ocjl")
	ref.Transport = core.NopTransport{}
	refRes, err := core.Run(ctx, fields, ref)
	if err != nil {
		return nil, fmt.Errorf("integrity reference: %w", err)
	}
	if refRes.ReconDigest == 0 {
		return nil, errors.New("integrity: journaled reference run has no digest")
	}

	// Corrupt-retransmit leg. Accounting-only pacing keeps the artifact
	// fast; corruption applies identically since it is injected per
	// delivery, after pacing.
	dirtyLink := func(seed int64) *core.SimulatedWANTransport {
		return &core.SimulatedWANTransport{
			Link: &wan.Link{Name: "dirty", BandwidthMBps: 1000, Concurrency: 4,
				Faults: &wan.Faults{CorruptProb: 0.35, CorruptMode: wan.CorruptMix, Seed: seed}},
			Timescale: -1,
		}
	}
	reg := obs.NewRegistry()
	inner := dirtyLink(scale.Seed + 1)
	inner.Metrics = reg
	tr := &countingTransport{inner: inner, sends: map[string]int{}}
	dirty := spec
	dirty.Journal = filepath.Join(dir, "dirty.ocjl")
	dirty.Transport = tr
	dirty.Obs = &obs.Obs{Metrics: reg}
	dirty.Retry = sentinel.RetryPolicy{MaxAttempts: 6, BaseBackoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond}
	dres, err := core.Run(ctx, fields, dirty)
	if err != nil {
		return nil, fmt.Errorf("integrity: corrupted-link leg: %w", err)
	}
	if dres.ReconDigest != refRes.ReconDigest {
		return nil, fmt.Errorf("integrity: corrupted-link digest %016x != clean %016x",
			dres.ReconDigest, refRes.ReconDigest)
	}
	if dres.CorruptGroups == 0 {
		return nil, errors.New("integrity: seeded link corrupted nothing — the leg exercised no recovery")
	}
	extraSends := 0
	for _, n := range tr.sends {
		if n > 1 {
			extraSends += n - 1
		}
	}
	if extraSends != dres.Retransmits {
		return nil, fmt.Errorf("integrity: %d extra deliveries for %d retransmits — an uncorrupted group was re-sent",
			extraSends, dres.Retransmits)
	}
	injected := dres.Metrics["wan_corruptions_injected_total"]
	detected := dres.Metrics["campaign_corruption_detected_total"]
	if injected == 0 || injected != detected {
		return nil, fmt.Errorf("integrity: injected %g corruptions, detected %g — silent corruption escaped",
			injected, detected)
	}
	retransmitFrac := 0.0
	if dres.GroupedBytes > 0 {
		retransmitFrac = float64(dres.RetransmitBytes) / float64(dres.GroupedBytes)
	}
	res.Values["digest_match"] = 1
	res.Values["corrupt_groups"] = float64(dres.CorruptGroups)
	res.Values["retransmits"] = float64(dres.Retransmits)
	res.Values["retransmit_fraction"] = retransmitFrac
	res.Values["corruptions_injected"] = injected
	res.Values["corruptions_detected"] = detected
	res.Values["silent_escapes"] = injected - detected

	// Silent-corruption testbed: frame off, heavy garbling. The run must
	// not complete cleanly.
	noFrame := spec
	noFrame.NoIntegrity = true
	noFrame.Transport = &core.SimulatedWANTransport{
		Link: &wan.Link{Name: "garble", BandwidthMBps: 1000, Concurrency: 4,
			Faults: &wan.Faults{CorruptProb: 0.9, CorruptMode: wan.CorruptGarble, Seed: scale.Seed + 2}},
		Timescale: -1,
	}
	if _, err := core.Run(ctx, fields, noFrame); err == nil {
		return nil, errors.New("integrity: frameless campaign verified garbled archives")
	}
	res.Values["frameless_fails"] = 1

	// Bound-audit legs: the lying codec without quarantine must fail the
	// campaign; with quarantine it must complete with every field degraded.
	registerMisbound()
	lying := spec
	lying.Codec = "misbound"
	lying.Transport = core.NopTransport{}
	if _, err := core.Run(ctx, fields, lying); err == nil {
		return nil, errors.New("integrity: bound-violating codec passed the audit")
	} else if !strings.Contains(err.Error(), "exceeds bound") {
		return nil, fmt.Errorf("integrity: bound-audit leg failed for the wrong reason: %w", err)
	}
	res.Values["audit_fails_without_quarantine"] = 1

	lying.BoundAudit = core.BoundAudit{Quarantine: true}
	qres, err := core.Run(ctx, fields, lying)
	if err != nil {
		return nil, fmt.Errorf("integrity: quarantine leg: %w", err)
	}
	if len(qres.DegradedFields) != nFields {
		return nil, fmt.Errorf("integrity: quarantined %d fields, want %d", len(qres.DegradedFields), nFields)
	}
	if qres.DegradedBytes == 0 {
		return nil, errors.New("integrity: quarantine shipped no bytes")
	}
	res.Values["degraded_fields"] = float64(len(qres.DegradedFields))
	res.Values["degraded_bytes"] = float64(qres.DegradedBytes)

	var sb strings.Builder
	sb.WriteString("Integrity: checksummed archives, corruption recovery, bound-guarantee quarantine\n\n")
	sb.WriteString(fmt.Sprintf("corrupt-retransmit: %d/%d groups corrupted on a p=0.35 link, %d retransmit(s)\n",
		dres.CorruptGroups, nFields, dres.Retransmits))
	sb.WriteString(fmt.Sprintf("  recon digest %016x identical to clean run\n", dres.ReconDigest))
	sb.WriteString(fmt.Sprintf("  only corrupted groups re-sent (retransmit-bytes fraction %.3f)\n", retransmitFrac))
	sb.WriteString(fmt.Sprintf("  %.0f injected == %.0f detected: zero silent escapes\n", injected, detected))
	sb.WriteString("frameless testbed: same corruption without the frame fails the campaign (nothing verifies garbage)\n")
	sb.WriteString(fmt.Sprintf("bound audit: lying codec fails the campaign; under quarantine it completes with %d/%d fields re-shipped lossless (%d bytes)\n",
		len(qres.DegradedFields), nFields, qres.DegradedBytes))
	res.Text = sb.String()
	return res, nil
}
