//go:build race

package experiments

// raceEnabled reports whether the race detector is compiled in. Artifacts
// that regress *measured* wall time (the codec shootout's trained time
// trees) see a ~10x slower machine under the detector, which legitimately
// moves speed/bandwidth crossovers; timing-sensitive assertions consult
// this to avoid failing on an instrumented build.
const raceEnabled = true
