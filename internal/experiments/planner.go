package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"

	"ocelot/internal/core"
	"ocelot/internal/datagen"
	"ocelot/internal/dtree"
	"ocelot/internal/planner"
	"ocelot/internal/wan"
)

// plannerWorkload is the mixed-field campaign the planner artifact runs:
// smooth climate fields that stay high-PSNR at loose bounds next to noisy
// particle/turbulence fields that need tight ones — the workload where a
// single global knob must be as strict as its worst field.
func plannerWorkload(scale Scale, seed int64) ([]*datagen.Field, error) {
	specs := []struct{ app, field string }{
		{"CESM", "TMQ"},
		{"CESM", "CLDHGH"},
		{"CESM", "PSL"},
		{"Nyx", "baryon_density"},
		{"Nyx", "temperature"},
		{"Miranda", "density"},
		{"Miranda", "velocityx"},
		{"ISABEL", "Pf48"},
	}
	fields := make([]*datagen.Field, 0, len(specs))
	for _, sp := range specs {
		f, err := datagen.Generate(sp.app, sp.field, scale.Shrink, seed)
		if err != nil {
			return nil, err
		}
		fields = append(fields, f)
	}
	return fields, nil
}

// Planner reproduces the closed predict-then-transfer loop on a mixed
// workload: a quality model is trained from a quick sweep, the planner
// assigns per-field bounds under a PSNR floor, and the adaptive campaign
// is compared against the best fixed global bound meeting the same floor —
// on the same simulated link and grouping — with predicted vs. actual
// accounting. The floor (76 dB) sits inside the workload's PSNR spread at
// rel-eb 3e-4, so smooth/high-headroom fields (Nyx, CLDHGH) keep the
// loose bound while the rest must tighten — exactly the separation a
// global knob cannot express.
func Planner(scale Scale) (*Result, error) {
	scale = scale.withDefaults()
	res := newResult("Planner")
	const minPSNR = 76.0

	fields, err := plannerWorkload(scale, scale.Seed)
	if err != nil {
		return nil, err
	}
	// Train on shrunken stand-ins of the same workload (a different seed,
	// so ground truth is not memorized point-for-point).
	trainScale := Scale{Shrink: scale.Shrink * 2, Seed: scale.Seed}
	train, err := plannerWorkload(trainScale, scale.Seed+1)
	if err != nil {
		return nil, err
	}
	model, err := planner.TrainFromSweep(train, nil, dtree.Params{MaxDepth: 14})
	if err != nil {
		return nil, err
	}

	link := wan.StandardLinks()["Anvil->Bebop"]
	popts := planner.Options{MinPSNR: minPSNR, Link: link, Workers: 4, Seed: scale.Seed}
	fixedEB, err := planner.FixedBaseline(fields, model, popts)
	if err != nil {
		return nil, err
	}

	// Accounting-only transport: deterministic link seconds, no sleeping,
	// so the artifact is reproducible at any machine speed.
	transport := &core.SimulatedWANTransport{Link: link, Timescale: -1}
	base := core.CampaignSpec{Workers: 4, Transport: transport}
	ctx := context.Background()

	aspec := base
	aspec.Adaptive = true
	aspec.Model = model
	aspec.Planner = popts
	adaptive, err := core.Run(ctx, fields, aspec)
	if err != nil {
		return nil, err
	}
	// The fixed baseline gets the same grouping decision the planner made,
	// so the comparison isolates the configuration knobs (bound,
	// predictor) — not a grouping handicap.
	fixedSpec := base
	fixedSpec.RelErrorBound = fixedEB
	fixedSpec.GroupStrategy = adaptive.Plan.GroupStrategy
	fixedSpec.GroupParam = adaptive.Plan.GroupParam
	fixed, err := core.Run(ctx, fields, fixedSpec)
	if err != nil {
		return nil, err
	}
	fixedEst, err := link.Estimate(fixed.GroupBytes, scale.Seed)
	if err != nil {
		return nil, err
	}
	// End-to-end figures use the pipelined-wall model over deterministic
	// quantities — the model's predicted compress wall beside the link's
	// transfer makespan on the realized archives — so the artifact is
	// reproducible run-to-run (measured compress seconds are printed for
	// reference but carry scheduler noise at laptop scale).
	fixedPlan, err := planner.Build(fields, model, planner.Options{
		Candidates: []planner.Candidate{{RelEB: fixedEB}},
		Link:       link, Workers: 4, Seed: scale.Seed,
	})
	if err != nil {
		return nil, err
	}
	fixedE2E := math.Max(fixedPlan.PredCompressSec, fixedEst.Seconds)
	adaptiveE2E := math.Max(adaptive.Plan.PredCompressSec, adaptive.LinkEstSec)

	var sb strings.Builder
	sb.WriteString("Planner: predictor-driven adaptive campaign vs fixed global bound\n")
	sb.WriteString(fmt.Sprintf("%d mixed fields (CESM/Nyx/Miranda/ISABEL), quality floor %.0f dB, Anvil->Bebop, %d groups each\n\n",
		len(fields), minPSNR, adaptive.Groups))
	sb.WriteString(adaptive.Plan.String())
	sb.WriteString(fmt.Sprintf("\n%-26s %12s %12s %12s %12s %12s\n",
		"Campaign", "Moved (MB)", "Ratio", "Comp (s)", "Xfer (s)", "E2E (s)"))
	sb.WriteString(fmt.Sprintf("%-26s %12.2f %12.1f %12.3f %12.3f %12.3f\n",
		fmt.Sprintf("fixed rel-eb %.0e", fixedEB),
		float64(fixed.GroupedBytes)/1e6, fixed.Ratio, fixed.CompressSec, fixedEst.Seconds, fixedE2E))
	sb.WriteString(fmt.Sprintf("%-26s %12.2f %12.1f %12.3f %12.3f %12.3f\n",
		"adaptive (planned)",
		float64(adaptive.GroupedBytes)/1e6, adaptive.Ratio, adaptive.CompressSec, adaptive.LinkEstSec, adaptiveE2E))
	sb.WriteString(fmt.Sprintf("\npredicted vs actual (adaptive): ratio %.1f/%.1f, transfer makespan %.3fs/%.3fs\n",
		adaptive.PredRatio, adaptive.Ratio, adaptive.PredTransferSec, adaptive.LinkEstSec))
	sb.WriteString(fmt.Sprintf("measured min PSNR %.1f dB (floor %.0f dB); max rel error %.2e\n",
		adaptive.MinPSNR, minPSNR, adaptive.MaxRelError))
	e2eGain := 0.0
	if fixedE2E > 0 {
		e2eGain = (fixedE2E - adaptiveE2E) / fixedE2E
	}
	bytesGain := 0.0
	if fixed.GroupedBytes > 0 {
		bytesGain = float64(fixed.GroupedBytes-adaptive.GroupedBytes) / float64(fixed.GroupedBytes)
	}
	sb.WriteString(fmt.Sprintf("adaptive moves %.1f%% fewer bytes and is %.1f%% faster end-to-end (modelled) at the same floor and grouping\n",
		100*bytesGain, 100*e2eGain))

	res.Text = sb.String()
	res.Values["fixed_eb"] = fixedEB
	res.Values["fixed_bytes"] = float64(fixed.GroupedBytes)
	res.Values["adaptive_bytes"] = float64(adaptive.GroupedBytes)
	res.Values["fixed_xfer_sec"] = fixedEst.Seconds
	res.Values["adaptive_xfer_sec"] = adaptive.LinkEstSec
	res.Values["fixed_e2e_sec"] = fixedE2E
	res.Values["adaptive_e2e_sec"] = adaptiveE2E
	res.Values["adaptive_min_psnr"] = adaptive.MinPSNR
	res.Values["adaptive_pred_ratio"] = adaptive.PredRatio
	res.Values["adaptive_ratio"] = adaptive.Ratio
	res.Values["e2e_gain"] = e2eGain
	res.Values["bytes_gain"] = bytesGain
	return res, nil
}
