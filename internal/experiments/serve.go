package experiments

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"ocelot/internal/core"
	"ocelot/internal/datagen"
	"ocelot/internal/serve"
	"ocelot/internal/wan"
)

// serveTenantNames are the equal-weight tenants the fairness load test
// drives, in emission order.
var serveTenantNames = []string{"climate", "cosmology", "seismic"}

// servePerTenant is how many campaigns each tenant submits at once.
const servePerTenant = 2

// ServeFairness is the load test for the multi-tenant campaign scheduler
// behind `ocelot serve`: three equal-weight tenants each submit two
// identical campaigns at the same instant onto ONE shared simulated WAN
// link, sized so the transfer phase dominates. Because the scheduler
// propagates each tenant's weight to the transport's weighted-fair
// pacing, equal weights must yield near-equal per-tenant throughput —
// reported as the Jain fairness index (1.0 = perfectly fair) — while the
// aggregate across all six concurrent campaigns stays within the link's
// bandwidth. A second, drip-fed scheduler then measures cancellation
// latency: how long a mid-stage campaign takes to settle after Cancel.
func ServeFairness(scale Scale) (*Result, error) {
	scale = scale.withDefaults()
	res := newResult("ServeFairness")

	const nFields = 6
	names := datagen.Fields("CESM")[:nFields]
	fields := make([]*datagen.Field, 0, nFields)
	for _, name := range names {
		f, err := datagen.Generate("CESM", name, scale.Shrink, scale.Seed)
		if err != nil {
			return nil, err
		}
		fields = append(fields, f)
	}
	spec := core.CampaignSpec{
		RelErrorBound: 1e-3,
		Workers:       2,
		GroupParam:    3,
		Codec:         scale.Codec,
	}

	// Calibration: an accounting-only run learns the shipped archive
	// volume, so the link bandwidth can be sized to make the transfer
	// phase dominate wall time at any Scale (fairness is a property of
	// bandwidth sharing; a compression-bound run would measure the CPU
	// scheduler instead).
	cal := spec
	cal.Transport = &core.SimulatedWANTransport{
		Link:      wan.StandardLinks()["Anvil->Bebop"],
		Timescale: -1,
	}
	calRes, err := core.Run(context.Background(), fields, cal)
	if err != nil {
		return nil, fmt.Errorf("serve fairness calibration: %w", err)
	}
	compMB := float64(calRes.GroupedBytes) / 1e6

	// Size the shared link so shipping all campaigns takes ~1.5 simulated
	// (= wall) seconds in aggregate.
	const transferSec = 1.5
	totalMB := compMB * float64(len(serveTenantNames)) * servePerTenant
	link := &wan.Link{Name: "serve-shared", BandwidthMBps: totalMB / transferSec, Concurrency: 6}

	tenants := make(map[string]serve.TenantConfig, len(serveTenantNames))
	for _, tn := range serveTenantNames {
		tenants[tn] = serve.TenantConfig{Weight: 1}
	}
	sched := serve.NewScheduler(serve.Config{
		Transport:  &core.SimulatedWANTransport{Link: link, Timescale: 1},
		Tenants:    tenants,
		MaxRunning: len(serveTenantNames) * servePerTenant,
	})
	defer sched.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	start := time.Now()
	jobs := make(map[string][]*serve.Job, len(serveTenantNames))
	for i := 0; i < servePerTenant; i++ {
		for _, tn := range serveTenantNames {
			j, err := sched.Submit(serve.Request{Tenant: tn, Fields: fields, Spec: spec})
			if err != nil {
				return nil, fmt.Errorf("serve fairness submit %s: %w", tn, err)
			}
			jobs[tn] = append(jobs[tn], j)
		}
	}

	// Completion times must be stamped when each job finishes, not when a
	// sequential Wait loop happens to reach it.
	type completion struct {
		tenant  string
		sentMB  float64
		wallSec float64
		err     error
	}
	var (
		mu          sync.Mutex
		completions []completion
		wg          sync.WaitGroup
	)
	for _, tn := range serveTenantNames {
		for _, j := range jobs[tn] {
			wg.Add(1)
			go func(tn string, j *serve.Job) {
				defer wg.Done()
				_, err := j.Wait(ctx)
				c := completion{tenant: tn, wallSec: time.Since(start).Seconds(), err: err}
				if st := j.Status(); st.Campaign != nil {
					c.sentMB = float64(st.Campaign.SentBytes) / 1e6
				}
				mu.Lock()
				completions = append(completions, c)
				mu.Unlock()
			}(tn, j)
		}
	}
	wg.Wait()

	var sb strings.Builder
	sb.WriteString("ServeFairness: 3 equal-weight tenants x 2 campaigns on one link\n")
	sb.WriteString(fmt.Sprintf("link %.2f MB/s, %.2f MB shipped per campaign\n\n", link.BandwidthMBps, compMB))
	sb.WriteString(fmt.Sprintf("%-12s %12s %12s %14s\n", "tenant", "sent (MB)", "wall (s)", "tput (MB/s)"))

	var totalSentMB, makespan float64
	tputs := make([]float64, 0, len(serveTenantNames))
	for _, tn := range serveTenantNames {
		var sentMB, wall float64
		for _, c := range completions {
			if c.err != nil {
				return nil, fmt.Errorf("serve fairness campaign (%s): %w", c.tenant, c.err)
			}
			if c.tenant != tn {
				continue
			}
			sentMB += c.sentMB
			if c.wallSec > wall {
				wall = c.wallSec
			}
		}
		tput := sentMB / wall
		tputs = append(tputs, tput)
		totalSentMB += sentMB
		if wall > makespan {
			makespan = wall
		}
		res.Values["tput_"+tn] = tput
		sb.WriteString(fmt.Sprintf("%-12s %12.2f %12.2f %14.2f\n", tn, sentMB, wall, tput))
	}
	aggregate := totalSentMB / makespan // Timescale 1: wall seconds are sim seconds
	jain := jainIndex(tputs)
	res.Values["jain"] = jain
	res.Values["aggregate_mbps"] = aggregate
	res.Values["link_mbps"] = link.BandwidthMBps
	res.Values["makespan_sec"] = makespan
	sb.WriteString(fmt.Sprintf("\nJain fairness index %.3f (1.0 = perfectly fair)\n", jain))
	sb.WriteString(fmt.Sprintf("aggregate %.2f MB/s on a %.2f MB/s link\n", aggregate, link.BandwidthMBps))

	// Cancellation latency: a lone campaign on a link ~30x too slow to
	// finish is cancelled once running; the handle must settle promptly
	// (the transport aborts mid-send on ctx.Done, it does not drain).
	latency, err := serveCancelLatency(ctx, fields, spec, compMB)
	if err != nil {
		return nil, err
	}
	res.Values["cancel_latency_sec"] = latency
	sb.WriteString(fmt.Sprintf("mid-stage cancel settled in %.3fs\n", latency))

	res.Text = sb.String()
	return res, nil
}

// serveCancelLatency runs one campaign on a deliberately undersized link,
// cancels it mid-flight, and returns the seconds from Cancel to terminal.
func serveCancelLatency(ctx context.Context, fields []*datagen.Field, spec core.CampaignSpec, compMB float64) (float64, error) {
	link := &wan.Link{Name: "serve-cancel", BandwidthMBps: compMB / 30, Concurrency: 2}
	sched := serve.NewScheduler(serve.Config{
		Transport: &core.SimulatedWANTransport{Link: link, Timescale: 1},
	})
	defer sched.Close()
	j, err := sched.Submit(serve.Request{Tenant: "climate", Fields: fields, Spec: spec})
	if err != nil {
		return 0, fmt.Errorf("serve cancel submit: %w", err)
	}
	for j.Status().State != core.CampaignRunning.String() {
		if err := ctx.Err(); err != nil {
			return 0, fmt.Errorf("serve cancel: campaign never started running: %w", err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t0 := time.Now()
	j.Cancel()
	<-j.Done()
	latency := time.Since(t0).Seconds()
	if st := j.Status(); st.State != core.CampaignCanceled.String() {
		return 0, fmt.Errorf("serve cancel: campaign settled %s, want canceled", st.State)
	}
	return latency, nil
}

// jainIndex is Jain's fairness index (Σx)²/(n·Σx²): 1.0 when every share
// is equal, 1/n when one party has everything.
func jainIndex(xs []float64) float64 {
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}
