package experiments

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"time"

	"ocelot/internal/core"
	"ocelot/internal/datagen"
	"ocelot/internal/dtree"
	"ocelot/internal/faas"
	"ocelot/internal/planner"
	"ocelot/internal/sz"
	"ocelot/internal/wan"
)

// parallelWorkerCounts are the endpoint widths the artifact sweeps, in
// emission order.
var parallelWorkerCounts = []int{1, 2, 8}

// parallelDispatch is the fan-out endpoint's simulated per-chunk dispatch
// cost (the fabric's warm-start), and parallelCold the one-off container
// cold start. Like SimulatedWANTransport's pacing, these model the remote
// endpoint's per-invocation cost in wall time — so endpoint width shows up
// as a real wall-clock win even where local cores are scarce, and the
// planner's dispatch-aware cost model has a calibrated target to predict.
const (
	parallelDispatch = 20 * time.Millisecond
	parallelCold     = 5 * time.Millisecond
)

// ParallelCompression measures the chunk-parallel compression fan-out: the
// same multi-field campaign runs over the same simulated WAN with the
// fan-out endpoint at 1, 2, and 8 workers. Every field is decomposed into
// ~6 chunks that are batch-submitted to the funcX-style endpoint (with a
// small cold-start so the warming model is exercised), compressed by
// whichever workers are free, and reassembled by chunk index — so the
// decompressed output must be bit-identical across all worker counts (the
// artifact asserts this via the campaign recon digests) while wall time
// falls with endpoint width. The artifact also reports the
// parallelism-aware planner's predicted compression wall beside the
// measured one, closing the loop on the cost model the grouping decision
// uses. Chunk/worker configuration is embedded in the Values so
// BENCH_*.json trajectories are comparable across PRs.
func ParallelCompression(scale Scale) (*Result, error) {
	scale = scale.withDefaults()
	// Keep fields small enough that the modeled dispatch cost dominates the
	// local CPU share: the artifact measures fan-out scheduling, not this
	// machine's core count.
	if scale.Shrink < 16 {
		scale.Shrink = 16
	}
	res := newResult("ParallelCompression")

	const nFields = 8
	names := datagen.Fields("CESM")[:nFields]
	fields := make([]*datagen.Field, 0, nFields)
	for _, name := range names {
		f, err := datagen.Generate("CESM", name, scale.Shrink, scale.Seed)
		if err != nil {
			return nil, err
		}
		fields = append(fields, f)
	}
	// ~6 chunks per field at any scale: the chunk plan tracks the field
	// size, so the artifact's decomposition is scale-invariant.
	chunkMB := float64(fields[0].RawBytes()) / 6 / 1e6

	link := wan.StandardLinks()["Anvil->Bebop"]
	ctx := context.Background()
	runs := make([]*core.CampaignResult, 0, len(parallelWorkerCounts))
	for _, w := range parallelWorkerCounts {
		r, err := core.Run(ctx, fields, core.CampaignSpec{
			RelErrorBound: 1e-3,
			Workers:       8, // submitters + decompression, equal in every run
			GroupParam:    4,
			Codec:         scale.Codec,
			// Fresh transport per run: pacing state is shared per instance.
			Transport:       &core.SimulatedWANTransport{Link: link, Timescale: 1},
			ChunkMB:         chunkMB,
			CompressWorkers: w,
			ChunkEndpoint:   faas.EndpointConfig{ColdStart: parallelCold, WarmStart: parallelDispatch},
		})
		if err != nil {
			return nil, fmt.Errorf("parallel compression @%d workers: %w", w, err)
		}
		runs = append(runs, r)
	}

	// Bit-identity across endpoint widths: same chunk plan, same bytes.
	identical := true
	for _, r := range runs[1:] {
		if r.ReconDigest != runs[0].ReconDigest || r.Chunks != runs[0].Chunks {
			identical = false
		}
	}

	// Parallelism-aware prediction vs the measured 8-worker compress span:
	// a quick sweep trains the quality model on shrunken stand-ins, then
	// the planner predicts the chunked compress wall at 8 workers.
	train := make([]*datagen.Field, 0, nFields)
	for _, name := range names {
		f, err := datagen.Generate("CESM", name, scale.Shrink*2, scale.Seed+1)
		if err != nil {
			return nil, err
		}
		train = append(train, f)
	}
	cands := []planner.Candidate{{RelEB: 1e-3, Codec: scale.Codec}}
	model, err := planner.TrainFromSweep(train, cands, dtree.Params{MaxDepth: 14})
	if err != nil {
		return nil, err
	}
	plan, err := planner.Build(fields, model, planner.Options{
		Candidates:       cands,
		Workers:          8,
		ChunkBytes:       int64(chunkMB * 1e6),
		ChunkDispatchSec: parallelDispatch.Seconds(),
		Seed:             scale.Seed,
	})
	if err != nil {
		return nil, err
	}
	wide := runs[len(runs)-1]
	// plan.PredCompressSec models 8 true endpoint workers (the remote
	// deployment). The in-process fabric used here runs on this host: the
	// modeled dispatch cost is sleep and parallelizes 8-way, but the real
	// CPU share can only parallelize across the cores the host has. The
	// host-adjusted expectation prices the two resources separately, so
	// the predicted-vs-measured comparison is meaningful on any machine.
	secs := make([]float64, len(plan.Fields))
	chunksPer := make([]int, len(plan.Fields))
	for i, fp := range plan.Fields {
		secs[i] = fp.PredSec
		chunksPer[i] = len(planChunksOf(fields[i], chunkMB))
	}
	effCPU := 8
	if n := runtime.GOMAXPROCS(0); n < effCPU {
		effCPU = n
	}
	predHost := planner.ParallelCompressSec(secs, chunksPer, effCPU, 0, 0) +
		planner.ParallelCompressSec(make([]float64, len(secs)), chunksPer, 8, 0, parallelDispatch.Seconds())
	predErr := 0.0
	if wide.CompressSec > 0 {
		predErr = (predHost - wide.CompressSec) / wide.CompressSec
	}

	var sb strings.Builder
	sb.WriteString("ParallelCompression: chunk fan-out across FaaS endpoint workers (same simulated Anvil->Bebop link)\n")
	sb.WriteString(fmt.Sprintf("%d CESM fields, %.1f MB raw, %.2f MB chunks (%d total), groups=4, %v warm dispatch + %v cold start per endpoint\n\n",
		nFields, float64(runs[0].RawBytes)/1e6, chunkMB, runs[0].Chunks, parallelDispatch, parallelCold))
	sb.WriteString(fmt.Sprintf("%-10s %10s %10s %10s %10s %12s\n",
		"Workers", "Wall (s)", "Comp (s)", "Xfer (s)", "Ovlp (s)", "Speedup"))
	for i, r := range runs {
		sb.WriteString(fmt.Sprintf("%-10d %10.3f %10.3f %10.3f %10.3f %11.2fx\n",
			parallelWorkerCounts[i], r.WallSec, r.CompressSec, r.TransferSec,
			r.OverlapSec, runs[0].WallSec/r.WallSec))
	}
	if identical {
		sb.WriteString("\ndecompressed output bit-identical across all worker counts ✓\n")
	} else {
		sb.WriteString("\nWARNING: decompressed output DIFFERS across worker counts\n")
	}
	sb.WriteString(fmt.Sprintf("planner (parallelism-aware): compress wall %.3fs predicted for 8 remote workers;\n"+
		"  host-adjusted (%d cores for the CPU share) %.3fs vs measured %.3fs (%+.0f%%)\n",
		plan.PredCompressSec, effCPU, predHost, wide.CompressSec, 100*predErr))

	res.Text = sb.String()
	// Configuration keys first, so artifact trajectories are comparable.
	res.Values["config/chunk_mb"] = chunkMB
	res.Values["config/chunks"] = float64(runs[0].Chunks)
	res.Values["config/fields"] = float64(nFields)
	res.Values["config/groups"] = float64(runs[0].Groups)
	for i, r := range runs {
		w := parallelWorkerCounts[i]
		res.Values[fmt.Sprintf("wall_w%d", w)] = r.WallSec
		res.Values[fmt.Sprintf("compress_w%d", w)] = r.CompressSec
	}
	res.Values["speedup_8v1"] = runs[0].WallSec / wide.WallSec
	res.Values["digest_match"] = b2f(identical)
	res.Values["pred_compress_sec"] = plan.PredCompressSec
	res.Values["pred_compress_host_sec"] = predHost
	res.Values["meas_compress_sec"] = wide.CompressSec
	res.Values["pred_compress_relerr"] = predErr
	return res, nil
}

// planChunksOf mirrors the campaign engine's chunk plan for one field at
// the artifact's chunk size.
func planChunksOf(f *datagen.Field, chunkMB float64) []sz.ChunkRange {
	return sz.PlanChunksBytes(f.Dims, int64(chunkMB*1e6), f.ElementSize)
}

// b2f renders a boolean as a Values scalar.
func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
