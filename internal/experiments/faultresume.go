package experiments

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	"ocelot/internal/core"
	"ocelot/internal/datagen"
	"ocelot/internal/journal"
	"ocelot/internal/sentinel"
	"ocelot/internal/wan"
)

// faultKillAfterGroups is the crash drill's kill point: the campaign dies
// once this many of its six groups are acked end to end.
const faultKillAfterGroups = 4

// rejectingTransport refuses every archive with a permanent error — the
// fail-fast leg's hard-down endpoint.
type rejectingTransport struct{ calls atomic.Int64 }

func (r *rejectingTransport) Name() string { return "reject" }
func (r *rejectingTransport) Send(ctx context.Context, name string, data []byte) (float64, error) {
	r.calls.Add(1)
	return 0, errors.New("reject: endpoint refuses archives")
}

// FaultResume is the fault-tolerance artifact behind the campaign journal:
// three legs, each proving one contract of the resumable pipeline.
//
// Crash-resume: a journaled six-group campaign is killed after four groups
// are acked, then resumed from the journal. The resume must reproduce the
// uninterrupted run's ReconDigest bit for bit while re-sending only the
// missing groups (resent-bytes fraction well under 0.5), and its wall time
// is reported against a full rerun's.
//
// Flap-retry: every send on a seeded flapping link drops with probability
// 0.4; a bounded retry policy must carry the campaign to completion and
// report how many transient retries it absorbed.
//
// Permanent fail-fast: an endpoint that refuses archives outright must
// fail the campaign on the first attempt with a classified permanent
// error, not burn the retry budget.
func FaultResume(scale Scale) (*Result, error) {
	scale = scale.withDefaults()
	res := newResult("FaultResume")
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	const nFields = 6
	names := datagen.Fields("CESM")[:nFields]
	fields := make([]*datagen.Field, 0, nFields)
	for _, name := range names {
		f, err := datagen.Generate("CESM", name, scale.Shrink, scale.Seed)
		if err != nil {
			return nil, err
		}
		fields = append(fields, f)
	}
	// One field per group and one transfer stream: six kill-able units
	// shipped in a deterministic order.
	spec := core.CampaignSpec{
		RelErrorBound:   1e-3,
		Workers:         2,
		GroupParam:      nFields,
		Codec:           scale.Codec,
		Engine:          core.EngineBarrier,
		TransferStreams: 1,
	}

	dir, err := os.MkdirTemp("", "ocelot-faultresume-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	// Ground truth: the same campaign run uninterrupted. Its digest is what
	// every resume must reproduce, and its wall time is the full-rerun cost
	// a resume avoids.
	ref := spec
	ref.Journal = filepath.Join(dir, "ref.ocjl")
	ref.Transport = core.NopTransport{}
	refRes, err := core.Run(ctx, fields, ref)
	if err != nil {
		return nil, fmt.Errorf("fault resume reference: %w", err)
	}
	if refRes.ReconDigest == 0 {
		return nil, errors.New("fault resume: journaled reference run has no digest")
	}

	// Crash leg: pace the link so each of the six archives takes ~0.25
	// simulated (= wall) seconds, giving the kill poller a wide window.
	compMB := float64(refRes.GroupedBytes) / 1e6
	link := &wan.Link{Name: "fault-crawl", BandwidthMBps: compMB / 1.5, Concurrency: 1, PerFileOverheadSec: 0.02}
	jpath := filepath.Join(dir, "crash.ocjl")
	crash := spec
	crash.Journal = jpath
	crash.Transport = &core.SimulatedWANTransport{Link: link, Timescale: 1}
	h, err := core.Submit(ctx, fields, crash)
	if err != nil {
		return nil, err
	}
	go func() {
		for {
			select {
			case <-h.Done():
				return
			case <-time.After(time.Millisecond):
			}
			if m, err := journal.Load(jpath); err == nil && m.AckedGroups() >= faultKillAfterGroups {
				h.Cancel()
				return
			}
		}
	}()
	<-h.Done()
	pre, err := journal.Load(jpath)
	if err != nil {
		return nil, fmt.Errorf("fault resume: journal unreadable after kill: %w", err)
	}
	preAcked := pre.AckedGroups()

	resume := spec
	resume.Journal = jpath
	resume.ResumeFrom = jpath
	resume.Transport = core.NopTransport{}
	rres, err := core.Run(ctx, fields, resume)
	if err != nil {
		return nil, fmt.Errorf("fault resume: resume failed: %w", err)
	}
	if rres.ReconDigest != refRes.ReconDigest {
		return nil, fmt.Errorf("fault resume: resumed digest %016x != uninterrupted %016x",
			rres.ReconDigest, refRes.ReconDigest)
	}
	resentFrac := 0.0
	if total := rres.GroupedBytes + rres.SkippedBytes; total > 0 {
		resentFrac = float64(rres.GroupedBytes) / float64(total)
	}
	res.Values["digest_match"] = 1
	res.Values["kill_acked_groups"] = float64(preAcked)
	res.Values["skipped_groups"] = float64(rres.SkippedGroups)
	res.Values["resent_fraction"] = resentFrac
	res.Values["resume_wall_sec"] = rres.WallSec
	res.Values["full_wall_sec"] = refRes.WallSec

	// Flap leg: a seeded lossy link plus a bounded retry budget. The
	// campaign must complete and must actually have retried.
	flap := spec
	flap.Transport = &core.SimulatedWANTransport{
		Link: &wan.Link{Name: "fault-flap", BandwidthMBps: 200, Concurrency: 1,
			Faults: &wan.Faults{SendErrProb: 0.4, Seed: 9}},
		Timescale: 1e-3,
	}
	flap.Retry = sentinel.RetryPolicy{MaxAttempts: 10, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond}
	fres, err := core.Run(ctx, fields, flap)
	if err != nil {
		return nil, fmt.Errorf("fault resume: flap leg: %w", err)
	}
	if fres.Retries == 0 {
		return nil, errors.New("fault resume: flap leg saw no retries — fault injection missed the retry path")
	}
	res.Values["flap_retries"] = float64(fres.Retries)

	// Fail-fast leg: a permanently refusing endpoint must not consume the
	// retry budget.
	rej := &rejectingTransport{}
	perm := spec
	perm.GroupParam = 1
	perm.Transport = rej
	perm.Retry = flap.Retry
	_, err = core.Run(ctx, fields, perm)
	var pe *sentinel.PermanentError
	if !errors.As(err, &pe) {
		return nil, fmt.Errorf("fault resume: permanent leg returned %v, want a classified *sentinel.PermanentError", err)
	}
	if pe.Transient {
		return nil, errors.New("fault resume: permanent failure classified transient")
	}
	res.Values["permfail_attempts"] = float64(pe.Attempts)
	res.Values["permfail_sends"] = float64(rej.calls.Load())

	var sb strings.Builder
	sb.WriteString("FaultResume: crash-resume, flap-retry, and fail-fast drills\n\n")
	sb.WriteString(fmt.Sprintf("crash-resume: killed at %d/%d acked groups, resume skipped %d\n",
		preAcked, nFields, rres.SkippedGroups))
	sb.WriteString(fmt.Sprintf("  recon digest %016x identical to uninterrupted run\n", rres.ReconDigest))
	sb.WriteString(fmt.Sprintf("  resent-bytes fraction %.3f (acceptance < 0.5)\n", resentFrac))
	sb.WriteString(fmt.Sprintf("  resume wall %.3fs vs full rerun %.3fs\n", rres.WallSec, refRes.WallSec))
	sb.WriteString(fmt.Sprintf("flap-retry: completed through %d transient retries on a 0.4-drop link\n", fres.Retries))
	sb.WriteString(fmt.Sprintf("fail-fast: permanent endpoint failure after %d attempt(s), %d send(s)\n",
		pe.Attempts, rej.calls.Load()))
	res.Text = sb.String()
	return res, nil
}
