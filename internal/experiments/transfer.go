package experiments

import (
	"context"
	"fmt"
	"strings"

	"ocelot/internal/cluster"
	"ocelot/internal/core"
	"ocelot/internal/datagen"
	"ocelot/internal/wan"
)

// TableII reproduces the file-transfer-pattern measurements: the same
// 300 GB payload split into 1 MB / 10 MB / 100 MB / 1000 MB files between
// NERSC Cori and Argonne Bebop.
func TableII(scale Scale) (*Result, error) {
	res := newResult("Table II")
	link := wan.StandardLinks()["Bebop->Cori"]
	const totalBytes = int64(300) << 30
	cases := []int64{1 << 20, 10 << 20, 100 << 20, 1000 << 20}
	var sb strings.Builder
	sb.WriteString("Table II: file transfer patterns (Cori <-> Bebop, 300GB total)\n")
	sb.WriteString(fmt.Sprintf("%-12s %-10s %12s %12s\n", "File size", "# Files", "Speed (MB/s)", "Duration (s)"))
	for _, fileSize := range cases {
		n := int(totalBytes / fileSize)
		sizes := make([]int64, n)
		for i := range sizes {
			sizes[i] = fileSize
		}
		tr, err := link.Estimate(sizes, scale.Seed)
		if err != nil {
			return nil, err
		}
		sb.WriteString(fmt.Sprintf("%-12s %-10d %12.1f %12.1f\n",
			fmt.Sprintf("%dM", fileSize>>20), n, tr.EffectiveMBps, tr.Seconds))
		res.Values[fmt.Sprintf("speed_%dM", fileSize>>20)] = tr.EffectiveMBps
	}
	res.Text = sb.String()
	return res, nil
}

// datasetCampaign describes one Table VIII dataset at paper scale.
type datasetCampaign struct {
	app       string
	files     int
	fileBytes int64
	// sampleField measures the real compression ratio on synthetic data.
	sampleField string
	relEB       float64
}

// paperCampaigns lists the three Table VIII datasets at full scale.
func paperCampaigns() []datasetCampaign {
	return []datasetCampaign{
		{app: "CESM", files: 7182, fileBytes: int64(1.61e12) / 7182, sampleField: "TMQ", relEB: 1e-3},
		{app: "RTM", files: 3601, fileBytes: int64(682e9) / 3601, sampleField: "snap-1048", relEB: 1e-3},
		{app: "Miranda", files: 768, fileBytes: int64(115e9) / 768, sampleField: "density", relEB: 1e-3},
	}
}

// measuredRatio compresses one synthetic sample field to obtain the
// application's effective compression ratio.
func measuredRatio(c datasetCampaign, scale Scale) (float64, error) {
	f, err := datagen.Generate(c.app, c.sampleField, scale.Shrink, scale.Seed)
	if err != nil {
		return 0, err
	}
	ratio, _, _, err := measureCompression(f, relConfig(f.Data, c.relEB))
	if err != nil {
		return 0, err
	}
	return ratio, nil
}

// TableVIII reproduces the end-to-end NP / CP / OP comparison across the
// three routes, using compression ratios measured on synthetic samples and
// the calibrated machine/link models for the at-scale campaign.
func TableVIII(scale Scale) (*Result, error) {
	scale = scale.withDefaults()
	res := newResult("Table VIII")
	machines := cluster.Standard()
	links := wan.StandardLinks()
	routes := []struct {
		name     string
		src, dst string
		link     string
	}{
		{"Anvil->Cori", "Anvil", "Cori", "Anvil->Cori"},
		{"Anvil->Bebop", "Anvil", "Bebop", "Anvil->Bebop"},
		{"Bebop->Cori", "Bebop", "Cori", "Bebop->Cori"},
	}
	var sb strings.Builder
	sb.WriteString("Table VIII: data transfer among Anvil, Bebop, Cori\n")
	sb.WriteString(fmt.Sprintf("%-9s %-13s %8s %8s %8s %8s %8s %9s %8s %7s\n",
		"Dataset", "Direction", "T(NP)", "T(CP)", "T(OP)", "CPTime", "DPTime", "TotalT", "Gain", "Ratio"))
	for _, c := range paperCampaigns() {
		ratio, err := measuredRatio(c, scale)
		if err != nil {
			return nil, err
		}
		fs := core.UniformFileSet(c.app, c.files, c.fileBytes, ratio)
		fs.RatioJitterFrac = 0.15
		for _, rt := range routes {
			p := &core.Pipeline{Source: machines[rt.src], Dest: machines[rt.dst], Link: links[rt.link]}
			srcNodes := 16
			if rt.src == "Bebop" {
				srcNodes = 8
			}
			direct, cp, op, err := p.CompareModes(fs, core.Plan{
				SourceNodes: srcNodes, Seed: scale.Seed,
				GroupParam: int64(64), // groups sized to keep concurrency busy
			})
			if err != nil {
				return nil, err
			}
			best := op
			if cp.TotalSec < op.TotalSec {
				best = cp
			}
			gain := core.Gain(direct, best)
			sb.WriteString(fmt.Sprintf("%-9s %-13s %7.0fs %7.0fs %7.0fs %7.1fs %7.1fs %8.1fs %7.0f%% %7.1f\n",
				c.app, rt.name, direct.TotalSec, cp.TransferSec, op.TransferSec,
				op.CompressSec, op.DecompressSec, best.TotalSec, 100*gain, ratio))
			res.Values[c.app+"/"+rt.name+"/gain"] = gain
			res.Values[c.app+"/"+rt.name+"/np"] = direct.TotalSec
			res.Values[c.app+"/"+rt.name+"/total"] = best.TotalSec
		}
	}
	sb.WriteString("(Gain = (T(NP) - TotalT)/T(NP); paper range: 41%-91%)\n")
	res.Text = sb.String()
	return res, nil
}

// Fig9 reproduces parallel compression/decompression scaling on Anvil:
// compression time falls with node count; decompression degrades past the
// PFS knee.
func Fig9(scale Scale) (*Result, error) {
	res := newResult("Fig 9")
	anvil := cluster.Standard()["Anvil"]
	apps := []struct {
		name  string
		files int
		bytes int64
	}{
		{"Miranda", 768, 150e6},
		{"CESM", 7182, 224e6},
		{"RTM", 3601, 189e6},
	}
	nodes := []int{1, 2, 4, 8, 16}
	var sb strings.Builder
	sb.WriteString("Fig 9: parallel compression (left) and decompression (right) on Anvil\n")
	sb.WriteString(fmt.Sprintf("%-9s %6s %14s %14s\n", "Dataset", "Nodes", "Compress (s)", "Decompress (s)"))
	for _, app := range apps {
		sizes := make([]int64, app.files)
		for i := range sizes {
			sizes[i] = app.bytes
		}
		for _, n := range nodes {
			ct := anvil.CompressTime(sizes, n)
			dt := anvil.DecompressTime(sizes, n)
			sb.WriteString(fmt.Sprintf("%-9s %6d %14.1f %14.1f\n", app.name, n, ct, dt))
			res.Values[fmt.Sprintf("%s/compress_n%d", app.name, n)] = ct
			res.Values[fmt.Sprintf("%s/decompress_n%d", app.name, n)] = dt
		}
	}
	sb.WriteString("(paper: compression monotone; decompression suffers I/O contention beyond ~4 nodes)\n")
	res.Text = sb.String()
	return res, nil
}

// Fig16 reproduces the direct-vs-compressed transfer time comparison for
// the two Anvil routes.
func Fig16(scale Scale) (*Result, error) {
	scale = scale.withDefaults()
	res := newResult("Fig 16")
	machines := cluster.Standard()
	links := wan.StandardLinks()
	var sb strings.Builder
	sb.WriteString("Fig 16: transfer time — direct vs with parallel compression\n")
	sb.WriteString(fmt.Sprintf("%-9s %-13s %12s %16s %10s\n",
		"Dataset", "Route", "Direct (s)", "Compressed (s)", "Speedup"))
	for _, c := range paperCampaigns() {
		ratio, err := measuredRatio(c, scale)
		if err != nil {
			return nil, err
		}
		fs := core.UniformFileSet(c.app, c.files, c.fileBytes, ratio)
		for i, rt := range []struct{ dst, link string }{
			{"Cori", "Anvil->Cori"},
			{"Bebop", "Anvil->Bebop"},
		} {
			p := &core.Pipeline{Source: machines["Anvil"], Dest: machines[rt.dst], Link: links[rt.link]}
			direct, _, op, err := p.CompareModes(fs, core.Plan{SourceNodes: 16, Seed: scale.Seed, GroupParam: 64})
			if err != nil {
				return nil, err
			}
			speedup := direct.TotalSec / op.TotalSec
			sb.WriteString(fmt.Sprintf("%-9s (%d) %-9s %12.0f %16.0f %9.1fx\n",
				c.app, i+1, rt.link, direct.TotalSec, op.TotalSec, speedup))
			res.Values[c.app+"/"+rt.link+"/speedup"] = speedup
		}
	}
	sb.WriteString("(paper headline: up to 11.2x speed-up)\n")
	res.Text = sb.String()
	return res, nil
}

// PipelineOverlap contrasts the barrier (sequential-phase) and streaming
// campaign engines on the same data and the same simulated WAN: the
// streaming engine starts shipping a packed group while later fields are
// still compressing, so its wall time drops below the sequential phase
// sum. This is the repo's artifact for the pipelining enhancement the
// Globus exascale work (arXiv:2503.22981) and the compression survey
// (arXiv:2404.02840) both call for.
func PipelineOverlap(scale Scale) (*Result, error) {
	scale = scale.timing()
	res := newResult("Pipeline")

	const nFields = 12
	names := datagen.Fields("CESM")[:nFields]
	fields := make([]*datagen.Field, 0, nFields)
	for _, name := range names {
		f, err := datagen.Generate("CESM", name, scale.Shrink, scale.Seed)
		if err != nil {
			return nil, err
		}
		fields = append(fields, f)
	}

	link := wan.StandardLinks()["Anvil->Bebop"]
	spec := core.CampaignSpec{
		RelErrorBound:   1e-3,
		Workers:         4,
		GroupParam:      6,
		Codec:           scale.Codec,
		Transport:       &core.SimulatedWANTransport{Link: link, Timescale: 1},
		TransferStreams: 2,
	}
	ctx := context.Background()
	seqSpec := spec
	seqSpec.Engine = core.EngineSequential
	seq, err := core.Run(ctx, fields, seqSpec)
	if err != nil {
		return nil, err
	}
	pipe, err := core.Run(ctx, fields, spec)
	if err != nil {
		return nil, err
	}

	var sb strings.Builder
	sb.WriteString("Pipeline: sequential vs streaming campaign on the simulated Anvil->Bebop link\n")
	sb.WriteString(fmt.Sprintf("%d CESM fields, %.1f MB raw, %d groups, ratio %.1f\n\n",
		pipe.Files, float64(pipe.RawBytes)/1e6, pipe.Groups, pipe.Ratio))
	sb.WriteString(fmt.Sprintf("%-12s %10s %10s %10s %10s %10s\n",
		"Engine", "Wall (s)", "Comp (s)", "Xfer (s)", "Dcmp (s)", "Ovlp (s)"))
	for _, row := range []struct {
		name string
		r    *core.CampaignResult
	}{{"sequential", seq}, {"pipelined", pipe}} {
		sb.WriteString(fmt.Sprintf("%-12s %10.3f %10.3f %10.3f %10.3f %10.3f\n",
			row.name, row.r.WallSec, row.r.CompressSec, row.r.TransferSec,
			row.r.DecompressSec, row.r.OverlapSec))
	}
	sb.WriteString("\nper-stage ledger (pipelined):\n")
	sb.WriteString(fmt.Sprintf("%-12s %8s %7s %12s %12s\n", "Stage", "Workers", "Items", "Busy (s)", "Span (s)"))
	for _, s := range pipe.Stages {
		sb.WriteString(fmt.Sprintf("%-12s %8d %7d %12.3f %12.3f\n",
			s.Name, s.Workers, s.Items, s.BusySec, s.WallSec))
	}
	speedup := 0.0
	if pipe.WallSec > 0 {
		speedup = seq.WallSec / pipe.WallSec
	}
	sb.WriteString(fmt.Sprintf("\nspeedup %.2fx; %.3fs of stage time hidden by overlap\n",
		speedup, pipe.OverlapSec))
	res.Text = sb.String()
	res.Values["wall_sequential"] = seq.WallSec
	res.Values["wall_pipelined"] = pipe.WallSec
	res.Values["overlap_sec"] = pipe.OverlapSec
	res.Values["speedup"] = speedup
	return res, nil
}
