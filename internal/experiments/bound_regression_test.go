package experiments

import (
	"math"
	"testing"
)

// TestRelConfigDegenerateRange is the regression test for the boundres
// finding in relConfig: it resolved relative bounds with its own
// eb*range arithmetic, whose `rng <= 0` fallback missed non-finite
// ranges — a field containing +Inf produced an infinite absolute bound.
// The fix routes through sz.Config.AbsoluteBound, whose fallback also
// covers NaN and Inf ranges.
func TestRelConfigDegenerateRange(t *testing.T) {
	cases := []struct {
		name  string
		data  []float64
		relEB float64
		want  float64
	}{
		{"infinite range falls back to 1", []float64{math.Inf(1), 0}, 1e-3, 1e-3},
		{"nan range falls back to 1", []float64{math.NaN(), 5}, 1e-3, 1e-3},
		{"constant field falls back to 1", []float64{3, 3, 3}, 1e-2, 1e-2},
		{"finite range scales the bound", []float64{0, 0.5, 2}, 1e-3, 2e-3},
	}
	for _, tc := range cases {
		cfg := relConfig(tc.data, tc.relEB)
		if math.Abs(cfg.ErrorBound-tc.want) > 1e-15 || math.IsNaN(cfg.ErrorBound) {
			t.Errorf("%s: relConfig bound = %g, want %g", tc.name, cfg.ErrorBound, tc.want)
		}
	}
}
