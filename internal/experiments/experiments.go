// Package experiments contains one driver per table and figure of the
// paper's evaluation (Section VIII). Each driver returns a Result whose
// Text field is a formatted table mirroring the paper's artifact and whose
// numeric fields feed the regression assertions in the test-suite and the
// benchmark harness at the repository root.
//
// Scale: the paper's datasets are terabytes; drivers accept a Scale that
// shrinks every dataset dimension so a full reproduction sweep runs on a
// laptop. The *shape* of each result (who wins, by what factor, where the
// crossovers fall) is preserved; absolute numbers are not comparable.
package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"ocelot/internal/datagen"
	"ocelot/internal/metrics"
	"ocelot/internal/sz"
)

// Scale controls dataset sizes for the experiment drivers.
type Scale struct {
	// Shrink divides every dataset dimension (≥ 1). Higher = faster.
	Shrink int
	// Seed makes every driver deterministic.
	Seed int64
	// Codec selects the compressor for campaign-style artifacts that run
	// a single codec (Pipeline, ParallelCompression); "" = sz3.
	// Codec-comparison artifacts (CodecShootout) always sweep every codec
	// they study.
	Codec string
}

// DefaultScale is a laptop-friendly setting (fields of ~10⁵–10⁶ points).
func DefaultScale() Scale { return Scale{Shrink: 16, Seed: 42} }

// QuickScale is for unit tests (~10⁴ points per field).
func QuickScale() Scale { return Scale{Shrink: 40, Seed: 42} }

func (s Scale) withDefaults() Scale {
	if s.Shrink < 1 {
		s.Shrink = 16
	}
	return s
}

// timing returns a scale suitable for experiments that *measure wall time*
// (Figs 4, 13, 14): fields must be large enough that compression takes
// milliseconds, or correlations and overhead fractions are pure noise.
func (s Scale) timing() Scale {
	s = s.withDefaults()
	if s.Shrink > 10 {
		s.Shrink = 10
	}
	return s
}

// Result is the common experiment output.
type Result struct {
	// ID is the paper artifact, e.g. "Table VIII".
	ID string
	// Text is the formatted reproduction of the artifact.
	Text string
	// Values holds named scalar outcomes for assertions.
	Values map[string]float64
}

func newResult(id string) *Result {
	return &Result{ID: id, Values: make(map[string]float64)}
}

// --- Table I ---

// TableI reproduces the basic data-based feature examples.
func TableI(scale Scale) (*Result, error) {
	scale = scale.withDefaults()
	res := newResult("Table I")
	specs := []struct{ app, field, label string }{
		{"CESM", "CLDHGH", "CLDHGH"},
		{"CESM", "FLDSC", "FLDSC"},
		{"CESM", "PCONVT", "PCONVT"},
		{"HACC", "vx", "HACC-VX"},
		{"HACC", "xx", "HACC-XX"},
	}
	var sb strings.Builder
	sb.WriteString("Table I: basic data-based features\n")
	sb.WriteString(fmt.Sprintf("%-12s %14s %14s %14s\n", "Dataset", "min", "max", "value range"))
	for _, sp := range specs {
		f, err := datagen.Generate(sp.app, sp.field, scale.Shrink, scale.Seed)
		if err != nil {
			return nil, err
		}
		st := metrics.ComputeRange(f.Data)
		sb.WriteString(fmt.Sprintf("%-12s %14.2f %14.2f %14.2f\n", sp.label, st.Min, st.Max, st.Range))
		res.Values[sp.label+"/range"] = st.Range
	}
	res.Text = sb.String()
	return res, nil
}

// --- shared helpers ---

// adaptiveStride picks a feature-sampling stride that keeps at least ~2000
// sampled points on small test-scale fields while staying 1-in-100 on
// paper-scale data.
func adaptiveStride(n int) int {
	s := n / 2000
	if s < 1 {
		return 1
	}
	if s > 100 {
		return 100
	}
	return s
}

// relConfig builds an SZ config whose absolute bound is relEB resolved
// against the data's range through sz.Config.AbsoluteBound — the single
// rel→abs resolver, so experiments quantize at exactly the bound the
// compressor would pick itself (degenerate ranges included).
func relConfig(data []float64, relEB float64) sz.Config {
	rel := sz.Config{ErrorBound: relEB, BoundMode: sz.BoundRelative}
	return sz.DefaultConfig(rel.AbsoluteBound(data))
}

// measureCompression compresses and reports (ratio, seconds, stats).
func measureCompression(f *datagen.Field, cfg sz.Config) (ratio, seconds float64, st *sz.Stats, err error) {
	start := time.Now()
	stream, stats, err := sz.Compress(f.Data, f.Dims, cfg)
	if err != nil {
		return 0, 0, nil, err
	}
	seconds = time.Since(start).Seconds()
	return metrics.CompressionRatio(f.RawBytes(), len(stream)), seconds, stats, nil
}

// measureCompressionBest repeats the measurement and keeps the fastest run
// — the standard noise-robust estimator for the timing-correlation figures,
// which otherwise wobble under machine load.
func measureCompressionBest(f *datagen.Field, cfg sz.Config, reps int) (ratio, seconds float64, err error) {
	best := math.Inf(1)
	for r := 0; r < reps; r++ {
		ra, sec, _, err := measureCompression(f, cfg)
		if err != nil {
			return 0, 0, err
		}
		ratio = ra
		if sec < best {
			best = sec
		}
	}
	return ratio, best, nil
}

// pearson computes the correlation coefficient between two series.
func pearson(x, y []float64) float64 {
	n := len(x)
	if n == 0 || n != len(y) {
		return 0
	}
	var sx, sy float64
	for i := 0; i < n; i++ {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var cov, vx, vy float64
	for i := 0; i < n; i++ {
		dx, dy := x[i]-mx, y[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// fmtFloat prints with adaptive precision like the paper's tables.
func fmtFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.1f", v)
	case math.Abs(v) >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}
