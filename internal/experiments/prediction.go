package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"ocelot/internal/datagen"
	"ocelot/internal/dtree"
	"ocelot/internal/features"
	"ocelot/internal/metrics"
	"ocelot/internal/quality"
	"ocelot/internal/sz"
)

// corpusFor assembles a training corpus from one or more applications.
func corpusFor(scale Scale, apps ...string) ([]*datagen.Field, error) {
	var fields []*datagen.Field
	for _, app := range apps {
		names := datagen.Fields(app)
		if app == "RTM" {
			names = names[:4] // snapshots are expensive; four suffice
		}
		for _, n := range names {
			f, err := datagen.Generate(app, n, scale.Shrink, scale.Seed)
			if err != nil {
				return nil, err
			}
			fields = append(fields, f)
		}
	}
	return fields, nil
}

// TableV reproduces the compression time and ratio prediction examples:
// train on a mixed corpus, then predict CR and CPTime for representative
// (dataset, error bound) pairs.
func TableV(scale Scale) (*Result, error) {
	scale = scale.withDefaults()
	res := newResult("Table V")
	fields, err := corpusFor(scale, "Nyx", "CESM", "RTM", "Miranda")
	if err != nil {
		return nil, err
	}
	samples, err := quality.Collect(fields, quality.CollectOptions{
		ErrorBounds: []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1},
	})
	if err != nil {
		return nil, err
	}
	train, _ := quality.SplitTrainTest(samples, 0.7, scale.Seed)
	model, err := quality.Train(train, dtree.Params{MaxDepth: 14})
	if err != nil {
		return nil, err
	}

	rows := []struct {
		app, field string
		eb         float64
	}{
		{"Nyx", "baryon_density", 1e-6},
		{"Nyx", "baryon_density", 1e-4},
		{"Nyx", "baryon_density", 1e-2},
		{"CESM", "LHFLX", 1e-6},
		{"CESM", "LHFLX", 1e-3},
		{"CESM", "LHFLX", 1e-2},
		{"CESM", "SNOWHICE", 1e-6},
		{"CESM", "SNOWHICE", 1e-4},
		{"CESM", "SNOWHICE", 1e-3},
		{"RTM", "snap-1982", 1e-6},
		{"RTM", "snap-1048", 1e-4},
		{"RTM", "snap-0594", 1e-4},
		{"Miranda", "velocityx", 1e-2},
		{"Miranda", "velocityx", 1e-3},
		{"Miranda", "velocityx", 1e-1},
	}
	var sb strings.Builder
	sb.WriteString("Table V: compression time and ratio prediction examples\n")
	sb.WriteString(fmt.Sprintf("%-24s %-7s %8s %8s %10s %10s\n",
		"Dataset", "EB", "P-CR", "CR", "P-CPTime", "CPTime"))
	var crRelErrSum float64
	n := 0
	for _, r := range rows {
		f, err := datagen.Generate(r.app, r.field, scale.Shrink, scale.Seed)
		if err != nil {
			return nil, err
		}
		est, err := model.EstimateField(f.Data, f.Dims, r.eb, 0)
		if err != nil {
			return nil, err
		}
		realRatio, realSec, _, err := measureCompression(f, relConfig(f.Data, r.eb))
		if err != nil {
			return nil, err
		}
		sb.WriteString(fmt.Sprintf("%-24s %-7.0e %8s %8s %10.3f %10.3f\n",
			r.app+"/"+r.field, r.eb, fmtFloat(est.Ratio), fmtFloat(realRatio),
			est.Seconds, realSec))
		crRelErrSum += math.Abs(est.Ratio-realRatio) / realRatio
		n++
	}
	res.Values["cr_mean_rel_err"] = crRelErrSum / float64(n)
	res.Text = sb.String()
	return res, nil
}

// psnrPredictionTable is shared by Tables VI and VII.
func psnrPredictionTable(scale Scale, app, id string, nRows int) (*Result, error) {
	scale = scale.withDefaults()
	res := newResult(id)
	fields, err := corpusFor(scale, app)
	if err != nil {
		return nil, err
	}
	samples, err := quality.Collect(fields, quality.CollectOptions{
		ErrorBounds: []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1},
		WithPSNR:    true,
	})
	if err != nil {
		return nil, err
	}
	// Paper: 50% train / 50% test.
	train, test := quality.SplitTrainTest(samples, 0.5, scale.Seed)
	model, err := quality.Train(train, dtree.Params{MaxDepth: 12})
	if err != nil {
		return nil, err
	}
	eval, err := model.Evaluate(test)
	if err != nil {
		return nil, err
	}
	var sb strings.Builder
	sb.WriteString(fmt.Sprintf("%s: prediction of PSNR for %s\n", id, app))
	sb.WriteString(fmt.Sprintf("%-28s %-7s %10s %14s\n", "Field", "eb", "Real PSNR", "Predicted PSNR"))
	for i, s := range test {
		if i >= nRows {
			break
		}
		est, err := model.EstimateFromFeatures(s.Feats, s.Points)
		if err != nil {
			return nil, err
		}
		sb.WriteString(fmt.Sprintf("%-28s %-7.0e %10.2f %14.2f\n", s.Field, s.EB, s.PSNR, est.PSNR))
	}
	sb.WriteString(fmt.Sprintf("RMSE of PSNR prediction: %.2f dB (paper: ~13-14 dB)\n", eval.PSNRRMSE))
	res.Values["psnr_rmse"] = eval.PSNRRMSE
	res.Text = sb.String()
	return res, nil
}

// TableVI reproduces PSNR prediction for CESM.
func TableVI(scale Scale) (*Result, error) {
	return psnrPredictionTable(scale, "CESM", "Table VI", 10)
}

// TableVII reproduces PSNR prediction for ISABEL.
func TableVII(scale Scale) (*Result, error) {
	return psnrPredictionTable(scale, "ISABEL", "Table VII", 10)
}

// Fig4 reproduces "data entropy vs compression time" on RTM for three error
// bounds: positive entropy/time correlation at small bounds that weakens at
// large bounds.
func Fig4(scale Scale) (*Result, error) {
	scale = scale.timing()
	res := newResult("Fig 4")
	snaps := []string{"snap-0200", "snap-0594", "snap-1048", "snap-1400", "snap-1800",
		"snap-1982", "snap-2600", "snap-3200"}
	ebs := []float64{1e-6, 1e-4, 1e-2}
	var sb strings.Builder
	sb.WriteString("Fig 4: RTM data entropy vs compression time\n")
	for _, eb := range ebs {
		var entropies, times []float64
		for _, name := range snaps {
			f, err := datagen.Generate("RTM", name, scale.Shrink, scale.Seed)
			if err != nil {
				return nil, err
			}
			fv, err := features.Extract(f.Data, f.Dims, relConfig(f.Data, eb), features.Options{SampleStride: adaptiveStride(f.NumPoints())})
			if err != nil {
				return nil, err
			}
			_, sec, err := measureCompressionBest(f, relConfig(f.Data, eb), 3)
			if err != nil {
				return nil, err
			}
			entropies = append(entropies, fv.ByteEntropy)
			times = append(times, sec)
		}
		r := pearson(entropies, times)
		sb.WriteString(fmt.Sprintf("eb=%.0e: corr(entropy, time) = %+.3f  points:", eb, r))
		for i := range entropies {
			sb.WriteString(fmt.Sprintf(" (%.2f,%.3fs)", entropies[i], times[i]))
		}
		sb.WriteString("\n")
		res.Values[fmt.Sprintf("corr_eb_%.0e", eb)] = r
	}
	res.Text = sb.String()
	return res, nil
}

// featureRatioSweep measures compressor features vs compression ratio
// across error bounds for an application (Figs 5 and 6).
func featureRatioSweep(scale Scale, app string, limit int) (p0s, qents, rrles, ratios []float64, err error) {
	fields, err := corpusFor(scale, app)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	if len(fields) > limit {
		fields = fields[:limit]
	}
	ebs := []float64{1e-5, 1e-4, 1e-3, 1e-2, 1e-1}
	for _, f := range fields {
		for _, eb := range ebs {
			cfg := relConfig(f.Data, eb)
			fv, err := features.Extract(f.Data, f.Dims, cfg, features.Options{SampleStride: adaptiveStride(f.NumPoints())})
			if err != nil {
				return nil, nil, nil, nil, err
			}
			ratio, _, _, err := measureCompression(f, cfg)
			if err != nil {
				return nil, nil, nil, nil, err
			}
			p0s = append(p0s, fv.P0Quant)
			qents = append(qents, fv.QuantEntropy)
			rrles = append(rrles, fv.Rrle)
			ratios = append(ratios, ratio)
		}
	}
	return p0s, qents, rrles, ratios, nil
}

// Fig5 reproduces the Nyx feature-vs-ratio relationships: p0, quantization
// entropy, and the run-length estimator all correlate with the ratio.
func Fig5(scale Scale) (*Result, error) {
	scale = scale.withDefaults()
	res := newResult("Fig 5")
	p0s, qents, rrles, ratios, err := featureRatioSweep(scale, "Nyx", 4)
	if err != nil {
		return nil, err
	}
	logRatios := make([]float64, len(ratios))
	for i, r := range ratios {
		logRatios[i] = math.Log2(r)
	}
	res.Values["corr_p0"] = pearson(p0s, logRatios)
	res.Values["corr_qent"] = pearson(qents, logRatios)
	res.Values["corr_rrle"] = pearson(rrles, logRatios)
	res.Text = fmt.Sprintf(
		"Fig 5: Nyx compressor-features vs log2(compression ratio)\n"+
			"corr(p0, logCR)            = %+.3f (paper: strong positive)\n"+
			"corr(quant-entropy, logCR) = %+.3f (paper: strong negative)\n"+
			"corr(Rrle, logCR)          = %+.3f (paper: strong positive)\n",
		res.Values["corr_p0"], res.Values["corr_qent"], res.Values["corr_rrle"])
	return res, nil
}

// Fig6 reproduces the Miranda caveat: the run-length estimator alone is a
// poor linear predictor of the ratio, but the full feature set through the
// tree model predicts it well.
func Fig6(scale Scale) (*Result, error) {
	scale = scale.withDefaults()
	res := newResult("Fig 6")
	fields, err := corpusFor(scale, "Miranda")
	if err != nil {
		return nil, err
	}
	samples, err := quality.Collect(fields, quality.CollectOptions{
		ErrorBounds: []float64{1e-5, 1e-4, 1e-3, 1e-2, 1e-1},
	})
	if err != nil {
		return nil, err
	}
	// Rrle alone as a linear estimator of CR.
	rrleIdx := -1
	for i, n := range features.Names {
		if n == "rle_estimator" {
			rrleIdx = i
		}
	}
	var rrles, ratios []float64
	for _, s := range samples {
		rrles = append(rrles, s.Feats[rrleIdx])
		ratios = append(ratios, s.Ratio)
	}
	rrleCorr := pearson(rrles, ratios)

	train, test := quality.SplitTrainTest(samples, 0.6, scale.Seed)
	model, err := quality.Train(train, dtree.Params{MaxDepth: 12})
	if err != nil {
		return nil, err
	}
	var modelRelErr float64
	for _, s := range test {
		est, err := model.EstimateFromFeatures(s.Feats, s.Points)
		if err != nil {
			return nil, err
		}
		modelRelErr += math.Abs(est.Ratio-s.Ratio) / s.Ratio
	}
	modelRelErr /= float64(len(test))
	res.Values["rrle_corr"] = rrleCorr
	res.Values["model_rel_err"] = modelRelErr
	res.Text = fmt.Sprintf(
		"Fig 6: Miranda — Rrle alone vs full ML model\n"+
			"corr(Rrle, CR) linear fit   = %+.3f (paper: poor/nonlinear)\n"+
			"tree-model mean rel. error  = %.1f%% (paper: accurate)\n",
		rrleCorr, 100*modelRelErr)
	return res, nil
}

// psnrFeatureFig is shared by Figs 7 and 8: PSNR vs compressor features.
func psnrFeatureFig(scale Scale, app, id string) (*Result, error) {
	scale = scale.withDefaults()
	res := newResult(id)
	fields, err := corpusFor(scale, app)
	if err != nil {
		return nil, err
	}
	if len(fields) > 6 {
		fields = fields[:6]
	}
	samples, err := quality.Collect(fields, quality.CollectOptions{
		ErrorBounds: []float64{1e-6, 1e-4, 1e-3, 1e-2, 1e-1},
		WithPSNR:    true,
	})
	if err != nil {
		return nil, err
	}
	p0Idx, qeIdx := -1, -1
	for i, n := range features.Names {
		switch n {
		case "p0":
			p0Idx = i
		case "quant_entropy":
			qeIdx = i
		}
	}
	// Pooling different fields mixes scales, so (like the paper's per-file
	// scatter plots) compute the trend within each field and average.
	byField := map[string][]quality.Sample{}
	for _, s := range samples {
		byField[s.Field] = append(byField[s.Field], s)
	}
	var p0Corr, qeCorr float64
	n := 0
	for _, group := range byField {
		var p0s, qents, psnrs []float64
		for _, s := range group {
			p0s = append(p0s, s.Feats[p0Idx])
			qents = append(qents, s.Feats[qeIdx])
			psnrs = append(psnrs, s.PSNR)
		}
		p0Corr += pearson(p0s, psnrs)
		qeCorr += pearson(qents, psnrs)
		n++
	}
	res.Values["corr_p0_psnr"] = p0Corr / float64(n)
	res.Values["corr_qent_psnr"] = qeCorr / float64(n)
	res.Text = fmt.Sprintf(
		"%s: %s — PSNR vs compressor-level features\n"+
			"corr(p0, PSNR)            = %+.3f (paper: negative: large-eb runs have high p0, low PSNR)\n"+
			"corr(quant-entropy, PSNR) = %+.3f (paper: positive)\n",
		id, app, res.Values["corr_p0_psnr"], res.Values["corr_qent_psnr"])
	return res, nil
}

// Fig7 reproduces CESM PSNR vs compressor-level features.
func Fig7(scale Scale) (*Result, error) { return psnrFeatureFig(scale, "CESM", "Fig 7") }

// Fig8 reproduces ISABEL PSNR vs compressor-level features.
func Fig8(scale Scale) (*Result, error) { return psnrFeatureFig(scale, "ISABEL", "Fig 8") }

// Fig12 reproduces the prediction-error distributions for Nyx/CESM/Miranda
// (30% train, 70% test) with 80% confidence intervals.
func Fig12(scale Scale) (*Result, error) {
	scale = scale.withDefaults()
	res := newResult("Fig 12")
	var sb strings.Builder
	sb.WriteString("Fig 12: prediction error distributions (80% confidence interval)\n")
	for _, app := range []string{"Nyx", "CESM", "Miranda"} {
		fields, err := corpusFor(scale, app)
		if err != nil {
			return nil, err
		}
		samples, err := quality.Collect(fields, quality.CollectOptions{})
		if err != nil {
			return nil, err
		}
		train, test := quality.SplitTrainTest(samples, 0.3, scale.Seed)
		model, err := quality.Train(train, dtree.Params{MaxDepth: 12})
		if err != nil {
			return nil, err
		}
		eval, err := model.Evaluate(test)
		if err != nil {
			return nil, err
		}
		rLo, rHi := quality.ConfidenceInterval(eval.RatioDiffs, 0.8)
		tLo, tHi := quality.ConfidenceInterval(eval.TimeDiffs, 0.8)
		sb.WriteString(fmt.Sprintf("%-8s CR error 80%% CI [%+.2f, %+.2f]   time error 80%% CI [%+.3fs, %+.3fs]\n",
			app, rLo, rHi, tLo, tHi))
		res.Values[app+"/cr_ci_width"] = rHi - rLo
		res.Values[app+"/time_ci_width"] = tHi - tLo
	}
	res.Text = sb.String()
	return res, nil
}

// Fig13 reproduces (A) the sampling-overhead analysis on Nyx and (B) the
// per-application compression time ranges.
func Fig13(scale Scale) (*Result, error) {
	scale = scale.timing()
	res := newResult("Fig 13")
	var sb strings.Builder

	// (A) Overhead of feature extraction vs full compression on Nyx.
	f, err := datagen.Generate("Nyx", "baryon_density", scale.Shrink, scale.Seed)
	if err != nil {
		return nil, err
	}
	cfg := relConfig(f.Data, 1e-3)
	_, compressSec, _, err := measureCompression(f, cfg)
	if err != nil {
		return nil, err
	}
	overhead := func(stride int) (float64, error) {
		start := time.Now()
		if _, err := features.Extract(f.Data, f.Dims, cfg, features.Options{SampleStride: stride}); err != nil {
			return 0, err
		}
		return time.Since(start).Seconds(), nil
	}
	full, err := overhead(1)
	if err != nil {
		return nil, err
	}
	sampled, err := overhead(100)
	if err != nil {
		return nil, err
	}
	res.Values["overhead_full_frac"] = full / compressSec
	res.Values["overhead_sampled_frac"] = sampled / compressSec
	sb.WriteString(fmt.Sprintf("Fig 13(A): Nyx overhead — full extraction %.1f%% of compression, 1%% sampling %.1f%% (paper: >70%% -> <5%%)\n",
		100*full/compressSec, 100*sampled/compressSec))

	// (B) Compression time ranges per application.
	sb.WriteString("Fig 13(B): compression time ranges (seconds, this machine)\n")
	for _, app := range []string{"CESM", "Miranda", "Nyx", "ISABEL"} {
		fields, err := corpusFor(scale, app)
		if err != nil {
			return nil, err
		}
		if len(fields) > 4 {
			fields = fields[:4]
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, f := range fields {
			_, sec, _, err := measureCompression(f, relConfig(f.Data, 1e-3))
			if err != nil {
				return nil, err
			}
			lo = math.Min(lo, sec)
			hi = math.Max(hi, sec)
		}
		sb.WriteString(fmt.Sprintf("  %-8s [%.3fs, %.3fs]\n", app, lo, hi))
		res.Values[app+"/time_spread"] = hi / lo
	}
	res.Text = sb.String()
	return res, nil
}

// Fig14 reproduces the RTM compression-time vs compressor-features
// correlations.
func Fig14(scale Scale) (*Result, error) {
	scale = scale.timing()
	res := newResult("Fig 14")
	snaps := []string{"snap-0200", "snap-0594", "snap-1048", "snap-1400",
		"snap-1800", "snap-1982", "snap-2600", "snap-3200"}
	ebs := []float64{1e-5, 1e-3, 1e-1}
	var p0s, qents, times []float64
	for _, name := range snaps {
		f, err := datagen.Generate("RTM", name, scale.Shrink, scale.Seed)
		if err != nil {
			return nil, err
		}
		for _, eb := range ebs {
			cfg := relConfig(f.Data, eb)
			fv, err := features.Extract(f.Data, f.Dims, cfg, features.Options{SampleStride: adaptiveStride(f.NumPoints())})
			if err != nil {
				return nil, err
			}
			_, sec, err := measureCompressionBest(f, cfg, 3)
			if err != nil {
				return nil, err
			}
			p0s = append(p0s, fv.P0Quant)
			qents = append(qents, fv.QuantEntropy)
			times = append(times, sec)
		}
	}
	res.Values["corr_p0_time"] = pearson(p0s, times)
	res.Values["corr_qent_time"] = pearson(qents, times)
	res.Text = fmt.Sprintf(
		"Fig 14: RTM compression time vs compressor-level features\n"+
			"corr(p0, time)            = %+.3f (paper: negative)\n"+
			"corr(quant-entropy, time) = %+.3f (paper: positive)\n",
		res.Values["corr_p0_time"], res.Values["corr_qent_time"])
	return res, nil
}

// Fig15 reproduces the visual-quality comparison: compress CESM CLDMED,
// TMQ, TROP_Z at the Table VI bounds and report PSNR plus an ASCII
// rendering of original vs reconstructed data.
func Fig15(scale Scale) (*Result, error) {
	scale = scale.withDefaults()
	res := newResult("Fig 15")
	cases := []struct {
		field string
		eb    float64
	}{
		{"CLDMED", 1e-3},
		{"TMQ", 1e-3},
		{"TROP_Z", 1e-3},
	}
	var sb strings.Builder
	sb.WriteString("Fig 15: CESM original vs reconstructed (PSNR + ASCII render)\n")
	for _, c := range cases {
		f, err := datagen.Generate("CESM", c.field, scale.Shrink, scale.Seed)
		if err != nil {
			return nil, err
		}
		cfg := relConfig(f.Data, c.eb)
		stream, _, err := sz.Compress(f.Data, f.Dims, cfg)
		if err != nil {
			return nil, err
		}
		recon, _, err := sz.Decompress(stream)
		if err != nil {
			return nil, err
		}
		psnr, err := metrics.PSNR(f.Data, recon)
		if err != nil {
			return nil, err
		}
		res.Values[c.field+"/psnr"] = psnr
		sb.WriteString(fmt.Sprintf("\n%s (eb=%.0e): PSNR = %.2f dB\n", c.field, c.eb, psnr))
		sb.WriteString("original:\n")
		sb.WriteString(asciiRender(f.Data, f.Dims, 8, 24))
		sb.WriteString("reconstructed:\n")
		sb.WriteString(asciiRender(recon, f.Dims, 8, 24))
	}
	sb.WriteString("\n(paper: PSNR > 50 dB shows no visible difference)\n")
	res.Text = sb.String()
	return res, nil
}

// asciiRender draws a coarse grayscale view of a 2-D field.
func asciiRender(data []float64, dims []int, rows, cols int) string {
	if len(dims) < 2 {
		return "(not renderable)\n"
	}
	h, w := dims[len(dims)-2], dims[len(dims)-1]
	lo, hi := data[0], data[0]
	for _, v := range data[:h*w] {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	ramp := []byte(" .:-=+*#%@")
	var sb strings.Builder
	for r := 0; r < rows; r++ {
		y := r * h / rows
		for c := 0; c < cols; c++ {
			x := c * w / cols
			v := data[y*w+x]
			t := 0.0
			if hi > lo {
				t = (v - lo) / (hi - lo)
			}
			idx := int(t * float64(len(ramp)-1))
			sb.WriteByte(ramp[idx])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
