package experiments

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"ocelot/internal/core"
	"ocelot/internal/datagen"
	"ocelot/internal/obs"
)

// obsStageSpans is the span set every traced pipelined campaign must emit
// at least once — the taxonomy ARCHITECTURE.md documents.
var obsStageSpans = []string{"campaign", "compress", "pack", "transfer", "send", "decompress", "verify"}

// ObsOverhead is the observability-contract artifact behind internal/obs:
// instrumentation wired through every campaign stage must be free when
// nobody is looking, and complete when somebody is.
//
// Overhead leg: the same pipelined campaign is A/B-timed with Obs unset
// (baseline) versus fully instrumented but disabled — a tracer with
// SetEnabled(false) plus a live metrics registry, so every StartSpan
// resolves to one atomic load and every counter to one atomic add. The
// median-of-ratios overhead fraction is the artifact gate (< 2% wall).
//
// Coverage leg: one run with tracing enabled must emit at least one span
// for every pipeline stage (campaign, compress, pack, transfer, send,
// decompress, verify) and its metrics snapshot must account for every raw
// byte the campaign moved.
func ObsOverhead(scale Scale) (*Result, error) {
	scale = scale.timing() // overhead fractions need runs long enough to time
	res := newResult("ObsOverhead")
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	const nFields = 4
	names := datagen.Fields("CESM")[:nFields]
	fields := make([]*datagen.Field, 0, nFields)
	var rawBytes int64
	for _, name := range names {
		f, err := datagen.Generate("CESM", name, scale.Shrink, scale.Seed)
		if err != nil {
			return nil, err
		}
		rawBytes += int64(f.RawBytes())
		fields = append(fields, f)
	}
	spec := core.CampaignSpec{
		RelErrorBound: 1e-3,
		Workers:       4,
		GroupParam:    2,
		Codec:         scale.Codec,
		Transport:     core.NopTransport{},
	}

	baseline := func() error {
		_, err := core.Run(ctx, fields, spec)
		return err
	}
	// Instrumented-but-disabled: the exact production wiring a daemon would
	// leave in place between scrapes. The registry is live (counters DO
	// count); only the tracer is off.
	offTracer := obs.NewTracer()
	offTracer.SetEnabled(false)
	instr := spec
	instr.Obs = &obs.Obs{Tracer: offTracer, Metrics: obs.NewRegistry()}
	instrumented := func() error {
		_, err := core.Run(ctx, fields, instr)
		return err
	}
	instrSec, baseSec, speedup, err := pairedMedian(instrumented, baseline)
	if err != nil {
		return nil, fmt.Errorf("obs overhead: %w", err)
	}
	// speedup is median(base/instr) per round; overhead is its inverse.
	overhead := 1/speedup - 1
	res.Values["overhead_frac"] = overhead
	res.Values["instrumented_sec"] = instrSec
	res.Values["baseline_sec"] = baseSec

	// Coverage leg: enabled tracer + fresh registry, one run.
	tracer := obs.NewTracer()
	en := spec
	en.Obs = &obs.Obs{Tracer: tracer, Metrics: obs.NewRegistry()}
	eres, err := core.Run(ctx, fields, en)
	if err != nil {
		return nil, fmt.Errorf("obs coverage: %w", err)
	}
	byName := make(map[string]int)
	for _, s := range tracer.Spans() {
		byName[s.Name]++
	}
	for _, want := range obsStageSpans {
		if byName[want] == 0 {
			return nil, fmt.Errorf("obs coverage: traced campaign emitted no %q span", want)
		}
	}
	if eres.Metrics == nil {
		return nil, errors.New("obs coverage: instrumented CampaignResult carries no metrics snapshot")
	}
	if got := int64(eres.Metrics["campaign_raw_bytes_total"]); got != rawBytes {
		return nil, fmt.Errorf("obs coverage: campaign_raw_bytes_total = %d, want %d", got, rawBytes)
	}
	res.Values["enabled_spans"] = float64(len(tracer.Spans()))
	res.Values["enabled_send_spans"] = float64(byName["send"])
	res.Values["metrics_series"] = float64(len(eres.Metrics))
	res.Values["config/fields"] = nFields
	res.Values["config/raw_bytes"] = float64(rawBytes)

	var sb strings.Builder
	sb.WriteString("ObsOverhead: instrumented-but-disabled vs baseline campaign\n\n")
	sb.WriteString(fmt.Sprintf("baseline      %8.4fs median wall\n", baseSec))
	sb.WriteString(fmt.Sprintf("instrumented  %8.4fs median wall (tracer disabled, registry live)\n", instrSec))
	sb.WriteString(fmt.Sprintf("overhead      %+8.2f%% (acceptance < 2%%)\n\n", overhead*100))
	sb.WriteString(fmt.Sprintf("enabled run: %d spans across %d names, %d metric series\n",
		len(tracer.Spans()), len(byName), len(eres.Metrics)))
	sb.WriteString(fmt.Sprintf("stage span coverage: %s\n", strings.Join(obsStageSpans, ", ")))
	res.Text = sb.String()
	return res, nil
}
