package experiments

import "fmt"

// Driver pairs one artifact ID with its regeneration function.
type Driver struct {
	// ID is the artifact name, e.g. "Table VIII" or "ParallelCompression".
	ID string
	// Fn regenerates the artifact at the given scale.
	Fn func(Scale) (*Result, error)
}

// Drivers returns every artifact driver in canonical presentation order.
// This slice is the single ordering authority: cmd/ocelot-bench iterates
// it, All runs it, and benchmark-artifact trajectories (BENCH_*.json)
// depend on the emitted sequence being identical run-to-run and PR-to-PR.
// Append new artifacts at the end; never reorder existing entries.
func Drivers() []Driver {
	return []Driver{
		{"Table I", TableI},
		{"Table II", TableII},
		{"Fig 4", Fig4},
		{"Fig 5", Fig5},
		{"Fig 6", Fig6},
		{"Fig 7", Fig7},
		{"Fig 8", Fig8},
		{"Fig 9", Fig9},
		{"Table V", TableV},
		{"Table VI", TableVI},
		{"Table VII", TableVII},
		{"Fig 12", Fig12},
		{"Fig 13", Fig13},
		{"Fig 14", Fig14},
		{"Fig 15", Fig15},
		{"Table VIII", TableVIII},
		{"Fig 16", Fig16},
		{"Pipeline", PipelineOverlap},
		{"Planner", Planner},
		{"ParallelCompression", ParallelCompression},
		{"CodecShootout", CodecShootout},
		{"HotPath", HotPath},
		{"ServeFairness", ServeFairness},
		{"FaultResume", FaultResume},
		{"ObsOverhead", ObsOverhead},
		{"Integrity", Integrity},
	}
}

// All runs every registered driver in canonical order, returning results
// keyed by artifact ID in presentation order.
func All(scale Scale) ([]*Result, error) {
	drivers := Drivers()
	out := make([]*Result, 0, len(drivers))
	for _, d := range drivers {
		r, err := d.Fn(scale)
		if err != nil {
			return out, fmt.Errorf("experiments: %s: %w", d.ID, err)
		}
		out = append(out, r)
	}
	return out, nil
}
