package experiments

import (
	"math"
	"strings"
	"testing"
)

func quick() Scale { return QuickScale() }

func TestTableI(t *testing.T) {
	res, err := TableI(quick())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "CLDHGH") || !strings.Contains(res.Text, "HACC-VX") {
		t.Fatalf("missing rows:\n%s", res.Text)
	}
	// Paper ranges: CLDHGH 0.92, HACC-XX 256.
	if math.Abs(res.Values["CLDHGH/range"]-0.92) > 0.02 {
		t.Errorf("CLDHGH range = %v", res.Values["CLDHGH/range"])
	}
	if math.Abs(res.Values["HACC-XX/range"]-256) > 2 {
		t.Errorf("HACC-XX range = %v", res.Values["HACC-XX/range"])
	}
}

func TestTableII(t *testing.T) {
	res, err := TableII(quick())
	if err != nil {
		t.Fatal(err)
	}
	s1, s10, s100, s1000 := res.Values["speed_1M"], res.Values["speed_10M"],
		res.Values["speed_100M"], res.Values["speed_1000M"]
	if !(s1 < s10 && s10 < s100) {
		t.Fatalf("speed must rise with file size: %v %v %v", s1, s10, s100)
	}
	if s100/s1 < 2.5 {
		t.Errorf("small-file penalty too weak: 1M=%.0f 100M=%.0f", s1, s100)
	}
	if s1000 < 900 || s1000 > 1200 {
		t.Errorf("1000M speed %.0f outside calibrated band (paper 1060)", s1000)
	}
}

func TestTableV(t *testing.T) {
	res, err := TableV(quick())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "P-CR") {
		t.Fatalf("bad table:\n%s", res.Text)
	}
	if res.Values["cr_mean_rel_err"] > 0.6 {
		t.Errorf("CR prediction mean relative error %.2f too high", res.Values["cr_mean_rel_err"])
	}
}

func TestTableVI(t *testing.T) {
	res, err := TableVI(quick())
	if err != nil {
		t.Fatal(err)
	}
	if res.Values["psnr_rmse"] <= 0 || res.Values["psnr_rmse"] > 45 {
		t.Errorf("CESM PSNR RMSE = %.2f (paper ~13)", res.Values["psnr_rmse"])
	}
}

func TestTableVII(t *testing.T) {
	res, err := TableVII(quick())
	if err != nil {
		t.Fatal(err)
	}
	if res.Values["psnr_rmse"] <= 0 || res.Values["psnr_rmse"] > 45 {
		t.Errorf("ISABEL PSNR RMSE = %.2f (paper ~14)", res.Values["psnr_rmse"])
	}
}

func TestTableVIII(t *testing.T) {
	res, err := TableVIII(quick())
	if err != nil {
		t.Fatal(err)
	}
	// Every route must show a positive gain; the paper range is 41%-91%.
	for _, key := range []string{
		"CESM/Anvil->Cori/gain", "CESM/Anvil->Bebop/gain", "CESM/Bebop->Cori/gain",
		"RTM/Anvil->Cori/gain", "RTM/Anvil->Bebop/gain", "RTM/Bebop->Cori/gain",
		"Miranda/Anvil->Cori/gain", "Miranda/Anvil->Bebop/gain", "Miranda/Bebop->Cori/gain",
	} {
		g, ok := res.Values[key]
		if !ok {
			t.Fatalf("missing %s", key)
		}
		if g <= 0.2 || g >= 0.99 {
			t.Errorf("%s = %.2f outside plausible band", key, g)
		}
	}
	// RTM on the slow link is the paper's best case (91%).
	if res.Values["RTM/Anvil->Bebop/gain"] < res.Values["Miranda/Anvil->Cori/gain"] {
		t.Errorf("RTM slow-link gain (%.2f) should exceed Miranda fast-link gain (%.2f)",
			res.Values["RTM/Anvil->Bebop/gain"], res.Values["Miranda/Anvil->Cori/gain"])
	}
}

func TestFig4(t *testing.T) {
	res, err := Fig4(quick())
	if err != nil {
		t.Fatal(err)
	}
	// Entropy/time correlation positive at the smallest bound.
	if res.Values["corr_eb_1e-06"] < 0 {
		t.Errorf("corr at eb=1e-6 = %.3f, want positive", res.Values["corr_eb_1e-06"])
	}
}

func TestFig5(t *testing.T) {
	res, err := Fig5(quick())
	if err != nil {
		t.Fatal(err)
	}
	if res.Values["corr_p0"] < 0.5 {
		t.Errorf("corr(p0, logCR) = %.3f, want strongly positive", res.Values["corr_p0"])
	}
	if res.Values["corr_qent"] > -0.5 {
		t.Errorf("corr(qent, logCR) = %.3f, want strongly negative", res.Values["corr_qent"])
	}
	if res.Values["corr_rrle"] < 0.3 {
		t.Errorf("corr(rrle, logCR) = %.3f, want positive", res.Values["corr_rrle"])
	}
}

func TestFig6(t *testing.T) {
	res, err := Fig6(quick())
	if err != nil {
		t.Fatal(err)
	}
	if res.Values["model_rel_err"] > 0.8 {
		t.Errorf("model relative error %.2f too high", res.Values["model_rel_err"])
	}
}

func TestFig7And8(t *testing.T) {
	for _, fn := range []func(Scale) (*Result, error){Fig7, Fig8} {
		res, err := fn(quick())
		if err != nil {
			t.Fatal(err)
		}
		// p0 grows with eb while PSNR falls → negative correlation.
		if res.Values["corr_p0_psnr"] > 0 {
			t.Errorf("%s: corr(p0,psnr) = %.3f, want negative", res.ID, res.Values["corr_p0_psnr"])
		}
		if res.Values["corr_qent_psnr"] < 0 {
			t.Errorf("%s: corr(qent,psnr) = %.3f, want positive", res.ID, res.Values["corr_qent_psnr"])
		}
	}
}

func TestFig9(t *testing.T) {
	res, err := Fig9(quick())
	if err != nil {
		t.Fatal(err)
	}
	// Compression monotone non-increasing 1→16 nodes.
	if res.Values["CESM/compress_n16"] > res.Values["CESM/compress_n1"] {
		t.Error("compression should speed up with nodes")
	}
	// Decompression contention: 16 nodes slower than 4.
	if res.Values["CESM/decompress_n16"] <= res.Values["CESM/decompress_n4"] {
		t.Error("decompression should degrade past the I/O knee")
	}
}

func TestFig12(t *testing.T) {
	res, err := Fig12(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range []string{"Nyx", "CESM", "Miranda"} {
		w := res.Values[app+"/cr_ci_width"]
		if w < 0 {
			t.Errorf("%s: negative CI width", app)
		}
	}
}

func TestFig13(t *testing.T) {
	res, err := Fig13(quick())
	if err != nil {
		t.Fatal(err)
	}
	// Sampling must slash the overhead (paper: >70% → <5%; we assert a
	// generous 4x reduction to stay robust on loaded CI machines).
	full := res.Values["overhead_full_frac"]
	sampled := res.Values["overhead_sampled_frac"]
	if sampled >= full {
		t.Errorf("sampled overhead %.3f should be below full %.3f", sampled, full)
	}
}

func TestFig14(t *testing.T) {
	res, err := Fig14(quick())
	if err != nil {
		t.Fatal(err)
	}
	if res.Values["corr_qent_time"] < 0 {
		t.Errorf("corr(qent,time) = %.3f, want positive", res.Values["corr_qent_time"])
	}
}

func TestFig15(t *testing.T) {
	res, err := Fig15(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"CLDMED", "TMQ", "TROP_Z"} {
		p := res.Values[f+"/psnr"]
		if p < 50 {
			t.Errorf("%s PSNR = %.1f, want > 50 (no visible difference)", f, p)
		}
	}
	if !strings.Contains(res.Text, "original:") {
		t.Error("missing ASCII render")
	}
}

func TestFig16(t *testing.T) {
	res, err := Fig16(quick())
	if err != nil {
		t.Fatal(err)
	}
	for key, v := range res.Values {
		if strings.HasSuffix(key, "/speedup") && v <= 1 {
			t.Errorf("%s = %.2f, compression should win", key, v)
		}
	}
	// Slow link (Anvil->Bebop) benefits more than fast link for RTM.
	if res.Values["RTM/Anvil->Bebop/speedup"] <= res.Values["RTM/Anvil->Cori/speedup"]*0.8 {
		t.Errorf("slow link should benefit at least comparably: bebop=%.1f cori=%.1f",
			res.Values["RTM/Anvil->Bebop/speedup"], res.Values["RTM/Anvil->Cori/speedup"])
	}
}

func TestPlanner(t *testing.T) {
	res, err := Planner(quick())
	if err != nil {
		t.Fatal(err)
	}
	if res.Values["adaptive_e2e_sec"] > res.Values["fixed_e2e_sec"]*1.05 {
		t.Errorf("adaptive campaign end-to-end (%.4fs) worse than the fixed baseline (%.4fs)",
			res.Values["adaptive_e2e_sec"], res.Values["fixed_e2e_sec"])
	}
	if res.Values["adaptive_xfer_sec"] > res.Values["fixed_xfer_sec"]*1.05 {
		t.Errorf("adaptive transfer makespan (%.4fs) worse than the fixed baseline (%.4fs)",
			res.Values["adaptive_xfer_sec"], res.Values["fixed_xfer_sec"])
	}
	// The workload's floor separates fields, so the adaptive plan must
	// strictly beat the global bound on bytes moved at the same floor.
	if res.Values["adaptive_bytes"] >= res.Values["fixed_bytes"] {
		t.Errorf("adaptive moved %.0f bytes, fixed baseline %.0f — no win from per-field bounds",
			res.Values["adaptive_bytes"], res.Values["fixed_bytes"])
	}
	if res.Values["adaptive_min_psnr"] < 66 {
		t.Errorf("adaptive min PSNR %.1f dB far below the 76 dB floor", res.Values["adaptive_min_psnr"])
	}
	if res.Values["adaptive_pred_ratio"] <= 0 || res.Values["adaptive_ratio"] <= 0 {
		t.Error("predicted-vs-actual ratio missing from the artifact")
	}
	if !strings.Contains(res.Text, "predicted vs actual") {
		t.Error("artifact text missing the predicted-vs-actual line")
	}
}

func TestParallelCompression(t *testing.T) {
	res, err := ParallelCompression(quick())
	if err != nil {
		t.Fatal(err)
	}
	if res.Values["digest_match"] != 1 {
		t.Fatal("decompressed output differs across endpoint worker counts")
	}
	if res.Values["config/chunks"] <= res.Values["config/fields"] {
		t.Fatalf("fields did not split: %v chunks for %v fields",
			res.Values["config/chunks"], res.Values["config/fields"])
	}
	if res.Values["config/chunk_mb"] <= 0 {
		t.Fatal("chunk/worker configuration missing from the artifact")
	}
	// The fan-out's per-chunk dispatch cost is modeled wall time, so the
	// 8-vs-1 worker speedup is robust to the host's core count.
	if s := res.Values["speedup_8v1"]; s < 1.4 {
		t.Errorf("8-worker speedup %.2fx below the 1.4x floor", s)
	}
	// Parallelism-aware prediction stays in the measured ballpark.
	if e := res.Values["pred_compress_relerr"]; e > 0.35 || e < -0.35 {
		t.Errorf("planner compress-wall prediction off by %+.0f%%", 100*e)
	}
	if !strings.Contains(res.Text, "bit-identical") {
		t.Error("artifact text missing the bit-identity line")
	}
}

func TestCodecShootout(t *testing.T) {
	res, err := CodecShootout(quick())
	if err != nil {
		t.Fatal(err)
	}
	// The acceptance bar: the ultra-fast codec keeps a >= 3x compression
	// speed edge while both codecs honour the bound at comparable PSNR.
	if s := res.Values["speedup_szx"]; s < 3 {
		t.Errorf("szx speedup %.1fx below the 3x floor", s)
	}
	for _, c := range shootoutCodecs {
		if p := res.Values[c+"/psnr_db"]; p < res.Values["config/floor_db"] {
			t.Errorf("%s PSNR %.1f dB below the artifact's %v dB floor", c, p, res.Values["config/floor_db"])
		}
		if res.Values[c+"/ratio"] <= 1 {
			t.Errorf("%s ratio %.2f did not compress", c, res.Values[c+"/ratio"])
		}
	}
	if res.Values["sz3/ratio"] <= res.Values["szx/ratio"] {
		t.Errorf("expected sz3 ratio (%.1f) above szx (%.1f) — the trade the planner arbitrates",
			res.Values["sz3/ratio"], res.Values["szx/ratio"])
	}
	// Codec-aware planning separates the links under one floor: szx
	// dominates the fast link, sz3 the slow one. The slow-link half of the
	// claim depends on honestly *measured* compression speed, which the
	// race detector slows ~10x — enough to move the crossover past the
	// 100 MB/s link — so it is only asserted on uninstrumented builds
	// (planner_test's synthetic-model selection test covers the property
	// deterministically everywhere).
	fastShare, slowShare := res.Values["szx_share_fast"], res.Values["szx_share_slow"]
	if fastShare < 0.5 {
		t.Errorf("fast link szx share %.2f: planner should prefer the fast codec when compression dominates", fastShare)
	}
	if !raceEnabled && slowShare > 0.5 {
		t.Errorf("slow link szx share %.2f: planner should prefer the high-ratio codec when bandwidth dominates", slowShare)
	}
	if res.Values["e2e_fast_szx_wins"] != 1 {
		t.Error("szx should win the modelled end-to-end race on the fast link")
	}
	if !strings.Contains(res.Text, "codec-aware planner") {
		t.Error("artifact text missing the planner line")
	}
}

func TestServeFairness(t *testing.T) {
	res, err := ServeFairness(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	// The acceptance bar: equal-weight tenants on one shared link see
	// near-equal throughput. The race detector's instrumentation adds
	// scheduling jitter, so the floor is relaxed on instrumented builds.
	floor := 0.9
	if raceEnabled {
		floor = 0.7
	}
	if j := res.Values["jain"]; j < floor {
		t.Errorf("Jain fairness index %.3f below the %.1f floor for equal-weight tenants", j, floor)
	}
	// Link conservation: six concurrent campaigns may never move bytes
	// faster than the shared link's bandwidth.
	if agg, link := res.Values["aggregate_mbps"], res.Values["link_mbps"]; agg > link*1.02 {
		t.Errorf("aggregate throughput %.2f MB/s exceeds the %.2f MB/s link", agg, link)
	}
	// A mid-stage cancel settles promptly: the transport aborts paced
	// sends on ctx.Done rather than sleeping them out.
	ceiling := 1.0
	if raceEnabled {
		ceiling = 3.0
	}
	if l := res.Values["cancel_latency_sec"]; l > ceiling {
		t.Errorf("mid-stage cancel took %.2fs to settle (ceiling %.1fs)", l, ceiling)
	}
	for _, tn := range serveTenantNames {
		if res.Values["tput_"+tn] <= 0 {
			t.Errorf("tenant %s reported no throughput", tn)
		}
	}
	if !strings.Contains(res.Text, "Jain fairness index") {
		t.Error("artifact text missing the fairness line")
	}
}

func TestFaultResume(t *testing.T) {
	res, err := FaultResume(quick())
	if err != nil {
		t.Fatal(err)
	}
	// The driver already hard-fails on a digest mismatch; the values here
	// are the acceptance bars the artifact publishes.
	if res.Values["digest_match"] != 1 {
		t.Error("resumed campaign did not reproduce the uninterrupted digest")
	}
	if f := res.Values["resent_fraction"]; f >= 0.5 {
		t.Errorf("resume re-sent %.0f%% of the campaign's bytes, acceptance is < 50%%", f*100)
	}
	if res.Values["flap_retries"] <= 0 {
		t.Error("flap leg reported no retries")
	}
	if a := res.Values["permfail_attempts"]; a != 1 {
		t.Errorf("permanent failure took %.0f attempts to classify, want 1", a)
	}
	if s := res.Values["permfail_sends"]; s != 1 {
		t.Errorf("permanently failing endpoint saw %.0f sends, want exactly 1", s)
	}
	if !strings.Contains(res.Text, "recon digest") {
		t.Error("artifact text missing the digest line")
	}
}

func TestObsOverhead(t *testing.T) {
	res, err := ObsOverhead(quick())
	if err != nil {
		t.Fatal(err)
	}
	// The committed BENCH_obs.json gates overhead_frac < 0.02 on a quiet
	// host; under parallel test load the A/B timing wobbles, so the unit
	// test only rejects gross regressions (an accidentally-enabled tracer
	// or a lock on the hot path shows up as tens of percent).
	if f := res.Values["overhead_frac"]; f >= 0.10 {
		t.Errorf("disabled-observability overhead %.1f%%, want well under 10%%", f*100)
	}
	// The driver hard-fails when any stage span is missing; the values
	// here are the coverage facts the artifact publishes.
	if res.Values["enabled_spans"] <= 0 {
		t.Error("enabled run recorded no spans")
	}
	if res.Values["enabled_send_spans"] <= 0 {
		t.Error("enabled run recorded no send attempt spans")
	}
	if res.Values["metrics_series"] <= 0 {
		t.Error("enabled run snapshot carries no metric series")
	}
	if !strings.Contains(res.Text, "overhead") {
		t.Error("artifact text missing the overhead line")
	}
}

func TestIntegrity(t *testing.T) {
	res, err := Integrity(quick())
	if err != nil {
		t.Fatal(err)
	}
	// The driver hard-fails on digest mismatch, silent escapes, re-sent
	// clean groups, or a lying codec slipping past the audit; the values
	// here are the acceptance bars the artifact publishes.
	if res.Values["digest_match"] != 1 {
		t.Error("corrupted-link campaign did not reproduce the clean digest")
	}
	if res.Values["corrupt_groups"] <= 0 || res.Values["retransmits"] < res.Values["corrupt_groups"] {
		t.Errorf("recovery ledger inconsistent: %.0f corrupt groups, %.0f retransmits",
			res.Values["corrupt_groups"], res.Values["retransmits"])
	}
	if res.Values["silent_escapes"] != 0 {
		t.Errorf("%.0f injected corruptions escaped detection", res.Values["silent_escapes"])
	}
	if res.Values["frameless_fails"] != 1 {
		t.Error("frameless leg did not fail under garbling")
	}
	if res.Values["degraded_fields"] <= 0 || res.Values["degraded_bytes"] <= 0 {
		t.Error("quarantine leg shipped no lossless replacements")
	}
	if !strings.Contains(res.Text, "silent escapes") {
		t.Error("artifact text missing the silent-escape line")
	}
}
