package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"

	"ocelot/internal/codec"
	"ocelot/internal/core"
	"ocelot/internal/datagen"
	"ocelot/internal/dtree"
	"ocelot/internal/metrics"
	"ocelot/internal/planner"
	"ocelot/internal/sz"
	"ocelot/internal/szx"
	"ocelot/internal/wan"
)

// shootoutCodecs are the codecs the artifact compares, in emission order.
var shootoutCodecs = []string{sz.CodecName, szx.Name}

// Shootout links: a LAN-class path where compression time dominates the
// end-to-end wall, and a WAN-class path where every byte moved is
// expensive. The planner should land on opposite codecs across them.
func shootoutLinks() (fast, slow *wan.Link) {
	fast = &wan.Link{Name: "fast-lan-10GBps", BandwidthMBps: 10000,
		PerFileOverheadSec: 0.005, Concurrency: 8}
	slow = &wan.Link{Name: "slow-wan-100MBps", BandwidthMBps: 100,
		PerFileOverheadSec: 0.05, Concurrency: 4}
	return fast, slow
}

// shootoutPlanWorkers is the endpoint-scale compression parallelism the
// planner assumes (a multi-core DTN node, matching the paper's 16-node ×
// multi-core source endpoints). It sets where the codec crossover falls:
// parallel workers divide compression seconds but not link seconds, so a
// wide endpoint pushes the "slow enough that sz3's ratio wins" threshold
// well above the 100 MB/s WAN link.
const shootoutPlanWorkers = 32

// CodecShootout races the registered codecs end-to-end: the same
// multi-field campaign runs once per codec over a fast (10 GB/s LAN-like)
// and a slow (100 MB/s WAN-like) simulated link, measuring compression
// seconds, ratio, and PSNR, and modelling the pipelined end-to-end wall
// per codec per link. A quality model trained across both codecs then
// drives the planner on each link under one PSNR floor — the artifact's
// point: with a codec axis in the candidate grid, the planner picks the
// ultra-fast szx on the fast link (compression-bound) and the high-ratio
// sz3 on the slow link (bandwidth-bound). No global codec knob can do
// both at once.
func CodecShootout(scale Scale) (*Result, error) {
	scale = scale.timing()
	res := newResult("CodecShootout")

	const nFields = 8
	names := datagen.Fields("CESM")[:nFields]
	fields := make([]*datagen.Field, 0, nFields)
	for _, name := range names {
		f, err := datagen.Generate("CESM", name, scale.Shrink, scale.Seed)
		if err != nil {
			return nil, err
		}
		fields = append(fields, f)
	}
	fast, slow := shootoutLinks()
	links := []*wan.Link{fast, slow}
	ctx := context.Background()

	// One campaign per codec per link on the accounting-only transport
	// (deterministic link seconds, no sleeping): compression and ratio are
	// measured on real data, transfer is modelled on the realized
	// archives.
	type leg struct {
		run  *core.CampaignResult
		xfer float64 // link-model makespan over realized archives
		e2e  float64 // pipelined-wall model max(C,T)+min(C,T)/G
	}
	legs := map[string]map[string]*leg{} // codec → link → leg
	psnr := map[string]float64{}         // codec → min PSNR across fields
	for _, codecName := range shootoutCodecs {
		legs[codecName] = map[string]*leg{}
		for _, link := range links {
			r, err := core.Run(ctx, fields, core.CampaignSpec{
				RelErrorBound: 1e-3,
				Workers:       4,
				GroupParam:    4,
				Codec:         codecName,
				Transport:     &core.SimulatedWANTransport{Link: link, Timescale: -1},
			})
			if err != nil {
				return nil, fmt.Errorf("shootout %s over %s: %w", codecName, link.Name, err)
			}
			est, err := link.Estimate(r.GroupBytes, scale.Seed)
			if err != nil {
				return nil, err
			}
			c, tr, g := r.CompressSec, est.Seconds, float64(r.Groups)
			legs[codecName][link.Name] = &leg{
				run:  r,
				xfer: tr,
				e2e:  math.Max(c, tr) + math.Min(c, tr)/g,
			}
		}
		// PSNR is link-independent; measure it once per codec from the
		// fast-link campaign's configuration.
		minP := math.Inf(1)
		for _, f := range fields {
			rng := metrics.ComputeRange(f.Data).Range
			if rng <= 0 {
				rng = 1
			}
			stream, err := compressWithCodec(codecName, f, 1e-3*rng)
			if err != nil {
				return nil, err
			}
			recon, _, err := codec.Decompress(stream)
			if err != nil {
				return nil, err
			}
			p, err := metrics.PSNR(f.Data, recon)
			if err != nil {
				return nil, err
			}
			minP = math.Min(minP, p)
		}
		psnr[codecName] = minP
	}

	// Codec-aware planning: one model trained across both codecs, one PSNR
	// floor, two links. Training uses shrunken stand-ins with a different
	// seed so ground truth is not memorized point-for-point.
	cands, err := planner.CodecCandidates(shootoutCodecs)
	if err != nil {
		return nil, err
	}
	train := make([]*datagen.Field, 0, nFields)
	for _, name := range names {
		f, err := datagen.Generate("CESM", name, scale.Shrink*2, scale.Seed+1)
		if err != nil {
			return nil, err
		}
		train = append(train, f)
	}
	model, err := planner.TrainFromSweep(train, cands, dtree.Params{MaxDepth: 14})
	if err != nil {
		return nil, err
	}
	const floor = 60.0
	szxShare := map[string]float64{}
	planPicks := map[string]string{}
	for _, link := range links {
		plan, err := planner.Build(fields, model, planner.Options{
			Candidates: cands,
			MinPSNR:    floor,
			Link:       link,
			Workers:    shootoutPlanWorkers,
			Seed:       scale.Seed,
		})
		if err != nil {
			return nil, err
		}
		nSZX := 0
		counts := map[string]int{}
		for _, fp := range plan.Fields {
			counts[fp.Codec]++
			if fp.Codec == szx.Name {
				nSZX++
			}
		}
		szxShare[link.Name] = float64(nSZX) / float64(len(plan.Fields))
		planPicks[link.Name] = fmt.Sprintf("%v", counts)
	}

	sz3Fast, szxFast := legs[sz.CodecName][fast.Name], legs[szx.Name][fast.Name]
	sz3Slow, szxSlow := legs[sz.CodecName][slow.Name], legs[szx.Name][slow.Name]
	speedup := math.Inf(1)
	if szxFast.run.CompressSec > 0 {
		speedup = sz3Fast.run.CompressSec / szxFast.run.CompressSec
	}

	var sb strings.Builder
	sb.WriteString("CodecShootout: sz3 (high ratio) vs szx (ultra fast) end-to-end\n")
	sb.WriteString(fmt.Sprintf("%d CESM fields, %.1f MB raw, rel-eb 1e-3, groups=4; links: %s, %s\n\n",
		nFields, float64(sz3Fast.run.RawBytes)/1e6, fast.Name, slow.Name))
	sb.WriteString(fmt.Sprintf("%-6s %-18s %10s %8s %10s %10s %10s\n",
		"Codec", "Link", "Comp (s)", "Ratio", "PSNR(dB)", "Xfer (s)", "E2E (s)"))
	for _, codecName := range shootoutCodecs {
		for _, link := range links {
			l := legs[codecName][link.Name]
			sb.WriteString(fmt.Sprintf("%-6s %-18s %10.3f %8.1f %10.1f %10.3f %10.3f\n",
				codecName, link.Name, l.run.CompressSec, l.run.Ratio,
				psnr[codecName], l.xfer, l.e2e))
		}
	}
	sb.WriteString(fmt.Sprintf("\nszx compresses %.1fx faster; sz3 moves %.1fx fewer bytes\n",
		speedup, float64(szxFast.run.GroupedBytes)/float64(sz3Fast.run.GroupedBytes)))
	sb.WriteString(fmt.Sprintf("codec-aware planner (floor %.0f dB, %d workers): fast link picks %s; slow link picks %s\n",
		floor, shootoutPlanWorkers, planPicks[fast.Name], planPicks[slow.Name]))

	res.Text = sb.String()
	res.Values["config/fields"] = float64(nFields)
	res.Values["config/plan_workers"] = shootoutPlanWorkers
	res.Values["config/floor_db"] = floor
	for _, codecName := range shootoutCodecs {
		res.Values[codecName+"/compress_sec"] = legs[codecName][fast.Name].run.CompressSec
		res.Values[codecName+"/ratio"] = legs[codecName][fast.Name].run.Ratio
		res.Values[codecName+"/psnr_db"] = psnr[codecName]
		res.Values[codecName+"/xfer_fast_sec"] = legs[codecName][fast.Name].xfer
		res.Values[codecName+"/xfer_slow_sec"] = legs[codecName][slow.Name].xfer
		res.Values[codecName+"/e2e_fast_sec"] = legs[codecName][fast.Name].e2e
		res.Values[codecName+"/e2e_slow_sec"] = legs[codecName][slow.Name].e2e
	}
	res.Values["speedup_szx"] = speedup
	res.Values["szx_share_fast"] = szxShare[fast.Name]
	res.Values["szx_share_slow"] = szxShare[slow.Name]
	res.Values["e2e_fast_szx_wins"] = b2f(szxFast.e2e < sz3Fast.e2e)
	res.Values["e2e_slow_sz3_wins"] = b2f(sz3Slow.e2e < szxSlow.e2e)
	return res, nil
}

// compressWithCodec compresses one field through the registry with the
// named codec at an absolute bound.
func compressWithCodec(codecName string, f *datagen.Field, absEB float64) ([]byte, error) {
	cdc, err := codec.Lookup(codecName)
	if err != nil {
		return nil, err
	}
	return cdc.Compress(f.Data, f.Dims, codec.Params{AbsErrorBound: absEB})
}
