package integrity

import (
	"bytes"
	"errors"
	"testing"
)

func TestWrapVerifyRoundTrip(t *testing.T) {
	payload := []byte("packed group archive bytes")
	sums := []uint32{Checksum([]byte("member-a")), Checksum([]byte("member-b")), 0}
	framed := Wrap(payload, sums)
	if len(framed) != Overhead(len(sums))+len(payload) {
		t.Fatalf("frame length = %d, want %d", len(framed), Overhead(len(sums))+len(payload))
	}
	got, gotSums, err := Verify(framed)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload round trip: got %q want %q", got, payload)
	}
	if len(gotSums) != len(sums) {
		t.Fatalf("member sums: got %d want %d", len(gotSums), len(sums))
	}
	for i := range sums {
		if gotSums[i] != sums[i] {
			t.Fatalf("member sum %d: got %#08x want %#08x", i, gotSums[i], sums[i])
		}
	}
}

func TestVerifyEmptyPayloadNoMembers(t *testing.T) {
	framed := Wrap(nil, nil)
	payload, sums, err := Verify(framed)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if len(payload) != 0 || len(sums) != 0 {
		t.Fatalf("got payload %d bytes, %d sums; want empty", len(payload), len(sums))
	}
}

// Every single-bit flip anywhere in the frame must be detected.
func TestVerifyDetectsEveryBitFlip(t *testing.T) {
	payload := []byte("the quick brown fox jumps over the lazy dog")
	framed := Wrap(payload, []uint32{1, 2, 3})
	for pos := range framed {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), framed...)
			mut[pos] ^= 1 << bit
			if _, _, err := Verify(mut); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("flip byte %d bit %d: err = %v, want ErrCorrupt", pos, bit, err)
			}
		}
	}
}

func TestVerifyDetectsTruncation(t *testing.T) {
	framed := Wrap([]byte("payload"), []uint32{42})
	for cut := 0; cut < len(framed); cut++ {
		if _, _, err := Verify(framed[:cut]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncate to %d bytes: err = %v, want ErrCorrupt", cut, err)
		}
	}
}

func TestVerifyRejectsOversizedMemberCount(t *testing.T) {
	// A frame whose declared member count exceeds what its length can
	// hold must be rejected before any digest slice is allocated.
	framed := Wrap([]byte("p"), nil)
	framed[5], framed[6], framed[7], framed[8] = 0xff, 0xff, 0xff, 0x7f
	if _, _, err := Verify(framed); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestVerifyRejectsWrongMagicAndVersion(t *testing.T) {
	framed := Wrap([]byte("p"), nil)
	bad := append([]byte(nil), framed...)
	bad[0] = 'X'
	if _, _, err := Verify(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("magic: err = %v, want ErrCorrupt", err)
	}
	bad = append([]byte(nil), framed...)
	bad[4] = 99
	if _, _, err := Verify(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("version: err = %v, want ErrCorrupt", err)
	}
}

func TestChecksumIsCastagnoli(t *testing.T) {
	// CRC-32C of "123456789" is the well-known check value 0xE3069283.
	if got := Checksum([]byte("123456789")); got != 0xE3069283 {
		t.Fatalf("Checksum = %#08x, want 0xE3069283 (CRC-32C check value)", got)
	}
}
