// Package integrity implements the end-to-end checksum frame every packed
// campaign archive travels in. At pack time the engine wraps the group
// archive in an OCIF frame carrying CRC-32C (Castagnoli) digests — one per
// packed member plus one over the whole payload — and the verify stage
// checks the frame before a single byte is decompressed. Corruption
// anywhere between pack and verify (a flipped bit on the wire, a truncated
// archive on disk) therefore surfaces as a typed, retryable checksum error
// instead of a garbage reconstruction, mirroring the checksum-verified
// delivery contract of the Globus transfers the source paper rides on.
//
// Frame layout (all integers little-endian):
//
//	offset  size  field
//	0       4     magic "OCIF"
//	4       1     version (1)
//	5       4     n — member digest count
//	9       4     CRC-32C of the payload
//	13      4*n   CRC-32C of each packed member, in pack order
//	13+4n   4     CRC-32C of the header (bytes [0, 13+4n))
//	17+4n   ...   payload (the packed group archive)
//
// The trailing header CRC lets Verify distinguish a corrupted header from
// a corrupted payload and guarantees a bit flip anywhere in the frame is
// detected. Verify never allocates more than the frame itself can justify:
// the member-digest count is bounded by the frame length before the digest
// slice is built, so truncated or hostile frames cannot force oversized
// allocations (enforced by ocelotvet's alloccap analyzer).
package integrity

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// frameMagic is "OCIF" read little-endian.
const frameMagic uint32 = 'O' | 'C'<<8 | 'I'<<16 | 'F'<<24

// frameVersion is the current frame format version.
const frameVersion = 1

// headerFixed is the frame size before the member digests and payload:
// magic (4) + version (1) + count (4) + payload CRC (4).
const headerFixed = 13

// minFrame is the smallest well-formed frame: fixed header, zero member
// digests, header CRC, empty payload.
const minFrame = headerFixed + 4

// ErrCorrupt is the base error for every frame that fails verification —
// structurally malformed, truncated, or checksum-mismatched. Callers test
// with errors.Is; the campaign verify stage classifies it as detected
// corruption and re-requests the group.
var ErrCorrupt = errors.New("integrity: corrupt frame")

// castagnoli is the CRC-32C table shared by all checksum computations.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC-32C (Castagnoli) digest of b — the same digest
// recorded per member at pack time and in the campaign journal's group
// records.
func Checksum(b []byte) uint32 {
	return crc32.Checksum(b, castagnoli)
}

// Overhead returns the frame size added on top of the payload for a group
// with n packed members.
func Overhead(n int) int {
	return minFrame + 4*n
}

// Wrap frames payload with the given per-member digests (obtained from
// Checksum over each member's packed bytes, in pack order). The returned
// frame is a fresh slice; payload is not modified.
func Wrap(payload []byte, memberSums []uint32) []byte {
	n := len(memberSums)
	framed := make([]byte, Overhead(n)+len(payload))
	framed[0], framed[1], framed[2], framed[3] = 'O', 'C', 'I', 'F'
	framed[4] = frameVersion
	binary.LittleEndian.PutUint32(framed[5:], uint32(n))
	binary.LittleEndian.PutUint32(framed[9:], Checksum(payload))
	for i, s := range memberSums {
		binary.LittleEndian.PutUint32(framed[headerFixed+4*i:], s)
	}
	headerEnd := headerFixed + 4*n
	binary.LittleEndian.PutUint32(framed[headerEnd:], Checksum(framed[:headerEnd]))
	copy(framed[headerEnd+4:], payload)
	return framed
}

// Verify checks a frame end to end — structure, header CRC, payload CRC —
// and returns the payload and the per-member digests recorded at pack
// time. The payload aliases framed (no copy). Every failure wraps
// ErrCorrupt; Verify never panics on hostile input.
func Verify(framed []byte) (payload []byte, memberSums []uint32, err error) {
	if len(framed) < minFrame {
		return nil, nil, fmt.Errorf("%w: %d bytes is shorter than the %d-byte minimum", ErrCorrupt, len(framed), minFrame)
	}
	if binary.LittleEndian.Uint32(framed[0:]) != frameMagic {
		return nil, nil, fmt.Errorf("%w: bad magic %#08x", ErrCorrupt, binary.LittleEndian.Uint32(framed[0:]))
	}
	if framed[4] != frameVersion {
		return nil, nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, framed[4])
	}
	n := int(binary.LittleEndian.Uint32(framed[5:]))
	// Bound the digest count by the bytes actually present before
	// allocating: each member digest occupies 4 bytes of header.
	if n < 0 || n > (len(framed)-minFrame)/4 {
		return nil, nil, fmt.Errorf("%w: member count %d exceeds frame capacity", ErrCorrupt, n)
	}
	headerEnd := headerFixed + 4*n
	wantHeader := binary.LittleEndian.Uint32(framed[headerEnd:])
	if got := Checksum(framed[:headerEnd]); got != wantHeader {
		return nil, nil, fmt.Errorf("%w: header checksum mismatch (got %#08x want %#08x)", ErrCorrupt, got, wantHeader)
	}
	payload = framed[headerEnd+4:]
	wantPayload := binary.LittleEndian.Uint32(framed[9:])
	if got := Checksum(payload); got != wantPayload {
		return nil, nil, fmt.Errorf("%w: payload checksum mismatch (got %#08x want %#08x)", ErrCorrupt, got, wantPayload)
	}
	memberSums = make([]uint32, n)
	for i := range memberSums {
		memberSums[i] = binary.LittleEndian.Uint32(framed[headerFixed+4*i:])
	}
	return payload, memberSums, nil
}
