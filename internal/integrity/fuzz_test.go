package integrity

import (
	"bytes"
	"testing"
)

// FuzzIntegrityFrame feeds arbitrary bytes to Verify: corrupt or truncated
// frames must error (never panic) and never allocate past what the input
// length justifies, and any frame Verify accepts must round-trip through
// Wrap to the identical bytes.
func FuzzIntegrityFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("OCIF"))
	f.Add(Wrap(nil, nil))
	f.Add(Wrap([]byte("payload"), []uint32{1, 2, 3}))
	trunc := Wrap([]byte("truncate me"), []uint32{7})
	f.Add(trunc[:len(trunc)-3])
	flip := Wrap([]byte("flip me"), []uint32{9, 9})
	flip[len(flip)-1] ^= 0x40
	f.Add(flip)
	huge := Wrap([]byte("n"), nil)
	huge[7] = 0xff // absurd member count vs frame length
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		payload, sums, err := Verify(data)
		if err != nil {
			return
		}
		if len(sums) > (len(data)-minFrame)/4 {
			t.Fatalf("accepted %d member sums from a %d-byte frame", len(sums), len(data))
		}
		// An accepted frame must re-encode to exactly the input bytes.
		if re := Wrap(payload, sums); !bytes.Equal(re, data) {
			t.Fatalf("accepted frame does not round-trip: %d bytes in, %d bytes re-encoded", len(data), len(re))
		}
	})
}
