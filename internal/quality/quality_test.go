package quality

import (
	"math"
	"testing"

	"ocelot/internal/datagen"
	"ocelot/internal/dtree"
	"ocelot/internal/sz"
)

// smallFields returns a compact mixed-application training corpus.
func smallFields(t testing.TB) []*datagen.Field {
	t.Helper()
	var out []*datagen.Field
	for _, spec := range []struct {
		app    string
		fields []string
		shrink int
	}{
		{"CESM", []string{"TMQ", "CLDHGH", "FLDSC", "LHFLX"}, 32},
		{"Miranda", []string{"density", "velocityx"}, 24},
		{"ISABEL", []string{"Pf48", "Wf48"}, 16},
	} {
		for _, name := range spec.fields {
			f, err := datagen.Generate(spec.app, name, spec.shrink, 7)
			if err != nil {
				t.Fatalf("%s/%s: %v", spec.app, name, err)
			}
			out = append(out, f)
		}
	}
	return out
}

func collectSmall(t testing.TB, withPSNR bool) []Sample {
	t.Helper()
	fields := smallFields(t)
	samples, err := Collect(fields, CollectOptions{
		ErrorBounds:  []float64{1e-5, 1e-4, 1e-3, 1e-2, 1e-1},
		SampleStride: 20,
		WithPSNR:     withPSNR,
	})
	if err != nil {
		t.Fatal(err)
	}
	return samples
}

func TestDefaultErrorBounds(t *testing.T) {
	ebs := DefaultErrorBounds()
	if len(ebs) != 11 {
		t.Fatalf("want 11 bounds, got %d", len(ebs))
	}
	if math.Abs(ebs[0]-1e-6) > 1e-12 || math.Abs(ebs[10]-1e-1) > 1e-9 {
		t.Fatalf("bounds endpoints: %v .. %v", ebs[0], ebs[10])
	}
	for i := 1; i < len(ebs); i++ {
		if ebs[i] <= ebs[i-1] {
			t.Fatal("bounds must increase")
		}
	}
}

func TestCollectProducesSamples(t *testing.T) {
	samples := collectSmall(t, false)
	wantN := 8 * 5
	if len(samples) != wantN {
		t.Fatalf("got %d samples, want %d", len(samples), wantN)
	}
	for _, s := range samples {
		if s.Ratio <= 0 {
			t.Errorf("%s/%s eb=%g: ratio %v", s.App, s.Field, s.EB, s.Ratio)
		}
		if s.SecPerMP < 0 {
			t.Errorf("negative time %v", s.SecPerMP)
		}
		if len(s.Feats) == 0 {
			t.Error("empty features")
		}
	}
}

func TestCollectErrors(t *testing.T) {
	if _, err := Collect(nil, CollectOptions{}); err == nil {
		t.Fatal("no fields must error")
	}
}

func TestTrainAndEstimate(t *testing.T) {
	samples := collectSmall(t, false)
	m, err := Train(samples, dtree.Params{MaxDepth: 10})
	if err != nil {
		t.Fatal(err)
	}
	if m.PSNR != nil {
		t.Error("PSNR tree should be nil without PSNR ground truth")
	}
	// In-sample prediction should be strongly correlated with truth.
	var relErrSum float64
	for _, s := range samples {
		est, err := m.EstimateFromFeatures(s.Feats, s.Points)
		if err != nil {
			t.Fatal(err)
		}
		re := math.Abs(est.Ratio-s.Ratio) / s.Ratio
		relErrSum += re
	}
	meanRelErr := relErrSum / float64(len(samples))
	if meanRelErr > 0.5 {
		t.Errorf("mean in-sample relative CR error %.3f too high", meanRelErr)
	}
}

func TestPSNRTraining(t *testing.T) {
	samples := collectSmall(t, true)
	train, test := SplitTrainTest(samples, 0.5, 3)
	m, err := Train(train, dtree.Params{MaxDepth: 10})
	if err != nil {
		t.Fatal(err)
	}
	if m.PSNR == nil {
		t.Fatal("PSNR tree missing")
	}
	res, err := m.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	// Paper reports PSNR RMSE ≈ 13-14 dB; allow a loose bound for the small
	// synthetic corpus.
	if res.PSNRRMSE > 40 {
		t.Errorf("PSNR RMSE %.1f dB too high", res.PSNRRMSE)
	}
	if len(res.RatioDiffs) != len(test) {
		t.Errorf("diff count %d != %d", len(res.RatioDiffs), len(test))
	}
}

func TestEstimateField(t *testing.T) {
	samples := collectSmall(t, false)
	m, err := Train(samples, dtree.Params{})
	if err != nil {
		t.Fatal(err)
	}
	f, err := datagen.Generate("CESM", "TREFHT", 32, 99)
	if err != nil {
		t.Fatal(err)
	}
	est, err := m.EstimateField(f.Data, f.Dims, 1e-3, sz.PredictorInterp)
	if err != nil {
		t.Fatal(err)
	}
	if est.Ratio <= 0 || math.IsNaN(est.Ratio) {
		t.Errorf("ratio = %v", est.Ratio)
	}
	if est.Seconds < 0 {
		t.Errorf("seconds = %v", est.Seconds)
	}
}

func TestSplitTrainTest(t *testing.T) {
	samples := make([]Sample, 100)
	for i := range samples {
		samples[i].Points = i
	}
	train, test := SplitTrainTest(samples, 0.3, 1)
	if len(train) != 30 || len(test) != 70 {
		t.Fatalf("split %d/%d", len(train), len(test))
	}
	// Deterministic.
	train2, _ := SplitTrainTest(samples, 0.3, 1)
	for i := range train {
		if train[i].Points != train2[i].Points {
			t.Fatal("split not deterministic")
		}
	}
	seen := map[int]bool{}
	for _, s := range train {
		seen[s.Points] = true
	}
	for _, s := range test {
		if seen[s.Points] {
			t.Fatal("overlap between train and test")
		}
	}
}

func TestConfidenceInterval(t *testing.T) {
	diffs := make([]float64, 100)
	for i := range diffs {
		diffs[i] = float64(i) // 0..99
	}
	lo, hi := ConfidenceInterval(diffs, 0.8)
	if lo > 15 || lo < 5 {
		t.Errorf("lo = %v", lo)
	}
	if hi < 85 || hi > 95 {
		t.Errorf("hi = %v", hi)
	}
	if l, h := ConfidenceInterval(nil, 0.8); l != 0 || h != 0 {
		t.Error("empty interval must be zero")
	}
}

func TestSaveLoad(t *testing.T) {
	samples := collectSmall(t, false)
	m, err := Train(samples, dtree.Params{MaxDepth: 6})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := m.Save()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Load(blob)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples[:10] {
		e1, _ := m.EstimateFromFeatures(s.Feats, s.Points)
		e2, _ := back.EstimateFromFeatures(s.Feats, s.Points)
		if e1.Ratio != e2.Ratio || e1.Seconds != e2.Seconds {
			t.Fatal("estimates drift after save/load")
		}
	}
	if _, err := Load([]byte(`{}`)); err == nil {
		t.Fatal("incomplete model must error")
	}
	if _, err := Load([]byte(`garbage`)); err == nil {
		t.Fatal("bad json must error")
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, dtree.Params{}); err == nil {
		t.Fatal("no samples must error")
	}
}

func TestEvaluateErrors(t *testing.T) {
	samples := collectSmall(t, false)
	m, err := Train(samples, dtree.Params{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Evaluate(nil); err == nil {
		t.Fatal("empty test set must error")
	}
}
