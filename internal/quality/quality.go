// Package quality implements the paper's compression-quality prediction
// workflow (Section VI): collect (features → measured quality) samples by
// compressing datasets at many error bounds, train decision-tree regressors
// for compression ratio, compression speed, and PSNR, and estimate the
// quality of unseen (dataset, config) pairs from a cheap sampling pass.
package quality

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"ocelot/internal/codec"
	"ocelot/internal/datagen"
	"ocelot/internal/dtree"
	"ocelot/internal/features"
	"ocelot/internal/metrics"
	"ocelot/internal/sz"
)

// DefaultErrorBounds are the 11 log-spaced bounds from 1e-6 to 1e-1 used by
// the paper's training sweep.
func DefaultErrorBounds() []float64 {
	out := make([]float64, 11)
	for i := range out {
		out[i] = math.Pow(10, -6+float64(i)*0.5)
	}
	return out
}

// Sample is one training observation: the extracted features plus the
// measured ground truth of an actual compression run.
type Sample struct {
	App      string    `json:"app"`
	Field    string    `json:"field"`
	EB       float64   `json:"eb"`
	Feats    []float64 `json:"features"`
	Ratio    float64   `json:"ratio"`        // raw bytes / compressed bytes
	SecPerMP float64   `json:"secPerMegapt"` // compression seconds per 1e6 points
	PSNR     float64   `json:"psnr"`         // dB; capped for perfect recon
	Points   int       `json:"points"`
}

// CollectOptions configures ground-truth collection.
type CollectOptions struct {
	// ErrorBounds to sweep; nil selects DefaultErrorBounds.
	ErrorBounds []float64
	// Predictor for the compression pipeline; 0 selects interp. Only
	// meaningful for codecs whose Caps report predictor support (sz3).
	Predictor sz.Predictor
	// Codec names the registered codec whose ground truth is collected
	// ("" = sz3). Features are extracted with the same codec's probe, so
	// the trained trees predict that codec's ratio/time/PSNR.
	Codec string
	// SampleStride for feature extraction; ≤ 0 selects 100.
	SampleStride int
	// WithPSNR also decompresses to measure distortion (2× slower).
	WithPSNR bool
	// Now allows tests to inject a clock; nil uses time.Now.
	Now func() time.Time
}

// psnrCap replaces +Inf PSNR (perfect reconstruction) so the tree can
// regress on finite targets.
const psnrCap = 200.0

// Collect compresses every field at every error bound and returns the
// feature/ground-truth samples.
func Collect(fields []*datagen.Field, opts CollectOptions) ([]Sample, error) {
	if len(fields) == 0 {
		return nil, errors.New("quality: no fields")
	}
	ebs := opts.ErrorBounds
	if ebs == nil {
		ebs = DefaultErrorBounds()
	}
	now := opts.Now
	if now == nil {
		now = time.Now
	}
	codecName, err := codec.Normalize(opts.Codec)
	if err != nil {
		return nil, fmt.Errorf("quality: %w", err)
	}
	var cdc codec.Codec
	if codecName != sz.CodecName {
		if cdc, err = codec.Lookup(codecName); err != nil {
			return nil, fmt.Errorf("quality: %w", err)
		}
	}
	samples := make([]Sample, 0, len(fields)*len(ebs))
	for _, f := range fields {
		// The paper applies value-range-relative bounds per field so that a
		// "1e-3" setting is comparable across fields with wildly different
		// scales; we do the same by resolving to an absolute bound here.
		stride := opts.SampleStride
		if stride <= 0 {
			// Adaptive default: the paper's 1-in-100 sampling assumes
			// multi-megapoint files; small (test-scale) fields need a denser
			// stride so the compressor features stay statistically sound.
			stride = f.NumPoints() / 2000
			if stride < 1 {
				stride = 1
			}
			if stride > 100 {
				stride = 100
			}
		}
		for _, eb := range ebs {
			// Resolve the relative bound through the one canonical resolver so
			// degenerate ranges (constant, NaN, Inf fields) use the same
			// fallback the compressor itself applies.
			absEB := sz.Config{ErrorBound: eb, BoundMode: sz.BoundRelative}.AbsoluteBound(f.Data)
			cfg := sz.DefaultConfig(absEB)
			if opts.Predictor != 0 {
				cfg.Predictor = opts.Predictor
			}
			fv, err := features.Extract(f.Data, f.Dims, cfg, features.Options{
				SampleStride: stride,
				Codec:        codecName,
			})
			if err != nil {
				return nil, fmt.Errorf("quality: extract %s eb=%g: %w", f.ID(), eb, err)
			}
			// Keep the config feature on the *relative* scale so fields of
			// different magnitude share a feature space.
			vec := fv.Slice()
			vec[0] = math.Log10(eb)

			start := now()
			var stream []byte
			if cdc != nil {
				stream, err = cdc.Compress(f.Data, f.Dims, codec.Params{AbsErrorBound: absEB})
			} else {
				stream, _, err = sz.Compress(f.Data, f.Dims, cfg)
			}
			if err != nil {
				return nil, fmt.Errorf("quality: compress %s eb=%g: %w", f.ID(), eb, err)
			}
			elapsed := now().Sub(start).Seconds()
			s := Sample{
				App:      f.App,
				Field:    f.Name,
				EB:       eb,
				Feats:    vec,
				Ratio:    metrics.CompressionRatio(f.RawBytes(), len(stream)),
				SecPerMP: elapsed / (float64(f.NumPoints()) / 1e6),
				Points:   f.NumPoints(),
			}
			if opts.WithPSNR {
				recon, _, err := codec.Decompress(stream)
				if err != nil {
					return nil, fmt.Errorf("quality: decompress %s: %w", f.ID(), err)
				}
				p, err := metrics.PSNR(f.Data, recon)
				if err != nil {
					return nil, err
				}
				if math.IsInf(p, 1) || p > psnrCap {
					p = psnrCap
				}
				s.PSNR = p
			}
			samples = append(samples, s)
		}
	}
	return samples, nil
}

// Model bundles the three regressors of the paper's predictor. The
// top-level trees belong to one codec (DefaultCodec, historically sz3);
// additional codecs carry their own tree sets under Codecs, because the
// mapping from features to ratio/time/PSNR is codec-specific — an
// ultra-fast codec is cheap everywhere and compresses less everywhere,
// and the planner needs both curves to trade speed against ratio.
type Model struct {
	Ratio *dtree.Tree `json:"ratio"`
	Time  *dtree.Tree `json:"time"`
	PSNR  *dtree.Tree `json:"psnr,omitempty"`
	// DefaultCodec names the codec the top-level trees were trained for;
	// empty means sz3 (so models saved before the codec registry existed
	// load unchanged).
	DefaultCodec string `json:"defaultCodec,omitempty"`
	// Codecs holds tree sets for additional codecs, keyed by registry
	// name. Sub-models never nest further.
	Codecs map[string]*Model `json:"codecs,omitempty"`
}

// CodecNames lists the codecs this model can estimate, default first,
// the rest sorted.
func (m *Model) CodecNames() []string {
	def := m.DefaultCodec
	if def == "" {
		def = sz.CodecName
	}
	out := []string{def}
	rest := make([]string, 0, len(m.Codecs))
	for name := range m.Codecs {
		if name != def {
			rest = append(rest, name)
		}
	}
	sort.Strings(rest)
	return append(out, rest...)
}

// ForCodec returns the tree set for a codec name ("" = the model's
// default). Errors name the codecs the model actually covers.
func (m *Model) ForCodec(name string) (*Model, error) {
	def := m.DefaultCodec
	if def == "" {
		def = sz.CodecName
	}
	if name == "" || name == def {
		return m, nil
	}
	if sub, ok := m.Codecs[name]; ok && sub != nil {
		return sub, nil
	}
	return nil, fmt.Errorf("quality: model has no trees for %w",
		codec.UnknownName("codec", name, m.CodecNames()))
}

// Train fits the model on samples. PSNR training is skipped when the
// samples carry no PSNR ground truth.
func Train(samples []Sample, params dtree.Params) (*Model, error) {
	if len(samples) == 0 {
		return nil, errors.New("quality: no samples")
	}
	x := make([][]float64, len(samples))
	ratio := make([]float64, len(samples))
	tsec := make([]float64, len(samples))
	psnr := make([]float64, len(samples))
	hasPSNR := false
	for i, s := range samples {
		x[i] = s.Feats
		// Regress log2(ratio): ratios span orders of magnitude and the
		// paper's error metric is multiplicative in spirit.
		ratio[i] = math.Log2(math.Max(s.Ratio, 1e-6))
		tsec[i] = s.SecPerMP
		psnr[i] = s.PSNR
		if s.PSNR != 0 {
			hasPSNR = true
		}
	}
	m := &Model{}
	var err error
	if m.Ratio, err = dtree.Train(x, ratio, params); err != nil {
		return nil, fmt.Errorf("quality: ratio model: %w", err)
	}
	if m.Time, err = dtree.Train(x, tsec, params); err != nil {
		return nil, fmt.Errorf("quality: time model: %w", err)
	}
	if hasPSNR {
		if m.PSNR, err = dtree.Train(x, psnr, params); err != nil {
			return nil, fmt.Errorf("quality: psnr model: %w", err)
		}
	}
	return m, nil
}

// Estimate is a predicted compression outcome.
type Estimate struct {
	Ratio   float64 `json:"ratio"`
	Seconds float64 `json:"seconds"` // predicted compression wall time
	PSNR    float64 `json:"psnr"`    // 0 when the model has no PSNR tree
}

// EstimateFromFeatures predicts quality for a prepared feature vector and
// point count.
func (m *Model) EstimateFromFeatures(fv []float64, numPoints int) (*Estimate, error) {
	logR, err := m.Ratio.Predict(fv)
	if err != nil {
		return nil, err
	}
	secPerMP, err := m.Time.Predict(fv)
	if err != nil {
		return nil, err
	}
	est := &Estimate{
		Ratio:   math.Pow(2, logR),
		Seconds: secPerMP * float64(numPoints) / 1e6,
	}
	if m.PSNR != nil {
		if est.PSNR, err = m.PSNR.Predict(fv); err != nil {
			return nil, err
		}
	}
	return est, nil
}

// EstimateField extracts features from data (cheap sampling pass) and
// predicts the quality of compressing it with the given relative error
// bound. relEB is interpreted against the field's value range, matching the
// training convention. The model's default codec is assumed; use
// EstimateFieldCodec to score another registered codec.
func (m *Model) EstimateField(data []float64, dims []int, relEB float64, pred sz.Predictor) (*Estimate, error) {
	return m.EstimateFieldCodec(data, dims, relEB, pred, "")
}

// EstimateFieldCodec is EstimateField against a specific codec's trees:
// features come from that codec's sampling probe and predictions from its
// tree set, so the planner can score the same field under every codec in
// its candidate grid.
func (m *Model) EstimateFieldCodec(data []float64, dims []int, relEB float64, pred sz.Predictor, codecName string) (*Estimate, error) {
	sub, err := m.ForCodec(codecName)
	if err != nil {
		return nil, err
	}
	// Resolve "" to the codec the trees were actually trained for before
	// extracting features: a model whose default is not sz3 must probe
	// with its own codec, or the compressor features feed the wrong trees.
	if codecName == "" {
		if codecName = m.DefaultCodec; codecName == "" {
			codecName = sz.CodecName
		}
	}
	// One resolver for rel→abs bounds: sz.Config.AbsoluteBound, so the
	// estimate quantizes at exactly the bound a real compression run uses,
	// including the degenerate-range fallback for NaN/Inf/constant fields.
	cfg := sz.DefaultConfig(sz.Config{ErrorBound: relEB, BoundMode: sz.BoundRelative}.AbsoluteBound(data))
	if pred != 0 {
		cfg.Predictor = pred
	}
	stride := len(data) / 2000
	if stride < 1 {
		stride = 1
	}
	if stride > 100 {
		stride = 100
	}
	fv, err := features.Extract(data, dims, cfg, features.Options{
		SampleStride: stride,
		Codec:        codecName,
	})
	if err != nil {
		return nil, err
	}
	vec := fv.Slice()
	vec[0] = math.Log10(relEB)
	return sub.EstimateFromFeatures(vec, len(data))
}

// SplitTrainTest partitions samples with the given training fraction.
// Shuffling is deterministic in seed.
func SplitTrainTest(samples []Sample, trainFrac float64, seed int64) (train, test []Sample) {
	idx := rand.New(rand.NewSource(seed)).Perm(len(samples))
	nTrain := int(float64(len(samples)) * trainFrac)
	if nTrain < 1 && len(samples) > 0 {
		nTrain = 1
	}
	for i, j := range idx {
		if i < nTrain {
			train = append(train, samples[j])
		} else {
			test = append(test, samples[j])
		}
	}
	return train, test
}

// EvalResult summarizes prediction errors on a held-out set.
type EvalResult struct {
	RatioDiffs []float64 // predicted − real compression ratio
	TimeDiffs  []float64 // predicted − real seconds
	PSNRDiffs  []float64 // predicted − real dB
	PSNRRMSE   float64
}

// Evaluate scores the model against held-out samples.
func (m *Model) Evaluate(test []Sample) (*EvalResult, error) {
	if len(test) == 0 {
		return nil, errors.New("quality: empty test set")
	}
	res := &EvalResult{}
	var psnrSSE float64
	nPSNR := 0
	for _, s := range test {
		est, err := m.EstimateFromFeatures(s.Feats, s.Points)
		if err != nil {
			return nil, err
		}
		res.RatioDiffs = append(res.RatioDiffs, est.Ratio-s.Ratio)
		realSec := s.SecPerMP * float64(s.Points) / 1e6
		res.TimeDiffs = append(res.TimeDiffs, est.Seconds-realSec)
		if m.PSNR != nil && s.PSNR != 0 {
			d := est.PSNR - s.PSNR
			res.PSNRDiffs = append(res.PSNRDiffs, d)
			psnrSSE += d * d
			nPSNR++
		}
	}
	if nPSNR > 0 {
		res.PSNRRMSE = math.Sqrt(psnrSSE / float64(nPSNR))
	}
	return res, nil
}

// ConfidenceInterval returns the central-fraction interval of diffs, e.g.
// frac = 0.8 gives the paper's Fig 12 80% box.
func ConfidenceInterval(diffs []float64, frac float64) (lo, hi float64) {
	if len(diffs) == 0 {
		return 0, 0
	}
	sorted := make([]float64, len(diffs))
	copy(sorted, diffs)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	edge := (1 - frac) / 2
	loIdx := int(edge * float64(len(sorted)))
	hiIdx := int((1 - edge) * float64(len(sorted)))
	if hiIdx >= len(sorted) {
		hiIdx = len(sorted) - 1
	}
	return sorted[loIdx], sorted[hiIdx]
}

// MarshalJSON / UnmarshalJSON provide model persistence.

// Save serializes the model to JSON.
func (m *Model) Save() ([]byte, error) { return json.Marshal(m) }

// Load deserializes a model saved with Save.
func Load(blob []byte) (*Model, error) {
	var m Model
	if err := json.Unmarshal(blob, &m); err != nil {
		return nil, err
	}
	if m.Ratio == nil || m.Time == nil {
		return nil, errors.New("quality: incomplete model")
	}
	return &m, nil
}
