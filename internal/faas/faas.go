// Package faas is an in-process federated Function-as-a-Service fabric in
// the style of funcX: a central service where functions are registered, a
// set of user-deployed endpoints that execute them, task submission with
// futures, batch submission, and a container-warming model (first execution
// of a function on an endpoint pays a cold-start cost).
//
// Ocelot uses it to orchestrate remote compression and decompression
// without logging in to the source or destination machines, exactly as the
// paper describes.
package faas

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"ocelot/internal/obs"
)

// Function is an executable registered with the service. Payload and result
// are opaque to the fabric.
type Function func(ctx context.Context, payload interface{}) (interface{}, error)

// TaskID identifies a submitted task.
type TaskID string

// TaskState tracks a task through its lifecycle.
type TaskState uint8

const (
	// StatePending means queued, not yet executing.
	StatePending TaskState = iota + 1
	// StateRunning means an endpoint worker picked it up.
	StateRunning
	// StateDone means finished (result or error available).
	StateDone
)

var (
	// ErrUnknownFunction is returned for unregistered function names.
	ErrUnknownFunction = errors.New("faas: unknown function")
	// ErrUnknownEndpoint is returned for unregistered endpoints.
	ErrUnknownEndpoint = errors.New("faas: unknown endpoint")
	// ErrUnknownTask is returned for unknown task IDs.
	ErrUnknownTask = errors.New("faas: unknown task")
	// ErrEndpointClosed is returned when submitting to a closed endpoint.
	ErrEndpointClosed = errors.New("faas: endpoint closed")
)

// task is the internal task record.
type task struct {
	id       TaskID
	fn       string
	payload  interface{}
	ctx      context.Context // the submitter's context; never nil
	state    TaskState
	result   interface{}
	err      error
	done     chan struct{}
	endpoint string
}

// Service is the central registry and result store.
type Service struct {
	mu        sync.Mutex
	fns       map[string]Function
	endpoints map[string]*Endpoint
	tasks     map[TaskID]*task
	nextID    int64
}

// NewService creates an empty fabric.
func NewService() *Service {
	return &Service{
		fns:       make(map[string]Function),
		endpoints: make(map[string]*Endpoint),
		tasks:     make(map[TaskID]*task),
	}
}

// RegisterFunction makes fn invokable under name. Re-registration replaces
// the implementation (like uploading a new function version).
func (s *Service) RegisterFunction(name string, fn Function) error {
	if name == "" || fn == nil {
		return errors.New("faas: invalid function registration")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fns[name] = fn
	return nil
}

// EndpointConfig tunes a deployed endpoint.
type EndpointConfig struct {
	// Workers is the endpoint's concurrent executor count; ≤ 0 means 4.
	Workers int
	// ColdStart is the container instantiation cost paid on the first
	// invocation of each function on this endpoint.
	ColdStart time.Duration
	// WarmStart is the per-invocation dispatch overhead afterwards.
	WarmStart time.Duration
	// QueueDepth bounds the endpoint's backlog; ≤ 0 means 1024.
	QueueDepth int
	// Metrics, when set, counts endpoint activity: faas_tasks_total,
	// faas_cold_starts_total vs faas_warm_starts_total, and the live
	// faas_queue_depth gauge. Nil costs pointer checks only.
	Metrics *obs.Registry
}

// Endpoint executes tasks for one remote site.
type Endpoint struct {
	name      string
	svc       *Service
	cfg       EndpointConfig
	queue     chan *task
	warm      map[string]bool
	warmMu    sync.Mutex
	wg        sync.WaitGroup
	closed    chan struct{}
	once      sync.Once
	aborted   chan struct{}
	abortOnce sync.Once

	// Metric handles resolved once at deploy (all nil-safe no-ops when the
	// config carries no registry).
	queueDepth *obs.Gauge
	coldStarts *obs.Counter
	warmStarts *obs.Counter
	tasks      *obs.Counter
}

// DeployEndpoint registers and starts an endpoint.
func (s *Service) DeployEndpoint(name string, cfg EndpointConfig) (*Endpoint, error) {
	if name == "" {
		return nil, errors.New("faas: endpoint needs a name")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1024
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.endpoints[name]; exists {
		return nil, fmt.Errorf("faas: endpoint %q already deployed", name)
	}
	ep := &Endpoint{
		name:       name,
		svc:        s,
		cfg:        cfg,
		queue:      make(chan *task, cfg.QueueDepth),
		warm:       make(map[string]bool),
		closed:     make(chan struct{}),
		aborted:    make(chan struct{}),
		queueDepth: cfg.Metrics.Gauge("faas_queue_depth"),
		coldStarts: cfg.Metrics.Counter("faas_cold_starts_total"),
		warmStarts: cfg.Metrics.Counter("faas_warm_starts_total"),
		tasks:      cfg.Metrics.Counter("faas_tasks_total"),
	}
	s.endpoints[name] = ep
	for w := 0; w < cfg.Workers; w++ {
		ep.wg.Add(1)
		go ep.worker()
	}
	return ep, nil
}

// Close drains the endpoint: queued tasks finish, then workers exit.
func (e *Endpoint) Close() {
	e.once.Do(func() {
		close(e.closed)
		close(e.queue)
	})
	e.wg.Wait()
	e.svc.mu.Lock()
	delete(e.svc.endpoints, e.name)
	e.svc.mu.Unlock()
}

// Abort tears the endpoint down without draining: tasks still queued (and
// tasks whose warming sleep has not finished) complete immediately with
// ErrEndpointClosed instead of executing, so a cancelled caller is not
// held hostage by a deep backlog. Function bodies already running are
// allowed to finish. Call Close afterwards to join the workers.
func (e *Endpoint) Abort() {
	e.abortOnce.Do(func() { close(e.aborted) })
}

func (e *Endpoint) worker() {
	defer e.wg.Done()
	for t := range e.queue {
		e.queueDepth.Add(-1)
		switch {
		case isAborted(e.aborted):
			e.finish(t, nil, fmt.Errorf("%w: %s", ErrEndpointClosed, e.name))
		case t.ctx.Err() != nil:
			// The submitter is gone: drain its queued tasks unexecuted, so a
			// cancelled campaign's chunk backlog collapses immediately instead
			// of compressing data nobody will collect.
			e.finish(t, nil, t.ctx.Err())
		default:
			e.execute(t)
		}
	}
}

// isAborted reports whether the aborted channel is closed.
func isAborted(ch <-chan struct{}) bool {
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

func (e *Endpoint) execute(t *task) {
	e.svc.mu.Lock()
	fn, ok := e.svc.fns[t.fn]
	t.state = StateRunning
	e.svc.mu.Unlock()
	if !ok {
		e.finish(t, nil, fmt.Errorf("%w: %s", ErrUnknownFunction, t.fn))
		return
	}
	// Container warming: cold start on first use of this function here.
	e.warmMu.Lock()
	isWarm := e.warm[t.fn]
	e.warm[t.fn] = true
	e.warmMu.Unlock()
	if isWarm {
		e.warmStarts.Inc()
	} else {
		e.coldStarts.Inc()
	}
	delay := e.cfg.WarmStart
	if !isWarm && e.cfg.ColdStart > 0 {
		delay = e.cfg.ColdStart
	}
	if delay > 0 {
		timer := time.NewTimer(delay)
		select {
		case <-e.aborted:
			timer.Stop()
			e.finish(t, nil, fmt.Errorf("%w: %s", ErrEndpointClosed, e.name))
			return
		case <-t.ctx.Done():
			timer.Stop()
			e.finish(t, nil, t.ctx.Err())
			return
		case <-timer.C:
		}
	}
	res, err := fn(t.ctx, t.payload)
	e.finish(t, res, err)
}

func (e *Endpoint) finish(t *task, res interface{}, err error) {
	e.svc.mu.Lock()
	t.result = res
	t.err = err
	t.state = StateDone
	e.svc.mu.Unlock()
	e.tasks.Inc()
	close(t.done)
}

// SubmitContext queues a function invocation on an endpoint and returns a
// TaskID, honouring ctx through the task's whole life: a submitter
// blocked on a full endpoint queue unblocks on cancel, tasks still queued
// (or in their warming sleep) when ctx dies complete immediately with the
// context error instead of executing, and the function body itself
// receives ctx — so a cancelled campaign's chunk backlog drains without
// doing the work. There is deliberately no context-free variant: a
// caller that cannot be cancelled passes its own root context and says so
// at its boundary, not here.
func (s *Service) SubmitContext(ctx context.Context, endpoint, fn string, payload interface{}) (TaskID, error) {
	return s.submit(ctx, endpoint, fn, payload)
}

func (s *Service) submit(ctx context.Context, endpoint, fn string, payload interface{}) (TaskID, error) {
	s.mu.Lock()
	ep, ok := s.endpoints[endpoint]
	if !ok {
		s.mu.Unlock()
		return "", fmt.Errorf("%w: %s", ErrUnknownEndpoint, endpoint)
	}
	if _, ok := s.fns[fn]; !ok {
		s.mu.Unlock()
		return "", fmt.Errorf("%w: %s", ErrUnknownFunction, fn)
	}
	s.nextID++
	id := TaskID("task-" + strconv.FormatInt(s.nextID, 10))
	t := &task{id: id, fn: fn, payload: payload, ctx: ctx, state: StatePending,
		done: make(chan struct{}), endpoint: endpoint}
	s.tasks[id] = t
	s.mu.Unlock()

	// drop removes a record that never reached a queue — no worker will
	// ever finish it, so keeping it would leak.
	drop := func() {
		s.mu.Lock()
		delete(s.tasks, id)
		s.mu.Unlock()
	}
	select {
	case <-ctx.Done():
		drop()
		return "", ctx.Err()
	case <-ep.closed:
		drop()
		return "", ErrEndpointClosed
	case ep.queue <- t:
		ep.queueDepth.Add(1)
		return id, nil
	}
}

// SubmitBatchContext submits the same function once per payload (funcX
// batching), honouring ctx between and during enqueues;
// already-submitted IDs are returned beside the error.
func (s *Service) SubmitBatchContext(ctx context.Context, endpoint, fn string, payloads []interface{}) ([]TaskID, error) {
	ids := make([]TaskID, 0, len(payloads))
	for _, p := range payloads {
		id, err := s.submit(ctx, endpoint, fn, p)
		if err != nil {
			return ids, err
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// Wait blocks until the task finishes or ctx is cancelled.
func (s *Service) Wait(ctx context.Context, id TaskID) (interface{}, error) {
	s.mu.Lock()
	t, ok := s.tasks[id]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownTask, id)
	}
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-t.done:
		return t.result, t.err
	}
}

// WaitAll waits for every task, returning results in order; the first error
// is returned but all tasks are awaited.
func (s *Service) WaitAll(ctx context.Context, ids []TaskID) ([]interface{}, error) {
	out := make([]interface{}, len(ids))
	var firstErr error
	for i, id := range ids {
		res, err := s.Wait(ctx, id)
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("faas: task %s: %w", id, err)
		}
		out[i] = res
	}
	return out, firstErr
}

// Forget releases the records — and therefore the held results — of
// finished tasks. High-volume callers (the campaign engine's chunk
// fan-out submits one task per chunk) call it after collecting results so
// the service does not accumulate every payload and result for its whole
// lifetime. Unfinished tasks are left untouched; forgotten IDs become
// ErrUnknownTask.
func (s *Service) Forget(ids ...TaskID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, id := range ids {
		if t, ok := s.tasks[id]; ok && t.state == StateDone {
			delete(s.tasks, id)
		}
	}
}

// State reports the current state of a task.
func (s *Service) State(id TaskID) (TaskState, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tasks[id]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownTask, id)
	}
	return t.state, nil
}

// Endpoints lists deployed endpoint names.
func (s *Service) Endpoints() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.endpoints))
	for n := range s.endpoints {
		out = append(out, n)
	}
	return out
}
