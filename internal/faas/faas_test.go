package faas

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func newFabric(t *testing.T, workers int) (*Service, *Endpoint) {
	t.Helper()
	svc := NewService()
	ep, err := svc.DeployEndpoint("anvil", EndpointConfig{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ep.Close)
	return svc, ep
}

func TestSubmitAndWait(t *testing.T) {
	svc, _ := newFabric(t, 2)
	if err := svc.RegisterFunction("double", func(ctx context.Context, p interface{}) (interface{}, error) {
		v, ok := p.(int)
		if !ok {
			return nil, errors.New("bad payload")
		}
		return v * 2, nil
	}); err != nil {
		t.Fatal(err)
	}
	id, err := svc.SubmitContext(context.Background(), "anvil", "double", 21)
	if err != nil {
		t.Fatal(err)
	}
	res, err := svc.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if res != 42 {
		t.Fatalf("res = %v", res)
	}
	st, err := svc.State(id)
	if err != nil {
		t.Fatal(err)
	}
	if st != StateDone {
		t.Fatalf("state = %v", st)
	}
}

func TestFunctionError(t *testing.T) {
	svc, _ := newFabric(t, 1)
	wantErr := errors.New("exploded")
	_ = svc.RegisterFunction("boom", func(ctx context.Context, p interface{}) (interface{}, error) {
		return nil, wantErr
	})
	id, err := svc.SubmitContext(context.Background(), "anvil", "boom", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Wait(context.Background(), id); !errors.Is(err, wantErr) {
		t.Fatalf("err = %v", err)
	}
}

func TestUnknownTargets(t *testing.T) {
	svc, _ := newFabric(t, 1)
	_ = svc.RegisterFunction("f", func(ctx context.Context, p interface{}) (interface{}, error) { return nil, nil })
	if _, err := svc.SubmitContext(context.Background(), "nope", "f", nil); !errors.Is(err, ErrUnknownEndpoint) {
		t.Fatalf("err = %v", err)
	}
	if _, err := svc.SubmitContext(context.Background(), "anvil", "nope", nil); !errors.Is(err, ErrUnknownFunction) {
		t.Fatalf("err = %v", err)
	}
	if _, err := svc.Wait(context.Background(), "task-999"); !errors.Is(err, ErrUnknownTask) {
		t.Fatalf("err = %v", err)
	}
	if _, err := svc.State("task-999"); !errors.Is(err, ErrUnknownTask) {
		t.Fatalf("err = %v", err)
	}
}

func TestRegisterValidation(t *testing.T) {
	svc := NewService()
	if err := svc.RegisterFunction("", nil); err == nil {
		t.Fatal("want error")
	}
	if _, err := svc.DeployEndpoint("", EndpointConfig{}); err == nil {
		t.Fatal("want error")
	}
	ep, err := svc.DeployEndpoint("e", EndpointConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	if _, err := svc.DeployEndpoint("e", EndpointConfig{}); err == nil {
		t.Fatal("duplicate endpoint must error")
	}
}

func TestBatchSubmission(t *testing.T) {
	svc, _ := newFabric(t, 4)
	_ = svc.RegisterFunction("square", func(ctx context.Context, p interface{}) (interface{}, error) {
		v := p.(int)
		return v * v, nil
	})
	payloads := make([]interface{}, 20)
	for i := range payloads {
		payloads[i] = i
	}
	ids, err := svc.SubmitBatchContext(context.Background(), "anvil", "square", payloads)
	if err != nil {
		t.Fatal(err)
	}
	results, err := svc.WaitAll(context.Background(), ids)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r != i*i {
			t.Fatalf("result[%d] = %v", i, r)
		}
	}
}

func TestContainerWarming(t *testing.T) {
	svc := NewService()
	ep, err := svc.DeployEndpoint("cold", EndpointConfig{
		Workers: 1, ColdStart: 30 * time.Millisecond, WarmStart: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	_ = svc.RegisterFunction("noop", func(ctx context.Context, p interface{}) (interface{}, error) {
		return nil, nil
	})
	timeInvoke := func() time.Duration {
		start := time.Now()
		id, err := svc.SubmitContext(context.Background(), "cold", "noop", nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := svc.Wait(context.Background(), id); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	cold := timeInvoke()
	warm := timeInvoke()
	if cold < 25*time.Millisecond {
		t.Fatalf("cold start too fast: %v", cold)
	}
	if warm >= cold {
		t.Fatalf("warm (%v) should beat cold (%v)", warm, cold)
	}
}

func TestWaitContextCancel(t *testing.T) {
	svc, _ := newFabric(t, 1)
	block := make(chan struct{})
	_ = svc.RegisterFunction("stall", func(ctx context.Context, p interface{}) (interface{}, error) {
		<-block
		return nil, nil
	})
	id, err := svc.SubmitContext(context.Background(), "anvil", "stall", nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := svc.Wait(ctx, id); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
	close(block)
	if _, err := svc.Wait(context.Background(), id); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentSubmitters(t *testing.T) {
	svc, _ := newFabric(t, 8)
	_ = svc.RegisterFunction("id", func(ctx context.Context, p interface{}) (interface{}, error) {
		return p, nil
	})
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				id, err := svc.SubmitContext(context.Background(), "anvil", "id", fmt.Sprintf("%d-%d", g, i))
				if err != nil {
					errs <- err
					return
				}
				res, err := svc.Wait(context.Background(), id)
				if err != nil {
					errs <- err
					return
				}
				if res != fmt.Sprintf("%d-%d", g, i) {
					errs <- fmt.Errorf("wrong result %v", res)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestEndpointsListing(t *testing.T) {
	svc, _ := newFabric(t, 1)
	eps := svc.Endpoints()
	if len(eps) != 1 || eps[0] != "anvil" {
		t.Fatalf("endpoints = %v", eps)
	}
}

func TestSubmitAfterClose(t *testing.T) {
	svc := NewService()
	ep, err := svc.DeployEndpoint("tmp", EndpointConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	_ = svc.RegisterFunction("f", func(ctx context.Context, p interface{}) (interface{}, error) { return nil, nil })
	ep.Close()
	if _, err := svc.SubmitContext(context.Background(), "tmp", "f", nil); err == nil {
		t.Fatal("submit to closed endpoint must error")
	}
}

func TestAbortDropsQueuedTasks(t *testing.T) {
	svc := NewService()
	if err := svc.RegisterFunction("slow", func(ctx context.Context, p interface{}) (interface{}, error) {
		time.Sleep(20 * time.Millisecond)
		return p, nil
	}); err != nil {
		t.Fatal(err)
	}
	ep, err := svc.DeployEndpoint("ep", EndpointConfig{Workers: 1, WarmStart: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	payloads := make([]interface{}, 50)
	for i := range payloads {
		payloads[i] = i
	}
	ids, err := svc.SubmitBatchContext(context.Background(), "ep", "slow", payloads)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond) // let the worker pick up the first task
	start := time.Now()
	ep.Abort()
	ep.Close()
	// Draining 50 tasks at ~30ms each would take ~1.5s; the abort must cut
	// that to at most the one in-flight task.
	if d := time.Since(start); d > 500*time.Millisecond {
		t.Fatalf("abort+close took %v, backlog was not dropped", d)
	}
	var dropped int
	for _, id := range ids {
		if _, err := svc.Wait(context.Background(), id); errors.Is(err, ErrEndpointClosed) {
			dropped++
		}
	}
	if dropped == 0 {
		t.Fatal("no queued task finished with ErrEndpointClosed")
	}
}

func TestForgetReleasesFinishedTasks(t *testing.T) {
	svc := NewService()
	if err := svc.RegisterFunction("echo", func(ctx context.Context, p interface{}) (interface{}, error) {
		return p, nil
	}); err != nil {
		t.Fatal(err)
	}
	ep, err := svc.DeployEndpoint("ep", EndpointConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	id, err := svc.SubmitContext(context.Background(), "ep", "echo", 42)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Wait(context.Background(), id); err != nil {
		t.Fatal(err)
	}
	svc.Forget(id)
	if _, err := svc.Wait(context.Background(), id); !errors.Is(err, ErrUnknownTask) {
		t.Fatalf("forgotten task still known: %v", err)
	}
	// Forget must leave unfinished tasks alone.
	block := make(chan struct{})
	if err := svc.RegisterFunction("block", func(ctx context.Context, p interface{}) (interface{}, error) {
		<-block
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	id2, err := svc.SubmitContext(context.Background(), "ep", "block", nil)
	if err != nil {
		t.Fatal(err)
	}
	svc.Forget(id2)
	close(block)
	if _, err := svc.Wait(context.Background(), id2); err != nil {
		t.Fatalf("unfinished task was forgotten: %v", err)
	}
}

func TestSubmitContextHonoursCancelOnFullQueue(t *testing.T) {
	svc := NewService()
	block := make(chan struct{})
	if err := svc.RegisterFunction("block", func(ctx context.Context, p interface{}) (interface{}, error) {
		<-block
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	ep, err := svc.DeployEndpoint("ep", EndpointConfig{Workers: 1, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		close(block)
		ep.Close()
	}()
	// Fill the worker and the 1-deep queue.
	payloads := []interface{}{1, 2}
	if _, err := svc.SubmitBatchContext(context.Background(), "ep", "block", payloads); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := svc.SubmitContext(ctx, "ep", "block", 3)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the submitter block on the queue
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("SubmitContext ignored cancellation while the queue was full")
	}
}

// A cancelled submitter's queued tasks must drain unexecuted: the worker
// skips them with the context error instead of running the function, and a
// task caught in its warming sleep returns within the cancel latency, not
// the cold-start delay.
func TestSubmitContextCancelDrainsQueue(t *testing.T) {
	svc := NewService()
	var executed atomic.Int64
	if err := svc.RegisterFunction("slow", func(ctx context.Context, payload interface{}) (interface{}, error) {
		executed.Add(1)
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(50 * time.Millisecond):
			return payload, nil
		}
	}); err != nil {
		t.Fatal(err)
	}
	ep, err := svc.DeployEndpoint("ep", EndpointConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()

	ctx, cancel := context.WithCancel(context.Background())
	payloads := make([]interface{}, 8)
	for i := range payloads {
		payloads[i] = i
	}
	ids, err := svc.SubmitBatchContext(ctx, "ep", "slow", payloads)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond) // let the lone worker start task 0
	cancel()

	start := time.Now()
	_, werr := svc.WaitAll(context.Background(), ids)
	if werr == nil {
		t.Fatal("cancelled batch completed without error")
	}
	if !errors.Is(werr, context.Canceled) {
		t.Fatalf("batch error %v, want context.Canceled", werr)
	}
	if wall := time.Since(start); wall > time.Second {
		t.Errorf("cancelled backlog took %v to drain, want prompt", wall)
	}
	// Only the task the worker had already picked up may have executed.
	if n := executed.Load(); n > 2 {
		t.Errorf("%d tasks executed after cancel, want the in-flight one only", n)
	}
}

// A task cancelled during its cold-start warming sleep returns promptly
// with the context error and never invokes the function.
func TestCancelDuringWarming(t *testing.T) {
	svc := NewService()
	var executed atomic.Int64
	if err := svc.RegisterFunction("fn", func(ctx context.Context, payload interface{}) (interface{}, error) {
		executed.Add(1)
		return payload, nil
	}); err != nil {
		t.Fatal(err)
	}
	ep, err := svc.DeployEndpoint("warmish", EndpointConfig{Workers: 1, ColdStart: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()

	ctx, cancel := context.WithCancel(context.Background())
	id, err := svc.SubmitContext(ctx, "warmish", "fn", 1)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond) // worker is now in the warming sleep
	cancel()
	start := time.Now()
	if _, err := svc.Wait(context.Background(), id); !errors.Is(err, context.Canceled) {
		t.Fatalf("warming task error %v, want context.Canceled", err)
	}
	if wall := time.Since(start); wall > time.Second {
		t.Errorf("warming task took %v to cancel, want well under the 5s cold start", wall)
	}
	if executed.Load() != 0 {
		t.Error("function body ran despite cancellation during warming")
	}
}
