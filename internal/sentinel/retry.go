package sentinel

// This file is the sentinel's request/result machinery generalized into a
// reusable fault-tolerance layer: transient-vs-permanent error
// classification, retry with exponential backoff, and endpoint failover.
// The node-waiting scenario (sentinel.Run) degrades a blocked request onto
// an alternate path; RetryPolicy.Do and Failover apply the same stance to
// WAN sends — a transient flap is retried in place, a dead endpoint is
// failed over, and a permanent error is surfaced immediately, classified.

import (
	"context"
	"errors"
	"fmt"
	"time"

	"ocelot/internal/obs"
)

// Transienter is implemented by errors that know they are retryable —
// link flaps, outage windows, queue-full conditions. Errors without the
// method are treated as permanent: retrying a compression bug or a
// malformed archive only delays the inevitable.
type Transienter interface {
	// Transient reports whether the operation may succeed if retried.
	Transient() bool
}

// transientErr wraps an error to mark it retryable.
type transientErr struct{ err error }

func (e *transientErr) Error() string   { return e.err.Error() }
func (e *transientErr) Unwrap() error   { return e.err }
func (e *transientErr) Transient() bool { return true }

// MarkTransient wraps err so Classify treats it as retryable. A nil err
// stays nil.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &transientErr{err: err}
}

// PermanentError wraps the terminal error of an exhausted retry/failover
// sequence with its classification and attempt accounting, so callers (and
// operators reading campaign failures) see *why* the engine gave up: a
// permanent error fails fast on the first attempt, a transient one only
// after the policy's budget is spent.
type PermanentError struct {
	// Err is the final underlying error.
	Err error
	// Attempts is the total operation count across endpoints.
	Attempts int
	// Endpoints is how many endpoints were tried.
	Endpoints int
	// Transient reports whether the final error was itself transient (the
	// budget ran out) or permanent (the engine refused to retry).
	Transient bool
}

// Error implements error.
func (e *PermanentError) Error() string {
	class := "permanent"
	if e.Transient {
		class = "transient (retry budget exhausted)"
	}
	return fmt.Sprintf("sentinel: giving up after %d attempt(s) on %d endpoint(s): %s error: %v",
		e.Attempts, e.Endpoints, class, e.Err)
}

// Unwrap exposes the underlying error to errors.Is/As.
func (e *PermanentError) Unwrap() error { return e.Err }

// IsTransient reports whether err (or anything it wraps) declares itself
// retryable via the Transienter interface. Context cancellation and
// deadline errors are never transient: the caller asked to stop.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var t Transienter
	return errors.As(err, &t) && t.Transient()
}

// RetryPolicy tunes retry-with-exponential-backoff for one endpoint. The
// zero value means a single attempt (no retries) — fault tolerance is
// opt-in, so existing campaigns keep fail-fast semantics.
type RetryPolicy struct {
	// MaxAttempts bounds attempts per endpoint; ≤ 1 means one attempt.
	MaxAttempts int
	// BaseBackoff is the sleep before the first retry; 0 = 50ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth; 0 = 2s.
	MaxBackoff time.Duration
	// Multiplier grows the backoff per retry; < 1 = 2.
	Multiplier float64
	// Sleep injects the backoff sleeper for tests; nil sleeps on a timer,
	// honouring ctx.
	Sleep func(ctx context.Context, d time.Duration) error
	// Metrics, when set, counts sentinel_retries_total,
	// sentinel_failovers_total, and sentinel_permanent_errors_total as
	// Do/Failover classify outcomes. Nil costs a pointer check.
	Metrics *obs.Registry
}

// withDefaults resolves the policy's zero values.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 50 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 2 * time.Second
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.Sleep == nil {
		p.Sleep = sleepCtx
	}
	return p
}

// sleepCtx sleeps d, honouring ctx cancellation.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}

// Do runs op, retrying transient failures with exponential backoff until
// the policy's attempt budget is spent. It returns the retry count (zero
// when the first attempt succeeded) and the final error. Permanent errors
// — anything not marked Transient, including context cancellation — stop
// the sequence immediately.
func (p RetryPolicy) Do(ctx context.Context, op func(ctx context.Context) error) (retries int, err error) {
	p = p.withDefaults()
	backoff := p.BaseBackoff
	for attempt := 1; ; attempt++ {
		err = op(ctx)
		if err == nil || !IsTransient(err) || attempt >= p.MaxAttempts {
			if err != nil && !IsTransient(err) {
				p.Metrics.Counter("sentinel_permanent_errors_total").Inc()
			}
			return attempt - 1, err
		}
		p.Metrics.Counter("sentinel_retries_total").Inc()
		if serr := p.Sleep(ctx, backoff); serr != nil {
			return attempt - 1, serr
		}
		backoff = time.Duration(float64(backoff) * p.Multiplier)
		if backoff > p.MaxBackoff {
			backoff = p.MaxBackoff
		}
	}
}

// Failover runs op against endpoints 0..endpoints-1 in order, applying the
// retry policy on each: transient errors are retried in place, and when an
// endpoint's budget is spent — or it fails permanently — the next endpoint
// is tried. The terminal error is wrapped in *PermanentError with the full
// attempt accounting. Context cancellation aborts the whole sequence.
func Failover(ctx context.Context, p RetryPolicy, endpoints int,
	op func(ctx context.Context, endpoint int) error) (retries, failovers int, err error) {
	if endpoints < 1 {
		endpoints = 1
	}
	attempts := 0
	for ep := 0; ep < endpoints; ep++ {
		r, opErr := p.Do(ctx, func(ctx context.Context) error { return op(ctx, ep) })
		retries += r
		attempts += r + 1
		if opErr == nil {
			return retries, ep, nil
		}
		err = opErr
		if ctx.Err() != nil {
			// Cancellation is not a failover candidate: return it bare so
			// the engine unwinds as canceled, not failed.
			return retries, ep, ctx.Err()
		}
		if ep+1 < endpoints {
			failovers++
			p.Metrics.Counter("sentinel_failovers_total").Inc()
		}
	}
	return retries, failovers, &PermanentError{
		Err:       err,
		Attempts:  attempts,
		Endpoints: endpoints,
		Transient: IsTransient(err),
	}
}
