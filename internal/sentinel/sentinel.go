// Package sentinel implements the node-waiting optimization of the paper's
// Section VII-B (Fig 10): when a compress-and-transfer request cannot get
// compute nodes immediately, the sentinel starts transferring files
// *uncompressed*; every landed file is recorded in a meta list so the
// compression scheduler skips it. Once nodes are granted, the plain
// transfer stops (at file granularity) and the remaining files take the
// compress → transfer → decompress path. The worst case — nodes never
// arrive — degrades gracefully to a fully uncompressed transfer.
package sentinel

import (
	"errors"
	"fmt"

	"ocelot/internal/cluster"
	"ocelot/internal/sim"
	"ocelot/internal/wan"
)

// Request describes one sentinel-managed transfer.
type Request struct {
	// RawSizes are the original file sizes in bytes.
	RawSizes []int64
	// Ratio is the (predicted) compression ratio applied to files that take
	// the compressed path.
	Ratio float64
	// Nodes is the compute-node count requested for compression.
	Nodes int
	// Source machine runs compression; Dest machine runs decompression.
	Source, Dest *cluster.Machine
	// DestNodes for decompression; ≤ 0 uses the I/O-friendly knee.
	DestNodes int
	// Link is the WAN path.
	Link *wan.Link
	// Seed drives deterministic jitter.
	Seed int64
}

// Result reports what happened.
type Result struct {
	// NodeWaitSeconds is when compression nodes were granted (-1 = never).
	NodeWaitSeconds float64
	// RawFilesSent were transferred uncompressed during the wait.
	RawFilesSent int
	// RawBytesSent counts their bytes.
	RawBytesSent int64
	// CompressedFiles took the compression path.
	CompressedFiles int
	// CompressSeconds, DecompressSeconds are the compute phases.
	CompressSeconds   float64
	DecompressSeconds float64
	// TotalSeconds is the end-to-end completion time.
	TotalSeconds float64
	// WorstCase is true when everything went uncompressed.
	WorstCase bool
}

// Run executes the scenario on the virtual clock. The scheduler must belong
// to the same clock.
func Run(clock *sim.Clock, sched *cluster.Scheduler, req *Request) (*Result, error) {
	if len(req.RawSizes) == 0 {
		return nil, errors.New("sentinel: no files")
	}
	if req.Ratio <= 0 {
		return nil, errors.New("sentinel: ratio must be positive")
	}
	if req.Nodes <= 0 {
		return nil, errors.New("sentinel: node request must be positive")
	}
	if err := req.Link.Validate(); err != nil {
		return nil, err
	}
	destNodes := req.DestNodes
	if destNodes <= 0 {
		destNodes = int(req.Dest.IOKneeNodes)
	}

	res := &Result{NodeWaitSeconds: -1}
	granted := false
	next := 0 // next raw file to send
	inFlight := 0
	ch := req.Link.Concurrency
	if ch > len(req.RawSizes) {
		ch = len(req.RawSizes)
	}
	perChannelMBps := req.Link.BandwidthMBps / float64(ch)

	var finishCompressedPath func()
	var maybeFinish func()

	// sendLoop models one transfer channel: it keeps taking the next
	// pending file until nodes are granted or files run out.
	var sendLoop func()
	sendLoop = func() {
		if granted || next >= len(req.RawSizes) {
			maybeFinish()
			return
		}
		idx := next
		next++
		inFlight++
		cost := req.Link.PerFileOverheadSec + float64(req.RawSizes[idx])/1e6/perChannelMBps
		clock.After(cost, func() {
			inFlight--
			// The meta file records this file as already transferred.
			res.RawFilesSent++
			res.RawBytesSent += req.RawSizes[idx]
			sendLoop()
		})
	}

	maybeFinish = func() {
		if inFlight > 0 {
			return
		}
		if granted {
			finishCompressedPath()
			return
		}
		if next >= len(req.RawSizes) {
			// Everything went uncompressed before nodes arrived.
			res.WorstCase = res.RawFilesSent == len(req.RawSizes)
			res.TotalSeconds = clock.Now()
		}
	}

	finishCompressedPath = func() {
		remaining := req.RawSizes[next:]
		res.CompressedFiles = len(remaining)
		if len(remaining) == 0 {
			res.TotalSeconds = clock.Now()
			sched.Release(req.Nodes)
			return
		}
		cp := req.Source.CompressTime(remaining, req.Nodes)
		res.CompressSeconds = cp
		compressed := make([]int64, len(remaining))
		for i, s := range remaining {
			compressed[i] = int64(float64(s) / req.Ratio)
		}
		clock.After(cp, func() {
			sched.Release(req.Nodes)
			tr, err := req.Link.Estimate(compressed, req.Seed)
			if err != nil {
				// Validated above; treat as zero-cost to keep the sim going.
				tr = &wan.TransferResult{}
			}
			clock.After(tr.Seconds, func() {
				dp := req.Dest.DecompressTime(remaining, destNodes)
				res.DecompressSeconds = dp
				clock.After(dp, func() {
					res.TotalSeconds = clock.Now()
				})
			})
		})
	}

	// Ask for nodes; the grant may come at any time (or never, if the wait
	// model says so — then the raw path completes the job).
	if err := sched.Request(req.Nodes, func() {
		if res.NodeWaitSeconds < 0 {
			res.NodeWaitSeconds = clock.Now()
		}
		granted = true
		if inFlight == 0 {
			finishCompressedPath()
		}
	}); err != nil {
		return nil, fmt.Errorf("sentinel: node request: %w", err)
	}

	// Start the uncompressed transfer immediately on all channels.
	for c := 0; c < ch; c++ {
		sendLoop()
	}
	if err := clock.Run(); err != nil {
		return nil, err
	}
	if res.TotalSeconds == 0 && res.RawFilesSent == len(req.RawSizes) {
		res.TotalSeconds = clock.Now()
		res.WorstCase = true
	}
	return res, nil
}
