package sentinel

import (
	"testing"

	"ocelot/internal/cluster"
	"ocelot/internal/sim"
	"ocelot/internal/wan"
)

func testReq(n int, fileMB int64) *Request {
	machines := cluster.Standard()
	sizes := make([]int64, n)
	for i := range sizes {
		sizes[i] = fileMB * 1e6
	}
	return &Request{
		RawSizes: sizes,
		Ratio:    8,
		Nodes:    16,
		Source:   machines["Anvil"],
		Dest:     machines["Cori"],
		Link:     wan.StandardLinks()["Anvil->Cori"],
		Seed:     1,
	}
}

func TestImmediateNodes(t *testing.T) {
	clock := sim.NewClock()
	sched := cluster.NewScheduler(clock, cluster.Standard()["Anvil"])
	req := testReq(512, 150)
	res, err := Run(clock, sched, req)
	if err != nil {
		t.Fatal(err)
	}
	if res.NodeWaitSeconds != 0 {
		t.Errorf("wait = %v, want 0 (Anvil grants immediately)", res.NodeWaitSeconds)
	}
	// With instant nodes at most a handful of raw files slip through.
	if res.RawFilesSent > req.Link.Concurrency {
		t.Errorf("raw files sent = %d, want ≤ concurrency", res.RawFilesSent)
	}
	if res.CompressedFiles+res.RawFilesSent != len(req.RawSizes) {
		t.Errorf("file conservation: %d + %d != %d",
			res.CompressedFiles, res.RawFilesSent, len(req.RawSizes))
	}
	if res.WorstCase {
		t.Error("not a worst case")
	}
	if res.TotalSeconds <= 0 {
		t.Error("total time must be positive")
	}
}

func TestDelayedNodes(t *testing.T) {
	clock := sim.NewClock()
	sched := cluster.NewScheduler(clock, cluster.Standard()["Bebop"])
	sched.SetWaitModel(3, 30, 0, 0) // ~30s queue delay
	req := testReq(512, 150)
	res, err := Run(clock, sched, req)
	if err != nil {
		t.Fatal(err)
	}
	if res.NodeWaitSeconds <= 0 {
		t.Fatalf("expected a node wait, got %v", res.NodeWaitSeconds)
	}
	if res.RawFilesSent == 0 {
		t.Error("transfer should progress during the wait")
	}
	if res.CompressedFiles+res.RawFilesSent != len(req.RawSizes) {
		t.Error("file conservation violated")
	}
}

func TestWorstCaseNeverGranted(t *testing.T) {
	clock := sim.NewClock()
	machines := cluster.Standard()
	// Scheduler with zero free nodes that never releases.
	sched := cluster.NewScheduler(clock, machines["Bebop"])
	// Occupy everything first.
	if err := sched.Request(machines["Bebop"].Nodes, func() {}); err != nil {
		t.Fatal(err)
	}
	req := testReq(64, 100)
	req.Source = machines["Bebop"]
	res, err := Run(clock, sched, req)
	if err != nil {
		t.Fatal(err)
	}
	if !res.WorstCase {
		t.Fatal("want worst case: all raw")
	}
	if res.RawFilesSent != len(req.RawSizes) {
		t.Fatalf("raw sent %d != %d", res.RawFilesSent, len(req.RawSizes))
	}
	if res.CompressedFiles != 0 {
		t.Fatalf("compressed = %d", res.CompressedFiles)
	}
}

// The headline property: with immediate nodes, the sentinel path must beat
// the uncompressed-only transfer for compressible many-file datasets.
func TestBeatsDirect(t *testing.T) {
	req := testReq(768, 150) // Miranda-like
	direct, err := req.Link.Estimate(req.RawSizes, 1)
	if err != nil {
		t.Fatal(err)
	}
	clock := sim.NewClock()
	sched := cluster.NewScheduler(clock, cluster.Standard()["Anvil"])
	res, err := Run(clock, sched, req)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalSeconds >= direct.Seconds {
		t.Fatalf("sentinel %.1fs should beat direct %.1fs", res.TotalSeconds, direct.Seconds)
	}
}

func TestValidation(t *testing.T) {
	clock := sim.NewClock()
	sched := cluster.NewScheduler(clock, cluster.Standard()["Anvil"])
	bad := testReq(4, 1)
	bad.RawSizes = nil
	if _, err := Run(clock, sched, bad); err == nil {
		t.Error("no files must error")
	}
	bad = testReq(4, 1)
	bad.Ratio = 0
	if _, err := Run(clock, sched, bad); err == nil {
		t.Error("zero ratio must error")
	}
	bad = testReq(4, 1)
	bad.Nodes = 0
	if _, err := Run(clock, sched, bad); err == nil {
		t.Error("zero nodes must error")
	}
	bad = testReq(4, 1)
	bad.Link = &wan.Link{}
	if _, err := Run(clock, sched, bad); err == nil {
		t.Error("invalid link must error")
	}
}

func TestDeterministic(t *testing.T) {
	run := func() float64 {
		clock := sim.NewClock()
		sched := cluster.NewScheduler(clock, cluster.Standard()["Bebop"])
		sched.SetWaitModel(5, 45, 0.2, 300)
		res, err := Run(clock, sched, testReq(256, 120))
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalSeconds
	}
	if run() != run() {
		t.Fatal("sentinel run not deterministic")
	}
}
